#!/bin/sh
# CI gate: formatting, vet, ashlint (the repo's own analyzers), build,
# tests (with the race detector), and staticcheck when it is installed.
# Run from the repo root.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:"
    echo "$badfmt"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

# ashlint: the custom analyzer suite (determinism, obsguard,
# lockdiscipline, allocdiscipline — see DESIGN.md §12). Run standalone
# for module-wide coverage, then through go vet's -vettool protocol so
# the unit-checker path stays working.
echo "== ashlint (standalone)"
go run ./cmd/ashlint ./...

echo "== ashlint (go vet -vettool)"
go build -o "$workdir/ashlint" ./cmd/ashlint
go vet -vettool="$workdir/ashlint" ./...

echo "== go test -race"
go test -race ./...

# Chaos soak: the deterministic fault plane's canned schedules against the
# full TCP + NFS workload, plus the fixed-seed determinism check (rerunning
# a seed must reproduce bit-identical counters). Already covered by the
# package sweep above, but run by name so a regression is attributable.
echo "== chaos soak (fixed-seed determinism)"
go test -race -count=1 -run 'TestChaosSoak|TestChaosSeedDeterminism' ./internal/fault/

# Observability plane: the PRNG contract and trace/metrics unit tests by
# name, then the end-to-end determinism gate — the breakdown experiment's
# Chrome trace JSON must be byte-identical across two full runs.
echo "== observability plane (PRNG + trace/metrics unit tests)"
go test -race -count=1 ./internal/obs/ ./internal/sim/

echo "== breakdown trace determinism (byte-identical across runs)"
tracedir="$workdir"
go run ./cmd/ashbench -experiment breakdown -trace "$tracedir/a.json" >/dev/null
go run ./cmd/ashbench -experiment breakdown -trace "$tracedir/b.json" >/dev/null
if ! cmp -s "$tracedir/a.json" "$tracedir/b.json"; then
    echo "breakdown trace JSON differs between identical runs"
    exit 1
fi

# Fuzz targets: each parser/demux fuzzer runs a short wall-clock sweep on
# top of its committed seed corpus. FuzzDPFDemux is differential (trie vs
# linear scan vs an atom-count oracle), so a divergence in either engine
# path fails here. FuzzDifferentialSFI drives random verifiable programs
# through the three-way naive/optimized/re-optimized oracle, and
# FuzzReoptProfile attacks the same oracle from the profile side with raw
# fuzzer bytes as the profile.
echo "== fuzz sweep (10s per target)"
go test -run '^$' -fuzz '^FuzzIPParse$' -fuzztime 10s ./internal/proto/ip/
go test -run '^$' -fuzz '^FuzzTCPHeader$' -fuzztime 10s ./internal/proto/tcp/
go test -run '^$' -fuzz '^FuzzDPFDemux$' -fuzztime 10s ./internal/dpf/
go test -run '^$' -fuzz '^FuzzTraceParse$' -fuzztime 10s ./internal/workload/
go test -run '^$' -fuzz '^FuzzDifferentialSFI$' -fuzztime 10s ./internal/sandbox/
go test -run '^$' -fuzz '^FuzzReoptProfile$' -fuzztime 10s ./internal/sandbox/

# Parallel runner determinism: the full suite at -parallel=1 (serial
# reference) and at one-worker-per-CPU must print byte-identical stdout.
# Wall-time and trace summaries go to stderr, so cmp sees results only.
echo "== serial vs parallel ashbench (byte-identical stdout)"
go build -o "$tracedir/ashbench" ./cmd/ashbench
"$tracedir/ashbench" -parallel 1 >"$tracedir/serial.txt" 2>/dev/null
"$tracedir/ashbench" >"$tracedir/parallel.txt" 2>/dev/null
if ! cmp -s "$tracedir/serial.txt" "$tracedir/parallel.txt"; then
    echo "ashbench output differs between -parallel=1 and the default pool"
    diff "$tracedir/serial.txt" "$tracedir/parallel.txt" | head -40
    exit 1
fi

# The committed reference output must match what the tree produces: any
# behavior change has to regenerate ashbench_output.txt deliberately.
echo "== ashbench output matches committed ashbench_output.txt"
if ! cmp -s ashbench_output.txt "$tracedir/serial.txt"; then
    echo "ashbench output diverged from the committed ashbench_output.txt"
    diff ashbench_output.txt "$tracedir/serial.txt" | head -40
    exit 1
fi

# The scale experiment gets its own gate: its cells build worlds with up
# to 512 hosts, the structure most likely to surface nondeterminism in
# the runner, so a regression must be attributable to it directly.
echo "== scale fan-in determinism (byte-identical stdout)"
"$tracedir/ashbench" -experiment scale -parallel 1 >"$tracedir/scale-serial.txt" 2>/dev/null
"$tracedir/ashbench" -experiment scale >"$tracedir/scale-parallel.txt" 2>/dev/null
if ! cmp -s "$tracedir/scale-serial.txt" "$tracedir/scale-parallel.txt"; then
    echo "scale output differs between -parallel=1 and the default pool"
    diff "$tracedir/scale-serial.txt" "$tracedir/scale-parallel.txt" | head -40
    exit 1
fi

# The overload experiment gets its own gate: its cells mix adversarial
# trace replay, the fault plane, tenant quotas, and client backoff — the
# densest interleaving of event sources in the suite — so byte-identity
# under parallelism must be attributable to it directly.
echo "== overload control determinism (byte-identical stdout)"
"$tracedir/ashbench" -experiment overload -parallel 1 >"$tracedir/overload-serial.txt" 2>/dev/null
"$tracedir/ashbench" -experiment overload >"$tracedir/overload-parallel.txt" 2>/dev/null
if ! cmp -s "$tracedir/overload-serial.txt" "$tracedir/overload-parallel.txt"; then
    echo "overload output differs between -parallel=1 and the default pool"
    diff "$tracedir/overload-serial.txt" "$tracedir/overload-parallel.txt" | head -40
    exit 1
fi

# The megascale experiment gets its own gate, in quick mode (the full
# grid builds a million-endpoint world): 64k kernel-free flyweight
# endpoints against one full server host, with per-endpoint open-loop
# schedules and retry timers — the largest event population in the suite
# — must render byte-identical stdout at any parallelism.
echo "== megascale flyweight determinism (byte-identical stdout)"
"$tracedir/ashbench" -experiment megascale -quick -parallel 1 >"$tracedir/mega-serial.txt" 2>/dev/null
"$tracedir/ashbench" -experiment megascale -quick >"$tracedir/mega-parallel.txt" 2>/dev/null
if ! cmp -s "$tracedir/mega-serial.txt" "$tracedir/mega-parallel.txt"; then
    echo "megascale output differs between -parallel=1 and the default pool"
    diff "$tracedir/mega-serial.txt" "$tracedir/mega-parallel.txt" | head -40
    exit 1
fi

# The reopt experiment gets its own gate: its cells hot-swap handler code
# mid-run (System.Reoptimize), re-enter the SFI compile cache under
# profile-distinct keys, and sweep the three-way differential harness —
# any cross-cell state in that machinery shows up as a byte diff here.
echo "== reopt DCG-loop determinism (byte-identical stdout)"
"$tracedir/ashbench" -experiment reopt -parallel 1 >"$tracedir/reopt-serial.txt" 2>/dev/null
"$tracedir/ashbench" -experiment reopt >"$tracedir/reopt-parallel.txt" 2>/dev/null
if ! cmp -s "$tracedir/reopt-serial.txt" "$tracedir/reopt-parallel.txt"; then
    echo "reopt output differs between -parallel=1 and the default pool"
    diff "$tracedir/reopt-serial.txt" "$tracedir/reopt-parallel.txt" | head -40
    exit 1
fi

# Three-way differential suite by name under the race detector: the
# registry sweep (every crl handler x both budget modes x measured +
# adversarial profiles), the profitability pin, the committed
# adversarial-profile corpus shapes, and the quick random-program sweep.
# Covered by the package test run above, but a divergence in the DCG
# loop's safety argument must be attributable to it directly.
echo "== three-way differential suite under -race"
go test -race -count=1 \
    -run 'TestThreeWayRegistry|TestReoptActuallyImproves|TestReoptProfileSeeds|TestDifferentialSFIQuick' \
    ./internal/sandbox/
go test -race -count=1 -run 'TestReopt|TestChainDisposition' ./internal/core/

# Coverage gate: per-package coverage is printed for review; the total
# must not regress below the floor (measured baseline minus slack).
echo "== coverage (floor 79.5%)"
go test -coverprofile="$tracedir/cover.out" ./... | grep -v '^---' || true
total=$(go tool cover -func="$tracedir/cover.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total coverage: ${total}%"
ok=$(awk -v t="$total" 'BEGIN { print (t >= 79.5) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "total coverage ${total}% fell below the 79.5% floor"
    exit 1
fi

# Bench runner suite by name under the race detector: the worker pool,
# the parallel chaos matrix, and the golden determinism test. Covered by
# the package sweep above, but attributable when it regresses.
echo "== bench runner determinism under -race"
go test -race -count=1 ./internal/bench/runner/
go test -race -count=1 -run 'TestParallelByteIdentical|TestParallelChaosMatchesSerial|TestReoptParallelByteIdentical' ./internal/bench/

# Hot-path microbenchmarks: a short sweep proves the fixtures still run
# and the trie walk is still allocation-free. The committed
# BENCH_hotpath.json snapshot is regenerated by hand (cmd/hotpathbench)
# when the hot paths change; timings are never gated here — CI machines
# vary too much — but allocation counts are deterministic, so the
# zero-alloc hot-path contract IS gated: cmd/hotpathbench runs against a
# temp file, its bench-name structure must match the committed snapshot,
# and the packet-path / event-queue benches must report 0 allocs/op.
echo "== hot-path microbenchmarks (smoke)"
go test -run '^Test' -bench . -benchtime 0.1s ./internal/bench/hotpath/

echo "== hot-path zero-alloc gate (cmd/hotpathbench)"
hotjson="$workdir/hotpath.json"
go run ./cmd/hotpathbench -o "$hotjson" 2>/dev/null
python3 - "$hotjson" <<'PYEOF'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open("BENCH_hotpath.json"))
fresh_names = [b["name"] for b in fresh["benchmarks"]]
committed_names = [b["name"] for b in committed["benchmarks"]]
if fresh_names != committed_names:
    sys.exit("BENCH_hotpath.json structure drifted: committed %s vs fresh %s "
             "— regenerate with `go run ./cmd/hotpathbench`" % (committed_names, fresh_names))
zero_alloc = {"DPFTrieWalk", "DPFLinearScan", "VCODEDispatch",
              "SimEventQueue", "CalendarQueue", "PacketPath"}
bad = [(b["name"], b["allocs_per_op"]) for b in fresh["benchmarks"]
       if b["name"] in zero_alloc and b["allocs_per_op"] > 0]
if bad:
    sys.exit("zero-alloc hot-path regression: %s must report 0 allocs/op" % bad)
print("hot-path allocs: all zero (%d benches gated)" % len(zero_alloc))
PYEOF

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi

echo "CI OK"
