#!/bin/sh
# CI gate: formatting, vet, build, tests (with the race detector), and
# staticcheck when it is installed. Run from the repo root.
set -eu

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:"
    echo "$badfmt"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# Chaos soak: the deterministic fault plane's canned schedules against the
# full TCP + NFS workload, plus the fixed-seed determinism check (rerunning
# a seed must reproduce bit-identical counters). Already covered by the
# package sweep above, but run by name so a regression is attributable.
echo "== chaos soak (fixed-seed determinism)"
go test -race -count=1 -run 'TestChaosSoak|TestChaosSeedDeterminism' ./internal/fault/

# Observability plane: the PRNG contract and trace/metrics unit tests by
# name, then the end-to-end determinism gate — the breakdown experiment's
# Chrome trace JSON must be byte-identical across two full runs.
echo "== observability plane (PRNG + trace/metrics unit tests)"
go test -race -count=1 ./internal/obs/ ./internal/sim/

echo "== breakdown trace determinism (byte-identical across runs)"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/ashbench -experiment breakdown -trace "$tracedir/a.json" >/dev/null
go run ./cmd/ashbench -experiment breakdown -trace "$tracedir/b.json" >/dev/null
if ! cmp -s "$tracedir/a.json" "$tracedir/b.json"; then
    echo "breakdown trace JSON differs between identical runs"
    exit 1
fi

# Parallel runner determinism: the full suite at -parallel=1 (serial
# reference) and at one-worker-per-CPU must print byte-identical stdout.
# Wall-time and trace summaries go to stderr, so cmp sees results only.
echo "== serial vs parallel ashbench (byte-identical stdout)"
go build -o "$tracedir/ashbench" ./cmd/ashbench
"$tracedir/ashbench" -parallel 1 >"$tracedir/serial.txt" 2>/dev/null
"$tracedir/ashbench" >"$tracedir/parallel.txt" 2>/dev/null
if ! cmp -s "$tracedir/serial.txt" "$tracedir/parallel.txt"; then
    echo "ashbench output differs between -parallel=1 and the default pool"
    diff "$tracedir/serial.txt" "$tracedir/parallel.txt" | head -40
    exit 1
fi

# Bench runner suite by name under the race detector: the worker pool,
# the parallel chaos matrix, and the golden determinism test. Covered by
# the package sweep above, but attributable when it regresses.
echo "== bench runner determinism under -race"
go test -race -count=1 ./internal/bench/runner/
go test -race -count=1 -run 'TestParallelByteIdentical|TestParallelChaosMatchesSerial' ./internal/bench/

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi

echo "CI OK"
