#!/bin/sh
# CI gate: formatting, vet, build, tests (with the race detector), and
# staticcheck when it is installed. Run from the repo root.
set -eu

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:"
    echo "$badfmt"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# Chaos soak: the deterministic fault plane's canned schedules against the
# full TCP + NFS workload, plus the fixed-seed determinism check (rerunning
# a seed must reproduce bit-identical counters). Already covered by the
# package sweep above, but run by name so a regression is attributable.
echo "== chaos soak (fixed-seed determinism)"
go test -race -count=1 -run 'TestChaosSoak|TestChaosSeedDeterminism' ./internal/fault/

# Observability plane: the PRNG contract and trace/metrics unit tests by
# name, then the end-to-end determinism gate — the breakdown experiment's
# Chrome trace JSON must be byte-identical across two full runs.
echo "== observability plane (PRNG + trace/metrics unit tests)"
go test -race -count=1 ./internal/obs/ ./internal/sim/

echo "== breakdown trace determinism (byte-identical across runs)"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/ashbench -experiment breakdown -trace "$tracedir/a.json" >/dev/null
go run ./cmd/ashbench -experiment breakdown -trace "$tracedir/b.json" >/dev/null
if ! cmp -s "$tracedir/a.json" "$tracedir/b.json"; then
    echo "breakdown trace JSON differs between identical runs"
    exit 1
fi

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi

echo "CI OK"
