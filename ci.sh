#!/bin/sh
# CI gate: formatting, vet, build, tests (with the race detector), and
# staticcheck when it is installed. Run from the repo root.
set -eu

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:"
    echo "$badfmt"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# Chaos soak: the deterministic fault plane's canned schedules against the
# full TCP + NFS workload, plus the fixed-seed determinism check (rerunning
# a seed must reproduce bit-identical counters). Already covered by the
# package sweep above, but run by name so a regression is attributable.
echo "== chaos soak (fixed-seed determinism)"
go test -race -count=1 -run 'TestChaosSoak|TestChaosSeedDeterminism' ./internal/fault/

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi

echo "CI OK"
