#!/bin/sh
# CI gate: formatting, vet, build, tests (with the race detector), and
# staticcheck when it is installed. Run from the repo root.
set -eu

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:"
    echo "$badfmt"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi

echo "CI OK"
