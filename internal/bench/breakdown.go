package bench

import (
	"fmt"
	"strings"

	"ashs/internal/obs"
	"ashs/internal/sim"
)

// obsRun carries the observability plane and measurement window of one
// traced workload run. A nil *obsRun is valid everywhere and turns
// observation off — the normal path every table experiment takes.
type obsRun struct {
	plane      *obs.Plane
	start, end sim.Time
}

// attach wires a plane into tb. If a -trace hook already attached one
// (tb.Obs non-nil), it is reused so the run produces a single trace.
func (o *obsRun) attach(tb *Testbed) {
	if o == nil {
		return
	}
	if tb.Obs == nil {
		tb.AttachObs(obs.New(float64(tb.Prof.MHz)))
	}
	o.plane = tb.Obs
}

// window records the [start, end) cycle window the workload measured.
func (o *obsRun) window(start, end sim.Time) {
	if o == nil {
		return
	}
	o.start, o.end = start, end
}

// phaseOrder is the fixed rendering order of span categories. Everything
// in the window not covered by a span lands in the trailing "wait/other"
// residual, so the per-phase cycles always sum exactly to the window.
var phaseOrder = []string{"wire", "device", "kernel", "sched", "ash", "upcall", "proto"}

// BreakdownPhase is one phase's share of a measurement window.
type BreakdownPhase struct {
	Name   string
	Cycles sim.Time
}

// BreakdownRow decomposes one latency experiment's measurement window.
type BreakdownRow struct {
	Label      string
	PaperUs    float64 // paper's end-to-end us per round trip (0: none)
	MeasuredUs float64 // this run's us per round trip
	Iters      int
	Total      sim.Time         // window length in cycles
	Phases     []BreakdownPhase // phaseOrder then "wait/other"; sums to Total
	Plane      *obs.Plane       // the run's full trace, for -trace export
}

// Breakdown is the cycle-accurate latency decomposition experiment: the
// paper's Table I/V/VI latency workloads re-run with tracing on, each
// measurement window attributed to per-layer phases. Tracing charges no
// simulated cycles, so every row's end-to-end time equals the one the
// plain table experiment reports.
type Breakdown struct {
	Iters int
	Rows  []BreakdownRow
}

// breakdownSpecs enumerates the traced latency workloads in render order.
func breakdownSpecs(iters int) []struct {
	label string
	paper float64
	run   func(cfg *Config, o *obsRun) float64
} {
	return []struct {
		label string
		paper float64
		run   func(cfg *Config, o *obsRun) float64
	}{
		{"Table I: in-kernel AN2", PaperTable1.InKernelAN2,
			func(cfg *Config, o *obsRun) float64 { return inKernelAN2RT(cfg, iters, o) }},
		{"Table I: user-level AN2", PaperTable1.UserAN2,
			func(cfg *Config, o *obsRun) float64 { return userAN2RT(cfg, iters, o) }},
		{"Table I: Ethernet", PaperTable1.Ethernet,
			func(cfg *Config, o *obsRun) float64 { return ethernetRT(cfg, iters, o) }},
		{"Table V: sandboxed ASH (polling)", PaperTable5.Polling[MechSandboxedASH],
			func(cfg *Config, o *obsRun) float64 {
				return remoteIncrementRT(cfg, MechSandboxedASH, false, iters, o)
			}},
		{"Table V: user-level (polling)", PaperTable5.Polling[MechUserLevel],
			func(cfg *Config, o *obsRun) float64 {
				return remoteIncrementRT(cfg, MechUserLevel, false, iters, o)
			}},
		{"Table VI: TCP latency, sandboxed ASH", PaperTable6.Latency[0],
			func(cfg *Config, o *obsRun) float64 { return table6Latency(cfg, table6Modes[0], iters, o) }},
		{"Table VI: TCP latency, user (polling)", PaperTable6.Latency[4],
			func(cfg *Config, o *obsRun) float64 { return table6Latency(cfg, table6Modes[4], iters, o) }},
	}
}

// breakdownCells enumerates one cell per traced workload.
func breakdownCells(iters int) []Cell {
	specs := breakdownSpecs(iters)
	cells := make([]Cell, len(specs))
	for i, s := range specs {
		s := s
		cells[i] = Cell{"breakdown/" + s.label, func(cfg *Config) any {
			o := &obsRun{}
			meas := s.run(cfg, o)
			total := o.end - o.start
			byCat := o.plane.PhaseCycles(o.start, o.end)
			var phases []BreakdownPhase
			var sum sim.Time
			for _, name := range phaseOrder {
				c := byCat[name]
				sum += c
				phases = append(phases, BreakdownPhase{name, c})
			}
			// Residual by construction: the row always sums to the window.
			phases = append(phases, BreakdownPhase{"wait/other", total - sum})
			return BreakdownRow{
				Label: s.label, PaperUs: s.paper, MeasuredUs: meas,
				Iters: iters, Total: total, Phases: phases, Plane: o.plane,
			}
		}}
	}
	return cells
}

func mergeBreakdown(iters int, vs []any) *Breakdown {
	b := &Breakdown{Iters: iters}
	for _, v := range vs {
		b.Rows = append(b.Rows, v.(BreakdownRow))
	}
	return b
}

// RunBreakdown traces the latency workloads of Tables I, V and VI.
func RunBreakdown(cfg *Config, iters int) *Breakdown {
	return mergeBreakdown(iters, runCells(cfg, breakdownCells(iters)))
}

// Render produces the per-phase cost tables.
func (b *Breakdown) Render() string {
	var out strings.Builder
	fmt.Fprintf(&out, "Latency breakdown: per-phase cycles over the measurement window\n")
	fmt.Fprintf(&out, "  (%d round trips per row; us/RT = phase cycles / iters / 40 MHz;\n", b.Iters)
	fmt.Fprintf(&out, "   wait/other is the untraced residual, so phases sum exactly to the total)\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&out, "\n%s — measured %.2f us/RT", r.Label, r.MeasuredUs)
		if r.PaperUs > 0 {
			fmt.Fprintf(&out, " (paper %.0f)", r.PaperUs)
		}
		out.WriteByte('\n')
		cpu := float64(r.Plane.CyclesPerUs)
		rows := [][]string{{"phase", "cycles", "us/RT", "share"}}
		for _, ph := range r.Phases {
			rows = append(rows, []string{
				ph.Name,
				fmt.Sprintf("%d", ph.Cycles),
				fmt.Sprintf("%.3f", float64(ph.Cycles)/cpu/float64(r.Iters)),
				fmt.Sprintf("%.1f%%", 100*float64(ph.Cycles)/float64(r.Total)),
			})
		}
		rows = append(rows, []string{
			"total",
			fmt.Sprintf("%d", r.Total),
			fmt.Sprintf("%.3f", float64(r.Total)/cpu/float64(r.Iters)),
			"100.0%",
		})
		widths := make([]int, len(rows[0]))
		for _, row := range rows {
			for i, c := range row {
				if len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		for ri, row := range rows {
			fmt.Fprintf(&out, "  %-*s", widths[0], row[0])
			for i := 1; i < len(row); i++ {
				fmt.Fprintf(&out, "  %*s", widths[i], row[i])
			}
			out.WriteByte('\n')
			if ri == 0 || ri == len(rows)-2 {
				w := widths[0]
				for i := 1; i < len(widths); i++ {
					w += 2 + widths[i]
				}
				out.WriteString("  " + strings.Repeat("-", w) + "\n")
			}
		}
	}
	return out.String()
}

// Planes returns the rows' planes in order, for trace export.
func (b *Breakdown) Planes() []*obs.Plane {
	var ps []*obs.Plane
	for _, r := range b.Rows {
		ps = append(ps, r.Plane)
	}
	return ps
}
