package bench

import (
	"encoding/binary"
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/crl"
	"ashs/internal/dpf"
	"ashs/internal/sandbox"
	"ashs/internal/sim"
	"ashs/internal/vcode"
	"ashs/internal/vcode/reopt"
)

// The reopt experiment closes the DCG loop end to end and reports what it
// bought: each showcase handler is downloaded with profiling, warmed on
// real messages, hot-swapped via System.Reoptimize, and measured on the
// same message before and after. The chain and DPF rows measure the other
// two profile consumers (handler fusion, trie branch reordering), and the
// differential row re-runs the three-way harness over the whole registry
// as the safety receipt next to the performance claim.

// ReoptRun is one handler measured statically optimized vs re-optimized.
type ReoptRun struct {
	Name                      string
	StaticInsns, ReoptInsns   int64
	StaticCycles, ReoptCycles sim.Time
}

// ChainRun compares the interpreted two-member chain against the fused
// single download on the same accepted message.
type ChainRun struct {
	SeqInsns, FusedInsns   int64
	SeqCycles, FusedCycles sim.Time
}

// ReorderRun is total demux cycles over one skewed batch, insertion-order
// trie vs hit-reordered trie.
type ReorderRun struct {
	Packets       int
	Before, After sim.Time
}

// DiffSummary is the three-way differential sweep's receipt.
type DiffSummary struct {
	Handlers, Profiles, Modes, Rounds, Divergences int
}

// ReoptResult aggregates the experiment.
type ReoptResult struct {
	Shard   ReoptRun
	Sparse  ReoptRun
	Chain   ChainRun
	Reorder ReorderRun
	Diff    DiffSummary
}

const reoptWarmup = 6

func reoptCells() []Cell {
	return []Cell{
		{"reopt/hoist", func(cfg *Config) any { return runReoptHandler(cfg, false) }},
		{"reopt/coarsen", func(cfg *Config) any { return runReoptHandler(cfg, true) }},
		{"reopt/chain", func(cfg *Config) any { return runReoptChain(cfg) }},
		{"reopt/dpf-reorder", func(cfg *Config) any { return runReoptReorder(cfg) }},
		{"reopt/differential", func(cfg *Config) any { return runReoptDifferential(cfg) }},
	}
}

func mergeReopt(vs []any) ReoptResult {
	return ReoptResult{
		Shard:   vs[0].(ReoptRun),
		Sparse:  vs[1].(ReoptRun),
		Chain:   vs[2].(ChainRun),
		Reorder: vs[3].(ReorderRun),
		Diff:    vs[4].(DiffSummary),
	}
}

// RunReopt regenerates the DCG-loop before/after measurements.
func RunReopt(cfg *Config) ReoptResult {
	return mergeReopt(runCells(cfg, reoptCells()))
}

// runReoptHandler drives one showcase handler through the full loop on a
// live testbed: profile-downloaded, warmed, re-optimized in place, then
// measured on the identical message. sparse selects the multi-block
// budget-coarsening showcase (software budget mode); otherwise the
// message-carried-modulus divide-hoist showcase (timer mode).
func runReoptHandler(cfg *Config, sparse bool) ReoptRun {
	tb := NewAN2Testbed(cfg)
	opts := core.Options{OptimizeSFI: true, Profile: true}
	if sparse {
		pol := *tb.Sys2.Policy
		pol.Budget = sandbox.BudgetSoftware
		tb.Sys2.Policy = &pol
		opts.Budget = 1 << 20
	}
	owner := tb.K2.Spawn("reopt-app", func(p *aegis.Process) {})
	seg := owner.AS.MustAlloc(4096, "state")

	var prog *vcode.Program
	var msg []byte
	if sparse {
		prog = crl.SparseRecordWriteHandler(seg.Base, seg.Base+2048)
		msg = make([]byte, crl.RecordBytes)
		for w := 0; w < crl.RecordBytes/4; w++ {
			v := uint32(w*7 + 1)
			if w%3 == 0 {
				v = 0 // skipped word: keeps the loop multi-block at run time
			}
			binary.BigEndian.PutUint32(msg[w*4:], v)
		}
	} else {
		prog = crl.ShardedCounterHandler(seg.Base)
		vals := make([]uint32, 1+crl.NumShardValues)
		vals[0] = 5 // modulus: message-carried, statically opaque
		for w := 0; w < crl.NumShardValues; w++ {
			vals[1+w] = uint32(w*13 + 1)
		}
		msg = make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.BigEndian.PutUint32(msg[i*4:], v)
		}
	}
	ash := tb.Sys2.MustDownload(owner, prog, opts)

	msgSeg := owner.AS.MustAlloc(4096, "synthetic-msg")
	copy(tb.K2.Bytes(msgSeg.Base, len(msg)), msg)
	entry := aegis.RingEntry{Addr: msgSeg.Base, Len: len(msg)}

	run := ReoptRun{Name: prog.Name}
	tb.Eng.Schedule(0, func() {
		once := func() (int64, sim.Time) {
			mc := aegis.SyntheticMsg(tb.K2, owner, entry)
			if d := ash.HandleMsg(mc); d != aegis.DispConsumed || ash.InvoluntaryFault != nil {
				panic(fmt.Sprintf("reopt %s: disposition %v fault %v", prog.Name, d, ash.InvoluntaryFault))
			}
			return ash.LastInsns(), mc.Cost()
		}
		for i := 0; i < reoptWarmup; i++ {
			run.StaticInsns, run.StaticCycles = once()
		}
		if _, err := tb.Sys2.Reoptimize(ash); err != nil {
			panic(err)
		}
		run.ReoptInsns, run.ReoptCycles = once()
		if run.ReoptInsns >= run.StaticInsns {
			panic(fmt.Sprintf("reopt %s: %d insns after re-optimization, %d before — no win",
				prog.Name, run.ReoptInsns, run.StaticInsns))
		}
	})
	tb.Run()
	return run
}

// reoptBumpHandler is the fusion follower: bump a counter word, consume.
// (crl.IncrementHandler replies over the network; the chain comparison
// wants pure handler cost, so the bench carries its own follower.)
func reoptBumpHandler(addr uint32) *vcode.Program {
	b := vcode.NewBuilder("bench-chain-bump")
	c, v := b.Temp(), b.Temp()
	b.MovI(c, int32(addr))
	b.Ld32(v, c, 0)
	b.AddIU(v, v, 1)
	b.St32(c, 0, v)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// runReoptChain measures the validate→bump chain both ways: two installed
// handlers dispatched in sequence (core.Chain) vs one fused download
// whose seam test replaces the second dispatch.
func runReoptChain(cfg *Config) ChainRun {
	tb := NewAN2Testbed(cfg)
	owner := tb.K2.Spawn("chain-app", func(p *aegis.Process) {})
	seg := owner.AS.MustAlloc(4096, "counter")
	opts := core.Options{OptimizeSFI: true}

	headProg := crl.ValidateHandler(0, crl.ChainMagic)
	tailProg := reoptBumpHandler(seg.Base)
	head := tb.Sys2.MustDownload(owner, headProg, opts)
	tail := tb.Sys2.MustDownload(owner, tailProg, opts)
	seq := &core.Chain{Members: []*core.ASH{head, tail}}

	fusedProg, err := reopt.FuseChain("bench-chain-fused", headProg, tailProg)
	if err != nil {
		panic(err)
	}
	fused := tb.Sys2.MustDownload(owner, fusedProg, opts)

	msgSeg := owner.AS.MustAlloc(4096, "synthetic-msg")
	msg := tb.K2.Bytes(msgSeg.Base, 8)
	binary.BigEndian.PutUint32(msg, crl.ChainMagic)
	binary.BigEndian.PutUint32(msg[4:], 9)
	entry := aegis.RingEntry{Addr: msgSeg.Base, Len: 8}

	var run ChainRun
	tb.Eng.Schedule(0, func() {
		mc := aegis.SyntheticMsg(tb.K2, owner, entry)
		if d := seq.HandleMsg(mc); d != aegis.DispConsumed {
			panic(fmt.Sprintf("sequential chain disposition %v", d))
		}
		run.SeqInsns = head.LastInsns() + tail.LastInsns()
		run.SeqCycles = mc.Cost()

		mc = aegis.SyntheticMsg(tb.K2, owner, entry)
		if d := fused.HandleMsg(mc); d != aegis.DispConsumed {
			panic(fmt.Sprintf("fused chain disposition %v", d))
		}
		run.FusedInsns = fused.LastInsns()
		run.FusedCycles = mc.Cost()
	})
	tb.Run()
	return run
}

// runReoptReorder measures the DPF trie on skewed traffic before and
// after hit-frequency branch reordering. Filters sharing a field share
// one branch (kid dispatch is a hash, order-free), so the scenario that
// reordering improves is sibling branches on distinct fields: a dozen
// shallow single-field filters installed before one deep filter that the
// traffic actually favors. Insertion order walks every shallow sibling
// at full cost; after Reorder the hot deep branch goes first, its match
// depth is established early, and the strictly-shallower siblings are
// pruned at the bound-test cost instead of a full trie step.
func runReoptReorder(cfg *Config) ReorderRun {
	e := dpf.NewEngine()
	const shallow = 12
	for i := 0; i < shallow; i++ {
		if _, err := e.Insert(dpf.NewFilter().Eq8(40+i, 7)); err != nil {
			panic(err)
		}
	}
	deep := dpf.NewFilter().Eq16(12, 0x0800).Eq8(23, 17).Eq16(36, 1000)
	if _, err := e.Insert(deep); err != nil {
		panic(err)
	}
	pkt := func(shallowIdx int) []byte {
		p := make([]byte, 64)
		if shallowIdx >= 0 {
			p[40+shallowIdx] = 7
			return p
		}
		p[12], p[13] = 0x08, 0x00
		p[23] = 17
		p[36], p[37] = byte(1000>>8), byte(1000&0xff)
		return p
	}
	// 7 of 8 packets hit the deep (last-installed) filter.
	var batch [][]byte
	for i := 0; i < 64; i++ {
		idx := -1
		if i%8 == 7 {
			idx = i % shallow
		}
		batch = append(batch, pkt(idx))
	}
	sweep := func() sim.Time {
		var total sim.Time
		for _, p := range batch {
			_, c, ok := e.Demux(p)
			if !ok {
				panic("reopt: trie miss")
			}
			total += c
		}
		return total
	}
	run := ReorderRun{Packets: len(batch)}
	run.Before = sweep() // also accumulates the hit counters
	e.Reorder()
	run.After = sweep()
	if run.After >= run.Before {
		panic(fmt.Sprintf("reorder: %d cycles after, %d before — no win", run.After, run.Before))
	}
	return run
}

// runReoptDifferential re-runs the three-way harness over the full crl
// registry under both budget strategies with the measured profile and the
// adversarial bank — the safety receipt printed beside the speedups. Any
// divergence panics the cell.
func runReoptDifferential(cfg *Config) DiffSummary {
	modes := []sandbox.BudgetMode{sandbox.BudgetTimer, sandbox.BudgetSoftware}
	lib := crl.Library()
	s := DiffSummary{Handlers: len(lib), Modes: len(modes)}
	rounds := 4
	if !cfg.quick() {
		rounds = 6
	}
	for _, e := range lib {
		n := len(e.Prog.Insns)
		sat := make([]uint64, n)
		for i := range sat {
			sat[i] = ^uint64(0)
		}
		profiles := []*reopt.Profile{
			nil, // measured by the harness itself
			{Handler: e.Prog.Name, Invocations: 0, Counts: make([]uint64, n)},
			{Handler: e.Prog.Name, Invocations: 1, Counts: sat},
		}
		s.Profiles = len(profiles)
		for _, mode := range modes {
			dcfg := sandbox.DiffConfig{Budget: mode, Rounds: rounds, Msg: e.Msg, Setup: e.Setup}
			for _, prof := range profiles {
				out, err := sandbox.ThreeWay(e.Prog, prof, dcfg)
				if err != nil {
					panic(fmt.Sprintf("differential %s: %v", e.Name, err))
				}
				s.Rounds += out.Rounds
			}
		}
	}
	return s
}

// Table renders the before/after comparison.
func (r ReoptResult) Table() *Table {
	f := func(v int64) float64 { return float64(v) }
	c := func(v sim.Time) float64 { return float64(v) }
	return &Table{
		Title:   "DCG loop: profile-guided re-optimization (before / after)",
		Note:    "insns and cycles per message on the identical message; chain compares sequential dispatch vs fused download",
		Columns: []string{"static-opt", "reopt"},
		Format:  "%.0f",
		Rows: []Row{
			{"shard-counter insns/msg (div hoist)", []float64{f(r.Shard.StaticInsns), f(r.Shard.ReoptInsns)}, nil},
			{"shard-counter cyc/msg", []float64{c(r.Shard.StaticCycles), c(r.Shard.ReoptCycles)}, nil},
			{"sparse-record insns/msg (budget coarsen)", []float64{f(r.Sparse.StaticInsns), f(r.Sparse.ReoptInsns)}, nil},
			{"sparse-record cyc/msg", []float64{c(r.Sparse.StaticCycles), c(r.Sparse.ReoptCycles)}, nil},
			{"chain insns/msg (sequential vs fused)", []float64{f(r.Chain.SeqInsns), f(r.Chain.FusedInsns)}, nil},
			{"chain cyc/msg", []float64{c(r.Chain.SeqCycles), c(r.Chain.FusedCycles)}, nil},
			{"dpf demux cyc/batch (insertion vs reordered)", []float64{c(r.Reorder.Before), c(r.Reorder.After)}, nil},
		},
	}
}

func renderReopt(vs []any) string {
	r := mergeReopt(vs)
	return r.Table().Render() + fmt.Sprintf(
		"\ndifferential: %d handlers x %d profiles x %d budget modes, %d rounds, %d divergences\n",
		r.Diff.Handlers, r.Diff.Profiles, r.Diff.Modes, r.Diff.Rounds, r.Diff.Divergences)
}
