package bench

import (
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/fault"
	"ashs/internal/proto/nfs"
	"ashs/internal/proto/tcp"
	"ashs/internal/proto/udp"
)

// ChaosParams configures the chaos soak: a seed matrix crossed with a set
// of fault schedules, each running a bulk TCP transfer and an NFS
// create/write/read-back sequence concurrently on one faulted testbed.
type ChaosParams struct {
	Seeds     []int64
	TCPBytes  int // bulk-transfer size, payload byte-verified at the sink
	NFSBytes  int // file size written in 4 KB chunks and read back
	Schedules []fault.Schedule
}

// DefaultChaosParams is the full soak: 10 MB TCP + 64 KB NFS under every
// canned schedule, three seeds each.
func DefaultChaosParams() ChaosParams {
	return ChaosParams{
		Seeds:     []int64{1, 2, 3},
		TCPBytes:  10 << 20,
		NFSBytes:  64 << 10,
		Schedules: fault.Canned(),
	}
}

// QuickChaosParams is the smoke-test variant (one seed, 1 MB TCP).
func QuickChaosParams() ChaosParams {
	return ChaosParams{
		Seeds:     []int64{1},
		TCPBytes:  1 << 20,
		NFSBytes:  16 << 10,
		Schedules: fault.Canned(),
	}
}

// ChaosResult is one (schedule, seed) cell. The struct is comparable;
// rerunning a cell must reproduce it field-for-field, injected-fault
// counters included — that equality is the determinism check.
type ChaosResult struct {
	Schedule string
	Seed     int64

	// Workload outcomes: both transfers completed with every payload
	// byte verified at the far end.
	TCPOk, NFSOk bool
	TCPMBps      float64

	// What the plane injected.
	Faults fault.Counters

	// How the stack absorbed it.
	InjectedDevDrops  uint64 // device ring/pool losses forced by the plane
	LoadDevDrops      uint64 // genuine pool exhaustion + watermark sheds
	CRCDrops          uint64 // frames the boards' CRC rejected
	InvoluntaryAborts uint64 // forced handler aborts taken
	AbortFallbacks    uint64 // messages re-vectored to the default path
	TrippedHandlers   uint64 // handlers de-installed by the trip threshold
	Retransmits       uint64 // TCP segments retransmitted (both ends)
	BadChecksum       uint64 // TCP end-to-end checksum rejections
	ReasmTimeouts     uint64 // IP reassembly evictions (both ends)
	NFSResent         uint64 // NFS requests retried
}

// chaosCells enumerates one cell per (schedule, seed) — the natural shard
// of the soak matrix.
func chaosCells(p ChaosParams) []Cell {
	var cells []Cell
	for _, sched := range p.Schedules {
		sched := sched
		for _, seed := range p.Seeds {
			seed := seed
			cells = append(cells, Cell{fmt.Sprintf("chaos/%s/seed%d", sched.Name, seed),
				func(cfg *Config) any { return runChaosOne(cfg, seed, sched, p) }})
		}
	}
	return cells
}

// RunChaos executes the full matrix.
func RunChaos(cfg *Config, p ChaosParams) []ChaosResult {
	vs := runCells(cfg, chaosCells(p))
	out := make([]ChaosResult, len(vs))
	for i, v := range vs {
		out[i] = v.(ChaosResult)
	}
	return out
}

// chaosPattern is the deterministic payload byte at offset i.
func chaosPattern(i int) byte { return byte((i*31 + 7) ^ (i >> 8)) }

// runChaosOne runs one (schedule, seed) cell: a fresh two-host AN2 world
// with the fault plane attached at every layer, a TCP bulk transfer on
// VC 7 (ASH fast path on both ends), and an NFS session on VC 5 — both
// must finish with byte-verified payloads despite the schedule.
func runChaosOne(cfg *Config, seed int64, sched fault.Schedule, p ChaosParams) ChaosResult {
	tb := NewAN2Testbed(cfg)
	pl := fault.New(seed, sched)
	pl.AttachWire(tb.Sw)
	pl.AttachAN2(tb.A1)
	pl.AttachAN2(tb.A2)
	pl.AttachSystem(tb.Sys1)
	pl.AttachSystem(tb.Sys2)
	tb.Sys1.AbortTripThreshold = 64
	tb.Sys2.AbortTripThreshold = 64

	res := ChaosResult{Schedule: sched.Name, Seed: seed}

	tcpCfg := func(host int) tcp.Config {
		c := tcp.DefaultConfig()
		c.Mode = tcp.ModeASH
		c.Checksum = true
		c.Polling = true
		c.MaxRetransmit = 16
		if host == 1 {
			c.Sys = tb.Sys1
		} else {
			c.Sys = tb.Sys2
		}
		return c
	}

	const chunk = 8192
	var srvConn, cliConn *tcp.Conn
	tcpSunk, tcpDone := 0, false
	tcpVerified := true
	tb.K2.Spawn("tcp-server", func(proc *aegis.Process) {
		conn, err := tcp.Accept(tb.StackAN2(proc, 2, 7), tcpCfg(2), 80)
		if err != nil {
			tcpDone = true
			return
		}
		srvConn = conn
		buf := proc.AS.MustAlloc(chunk+64, "rx")
		for tcpSunk < p.TCPBytes {
			n, err := conn.Read(buf.Base, chunk)
			if err != nil {
				break
			}
			data := proc.AS.MustBytes(buf.Base, n)
			for i := 0; i < n; i++ {
				if data[i] != chaosPattern(tcpSunk+i) {
					tcpVerified = false
				}
			}
			tcpSunk += n
		}
		tcpDone = true
		_ = conn.Close()
	})
	var tcpStart, tcpEnd float64
	tb.K1.Spawn("tcp-client", func(proc *aegis.Process) {
		conn, err := tcp.Connect(tb.StackAN2(proc, 1, 7), tcpCfg(1), 1234, tb.IP2, 80)
		if err != nil {
			return
		}
		cliConn = conn
		buf := proc.AS.MustAlloc(chunk, "tx")
		tcpStart = tb.Us(proc.K.Now())
		for sent := 0; sent < p.TCPBytes; {
			n := chunk
			if p.TCPBytes-sent < n {
				n = p.TCPBytes - sent
			}
			data := proc.AS.MustBytes(buf.Base, n)
			for i := 0; i < n; i++ {
				data[i] = chaosPattern(sent + i)
			}
			if err := conn.Write(buf.Base, n); err != nil {
				return
			}
			sent += n
		}
		tcpEnd = tb.Us(proc.K.Now())
	})

	srv := nfs.NewServer()
	tb.K2.Spawn("nfsd", func(proc *aegis.Process) {
		st := tb.StackAN2(proc, 2, 5)
		sock := udp.NewSocket(st, 2049, udp.Options{Checksum: true})
		srv.Serve(proc, sock, 0)
	})
	var nfsClient *nfs.Client
	nfsDone, nfsVerified := false, false
	tb.K1.Spawn("nfs-client", func(proc *aegis.Process) {
		defer func() { nfsDone = true }()
		st := tb.StackAN2(proc, 1, 5)
		sock := udp.NewSocket(st, 900, udp.Options{Checksum: true})
		c := nfs.NewClient(sock, tb.IP2, 2049)
		c.RetryUs, c.MaxRetryUs, c.Retries = 10_000, 200_000, 12
		nfsClient = c
		attr, err := c.Create(proc, nfs.RootHandle, "chaos")
		if err != nil {
			return
		}
		const nchunk = 4096
		for off := 0; off < p.NFSBytes; off += nchunk {
			n := nchunk
			if p.NFSBytes-off < n {
				n = p.NFSBytes - off
			}
			data := make([]byte, n)
			for i := range data {
				data[i] = chaosPattern(off + i)
			}
			if _, err := c.Write(proc, attr.Handle, uint32(off), data); err != nil {
				return
			}
		}
		ok := true
		for off := 0; off < p.NFSBytes; off += nchunk {
			n := nchunk
			if p.NFSBytes-off < n {
				n = p.NFSBytes - off
			}
			data, err := c.Read(proc, attr.Handle, uint32(off), uint32(n))
			if err != nil || len(data) != n {
				return
			}
			for i := range data {
				if data[i] != chaosPattern(off+i) {
					ok = false
				}
			}
		}
		nfsVerified = ok
	})

	// The NFS server loops forever, so the engine never drains: advance
	// in slices until both workloads report in or the time bound passes.
	limit := tb.Prof.Cycles(600_000_000) // 10 simulated minutes
	slice := tb.Prof.Cycles(1_000_000)
	for (!tcpDone || !nfsDone) && tb.Eng.Now() < limit && tb.Eng.Pending() > 0 {
		tb.Eng.RunFor(slice)
	}
	tb.CheckPool()

	res.TCPOk = tcpDone && tcpVerified && tcpSunk == p.TCPBytes
	res.NFSOk = nfsDone && nfsVerified
	if res.TCPOk && tcpEnd > tcpStart {
		res.TCPMBps = float64(p.TCPBytes) / (tcpEnd - tcpStart)
	}
	res.Faults = pl.C
	res.InjectedDevDrops = tb.A1.InjectedRingDrops + tb.A1.InjectedPoolDrops +
		tb.A2.InjectedRingDrops + tb.A2.InjectedPoolDrops
	res.LoadDevDrops = tb.A1.LoadDrops + tb.A1.LoadSheds +
		tb.A2.LoadDrops + tb.A2.LoadSheds
	res.CRCDrops = tb.A1.CRCDrops + tb.A2.CRCDrops
	res.InvoluntaryAborts = tb.Sys1.InvoluntaryAborts + tb.Sys2.InvoluntaryAborts
	res.AbortFallbacks = tb.Sys1.AbortFallbacks + tb.Sys2.AbortFallbacks
	res.TrippedHandlers = tb.Sys1.TrippedHandlers + tb.Sys2.TrippedHandlers
	if cliConn != nil {
		res.Retransmits += cliConn.Retransmits
		res.BadChecksum += cliConn.BadChecksum
		res.ReasmTimeouts += cliConn.St.ReasmTimeouts
	}
	if srvConn != nil {
		res.Retransmits += srvConn.Retransmits
		res.BadChecksum += srvConn.BadChecksum
		res.ReasmTimeouts += srvConn.St.ReasmTimeouts
	}
	if nfsClient != nil {
		res.NFSResent = nfsClient.Resent
	}
	return res
}

// RenderChaos formats the matrix with per-cell injected/absorbed counts.
func RenderChaos(results []ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak: deterministic fault schedules vs. delivery integrity\n")
	fmt.Fprintf(&b, "  (tcp/nfs OK = transfer completed, payload byte-verified)\n")
	fmt.Fprintf(&b, "  %-12s %5s %4s %4s %8s %6s %6s %6s %6s %6s %6s %6s\n",
		"schedule", "seed", "tcp", "nfs", "MB/s", "drop", "crc", "abort", "fallbk", "rexmt", "badck", "resent")
	fmt.Fprintf(&b, "  %s\n", strings.Repeat("-", 92))
	for _, r := range results {
		okc := func(ok bool) string {
			if ok {
				return "ok"
			}
			return "FAIL"
		}
		drops := r.Faults.WireDrops + r.Faults.DeviceRingDrops + r.Faults.DevicePoolDrops
		fmt.Fprintf(&b, "  %-12s %5d %4s %4s %8.2f %6d %6d %6d %6d %6d %6d %6d\n",
			r.Schedule, r.Seed, okc(r.TCPOk), okc(r.NFSOk), r.TCPMBps,
			drops, r.CRCDrops, r.InvoluntaryAborts, r.AbortFallbacks,
			r.Retransmits, r.BadChecksum, r.NFSResent)
	}
	return b.String()
}
