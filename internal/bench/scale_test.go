package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestScaleSubLinearDemux is the experiment's core claim at test-sized N:
// the server's per-message kernel cost must grow sub-linearly in the
// client count (the trie classifies in O(depth), not O(filters), and
// batched interrupts amortize bursts), and the DPF classification cost
// itself must stay essentially flat.
func TestScaleSubLinearDemux(t *testing.T) {
	const m = 2
	for _, wl := range scaleWorkloads {
		r1 := runScaleCell(wl, 1, m)
		r64 := runScaleCell(wl, 64, m)
		if r1.Msgs != m || r64.Msgs != 64*m {
			t.Fatalf("%s: message counts %d/%d, want %d/%d", wl, r1.Msgs, r64.Msgs, m, 64*m)
		}
		if r64.CycPerMsg >= 64*r1.CycPerMsg {
			t.Errorf("%s: cyc/msg grew linearly: N=1 %.1f, N=64 %.1f", wl, r1.CycPerMsg, r64.CycPerMsg)
		}
		// Flat is the real expectation — allow 2x for handshake traffic mix.
		if r64.DemuxPerMsg > 2*r1.DemuxPerMsg {
			t.Errorf("%s: demux/msg not flat: N=1 %.1f, N=64 %.1f", wl, r1.DemuxPerMsg, r64.DemuxPerMsg)
		}
		if r1.BatchedPct != 0 {
			t.Errorf("%s: N=1 batched interrupts %.1f%%, want 0", wl, r1.BatchedPct)
		}
	}
}

// TestScaleDeterminism renders a reduced sweep serially and with four
// workers; the merged output must be byte-identical (the CI gate does the
// same over the full ashbench suite).
func TestScaleDeterminism(t *testing.T) {
	cells := func() []Cell {
		var cs []Cell
		for _, wl := range scaleWorkloads {
			for _, n := range []int{1, 16} {
				wl, n := wl, n
				cs = append(cs, Cell{
					Label: fmt.Sprintf("scale/%s/N=%d", wl, n),
					Run:   func(*Config) any { return runScaleCell(wl, n, 2) },
				})
			}
		}
		return cs
	}

	render := func(parallel int) string {
		cfg := &Config{Parallel: parallel}
		vs := runCells(cfg, cells())
		var out string
		for _, v := range vs {
			r := v.(ScaleResult)
			out += fmt.Sprintf("%s N=%d msgs=%d thr=%.3f mean=%.3f p50=%.1f p99=%.1f cyc=%.3f demux=%.3f batched=%.3f\n",
				r.Workload, r.N, r.Msgs, r.ThrMsgMs, r.MeanUs, r.P50Us, r.P99Us,
				r.CycPerMsg, r.DemuxPerMsg, r.BatchedPct)
		}
		return out
	}

	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("scale results differ between -parallel 1 and -parallel 4:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// TestScaleRenderShape checks the renderer consumes cells in enumeration
// order: one section per workload, one row per N.
func TestScaleRenderShape(t *testing.T) {
	var vs []any
	for _, wl := range scaleWorkloads {
		for _, n := range scaleNs {
			vs = append(vs, ScaleResult{Workload: wl, N: n, Msgs: 1})
		}
	}
	out := renderScale(vs)
	for _, wl := range scaleWorkloads {
		if !strings.Contains(out, wl) {
			t.Errorf("render lacks workload %q:\n%s", wl, out)
		}
	}
	if rows := strings.Count(out, "\n") - 2 - 2*len(scaleWorkloads); rows != len(scaleWorkloads)*len(scaleNs) {
		t.Errorf("render has %d data rows, want %d:\n%s", rows, len(scaleWorkloads)*len(scaleNs), out)
	}
}
