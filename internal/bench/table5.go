package bench

import (
	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/crl"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Mechanism is a message-handling placement compared in Table V.
type Mechanism int

// The four mechanisms of Table V, plus the optimized-sandbox ablation
// this reproduction adds (not a paper column).
const (
	MechUnsafeASH Mechanism = iota
	MechSandboxedASH
	MechUpcall
	MechUserLevel
	MechOptASH // sandboxed with the static-analysis check optimizer
)

var mechNames = [...]string{"unsafe ASH", "sandboxed ASH", "upcall", "user-level", "optimized ASH"}

// Table5 is the remote-increment round-trip comparison (Section V-B,
// Table V): rows are the server process's scheduling state, columns the
// handler placement. The fifth column has no paper counterpart.
type Table5 struct {
	Polling   [5]float64 // us per RT, indexed by Mechanism
	Suspended [5]float64
}

// PaperTable5 is Table V of the paper (four mechanisms; the optimized
// column is rendered without a paper value).
var PaperTable5 = Table5{
	Polling:   [5]float64{147, 152, 191, 182},
	Suspended: [5]float64{147, 151, 193, 247},
}

// table5Cells enumerates one cell per (mechanism, scheduling state).
func table5Cells(iters int) []Cell {
	var cells []Cell
	for m := MechUnsafeASH; m <= MechOptASH; m++ {
		m := m
		cells = append(cells,
			Cell{"table5/" + mechNames[m] + "/polling", func(cfg *Config) any {
				return remoteIncrementRT(cfg, m, false, iters, nil)
			}},
			Cell{"table5/" + mechNames[m] + "/suspended", func(cfg *Config) any {
				return remoteIncrementRT(cfg, m, true, iters, nil)
			}},
		)
	}
	return cells
}

func mergeTable5(vs []any) Table5 {
	var t Table5
	for m := MechUnsafeASH; m <= MechOptASH; m++ {
		t.Polling[m] = vs[2*int(m)].(float64)
		t.Suspended[m] = vs[2*int(m)+1].(float64)
	}
	return t
}

// RunTable5 regenerates Table V.
func RunTable5(cfg *Config, iters int) Table5 {
	return mergeTable5(runCells(cfg, table5Cells(iters)))
}

// remoteIncrementRT measures the round trip of a remote-increment active
// message. The client is a user-level polling process; the server-side
// handling mechanism and scheduling state vary.
func remoteIncrementRT(cfg *Config, mech Mechanism, suspended bool, iters int, o *obsRun) float64 {
	tb := NewAN2Testbed(cfg)
	o.attach(tb)
	const vc = 9
	const warmup = 2

	if suspended {
		// "Suspended (interrupts)": the serving application is not
		// polling; wakeups go through the interrupt/reschedule path.
		tb.K2.Sched = aegis.NewPriorityBoost(tb.K2)
		tb.K2.Spawn("competitor", func(p *aegis.Process) { p.SpinForever() })
	}

	// Server side.
	switch mech {
	case MechUnsafeASH, MechSandboxedASH, MechUpcall, MechOptASH:
		owner := tb.K2.Spawn("dsm-app", func(p *aegis.Process) {})
		node := crl.NewNode(tb.Sys2, owner)
		prog := crl.IncrementHandler(node.CounterSeg.Base, tb.A1.Addr(), vc)
		ash := tb.Sys2.MustDownload(owner, prog,
			core.Options{Unsafe: mech == MechUnsafeASH, OptimizeSFI: mech == MechOptASH})
		b, err := tb.A2.BindVC(owner, vc, 8, 4096)
		if err != nil {
			panic(err)
		}
		if mech == MechUpcall {
			// Same handler code, run at user level via the upcall path.
			unsafeAsh := tb.Sys2.MustDownload(owner, prog, core.Options{Unsafe: true})
			b.Upcall = unsafeAsh.AsUpcall()
		} else {
			ash.AttachVC(b)
		}
	case MechUserLevel:
		tb.K2.Spawn("server", func(p *aegis.Process) {
			ep, err := link.BindAN2(tb.A2, p, vc, 8, 4096)
			if err != nil {
				panic(err)
			}
			counter := p.AS.MustAlloc(64, "counter")
			for i := 0; i < warmup+iters; i++ {
				f := ep.Recv(!suspended)
				// Increment: read the amount, bump, build the reply.
				inc := f.U32(0)
				v, _ := p.AS.Load32(counter.Base)
				_ = p.AS.Store32(counter.Base, v+inc)
				p.Compute(10)
				reply := make([]byte, 4)
				ep.Release(f)
				ep.Send(link.Addr{Port: f.Entry.Src, VC: vc}, reply)
			}
		})
	}

	// Client: user-level polling ping-pong.
	var total, start sim.Time
	done := false
	tb.K1.Spawn("client", func(p *aegis.Process) {
		ep, err := link.BindAN2(tb.A1, p, vc, 8, 4096)
		if err != nil {
			panic(err)
		}
		for i := 0; i < warmup+iters; i++ {
			if i == warmup {
				start = p.K.Now()
			}
			// The very first message can race the server's VC binding
			// (its process may be queued behind a competitor's quantum);
			// retry on a generous timeout during warmup.
			for {
				ep.Send(link.Addr{Port: tb.A2.Addr(), VC: vc}, []byte{0, 0, 0, 1})
				f, ok := ep.RecvUntil(true, p.K.Now()+tb.Prof.Cycles(50_000))
				if ok {
					ep.Release(f)
					break
				}
			}
		}
		total = p.K.Now() - start
		done = true
	})
	tb.RunUntilDone(&done, 5_000_000_000)
	o.window(start, start+total)
	return tb.Us(total) / float64(iters)
}

// Table renders Table V.
func (t Table5) Table() *Table {
	cols := []string{"unsafe ASH", "sandboxed ASH", "upcall", "user-level", "optimized ASH"}
	return &Table{
		Title:   "Table V: remote increment round trip (us)",
		Note:    "optimized ASH is this reproduction's check-elision ablation (no paper value)",
		Columns: cols,
		Format:  "%.0f",
		Rows: []Row{
			{"currently running (polling)", t.Polling[:], PaperTable5.Polling[:4]},
			{"suspended (interrupts)", t.Suspended[:], PaperTable5.Suspended[:4]},
		},
	}
}
