package bench

import (
	"ashs/internal/mach"
	"ashs/internal/pipe"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// Table3 is the copy-throughput microbenchmark (Section V-A1): 4096 bytes
// copied once, twice with the data cached for the second copy, and twice
// with an intervening cache flush.
type Table3 struct {
	SingleCopy     float64 // MB/s
	DoubleCopy     float64
	DoubleUncached float64
}

// PaperTable3 is Table III of the paper.
var PaperTable3 = Table3{SingleCopy: 20, DoubleCopy: 14, DoubleUncached: 11}

const microBytes = 4096

type microEnv struct {
	prof *mach.Profile
	m    *vcode.Machine
	src  uint32
	mid  uint32
	dst  uint32
}

func newMicroEnv() *microEnv {
	prof := mach.DS5000_240()
	mem := vcode.NewFlatMem(0, 1<<20)
	m := vcode.NewMachine(prof, mem)
	m.Cache = mach.NewCache(prof)
	for i := range mem.Data {
		mem.Data[i] = byte(i * 31)
	}
	// Buffer placement matters on a direct-mapped cache: the paper's
	// Methodology section reports picking best-case layouts ("we
	// automatically linked the kernel object files in many different
	// orders and picked a best-case timing"). These addresses are
	// distinct modulo the 64-KB cache size, so the buffers never conflict.
	return &microEnv{prof: prof, m: m, src: 0x10000, mid: 0x24000, dst: 0x38000}
}

// table3Cells wraps the microbenchmark as a single cell: it is one short
// pure-vcode run with no testbed to shard.
func table3Cells() []Cell {
	return []Cell{{"table3", func(cfg *Config) any { return runTable3() }}}
}

// RunTable3 regenerates Table III.
func RunTable3(cfg *Config) Table3 {
	return runCells(cfg, table3Cells())[0].(Table3)
}

// runTable3 performs the measurements. Each case starts with the message
// uncached ("we assume that the message and its application-space
// destination are not cached when the message arrives, and so perform
// cache flushes at every iteration").
func runTable3() Table3 {
	copyEng := pipe.CompileCopy()
	run := func(passes int, flushBetween bool) float64 {
		env := newMicroEnv()
		env.m.Cache.Flush()
		var total sim.Time
		cycles, f := copyEng.Run(env.m, env.src, env.mid, microBytes)
		if f != nil {
			panic(f)
		}
		total += cycles
		if passes == 2 {
			if flushBetween {
				env.m.Cache.Flush()
			}
			cycles, f := copyEng.Run(env.m, env.mid, env.dst, microBytes)
			if f != nil {
				panic(f)
			}
			total += cycles
		}
		return env.prof.MBps(microBytes, total)
	}
	return Table3{
		SingleCopy:     run(1, false),
		DoubleCopy:     run(2, false),
		DoubleUncached: run(2, true),
	}
}

// Table renders Table III.
func (t Table3) Table() *Table {
	return &Table{
		Title:   "Table III: throughput for copies of 4096 bytes (MB/s)",
		Columns: []string{"MB/s"},
		Format:  "%.1f",
		Rows: []Row{
			{"single copy", []float64{t.SingleCopy}, []float64{PaperTable3.SingleCopy}},
			{"double copy", []float64{t.DoubleCopy}, []float64{PaperTable3.DoubleCopy}},
			{"double copy (uncached)", []float64{t.DoubleUncached}, []float64{PaperTable3.DoubleUncached}},
		},
	}
}

// Table4 is the integrated-vs-nonintegrated memory-operation comparison
// (Section V-A2), in MB/s.
type Table4 struct {
	// Rows: copy+checksum, copy+checksum+byteswap.
	Separate         [2]float64
	SeparateUncached [2]float64
	CIntegrated      [2]float64
	DILP             [2]float64
}

// PaperTable4 is Table IV of the paper.
var PaperTable4 = Table4{
	Separate:         [2]float64{11, 5.8},
	SeparateUncached: [2]float64{10, 5.1},
	CIntegrated:      [2]float64{16, 8.3},
	DILP:             [2]float64{17, 8.2},
}

// table4Cells enumerates one cell per (strategy, operation mix): each is an
// independent micro-machine run.
func table4Cells() []Cell {
	var cells []Cell
	for _, withBswap := range []bool{false, true} {
		withBswap := withBswap
		suffix := "cksum"
		if withBswap {
			suffix = "cksum+bswap"
		}
		cells = append(cells,
			Cell{"table4/separate/" + suffix, func(cfg *Config) any { return table4Separate(withBswap, false) }},
			Cell{"table4/separate-uncached/" + suffix, func(cfg *Config) any { return table4Separate(withBswap, true) }},
			Cell{"table4/c-integrated/" + suffix, func(cfg *Config) any { return table4Hand(withBswap) }},
			Cell{"table4/dilp/" + suffix, func(cfg *Config) any { return table4DILP(withBswap) }},
		)
	}
	return cells
}

func mergeTable4(vs []any) Table4 {
	var out Table4
	for i := 0; i < 2; i++ {
		out.Separate[i] = vs[4*i].(float64)
		out.SeparateUncached[i] = vs[4*i+1].(float64)
		out.CIntegrated[i] = vs[4*i+2].(float64)
		out.DILP[i] = vs[4*i+3].(float64)
	}
	return out
}

// RunTable4 regenerates Table IV using the real pipe machinery: the
// separate strategy runs one full traversal per operation, "C integrated"
// is a hand-written fused loop, and DILP is the dynamically compiled
// engine of Figs. 1 and 2.
func RunTable4(cfg *Config) Table4 {
	return mergeTable4(runCells(cfg, table4Cells()))
}

func table4Pipes(withBswap bool) (*pipe.List, *pipe.Pipe, vcode.Reg) {
	pl := pipe.NewList(2)
	ck, acc, err := pipe.Cksum(pl)
	if err != nil {
		panic(err)
	}
	if withBswap {
		if _, err := pipe.Byteswap(pl); err != nil {
			panic(err)
		}
	}
	return pl, ck, acc
}

func table4Separate(withBswap, uncachedBetween bool) float64 {
	// Non-integrated processing: the data is copied, then checksummed by
	// the library's classic halfword in_cksum routine, then (possibly)
	// byteswapped by a third traversal.
	copyEng := pipe.CompileCopy()
	env := newMicroEnv()
	env.m.Cache.Flush()
	var total sim.Time
	cycles, f := copyEng.Run(env.m, env.src, env.dst, microBytes)
	if f != nil {
		panic(f)
	}
	total += cycles

	if uncachedBetween {
		// "The uncached case represents what happens if much time occurs
		// in between the various data manipulation operations, and the
		// message gets flushed from the cache."
		env.m.Cache.Flush()
	}
	_, cycles2, err := pipe.LibCksumPass(env.m, env.dst, microBytes)
	if err != nil {
		panic(err)
	}
	total += cycles2

	if withBswap {
		pl := pipe.NewList(1)
		bs, err := pipe.Byteswap(pl)
		if err != nil {
			panic(err)
		}
		pass, err := pipe.CompilePass(bs)
		if err != nil {
			panic(err)
		}
		if uncachedBetween {
			env.m.Cache.Flush()
		}
		cycles, f := pass.Run(env.m, env.dst, env.dst, microBytes)
		if f != nil {
			panic(f)
		}
		total += cycles
	}
	return env.prof.MBps(microBytes, total)
}

func table4Hand(withBswap bool) float64 {
	env := newMicroEnv()
	env.m.Cache.Flush()
	_, cycles, err := pipe.HandIntegrated(env.m, env.src, env.dst, microBytes, withBswap)
	if err != nil {
		panic(err)
	}
	return env.prof.MBps(microBytes, cycles)
}

func table4DILP(withBswap bool) float64 {
	pl, ck, acc := table4Pipes(withBswap)
	eng, err := pipe.Compile(pl, pipe.Options{Output: true})
	if err != nil {
		panic(err)
	}
	env := newMicroEnv()
	env.m.Cache.Flush()
	eng.Export(env.m, ck, acc, 0)
	cycles, f := eng.Run(env.m, env.src, env.dst, microBytes)
	if f != nil {
		panic(f)
	}
	return env.prof.MBps(microBytes, cycles)
}

// Table renders Table IV.
func (t Table4) Table() *Table {
	return &Table{
		Title:   "Table IV: integrated vs non-integrated memory operations (MB/s)",
		Columns: []string{"copy&cksum", "copy&cksum&bswap"},
		Format:  "%.1f",
		Rows: []Row{
			{"separate", t.Separate[:], PaperTable4.Separate[:]},
			{"separate/uncached", t.SeparateUncached[:], PaperTable4.SeparateUncached[:]},
			{"C integrated", t.CIntegrated[:], PaperTable4.CIntegrated[:]},
			{"DILP", t.DILP[:], PaperTable4.DILP[:]},
		},
	}
}
