package bench

import (
	"encoding/binary"
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/fault"
	"ashs/internal/obs"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/retry"
	"ashs/internal/proto/udp"
	"ashs/internal/relay"
	"ashs/internal/sandbox"
	"ashs/internal/sim"
	"ashs/internal/workload"
)

// The overload experiment drives the scale topology with adversarial
// open-loop traces (internal/workload) against a relay service expressed
// as per-client ASHs (internal/proto/relay), with every stage of the
// overload-control plane engaged:
//
//   - admission control: each server binding's notification ring carries a
//     high watermark; frames arriving at a full ring are shed at demux,
//     before they cost a pool buffer or any handler cycles
//     (EthBinding.Shed / EthernetIf.LoadSheds);
//   - tenant quotas: clients map onto tenants, and System.Quota refuses
//     eager handler execution to a tenant over its per-window cycle
//     budget — the message is not dropped but re-vectored to the lazy
//     user-level path, where a drainer process serves it slower;
//   - client backoff: every lost or throttled-into-the-tail request is
//     retried under deterministic jittered exponential backoff with a hard
//     retry budget (internal/proto/retry), so synchronized losers
//     desynchronize instead of re-colliding.
//
// Each cell crosses one trace shape with one fault schedule. The claim
// under test is graceful degradation: past saturation the system keeps
// serving at a high fraction of peak goodput with a bounded tail, because
// excess load is shed or deferred at the cheapest possible point instead
// of being absorbed into queues (overload_test.go asserts this).
//
// Traces round-trip through the versioned binary codec on the way in
// (Encode then Parse), so the replayed schedule is exactly what a stored
// trace file would produce and the hostile parser sits on the live path.

const (
	overloadClients = 16
	overloadTenants = 4
	overloadPort    = 9 // relay service UDP port on the server

	// overloadLanes is each client's request concurrency: the trace slice
	// is striped across this many independent sender processes (one UDP
	// source port each), so an adversarial burst is actually offered to
	// the server instead of being serialized behind one outstanding
	// request per client.
	overloadLanes = 4

	// overloadGap1xUs is the fleet-wide mean inter-arrival gap of the 1x
	// traces, in microseconds. The server's measured service capacity is
	// ~10-12 ops/ms, so 1x (10 ops/ms offered) sits right at saturation —
	// the peak-goodput operating point. The 2x trace halves the gap
	// (2x saturation) and 4x halves it again; the graceful-degradation
	// claim is that goodput holds near peak across that range instead of
	// collapsing under retry amplification.
	overloadGap1xUs = 100.0

	// overloadWarmupUs shifts every trace event so the server's filters
	// and handlers are installed before the first arrival.
	overloadWarmupUs = 50.0

	overloadSize    = 64  // payload size (mean, for heavy-tailed sizes)
	overloadMaxSize = 512 // bounded-Pareto size cap

	// overloadHighWater is each server binding's ring admission limit.
	// One binding carries all of a client's lanes, so a throttled burst
	// concentrates on one ring and admission control has something to
	// protect.
	overloadHighWater = 6

	// Tenant cycle budgets: each tenant may spend this many receive-path
	// cycles per quota window on eager handler execution; the excess is
	// throttled to the drainers. A 64-byte submit charges ~500 cycles, so
	// the budget covers ~6 eager ops per window — clear of the 1x rate
	// (~2.5 ops per tenant-window), exceeded by bursts and the 2x trace.
	overloadQuotaWindowUs = 1000
	overloadTenantBudget  = 3000

	// overloadLazyUs models the user-level cost of one drainer-served
	// request beyond the relay work itself: wakeup, scheduling, copy-out.
	// The lazy path is deliberately much slower than the eager ASH; when
	// throttled load outruns it, rings fill and admission control sheds.
	overloadLazyUs = 500

	// Client backoff policy: first retry 1-2ms out (safely above the
	// loaded round trip), doubling to a 16ms cap, at most 6 attempts per
	// operation.
	overloadBackoffBaseUs = 2000
	overloadBackoffCapUs  = 16000
	overloadRetryBudget   = 6

	overloadTraceSeed  = 101 // workload-generator seed
	overloadFaultSeed  = 7   // fault-plane seed
	overloadJitterSeed = 33  // client backoff jitter seed
)

// overloadTrace names one arrival-schedule shape of the matrix.
type overloadTrace struct {
	Name  string
	Gen   func(seed int64, s workload.Spec) *workload.Trace
	GapUs float64
}

// overloadTraces is the trace axis, in presentation order.
func overloadTraces() []overloadTrace {
	return []overloadTrace{
		{"pois-1x", workload.Poisson, overloadGap1xUs},
		{"pois-2x", workload.Poisson, overloadGap1xUs / 2},
		{"pois-4x", workload.Poisson, overloadGap1xUs / 4},
		{"heavytail", workload.HeavyTail, overloadGap1xUs},
		{"flashcrowd", workload.FlashCrowd, overloadGap1xUs},
		{"incast", workload.Incast, overloadGap1xUs},
	}
}

// overloadScheds is the fault-schedule axis (names resolved via
// fault.Named): no faults, wire loss, and device ring/pool/truncate chaos.
var overloadScheds = []string{"baseline", "loss", "device"}

// overloadEvents is the trace length (arrivals across the whole fleet).
func overloadEvents(cfg *Config) int {
	if cfg.quick() {
		return 256
	}
	return 768
}

// OverloadResult is one (trace, schedule) cell. Comparable: rerunning a
// cell must reproduce it field-for-field.
type OverloadResult struct {
	Trace string
	Sched string

	Offered   int    // arrivals the trace scheduled
	Completed uint64 // operations acknowledged within the retry budget
	Failed    uint64 // operations that exhausted the retry budget
	Retries   uint64 // retransmissions beyond each operation's first send

	GoodputMsgMs float64 // completed operations per millisecond
	MeanUs       float64 // mean completion latency from scheduled arrival
	P50Us        float64
	P99Us        float64

	Sheds          uint64 // ring high-watermark sheds (admission control)
	PoolDrops      uint64 // genuine receive-pool exhaustion
	InjectedDrops  uint64 // device losses forced by the fault plane
	CRCDrops       uint64 // frames rejected by the board's frame check
	QuotaThrottled uint64 // handler executions refused to the lazy path
	LazyServed     uint64 // requests served by the user-level drainers
	RelayRejected  uint64 // relay-level refusals (caps, quota, malformed)
	RelayExpired   uint64 // blobs TTL-expired before delivery
}

// overloadRelayConfig bounds the relay so the adversarial traces actually
// hit its caps: short TTLs and per-conversation/tenant limits.
func overloadRelayConfig() relay.Config {
	return relay.Config{
		TTLUs:           5_000,
		BurnTTLUs:       2_000,
		MaxBlobBytes:    1024,
		MaxBlobsPerConv: 64,
		MaxTenantBytes:  8 << 10,
	}
}

// overloadTenant maps a client index onto its tenant label.
func overloadTenant(client int) string {
	return fmt.Sprintf("t%d", client%overloadTenants)
}

// overloadReplyFrame wraps a relay reply in Ethernet+IP+UDP headers
// addressed back to client c's lane at dstPort.
func (w *scaleWorld) overloadReplyFrame(c scaleHost, dstPort uint16, rep []byte) []byte {
	eh := ether.Header{Dst: ether.PortMAC(c.e.Addr()), Src: ether.PortMAC(w.srv.e.Addr()),
		Type: ether.TypeIPv4}
	b := eh.Marshal(nil)
	ih := ip.Header{TotalLen: uint16(ip.HeaderLen + udp.HeaderLen + len(rep)),
		TTL: 64, Proto: ip.ProtoUDP, DF: true, Src: w.srv.ip, Dst: c.ip}
	b = ih.Marshal(b)
	b = binary.BigEndian.AppendUint16(b, overloadPort)
	b = binary.BigEndian.AppendUint16(b, dstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(udp.HeaderLen+len(rep)))
	b = binary.BigEndian.AppendUint16(b, 0) // checksum not used
	return append(b, rep...)
}

// overloadReq extracts the relay request and its UDP source port (the
// client lane to answer) from a striped receive buffer, validating lengths
// against the UDP header. ok=false means the frame is malformed or
// truncated and must take the garbage path.
func overloadReq(raw []byte, frameLen int) (req []byte, srcPort uint16, ok bool) {
	const off = ether.HeaderLen + ip.HeaderLen + udp.HeaderLen
	if frameLen < off {
		return nil, 0, false
	}
	srcPort = uint16(raw[aegis.StripedIndex(off-8)])<<8 | uint16(raw[aegis.StripedIndex(off-7)])
	udpLen := int(raw[aegis.StripedIndex(off-4)])<<8 | int(raw[aegis.StripedIndex(off-3)])
	n := udpLen - udp.HeaderLen
	if n <= 0 || off+n > frameLen {
		return nil, 0, false
	}
	req = make([]byte, n)
	for j := 0; j < n; j++ {
		req[j] = raw[aegis.StripedIndex(off+j)]
	}
	return req, srcPort, true
}

// runOverloadCell replays one trace through one fault schedule: a fresh
// 16-client scale world, per-client relay ASHs with admission control and
// tenant quotas on the server, backoff clients replaying their trace
// slices open-loop.
func runOverloadCell(cfg *Config, tr overloadTrace, schedName string) OverloadResult {
	sched, ok := fault.Named(schedName)
	if !ok {
		panic("bench: unknown fault schedule " + schedName)
	}
	spec := workload.Spec{
		Clients:   overloadClients,
		Events:    overloadEvents(cfg),
		MeanGapUs: tr.GapUs,
		Size:      overloadSize,
		MaxSize:   overloadMaxSize,
	}
	// Round-trip the generated trace through the binary codec: the replay
	// consumes exactly what a stored trace file would parse to.
	trace, err := workload.Parse(tr.Gen(overloadTraceSeed, spec).Encode())
	if err != nil {
		panic(fmt.Sprintf("bench: trace codec round-trip: %v", err))
	}

	// Lane clients need room for overloadLanes sockets each (a socket
	// allocates tx+rx staging buffers) and enough receive-pool buffers
	// that duplicate replies to retransmitted requests don't exhaust the
	// pool, so size them up from the scale experiment's one-socket
	// default.
	w := newScaleWorldMem(overloadClients, 1<<20, 4*overloadLanes)
	pl := fault.New(overloadFaultSeed, sched)
	pl.AttachWire(w.sw)
	pl.AttachEthernet(w.srv.e)
	pl.AttachSystem(w.srv.sys)
	w.srv.sys.Quota = sandbox.NewQuotaLedger(
		w.prof.Cycles(overloadQuotaWindowUs), sim.Time(overloadTenantBudget))

	rsrv := relay.NewServer(overloadRelayConfig())
	var lazyServed uint64

	// Server: one process per client runs the eager ASH and the lazy
	// drainer for that client's binding. The ASH answers from the
	// interrupt path; quota-throttled and garbage frames fall through to
	// the ring, where the drainer serves them at user level (slower, but
	// served — throttling defers work, it does not discard it).
	for i := range w.cli {
		i := i
		c := w.cli[i]
		tenant := overloadTenant(i)
		w.srv.k.Spawn(fmt.Sprintf("relay-%d", i), func(p *aegis.Process) {
			// A 5-atom peer filter (any source port): all of client i's
			// lanes land on one binding, so its bursts concentrate on one
			// ring and admission control has a meaningful watermark.
			f := scalePeerFilter(w.srv.ip, ip.ProtoUDP, overloadPort, c.ip)
			b, err := w.srv.e.BindFilter(p, f)
			if err != nil {
				panic(err)
			}
			b.Ring.HighWater = overloadHighWater
			dst := c.e.Addr()
			ash := w.srv.sys.NewFuncASH(p, fmt.Sprintf("relay-%d", i), true,
				func(ctx *core.Ctx) aegis.Disposition {
					// Header validation against the UDP length field.
					ctx.Straightline(24, 8)
					req, lane, ok := overloadReq(ctx.RawData(), ctx.Entry().Len)
					if !ok {
						return aegis.DispToUser
					}
					// Copy-in from the striped buffer, byte-wise.
					ctx.Straightline(2*len(req), len(req))
					rep, insns, memops := rsrv.Handle(w.prof.Us(ctx.When()), tenant, req)
					ctx.Straightline(insns, memops)
					ctx.Send(dst, 0, w.overloadReplyFrame(c, lane, rep))
					return aegis.DispConsumed
				})
			ash.Tenant = tenant
			ash.AttachEth(b)

			for {
				e, ok := b.Ring.WaitRecvUntil(p, 0)
				if !ok {
					return
				}
				raw := p.K.Bytes(e.Addr, 2*e.Len)
				req, lane, wellFormed := overloadReq(raw, e.Len)
				if wellFormed {
					// User-level service: wakeup, scheduling, and copy-out
					// overhead first, then parse + copy + relay work with
					// no SFI multiplier but a full syscall per reply send.
					p.Compute(w.prof.Cycles(overloadLazyUs))
					rep, insns, memops := rsrv.Handle(w.prof.Us(p.K.Now()), tenant, req)
					p.Compute(sim.Time(24 + 2*len(req) + insns + 2*memops))
					w.srv.e.Send(p, dst, w.overloadReplyFrame(c, lane, rep))
					lazyServed++
				}
				w.srv.e.FreeBuf(e.BufIndex)
			}
		})
	}

	// Clients: replay the per-client trace slices open-loop, striped
	// across overloadLanes concurrent sender processes per client (one UDP
	// source port each) so a burst of closely-spaced arrivals is actually
	// offered concurrently instead of serializing behind one outstanding
	// request. Arrival times come from the trace alone; a lane running
	// behind schedule issues immediately but measures latency from the
	// scheduled arrival, so queueing delay is charged to the system, not
	// forgiven.
	perClient := trace.PerClient(overloadClients)
	hist := &obs.Histogram{}
	ends := make([]sim.Time, overloadClients*overloadLanes)
	var completed, failed, retries uint64
	done := 0
	for i := range w.cli {
		i := i
		c := w.cli[i]
		evs := perClient[i]
		for lane := 0; lane < overloadLanes; lane++ {
			lane := lane
			lanePort := uint16(scaleClientPort + lane)
			c.k.Spawn(fmt.Sprintf("client-%d", lane), func(p *aegis.Process) {
				defer func() { done++ }()
				sock := udp.NewSocket(
					w.stack(p, c, scaleListenFilter(c.ip, ip.ProtoUDP, lanePort)),
					lanePort, udp.Options{})
				bo := retry.New(retry.Policy{
					BaseUs: overloadBackoffBaseUs,
					CapUs:  overloadBackoffCapUs,
					Budget: overloadRetryBudget,
				}, overloadJitterSeed, i*overloadLanes+lane)
				for idx, ev := range evs {
					if idx%overloadLanes != lane {
						continue
					}
					schedAt := w.prof.Cycles(ev.AtUs + overloadWarmupUs)
					p.SleepUntil(schedAt)
					seq := uint16(idx)
					var op byte
					var req []byte
					switch {
					case idx%16 == 11:
						op, req = relay.OpBurn, relay.BurnReq(ev.Conv)
					case idx%4 == 3:
						op, req = relay.OpPoll, relay.PollReq(ev.Conv)
					default:
						payload := make([]byte, ev.Size)
						for j := range payload {
							payload[j] = byte(i + j)
						}
						op, req = relay.OpSubmit, relay.SubmitReq(ev.Conv, seq, payload)
					}
					bo.Reset()
					acked := false
					for attempt := 0; ; attempt++ {
						waitUs, ok := bo.Next()
						if !ok {
							failed++
							break
						}
						if attempt > 0 {
							retries++
						}
						if err := sock.SendBytes(w.srv.ip, overloadPort, req); err != nil {
							panic(err)
						}
						deadline := p.K.Now() + w.prof.Cycles(waitUs)
						for {
							m, got, err := sock.RecvUntil(false, deadline)
							if err != nil {
								panic(err)
							}
							if !got {
								break // timeout: back off and retransmit
							}
							rep := append([]byte(nil), m.Bytes(p.K)...)
							sock.Release(m)
							rop, _, rseq, rcid, _, wellFormed := relay.ParseReply(rep)
							if wellFormed && rop == op && rcid == ev.Conv &&
								(op != relay.OpSubmit || rseq == seq) {
								acked = true
								break
							}
							// A stale reply to an earlier attempt: discard and
							// keep listening inside the same window.
						}
						if acked {
							break
						}
					}
					if acked {
						completed++
						hist.Observe(p.K.Now() - schedAt)
					}
				}
				ends[i*overloadLanes+lane] = p.K.Now()
			})
		}
	}

	// The drainers block forever, so the engine never drains on its own:
	// advance in slices until every client lane finishes or the bound
	// passes.
	limit := w.prof.Cycles(600_000_000) // 10 simulated minutes
	slice := w.prof.Cycles(10_000)
	for done < overloadClients*overloadLanes && w.eng.Now() < limit && w.eng.Pending() > 0 {
		w.eng.RunFor(slice)
	}
	checkPoolDrained(w.eng, w.sw.Pool)

	res := OverloadResult{
		Trace: tr.Name, Sched: schedName,
		Offered:   len(trace.Events),
		Completed: completed, Failed: failed, Retries: retries,
	}
	var hi sim.Time
	for _, e := range ends {
		if e > hi {
			hi = e
		}
	}
	if us := w.prof.Us(hi); us > 0 {
		res.GoodputMsgMs = float64(completed) / us * 1000
	}
	if n := hist.Count(); n > 0 {
		res.MeanUs = w.prof.Us(hist.Sum()) / float64(n)
	}
	res.P50Us = w.prof.Us(hist.Quantile(0.50))
	res.P99Us = w.prof.Us(hist.Quantile(0.99))
	res.Sheds = w.srv.e.LoadSheds
	res.PoolDrops = w.srv.e.DroppedNoBuf
	res.InjectedDrops = w.srv.e.InjectedRingDrops + w.srv.e.InjectedPoolDrops
	res.CRCDrops = w.srv.e.CRCDrops
	res.QuotaThrottled = w.srv.sys.QuotaThrottled
	res.LazyServed = lazyServed
	res.RelayRejected = rsrv.Rejected
	res.RelayExpired = rsrv.Expired
	return res
}

// overloadCells enumerates the matrix, trace-major so the rendered table
// reads straight out of the result slice.
func overloadCells(cfg *Config) []Cell {
	var cells []Cell
	for _, tr := range overloadTraces() {
		for _, sc := range overloadScheds {
			tr, sc := tr, sc
			cells = append(cells, Cell{
				Label: fmt.Sprintf("overload/%s/%s", tr.Name, sc),
				Run:   func(cc *Config) any { return runOverloadCell(cc, tr, sc) },
			})
		}
	}
	return cells
}

// RunOverload executes the full matrix.
func RunOverload(cfg *Config) []OverloadResult {
	vs := runCells(cfg, overloadCells(cfg))
	out := make([]OverloadResult, len(vs))
	for i, v := range vs {
		out[i] = v.(OverloadResult)
	}
	return out
}

// RenderOverload formats the matrix: offered vs completed load, latency
// from scheduled arrival, and where the excess went (shed, throttled,
// lazily served, rejected).
func RenderOverload(results []OverloadResult) string {
	var b strings.Builder
	b.WriteString("Overload: adversarial open-loop traces vs graceful degradation\n")
	b.WriteString("  (lat from scheduled arrival; shed = ring admission control,\n")
	b.WriteString("   thr = tenant quota refusals to the lazy path, lazy = drainer-served)\n")
	fmt.Fprintf(&b, "  %-10s %-8s %5s %5s %4s %5s %9s %8s %8s %5s %5s %5s %5s %5s\n",
		"trace", "sched", "offer", "compl", "fail", "retry", "gdpt[m/ms]",
		"p50[us]", "p99[us]", "shed", "thr", "lazy", "rej", "drop")
	fmt.Fprintf(&b, "  %s\n", strings.Repeat("-", 104))
	for _, r := range results {
		drops := r.PoolDrops + r.InjectedDrops + r.CRCDrops
		fmt.Fprintf(&b, "  %-10s %-8s %5d %5d %4d %5d %9.2f %8.1f %8.1f %5d %5d %5d %5d %5d\n",
			r.Trace, r.Sched, r.Offered, r.Completed, r.Failed, r.Retries,
			r.GoodputMsgMs, r.P50Us, r.P99Us,
			r.Sheds, r.QuotaThrottled, r.LazyServed, r.RelayRejected, drops)
	}
	return b.String()
}
