package bench

import (
	"encoding/binary"
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/dpf"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/obs"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/nfs"
	"ashs/internal/proto/tcp"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
)

// The scale experiment measures many-client fan-in: N client hosts on one
// Ethernet segment all talk to a single server host, for N up to 512, and
// the server's per-message receive cost is examined as endpoints multiply.
// The paper's claim under test is that ASH-style demultiplexing scales
// sub-linearly: the DPF trie classifies a frame in O(filter depth)
// regardless of how many endpoint filters are installed (the per-endpoint
// atoms collapse into one multi-way branch), and batched interrupt service
// amortizes the interrupt entry across a burst of arrivals, so cycles per
// message at N=512 are far below 512x the N=1 cost.
//
// Three workloads fan in, each a (workload, N) cell of the runner:
//
//   - udp-ash:  64-byte UDP echo answered entirely by a per-client ASH
//   - tcp-fast: 64-byte TCP ping-pong through the small-message fast path
//   - nfs-read: 1 KiB NFS reads against one server socket
//
// Scale worlds are built directly (one server + N small client kernels)
// rather than through the two-host Testbed, so the global Obs/Fault hooks
// do not apply; each cell measures client RTTs into its own obs.Histogram
// and reads the server's demux/interrupt counters, which keeps every cell
// self-contained and its output byte-identical at any -parallel level.

// scaleNs is the client-count sweep.
var scaleNs = []int{1, 4, 16, 64, 256, 512}

// scaleWorkloads names the fan-in workloads, in presentation order.
var scaleWorkloads = []string{"udp-ash", "tcp-fast", "nfs-read"}

const (
	scaleEchoPort   = 7
	scaleTCPPort    = 80
	scaleNFSPort    = 2049
	scaleClientPort = 1234
	scalePayload    = 64   // echo message size (UDP and TCP)
	scaleReadBytes  = 1024 // NFS read size
	scaleFileBytes  = 4096 // NFS served file
	scaleStaggerUs  = 5    // per-client start offset

	// Client hosts are deliberately tiny (a 512-host world must fit in
	// memory): enough for one UDP socket, one TCP connection, and an
	// 8-buffer receive pool.
	scaleClientMem     = 256 << 10
	scaleClientRxBufs  = 8
	scaleServerMem     = 48 << 20
	scaleServerRxSlack = 64
)

// scaleHost is one simulated host of a fan-in world.
type scaleHost struct {
	k   *aegis.Kernel
	e   *aegis.EthernetIf
	ip  ip.Addr
	sys *core.System // server only
}

// scaleWorld is one server plus n clients on a shared Ethernet switch.
type scaleWorld struct {
	eng  *sim.Engine
	prof *mach.Profile
	sw   *netdev.Switch
	srv  scaleHost
	cli  []scaleHost
	res  ip.StaticResolver
}

func newScaleWorld(n int) *scaleWorld {
	return newScaleWorldMem(n, scaleClientMem, scaleClientRxBufs)
}

// newScaleWorldMem is newScaleWorld with per-client sizing overrides, for
// experiments whose clients run more than one socket at once (e.g. the
// overload experiment's concurrent request lanes).
func newScaleWorldMem(n, clientMem, clientRxBufs int) *scaleWorld {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	w := &scaleWorld{eng: eng, prof: prof, sw: sw, res: ip.StaticResolver{}}

	sk := aegis.NewKernelMem("srv", eng, prof, scaleServerMem)
	// The server's pool must absorb a burst with every client's message in
	// flight at once.
	se := aegis.NewEthernetPool(sk, sw, 2*n+scaleServerRxSlack)
	w.srv = scaleHost{k: sk, e: se, ip: ip.HostAddr(se.Addr()), sys: core.NewSystem(sk)}
	w.res[w.srv.ip] = link.Addr{Port: se.Addr()}

	for i := 0; i < n; i++ {
		ck := aegis.NewKernelMem(fmt.Sprintf("c%03d", i), eng, prof, clientMem)
		ce := aegis.NewEthernetPool(ck, sw, clientRxBufs)
		h := scaleHost{k: ck, e: ce, ip: ip.HostAddr(ce.Addr())}
		w.res[h.ip] = link.Addr{Port: ce.Addr()}
		w.cli = append(w.cli, h)
	}
	return w
}

// scaleListenFilter is the 4-atom wildcard endpoint filter: every
// (proto, port) datagram addressed to local.
func scaleListenFilter(local ip.Addr, proto byte, port uint16) *dpf.Filter {
	return dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq32(ether.HeaderLen+16, ipU32(local)).
		Eq8(ether.HeaderLen+9, proto).
		Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
}

// scalePeerFilter narrows the wildcard by source host (5 atoms): the
// per-client listen endpoint of the fan-in TCP server.
func scalePeerFilter(local ip.Addr, proto byte, port uint16, remote ip.Addr) *dpf.Filter {
	return dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq32(ether.HeaderLen+12, ipU32(remote)).
		Eq32(ether.HeaderLen+16, ipU32(local)).
		Eq8(ether.HeaderLen+9, proto).
		Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
}

// scaleConnFilter pins one flow's full four-tuple (6 atoms). Deeper than
// any listen filter, so the trie's deepest-terminal rule routes
// established traffic here.
func scaleConnFilter(local ip.Addr, proto byte, port uint16, remote ip.Addr, rport uint16) *dpf.Filter {
	return dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq32(ether.HeaderLen+12, ipU32(remote)).
		Eq32(ether.HeaderLen+16, ipU32(local)).
		Eq8(ether.HeaderLen+9, proto).
		Eq16(ether.HeaderLen+ip.HeaderLen+0, rport).
		Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
}

// stack builds an IP stack on h over filter f, with Ethernet link headers
// and static resolution (no ARP daemons on a 512-host world).
func (w *scaleWorld) stack(p *aegis.Process, h scaleHost, f *dpf.Filter) *ip.Stack {
	ep, err := link.BindEthernet(h.e, p, f)
	if err != nil {
		panic(err)
	}
	st := ip.NewStack(ep, h.ip, w.res)
	st.LinkHdrLen = ether.HeaderLen
	myMAC := ether.PortMAC(h.e.Addr())
	st.PrependLink = func(dst link.Addr, b []byte) []byte {
		eh := ether.Header{Dst: ether.PortMAC(dst.Port), Src: myMAC, Type: ether.TypeIPv4}
		return eh.Marshal(b)
	}
	return st
}

// ScaleResult is one (workload, N) cell's measurement.
type ScaleResult struct {
	Workload string
	N        int
	Msgs     uint64  // client operations completed
	ThrMsgMs float64 // aggregate throughput, messages per millisecond
	MeanUs   float64 // mean client latency
	P50Us    float64 // histogram-bucket p50 upper bound
	P99Us    float64 // histogram-bucket p99 upper bound
	// CycPerMsg is the server's kernel receive cost per accepted frame:
	// interrupt entries actually taken plus driver service plus DPF
	// classification. Sub-linear growth vs N is the experiment's claim.
	CycPerMsg   float64
	DemuxPerMsg float64 // DPF classification cycles per accepted frame
	BatchedPct  float64 // interrupt entries absorbed by batching, percent
}

// runScaleCell builds a fresh n-client world, fans the workload in, and
// folds client latencies plus server counters into the result.
func runScaleCell(workload string, n, m int) ScaleResult {
	w := newScaleWorld(n)
	hist := &obs.Histogram{}
	starts := make([]sim.Time, n)
	ends := make([]sim.Time, n)

	switch workload {
	case "udp-ash":
		w.runUDPASH(m, hist, starts, ends)
	case "tcp-fast":
		w.runTCPFast(m, hist, starts, ends)
	case "nfs-read":
		w.runNFSRead(m, hist, starts, ends)
	default:
		panic("bench: unknown scale workload " + workload)
	}
	w.eng.Run()
	checkPoolDrained(w.eng, w.sw.Pool)

	var lo, hi sim.Time
	for i := 0; i < n; i++ {
		if i == 0 || starts[i] < lo {
			lo = starts[i]
		}
		if ends[i] > hi {
			hi = ends[i]
		}
	}
	r := ScaleResult{Workload: workload, N: n, Msgs: hist.Count()}
	if us := w.prof.Us(hi - lo); us > 0 {
		r.ThrMsgMs = float64(r.Msgs) / us * 1000
	}
	if r.Msgs > 0 {
		r.MeanUs = w.prof.Us(hist.Sum()) / float64(r.Msgs)
	}
	r.P50Us = w.prof.Us(hist.Quantile(0.50))
	r.P99Us = w.prof.Us(hist.Quantile(0.99))

	if rx := w.srv.e.RxFrames; rx > 0 {
		intr := w.srv.k.Interrupts
		batched := w.srv.k.BatchedInterrupts
		kernel := sim.Time(intr)*sim.Time(w.prof.InterruptCycles) +
			sim.Time(rx)*sim.Time(w.prof.DeviceRxService) +
			w.srv.e.DemuxCycles
		r.CycPerMsg = float64(kernel) / float64(rx)
		r.DemuxPerMsg = float64(w.srv.e.DemuxCycles) / float64(rx)
		if total := intr + batched; total > 0 {
			r.BatchedPct = 100 * float64(batched) / float64(total)
		}
	}
	return r
}

// runUDPASH installs one 6-atom filter plus echo ASH per client on the
// server; each client ping-pongs m 64-byte datagrams through its own
// socket. The server never schedules a process: the handlers answer from
// the interrupt path.
func (w *scaleWorld) runUDPASH(m int, hist *obs.Histogram, starts, ends []sim.Time) {
	w.srv.k.Spawn("echo", func(p *aegis.Process) {
		for i := range w.cli {
			c := w.cli[i]
			f := scaleConnFilter(w.srv.ip, ip.ProtoUDP, scaleEchoPort, c.ip, scaleClientPort)
			b, err := w.srv.e.BindFilter(p, f)
			if err != nil {
				panic(err)
			}
			tmpl := w.echoTemplate(c)
			dst := c.e.Addr()
			ash := w.srv.sys.NewFuncASH(p, fmt.Sprintf("udp-echo-%d", i), true,
				func(ctx *core.Ctx) aegis.Disposition {
					const off = ether.HeaderLen + ip.HeaderLen + udp.HeaderLen
					n := ctx.Entry().Len
					if n < off {
						return aegis.DispToUser
					}
					// Header validation: the filter already pinned the
					// tuple, the handler re-checks lengths.
					ctx.Straightline(48, 12)
					raw := ctx.RawData()
					frame := append(append([]byte(nil), tmpl...), make([]byte, n-off)...)
					for j := 0; j < n-off; j++ {
						frame[len(tmpl)+j] = raw[aegis.StripedIndex(off+j)]
					}
					// Byte-wise echo copy out of the striped buffer.
					ctx.Straightline(2*(n-off), n-off)
					ctx.Send(dst, 0, frame)
					return aegis.DispConsumed
				})
			ash.AttachEth(b)
		}
	})

	for i := range w.cli {
		i := i
		c := w.cli[i]
		c.k.Spawn("client", func(p *aegis.Process) {
			sock := udp.NewSocket(
				w.stack(p, c, scaleListenFilter(c.ip, ip.ProtoUDP, scaleClientPort)),
				scaleClientPort, udp.Options{})
			payload := make([]byte, scalePayload)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			p.Compute(w.prof.Cycles(float64(i) * scaleStaggerUs))
			starts[i] = p.K.Now()
			for j := 0; j < m; j++ {
				t0 := p.K.Now()
				if err := sock.SendBytes(w.srv.ip, scaleEchoPort, payload); err != nil {
					panic(err)
				}
				msg, err := sock.Recv(false)
				if err != nil {
					panic(err)
				}
				if msg.N != scalePayload {
					panic(fmt.Sprintf("scale: echo returned %d bytes", msg.N))
				}
				sock.Release(msg)
				hist.Observe(p.K.Now() - t0)
			}
			ends[i] = p.K.Now()
		})
	}
}

// echoTemplate prebuilds the reply frame headers (Ethernet + IP + UDP) the
// echo ASH sends back to client c; the handler appends the echoed payload.
func (w *scaleWorld) echoTemplate(c scaleHost) []byte {
	eh := ether.Header{Dst: ether.PortMAC(c.e.Addr()), Src: ether.PortMAC(w.srv.e.Addr()),
		Type: ether.TypeIPv4}
	b := eh.Marshal(nil)
	ih := ip.Header{TotalLen: ip.HeaderLen + udp.HeaderLen + scalePayload,
		TTL: 64, Proto: ip.ProtoUDP, DF: true, Src: w.srv.ip, Dst: c.ip}
	b = ih.Marshal(b)
	b = binary.BigEndian.AppendUint16(b, scaleEchoPort)
	b = binary.BigEndian.AppendUint16(b, scaleClientPort)
	b = binary.BigEndian.AppendUint16(b, udp.HeaderLen+scalePayload)
	return binary.BigEndian.AppendUint16(b, 0) // checksum not used
}

// scaleTCPCfg is the connection config for the fan-in TCP workload.
// Blocking waits (no polling): hundreds of pollers time-sharing the
// server CPU would spin each other out of the schedule.
func (w *scaleWorld) scaleTCPCfg(server bool) tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.MSS = EthernetTCPMSS
	cfg.Polling = false
	if server {
		cfg.Mode = tcp.ModeASH
		cfg.Sys = w.srv.sys
	}
	return cfg
}

// runTCPFast accepts one connection per client through the fan-in path —
// a per-client listen endpoint consumes the SYN, a 6-atom per-connection
// filter claims the rest of the flow before the SYN|ACK goes out, and
// AcceptHandoff completes the handshake — then echoes m small messages
// through the fast path, with the shared ConnTable tracking ownership.
func (w *scaleWorld) runTCPFast(m int, hist *obs.Histogram, starts, ends []sim.Time) {
	tbl := tcp.NewConnTable(0)
	for i := range w.cli {
		i := i
		c := w.cli[i]
		w.srv.k.Spawn(fmt.Sprintf("srv-%d", i), func(p *aegis.Process) {
			lst := w.stack(p, w.srv, scalePeerFilter(w.srv.ip, ip.ProtoTCP, scaleTCPPort, c.ip))
			d, ok, err := lst.RecvUntil(false, 0)
			if err != nil || !ok {
				panic(fmt.Sprintf("scale: listener %d: ok=%v err=%v", i, ok, err))
			}
			syn, isSyn := tcp.ParseSyn(d)
			lst.Release(d)
			if !isSyn {
				panic(fmt.Sprintf("scale: listener %d got non-SYN", i))
			}
			st := w.stack(p, w.srv,
				scaleConnFilter(w.srv.ip, ip.ProtoTCP, scaleTCPPort, syn.RemoteIP, syn.RemotePort))
			conn, err := tcp.AcceptHandoff(st, w.scaleTCPCfg(true), scaleTCPPort, syn)
			if err != nil {
				panic(err)
			}
			if err := tbl.Bind(conn.Tuple(), conn); err != nil {
				panic(err)
			}
			buf := p.AS.MustAlloc(scalePayload, "echo")
			for j := 0; j < m; j++ {
				if err := conn.ReadFull(buf.Base, scalePayload); err != nil {
					panic(err)
				}
				if _, ok := tbl.Lookup(conn.Tuple()); !ok {
					panic("scale: live connection missing from table")
				}
				if err := conn.WriteBytes(w.srv.k.Bytes(buf.Base, scalePayload)); err != nil {
					panic(err)
				}
			}
			if !tbl.Remove(conn.Tuple()) {
				panic("scale: connection already removed")
			}
			_ = conn.Close()
		})
	}

	for i := range w.cli {
		i := i
		c := w.cli[i]
		c.k.Spawn("client", func(p *aegis.Process) {
			p.Compute(w.prof.Cycles(float64(i) * scaleStaggerUs))
			st := w.stack(p, c, scaleListenFilter(c.ip, ip.ProtoTCP, scaleClientPort))
			conn, err := tcp.Connect(st, w.scaleTCPCfg(false), scaleClientPort, w.srv.ip, scaleTCPPort)
			if err != nil {
				panic(err)
			}
			payload := make([]byte, scalePayload)
			for j := range payload {
				payload[j] = byte(i ^ j)
			}
			buf := p.AS.MustAlloc(scalePayload, "reply")
			starts[i] = p.K.Now()
			for j := 0; j < m; j++ {
				t0 := p.K.Now()
				if err := conn.WriteBytes(payload); err != nil {
					panic(err)
				}
				if err := conn.ReadFull(buf.Base, scalePayload); err != nil {
					panic(err)
				}
				hist.Observe(p.K.Now() - t0)
			}
			ends[i] = p.K.Now()
			_ = conn.Close()
		})
	}
}

// runNFSRead serves one in-memory file from a single server socket; each
// client issues m 1 KiB reads. The server is one process draining one
// ring — fan-in pressure shows up as queueing in the latency tail.
func (w *scaleWorld) runNFSRead(m int, hist *obs.Histogram, starts, ends []sim.Time) {
	srv := nfs.NewServer()
	data := make([]byte, scaleFileBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	fh := srv.AddFile("scale", data)

	// Serve forever: a duplicate request born of a client retry must not
	// consume a straggler's slot. The engine drains once the clients are
	// done and the server parks on an empty ring.
	w.srv.k.Spawn("nfsd", func(p *aegis.Process) {
		sock := udp.NewSocket(
			w.stack(p, w.srv, scaleListenFilter(w.srv.ip, ip.ProtoUDP, scaleNFSPort)),
			scaleNFSPort, udp.Options{})
		srv.Serve(p, sock, 0)
	})

	for i := range w.cli {
		i := i
		c := w.cli[i]
		c.k.Spawn("client", func(p *aegis.Process) {
			p.Compute(w.prof.Cycles(float64(i) * scaleStaggerUs))
			sock := udp.NewSocket(
				w.stack(p, c, scaleListenFilter(c.ip, ip.ProtoUDP, scaleClientPort)),
				scaleClientPort, udp.Options{})
			cli := nfs.NewClient(sock, w.srv.ip, scaleNFSPort)
			// Fan-in queueing at N=512 runs to hundreds of milliseconds;
			// the default 100 ms retry timer would fire on queued-but-alive
			// requests and double the load exactly when it hurts.
			cli.RetryUs = 1_000_000
			cli.MaxRetryUs = 4_000_000
			starts[i] = p.K.Now()
			for j := 0; j < m; j++ {
				off := uint32(j*scaleReadBytes) % scaleFileBytes
				t0 := p.K.Now()
				b, err := cli.Read(p, fh, off, scaleReadBytes)
				if err != nil {
					panic(err)
				}
				if len(b) != scaleReadBytes || b[0] != data[off] {
					panic("scale: short or corrupt NFS read")
				}
				hist.Observe(p.K.Now() - t0)
			}
			ends[i] = p.K.Now()
		})
	}
}

// scaleMsgs is the per-client message count.
func scaleMsgs(cfg *Config) int {
	if cfg.quick() {
		return 4
	}
	return 8
}

// scaleCells enumerates the sweep, workload-major so each workload's table
// reads straight out of the result slice.
func scaleCells(m int) []Cell {
	var cells []Cell
	for _, wl := range scaleWorkloads {
		for _, n := range scaleNs {
			wl, n := wl, n
			cells = append(cells, Cell{
				Label: fmt.Sprintf("scale/%s/N=%d", wl, n),
				Run:   func(*Config) any { return runScaleCell(wl, n, m) },
			})
		}
	}
	return cells
}

var scaleWorkloadDesc = map[string]string{
	"udp-ash":  fmt.Sprintf("%d-byte UDP echo answered by per-client ASHs", scalePayload),
	"tcp-fast": fmt.Sprintf("%d-byte TCP ping-pong through the fast path", scalePayload),
	"nfs-read": fmt.Sprintf("%d-byte NFS reads against one server socket", scaleReadBytes),
}

// renderScale formats one table per workload: throughput and latency from
// the client histograms, per-message kernel cost from the server counters.
func renderScale(vs []any) string {
	var b strings.Builder
	b.WriteString("Scale: many-client fan-in, one Ethernet server host\n")
	b.WriteString("  (cyc/msg = server interrupt + driver + DPF demux cycles per accepted frame)\n")
	idx := 0
	for _, wl := range scaleWorkloads {
		fmt.Fprintf(&b, "  %s: %s\n", wl, scaleWorkloadDesc[wl])
		fmt.Fprintf(&b, "    %5s  %6s  %11s  %9s  %8s  %8s  %8s  %9s  %10s\n",
			"N", "msgs", "thr[msg/ms]", "mean[us]", "p50[us]", "p99[us]",
			"cyc/msg", "demux/msg", "batched[%]")
		for range scaleNs {
			r := vs[idx].(ScaleResult)
			idx++
			fmt.Fprintf(&b, "    %5d  %6d  %11.2f  %9.1f  %8.1f  %8.1f  %8.1f  %9.1f  %10.1f\n",
				r.N, r.Msgs, r.ThrMsgMs, r.MeanUs, r.P50Us, r.P99Us,
				r.CycPerMsg, r.DemuxPerMsg, r.BatchedPct)
		}
	}
	return b.String()
}
