package bench

import (
	"bytes"
	"reflect"
	"testing"

	"ashs/internal/fault"
	"ashs/internal/obs"
)

// runSuite executes the named experiments at the given parallelism with a
// tracing plane on every testbed, returning the rendered outputs and the
// exported trace bytes.
func runSuite(t *testing.T, parallel int, names []string) ([]Output, []byte) {
	t.Helper()
	selected, unknown := FindExperiments(names)
	if len(unknown) > 0 {
		t.Fatalf("unknown experiments: %v", unknown)
	}
	cfg := &Config{Quick: true, Parallel: parallel}
	cfg.Obs = func(tb *Testbed) *obs.Plane {
		return obs.New(float64(tb.Prof.MHz))
	}
	outs := RunExperiments(cfg, selected)
	return outs, obs.WriteTrace(cfg.Planes()...)
}

// TestParallelByteIdentical is the golden determinism check: a multi-cell
// slice of the suite rendered at -parallel=4 must match -parallel=1 byte
// for byte, tables and exported trace alike.
func TestParallelByteIdentical(t *testing.T) {
	names := []string{"table1", "fig3", "table4", "table5", "sandbox"}
	serialOut, serialTrace := runSuite(t, 1, names)
	parOut, parTrace := runSuite(t, 4, names)
	if len(serialOut) != len(parOut) {
		t.Fatalf("output count differs: %d vs %d", len(serialOut), len(parOut))
	}
	for i := range serialOut {
		if serialOut[i].Name != parOut[i].Name {
			t.Fatalf("output %d name differs: %s vs %s", i, serialOut[i].Name, parOut[i].Name)
		}
		if serialOut[i].Text != parOut[i].Text {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				serialOut[i].Name, serialOut[i].Text, parOut[i].Text)
		}
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("trace JSON differs between serial (%d bytes) and parallel (%d bytes)",
			len(serialTrace), len(parTrace))
	}
}

// TestParallelChaosMatchesSerial runs a reduced chaos matrix concurrently
// and serially; every ChaosResult (injected-fault counters included) must
// match field for field. Under -race this also shakes out shared state
// between concurrently built testbeds.
func TestParallelChaosMatchesSerial(t *testing.T) {
	p := ChaosParams{
		Seeds:     []int64{1},
		TCPBytes:  256 << 10,
		NFSBytes:  8 << 10,
		Schedules: fault.Canned()[:3],
	}
	serial := RunChaos(&Config{Parallel: 1}, p)
	par := RunChaos(&Config{Parallel: 4}, p)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel chaos diverged from serial:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	for _, r := range serial {
		if !r.TCPOk || !r.NFSOk {
			t.Errorf("%s/seed%d: transfer failed (tcp=%v nfs=%v)", r.Schedule, r.Seed, r.TCPOk, r.NFSOk)
		}
	}
}

func TestFindExperimentsValidatesNames(t *testing.T) {
	selected, unknown := FindExperiments([]string{"table1", "tabel5", " fig3", "nope"})
	if !reflect.DeepEqual(unknown, []string{"tabel5", "nope"}) {
		t.Fatalf("unknown = %v", unknown)
	}
	got := make([]string, len(selected))
	for i, e := range selected {
		got[i] = e.Name
	}
	if !reflect.DeepEqual(got, []string{"table1", "fig3"}) {
		t.Fatalf("selected = %v", got)
	}

	// Requested order must not matter: the registry order is canonical.
	reordered, _ := FindExperiments([]string{"fig3", "table1"})
	if len(reordered) != 2 || reordered[0].Name != "table1" {
		t.Fatalf("canonical order not preserved: %v", reordered)
	}

	all, unknown := FindExperiments([]string{"all"})
	if len(unknown) != 0 || len(all) != len(Experiments()) {
		t.Fatalf("'all' selected %d of %d", len(all), len(Experiments()))
	}
}

// TestReoptParallelByteIdentical pins the DCG-loop experiment across
// parallelism levels: five cells that each build testbeds, re-optimize
// handlers, and sweep the differential harness must render the same
// table and export the same trace at -parallel=4 as serially.
func TestReoptParallelByteIdentical(t *testing.T) {
	serialOut, serialTrace := runSuite(t, 1, []string{"reopt"})
	parOut, parTrace := runSuite(t, 4, []string{"reopt"})
	if len(serialOut) != 1 || len(parOut) != 1 {
		t.Fatalf("output counts: %d vs %d", len(serialOut), len(parOut))
	}
	if serialOut[0].Text != parOut[0].Text {
		t.Errorf("reopt: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serialOut[0].Text, parOut[0].Text)
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("reopt trace JSON differs between serial (%d bytes) and parallel (%d bytes)",
			len(serialTrace), len(parTrace))
	}
}
