package bench

import (
	"fmt"
	"strings"

	"ashs/internal/crl"
	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
)

// RunLint runs the static-analysis lint pass over the CRL handler
// library plus a deliberately sloppy demonstration handler, and renders
// a report. Handlers run on the paper's per-instruction-costed fast
// path, so dead work and unbounded loops are worth flagging at
// download time even when they are safe.
func RunLint(cfg *Config) string {
	return runCells(cfg, lintCells())[0].(string)
}

// lintCells wraps the lint pass as one cell (pure static analysis, no
// testbed).
func lintCells() []Cell {
	return []Cell{{"lint", func(cfg *Config) any { return runLint() }}}
}

func runLint() string {
	var b strings.Builder
	b.WriteString("Handler lint: static-analysis findings over downloadable handler code\n")
	progs := []*vcode.Program{
		crl.IncrementHandler(0x2000, 0, 1),
		crl.TrustedWriteHandler(),
		crl.GenericWriteHandler(0x4000, crl.MaxSegments, 0, 1),
		crl.LockHandler(0x5000, 16, 0, 1),
		crl.FixedRecordWriteHandler(0x2000, 0x3000),
		sloppyHandler(),
	}
	for _, p := range progs {
		fs := analysis.Lint(p)
		if len(fs) == 0 {
			fmt.Fprintf(&b, "  %-22s clean\n", p.Name)
			continue
		}
		fmt.Fprintf(&b, "  %-22s %d finding(s)\n", p.Name, len(fs))
		for _, f := range fs {
			fmt.Fprintf(&b, "    %s\n", f)
		}
	}
	return b.String()
}

// sloppyHandler exhibits every lint finding kind: a store overwritten
// before any read, a load whose value is never used, a persistent
// register that is declared but never read, and a loop whose trip count
// comes from the message (so no static bound exists).
func sloppyHandler() *vcode.Program {
	b := vcode.NewBuilder("demo-sloppy")
	t1, t2, i, n := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Persistent()
	b.MovI(t1, 5)
	b.MovI(t1, 6)
	b.Ld32(t2, vcode.RArg0, 0)
	b.Ld32(n, vcode.RArg0, 4)
	b.MovI(i, 0)
	top := b.NewLabel()
	b.Bind(top)
	b.AddIU(i, i, 1)
	b.BltU(i, n, top)
	b.Mov(vcode.RRet, t1)
	b.Ret()
	return b.MustAssemble()
}
