package bench

import (
	"reflect"
	"strings"
	"testing"
)

// TestMegascaleSubLinearDemux is the acceptance check on the flyweight
// sweep's headline claim: multiplying the installed filter count 64x
// must leave the server's per-message demux cost essentially flat (the
// trie deepens by zero levels; the walk never touches the width).
func TestMegascaleSubLinearDemux(t *testing.T) {
	cfg := &Config{Quick: true}
	small := runMegaCell("udp-echo", 1024, cfg)
	big := runMegaCell("udp-echo", 65536, cfg)

	if small.Msgs == 0 || big.Msgs == 0 {
		t.Fatalf("no completed operations: small=%d big=%d", small.Msgs, big.Msgs)
	}
	if small.Filters != 1024 || big.Filters != 65536 {
		t.Fatalf("filter counts: small=%d big=%d", small.Filters, big.Filters)
	}
	if small.TrieDepth != 3 || big.TrieDepth != 3 {
		t.Fatalf("trie depth grew with N: small=%d big=%d (want 3)", small.TrieDepth, big.TrieDepth)
	}
	if small.DemuxPerMsg <= 0 {
		t.Fatalf("no demux cost measured: %+v", small)
	}
	// 64x the filters, at most 2x the per-message demux cycles — in
	// practice they are identical, this bound just leaves slack for
	// cost-model tweaks.
	if big.DemuxPerMsg > 2*small.DemuxPerMsg {
		t.Fatalf("demux cost is not sub-linear: %.1f cyc/msg at N=1k vs %.1f at N=64k",
			small.DemuxPerMsg, big.DemuxPerMsg)
	}
	if big.CycPerMsg > 2*small.CycPerMsg {
		t.Fatalf("kernel receive cost is not sub-linear: %.1f vs %.1f cyc/msg",
			small.CycPerMsg, big.CycPerMsg)
	}
}

// TestMegascaleWorkloadsComplete runs a small cell of each workload and
// checks operation accounting end to end: every open-loop arrival either
// completes or (NFS under incast sheds) exhausts its retry budget —
// nothing is silently lost.
func TestMegascaleWorkloadsComplete(t *testing.T) {
	cfg := &Config{Quick: true}

	udp := runMegaCell("udp-echo", 1024, cfg)
	wantUDP := uint64(megaEvents(cfg, "udp-echo", 1024) + megaWaves*1024)
	if udp.Failures != 0 || udp.Msgs != wantUDP {
		t.Errorf("udp-echo: %d/%d ops completed, %d failed", udp.Msgs, wantUDP, udp.Failures)
	}

	tcp := runMegaCell("tcp-pp", 128, cfg)
	wantTCP := uint64(megaEvents(cfg, "tcp-pp", 128) + megaWaves*128)
	if tcp.Failures != 0 || tcp.Msgs != wantTCP {
		t.Errorf("tcp-pp: %d/%d ops completed, %d failed", tcp.Msgs, wantTCP, tcp.Failures)
	}
	if tcp.Conns == 0 || tcp.Spread < 1 {
		t.Errorf("tcp-pp: no connection-table peak recorded: %+v", tcp)
	}

	nfs := runMegaCell("nfs-read", 512, cfg)
	wantNFS := uint64(megaEvents(cfg, "nfs-read", 512) + megaWaves*512)
	if nfs.Msgs+nfs.Failures != wantNFS {
		t.Errorf("nfs-read: %d completed + %d failed != %d arrivals", nfs.Msgs, nfs.Failures, wantNFS)
	}
	if nfs.Sheds == 0 || nfs.Retries == 0 {
		t.Errorf("nfs-read: incast never engaged the shed/retry plane: sheds=%d retries=%d",
			nfs.Sheds, nfs.Retries)
	}
}

// TestMegascaleParallelByteIdentical re-runs a mixed slice of cells at
// -parallel=4: results (and therefore rendered bytes) must match the
// serial run field for field.
func TestMegascaleParallelByteIdentical(t *testing.T) {
	cells := []Cell{
		{Label: "megascale/udp-echo/N=512", Run: func(cc *Config) any { return runMegaCell("udp-echo", 512, cc) }},
		{Label: "megascale/tcp-pp/N=128", Run: func(cc *Config) any { return runMegaCell("tcp-pp", 128, cc) }},
		{Label: "megascale/nfs-read/N=256", Run: func(cc *Config) any { return runMegaCell("nfs-read", 256, cc) }},
	}
	serial := runCells(&Config{Quick: true, Parallel: 1}, cells)
	par := runCells(&Config{Quick: true, Parallel: 4}, cells)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel results differ from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestMegascaleRenderShape checks the table layout against the quick-mode
// cell enumeration without running the sweep.
func TestMegascaleRenderShape(t *testing.T) {
	cfg := &Config{Quick: true}
	var vs []any
	for _, wl := range megaWorkloads {
		for _, n := range megascaleNs(cfg, wl) {
			vs = append(vs, MegaResult{Workload: wl, N: n, Filters: n, TrieDepth: 3})
		}
	}
	if len(vs) != len(megascaleCells(cfg)) {
		t.Fatalf("fabricated %d results for %d cells", len(vs), len(megascaleCells(cfg)))
	}
	out := renderMegascale(cfg, vs)
	for _, want := range []string{"Megascale:", "udp-echo", "tcp-pp", "nfs-read", "demux/msg", "spread", "sheds"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
