package bench

import (
	"ashs/internal/aegis"
	"ashs/internal/dpf"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Table1 is the raw round-trip latency of the base system (Section IV-C):
// a 4-byte message ping-ponged between two hosts.
type Table1 struct {
	InKernelAN2 float64 // us per round trip
	UserAN2     float64
	Ethernet    float64
}

// PaperTable1 is Table I of the paper.
var PaperTable1 = Table1{InKernelAN2: 112, UserAN2: 182, Ethernet: 309}

// table1Cells enumerates Table I's three independent measurements.
func table1Cells(iters int) []Cell {
	return []Cell{
		{"table1/in-kernel", func(cfg *Config) any { return inKernelAN2RT(cfg, iters, nil) }},
		{"table1/user-level", func(cfg *Config) any { return userAN2RT(cfg, iters, nil) }},
		{"table1/ethernet", func(cfg *Config) any { return ethernetRT(cfg, iters, nil) }},
	}
}

func mergeTable1(vs []any) Table1 {
	return Table1{
		InKernelAN2: vs[0].(float64),
		UserAN2:     vs[1].(float64),
		Ethernet:    vs[2].(float64),
	}
}

// RunTable1 regenerates Table I.
func RunTable1(cfg *Config, iters int) Table1 {
	return mergeTable1(runCells(cfg, table1Cells(iters)))
}

// inKernelAN2RT measures the best in-kernel ping-pong: polled driver
// endpoints replying directly from the kernel. A non-nil o attaches an
// observability plane and records the measurement window for Breakdown.
func inKernelAN2RT(cfg *Config, iters int, o *obsRun) float64 {
	tb := NewAN2Testbed(cfg)
	o.attach(tb)
	const vc = 5
	sb, err := tb.A2.BindVC(nil, vc, 8, 4096)
	if err != nil {
		panic(err)
	}
	sb.InKernel = true
	sb.InKernelRx = func(mc *aegis.MsgCtx) {
		mc.Send(mc.Src, mc.VC, append([]byte(nil), mc.Data()...))
	}
	cb, err := tb.A1.BindVC(nil, vc, 8, 4096)
	if err != nil {
		panic(err)
	}
	cb.InKernel = true
	count := 0
	var done sim.Time
	cb.InKernelRx = func(mc *aegis.MsgCtx) {
		count++
		if count < iters {
			mc.Send(mc.Src, mc.VC, []byte{1, 2, 3, 4})
		} else {
			done = mc.When()
		}
	}
	tb.A1.KernelSend(tb.A2.Addr(), vc, []byte{1, 2, 3, 4})
	tb.Run()
	o.window(0, done)
	return tb.Us(done) / float64(iters)
}

// userAN2RT measures the user-level ping-pong: polling processes using
// the full system call interface.
func userAN2RT(cfg *Config, iters int, o *obsRun) float64 {
	tb := NewAN2Testbed(cfg)
	o.attach(tb)
	const vc = 5
	tb.K2.Spawn("echo", func(p *aegis.Process) {
		ep, err := link.BindAN2(tb.A2, p, vc, 8, 4096)
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			f := ep.Recv(true)
			msg := make([]byte, f.Len())
			f.Bytes(msg, 0, f.Len())
			ep.Release(f)
			ep.Send(link.Addr{Port: f.Entry.Src, VC: vc}, msg)
		}
	})
	var total, start sim.Time
	tb.K1.Spawn("client", func(p *aegis.Process) {
		ep, err := link.BindAN2(tb.A1, p, vc, 8, 4096)
		if err != nil {
			panic(err)
		}
		start = p.K.Now()
		for i := 0; i < iters; i++ {
			ep.Send(link.Addr{Port: tb.A2.Addr(), VC: vc}, []byte{1, 2, 3, 4})
			f := ep.Recv(true)
			ep.Release(f)
		}
		total = p.K.Now() - start
	})
	tb.Run()
	o.window(start, start+total)
	return tb.Us(total) / float64(iters)
}

// ethernetRT measures the user-level Ethernet ping-pong with DPF demux.
func ethernetRT(cfg *Config, iters int, o *obsRun) float64 {
	tb := NewEthernetTestbed(cfg)
	o.attach(tb)
	tagged := func(tag byte) *dpf.Filter { return dpf.NewFilter().Eq8(0, tag) }

	tb.K2.Spawn("echo", func(p *aegis.Process) {
		ep, err := link.BindEthernet(tb.E2, p, tagged(0xAA))
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			f := ep.Recv(true)
			msg := make([]byte, f.Len())
			f.Bytes(msg, 0, f.Len())
			msg[0] = 0xBB
			ep.Release(f)
			ep.Send(link.Addr{Port: f.Entry.Src}, msg)
		}
	})
	var total, start sim.Time
	tb.K1.Spawn("client", func(p *aegis.Process) {
		ep, err := link.BindEthernet(tb.E1, p, tagged(0xBB))
		if err != nil {
			panic(err)
		}
		start = p.K.Now()
		for i := 0; i < iters; i++ {
			ep.Send(link.Addr{Port: tb.E2.Addr()}, []byte{0xAA, 0, 0, 4})
			f := ep.Recv(true)
			ep.Release(f)
		}
		total = p.K.Now() - start
	})
	tb.Run()
	o.window(start, start+total)
	return tb.Us(total) / float64(iters)
}

// Table renders Table I.
func (t Table1) Table() *Table {
	return &Table{
		Title:   "Table I: raw latency (us per round trip), 4-byte messages",
		Columns: []string{"latency"},
		Format:  "%.0f",
		Rows: []Row{
			{"in-kernel AN2", []float64{t.InKernelAN2}, []float64{PaperTable1.InKernelAN2}},
			{"user-level AN2", []float64{t.UserAN2}, []float64{PaperTable1.UserAN2}},
			{"Ethernet", []float64{t.Ethernet}, []float64{PaperTable1.Ethernet}},
		},
	}
}
