package bench

import (
	"ashs/internal/bench/runner"
	"ashs/internal/obs"
)

// Config carries the cross-cutting experiment parameters that used to be
// threaded by hand (or, worse, through the package-global Observe hook):
// workload sizing, observability, fault injection, and parallelism. It is
// passed explicitly into every Run* entry point and every testbed builder.
// A nil *Config is valid everywhere and means: full workloads, no
// observability, no fault injection, default parallelism.
//
// Configs are cheap values; the runner gives every concurrently executing
// cell its own copy, so nothing here needs locking.
type Config struct {
	// Quick selects reduced workload sizes (faster, slightly noisier
	// throughput numbers). Experiment registrations consult it when
	// enumerating their cells.
	Quick bool

	// Obs, when non-nil, is called with every freshly built testbed
	// before any workload runs. Returning a non-nil plane attaches it to
	// the testbed and records it for trace export (Output.Planes), in
	// deterministic cell-then-creation order. Returning nil leaves the
	// testbed unobserved (the hook may still inspect it).
	Obs func(tb *Testbed) *obs.Plane

	// Fault, when non-nil, is called with every freshly built testbed
	// after Obs, so a fault plane can be attached to every world an
	// experiment builds. Note the chaos matrix attaches its own fault
	// planes on top of whatever this hook does.
	Fault func(tb *Testbed)

	// Parallel bounds the worker pool executing experiment cells.
	// Values below 1 select one worker per available CPU. Results are
	// merged in cell-index order, so any value yields byte-identical
	// output; only wall time changes.
	Parallel int

	// planes collects the observability planes this config's testbeds
	// attached, in creation order. Each cell runs with its own Config
	// copy, so the slice needs no lock; the runner concatenates the
	// per-cell slices in cell-index order afterwards.
	planes []*obs.Plane
}

// observe applies the config's per-testbed hooks to a new testbed. Called
// from the testbed builders; nil-safe.
func (cfg *Config) observe(tb *Testbed) {
	if cfg == nil {
		return
	}
	if cfg.Obs != nil {
		if pl := cfg.Obs(tb); pl != nil {
			tb.AttachObs(pl)
			cfg.planes = append(cfg.planes, pl)
		}
	}
	if cfg.Fault != nil {
		cfg.Fault(tb)
	}
}

// cellConfig derives the private Config copy one cell runs under: same
// hooks and sizing, fresh plane collection.
func (cfg *Config) cellConfig() *Config {
	if cfg == nil {
		return nil
	}
	cc := *cfg
	cc.planes = nil
	return &cc
}

// parallelism reports the worker count this config selects.
func (cfg *Config) parallelism() int {
	if cfg == nil {
		return runner.DefaultParallelism()
	}
	return runner.Normalize(cfg.Parallel)
}

// quick reports the workload-size selection, nil-safe.
func (cfg *Config) quick() bool { return cfg != nil && cfg.Quick }

// Cell is one independent unit of experiment work under an explicit
// config: one testbed build, one workload, one result.
type Cell struct {
	Label string
	Run   func(cfg *Config) any
}

// cellOut is what a wrapped cell returns to the pool: the experiment
// result plus the observability planes the cell's testbeds attached.
type cellOut struct {
	v      any
	planes []*obs.Plane
}

// wrap binds a bench Cell to a parent config as a runner.Cell: the cell
// executes under its own config copy and carries its planes out with the
// result.
func wrap(parent *Config, c Cell) runner.Cell {
	return runner.Cell{Label: c.Label, Run: func() any {
		cc := parent.cellConfig()
		v := c.Run(cc)
		var planes []*obs.Plane
		if cc != nil {
			planes = cc.planes
		}
		return cellOut{v: v, planes: planes}
	}}
}

// runCells executes cells under cfg's parallelism and returns their
// results in cell-index order. The planes each cell attached are folded
// back into cfg in the same deterministic order, so a traced parallel run
// exports exactly the planes (and ordering) of a serial one.
func runCells(cfg *Config, cells []Cell) []any {
	wrapped := make([]runner.Cell, len(cells))
	for i, c := range cells {
		wrapped[i] = wrap(cfg, c)
	}
	outs := runner.Run(cfg.parallelism(), wrapped)
	results := make([]any, len(outs))
	for i, o := range outs {
		co := o.(cellOut)
		results[i] = co.v
		if cfg != nil {
			cfg.planes = append(cfg.planes, co.planes...)
		}
	}
	return results
}

// Planes returns the observability planes cfg's testbeds attached so far,
// in deterministic cell-then-creation order. The ashbench -trace flag
// exports them as one Chrome trace document.
func (cfg *Config) Planes() []*obs.Plane {
	if cfg == nil {
		return nil
	}
	return cfg.planes
}
