package bench

import (
	"testing"
)

// overloadPick finds one cell of a rendered matrix result set.
func overloadPick(t *testing.T, rs []OverloadResult, trace, sched string) OverloadResult {
	t.Helper()
	for _, r := range rs {
		if r.Trace == trace && r.Sched == sched {
			return r
		}
	}
	t.Fatalf("cell %s/%s missing from matrix", trace, sched)
	return OverloadResult{}
}

// TestOverloadGracefulDegradation is the experiment's headline claim: at
// twice the saturating arrival rate, with the whole overload-control plane
// engaged, the system keeps completing work near its peak rate with a
// bounded tail — it degrades, it does not collapse.
func TestOverloadGracefulDegradation(t *testing.T) {
	cfg := &Config{Quick: true}
	rs := RunOverload(cfg)
	if len(rs) < 12 {
		t.Fatalf("matrix has %d cells, want >= 12", len(rs))
	}

	peak := overloadPick(t, rs, "pois-1x", "baseline")
	over := overloadPick(t, rs, "pois-2x", "baseline")
	deep := overloadPick(t, rs, "pois-4x", "baseline")

	// The saturation point is a healthy operating regime: every offered
	// operation completes.
	if peak.Completed != uint64(peak.Offered) {
		t.Errorf("1x completed %d of %d offered", peak.Completed, peak.Offered)
	}

	// Graceful degradation: goodput at 2x saturation holds at >= 70% of
	// peak goodput.
	if over.GoodputMsgMs < 0.7*peak.GoodputMsgMs {
		t.Errorf("2x goodput %.2f msg/ms < 70%% of peak %.2f msg/ms",
			over.GoodputMsgMs, peak.GoodputMsgMs)
	}

	// The tail stays bounded: p99 completion latency under 2x overload is
	// within the client's backoff cap plus a round trip, not a queueing
	// blowup.
	if over.P99Us > 2*overloadBackoffCapUs {
		t.Errorf("2x p99 = %.1f us, want <= %.1f us (2x backoff cap)",
			over.P99Us, float64(2*overloadBackoffCapUs))
	}

	// The hold is the control plane's doing, not luck: overload engages
	// tenant quota throttling at 2x and ring admission control by 4x, and
	// throttled work really is served by the lazy path.
	if over.QuotaThrottled == 0 {
		t.Error("2x overload never engaged tenant quota throttling")
	}
	if over.LazyServed == 0 {
		t.Error("2x overload never served a throttled request lazily")
	}
	if deep.Sheds == 0 {
		t.Error("4x overload never engaged ring admission control")
	}
	// Nothing vanished silently at baseline: no fault plane, so the only
	// losses are the control plane's own deliberate sheds.
	for _, r := range []OverloadResult{peak, over, deep} {
		if r.PoolDrops != 0 || r.InjectedDrops != 0 || r.CRCDrops != 0 {
			t.Errorf("%s/%s: unexplained drops pool=%d injected=%d crc=%d",
				r.Trace, r.Sched, r.PoolDrops, r.InjectedDrops, r.CRCDrops)
		}
	}

	// The adversarial shapes engage admission control too: a flash crowd's
	// synchronized burst must hit the ring watermark.
	flash := overloadPick(t, rs, "flashcrowd", "baseline")
	if flash.Sheds == 0 {
		t.Error("flash crowd never engaged ring admission control")
	}
}

// TestOverloadParallelByteIdentical: the rendered matrix is byte-identical
// at every parallelism level — the determinism contract of the suite.
func TestOverloadParallelByteIdentical(t *testing.T) {
	render := func(par int) string {
		cfg := &Config{Quick: true, Parallel: par}
		return RenderOverload(RunOverload(cfg))
	}
	serial := render(1)
	for _, par := range []int{4, 8} {
		if got := render(par); got != serial {
			t.Fatalf("-parallel %d diverged from serial:\n%s\n---\n%s", par, got, serial)
		}
	}
}
