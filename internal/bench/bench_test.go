package bench

import (
	"math"
	"strings"
	"testing"
)

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.2f, paper %.2f (outside %.0f%%)", name, got, want, tol*100)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := RunTable1(nil, 10)
	within(t, "in-kernel AN2", r.InKernelAN2, PaperTable1.InKernelAN2, 0.05)
	within(t, "user-level AN2", r.UserAN2, PaperTable1.UserAN2, 0.05)
	within(t, "Ethernet", r.Ethernet, PaperTable1.Ethernet, 0.05)
}

func TestFig3Shape(t *testing.T) {
	f := RunFig3(nil, 48)
	// Monotone non-decreasing with size; approaches the 16.8 MB/s ceiling.
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].MBps+0.01 < f.Points[i-1].MBps {
			t.Fatalf("throughput dropped between %d and %d bytes",
				f.Points[i-1].Size, f.Points[i].Size)
		}
	}
	last := f.Points[len(f.Points)-1]
	within(t, "4-KB throughput", last.MBps, PaperFig3Max, 0.05)
}

func TestTable2Shape(t *testing.T) {
	p := Table2Params{LatIters: 8, UDPTrains: 10, TCPBytes: 2 << 20}
	r := RunTable2(nil, p)
	rows := r.Rows

	// Latencies within 10% of the paper across the AN2 rows.
	for i := 0; i < 4; i++ {
		within(t, rows[i].Label+" UDP lat", rows[i].UDPLat, PaperTable2[i].UDPLat, 0.10)
		within(t, rows[i].Label+" TCP lat", rows[i].TCPLat, PaperTable2[i].TCPLat, 0.10)
	}
	// Orderings the paper's analysis depends on.
	if !(rows[0].UDPTput > rows[2].UDPTput) {
		t.Error("eliminating the copy did not raise UDP throughput")
	}
	ratio := rows[0].UDPTput / rows[2].UDPTput
	if ratio < 1.05 || ratio > 1.5 {
		t.Errorf("no-copy UDP gain = %.2fx, paper: 1.1-1.4x", ratio)
	}
	if !(rows[2].UDPTput > rows[3].UDPTput) {
		t.Error("checksumming did not lower UDP throughput")
	}
	if !(rows[0].TCPTput > rows[3].TCPTput) {
		t.Error("in-place no-checksum TCP not fastest")
	}
	if !(rows[1].TCPLat > rows[0].TCPLat+30) {
		t.Error("TCP checksum latency penalty missing")
	}
	// Ethernet is bandwidth-bound near 1 MB/s.
	within(t, "Ethernet UDP tput", rows[4].UDPTput, PaperTable2[4].UDPTput, 0.25)
	within(t, "Ethernet TCP tput", rows[4].TCPTput, PaperTable2[4].TCPTput, 0.25)
}

func TestTable3MatchesPaper(t *testing.T) {
	r := RunTable3(nil)
	within(t, "single copy", r.SingleCopy, PaperTable3.SingleCopy, 0.05)
	// The paper's claims: a second copy degrades throughput by ~1.4x
	// cached and ~2x uncached.
	cachedFactor := r.SingleCopy / r.DoubleCopy
	uncachedFactor := r.SingleCopy / r.DoubleUncached
	if cachedFactor < 1.3 || cachedFactor > 1.75 {
		t.Errorf("cached double-copy factor = %.2f, paper ~1.4", cachedFactor)
	}
	if uncachedFactor < 1.8 || uncachedFactor > 2.2 {
		t.Errorf("uncached double-copy factor = %.2f, paper ~2", uncachedFactor)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	r := RunTable4(nil)
	for i, label := range []string{"copy&cksum", "copy&cksum&bswap"} {
		within(t, "separate "+label, r.Separate[i], PaperTable4.Separate[i], 0.12)
		within(t, "separate/uncached "+label, r.SeparateUncached[i], PaperTable4.SeparateUncached[i], 0.18)
		within(t, "C integrated "+label, r.CIntegrated[i], PaperTable4.CIntegrated[i], 0.12)
		within(t, "DILP "+label, r.DILP[i], PaperTable4.DILP[i], 0.16)
		// Integration must win by the paper's ~1.4-1.6x.
		benefit := r.DILP[i] / r.Separate[i]
		if benefit < 1.25 || benefit > 1.75 {
			t.Errorf("%s integration benefit = %.2fx, paper ~1.4-1.6x", label, benefit)
		}
		// DILP within a few percent of the hand-integrated loop.
		if math.Abs(r.DILP[i]-r.CIntegrated[i])/r.CIntegrated[i] > 0.06 {
			t.Errorf("%s: DILP %.1f vs hand %.1f — should be nearly equal", label, r.DILP[i], r.CIntegrated[i])
		}
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	r := RunTable5(nil, 8)
	for m := MechUnsafeASH; m <= MechUserLevel; m++ {
		within(t, mechNames[m]+" polling", r.Polling[m], PaperTable5.Polling[m], 0.06)
		within(t, mechNames[m]+" suspended", r.Suspended[m], PaperTable5.Suspended[m], 0.06)
	}
	// The paper's claims in relation form.
	if d := r.Polling[MechUserLevel] - r.Polling[MechUnsafeASH]; d < 25 || d > 45 {
		t.Errorf("ASH saves %.0f us when polling, paper ~35", d)
	}
	if d := r.Polling[MechSandboxedASH] - r.Polling[MechUnsafeASH]; d < 2 || d > 10 {
		t.Errorf("sandboxing costs %.0f us, paper ~5", d)
	}
	if d := r.Suspended[MechUserLevel] - r.Suspended[MechSandboxedASH]; d < 60 {
		t.Errorf("suspended ASH saves only %.0f us, paper ~96", d)
	}
	// ASHs and upcalls are scheduling-independent; user level is not.
	if math.Abs(r.Suspended[MechUnsafeASH]-r.Polling[MechUnsafeASH]) > 5 {
		t.Error("ASH latency depends on scheduling state")
	}
	if math.Abs(r.Suspended[MechUpcall]-r.Polling[MechUpcall]) > 6 {
		t.Error("upcall latency depends on scheduling state")
	}
}

func TestTable6Shape(t *testing.T) {
	p := Table6Params{LatIters: 8, TCPBytes: 2 << 20}
	r := RunTable6(nil, p)
	const (
		sandboxed = 0
		unsafe    = 1
		upcall    = 2
		userInt   = 3
		userPoll  = 4
	)
	// User-level rows reproduce the paper closely.
	within(t, "user polling latency", r.Latency[userPoll], PaperTable6.Latency[userPoll], 0.05)
	within(t, "user polling tput", r.Tput[userPoll], PaperTable6.Tput[userPoll], 0.10)

	// The headline orderings.
	if !(r.Latency[unsafe] < r.Latency[sandboxed]) {
		t.Error("sandboxing did not cost latency")
	}
	if !(r.Latency[sandboxed] < r.Latency[userInt]) {
		t.Error("ASH not faster than interrupt-driven user level")
	}
	saving := r.Latency[userInt] - r.Latency[sandboxed]
	if saving < 50 {
		t.Errorf("suspended-case ASH saving = %.0f us, paper ~65", saving)
	}
	for i := 0; i < 3; i++ {
		if !(r.Tput[i] > r.Tput[userInt]) {
			t.Errorf("handler mode %d not faster than interrupt-driven user level", i)
		}
	}
	if !(r.TputSmall[sandboxed] > r.TputSmall[userPoll]) {
		t.Error("small-MSS: handlers lost their advantage")
	}
}

func TestFig4Shape(t *testing.T) {
	f := RunFig4(nil, 6, 4)
	first, last := f.Points[0], f.Points[len(f.Points)-1]
	// ASH: flat.
	if math.Abs(last.ASH-first.ASH) > 10 {
		t.Errorf("ASH line not flat: %.0f -> %.0f", first.ASH, last.ASH)
	}
	// Oblivious round-robin: grows roughly linearly (one quantum per
	// competitor).
	if last.Oblivious < 5*first.Oblivious {
		t.Errorf("oblivious line did not grow: %.0f -> %.0f", first.Oblivious, last.Oblivious)
	}
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].Oblivious+1 < f.Points[i-1].Oblivious {
			t.Error("oblivious line not monotone")
		}
	}
	// Ultrix-like: between the two; grows far slower than oblivious.
	if !(first.ASH < first.Ultrix) {
		t.Error("Ultrix baseline below ASH")
	}
	if !(last.Ultrix < last.Oblivious/10) {
		t.Error("Ultrix-like scheduler did not reduce the scheduling effect")
	}
	if !(last.Ultrix > first.Ultrix) {
		t.Error("Ultrix-like scheduler shows no residual effect")
	}
}

func TestSandboxMatchesPaper(t *testing.T) {
	r := RunSandbox(nil)
	if r.SpecificInsns < 7 || r.SpecificInsns > 13 {
		t.Errorf("hand-crafted specific = %d insns, paper ~10", r.SpecificInsns)
	}
	if r.AddedBySandbox < 24 || r.AddedBySandbox > 32 {
		t.Errorf("sandboxing added %d insns, paper 28", r.AddedBySandbox)
	}
	if r.SpecificSandboxInsns >= r.GenericInsns {
		t.Errorf("sandboxed specific (%d) not below generic (%d) — the Section V-D claim",
			r.SpecificSandboxInsns, r.GenericInsns)
	}
	if r.Ratio40 <= r.Ratio4096 {
		t.Error("sandbox overhead ratio did not shrink with transfer size")
	}
	if r.Ratio4096 > 1.05 {
		t.Errorf("4096-byte ratio = %.3f, paper 1.01-1.02", r.Ratio4096)
	}
	// The static-analysis optimizer must reduce the dynamic cost of the
	// sandboxed handlers whose access patterns it targets, and never
	// increase any handler's cost.
	if r.GenericOptInsns >= r.GenericSandboxInsns {
		t.Errorf("optimized generic = %d insns, naive %d — clustered checks not elided",
			r.GenericOptInsns, r.GenericSandboxInsns)
	}
	if r.RecordOptInsns >= r.RecordSandboxInsns {
		t.Errorf("optimized record loop = %d insns, naive %d — invariant checks not hoisted",
			r.RecordOptInsns, r.RecordSandboxInsns)
	}
	if r.SpecificOptInsns > r.SpecificSandboxInsns {
		t.Errorf("optimized specific = %d insns, naive %d — optimizer made it worse",
			r.SpecificOptInsns, r.SpecificSandboxInsns)
	}
	if r.RecordOptInsns <= r.RecordInsns {
		t.Error("optimized record loop not above the unsafe baseline")
	}
}

func TestDPFOrderOfMagnitude(t *testing.T) {
	r := RunDPF(nil)
	n := len(r.Filters) - 1
	if r.Linear[n]/r.Trie[n] < 10 {
		t.Errorf("DPF advantage at %d filters = %.1fx, paper: order of magnitude",
			r.Filters[n], r.Linear[n]/r.Trie[n])
	}
	if r.Trie[n] > 2*r.Trie[0] {
		t.Error("trie demux cost grew with filter count")
	}
}

func TestRenderersProduceTables(t *testing.T) {
	// Smoke-test every renderer (cheap parameter sets).
	outs := []string{
		RunTable1(nil, 4).Table().Render(),
		RunTable3(nil).Table().Render(),
		RunTable4(nil).Table().Render(),
		RunSandbox(nil).Table().Render(),
		RunDPF(nil).Table().Render(),
		RunFig3(nil, 8).Render(),
	}
	for i, s := range outs {
		if len(s) < 80 || !strings.Contains(s, "\n") {
			t.Errorf("renderer %d produced %q", i, s)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	r := RunAblation(nil)
	// unsafe < x86 <= timer < software-budget in instruction count.
	byLabel := map[string]int{}
	for i, l := range r.Labels {
		byLabel[l] = i
	}
	unsafe := r.Insns[byLabel["unsafe (no protection)"]]
	timer := r.Insns[byLabel["MIPS SFI + watchdog timer"]]
	soft := r.Insns[byLabel["MIPS SFI + software budget"]]
	x86 := r.Insns[byLabel["x86 segmentation"]]
	if !(unsafe < timer) {
		t.Errorf("SFI added nothing: unsafe=%d timer=%d", unsafe, timer)
	}
	if !(timer <= soft) {
		t.Errorf("software budget not >= timer: %d vs %d", soft, timer)
	}
	if x86 != unsafe {
		t.Errorf("x86 segmentation added %d instructions, want 0 (hardware isolates)", x86-unsafe)
	}
	// The optimized variants win on the loop handler: hoisting under the
	// timer policy, hoisting plus budget coarsening under software budget.
	loopTimer := r.LoopInsns[byLabel["MIPS SFI + watchdog timer"]]
	loopTimerOpt := r.LoopInsns[byLabel["MIPS SFI + watchdog timer (optimized)"]]
	loopSoft := r.LoopInsns[byLabel["MIPS SFI + software budget"]]
	loopSoftOpt := r.LoopInsns[byLabel["MIPS SFI + software budget (optimized)"]]
	if !(loopTimerOpt < loopTimer) {
		t.Errorf("optimizer saved nothing on the loop: %d vs %d", loopTimerOpt, loopTimer)
	}
	if !(loopSoftOpt < loopSoft) {
		t.Errorf("optimizer saved nothing under software budget: %d vs %d", loopSoftOpt, loopSoft)
	}
	// Coarsening leaves one drain instead of one check per iteration, so
	// the optimized software-budget run is within a couple of instructions
	// of the optimized timer run.
	if loopSoftOpt-loopTimerOpt > 2 {
		t.Errorf("budget checks not coarsened: soft-opt %d vs timer-opt %d", loopSoftOpt, loopTimerOpt)
	}
}
