package bench

import (
	"bytes"
	"strings"
	"testing"

	"ashs/internal/obs"
	"ashs/internal/sim"
)

// The breakdown's per-phase cycles must sum exactly to each measurement
// window, and the traced end-to-end number must equal the untraced one
// (tracing charges no simulated cycles).
func TestBreakdownPhasesSumToWindow(t *testing.T) {
	const iters = 4
	b := RunBreakdown(nil, iters)
	if len(b.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range b.Rows {
		var sum sim.Time
		for _, ph := range r.Phases {
			sum += ph.Cycles
		}
		if sum != r.Total {
			t.Errorf("%s: phase sum %d != window %d", r.Label, sum, r.Total)
		}
		if r.Total <= 0 {
			t.Errorf("%s: empty window", r.Label)
		}
		if r.Plane.Events() == 0 {
			t.Errorf("%s: no trace events recorded", r.Label)
		}
	}
	// Traced == untraced for a representative row.
	if got, want := b.Rows[0].MeasuredUs, inKernelAN2RT(nil, iters, nil); got != want {
		t.Errorf("traced in-kernel RT %v != untraced %v", got, want)
	}
}

// Two breakdown runs of the same workload must export byte-identical
// trace JSON — the determinism contract the CI gate enforces.
func TestBreakdownTraceByteIdentical(t *testing.T) {
	const iters = 3
	a := obs.WriteTrace(RunBreakdown(nil, iters).Planes()...)
	b := obs.WriteTrace(RunBreakdown(nil, iters).Planes()...)
	if !bytes.Equal(a, b) {
		t.Fatal("breakdown traces differ between identical runs")
	}
	if !strings.HasPrefix(string(a), `{"traceEvents":[`) {
		t.Fatal("trace is not a trace_event document")
	}
}

// Render must include every phase row and the exact-total line.
func TestBreakdownRender(t *testing.T) {
	b := RunBreakdown(nil, 2)
	out := b.Render()
	for _, want := range append(phaseOrder, "wait/other", "total", "paper") {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// The metrics dump is deterministic and covers all three metric kinds.
func TestRenderMetricsDeterministic(t *testing.T) {
	build := func() *obs.Registry {
		r := obs.NewRegistry()
		r.Counter("z").Inc()
		r.Counter("a").Add(4)
		r.Gauge("g").Set(9)
		r.Histogram("lat").Observe(100)
		return r
	}
	a, b := RenderMetrics(build()), RenderMetrics(build())
	if a != b {
		t.Fatal("metrics renders differ")
	}
	for _, want := range []string{"counters:", "gauges:", "histograms", "a", "z"} {
		if !strings.Contains(a, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}
