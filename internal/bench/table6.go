package bench

import (
	"ashs/internal/aegis"
	"ashs/internal/proto/tcp"
)

// Table6 is the end-to-end TCP comparison of handler placements
// (Section V-B, Table VI): latency and throughput for TCP on the AN2 with
// the common-case fast path in a sandboxed ASH, an unsafe ASH, an upcall,
// or the user-level library (interrupt-driven and polling).
type Table6 struct {
	// Indexed: 0 sandboxed ASH, 1 unsafe ASH, 2 upcall, 3 user-level
	// (interrupt), 4 user-level (polling).
	Latency   [5]float64 // us
	Tput      [5]float64 // MB/s, MSS 3072, 8-KB writes
	TputSmall [5]float64 // MB/s, MSS 536, 4-KB writes
}

// PaperTable6 is Table VI of the paper.
var PaperTable6 = Table6{
	Latency:   [5]float64{394, 348, 382, 459, 384},
	Tput:      [5]float64{4.32, 4.53, 4.27, 3.92, 4.11},
	TputSmall: [5]float64{2.66, 3.05, 2.78, 2.32, 2.56},
}

// Table6Labels name the columns.
var Table6Labels = [5]string{
	"sandboxed ASH", "unsafe ASH", "upcall", "user (interrupt)", "user (polling)",
}

// Table6Params sizes the workloads.
type Table6Params struct {
	LatIters int
	TCPBytes int
}

// DefaultTable6Params mirrors the paper (10 MB streams).
func DefaultTable6Params() Table6Params {
	return Table6Params{LatIters: 10, TCPBytes: 10 << 20}
}

type table6Mode struct {
	mode      tcp.Mode
	polling   bool
	suspended bool // competitor + boost scheduler on both hosts
}

var table6Modes = [5]table6Mode{
	{tcp.ModeASH, true, false},
	{tcp.ModeASHUnsafe, true, false},
	{tcp.ModeUpcall, true, false},
	{tcp.ModeUser, false, true},
	{tcp.ModeUser, true, false},
}

// table6Cells enumerates one cell per (mode, measurement): 15 independent
// TCP worlds.
func table6Cells(p Table6Params) []Cell {
	var cells []Cell
	for i, m := range table6Modes {
		i, m := i, m
		label := "table6/" + Table6Labels[i]
		cells = append(cells,
			Cell{label + "/latency", func(cfg *Config) any {
				return table6Latency(cfg, m, p.LatIters, nil)
			}},
			Cell{label + "/tput", func(cfg *Config) any {
				return table6Tput(cfg, m, p.TCPBytes, 3072, 8192)
			}},
			Cell{label + "/tput-small", func(cfg *Config) any {
				return table6Tput(cfg, m, p.TCPBytes/2, 536, 4096)
			}},
		)
	}
	return cells
}

func mergeTable6(vs []any) Table6 {
	var t Table6
	for i := range table6Modes {
		t.Latency[i] = vs[3*i].(float64)
		t.Tput[i] = vs[3*i+1].(float64)
		t.TputSmall[i] = vs[3*i+2].(float64)
	}
	return t
}

// RunTable6 regenerates Table VI.
func RunTable6(cfg *Config, p Table6Params) Table6 {
	return mergeTable6(runCells(cfg, table6Cells(p)))
}

func table6Testbed(cfg *Config, m table6Mode) *Testbed {
	tb := NewAN2Testbed(cfg)
	if m.suspended {
		tb.K1.Sched = aegis.NewPriorityBoost(tb.K1)
		tb.K2.Sched = aegis.NewPriorityBoost(tb.K2)
		tb.K1.Spawn("competitor1", func(p *aegis.Process) { p.SpinForever() })
		tb.K2.Spawn("competitor2", func(p *aegis.Process) { p.SpinForever() })
	}
	return tb
}

func table6Cfg(tb *Testbed, m table6Mode, host, mss int) tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.Mode = m.mode
	cfg.Polling = m.polling
	cfg.Checksum = true
	cfg.MSS = mss
	if host == 1 {
		cfg.Sys = tb.Sys1
	} else {
		cfg.Sys = tb.Sys2
	}
	return cfg
}

func table6Latency(cfg *Config, m table6Mode, iters int, o *obsRun) float64 {
	tb := table6Testbed(cfg, m)
	return tcpPingPong(tb, iters, o,
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Accept(tb.StackAN2(p, 2, 7), table6Cfg(tb, m, 2, 3072), 80)
		},
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Connect(tb.StackAN2(p, 1, 7), table6Cfg(tb, m, 1, 3072), 1234, tb.IP2, 80)
		})
}

func table6Tput(cfg *Config, m table6Mode, totalBytes, mss, writeSize int) float64 {
	tb := table6Testbed(cfg, m)
	return tcpStream(tb, totalBytes, writeSize,
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Accept(tb.StackAN2(p, 2, 7), table6Cfg(tb, m, 2, mss), 80)
		},
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Connect(tb.StackAN2(p, 1, 7), table6Cfg(tb, m, 1, mss), 1234, tb.IP2, 80)
		})
}

// Table renders Table VI.
func (t Table6) Table() *Table {
	return &Table{
		Title:   "Table VI: TCP on the AN2 with the fast path in handlers",
		Note:    "latency in us; throughput in MB/s (MSS 3072); small MSS 536 with 4-KB writes",
		Columns: Table6Labels[:],
		Rows: []Row{
			{"latency (us)", t.Latency[:], PaperTable6.Latency[:]},
			{"throughput (MB/s)", t.Tput[:], PaperTable6.Tput[:]},
			{"throughput, small MSS", t.TputSmall[:], PaperTable6.TputSmall[:]},
		},
	}
}

// Table6LatencyDebug and Table6TputDebug expose single-mode runs for
// diagnostics.
func Table6LatencyDebug(mode, iters int) float64 {
	return table6Latency(nil, table6Modes[mode], iters, nil)
}

// Table6TputDebug measures one mode's throughput.
func Table6TputDebug(mode, bytes, mss, ws int) float64 {
	return table6Tput(nil, table6Modes[mode], bytes, mss, ws)
}
