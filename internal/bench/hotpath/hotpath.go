// Package hotpath holds wall-clock microbenchmarks for the simulator's
// two hottest loops: the DPF discrimination-trie walk (every delivered
// packet) and the event-queue schedule/dispatch cycle (every simulated
// action). The bodies live here, outside a _test.go file, so both
// `go test -bench` (internal/bench/hotpath) and the JSON-emitting
// harness (cmd/hotpathbench) run exactly the same code — the committed
// BENCH_hotpath.json numbers are the numbers the bench wrappers measure.
package hotpath

import (
	"testing"

	"ashs/internal/dpf"
	"ashs/internal/sim"
)

const (
	// Filters is the installed-filter population for the trie walk — the
	// many-client fan-in shape of the scale experiment, where each client
	// contributes one UDP port filter.
	Filters = 512

	// QueueDepth is the steady-state event population for the queue
	// benchmark: deep enough that heap reshuffles dominate, shallow
	// enough to stay cache-resident like a real run.
	QueueDepth = 1024
)

// NewLoadedEngine builds a DPF engine with Filters per-client UDP port
// filters installed and returns it with a 64-byte packet that matches
// the median filter.
func NewLoadedEngine() (*dpf.Engine, []byte) {
	e := dpf.NewEngine()
	for i := 0; i < Filters; i++ {
		f := dpf.NewFilter().
			Eq16(12, 0x0800).        // ethertype IP
			Eq8(23, 17).             // protocol UDP
			Eq16(36, uint16(1000+i)) // destination port
		if _, err := e.Insert(f); err != nil {
			panic(err)
		}
	}
	pkt := make([]byte, 64)
	port := uint16(1000 + Filters/2)
	pkt[12], pkt[13] = 0x08, 0x00
	pkt[23] = 17
	pkt[36], pkt[37] = byte(port>>8), byte(port)
	return e, pkt
}

// DPFTrieWalk measures one Demux through the discrimination trie with
// Filters filters installed: shared atoms are tested once, then the
// port atom discriminates by hash — the walk the paper's dynamic code
// generation argument is about.
func DPFTrieWalk(b *testing.B) {
	e, pkt := NewLoadedEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Demux(pkt); !ok {
			b.Fatal("demux missed")
		}
	}
}

// DPFLinearScan is the MPF-style baseline: the same population demuxed
// by scanning filters one at a time. Kept beside DPFTrieWalk so the
// committed numbers document the gap the trie buys.
func DPFLinearScan(b *testing.B) {
	e, pkt := NewLoadedEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.DemuxLinear(pkt); !ok {
			b.Fatal("demux missed")
		}
	}
}

// SimEventQueue measures one schedule+dispatch through the event heap
// at a steady depth of QueueDepth events: each fired event reschedules
// itself QueueDepth ticks out, so every iteration is exactly one heap
// pop and one push at full depth.
func SimEventQueue(b *testing.B) {
	eng := sim.NewEngine()
	fired := 0
	for i := 0; i < QueueDepth; i++ {
		var self func()
		self = func() {
			fired++
			eng.Schedule(QueueDepth, self)
		}
		eng.ScheduleAt(sim.Time(i), self)
	}
	// One event fires per tick (initial events sit on distinct ticks and
	// every reschedule preserves that), so running through tick b.N-1
	// dispatches exactly b.N events.
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntil(sim.Time(b.N - 1))
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}
