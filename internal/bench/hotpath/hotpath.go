// Package hotpath holds wall-clock microbenchmarks for the simulator's
// two hottest loops: the DPF discrimination-trie walk (every delivered
// packet) and the event-queue schedule/dispatch cycle (every simulated
// action). The bodies live here, outside a _test.go file, so both
// `go test -bench` (internal/bench/hotpath) and the JSON-emitting
// harness (cmd/hotpathbench) run exactly the same code — the committed
// BENCH_hotpath.json numbers are the numbers the bench wrappers measure.
package hotpath

import (
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/dpf"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/sandbox"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

const (
	// Filters is the installed-filter population for the trie walk — the
	// many-client fan-in shape of the scale experiment, where each client
	// contributes one UDP port filter.
	Filters = 512

	// QueueDepth is the steady-state event population for the queue
	// benchmark: deep enough that heap reshuffles dominate, shallow
	// enough to stay cache-resident like a real run.
	QueueDepth = 1024

	// HandlerBytes is the packet the VCODE handler walks: one Ethernet
	// minimum frame, the message size every ASH invocation touches.
	HandlerBytes = 64

	// HandlerVariants is the distinct-program population for the
	// instrumentation benchmark. It deliberately exceeds the sandbox
	// compile cache's capacity so every Sandbox call measures a real
	// verify+instrument, not a memo hit.
	HandlerVariants = 512
)

// NewLoadedEngine builds a DPF engine with Filters per-client UDP port
// filters installed and returns it with a 64-byte packet that matches
// the median filter.
func NewLoadedEngine() (*dpf.Engine, []byte) {
	e := dpf.NewEngine()
	for i := 0; i < Filters; i++ {
		f := dpf.NewFilter().
			Eq16(12, 0x0800).        // ethertype IP
			Eq8(23, 17).             // protocol UDP
			Eq16(36, uint16(1000+i)) // destination port
		if _, err := e.Insert(f); err != nil {
			panic(err)
		}
	}
	pkt := make([]byte, 64)
	port := uint16(1000 + Filters/2)
	pkt[12], pkt[13] = 0x08, 0x00
	pkt[23] = 17
	pkt[36], pkt[37] = byte(port>>8), byte(port)
	return e, pkt
}

// DPFTrieWalk measures one Demux through the discrimination trie with
// Filters filters installed: shared atoms are tested once, then the
// port atom discriminates by hash — the walk the paper's dynamic code
// generation argument is about.
func DPFTrieWalk(b *testing.B) {
	e, pkt := NewLoadedEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Demux(pkt); !ok {
			b.Fatal("demux missed")
		}
	}
}

// DPFLinearScan is the MPF-style baseline: the same population demuxed
// by scanning filters one at a time. Kept beside DPFTrieWalk so the
// committed numbers document the gap the trie buys.
func DPFLinearScan(b *testing.B) {
	e, pkt := NewLoadedEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.DemuxLinear(pkt); !ok {
			b.Fatal("demux missed")
		}
	}
}

// NewHandlerProgram builds the representative ASH body both VCODE
// benchmarks run: a checksum loop over a HandlerBytes packet (load, add,
// advance, backward branch) followed by one store — the load-heavy,
// tight-loop shape the SFI instrumenter has the most to say about. tweak
// perturbs an immediate so distinct variants have distinct fingerprints.
func NewHandlerProgram(tweak int32) *vcode.Program {
	b := vcode.NewBuilder("cksum")
	base, acc, i, end, w := b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(base, 0x1000)
	b.MovI(acc, tweak)
	b.MovI(i, 0)
	b.MovI(end, HandlerBytes)
	loop := b.NewLabel()
	b.Bind(loop)
	b.Ld32X(w, base, i)
	b.AddU(acc, acc, w)
	b.AddIU(i, i, 4)
	b.BltU(i, end, loop)
	b.St32(base, 0, acc)
	b.Mov(vcode.RRet, acc)
	b.Ret()
	return b.MustAssemble()
}

// VCODEDispatch measures the vcode interpreter's dispatch loop: one full
// handler execution (16 loads + ALU + a store) over a resident packet.
// This is the per-message cost floor of every ASH invocation — the loop
// the paper attacks with dynamic code generation.
func VCODEDispatch(b *testing.B) {
	prog := NewHandlerProgram(0)
	mem := vcode.NewFlatMem(0x1000, HandlerBytes)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := m.Run(prog); f != nil {
			b.Fatal(f)
		}
	}
}

// SandboxInstrument measures the download-time verify+instrument pass
// under the default MIPS software-protection policy. The variant pool
// overflows the compile cache, so every iteration pays the real static
// analysis and rewrite, the cost a kernel pays to accept one untrusted
// handler.
func SandboxInstrument(b *testing.B) {
	variants := make([]*vcode.Program, HandlerVariants)
	for i := range variants {
		variants[i] = NewHandlerProgram(int32(i + 1))
	}
	pol := sandbox.DefaultPolicy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sandbox.Sandbox(variants[i%HandlerVariants], pol); err != nil {
			b.Fatal(err)
		}
	}
}

// SimEventQueue measures one schedule+dispatch through the engine's
// event queue at a steady depth of QueueDepth events: each fired event
// reschedules itself QueueDepth ticks out, so every iteration is exactly
// one pop and one push at full depth. Steady state must allocate
// nothing: the engine recycles fired events through its freelist.
func SimEventQueue(b *testing.B) {
	eng := sim.NewEngine()
	fired := 0
	for i := 0; i < QueueDepth; i++ {
		var self func()
		self = func() {
			fired++
			eng.Schedule(QueueDepth, self)
		}
		eng.ScheduleAt(sim.Time(i), self)
	}
	// One event fires per tick (initial events sit on distinct ticks and
	// every reschedule preserves that), so running through tick b.N-1
	// dispatches exactly b.N events.
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntil(sim.Time(b.N - 1))
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// CalendarQueue measures the retransmit-timer pattern against the
// calendar event queue — the dominant schedule shape of the megascale
// fleet, where every request arms a far-future reply-wait timer that the
// reply almost always cancels. Each dispatched event arms a timer a
// million ticks out (a sparse far bucket), cancels it, and reschedules
// itself QueueDepth ticks out through the closure-free ScheduleArg path,
// so one iteration is one pop, one far insert, one remove, and one near
// insert — all at 0 allocs/op through the engine's event freelist.
func CalendarQueue(b *testing.B) {
	eng := sim.NewEngine()
	fired := 0
	var tick func(any)
	tick = func(a any) {
		fired++
		t := eng.ScheduleArg(1_000_000_000, tick, nil) // arm the reply-wait timer
		eng.Cancel(t)                                  // the reply arrived first
		eng.ScheduleArg(QueueDepth, tick, a)
	}
	for i := 0; i < QueueDepth; i++ {
		eng.ScheduleArgAt(sim.Time(i), tick, nil)
	}
	// As in SimEventQueue, exactly one event fires per tick.
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntil(sim.Time(b.N - 1))
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// packetPathWorld is the PacketPath fixture: one full aegis server host
// (Ethernet driver, DPF demux, downloaded handler) ping-ponging with a
// raw client port over a switch — the complete per-message path of the
// paper's Table I, wire to wire.
type packetPathWorld struct {
	eng *sim.Engine
	sw  *netdev.Switch
	srv *aegis.EthernetIf
	cli *netdev.Port
	req []byte

	count, target int
}

// HandleMsg is the downloaded server handler: consume the message and
// send a fixed reply back to the client — the low-latency reply shape
// ASHs exist for.
func (w *packetPathWorld) HandleMsg(mc *aegis.MsgCtx) aegis.Disposition {
	mc.Send(w.cli.Addr(), 0, w.req[:32])
	return aegis.DispConsumed
}

// send leases a pooled buffer for the request frame and puts it on the
// wire from the client port.
func (w *packetPathWorld) send() {
	pkt := w.sw.LeaseData(w.req)
	pkt.Dst = w.srv.Addr()
	if err := w.cli.Transmit(pkt); err != nil {
		panic(err)
	}
}

// rx is the client's receive path: re-arm the ping-pong until target
// round trips have completed.
func (w *packetPathWorld) rx(pkt *netdev.PacketBuf) {
	w.count++
	if w.count >= w.target {
		w.eng.Stop()
		return
	}
	w.send()
}

func newPacketPathWorld() *packetPathWorld {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	w := &packetPathWorld{eng: eng}
	w.sw = netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	k := aegis.NewKernel("srv", eng, prof)
	w.srv = aegis.NewEthernet(k, w.sw)
	w.cli = w.sw.NewPort()
	w.cli.SetReceiver(w.rx)

	w.req = make([]byte, HandlerBytes)
	w.req[12], w.req[13] = 0x08, 0x00 // ethertype IP
	w.req[23] = 17                    // protocol UDP
	w.req[36], w.req[37] = 1000>>8, 1000&0xff
	f := dpf.NewFilter().Eq16(12, 0x0800).Eq8(23, 17).Eq16(36, 1000)
	bind, err := w.srv.BindFilter(nil, f)
	if err != nil {
		panic(err)
	}
	bind.Handler = w
	return w
}

// run drives n round trips through the world.
func (w *packetPathWorld) run(n int) {
	w.target = w.count + n
	w.send()
	w.eng.Run()
	if w.count != w.target {
		panic("packet path bench: ping-pong stalled")
	}
}

// PacketPath measures one complete request/reply round trip through the
// redesigned buffer-lease pipeline: client transmit (pool lease) → switch
// delivery → Ethernet driver (frame check, DPF demux, striping DMA) →
// downloaded handler → committed reply lease → switch delivery → client
// re-arm. After warmup the pools and freelists are primed and the whole
// wire-to-wire path must run at 0 allocs/op.
func PacketPath(b *testing.B) {
	w := newPacketPathWorld()
	w.run(64) // warmup: mint pool buffers, contexts, events
	b.ReportAllocs()
	b.ResetTimer()
	w.run(b.N)
}
