package hotpath

import (
	"testing"

	"ashs/internal/mach"
	"ashs/internal/sandbox"
	"ashs/internal/vcode"
)

func BenchmarkDPFTrieWalk(b *testing.B)       { DPFTrieWalk(b) }
func BenchmarkDPFLinearScan(b *testing.B)     { DPFLinearScan(b) }
func BenchmarkVCODEDispatch(b *testing.B)     { VCODEDispatch(b) }
func BenchmarkSandboxInstrument(b *testing.B) { SandboxInstrument(b) }
func BenchmarkSimEventQueue(b *testing.B)     { SimEventQueue(b) }
func BenchmarkCalendarQueue(b *testing.B)     { CalendarQueue(b) }
func BenchmarkPacketPath(b *testing.B)        { PacketPath(b) }

// TestBodiesRun drives each benchmark body through testing.Benchmark —
// the exact harness cmd/hotpathbench uses — so a fixture regression
// fails `go test` even when -bench is not passed.
func TestBodiesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark bodies are slow under -short")
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DPFTrieWalk", DPFTrieWalk},
		{"DPFLinearScan", DPFLinearScan},
		{"VCODEDispatch", VCODEDispatch},
		{"SandboxInstrument", SandboxInstrument},
		{"SimEventQueue", SimEventQueue},
		{"CalendarQueue", CalendarQueue},
		{"PacketPath", PacketPath},
	} {
		if r := testing.Benchmark(bm.fn); r.N == 0 {
			t.Errorf("%s did not run", bm.name)
		}
	}
}

// TestHandlerProgramShape pins the VCODE fixture: the handler really sums
// the packet words, and the default policy really instruments it (the
// SandboxInstrument benchmark must be measuring a non-trivial rewrite).
func TestHandlerProgramShape(t *testing.T) {
	prog := NewHandlerProgram(0)
	mem := vcode.NewFlatMem(0x1000, HandlerBytes)
	want := uint32(0)
	for j := 0; j < HandlerBytes/4; j++ {
		if err := mem.Store32(uint32(0x1000+4*j), uint32(j)); err != nil {
			t.Fatal(err)
		}
		want += uint32(j)
	}
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	if f := m.Run(prog); f != nil {
		t.Fatal(f)
	}
	if m.Regs[vcode.RRet] != want {
		t.Fatalf("checksum = %d, want %d", m.Regs[vcode.RRet], want)
	}
	sp, err := sandbox.Sandbox(prog, sandbox.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if sp.AddedStatic == 0 {
		t.Fatal("default policy added no instrumentation to the handler")
	}
}

// TestLoadedEngineShape pins the fixture: the trie and the linear scan
// must agree on the demux result for the benchmark packet.
func TestLoadedEngineShape(t *testing.T) {
	e, pkt := NewLoadedEngine()
	if e.Len() != Filters {
		t.Fatalf("engine has %d filters, want %d", e.Len(), Filters)
	}
	id, _, ok := e.Demux(pkt)
	if !ok {
		t.Fatal("trie demux missed the benchmark packet")
	}
	lid, _, lok := e.DemuxLinear(pkt)
	if !lok || lid != id {
		t.Fatalf("linear demux disagrees: got (%v,%v), want (%v,true)", lid, lok, id)
	}
}
