package hotpath

import "testing"

func BenchmarkDPFTrieWalk(b *testing.B)   { DPFTrieWalk(b) }
func BenchmarkDPFLinearScan(b *testing.B) { DPFLinearScan(b) }
func BenchmarkSimEventQueue(b *testing.B) { SimEventQueue(b) }

// TestBodiesRun drives each benchmark body through testing.Benchmark —
// the exact harness cmd/hotpathbench uses — so a fixture regression
// fails `go test` even when -bench is not passed.
func TestBodiesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark bodies are slow under -short")
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DPFTrieWalk", DPFTrieWalk},
		{"DPFLinearScan", DPFLinearScan},
		{"SimEventQueue", SimEventQueue},
	} {
		if r := testing.Benchmark(bm.fn); r.N == 0 {
			t.Errorf("%s did not run", bm.name)
		}
	}
}

// TestLoadedEngineShape pins the fixture: the trie and the linear scan
// must agree on the demux result for the benchmark packet.
func TestLoadedEngineShape(t *testing.T) {
	e, pkt := NewLoadedEngine()
	if e.Len() != Filters {
		t.Fatalf("engine has %d filters, want %d", e.Len(), Filters)
	}
	id, _, ok := e.Demux(pkt)
	if !ok {
		t.Fatal("trie demux missed the benchmark packet")
	}
	lid, _, lok := e.DemuxLinear(pkt)
	if !lok || lid != id {
		t.Fatalf("linear demux disagrees: got (%v,%v), want (%v,true)", lid, lok, id)
	}
}
