package bench

import (
	"strings"

	"ashs/internal/bench/runner"
)

// Experiment is one registered entry of the ashbench suite: a name, a
// one-line description, a cell enumeration (which consults cfg.Quick for
// workload sizing), and a deterministic render step over the cell results.
// The registry is the single source of truth for what exists and in what
// order it runs — cmd/ashbench iterates it instead of keeping its own
// ladder.
type Experiment struct {
	Name  string
	Help  string
	Cells func(cfg *Config) []Cell
	// Render folds the cell results (in cell-index order, exactly as
	// Cells enumerated them) into the experiment's printed output.
	Render func(cfg *Config, results []any) string
}

// experiments is the canonical suite, in the paper's presentation order.
var experiments = []*Experiment{
	{
		Name:  "table1",
		Help:  "Table I: raw round-trip latency of the base system",
		Cells: func(cfg *Config) []Cell { return table1Cells(10) },
		Render: func(cfg *Config, vs []any) string {
			return mergeTable1(vs).Table().Render()
		},
	},
	{
		Name: "fig3",
		Help: "Fig. 3: user-level AN2 throughput vs packet size",
		Cells: func(cfg *Config) []Cell {
			return fig3Cells(fig3Pkts(cfg))
		},
		Render: func(cfg *Config, vs []any) string {
			return mergeFig3(vs).Render()
		},
	},
	{
		Name: "table2",
		Help: "Table II: UDP/TCP latency and throughput",
		Cells: func(cfg *Config) []Cell {
			return table2Cells(table2Params(cfg))
		},
		Render: func(cfg *Config, vs []any) string {
			return mergeTable2(vs).Table().Render()
		},
	},
	{
		Name:  "table3",
		Help:  "Table III: copy throughput microbenchmark",
		Cells: func(cfg *Config) []Cell { return table3Cells() },
		Render: func(cfg *Config, vs []any) string {
			return vs[0].(Table3).Table().Render()
		},
	},
	{
		Name:  "table4",
		Help:  "Table IV: integrated vs non-integrated memory operations",
		Cells: func(cfg *Config) []Cell { return table4Cells() },
		Render: func(cfg *Config, vs []any) string {
			return mergeTable4(vs).Table().Render()
		},
	},
	{
		Name:  "table5",
		Help:  "Table V: remote increment round trip by handler placement",
		Cells: func(cfg *Config) []Cell { return table5Cells(10) },
		Render: func(cfg *Config, vs []any) string {
			return mergeTable5(vs).Table().Render()
		},
	},
	{
		Name: "table6",
		Help: "Table VI: end-to-end TCP with the fast path in handlers",
		Cells: func(cfg *Config) []Cell {
			return table6Cells(table6Params(cfg))
		},
		Render: func(cfg *Config, vs []any) string {
			return mergeTable6(vs).Table().Render()
		},
	},
	{
		Name: "fig4",
		Help: "Fig. 4: scheduling decoupling vs active process count",
		Cells: func(cfg *Config) []Cell {
			return fig4Cells(fig4MaxProcs, fig4Iters(cfg))
		},
		Render: func(cfg *Config, vs []any) string {
			return mergeFig4(fig4MaxProcs, vs).Render()
		},
	},
	{
		Name:  "sandbox",
		Help:  "Section V-D: sandboxing overhead on the remote write",
		Cells: func(cfg *Config) []Cell { return sandboxCells() },
		Render: func(cfg *Config, vs []any) string {
			return mergeSandbox(vs).Table().Render()
		},
	},
	{
		Name:  "dpf",
		Help:  "DPF trie vs interpreted demultiplexing",
		Cells: func(cfg *Config) []Cell { return dpfCells() },
		Render: func(cfg *Config, vs []any) string {
			return vs[0].(DPFResult).Table().Render()
		},
	},
	{
		Name:  "ablation",
		Help:  "ablation: safety strategies of Section III-B",
		Cells: func(cfg *Config) []Cell { return ablationCells() },
		Render: func(cfg *Config, vs []any) string {
			return mergeAblation(vs).Table().Render()
		},
	},
	{
		Name:  "lint",
		Help:  "static-analysis lint findings over the handler library",
		Cells: func(cfg *Config) []Cell { return lintCells() },
		Render: func(cfg *Config, vs []any) string {
			return vs[0].(string)
		},
	},
	{
		Name: "chaos",
		Help: "chaos soak: fault schedules vs delivery integrity",
		Cells: func(cfg *Config) []Cell {
			return chaosCells(chaosParams(cfg))
		},
		Render: func(cfg *Config, vs []any) string {
			results := make([]ChaosResult, len(vs))
			for i, v := range vs {
				results[i] = v.(ChaosResult)
			}
			return RenderChaos(results)
		},
	},
	{
		Name:  "breakdown",
		Help:  "cycle-accurate latency breakdown of Tables I/V/VI",
		Cells: func(cfg *Config) []Cell { return breakdownCells(breakdownIters) },
		Render: func(cfg *Config, vs []any) string {
			return mergeBreakdown(breakdownIters, vs).Render()
		},
	},
	{
		Name:  "scale",
		Help:  "many-client fan-in: sub-linear demux vs client count",
		Cells: func(cfg *Config) []Cell { return scaleCells(scaleMsgs(cfg)) },
		Render: func(cfg *Config, vs []any) string {
			return renderScale(vs)
		},
	},
	{
		Name:  "overload",
		Help:  "overload control: adversarial traces vs graceful degradation",
		Cells: overloadCells,
		Render: func(cfg *Config, vs []any) string {
			results := make([]OverloadResult, len(vs))
			for i, v := range vs {
				results[i] = v.(OverloadResult)
			}
			return RenderOverload(results)
		},
	},
	{
		Name:  "megascale",
		Help:  "megascale: 10^6 flyweight clients vs one full server host",
		Cells: megascaleCells,
		Render: func(cfg *Config, vs []any) string {
			return renderMegascale(cfg, vs)
		},
	},
	{
		Name:  "reopt",
		Help:  "DCG loop: profile-guided re-optimization, before/after",
		Cells: func(cfg *Config) []Cell { return reoptCells() },
		Render: func(cfg *Config, vs []any) string {
			return renderReopt(vs)
		},
	},
}

// Workload sizing shared between the registry and the Run* entry points.
const (
	fig4MaxProcs   = 10
	breakdownIters = 10
)

func fig3Pkts(cfg *Config) int {
	if cfg.quick() {
		return 24
	}
	return 64
}

func fig4Iters(cfg *Config) int {
	if cfg.quick() {
		return 4
	}
	return 8
}

func table2Params(cfg *Config) Table2Params {
	p := DefaultTable2Params()
	if cfg.quick() {
		p.TCPBytes = 2 << 20
		p.UDPTrains = 10
	}
	return p
}

func table6Params(cfg *Config) Table6Params {
	p := DefaultTable6Params()
	if cfg.quick() {
		p.TCPBytes = 2 << 20
	}
	return p
}

func chaosParams(cfg *Config) ChaosParams {
	if cfg.quick() {
		return QuickChaosParams()
	}
	return DefaultChaosParams()
}

// Experiments returns the registered suite in canonical run order.
func Experiments() []*Experiment {
	return append([]*Experiment(nil), experiments...)
}

// ExperimentNames lists the registry's names in run order.
func ExperimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.Name
	}
	return names
}

// FindExperiments resolves a requested name list ("all" selects the whole
// suite) against the registry, preserving canonical order and reporting
// every unknown name — a misspelled experiment must never be silently
// skipped.
func FindExperiments(names []string) (selected []*Experiment, unknown []string) {
	want := map[string]bool{}
	all := false
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == "all" {
			all = true
			continue
		}
		known := false
		for _, e := range experiments {
			if e.Name == n {
				known = true
				break
			}
		}
		if !known {
			unknown = append(unknown, n)
			continue
		}
		want[n] = true
	}
	for _, e := range experiments {
		if all || want[e.Name] {
			selected = append(selected, e)
		}
	}
	return selected, unknown
}

// Output is one experiment's rendered result.
type Output struct {
	Name string
	Text string
}

// RunExperiments executes the selected experiments' cells on one shared
// worker pool — cells from different experiments interleave freely, so a
// long tail in one experiment overlaps the next — and renders each
// experiment from its own results, in registry order. Observability
// planes land in cfg (see Config.Planes) in cell-index order, making the
// rendered text and any exported trace byte-identical for every
// parallelism level.
func RunExperiments(cfg *Config, selected []*Experiment) []Output {
	var all []runner.Cell
	counts := make([]int, len(selected))
	perExp := make([][]Cell, len(selected))
	for i, e := range selected {
		cells := e.Cells(cfg)
		perExp[i] = cells
		counts[i] = len(cells)
		for _, c := range cells {
			all = append(all, wrap(cfg, c))
		}
	}
	outs := runner.Run(cfg.parallelism(), all)
	results := make([]any, len(outs))
	for i, o := range outs {
		co := o.(cellOut)
		results[i] = co.v
		if cfg != nil {
			cfg.planes = append(cfg.planes, co.planes...)
		}
	}
	var rendered []Output
	off := 0
	for i, e := range selected {
		vs := results[off : off+counts[i]]
		off += counts[i]
		rendered = append(rendered, Output{Name: e.Name, Text: e.Render(cfg, vs)})
	}
	return rendered
}
