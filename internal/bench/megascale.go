package bench

import (
	"encoding/binary"
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/dpf"
	"ashs/internal/flyweight"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/nfs"
	"ashs/internal/proto/retry"
	"ashs/internal/proto/tcp"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
	"ashs/internal/workload"
)

// The megascale experiment pushes the scale experiment's fan-in claim
// three orders of magnitude further: one full aegis server host versus up
// to 10^6 clients. Full client hosts cap the sweep at a few hundred (each
// pins a kernel arena and receive pool), so the clients here are
// internal/flyweight endpoints — wire-exact traffic generators with no
// kernel behind them — while the measured side stays byte-for-byte the
// scale experiment's server: same interrupt path, same DPF trie, same
// striping DMA and ASH dispatch.
//
// Three workloads sweep N:
//
//   - udp-echo: one 3-atom source filter plus a shared echo ASH per
//     endpoint. At N=10^6 the server demuxes against a million installed
//     filters; demux cyc/msg staying flat is the headline sub-linearity.
//   - tcp-pp:   full fan-in accept path (per-client listen filter, 6-atom
//     connection filter, AcceptHandoff, shared ConnTable); reports the
//     table's peak bucket spread.
//   - nfs-read: RPC fan-in to one server socket whose ring runs a
//     high-watermark, so the incast phase exercises shed-then-retry.
//
// Each cell drives an open-loop Poisson trace (steady state), then two
// synchronized incast waves; steady-state and incast tails are reported
// separately. Worlds are self-contained and deterministic, so output is
// byte-identical at any -parallel level.

var megaWorkloads = []string{"udp-echo", "tcp-pp", "nfs-read"}

// megascaleNs is the per-workload endpoint sweep. TCP and NFS keep full
// server-side state per client (connections; resolver entries), so their
// sweeps stop earlier; udp-echo is the pure-demux ladder that reaches
// 10^6 installed filters. Quick mode caps the ladders for CI.
func megascaleNs(cfg *Config, wl string) []int {
	switch wl {
	case "udp-echo":
		if cfg.quick() {
			return []int{1024, 8192, 65536}
		}
		return []int{1024, 8192, 65536, 262144, 1048576}
	case "tcp-pp":
		if cfg.quick() {
			return []int{256, 1024}
		}
		return []int{256, 1024, 4096}
	case "nfs-read":
		if cfg.quick() {
			return []int{1024, 8192}
		}
		return []int{1024, 8192, 65536}
	}
	panic("bench: unknown megascale workload " + wl)
}

const (
	megaSeed      = 61096 // fixed run seed (trace + retry jitter)
	megaPayload   = 64    // echo message size (UDP and TCP)
	megaReadBytes = 1024  // NFS read size
	megaFileBytes = 4096  // NFS served file
	megaWaves     = 2     // synchronized incast waves per cell
	megaQuietUs   = 50_000
	megaWaveGapUs = 500_000

	// Offered steady-state load: fleet-wide mean inter-arrival gaps,
	// chosen below each workload's service capacity so the Poisson phase
	// measures queueing, not collapse. Capacity is reply-serialization
	// bound on the 10-Mb/s Ethernet (the scale experiment's measured
	// ceilings): ~10 echoes/ms, ~3.6 TCP rounds/ms, and only ~1.1 NFS
	// reads/ms (a 1-KiB read reply alone serializes for ~870 us).
	megaUDPGapUs = 150
	megaTCPGapUs = 600
	megaNFSGapUs = 2500

	// megaNFSHighWater is the nfsd ring's admission limit: the incast
	// wave overruns it and the shed-then-retry path must recover.
	megaNFSHighWater = 96

	megaServerMem    = 48 << 20
	megaTCPServerMem = 512 << 20 // 4096 live connections of window state
	megaUDPPool      = 64        // echo ASH consumes in the interrupt path
	megaNFSPool      = 256       // ring holds frames up to the high water
	megaTCPPoolSlack = 64
)

// megaEvents sizes the steady-state trace.
func megaEvents(cfg *Config, wl string, n int) int {
	full := 32768
	switch wl {
	case "tcp-pp":
		full = 8 * n // ~8 ping-pong rounds per connection
		if full > 32768 {
			full = 32768
		}
	case "nfs-read":
		full = 8192 // NFS service is ~9x slower than the echo path
	}
	if cfg.quick() {
		full /= 4
	}
	return full
}

// megaWaveClients sizes the incast waves: each wave must be drainable
// within the fleet's retry span, and the NFS server serves ~1.1 req/ms,
// so its waves are half-size.
func megaWaveClients(wl string) int {
	if wl == "nfs-read" {
		return 512
	}
	return 1024
}

// megaRetry is the per-workload backoff schedule (Budget counts
// reply-wait windows; see flyweight.Config). Windows sit well above each
// workload's worst incast tail so a queued-but-alive request is not
// retransmitted into the burst that delayed it — except NFS, whose
// tighter window is the point: shed requests must come back quickly, and
// the van der Corput first slot spreads the comeback.
func megaRetry(wl string) retry.Policy {
	switch wl {
	case "udp-echo":
		return retry.Policy{BaseUs: 400_000, Budget: 4}
	case "tcp-pp":
		return retry.Policy{BaseUs: 800_000, Budget: 6}
	case "nfs-read":
		return retry.Policy{BaseUs: 50_000, CapUs: 800_000, Budget: 10}
	}
	panic("bench: unknown megascale workload " + wl)
}

// MegaResult is one (workload, N) cell's measurement.
type MegaResult struct {
	Workload string
	N        int
	// Filters and TrieDepth describe the server's DPF engine after
	// install: at N=10^6 the udp-echo trie holds a million filters and is
	// still 3 deep.
	Filters   int
	TrieDepth int
	Msgs      uint64 // completed client operations (both phases)
	// CycPerMsg / DemuxPerMsg are the server's kernel receive cost per
	// accepted frame, exactly as the scale experiment computes them.
	CycPerMsg   float64
	DemuxPerMsg float64
	// BytesPerEp is the static flyweight footprint per endpoint.
	BytesPerEp int
	// P99Us is the steady-state (Poisson) tail; IncastP99Us the tail of
	// the synchronized waves.
	P99Us       float64
	IncastP99Us float64
	Retries     uint64
	Failures    uint64
	Sheds       uint64 // server high-watermark sheds (nfs-read)
	// Conns / Spread: peak concurrent ConnTable occupancy and the
	// max/mean bucket load at that peak (tcp-pp only).
	Conns  int
	Spread float64
}

// megaWorld is the server side of one cell: a full aegis host, exactly as
// the scale experiment builds one.
type megaWorld struct {
	eng  *sim.Engine
	prof *mach.Profile
	sw   *netdev.Switch
	k    *aegis.Kernel
	e    *aegis.EthernetIf
	ip   ip.Addr
	sys  *core.System
}

// newMegaWorld builds the server first so its port (and therefore its
// address) precedes the fleet's.
func newMegaWorld(mem, pool int) *megaWorld {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	k := aegis.NewKernelMem("srv", eng, prof, mem)
	e := aegis.NewEthernetPool(k, sw, pool)
	return &megaWorld{eng: eng, prof: prof, sw: sw, k: k, e: e,
		ip: ip.HostAddr(e.Addr()), sys: core.NewSystem(k)}
}

// fleet builds the flyweight side over the world's switch.
func (w *megaWorld) fleet(kind flyweight.Kind, n int, port uint16, pol retry.Policy) *flyweight.Fleet {
	return flyweight.NewFleet(flyweight.Config{
		Eng: w.eng, Prof: w.prof, Sw: w.sw,
		Kind: kind, N: n,
		ServerIP: w.ip, ServerLink: w.e.Addr(), ServerPort: port,
		ClientPort: scaleClientPort,
		Payload:    megaPayload,
		ReadBytes:  megaReadBytes, FileBytes: megaFileBytes, Handle: uint32(nfs.RootHandle) + 1,
		Window: 8192, Checksum: true,
		Retry: pol, Seed: megaSeed,
	})
}

// stack builds an IP stack for a server process, optionally arming the
// binding's ring high-watermark (the overload-control admission plane).
func (w *megaWorld) stack(p *aegis.Process, f *dpf.Filter, res ip.StaticResolver, highWater int) *ip.Stack {
	lep, err := link.BindEthernet(w.e, p, f)
	if err != nil {
		panic(err)
	}
	if highWater > 0 {
		lep.Binding().Ring.HighWater = highWater
	}
	st := ip.NewStack(lep, w.ip, res)
	st.LinkHdrLen = ether.HeaderLen
	myMAC := ether.PortMAC(w.e.Addr())
	st.PrependLink = func(dst link.Addr, b []byte) []byte {
		eh := ether.Header{Dst: ether.PortMAC(dst.Port), Src: myMAC, Type: ether.TypeIPv4}
		return eh.Marshal(b)
	}
	return st
}

// resolver maps the fleet's addresses (the server replies through its
// stack for tcp-pp and nfs-read; udp-echo answers raw from the ASH).
func (w *megaWorld) resolver(flt *flyweight.Fleet) ip.StaticResolver {
	res := ip.StaticResolver{w.ip: link.Addr{Port: w.e.Addr()}}
	for i := 0; i < flt.Len(); i++ {
		res[flt.Addr(i)] = link.Addr{Port: flt.Link(i)}
	}
	return res
}

// collect folds the server counters and fleet histograms into the result.
func (w *megaWorld) collect(wl string, n int, flt *flyweight.Fleet) MegaResult {
	r := MegaResult{
		Workload: wl, N: n,
		Filters: w.e.Filters(), TrieDepth: w.e.TrieDepth(),
		Msgs:       flt.Completed(),
		BytesPerEp: flt.StaticBytesPerEndpoint(),
		Retries:    flt.Retries, Failures: flt.Failures,
		Sheds: w.e.LoadSheds,
	}
	if rx := w.e.RxFrames; rx > 0 {
		kernel := sim.Time(w.k.Interrupts)*sim.Time(w.prof.InterruptCycles) +
			sim.Time(rx)*sim.Time(w.prof.DeviceRxService) +
			w.e.DemuxCycles
		r.CycPerMsg = float64(kernel) / float64(rx)
		r.DemuxPerMsg = float64(w.e.DemuxCycles) / float64(rx)
	}
	r.P99Us = w.prof.Us(flt.Hist.Quantile(0.99))
	r.IncastP99Us = w.prof.Us(flt.IncastHist.Quantile(0.99))
	return r
}

func runMegaCell(wl string, n int, cfg *Config) MegaResult {
	events := megaEvents(cfg, wl, n)
	switch wl {
	case "udp-echo":
		return runMegaUDP(n, events)
	case "tcp-pp":
		return runMegaTCP(n, events)
	case "nfs-read":
		return runMegaNFS(n, events)
	}
	panic("bench: unknown megascale workload " + wl)
}

// megaSourceFilter is the per-endpoint demux filter of the udp-echo
// sweep: 3 atoms (IPv4, UDP, source host). Every endpoint's filter
// shares the first two levels and diverges in one multi-way branch on
// the source address, which is why a 10^6-filter trie is 3 deep and a
// walk's cost is flat in N.
func megaSourceFilter(src ip.Addr) *dpf.Filter {
	return dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq8(ether.HeaderLen+9, ip.ProtoUDP).
		Eq32(ether.HeaderLen+12, ipU32(src))
}

// runMegaUDP: one shared echo ASH behind N source filters. The handler
// is shared — a per-endpoint closure would put N copies of everything a
// closure pins on the heap — so it derives the reply's destination from
// the frame's provenance (the ring entry's source port) instead of
// captured state.
func runMegaUDP(n, events int) MegaResult {
	w := newMegaWorld(megaServerMem, megaUDPPool)
	flt := w.fleet(flyweight.UDPEcho, n, scaleEchoPort, megaRetry("udp-echo"))

	w.k.Spawn("echo", func(p *aegis.Process) {
		srvMAC := ether.PortMAC(w.e.Addr())
		ash := w.sys.NewFuncASH(p, "mega-echo", true, func(ctx *core.Ctx) aegis.Disposition {
			const off = ether.HeaderLen + ip.HeaderLen + udp.HeaderLen
			nb := ctx.Entry().Len
			if nb < off+8 {
				return aegis.DispToUser
			}
			// Header validation (same modeled cost as the scale ASH).
			ctx.Straightline(48, 12)
			src := ctx.Entry().Src
			pl := nb - off
			eh := ether.Header{Dst: ether.PortMAC(src), Src: srvMAC, Type: ether.TypeIPv4}
			frame := eh.Marshal(nil)
			ih := ip.Header{TotalLen: uint16(ip.HeaderLen + udp.HeaderLen + pl),
				TTL: 64, Proto: ip.ProtoUDP, DF: true, Src: w.ip, Dst: ip.HostAddr(src)}
			frame = ih.Marshal(frame)
			frame = binary.BigEndian.AppendUint16(frame, scaleEchoPort)
			frame = binary.BigEndian.AppendUint16(frame, scaleClientPort)
			frame = binary.BigEndian.AppendUint16(frame, uint16(udp.HeaderLen+pl))
			frame = binary.BigEndian.AppendUint16(frame, 0)
			raw := ctx.RawData()
			for j := 0; j < pl; j++ {
				frame = append(frame, raw[aegis.StripedIndex(off+j)])
			}
			// Byte-wise echo copy out of the striped buffer.
			ctx.Straightline(2*pl, pl)
			ctx.Send(src, 0, frame)
			return aegis.DispConsumed
		})
		for i := 0; i < n; i++ {
			b, err := w.e.BindFilter(p, megaSourceFilter(flt.Addr(i)))
			if err != nil {
				panic(err)
			}
			// Attach directly: AttachEth also registers a detach closure
			// per binding, which is pure overhead times 10^6 here.
			b.Handler = ash
		}
	})

	tr := workload.Poisson(megaSeed, workload.Spec{
		Clients: n, Events: events, MeanGapUs: megaUDPGapUs, Size: megaPayload})
	flt.Run(tr, megaWaves, megaWaveClients("udp-echo"), megaQuietUs, megaWaveGapUs)
	w.eng.Run()
	checkPoolDrained(w.eng, w.sw.Pool)
	return w.collect("udp-echo", n, flt)
}

// runMegaTCP: the scale experiment's fan-in accept path (per-client
// listen filter, 6-atom connection filter, AcceptHandoff, shared
// ConnTable), served to flyweight FlyConn clients. The server echoes
// until the client's FIN (flyweights close first), so connection
// lifetimes follow the trace without the server knowing the schedule.
func runMegaTCP(n, events int) MegaResult {
	w := newMegaWorld(megaTCPServerMem, 2*n+megaTCPPoolSlack)
	flt := w.fleet(flyweight.TCPPingPong, n, scaleTCPPort, megaRetry("tcp-pp"))
	res := w.resolver(flt)

	srvCfg := tcp.DefaultConfig()
	srvCfg.MSS = EthernetTCPMSS
	srvCfg.Polling = false
	srvCfg.Mode = tcp.ModeASH
	srvCfg.Sys = w.sys

	tbl := tcp.NewConnTable(n / 4)
	peak := 0
	var peakLoads []int
	for i := 0; i < n; i++ {
		i := i
		w.k.Spawn(fmt.Sprintf("srv-%06d", i), func(p *aegis.Process) {
			lst := w.stack(p, scalePeerFilter(w.ip, ip.ProtoTCP, scaleTCPPort, flt.Addr(i)), res, 0)
			d, ok, err := lst.RecvUntil(false, 0)
			if err != nil || !ok {
				panic(fmt.Sprintf("megascale: listener %d: ok=%v err=%v", i, ok, err))
			}
			syn, isSyn := tcp.ParseSyn(d)
			lst.Release(d)
			if !isSyn {
				panic(fmt.Sprintf("megascale: listener %d got non-SYN", i))
			}
			st := w.stack(p,
				scaleConnFilter(w.ip, ip.ProtoTCP, scaleTCPPort, syn.RemoteIP, syn.RemotePort), res, 0)
			conn, err := tcp.AcceptHandoff(st, srvCfg, scaleTCPPort, syn)
			if err != nil {
				panic(err)
			}
			if err := tbl.Bind(conn.Tuple(), conn); err != nil {
				panic(err)
			}
			// The engine serializes processes, so the peak snapshot needs
			// no lock; deterministic because accept order is.
			if l := tbl.Len(); l > peak {
				peak, peakLoads = l, tbl.Loads()
			}
			buf := p.AS.MustAlloc(megaPayload, "echo")
			for {
				if err := conn.ReadFull(buf.Base, megaPayload); err != nil {
					break // client FIN: the schedule is done
				}
				if err := conn.WriteBytes(w.k.Bytes(buf.Base, megaPayload)); err != nil {
					break
				}
			}
			if !tbl.Remove(conn.Tuple()) {
				panic("megascale: connection already removed")
			}
			_ = conn.Close()
		})
	}

	tr := workload.Poisson(megaSeed, workload.Spec{
		Clients: n, Events: events, MeanGapUs: megaTCPGapUs, Size: megaPayload})
	flt.Run(tr, megaWaves, megaWaveClients("tcp-pp"), megaQuietUs, megaWaveGapUs)
	w.eng.Run()
	checkPoolDrained(w.eng, w.sw.Pool)

	r := w.collect("tcp-pp", n, flt)
	r.Conns = peak
	if peak > 0 && len(peakLoads) > 0 {
		max := 0
		for _, l := range peakLoads {
			if l > max {
				max = l
			}
		}
		r.Spread = float64(max) * float64(len(peakLoads)) / float64(peak)
	}
	return r
}

// runMegaNFS: RPC fan-in against one nfsd socket whose ring runs the
// high-watermark admission plane. The incast waves overrun it; sheds and
// the fleet's jittered retries are the measurement.
func runMegaNFS(n, events int) MegaResult {
	w := newMegaWorld(megaServerMem, megaNFSPool)
	srv := nfs.NewServer()
	data := make([]byte, megaFileBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	fh := srv.AddFile("mega", data)
	flt := w.fleet(flyweight.NFSRead, n, scaleNFSPort, megaRetry("nfs-read"))
	if uint32(fh) != uint32(nfs.RootHandle)+1 {
		panic("megascale: unexpected NFS file handle")
	}
	res := w.resolver(flt)

	// Serve forever: a retry-born duplicate must not consume a
	// straggler's slot; the engine drains once the fleet is done.
	w.k.Spawn("nfsd", func(p *aegis.Process) {
		st := w.stack(p, scaleListenFilter(w.ip, ip.ProtoUDP, scaleNFSPort), res, megaNFSHighWater)
		sock := udp.NewSocket(st, scaleNFSPort, udp.Options{})
		srv.Serve(p, sock, 0)
	})

	tr := workload.Poisson(megaSeed, workload.Spec{
		Clients: n, Events: events, MeanGapUs: megaNFSGapUs, Size: megaReadBytes})
	flt.Run(tr, megaWaves, megaWaveClients("nfs-read"), megaQuietUs, megaWaveGapUs)
	w.eng.Run()
	checkPoolDrained(w.eng, w.sw.Pool)
	return w.collect("nfs-read", n, flt)
}

// megascaleCells enumerates the sweep, workload-major like scale.
func megascaleCells(cfg *Config) []Cell {
	var cells []Cell
	for _, wl := range megaWorkloads {
		for _, n := range megascaleNs(cfg, wl) {
			wl, n := wl, n
			cells = append(cells, Cell{
				Label: fmt.Sprintf("megascale/%s/N=%d", wl, n),
				Run:   func(cc *Config) any { return runMegaCell(wl, n, cc) },
			})
		}
	}
	return cells
}

// MegascaleSweep runs the full megascale cell grid and returns the
// results in canonical cell order — the entry point cmd/megascalebench
// uses to regenerate the committed BENCH_megascale.json snapshot.
func MegascaleSweep(cfg *Config) []MegaResult {
	vs := runCells(cfg, megascaleCells(cfg))
	out := make([]MegaResult, len(vs))
	for i, v := range vs {
		out[i] = v.(MegaResult)
	}
	return out
}

var megaWorkloadDesc = map[string]string{
	"udp-echo": fmt.Sprintf("%d-byte UDP echo, one 3-atom filter + shared ASH per endpoint", megaPayload),
	"tcp-pp":   fmt.Sprintf("%d-byte TCP ping-pong via fan-in accept + ConnTable", megaPayload),
	"nfs-read": fmt.Sprintf("%d-byte NFS reads, one socket, ring high-water %d", megaReadBytes, megaNFSHighWater),
}

// renderMegascale formats one table per workload. Column sets differ
// where the workloads measure different things (bucket spread is a
// ConnTable property; sheds an admission-control one).
func renderMegascale(cfg *Config, vs []any) string {
	var b strings.Builder
	b.WriteString("Megascale: flyweight fan-in, one full server host\n")
	b.WriteString("  (clients are kernel-free flyweight endpoints; the server is the same full\n")
	b.WriteString("   aegis kernel as `scale` — cyc/msg computed identically)\n")
	idx := 0
	for _, wl := range megaWorkloads {
		fmt.Fprintf(&b, "  %s: %s\n", wl, megaWorkloadDesc[wl])
		fmt.Fprintf(&b, "    %8s  %8s  %5s  %6s  %9s  %8s  %5s  %8s  %11s  %7s  %5s",
			"N", "filters", "depth", "msgs", "demux/msg", "cyc/msg", "B/ep",
			"p99[us]", "incast[us]", "retries", "fail")
		switch wl {
		case "tcp-pp":
			fmt.Fprintf(&b, "  %6s  %6s", "conns", "spread")
		case "nfs-read":
			fmt.Fprintf(&b, "  %6s", "sheds")
		}
		b.WriteByte('\n')
		for range megascaleNs(cfg, wl) {
			r := vs[idx].(MegaResult)
			idx++
			fmt.Fprintf(&b, "    %8d  %8d  %5d  %6d  %9.1f  %8.1f  %5d  %8.1f  %11.1f  %7d  %5d",
				r.N, r.Filters, r.TrieDepth, r.Msgs, r.DemuxPerMsg, r.CycPerMsg,
				r.BytesPerEp, r.P99Us, r.IncastP99Us, r.Retries, r.Failures)
			switch wl {
			case "tcp-pp":
				fmt.Fprintf(&b, "  %6d  %6.2f", r.Conns, r.Spread)
			case "nfs-read":
				fmt.Fprintf(&b, "  %6d", r.Sheds)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
