package bench

import (
	"ashs/internal/aegis"
	"ashs/internal/dpf"
	"ashs/internal/proto/arp"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/tcp"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
)

// Table2Row is one configuration's four measurements.
type Table2Row struct {
	Label   string
	UDPLat  float64 // us
	UDPTput float64 // MB/s
	TCPLat  float64 // us
	TCPTput float64 // MB/s
}

// Table2 is the UDP/TCP base-performance table (Section IV-D).
type Table2 struct {
	Rows []Table2Row
}

// PaperTable2 is Table II of the paper.
var PaperTable2 = []Table2Row{
	{"AN2; in place, no checksum", 221, 11.69, 333, 5.76},
	{"AN2; in place, with checksum", 244, 7.86, 383, 4.42},
	{"AN2; no checksum", 225, 8.57, 333, 5.02},
	{"AN2; with checksum", 244, 6.45, 384, 4.11},
	{"Ethernet; with checksum", 399, 1.02, 443, 1.03},
}

// Table2Params sizes the workloads (the paper: latency ping-pongs 4
// bytes; UDP throughput sends trains of 6 maximum-segment-size packets;
// TCP throughput writes 10 MB in 8-KB chunks with an 8-KB window).
type Table2Params struct {
	LatIters  int
	UDPTrains int
	TCPBytes  int
}

// DefaultTable2Params mirrors the paper's workloads.
func DefaultTable2Params() Table2Params {
	return Table2Params{LatIters: 10, UDPTrains: 30, TCPBytes: 10 << 20}
}

// table2Cells enumerates one cell per (configuration, measurement): every
// workload builds its own testbed, so all twenty run independently.
func table2Cells(p Table2Params) []Cell {
	var cells []Cell
	an2 := []struct {
		label          string
		inplace, cksum bool
	}{
		{"AN2; in place, no checksum", true, false},
		{"AN2; in place, with checksum", true, true},
		{"AN2; no checksum", false, false},
		{"AN2; with checksum", false, true},
	}
	for _, c := range an2 {
		c := c
		cells = append(cells,
			Cell{"table2/" + c.label + "/udp-lat", func(cfg *Config) any {
				return udpLatencyAN2(cfg, p.LatIters, c.inplace, c.cksum)
			}},
			Cell{"table2/" + c.label + "/udp-tput", func(cfg *Config) any {
				return udpThroughputAN2(cfg, p.UDPTrains, c.inplace, c.cksum)
			}},
			Cell{"table2/" + c.label + "/tcp-lat", func(cfg *Config) any {
				return tcpLatencyAN2(cfg, p.LatIters, c.inplace, c.cksum)
			}},
			Cell{"table2/" + c.label + "/tcp-tput", func(cfg *Config) any {
				return tcpThroughputAN2(cfg, p.TCPBytes, c.inplace, c.cksum)
			}},
		)
	}
	cells = append(cells,
		Cell{"table2/Ethernet; with checksum/udp-lat", func(cfg *Config) any {
			return udpLatencyEth(cfg, p.LatIters)
		}},
		Cell{"table2/Ethernet; with checksum/udp-tput", func(cfg *Config) any {
			return udpThroughputEth(cfg, p.UDPTrains)
		}},
		Cell{"table2/Ethernet; with checksum/tcp-lat", func(cfg *Config) any {
			return tcpLatencyEth(cfg, p.LatIters)
		}},
		Cell{"table2/Ethernet; with checksum/tcp-tput", func(cfg *Config) any {
			return tcpThroughputEth(cfg, p.TCPBytes/4) // Ethernet is ~1 MB/s; keep runtime sane
		}},
	)
	return cells
}

// table2Labels is the row order of Table II.
var table2Labels = []string{
	"AN2; in place, no checksum",
	"AN2; in place, with checksum",
	"AN2; no checksum",
	"AN2; with checksum",
	"Ethernet; with checksum",
}

func mergeTable2(vs []any) Table2 {
	var t Table2
	for i, label := range table2Labels {
		t.Rows = append(t.Rows, Table2Row{
			Label:   label,
			UDPLat:  vs[4*i].(float64),
			UDPTput: vs[4*i+1].(float64),
			TCPLat:  vs[4*i+2].(float64),
			TCPTput: vs[4*i+3].(float64),
		})
	}
	return t
}

// RunTable2 regenerates Table II.
func RunTable2(cfg *Config, p Table2Params) Table2 {
	return mergeTable2(runCells(cfg, table2Cells(p)))
}

// --------------------------------------------------------------------
// UDP workloads
// --------------------------------------------------------------------

func udpOpts(inplace, cksum bool) udp.Options {
	return udp.Options{InPlace: inplace, Checksum: cksum}
}

func udpLatencyAN2(cfg *Config, iters int, inplace, cksum bool) float64 {
	tb := NewAN2Testbed(cfg)
	opts := udpOpts(inplace, cksum)
	const warmup = 2
	tb.K2.Spawn("server", func(p *aegis.Process) {
		sock := udp.NewSocket(tb.StackAN2(p, 2, 5), 53, opts)
		for i := 0; i < warmup+iters; i++ {
			m, err := sock.Recv(true)
			if err != nil {
				panic(err)
			}
			data := append([]byte(nil), m.Bytes(tb.K2)...)
			sock.Release(m)
			if err := sock.SendBytes(m.From, m.FromPort, data); err != nil {
				panic(err)
			}
		}
	})
	var total sim.Time
	tb.K1.Spawn("client", func(p *aegis.Process) {
		sock := udp.NewSocket(tb.StackAN2(p, 1, 5), 1234, opts)
		var start sim.Time
		for i := 0; i < warmup+iters; i++ {
			if i == warmup {
				start = p.K.Now()
			}
			_ = sock.SendBytes(tb.IP2, 53, []byte{1, 2, 3, 4})
			m, err := sock.Recv(true)
			if err != nil {
				panic(err)
			}
			sock.Release(m)
		}
		total = p.K.Now() - start
	})
	tb.Run()
	return tb.Us(total) / float64(iters)
}

// udpTrain runs the paper's UDP throughput workload over prepared sockets:
// trains of 6 MSS-sized packets, each followed by a small acknowledgment.
func udpTrain(tb *Testbed, mkSock func(p *aegis.Process, host int) *udp.Socket,
	mss, trains int) float64 {
	const perTrain = 6
	const warmup = 1
	var total sim.Time
	tb.K2.Spawn("server", func(p *aegis.Process) {
		sock := mkSock(p, 2)
		for t := 0; t < warmup+trains; t++ {
			for i := 0; i < perTrain; i++ {
				m, err := sock.Recv(true)
				if err != nil {
					panic(err)
				}
				sock.Release(m)
			}
			_ = sock.SendBytes(tb.IP1, 1234, []byte{0xac, 0x4b})
		}
	})
	tb.K1.Spawn("client", func(p *aegis.Process) {
		sock := mkSock(p, 1)
		payload := p.AS.MustAlloc(mss, "train-payload")
		var start sim.Time
		for t := 0; t < warmup+trains; t++ {
			if t == warmup {
				start = p.K.Now()
			}
			for i := 0; i < perTrain; i++ {
				if err := sock.SendTo(tb.IP2, 53, payload.Base, mss); err != nil {
					panic(err)
				}
			}
			m, err := sock.Recv(true)
			if err != nil {
				panic(err)
			}
			sock.Release(m)
		}
		total = p.K.Now() - start
	})
	tb.Run()
	return tb.Prof.MBps(trains*perTrain*mss, total)
}

func udpThroughputAN2(cfg *Config, trains int, inplace, cksum bool) float64 {
	tb := NewAN2Testbed(cfg)
	opts := udpOpts(inplace, cksum)
	return udpTrain(tb, func(p *aegis.Process, host int) *udp.Socket {
		port := uint16(1234)
		if host == 2 {
			port = 53
		}
		return udp.NewSocket(tb.StackAN2(p, host, 5), port, opts)
	}, 3072, trains)
}

// --------------------------------------------------------------------
// TCP workloads
// --------------------------------------------------------------------

func tcpCfgAN2(tb *Testbed, host int, inplace, cksum bool) tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.Checksum = cksum
	cfg.InPlace = inplace
	cfg.Polling = true
	if host == 1 {
		cfg.Sys = tb.Sys1
	} else {
		cfg.Sys = tb.Sys2
	}
	return cfg
}

func tcpLatencyAN2(cfg *Config, iters int, inplace, cksum bool) float64 {
	tb := NewAN2Testbed(cfg)
	return tcpPingPong(tb, iters, nil,
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Accept(tb.StackAN2(p, 2, 7), tcpCfgAN2(tb, 2, inplace, cksum), 80)
		},
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Connect(tb.StackAN2(p, 1, 7), tcpCfgAN2(tb, 1, inplace, cksum), 1234, tb.IP2, 80)
		})
}

// tcpPingPong measures a 4-byte application-level ping-pong.
func tcpPingPong(tb *Testbed, iters int, o *obsRun,
	accept func(p *aegis.Process) (*tcp.Conn, error),
	connect func(p *aegis.Process) (*tcp.Conn, error)) float64 {
	o.attach(tb)
	tb.K2.Spawn("server", func(p *aegis.Process) {
		conn, err := accept(p)
		if err != nil {
			panic(err)
		}
		buf := p.AS.MustAlloc(64, "rx")
		for i := 0; i < 2+iters; i++ {
			if err := conn.ReadFull(buf.Base, 4); err != nil {
				panic(err)
			}
			if err := conn.Write(buf.Base, 4); err != nil {
				panic(err)
			}
		}
		_ = conn.Close()
	})
	var total, start sim.Time
	done := false
	tb.K1.Spawn("client", func(p *aegis.Process) {
		conn, err := connect(p)
		if err != nil {
			panic(err)
		}
		buf := p.AS.MustAlloc(64, "tx")
		for i := 0; i < 2+iters; i++ {
			if i == 2 {
				start = p.K.Now()
			}
			if err := conn.Write(buf.Base, 4); err != nil {
				panic(err)
			}
			if err := conn.ReadFull(buf.Base, 4); err != nil {
				panic(err)
			}
		}
		total = p.K.Now() - start
		done = true
		_ = conn.Close()
	})
	tb.RunUntilDone(&done, 60_000_000_000)
	o.window(start, start+total)
	return tb.Us(total) / float64(iters)
}

// tcpStream measures bulk throughput: total bytes written in writeSize
// chunks over a synchronous-write connection.
func tcpStream(tb *Testbed, totalBytes, writeSize int,
	accept func(p *aegis.Process) (*tcp.Conn, error),
	connect func(p *aegis.Process) (*tcp.Conn, error)) float64 {
	tb.K2.Spawn("server", func(p *aegis.Process) {
		conn, err := accept(p)
		if err != nil {
			panic(err)
		}
		buf := p.AS.MustAlloc(writeSize+64, "rx")
		got := 0
		for got < totalBytes {
			n, err := conn.Read(buf.Base, writeSize)
			if err != nil {
				panic(err)
			}
			got += n
		}
		_ = conn.Close()
	})
	var total sim.Time
	done := false
	tb.K1.Spawn("client", func(p *aegis.Process) {
		conn, err := connect(p)
		if err != nil {
			panic(err)
		}
		buf := p.AS.MustAlloc(writeSize, "tx")
		start := p.K.Now()
		for sent := 0; sent < totalBytes; sent += writeSize {
			n := writeSize
			if totalBytes-sent < n {
				n = totalBytes - sent
			}
			if err := conn.Write(buf.Base, n); err != nil {
				panic(err)
			}
		}
		total = p.K.Now() - start
		done = true
		_ = conn.Close()
	})
	tb.RunUntilDone(&done, 600_000_000_000)
	return tb.Prof.MBps(totalBytes, total)
}

func tcpThroughputAN2(cfg *Config, totalBytes int, inplace, cksum bool) float64 {
	tb := NewAN2Testbed(cfg)
	return tcpStream(tb, totalBytes, 8192,
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Accept(tb.StackAN2(p, 2, 7), tcpCfgAN2(tb, 2, inplace, cksum), 80)
		},
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Connect(tb.StackAN2(p, 1, 7), tcpCfgAN2(tb, 1, inplace, cksum), 1234, tb.IP2, 80)
		})
}

// --------------------------------------------------------------------
// Ethernet stacks (DPF demux + ARP)
// --------------------------------------------------------------------

// EthStack builds an IP stack over the Ethernet for p, demuxing with a DPF
// filter on (ethertype, local IP, protocol, local port).
func (tb *Testbed) EthStack(p *aegis.Process, host int, proto byte, port uint16, svc *arp.Service) *ip.Stack {
	iface := tb.E1
	local := tb.IP1
	if host == 2 {
		iface = tb.E2
		local = tb.IP2
	}
	f := dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq32(ether.HeaderLen+16, ipU32(local)).
		Eq8(ether.HeaderLen+9, proto).
		Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
	ep, err := link.BindEthernet(iface, p, f)
	if err != nil {
		panic(err)
	}
	st := ip.NewStack(ep, local, svc)
	st.LinkHdrLen = ether.HeaderLen
	myMAC := ether.PortMAC(iface.Addr())
	st.PrependLink = func(dst link.Addr, b []byte) []byte {
		h := ether.Header{Dst: ether.PortMAC(dst.Port), Src: myMAC, Type: ether.TypeIPv4}
		return h.Marshal(b)
	}
	return st
}

func ipU32(a ip.Addr) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// ethWorld prepares the Ethernet testbed with ARP daemons.
func ethWorld(cfg *Config) (*Testbed, *arp.Service, *arp.Service) {
	tb := NewEthernetTestbed(cfg)
	s1, err := arp.Start(tb.K1, tb.E1, tb.IP1)
	if err != nil {
		panic(err)
	}
	s2, err := arp.Start(tb.K2, tb.E2, tb.IP2)
	if err != nil {
		panic(err)
	}
	return tb, s1, s2
}

// EthernetUDPPayload is the MSS-equivalent UDP payload on the Ethernet
// (1472 data bytes fill a 1514-byte frame).
const EthernetUDPPayload = 1472

// EthernetTCPMSS is the TCP segment size used on the Ethernet (the paper
// quotes 1500; 1460 is what fits with headers).
const EthernetTCPMSS = 1460

func udpLatencyEth(cfg *Config, iters int) float64 {
	tb, s1, s2 := ethWorld(cfg)
	opts := udp.Options{Checksum: true}
	const warmup = 2
	tb.K2.Spawn("server", func(p *aegis.Process) {
		sock := udp.NewSocket(tb.EthStack(p, 2, ip.ProtoUDP, 53, s2), 53, opts)
		for i := 0; i < warmup+iters; i++ {
			m, err := sock.Recv(true)
			if err != nil {
				panic(err)
			}
			data := append([]byte(nil), m.Bytes(tb.K2)...)
			sock.Release(m)
			_ = sock.SendBytes(m.From, m.FromPort, data)
		}
	})
	var total sim.Time
	tb.K1.Spawn("client", func(p *aegis.Process) {
		sock := udp.NewSocket(tb.EthStack(p, 1, ip.ProtoUDP, 1234, s1), 1234, opts)
		var start sim.Time
		for i := 0; i < warmup+iters; i++ {
			if i == warmup {
				start = p.K.Now()
			}
			_ = sock.SendBytes(tb.IP2, 53, []byte{1, 2, 3, 4})
			m, err := sock.Recv(true)
			if err != nil {
				panic(err)
			}
			sock.Release(m)
		}
		total = p.K.Now() - start
	})
	tb.Run()
	return tb.Us(total) / float64(iters)
}

func udpThroughputEth(cfg *Config, trains int) float64 {
	tb, s1, s2 := ethWorld(cfg)
	opts := udp.Options{Checksum: true}
	return udpTrain(tb, func(p *aegis.Process, host int) *udp.Socket {
		port := uint16(1234)
		svc := s1
		if host == 2 {
			port = 53
			svc = s2
		}
		return udp.NewSocket(tb.EthStack(p, host, ip.ProtoUDP, port, svc), port, opts)
	}, EthernetUDPPayload, trains)
}

func tcpCfgEth(tb *Testbed, host int) tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.MSS = EthernetTCPMSS
	cfg.Polling = true
	if host == 1 {
		cfg.Sys = tb.Sys1
	} else {
		cfg.Sys = tb.Sys2
	}
	return cfg
}

func tcpLatencyEth(cfg *Config, iters int) float64 {
	tb, s1, s2 := ethWorld(cfg)
	return tcpPingPong(tb, iters, nil,
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Accept(tb.EthStack(p, 2, ip.ProtoTCP, 80, s2), tcpCfgEth(tb, 2), 80)
		},
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Connect(tb.EthStack(p, 1, ip.ProtoTCP, 1234, s1), tcpCfgEth(tb, 1), 1234, tb.IP2, 80)
		})
}

func tcpThroughputEth(cfg *Config, totalBytes int) float64 {
	tb, s1, s2 := ethWorld(cfg)
	return tcpStream(tb, totalBytes, 8192,
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Accept(tb.EthStack(p, 2, ip.ProtoTCP, 80, s2), tcpCfgEth(tb, 2), 80)
		},
		func(p *aegis.Process) (*tcp.Conn, error) {
			return tcp.Connect(tb.EthStack(p, 1, ip.ProtoTCP, 1234, s1), tcpCfgEth(tb, 1), 1234, tb.IP2, 80)
		})
}

// Table renders Table II.
func (t Table2) Table() *Table {
	tab := &Table{
		Title:   "Table II: latency (us) and throughput (MB/s) for UDP and TCP",
		Columns: []string{"UDP lat", "UDP tput", "TCP lat", "TCP tput"},
	}
	for i, r := range t.Rows {
		var paper []float64
		if i < len(PaperTable2) {
			p := PaperTable2[i]
			paper = []float64{p.UDPLat, p.UDPTput, p.TCPLat, p.TCPTput}
		}
		tab.Rows = append(tab.Rows, Row{
			Label:    r.Label,
			Measured: []float64{r.UDPLat, r.UDPTput, r.TCPLat, r.TCPTput},
			Paper:    paper,
		})
	}
	return tab
}

// EthWorldDebug exposes the Ethernet world builder for diagnostics.
func EthWorldDebug() (*Testbed, *arp.Service, *arp.Service) { return ethWorld(nil) }
