// Package bench regenerates every table and figure of the paper's
// evaluation (Sections IV and V). Each experiment builds a fresh simulated
// testbed — two DECstation 5000/240s on an AN2 switch or an Ethernet
// segment — runs the workload the paper describes, and returns the rows
// the paper reports alongside the paper's own numbers for comparison.
//
// Nothing here replays constants from the result tables: the measured
// values emerge from the cost-model composition (see DESIGN.md §1, §4).
package bench

import (
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/obs"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Testbed is a pair of simulated hosts on one network.
type Testbed struct {
	Eng        *sim.Engine
	Prof       *mach.Profile
	Sw         *netdev.Switch
	K1, K2     *aegis.Kernel
	A1, A2     *aegis.AN2If      // AN2 testbeds
	E1, E2     *aegis.EthernetIf // Ethernet testbeds
	Sys1, Sys2 *core.System
	IP1, IP2   ip.Addr
	Obs        *obs.Plane // nil unless AttachObs was called
}

// AttachObs wires an observability plane into the testbed's switch and
// both kernels. Tracing charges no simulated cycles, so attaching a plane
// never changes measured results.
func (tb *Testbed) AttachObs(pl *obs.Plane) {
	tb.Obs = pl
	tb.Sw.Obs = pl
	tb.K1.Obs = pl
	tb.K2.Obs = pl
}

// NewAN2Testbed builds the standard two-host AN2 world. The config's
// Obs/Fault hooks (nil-safe) run before any workload touches the testbed.
func NewAN2Testbed(cfg *Config) *Testbed {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	tb := &Testbed{Eng: eng, Prof: prof, Sw: sw,
		K1: aegis.NewKernel("h1", eng, prof),
		K2: aegis.NewKernel("h2", eng, prof),
	}
	tb.A1, tb.A2 = aegis.NewAN2(tb.K1, sw), aegis.NewAN2(tb.K2, sw)
	tb.Sys1, tb.Sys2 = core.NewSystem(tb.K1), core.NewSystem(tb.K2)
	tb.IP1, tb.IP2 = ip.HostAddr(tb.A1.Addr()), ip.HostAddr(tb.A2.Addr())
	cfg.observe(tb)
	return tb
}

// NewEthernetTestbed builds the two-host Ethernet world.
func NewEthernetTestbed(cfg *Config) *Testbed {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	tb := &Testbed{Eng: eng, Prof: prof, Sw: sw,
		K1: aegis.NewKernel("h1", eng, prof),
		K2: aegis.NewKernel("h2", eng, prof),
	}
	tb.E1, tb.E2 = aegis.NewEthernet(tb.K1, sw), aegis.NewEthernet(tb.K2, sw)
	tb.Sys1, tb.Sys2 = core.NewSystem(tb.K1), core.NewSystem(tb.K2)
	tb.IP1, tb.IP2 = ip.HostAddr(tb.E1.Addr()), ip.HostAddr(tb.E2.Addr())
	cfg.observe(tb)
	return tb
}

// StackAN2 builds an IP stack over a fresh VC binding for p.
func (tb *Testbed) StackAN2(p *aegis.Process, host, vc int) *ip.Stack {
	iface := tb.A1
	local := tb.IP1
	if host == 2 {
		iface = tb.A2
		local = tb.IP2
	}
	ep, err := link.BindAN2(iface, p, vc, 16, iface.MaxFrame())
	if err != nil {
		panic(err)
	}
	return ip.NewStack(ep, local, ip.StaticResolver{
		tb.IP1: {Port: tb.A1.Addr(), VC: vc},
		tb.IP2: {Port: tb.A2.Addr(), VC: vc},
	})
}

// Us converts cycles to microseconds under the testbed profile.
func (tb *Testbed) Us(c sim.Time) float64 { return tb.Prof.Us(c) }

// checkPoolDrained is the end-of-cell leak gate: once the engine has
// drained, no event can ever Release a buffer again, so any lease still
// outstanding is leaked — some path leased a frame and lost it. While
// events remain pending (sliced runs stopped mid-workload) outstanding
// leases are legitimately owned by in-flight frames and queued commits,
// and the check is vacuous.
func checkPoolDrained(eng *sim.Engine, pool *netdev.BufPool) {
	if eng.Pending() == 0 && pool.InUse() != 0 {
		panic(fmt.Sprintf("bench: %d pool buffers leaked at end of experiment cell (%d leased, %d released)",
			pool.InUse(), pool.Leases, pool.Releases))
	}
}

// CheckPool applies the leak gate to the testbed's switch pool.
func (tb *Testbed) CheckPool() { checkPoolDrained(tb.Eng, tb.Sw.Pool) }

// Run drains the engine and verifies the buffer pool's lease
// accounting. Experiment cells that run to quiescence end through here
// rather than calling tb.Eng.Run() directly.
func (tb *Testbed) Run() {
	tb.Eng.Run()
	tb.CheckPool()
}

// RunUntilDone advances the simulation in slices until *done is set (the
// measurement finished) or maxSimUs of virtual time passes. Competitor
// processes never exit, so experiments cannot simply drain the engine.
func (tb *Testbed) RunUntilDone(done *bool, maxSimUs float64) {
	limit := tb.Prof.Cycles(maxSimUs)
	slice := tb.Prof.Cycles(100_000)
	for !*done && tb.Eng.Now() < limit && (tb.Eng.Pending() > 0 || tb.Eng.Now() == 0) {
		tb.Eng.RunFor(slice)
	}
	if !*done {
		panic("bench: experiment did not complete within its time bound")
	}
	tb.CheckPool()
}

// Row is one line of a rendered result table.
type Row struct {
	Label    string
	Measured []float64
	Paper    []float64
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Note    string
	Columns []string // value column names
	Rows    []Row
	Format  string // printf verb for values, default %.2f
}

// Render produces an aligned text table with measured-vs-paper columns.
func (t *Table) Render() string {
	format := t.Format
	if format == "" {
		format = "%.2f"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	header := []string{"configuration"}
	for _, c := range t.Columns {
		header = append(header, c+" [meas]", c+" [paper]")
	}
	rows := [][]string{header}
	for _, r := range t.Rows {
		cells := []string{r.Label}
		for i := range t.Columns {
			m, p := "-", "-"
			if i < len(r.Measured) {
				m = fmt.Sprintf(format, r.Measured[i])
			}
			if i < len(r.Paper) {
				p = fmt.Sprintf(format, r.Paper[i])
			}
			cells = append(cells, m, p)
		}
		rows = append(rows, cells)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			if i == 0 {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 2
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString("  " + strings.Repeat("-", total-2) + "\n")
		}
	}
	return b.String()
}
