package bench

import (
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/crl"
	"ashs/internal/mach"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Fig4Point is the remote-increment round trip with n active processes on
// the serving host, for the three systems of Fig. 4.
type Fig4Point struct {
	Procs     int
	ASH       float64 // us: handled in the kernel, scheduler-independent
	Oblivious float64 // us: user level under Aegis' oblivious round-robin
	Ultrix    float64 // us: user level under an Ultrix-like boosting scheduler
}

// Fig4 is the scheduling-decoupling experiment (Section V-C).
type Fig4 struct {
	Points []Fig4Point
}

// fig4Cells enumerates one cell per (process count, system).
func fig4Cells(maxProcs, iters int) []Cell {
	var cells []Cell
	for n := 1; n <= maxProcs; n++ {
		n := n
		for _, system := range []string{"ash", "oblivious", "ultrix"} {
			system := system
			cells = append(cells, Cell{fmt.Sprintf("fig4/%d-procs/%s", n, system),
				func(cfg *Config) any { return fig4RT(cfg, n, system, iters) }})
		}
	}
	return cells
}

func mergeFig4(maxProcs int, vs []any) Fig4 {
	var out Fig4
	for n := 1; n <= maxProcs; n++ {
		i := (n - 1) * 3
		out.Points = append(out.Points, Fig4Point{
			Procs:     n,
			ASH:       vs[i].(float64),
			Oblivious: vs[i+1].(float64),
			Ultrix:    vs[i+2].(float64),
		})
	}
	return out
}

// RunFig4 regenerates Fig. 4 for process counts 1..maxProcs.
func RunFig4(cfg *Config, maxProcs, iters int) Fig4 {
	return mergeFig4(maxProcs, runCells(cfg, fig4Cells(maxProcs, iters)))
}

// fig4RT measures the remote-increment RT with n processes active on the
// server: the receiving application plus n-1 compute-bound competitors.
func fig4RT(cfg *Config, n int, system string, iters int) float64 {
	tb := NewAN2Testbed(cfg)
	const vc = 9
	const warmup = 2

	if system == "ultrix" {
		// The Ultrix-style scheduler "raises the priority of a process
		// immediately after a network interrupt", but every kernel
		// operation costs Ultrix-class cycles (an order of magnitude over
		// Aegis: Section V's discussion of kernel crossing costs).
		tb.K2.Sched = aegis.NewPriorityBoost(tb.K2)
		ultrixify(tb.K2.Prof)
	}

	// Competitors: n-1 compute-bound processes on the serving host.
	for i := 1; i < n; i++ {
		tb.K2.Spawn(fmt.Sprintf("competitor-%d", i), func(p *aegis.Process) {
			p.SpinForever()
		})
	}

	switch system {
	case "ash":
		owner := tb.K2.Spawn("dsm-app", func(p *aegis.Process) {})
		node := crl.NewNode(tb.Sys2, owner)
		prog := crl.IncrementHandler(node.CounterSeg.Base, tb.A1.Addr(), vc)
		ash := tb.Sys2.MustDownload(owner, prog, core.Options{})
		b, err := tb.A2.BindVC(owner, vc, 8, 4096)
		if err != nil {
			panic(err)
		}
		ash.AttachVC(b)
	default:
		tb.K2.Spawn("server", func(p *aegis.Process) {
			ep, err := link.BindAN2(tb.A2, p, vc, 8, 4096)
			if err != nil {
				panic(err)
			}
			counter := p.AS.MustAlloc(64, "counter")
			for i := 0; i < warmup+iters; i++ {
				f := ep.Recv(false) // interrupt-driven wait
				inc := f.U32(0)
				v, _ := p.AS.Load32(counter.Base)
				_ = p.AS.Store32(counter.Base, v+inc)
				p.Compute(10)
				reply := make([]byte, 4)
				ep.Release(f)
				ep.Send(link.Addr{Port: f.Entry.Src, VC: vc}, reply)
			}
		})
	}

	var total sim.Time
	done := 0
	finished := false
	tb.K1.Spawn("client", func(p *aegis.Process) {
		ep, err := link.BindAN2(tb.A1, p, vc, 8, 4096)
		if err != nil {
			panic(err)
		}
		var start sim.Time
		for i := 0; i < warmup+iters; i++ {
			if i == warmup {
				start = p.K.Now()
			}
			for {
				ep.Send(link.Addr{Port: tb.A2.Addr(), VC: vc}, []byte{0, 0, 0, 1})
				// Messages can be lost before the server binds, and waits
				// can span many competitor quanta: retry generously.
				f, ok := ep.RecvUntil(true, p.K.Now()+tb.Prof.Cycles(400_000))
				if ok {
					ep.Release(f)
					break
				}
			}
			done = i + 1
		}
		total = p.K.Now() - start
		finished = true
	})
	// Round-robin waits grow with n; bound the run generously.
	tb.RunUntilDone(&finished, 60_000_000_000)
	if done < warmup+iters {
		panic(fmt.Sprintf("fig4: %s with %d procs completed %d/%d", system, n, done, warmup+iters))
	}
	return tb.Us(total) / float64(iters)
}

// ultrixify scales the kernel-operation costs of a profile to Ultrix-class
// values (the paper: Aegis' crossings are "an order of magnitude better
// than a run-of-the-mill UNIX system like Ultrix", and taking an interrupt
// plus re-entering via syscall costs ~95 us there vs ~35 us on Aegis).
func ultrixify(p *mach.Profile) {
	p.SyscallCycles *= 4
	p.InterruptCycles *= 10
	p.CrossingCycles *= 10
	p.SchedDecision += p.UltrixExtraCrossing
	p.RingUpdateCycles *= 4
	p.BufferMgmtCycles *= 2
	p.DeviceRxService *= 3
	p.DeviceTxSetup *= 3
}

// Render draws the three series.
func (f Fig4) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4: remote-increment RT (us) vs number of active processes on the server\n")
	b.WriteString("  (paper: ASH flat; oblivious round-robin grows with n; Ultrix-like boost\n")
	b.WriteString("   scheduler reduced but still affected)\n")
	fmt.Fprintf(&b, "  %6s  %12s  %14s  %12s\n", "procs", "ASH", "oblivious RR", "Ultrix-like")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "  %6d  %12.0f  %14.0f  %12.0f\n", pt.Procs, pt.ASH, pt.Oblivious, pt.Ultrix)
	}
	return b.String()
}
