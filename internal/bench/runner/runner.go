// Package runner executes independent experiment cells on a bounded
// worker pool with deterministic, index-ordered result merging.
//
// A Cell is one self-contained unit of experiment work: it builds its own
// simulated world, runs one workload, and returns one result value. Cells
// share no state, so any number of them can run concurrently; because
// results are merged strictly in cell-index order, the rendered output of
// a run is byte-identical whatever the worker count or completion order.
//
// The package is deliberately generic — it knows nothing about testbeds,
// tables, or the bench package. bench builds its experiment registry on
// top of these primitives.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Cell is one independent unit of work.
type Cell struct {
	// Label identifies the cell in diagnostics (panics, progress).
	Label string
	// Run executes the cell and returns its result. It must be
	// self-contained: no shared mutable state with any other cell.
	Run func() any
}

// DefaultParallelism is the worker count used when the caller does not
// specify one: every available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Normalize maps a caller-supplied parallelism request to a worker count:
// values below 1 select DefaultParallelism.
func Normalize(parallel int) int {
	if parallel < 1 {
		return DefaultParallelism()
	}
	return parallel
}

// Run executes cells on at most parallel workers (parallel < 1 selects
// DefaultParallelism) and returns their results indexed exactly like the
// input. With one worker the cells run inline in index order — the serial
// reference execution. A panic inside a cell is re-raised in the caller's
// goroutine once all workers have drained; when several cells panic, the
// lowest-indexed one is reported, so failures too are deterministic.
func Run(parallel int, cells []Cell) []any {
	results := make([]any, len(cells))
	parallel = Normalize(parallel)
	if parallel > len(cells) {
		parallel = len(cells)
	}
	if parallel <= 1 {
		for i, c := range cells {
			results[i] = c.Run()
		}
		return results
	}

	panics := make([]any, len(cells))
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() { panics[i] = recover() }()
					results[i] = cells[i].Run()
				}()
			}
		}()
	}
	for i := range cells {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("runner: cell %q panicked: %v", cells[i].Label, p))
		}
	}
	return results
}
