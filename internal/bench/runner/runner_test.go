package runner

import (
	"fmt"
	"strings"
	"testing"
)

// indexCells returns n cells whose result is their own index, with a bit
// of busywork so parallel workers genuinely interleave.
func indexCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("cell%d", i),
			Run: func() any {
				s := 0
				for k := 0; k < 1000*(n-i); k++ {
					s += k
				}
				_ = s
				return i
			},
		}
	}
	return cells
}

func TestRunMergesInIndexOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 4, 8, 33} {
		results := Run(parallel, indexCells(32))
		if len(results) != 32 {
			t.Fatalf("parallel=%d: got %d results", parallel, len(results))
		}
		for i, v := range results {
			if v.(int) != i {
				t.Fatalf("parallel=%d: results[%d] = %v", parallel, i, v)
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	def := DefaultParallelism()
	if def < 1 {
		t.Fatalf("DefaultParallelism = %d", def)
	}
	for _, req := range []int{0, -1, -100} {
		if got := Normalize(req); got != def {
			t.Fatalf("Normalize(%d) = %d, want %d", req, got, def)
		}
	}
	if got := Normalize(7); got != 7 {
		t.Fatalf("Normalize(7) = %d", got)
	}
}

func TestPanicReportsLowestIndexedCell(t *testing.T) {
	cells := indexCells(16)
	ran := make([]bool, len(cells))
	for _, bad := range []int{11, 3, 7} {
		bad := bad
		inner := cells[bad].Run
		cells[bad].Run = func() any {
			inner()
			panic(fmt.Sprintf("boom %d", bad))
		}
	}
	for i := range cells {
		i, inner := i, cells[i].Run
		cells[i].Run = func() any { ran[i] = true; return inner() }
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic propagated")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, `"cell3"`) || !strings.Contains(msg, "boom 3") {
			t.Fatalf("panic message %q does not report the lowest-indexed failing cell", msg)
		}
		for i, ok := range ran {
			if !ok {
				t.Fatalf("cell %d was never attempted", i)
			}
		}
	}()
	Run(4, cells)
}

func TestSerialPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("serial panic swallowed")
		}
	}()
	Run(1, []Cell{{Label: "bad", Run: func() any { panic("x") }}})
}
