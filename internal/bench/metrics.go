package bench

import (
	"fmt"
	"strings"

	"ashs/internal/obs"
)

// RenderMetrics dumps a registry as aligned text, sorted by name within
// each kind, so two identical runs render identically.
func RenderMetrics(r *obs.Registry) string {
	counters, gauges, histograms := r.Names()
	var b strings.Builder
	if len(counters) > 0 {
		b.WriteString("counters:\n")
		w := 0
		for _, n := range counters {
			if len(n) > w {
				w = len(n)
			}
		}
		for _, n := range counters {
			fmt.Fprintf(&b, "  %-*s  %d\n", w, n, r.Counter(n).Value())
		}
	}
	if len(gauges) > 0 {
		b.WriteString("gauges:\n")
		w := 0
		for _, n := range gauges {
			if len(n) > w {
				w = len(n)
			}
		}
		for _, n := range gauges {
			fmt.Fprintf(&b, "  %-*s  %d\n", w, n, r.Gauge(n).Value())
		}
	}
	if len(histograms) > 0 {
		b.WriteString("histograms (cycles):\n")
		w := 0
		for _, n := range histograms {
			if len(n) > w {
				w = len(n)
			}
		}
		for _, n := range histograms {
			h := r.Histogram(n)
			fmt.Fprintf(&b, "  %-*s  n=%d sum=%d min=%d max=%d p50<=%d p99<=%d\n",
				w, n, h.Count(), h.Sum(), h.Min(), h.Max(),
				h.Quantile(0.50), h.Quantile(0.99))
		}
	}
	return b.String()
}
