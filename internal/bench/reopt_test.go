package bench

import "testing"

// TestReoptImprovesHandlers is the experiment's acceptance claim: the
// DCG loop shows a measured improvement on at least two handlers (the
// divide-hoist and budget-coarsen showcases), the fused chain beats the
// sequential dispatch, the reordered trie beats insertion order, and the
// safety sweep reports zero divergences.
func TestReoptImprovesHandlers(t *testing.T) {
	r := RunReopt(&Config{Quick: true})

	improved := 0
	for _, run := range []ReoptRun{r.Shard, r.Sparse} {
		if run.ReoptInsns < run.StaticInsns && run.ReoptCycles < run.StaticCycles {
			improved++
		} else {
			t.Errorf("%s: static %d insns / %d cyc, reopt %d insns / %d cyc — no win",
				run.Name, run.StaticInsns, run.StaticCycles, run.ReoptInsns, run.ReoptCycles)
		}
	}
	if improved < 2 {
		t.Fatalf("re-optimization improved %d handlers, want >= 2", improved)
	}

	if r.Chain.FusedInsns >= r.Chain.SeqInsns || r.Chain.FusedCycles >= r.Chain.SeqCycles {
		t.Errorf("fused chain %d insns / %d cyc vs sequential %d / %d",
			r.Chain.FusedInsns, r.Chain.FusedCycles, r.Chain.SeqInsns, r.Chain.SeqCycles)
	}
	if r.Reorder.After >= r.Reorder.Before {
		t.Errorf("reordered trie %d cyc vs insertion order %d", r.Reorder.After, r.Reorder.Before)
	}
	if r.Diff.Divergences != 0 || r.Diff.Handlers < 9 || r.Diff.Rounds == 0 {
		t.Errorf("differential sweep: %+v", r.Diff)
	}
}
