package bench

import (
	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/crl"
	"ashs/internal/sandbox"
)

// AblationResult compares the safety strategies of Section III-B on the
// same handlers (the trusted remote write, 40-byte payload, and the
// fixed-record copy loop):
//
//   - unsafe: no protection (the baseline);
//   - MIPS + timer: SFI memory checks, watchdog timer bounds runtime
//     (the paper's prototype);
//   - MIPS + software budget: SFI plus counter checks at backward jumps;
//   - optimized variants: the same policies with the static-analysis
//     check optimizer (elision, hoisting, budget coarsening);
//   - x86 segmentation: verification only, hardware isolates
//     ("almost no software checks are needed").
type AblationResult struct {
	Labels    []string
	Insns     []int64   // trusted write: dynamic instructions per invocation
	LoopInsns []int64   // record-copy loop: dynamic instructions per invocation
	Us        []float64 // trusted-write handler path time per invocation
}

// ablationPolicies enumerates the compared safety strategies in render
// order.
func ablationPolicies() []struct {
	label  string
	pol    *sandbox.Policy
	unsafe bool
} {
	mipsTimerOpt := sandbox.DefaultPolicy()
	mipsTimerOpt.Optimize = true
	mipsSoft := sandbox.DefaultPolicy()
	mipsSoft.Budget = sandbox.BudgetSoftware
	mipsSoftOpt := sandbox.DefaultPolicy()
	mipsSoftOpt.Budget = sandbox.BudgetSoftware
	mipsSoftOpt.Optimize = true
	x86 := sandbox.DefaultPolicy()
	x86.Hardware = sandbox.HardwareX86
	return []struct {
		label  string
		pol    *sandbox.Policy
		unsafe bool
	}{
		{"unsafe (no protection)", nil, true},
		{"MIPS SFI + watchdog timer", sandbox.DefaultPolicy(), false},
		{"MIPS SFI + watchdog timer (optimized)", mipsTimerOpt, false},
		{"MIPS SFI + software budget", mipsSoft, false},
		{"MIPS SFI + software budget (optimized)", mipsSoftOpt, false},
		{"x86 segmentation", x86, false},
	}
}

// ablationCell is what one policy's cell measures: both handlers under one
// safety strategy.
type ablationCell struct {
	insns, loop int64
	us          float64
}

// ablationCells enumerates one cell per safety strategy.
func ablationCells() []Cell {
	pols := ablationPolicies()
	cells := make([]Cell, len(pols))
	for i, pc := range pols {
		pc := pc
		cells[i] = Cell{"ablation/" + pc.label, func(cfg *Config) any {
			insns, us := ablationRun(cfg, ablationWrite, pc.pol, pc.unsafe)
			loop, _ := ablationRun(cfg, ablationRecord, pc.pol, pc.unsafe)
			return ablationCell{insns: insns, loop: loop, us: us}
		}}
	}
	return cells
}

func mergeAblation(vs []any) AblationResult {
	r := AblationResult{}
	for i, pc := range ablationPolicies() {
		c := vs[i].(ablationCell)
		r.Labels = append(r.Labels, pc.label)
		r.Insns = append(r.Insns, c.insns)
		r.LoopInsns = append(r.LoopInsns, c.loop)
		r.Us = append(r.Us, c.us)
	}
	return r
}

// RunAblation regenerates the safety-strategy comparison.
func RunAblation(cfg *Config) AblationResult {
	return mergeAblation(runCells(cfg, ablationCells()))
}

// ablationHandler selects which library handler an ablation run measures.
type ablationHandler int

const (
	ablationWrite  ablationHandler = iota // trusted remote write, 40 B
	ablationRecord                        // fixed-record copy loop
)

// ablationRun executes a handler once under a policy and returns
// (dynamic instructions, path microseconds).
func ablationRun(cfg *Config, h ablationHandler, pol *sandbox.Policy, unsafe bool) (int64, float64) {
	tb := NewAN2Testbed(cfg)
	if pol != nil {
		tb.Sys2.Policy = pol
	}
	owner := tb.K2.Spawn("dsm-app", func(p *aegis.Process) {})
	node := crl.NewNode(tb.Sys2, owner)
	_, seg, err := node.AddSegment(8192, "shared")
	if err != nil {
		panic(err)
	}
	prog := crl.TrustedWriteHandler()
	if h == ablationRecord {
		prog = crl.FixedRecordWriteHandler(seg.Base+64, seg.Base)
	}
	ash := tb.Sys2.MustDownload(owner, prog, core.Options{Unsafe: unsafe, Budget: 100000})

	msgSeg := owner.AS.MustAlloc(4096, "synthetic-msg")
	msg := tb.K2.Bytes(msgSeg.Base, 4096)
	msgLen := crl.RecordBytes
	if h == ablationWrite {
		putU32 := func(off int, v uint32) {
			msg[off] = byte(v >> 24)
			msg[off+1] = byte(v >> 16)
			msg[off+2] = byte(v >> 8)
			msg[off+3] = byte(v)
		}
		putU32(0, seg.Base)
		putU32(4, 40)
		msgLen = 48
	}

	var insns int64
	var us float64
	tb.Eng.Schedule(0, func() {
		mc := aegis.SyntheticMsg(tb.K2, owner, aegis.RingEntry{Addr: msgSeg.Base, Len: msgLen})
		if d := ash.HandleMsg(mc); d != aegis.DispConsumed {
			panic(ash.InvoluntaryFault)
		}
		insns = ash.LastInsns()
		us = tb.Us(mc.Cost())
	})
	tb.Run()
	return insns, us
}

// Table renders the ablation.
func (r AblationResult) Table() *Table {
	tab := &Table{
		Title:   "Ablation: safety strategies of Section III-B (trusted remote write 40 B; record-copy loop)",
		Columns: []string{"write insns", "loop insns", "us/invocation"},
		Format:  "%.2f",
	}
	for i, l := range r.Labels {
		tab.Rows = append(tab.Rows, Row{
			Label:    l,
			Measured: []float64{float64(r.Insns[i]), float64(r.LoopInsns[i]), r.Us[i]},
		})
	}
	return tab
}
