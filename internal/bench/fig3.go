package bench

import (
	"fmt"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Fig3Point is one point of Fig. 3: user-level AN2 throughput at a packet
// size.
type Fig3Point struct {
	Size int
	MBps float64
}

// Fig3 is the throughput-vs-packet-size series.
type Fig3 struct {
	Points []Fig3Point
}

// PaperFig3Max is the paper's reading at 4-KB packets (16.11 MB/s toward
// a 16.8 MB/s link ceiling).
const PaperFig3Max = 16.11

// Fig3Sizes are the packet sizes swept.
var Fig3Sizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// fig3Cells enumerates one cell per packet size.
func fig3Cells(pktsPerSize int) []Cell {
	cells := make([]Cell, len(Fig3Sizes))
	for i, size := range Fig3Sizes {
		size := size
		cells[i] = Cell{fmt.Sprintf("fig3/%dB", size), func(cfg *Config) any {
			return fig3Throughput(cfg, size, pktsPerSize)
		}}
	}
	return cells
}

func mergeFig3(vs []any) Fig3 {
	var out Fig3
	for i, size := range Fig3Sizes {
		out.Points = append(out.Points, Fig3Point{size, vs[i].(float64)})
	}
	return out
}

// RunFig3 regenerates Fig. 3: a large train of packets of each size sent
// from user level, throughput measured at the receiver.
func RunFig3(cfg *Config, pktsPerSize int) Fig3 {
	return mergeFig3(runCells(cfg, fig3Cells(pktsPerSize)))
}

func fig3Throughput(cfg *Config, size, count int) float64 {
	tb := NewAN2Testbed(cfg)
	const vc = 5
	var first, last sim.Time
	got := 0
	tb.K2.Spawn("sink", func(p *aegis.Process) {
		ep, err := link.BindAN2(tb.A2, p, vc, 64, 8192)
		if err != nil {
			panic(err)
		}
		for got < count {
			f := ep.Recv(true)
			if got == 0 {
				first = p.K.Now()
			}
			got++
			last = p.K.Now()
			ep.Release(f)
		}
	})
	tb.K1.Spawn("source", func(p *aegis.Process) {
		ep, err := link.BindAN2(tb.A1, p, vc, 8, 8192)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, size)
		for i := 0; i < count; i++ {
			ep.Send(link.Addr{Port: tb.A2.Addr(), VC: vc}, buf)
		}
	})
	tb.Run()
	if got < 2 {
		return 0
	}
	return tb.Prof.MBps((got-1)*size, last-first)
}

// Render draws the series as a text chart.
func (f Fig3) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3: user-level AN2 throughput vs packet size\n")
	b.WriteString("  (paper: 16.11 MB/s at 4 KB; 16.8 MB/s link ceiling)\n")
	maxv := 17.0
	for _, pt := range f.Points {
		bar := int(pt.MBps / maxv * 50)
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "  %5d B  %6.2f MB/s  |%s\n", pt.Size, pt.MBps, strings.Repeat("#", bar))
	}
	return b.String()
}
