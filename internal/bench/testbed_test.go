package bench

import (
	"strings"
	"testing"
)

// TestPoolLeakGate pins the end-of-cell leak detector both ways: a
// drained world with every lease returned passes, and a deliberately
// dropped lease panics with the pool accounting in the message.
func TestPoolLeakGate(t *testing.T) {
	tb := NewAN2Testbed(&Config{})
	tb.Run() // empty world drains clean

	leaked := tb.Sw.LeaseData([]byte{1, 2, 3})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckPool did not panic on a leaked lease")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "leaked") {
			t.Fatalf("unexpected panic: %v", r)
		}
		leaked.Release()
		tb.CheckPool() // released: the gate passes again
	}()
	tb.CheckPool()
}
