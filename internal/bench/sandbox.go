package bench

import (
	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/crl"
	"ashs/internal/dpf"
	"ashs/internal/sim"
)

// SandboxResult is the Section V-D sandboxing-overhead experiment: the
// generic vs application-specific remote write, run in isolation (no
// communication), sandboxed and not, at 40 and 4096 bytes.
type SandboxResult struct {
	// Dynamic instruction counts (excluding the copied data), 40-byte run.
	GenericInsns         int64 // generic protocol, hand-crafted (unsafe)
	SpecificInsns        int64 // app-specific, hand-crafted (unsafe)
	SpecificSandboxInsns int64 // app-specific, sandboxed
	AddedBySandbox       int64
	// Execution-time ratios sandboxed/unsafe.
	Ratio40   float64
	Ratio4096 float64

	// The static-analysis ablation (not in the paper): the same handlers
	// under the optimizing sandboxer (check elision, loop hoisting).
	GenericSandboxInsns int64 // generic, naively sandboxed
	GenericOptInsns     int64 // generic, optimized sandbox
	SpecificOptInsns    int64 // app-specific, optimized sandbox
	// The record-copy loop variant, where the optimizer's loop passes
	// (hoisting, budget coarsening) apply.
	RecordInsns        int64 // record loop, unsafe
	RecordSandboxInsns int64 // record loop, naively sandboxed
	RecordOptInsns     int64 // record loop, optimized sandbox
}

// PaperSandbox holds the paper's Section V-D numbers.
var PaperSandbox = SandboxResult{
	GenericInsns: 68, SpecificInsns: 10, SpecificSandboxInsns: 38,
	AddedBySandbox: 28, Ratio40: 1.35, Ratio4096: 1.015,
}

// sandboxCells enumerates every (handler, mode, size) measurement; the
// merge step derives the reported deltas and ratios.
func sandboxCells() []Cell {
	write := func(label string, generic bool, mode sboxMode, nbytes int) Cell {
		return Cell{"sandbox/" + label, func(cfg *Config) any {
			return runWriteHandler(cfg, generic, mode, nbytes)
		}}
	}
	record := func(label string, mode sboxMode) Cell {
		return Cell{"sandbox/" + label, func(cfg *Config) any {
			return runRecordHandler(cfg, mode)
		}}
	}
	return []Cell{
		write("generic-unsafe-40", true, sbUnsafe, 40),
		write("specific-unsafe-40", false, sbUnsafe, 40),
		write("specific-naive-40", false, sbNaive, 40),
		write("specific-unsafe-4096", false, sbUnsafe, 4096),
		write("specific-naive-4096", false, sbNaive, 4096),
		write("generic-naive-40", true, sbNaive, 40),
		write("generic-opt-40", true, sbOptimized, 40),
		write("specific-opt-40", false, sbOptimized, 40),
		record("record-unsafe", sbUnsafe),
		record("record-naive", sbNaive),
		record("record-opt", sbOptimized),
	}
}

func mergeSandbox(vs []any) SandboxResult {
	run := func(i int) handlerRun { return vs[i].(handlerRun) }
	var r SandboxResult
	r.GenericInsns = run(0).insns
	spec40u, spec40s := run(1), run(2)
	r.SpecificInsns = spec40u.insns
	r.SpecificSandboxInsns = spec40s.insns
	r.AddedBySandbox = spec40s.insns - spec40u.insns
	r.Ratio40 = float64(spec40s.cycles) / float64(spec40u.cycles)
	r.Ratio4096 = float64(run(4).cycles) / float64(run(3).cycles)
	r.GenericSandboxInsns = run(5).insns
	r.GenericOptInsns = run(6).insns
	r.SpecificOptInsns = run(7).insns
	r.RecordInsns = run(8).insns
	r.RecordSandboxInsns = run(9).insns
	r.RecordOptInsns = run(10).insns
	return r
}

// RunSandbox regenerates the Section V-D measurements, plus the
// naive-vs-optimized sandbox ablation this reproduction adds.
func RunSandbox(cfg *Config) SandboxResult {
	return mergeSandbox(runCells(cfg, sandboxCells()))
}

type handlerRun struct {
	insns  int64
	cycles sim.Time
}

// sboxMode selects how a measured handler is downloaded.
type sboxMode int

const (
	sbUnsafe    sboxMode = iota // verified only, no instrumentation
	sbNaive                     // per-access SFI checks
	sbOptimized                 // SFI with the static-analysis optimizer
)

func (m sboxMode) options() core.Options {
	return core.Options{Unsafe: m == sbUnsafe, OptimizeSFI: m == sbOptimized}
}

// runWriteHandler executes a remote-write handler on a synthetic message
// in isolation (Section V-D's methodology) and reports its dynamic
// instruction count (excluding data copying, which runs through the
// trusted engine) and total cycles.
func runWriteHandler(cfg *Config, generic bool, mode sboxMode, nbytes int) handlerRun {
	tb := NewAN2Testbed(cfg)
	owner := tb.K2.Spawn("dsm-app", func(p *aegis.Process) {})
	node := crl.NewNode(tb.Sys2, owner)
	segID, seg, err := node.AddSegment(8192, "shared")
	if err != nil {
		panic(err)
	}

	var prog = crl.TrustedWriteHandler()
	if generic {
		prog = crl.GenericWriteHandler(node.TableAddr(), crl.MaxSegments, 0, 1)
	}
	ash := tb.Sys2.MustDownload(owner, prog, mode.options())

	// Build the message in a buffer in the owner's space.
	msgSeg := owner.AS.MustAlloc(8192, "synthetic-msg")
	msg := tb.K2.Bytes(msgSeg.Base, 8192)
	var msgLen int
	if generic {
		be := func(off int, v uint32) {
			msg[off] = byte(v >> 24)
			msg[off+1] = byte(v >> 16)
			msg[off+2] = byte(v >> 8)
			msg[off+3] = byte(v)
		}
		be(0, 0x44534d21)
		be(4, 1<<16)
		be(8, 42)
		be(12, uint32(segID))
		be(16, 64)
		be(20, uint32(nbytes))
		msgLen = 24 + nbytes
	} else {
		be := func(off int, v uint32) {
			msg[off] = byte(v >> 24)
			msg[off+1] = byte(v >> 16)
			msg[off+2] = byte(v >> 8)
			msg[off+3] = byte(v)
		}
		be(0, seg.Base+64)
		be(4, uint32(nbytes))
		msgLen = 8 + nbytes
	}

	var run handlerRun
	tb.Eng.Schedule(0, func() {
		mc := aegis.SyntheticMsg(tb.K2, owner, aegis.RingEntry{Addr: msgSeg.Base, Len: msgLen})
		d := ash.HandleMsg(mc)
		if d != aegis.DispConsumed || ash.InvoluntaryFault != nil {
			panic(ash.InvoluntaryFault)
		}
		run.insns = ash.LastInsns()
		run.cycles = mc.Cost()
	})
	tb.Run()
	return run
}

// runRecordHandler executes the fixed-record copy loop (the loop-shaped
// variant of the Section V-D write) on a synthetic message and reports
// its dynamic instruction count.
func runRecordHandler(cfg *Config, mode sboxMode) handlerRun {
	tb := NewAN2Testbed(cfg)
	owner := tb.K2.Spawn("dsm-app", func(p *aegis.Process) {})
	node := crl.NewNode(tb.Sys2, owner)
	_, seg, err := node.AddSegment(8192, "shared")
	if err != nil {
		panic(err)
	}
	prog := crl.FixedRecordWriteHandler(seg.Base+64, seg.Base)
	ash := tb.Sys2.MustDownload(owner, prog, mode.options())

	msgSeg := owner.AS.MustAlloc(4096, "synthetic-msg")
	msg := tb.K2.Bytes(msgSeg.Base, 4096)
	for i := 0; i < crl.RecordBytes; i++ {
		msg[i] = byte(i)
	}

	var run handlerRun
	tb.Eng.Schedule(0, func() {
		mc := aegis.SyntheticMsg(tb.K2, owner, aegis.RingEntry{Addr: msgSeg.Base, Len: crl.RecordBytes})
		d := ash.HandleMsg(mc)
		if d != aegis.DispConsumed || ash.InvoluntaryFault != nil {
			panic(ash.InvoluntaryFault)
		}
		run.insns = ash.LastInsns()
		run.cycles = mc.Cost()
	})
	tb.Run()
	return run
}

// Table renders the Section V-D results.
func (r SandboxResult) Table() *Table {
	return &Table{
		Title:   "Section V-D: sandboxing overhead (remote write)",
		Note:    "instruction counts exclude data copying; ratios are sandboxed/unsafe execution time",
		Columns: []string{"value"},
		Format:  "%.2f",
		Rows: []Row{
			{"generic hand-crafted (insns)", []float64{float64(r.GenericInsns)}, []float64{float64(PaperSandbox.GenericInsns)}},
			{"app-specific hand-crafted (insns)", []float64{float64(r.SpecificInsns)}, []float64{float64(PaperSandbox.SpecificInsns)}},
			{"app-specific sandboxed (insns)", []float64{float64(r.SpecificSandboxInsns)}, []float64{float64(PaperSandbox.SpecificSandboxInsns)}},
			{"added by sandboxing (insns)", []float64{float64(r.AddedBySandbox)}, []float64{float64(PaperSandbox.AddedBySandbox)}},
			{"time ratio, 40-byte write", []float64{r.Ratio40}, []float64{PaperSandbox.Ratio40}},
			{"time ratio, 4096-byte write", []float64{r.Ratio4096}, []float64{PaperSandbox.Ratio4096}},
			{"app-specific optimized sandbox (insns)", []float64{float64(r.SpecificOptInsns)}, nil},
			{"generic sandboxed naive (insns)", []float64{float64(r.GenericSandboxInsns)}, nil},
			{"generic sandboxed optimized (insns)", []float64{float64(r.GenericOptInsns)}, nil},
			{"record loop hand-crafted (insns)", []float64{float64(r.RecordInsns)}, nil},
			{"record loop sandboxed naive (insns)", []float64{float64(r.RecordSandboxInsns)}, nil},
			{"record loop sandboxed optimized (insns)", []float64{float64(r.RecordOptInsns)}, nil},
		},
	}
}

// DPFResult compares the DPF discrimination trie against an MPF-class
// interpreted engine as installed filters accumulate (Section IV-A's
// order-of-magnitude claim).
type DPFResult struct {
	Filters []int
	Trie    []float64 // us per demux decision
	Linear  []float64
}

// RunDPF regenerates the comparison.
func RunDPF(cfg *Config) DPFResult {
	return runCells(cfg, dpfCells())[0].(DPFResult)
}

// dpfCells wraps the demux comparison as one cell: the engine runs are
// microseconds of pure table walking, not worth sharding.
func dpfCells() []Cell {
	return []Cell{{"dpf", func(cfg *Config) any { return runDPF(cfg) }}}
}

func runDPF(cfg *Config) DPFResult {
	prof := NewAN2Testbed(cfg).Prof
	var r DPFResult
	for _, n := range []int{1, 4, 16, 64} {
		e := dpf.NewEngine()
		for i := 0; i < n; i++ {
			f := dpf.NewFilter().Eq16(12, 0x0800).Eq8(23, 17).Eq16(36, uint16(1000+i))
			if _, err := e.Insert(f); err != nil {
				panic(err)
			}
		}
		pkt := make([]byte, 64)
		pkt[12], pkt[13] = 0x08, 0x00
		pkt[23] = 17
		pkt[36] = byte((1000 + n - 1) >> 8)
		pkt[37] = byte(1000 + n - 1)
		_, tc, ok := e.Demux(pkt)
		if !ok {
			panic("dpf: trie miss")
		}
		_, lc, ok := e.DemuxLinear(pkt)
		if !ok {
			panic("dpf: linear miss")
		}
		r.Filters = append(r.Filters, n)
		r.Trie = append(r.Trie, prof.Us(tc))
		r.Linear = append(r.Linear, prof.Us(lc))
	}
	return r
}

// Table renders the DPF comparison.
func (r DPFResult) Table() *Table {
	tab := &Table{
		Title:   "DPF vs interpreted demultiplexing (us per decision, worst-case filter)",
		Columns: []string{"DPF trie", "interpreted"},
		Format:  "%.2f",
	}
	for i, n := range r.Filters {
		tab.Rows = append(tab.Rows, Row{
			Label:    "filters=" + itoa(n),
			Measured: []float64{r.Trie[i], r.Linear[i]},
		})
	}
	return tab
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
