package fault

import (
	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/netdev"
	"ashs/internal/obs"
	"ashs/internal/sim"
)

// Counters aggregates every fault the plane injected. The struct is
// comparable: the chaos soak reruns a seed and asserts the two counter
// sets are identical, which is the determinism contract in one `==`.
type Counters struct {
	WireDrops, WireCorruptions, WireSneaks uint64
	WireDups, WireReorders, WireDelays     uint64
	DeviceRingDrops, DevicePoolDrops       uint64
	DeviceTruncations                      uint64
	AbortBudget, AbortTimer                uint64
}

// Plane drives one schedule from one seed. All injection decisions come
// from a single splitmix64 stream, and the simulation itself is a
// deterministic discrete-event engine, so identical (seed, schedule,
// workload) triples replay identically — the same frames are dropped,
// the same bits flip, the same handler invocations abort.
type Plane struct {
	Seed  int64
	Sched Schedule
	C     Counters

	rng *sim.Rand
	sw  *netdev.Switch

	// Obs optionally mirrors every injected-fault count into an
	// observability plane's metrics registry (nil disables). The Counters
	// struct stays the source of truth — the chaos soak's determinism
	// check compares it with one `==`.
	Obs *obs.Plane
}

// Observe mirrors the plane's fault counts into o's metrics registry.
func (p *Plane) Observe(o *obs.Plane) { p.Obs = o }

// New builds a plane for one run.
func New(seed int64, sched Schedule) *Plane {
	return &Plane{Seed: seed, Sched: sched, rng: sim.NewRand(seed)}
}

// AttachWire installs the wire-layer faults on the switch's injector
// hook. Held-back frames (duplicates, reorders, delays) re-enter through
// Redeliver, which bypasses the injector so the plane never perturbs its
// own output.
func (p *Plane) AttachWire(sw *netdev.Switch) {
	p.sw = sw
	sw.Inject = p.injectWire
}

// AttachAN2 installs the device-layer faults on an AN2 interface.
func (p *Plane) AttachAN2(a *aegis.AN2If) { a.InjectFault = p.deviceFault }

// AttachEthernet installs the device-layer faults on an Ethernet
// interface.
func (p *Plane) AttachEthernet(e *aegis.EthernetIf) { e.InjectFault = p.deviceFault }

// AttachSystem installs the kernel-layer faults: forced involuntary
// aborts of downloaded handlers, delivered as budget exhaustion or the
// two-tick watchdog firing mid-handler.
func (p *Plane) AttachSystem(sys *core.System) {
	sys.InjectAbort = func(string) (core.AbortMode, int64) {
		a := p.Sched.Abort
		switch {
		case p.rng.Prob(a.BudgetProb):
			p.C.AbortBudget++
			p.Obs.Inc("fault/abort_budget")
			return core.AbortBudget, int64(4 + p.rng.Intn(24))
		case p.rng.Prob(a.TimerProb):
			p.C.AbortTimer++
			p.Obs.Inc("fault/abort_timer")
			return core.AbortTimer, int64(100 + p.rng.Intn(900))
		}
		return core.AbortNone, 0
	}
}

// injectWire applies at most one wire fault per frame, evaluated in
// declaration order.
func (p *Plane) injectWire(pkt *netdev.PacketBuf) bool {
	w := p.Sched.Wire
	switch {
	case p.rng.Prob(w.DropProb):
		p.C.WireDrops++
		p.Obs.Inc("fault/wire_drops")
		return false
	case p.rng.Prob(w.CorruptProb):
		p.C.WireCorruptions++
		p.Obs.Inc("fault/wire_corruptions")
		p.flipBit(pkt, false)
	case p.rng.Prob(w.SneakProb):
		p.C.WireSneaks++
		p.Obs.Inc("fault/wire_sneaks")
		p.flipBit(pkt, true)
	case p.rng.Prob(w.DupProb):
		// Deliver now and again after the hold interval.
		p.C.WireDups++
		p.Obs.Inc("fault/wire_dups")
		p.holdThenRedeliver(p.clone(pkt), 1)
	case p.rng.Prob(w.ReorderProb):
		// Hold this frame back; frames behind it overtake.
		p.C.WireReorders++
		p.Obs.Inc("fault/wire_reorders")
		p.holdThenRedeliver(p.clone(pkt), 1)
		return false
	case p.rng.Prob(w.DelayProb):
		p.C.WireDelays++
		p.Obs.Inc("fault/wire_delays")
		p.holdThenRedeliver(p.clone(pkt), p.rng.Float64())
		return false
	}
	return true
}

// flipBit corrupts one random bit of the payload. With refresh the FCS is
// recomputed so the corruption survives the board CRC and only an
// end-to-end checksum can catch it; without, the board rejects the frame.
// The leased wire buffer is already private to this flight (senders hand
// the switch a copy at Lease time), so the corruption lands in place.
func (p *Plane) flipBit(pkt *netdev.PacketBuf, refresh bool) {
	data := pkt.Bytes()
	if len(data) == 0 {
		return
	}
	i := p.rng.Intn(len(data) * 8)
	data[i/8] ^= 1 << (i % 8)
	if refresh {
		pkt.FCS = netdev.FrameCheck(data)
	}
}

// holdThenRedeliver re-introduces pkt after frac of the schedule's hold
// interval; the held lease is consumed by Redeliver.
func (p *Plane) holdThenRedeliver(pkt *netdev.PacketBuf, frac float64) {
	us := p.Sched.Wire.HoldUs
	if us <= 0 {
		us = 50
	}
	d := p.sw.Prof.Cycles(us * frac)
	if d < 1 {
		d = 1
	}
	p.sw.Eng.Schedule(d, func() { p.sw.Redeliver(pkt) })
}

// deviceFault rolls the device-layer faults for one delivered frame.
func (p *Plane) deviceFault(pkt *netdev.PacketBuf) aegis.DeviceFault {
	d := p.Sched.Device
	var df aegis.DeviceFault
	switch {
	case p.rng.Prob(d.RingOverflowProb):
		p.C.DeviceRingDrops++
		p.Obs.Inc("fault/device_ring_drops")
		df.DropRing = true
	case p.rng.Prob(d.PoolExhaustProb):
		p.C.DevicePoolDrops++
		p.Obs.Inc("fault/device_pool_drops")
		df.DropPool = true
	case p.rng.Prob(d.TruncateProb):
		if n := pkt.Len(); n > 1 {
			p.C.DeviceTruncations++
			p.Obs.Inc("fault/device_truncations")
			df.TruncateTo = 1 + p.rng.Intn(n-1)
		}
	}
	return df
}

// clone leases an independent copy of a frame so a held duplicate or
// reordered original survives past the delivered one, carrying the same
// addressing and frame check.
func (p *Plane) clone(pkt *netdev.PacketBuf) *netdev.PacketBuf {
	cp := p.sw.LeaseData(pkt.Bytes())
	cp.Src, cp.Dst, cp.VC, cp.FCS = pkt.Src, pkt.Dst, pkt.VC, pkt.FCS
	return cp
}
