// Package fault is the deterministic fault-injection plane. A Plane
// composes fault schedules at every layer the messaging path crosses —
// the wire (drop, corruption, duplication, reordering, delay jitter),
// the device (notification-ring overflow, buffer-pool exhaustion, DMA
// truncation), and the kernel (forced involuntary handler aborts) — all
// driven off one seeded PRNG, so a run replays byte-for-byte from its
// seed. The protocols above are expected to deliver every payload intact
// anyway; the chaos soak (soak_test.go, `ashbench -experiment chaos`)
// enforces exactly that.
package fault

// WireFaults perturbs frames in flight on the switch. Probabilities are
// per frame and evaluated in the order the fields are declared; at most
// one wire fault applies to a given frame.
type WireFaults struct {
	// DropProb silently discards the frame.
	DropProb float64
	// CorruptProb flips one random payload bit without refreshing the
	// frame check sequence — the receiving board's CRC must reject it.
	CorruptProb float64
	// SneakProb flips one random payload bit and refreshes the FCS, so
	// the corruption slips past the board and only an end-to-end
	// checksum can catch it.
	SneakProb float64
	// DupProb delivers the frame and re-delivers a copy HoldUs later.
	DupProb float64
	// ReorderProb holds the frame back HoldUs and re-introduces it,
	// letting frames behind it pass — an out-of-order arrival.
	ReorderProb float64
	// DelayProb holds the frame for a random jitter in (0, HoldUs].
	DelayProb float64
	// HoldUs is the hold interval used by duplication, reordering, and
	// (as an upper bound) delay jitter. Zero means 50us.
	HoldUs float64
}

// DeviceFaults perturbs the receiving network interface. Probabilities
// are per delivered frame.
type DeviceFaults struct {
	// RingOverflowProb models AN2 notification-ring overflow: the frame
	// is dropped before demultiplexing.
	RingOverflowProb float64
	// PoolExhaustProb models receive-buffer-pool exhaustion: nowhere to
	// DMA, frame lost after demultiplexing.
	PoolExhaustProb float64
	// TruncateProb cuts the DMA short, leaving a partial frame whose
	// inconsistency the protocol layers must detect.
	TruncateProb float64
}

// AbortFaults forces involuntary aborts on downloaded handlers.
// Probabilities are per handler invocation.
type AbortFaults struct {
	// BudgetProb exhausts the instruction budget a few instructions in.
	BudgetProb float64
	// TimerProb fires the two-tick watchdog mid-handler.
	TimerProb float64
}

// Schedule is one named composition of faults across the layers.
type Schedule struct {
	Name   string
	Wire   WireFaults
	Device DeviceFaults
	Abort  AbortFaults
}

// Canned returns the canonical fault schedules the chaos soak runs. The
// set walks the layers one at a time and then combines them; "baseline"
// is fault-free so the soak's integrity checking is itself validated.
func Canned() []Schedule {
	return []Schedule{
		{Name: "baseline"},
		{Name: "loss", Wire: WireFaults{DropProb: 0.02}},
		{Name: "corruption", Wire: WireFaults{CorruptProb: 0.01, SneakProb: 0.01}},
		{Name: "duplication", Wire: WireFaults{DupProb: 0.02, HoldUs: 40}},
		{Name: "reorder", Wire: WireFaults{ReorderProb: 0.02, HoldUs: 60}},
		{Name: "delay", Wire: WireFaults{DelayProb: 0.05, HoldUs: 120}},
		{Name: "device", Device: DeviceFaults{
			RingOverflowProb: 0.01, PoolExhaustProb: 0.01, TruncateProb: 0.01}},
		{Name: "abort-storm", Abort: AbortFaults{BudgetProb: 0.10, TimerProb: 0.05}},
		{Name: "everything",
			Wire: WireFaults{DropProb: 0.005, CorruptProb: 0.003, SneakProb: 0.003,
				DupProb: 0.005, ReorderProb: 0.005, DelayProb: 0.01, HoldUs: 80},
			Device: DeviceFaults{
				RingOverflowProb: 0.003, PoolExhaustProb: 0.003, TruncateProb: 0.003},
			Abort: AbortFaults{BudgetProb: 0.02, TimerProb: 0.01}},
	}
}

// Named returns the canned schedule with the given name.
func Named(name string) (Schedule, bool) {
	for _, s := range Canned() {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}
