package fault_test

import (
	"testing"

	"ashs/internal/bench"
	"ashs/internal/fault"
)

// soakParams is a matrix small enough for CI but still crossing every
// canned schedule: each cell runs a TCP bulk transfer and an NFS
// create/write/read-back session concurrently on a faulted testbed, with
// both payloads byte-verified at the far end.
func soakParams() bench.ChaosParams {
	return bench.ChaosParams{
		Seeds:     []int64{1},
		TCPBytes:  256 << 10,
		NFSBytes:  8 << 10,
		Schedules: fault.Canned(),
	}
}

// TestChaosSoak is the chaos soak: under every canned fault schedule both
// workloads must complete intact, and the recovery counters must line up
// with what the schedule injects (faults injected => faults absorbed).
func TestChaosSoak(t *testing.T) {
	for _, r := range bench.RunChaos(nil, soakParams()) {
		if !r.TCPOk {
			t.Errorf("%s/seed %d: TCP transfer failed integrity", r.Schedule, r.Seed)
		}
		if !r.NFSOk {
			t.Errorf("%s/seed %d: NFS session failed integrity", r.Schedule, r.Seed)
		}
		// The injected-vs-load split must reconcile exactly: every device
		// ring/pool fault the plane scheduled shows up on the Injected*
		// counters, and never leaks into the load-induced ones. The soak's
		// testbed is provisioned for its offered load, so any LoadDevDrops
		// here would mean injected losses were misattributed to load.
		if want := r.Faults.DeviceRingDrops + r.Faults.DevicePoolDrops; r.InjectedDevDrops != want {
			t.Errorf("%s/seed %d: injected device drops = %d, plane scheduled %d",
				r.Schedule, r.Seed, r.InjectedDevDrops, want)
		}
		if r.LoadDevDrops != 0 {
			t.Errorf("%s/seed %d: %d device drops misattributed to load",
				r.Schedule, r.Seed, r.LoadDevDrops)
		}
		switch r.Schedule {
		case "loss":
			if r.Faults.WireDrops == 0 {
				t.Errorf("loss schedule injected no drops")
			}
			if r.Retransmits == 0 {
				t.Errorf("loss schedule provoked no TCP retransmissions")
			}
		case "corruption":
			if r.Faults.WireCorruptions == 0 || r.Faults.WireSneaks == 0 {
				t.Errorf("corruption schedule injected nothing (%+v)", r.Faults)
			}
			if r.CRCDrops == 0 {
				t.Errorf("board CRC caught no corrupted frames")
			}
		case "duplication":
			if r.Faults.WireDups == 0 {
				t.Errorf("duplication schedule injected no duplicates")
			}
		case "device":
			if r.Faults.DeviceRingDrops == 0 || r.Faults.DevicePoolDrops == 0 {
				t.Errorf("device schedule injected no ring/pool drops (%+v)", r.Faults)
			}
		case "abort-storm":
			if r.Faults.AbortBudget == 0 || r.Faults.AbortTimer == 0 {
				t.Errorf("abort storm forced no aborts (%+v)", r.Faults)
			}
			if r.InvoluntaryAborts == 0 || r.AbortFallbacks == 0 {
				t.Errorf("aborts injected but none absorbed (aborts=%d fallbacks=%d)",
					r.InvoluntaryAborts, r.AbortFallbacks)
			}
		}
	}
}

// TestChaosSeedDeterminism reruns one faulted cell and requires the two
// results to be identical field-for-field — same payload outcome, same
// throughput, same injected-fault counters, same recovery counters. This
// is the replay contract: a chaos failure is always reproducible from its
// seed.
func TestChaosSeedDeterminism(t *testing.T) {
	p := soakParams()
	p.TCPBytes = 128 << 10
	sched, _ := fault.Named("everything")
	p.Schedules = []fault.Schedule{sched}
	a := bench.RunChaos(nil, p)
	b := bench.RunChaos(nil, p)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("expected one cell per run, got %d/%d", len(a), len(b))
	}
	if a[0] != b[0] {
		t.Fatalf("seed replay diverged:\n run1: %+v\n run2: %+v", a[0], b[0])
	}
}

// TestCannedSchedulesNamed pins the schedule registry: every canned
// schedule is reachable by name and names are unique.
func TestCannedSchedulesNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range fault.Canned() {
		if seen[s.Name] {
			t.Errorf("duplicate schedule name %q", s.Name)
		}
		seen[s.Name] = true
		if got, ok := fault.Named(s.Name); !ok || got.Name != s.Name {
			t.Errorf("Named(%q) = %v, %v", s.Name, got, ok)
		}
	}
	if _, ok := fault.Named("no-such-schedule"); ok {
		t.Error("Named returned a schedule for an unknown name")
	}
}
