// Package crl is a miniature software distributed shared memory library
// in the style of CRL [Johnson, Kaashoek & Wallach, SOSP'95], which the
// paper cites as another consumer of ASHs ("executing the software
// distributed shared memory actions of CRL"). It supplies the handlers the
// evaluation needs:
//
//   - the remote-increment active message of Table V and Fig. 4;
//   - the two remote-write handlers of Section V-D: a *generic* one in the
//     style of Thekkath et al. [48] (segment number + offset, full
//     validation, acknowledgment reply) and an *application-specific* one
//     for trusted peers (raw pointer, no ack) that exploits application
//     semantics to use far fewer instructions;
//   - a remote lock handler (control initiation: "remote lock acquisition
//     in a distributed shared memory system").
//
// All handlers are real vcode programs that go through the verifier and
// (optionally) the sandboxer, so their dynamic instruction counts — the
// quantity Section V-D reports — are measured, not asserted.
package crl

import (
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/vcode"
)

// Node is one host's DSM state: a segment table in application memory
// (for the generic protocol) plus the shared regions themselves.
type Node struct {
	Owner *aegis.Process
	Sys   *core.System

	// TableSeg holds {base, limit} pairs; TableAddr is its address.
	tableSeg aegis.Segment
	nsegs    int
	segs     []aegis.Segment

	// CounterSeg backs remote increments.
	CounterSeg aegis.Segment
	// LockSeg holds lock words (0 = free, else owner id).
	LockSeg aegis.Segment
}

// MaxSegments bounds the generic protocol's segment table.
const MaxSegments = 16

// NewNode initializes DSM state for owner.
func NewNode(sys *core.System, owner *aegis.Process) *Node {
	n := &Node{Owner: owner, Sys: sys}
	n.tableSeg = owner.AS.MustAlloc(MaxSegments*8, "crl-segtable")
	n.CounterSeg = owner.AS.MustAlloc(4096, "crl-counters")
	n.LockSeg = owner.AS.MustAlloc(4096, "crl-locks")
	return n
}

// AddSegment registers a shared region in the generic protocol's table and
// returns its segment number.
func (n *Node) AddSegment(size int, name string) (int, aegis.Segment, error) {
	if n.nsegs >= MaxSegments {
		return 0, aegis.Segment{}, fmt.Errorf("crl: segment table full")
	}
	seg, err := n.Owner.AS.Alloc(size, "crl-"+name)
	if err != nil {
		return 0, aegis.Segment{}, err
	}
	id := n.nsegs
	n.nsegs++
	n.segs = append(n.segs, seg)
	k := n.Sys.K
	entry := n.tableSeg.Base + uint32(id*8)
	_ = k.Mem.Store32(entry, seg.Base)
	_ = k.Mem.Store32(entry+4, uint32(size))
	return id, seg, nil
}

// Segment returns a registered region.
func (n *Node) Segment(id int) aegis.Segment { return n.segs[id] }

// TableAddr is the segment table's address (baked into the generic
// handler's code at download time — dynamic code generation's constant
// folding).
func (n *Node) TableAddr() uint32 { return n.tableSeg.Base }

// --------------------------------------------------------------------
// Handler object code
// --------------------------------------------------------------------

// IncrementHandler builds the Table V remote-increment active message:
// read the increment from the message, bump the counter word, and reply
// with the new value from inside the kernel.
//
// Message layout: [4: increment]. Reply: [4: new value].
func IncrementHandler(counterAddr uint32, replyDst, replyVC int) *vcode.Program {
	b := vcode.NewBuilder("crl-increment")
	msg, cnt, val, inc := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Mov(msg, vcode.RArg0)
	b.MovI(cnt, int32(counterAddr))
	b.Ld32(inc, msg, 0)
	b.Ld32(val, cnt, 0)
	b.AddU(val, val, inc)
	b.St32(cnt, 0, val)
	b.St32(msg, 0, val) // build the reply in place (message vectoring)
	b.MovI(vcode.RArg0, int32(replyDst))
	b.MovI(vcode.RArg1, int32(replyVC))
	b.Mov(vcode.RArg2, msg)
	b.MovI(vcode.RArg3, 4)
	b.Call("ash_send")
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// TrustedWriteHandler builds the application-specific remote write of
// Section V-D: "the handler assumes it is given a pointer to memory,
// instead of a segment descriptor and offset" and that the sender is a
// trusted peer, so there is no validation and no acknowledgment.
//
// Message layout: [4: destination pointer][4: length][data...].
func TrustedWriteHandler() *vcode.Program {
	b := vcode.NewBuilder("crl-write-trusted")
	ptr, n := b.Temp(), b.Temp()
	b.Ld32(ptr, vcode.RArg0, 0)
	b.Ld32(n, vcode.RArg0, 4)
	b.AddIU(vcode.RArg0, vcode.RArg0, 8) // src = message payload
	b.Mov(vcode.RArg1, ptr)
	b.Mov(vcode.RArg2, n)
	b.Call("ash_copy")
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// RecordBytes is the fixed record size moved by FixedRecordWriteHandler.
const RecordBytes = 40

// FixedRecordWriteHandler builds the loop variant of the Section V-D
// remote write: a trusted peer sends a fixed-size 40-byte record which
// the handler copies word by word to a fixed destination, publishing the
// last offset written to a progress word each iteration (so a reader can
// observe partial records) and the full length once the copy completes.
// The per-word copy loop is the shape the check optimizer targets: the
// progress-word store runs through a loop-invariant base (its SFI check
// hoists to the preheader) and the trip count is a download-time
// constant (the per-iteration budget checks coarsen to one drain).
//
// Message layout: [40: record data].
func FixedRecordWriteHandler(dstAddr, progressAddr uint32) *vcode.Program {
	b := vcode.NewBuilder("crl-write-record")
	dst, prog, i, n, v := b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(dst, int32(dstAddr))
	b.MovI(prog, int32(progressAddr))
	b.MovI(i, 0)
	b.MovI(n, RecordBytes)
	top := b.NewLabel()
	b.Bind(top)
	b.Ld32X(v, vcode.RArg0, i)
	b.St32X(dst, i, v)
	b.St32(prog, 0, i)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.St32(prog, 0, n) // record complete
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// GenericWriteHandler builds the generic remote write modeled after
// Thekkath et al.: the message carries a segment number, offset and
// length; the handler validates the request against the segment table
// (magic, version, bounds, permissions, alignment), performs the copy,
// and acknowledges the sender — the bookkeeping a protocol for untrusted
// peers cannot skip.
//
// Message layout:
//
//	[4: magic][4: version|flags][4: request id]
//	[4: segment#][4: offset][4: length][data...]
//
// Reply: [4: magic][4: request id][4: status].
func GenericWriteHandler(tableAddr uint32, nsegs int, replyDst, replyVC int) *vcode.Program {
	const magic = 0x44534d21 // "DSM!"
	b := vcode.NewBuilder("crl-write-generic")
	msg := b.Temp()
	t1, t2 := b.Temp(), b.Temp()
	segno, off, length := b.Temp(), b.Temp(), b.Temp()
	base, limit, dst, end := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	reqid := b.Temp()
	fail := b.NewLabel()
	reply := b.NewLabel()
	status := b.Temp()

	b.Mov(msg, vcode.RArg0)
	// Magic and version checks.
	b.Ld32(t1, msg, 0)
	b.MovI(t2, magic)
	b.Bne(t1, t2, fail)
	b.Ld32(t1, msg, 4)
	b.SrlI(t1, t1, 16) // version in the high half
	b.MovI(t2, 1)
	b.Bne(t1, t2, fail)
	b.Ld32(reqid, msg, 8)
	// Request fields.
	b.Ld32(segno, msg, 12)
	b.Ld32(off, msg, 16)
	b.Ld32(length, msg, 20)
	// Segment table bounds.
	b.MovI(t1, int32(nsegs))
	b.BgeU(segno, t1, fail)
	// Table lookup: {base, limit} pairs.
	b.SllI(t1, segno, 3)
	b.MovI(t2, int32(tableAddr))
	b.AddU(t2, t2, t1)
	b.Ld32(base, t2, 0)
	b.Ld32(limit, t2, 4)
	// Permission: write access requires a nonzero base (simplified rights
	// word folded into the table entry being valid).
	b.Beq(base, vcode.RZero, fail)
	// Alignment: offset and length must be word multiples.
	b.AndI(t1, off, 3)
	b.Bne(t1, vcode.RZero, fail)
	b.AndI(t1, length, 3)
	b.Bne(t1, vcode.RZero, fail)
	// Bounds: off + len <= limit, with overflow check.
	b.AddU(end, off, length)
	b.BltU(end, off, fail) // wrapped
	b.BltU(limit, end, fail)
	// Destination and copy.
	b.AddU(dst, base, off)
	b.AddIU(vcode.RArg0, msg, 24)
	b.Mov(vcode.RArg1, dst)
	b.Mov(vcode.RArg2, length)
	b.Call("ash_copy")
	b.MovI(status, 0)
	b.Jmp(reply)

	b.Bind(fail)
	b.MovI(status, 1)

	b.Bind(reply)
	// Acknowledge: rebuild a 12-byte reply in the message buffer.
	b.MovI(t1, magic)
	b.St32(msg, 0, t1)
	b.St32(msg, 4, reqid)
	b.St32(msg, 8, status)
	b.MovI(vcode.RArg0, int32(replyDst))
	b.MovI(vcode.RArg1, int32(replyVC))
	b.Mov(vcode.RArg2, msg)
	b.MovI(vcode.RArg3, 12)
	b.Call("ash_send")
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// LockHandler builds the remote lock-acquisition handler (control
// initiation). Message: [4: lock index][4: op (1=acquire, 2=release)]
// [4: requester id]. Reply: [4: status (0=granted/released, 1=denied)].
// A malformed request is voluntarily aborted to the user-level library.
func LockHandler(lockBase uint32, nlocks int, replyDst, replyVC int) *vcode.Program {
	b := vcode.NewBuilder("crl-lock")
	msg, idx, op, who := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	addr, cur, status, t := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	deny := b.NewLabel()
	reply := b.NewLabel()
	release := b.NewLabel()
	toUser := b.NewLabel()

	grantStore := b.NewLabel()
	grantOnly := b.NewLabel()

	b.Mov(msg, vcode.RArg0)
	b.Ld32(idx, msg, 0)
	b.Ld32(op, msg, 4)
	b.Ld32(who, msg, 8)
	b.MovI(t, int32(nlocks))
	b.BgeU(idx, t, toUser) // malformed: let the library sort it out
	b.SllI(t, idx, 2)
	b.MovI(addr, int32(lockBase))
	b.AddU(addr, addr, t)
	b.Ld32(cur, addr, 0)
	b.MovI(t, 2)
	b.Beq(op, t, release)
	// Acquire: grant iff free or already ours (reentrant).
	b.Beq(cur, vcode.RZero, grantStore)
	b.Beq(cur, who, grantOnly)
	b.Jmp(deny)

	b.Bind(grantStore)
	b.St32(addr, 0, who)
	b.Bind(grantOnly)
	b.MovI(status, 0)
	b.Jmp(reply)

	b.Bind(release)
	// Release: only the holder may release.
	b.Bne(cur, who, deny)
	b.St32(addr, 0, vcode.RZero)
	b.MovI(status, 0)
	b.Jmp(reply)

	b.Bind(deny)
	b.MovI(status, 1)

	b.Bind(reply)
	b.St32(msg, 0, status)
	b.MovI(vcode.RArg0, int32(replyDst))
	b.MovI(vcode.RArg1, int32(replyVC))
	b.Mov(vcode.RArg2, msg)
	b.MovI(vcode.RArg3, 4)
	b.Call("ash_send")
	b.MovI(vcode.RRet, 0)
	b.Ret()

	b.Bind(toUser)
	b.MovI(vcode.RRet, 1) // voluntary abort
	b.Ret()
	return b.MustAssemble()
}
