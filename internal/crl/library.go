package crl

import (
	"encoding/binary"

	"ashs/internal/vcode"
	"ashs/internal/vcode/reopt"
)

// This file adds the handlers the profile-guided re-optimization loop is
// evaluated on — each one shaped so a transform the static optimizer
// cannot prove profitable (or legal) becomes available once a profile
// nominates it — plus a registry (Library) enumerating every handler the
// package builds, so the three-way differential harness can sweep them
// all without maintaining its own list.

// NumShardValues is how many words ShardedCounterHandler hashes per
// message.
const NumShardValues = 12

// ShardedCounterHandler builds a per-message histogram update: hash each
// of NumShardValues message words into a bucket (modulo a shard count
// carried in the message) and bump that bucket's counter. Because the
// modulus arrives in the message, the static optimizer can never prove
// it nonzero — the divide check stays in the loop, once per word. The
// divisor is loop-invariant, though, so a profile marking the loop hot
// lets the re-optimizer hoist the check into the preheader: one check
// per message instead of one per word.
//
// Message layout: [4: modulus][4*NumShardValues: values].
func ShardedCounterHandler(bucketBase uint32) *vcode.Program {
	b := vcode.NewBuilder("crl-shard-counter")
	msg, mod, bkt := b.Temp(), b.Temp(), b.Temp()
	i, n, v, t := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Mov(msg, vcode.RArg0)
	b.Ld32(mod, msg, 0)
	b.AddIU(msg, msg, 4)
	b.MovI(bkt, int32(bucketBase))
	b.MovI(i, 0)
	b.MovI(n, NumShardValues*4)
	top := b.NewLabel()
	b.Bind(top)
	b.Ld32X(v, msg, i)
	b.RemU(v, v, mod)
	b.SllI(t, v, 2)
	b.Ld32X(v, bkt, t)
	b.AddIU(v, v, 1)
	b.St32X(bkt, t, v)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// SparseRecordWriteHandler builds the sparse variant of the Section V-D
// record write: zero words in the record are skipped instead of stored
// (the reader treats the destination as zero-initialized). The skip makes
// the copy loop multi-block, which defeats the static optimizer's
// single-block trip-count analysis — its per-iteration budget checks
// survive. The trip count is still exact (the skip rejoins before the
// latch), so a profile marking the loop hot lets the re-optimizer prove
// the bound with the multi-block analysis and coarsen the budget checks
// into one up-front drain.
//
// Message layout: [RecordBytes: record data].
func SparseRecordWriteHandler(dstAddr, progressAddr uint32) *vcode.Program {
	b := vcode.NewBuilder("crl-write-sparse")
	dst, prog, i, n, v := b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(dst, int32(dstAddr))
	b.MovI(prog, int32(progressAddr))
	b.MovI(i, 0)
	b.MovI(n, RecordBytes)
	top, skip := b.NewLabel(), b.NewLabel()
	b.Bind(top)
	b.Ld32X(v, vcode.RArg0, i)
	b.Beq(v, vcode.RZero, skip)
	b.St32X(dst, i, v)
	b.Bind(skip)
	b.St32(prog, 0, i)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.St32(prog, 0, n) // record complete
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// ChainMagic is the well-known tag ValidateHandler checks for in the
// canonical validate→increment chain.
const ChainMagic = 0x41534821 // "ASH!"

// ValidateHandler builds a chain-head guard: accept the message (RRet=0,
// letting the next chain member run) iff the word at magicOff equals
// magic, otherwise abort voluntarily to the user-level path. On its own
// it is trivial; its purpose is chain fusion — fused with a follower it
// becomes one download whose seam test replaces a full handler dispatch.
func ValidateHandler(magicOff, magic int32) *vcode.Program {
	b := vcode.NewBuilder("crl-validate")
	t, want := b.Temp(), b.Temp()
	bad := b.NewLabel()
	b.Ld32(t, vcode.RArg0, magicOff)
	b.MovI(want, magic)
	b.Bne(t, want, bad)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	b.Bind(bad)
	b.MovI(vcode.RRet, 1)
	b.Ret()
	return b.MustAssemble()
}

// --------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------

// Canonical flat-memory layout for Library handlers. The differential
// harness runs handlers against a flat region with these addresses baked
// in at build time; the real system allocates from the owner's address
// space instead.
const (
	LibCounterAddr  = 0x2000 // crl-increment counter word
	LibRecordAddr   = 0x2100 // record-write destination (RecordBytes)
	LibProgressAddr = 0x2180 // record-write progress word
	LibBucketBase   = 0x2200 // shard-counter buckets
	LibTableAddr    = 0x2400 // generic-write segment table
	LibLockBase     = 0x2600 // lock words
	LibSegBase      = 0x3000 // generic-write segment 0 data
	LibSegLimit     = 0x400  // generic-write segment 0 size
)

// LibraryEntry is one handler in the registry: its program, a message
// generator (i varies the content deterministically, covering success
// and failure paths), and the initial memory the handler expects.
type LibraryEntry struct {
	Name string
	Prog *vcode.Program
	// Msg builds the i'th test message for this handler.
	Msg func(i int) []byte
	// Setup seeds handler-expected state via store(addr, word); nil when
	// the handler needs none beyond a zeroed region.
	Setup func(store func(addr, val uint32))
}

func be32(vs ...uint32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// Library enumerates every handler this package builds, each at its
// canonical flat-memory addresses. The three-way differential harness
// sweeps this list; new handlers added here are covered automatically.
func Library() []LibraryEntry {
	const genMagic = 0x44534d21 // GenericWriteHandler's wire magic
	fused, err := reopt.FuseChain("crl-chain-fused",
		ValidateHandler(4, ChainMagic),
		IncrementHandler(LibCounterAddr, 1, 0))
	if err != nil {
		panic(err) // static registry: both members are fusion-legal
	}
	record := func(i int, sparse bool) []byte {
		out := make([]byte, RecordBytes)
		for w := 0; w < RecordBytes/4; w++ {
			v := uint32(i*31 + w*7 + 1)
			if sparse && (w+i)%3 == 0 {
				v = 0
			}
			binary.BigEndian.PutUint32(out[w*4:], v)
		}
		return out
	}
	return []LibraryEntry{
		{
			Name: "crl-increment",
			Prog: IncrementHandler(LibCounterAddr, 1, 0),
			Msg:  func(i int) []byte { return be32(uint32(i*3 + 1)) },
		},
		{
			Name: "crl-write-trusted",
			Prog: TrustedWriteHandler(),
			Msg: func(i int) []byte {
				return append(be32(LibRecordAddr, 16), record(i, false)[:16]...)
			},
		},
		{
			Name: "crl-write-record",
			Prog: FixedRecordWriteHandler(LibRecordAddr, LibProgressAddr),
			Msg:  func(i int) []byte { return record(i, false) },
		},
		{
			Name: "crl-write-sparse",
			Prog: SparseRecordWriteHandler(LibRecordAddr, LibProgressAddr),
			Msg:  func(i int) []byte { return record(i, true) },
		},
		{
			Name: "crl-write-generic",
			Prog: GenericWriteHandler(LibTableAddr, 2, 1, 0),
			Msg: func(i int) []byte {
				magic := uint32(genMagic)
				segno := uint32(0)
				switch i % 4 {
				case 1:
					magic = 0xbad // fail path: wrong magic
				case 2:
					segno = 1 // fail path: zero-base segment
				}
				hdr := be32(magic, 1<<16, uint32(i), segno, 8, 16)
				return append(hdr, record(i, false)[:16]...)
			},
			Setup: func(store func(addr, val uint32)) {
				store(LibTableAddr, LibSegBase)
				store(LibTableAddr+4, LibSegLimit)
				store(LibTableAddr+8, 0) // segment 1: zero base, no access
				store(LibTableAddr+12, 0)
				// Segment 1 left zero: permission-fail path.
			},
		},
		{
			Name: "crl-lock",
			Prog: LockHandler(LibLockBase, 8, 1, 0),
			Msg: func(i int) []byte {
				idx := uint32(i % 10) // 8, 9 exercise the malformed path
				op := uint32(1 + i%2)
				return be32(idx, op, uint32(3+i%2))
			},
			Setup: func(store func(addr, val uint32)) {
				store(LibLockBase+4, 7) // lock 1 held by someone else
			},
		},
		{
			Name: "crl-shard-counter",
			Prog: ShardedCounterHandler(LibBucketBase),
			Msg: func(i int) []byte {
				vals := make([]uint32, 1+NumShardValues)
				vals[0] = uint32(5 + i%3) // modulus, always nonzero here
				for w := 0; w < NumShardValues; w++ {
					vals[1+w] = uint32(i*17 + w*13)
				}
				return be32(vals...)
			},
		},
		{
			Name: "crl-validate",
			Prog: ValidateHandler(4, ChainMagic),
			Msg: func(i int) []byte {
				magic := uint32(ChainMagic)
				if i%3 == 2 {
					magic = 0 // voluntary-abort path
				}
				return be32(uint32(i+1), magic)
			},
		},
		{
			Name: "crl-chain-fused",
			Prog: fused,
			Msg: func(i int) []byte {
				magic := uint32(ChainMagic)
				if i%3 == 2 {
					magic = 0 // seam exits with RRet != 0
				}
				return be32(uint32(i+1), magic)
			},
		},
	}
}
