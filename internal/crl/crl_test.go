package crl

import (
	"encoding/binary"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

type world struct {
	eng    *sim.Engine
	k1, k2 *aegis.Kernel
	a1, a2 *aegis.AN2If
	sys    *core.System // server-side ASH system
	node   *Node
	owner  *aegis.Process

	cliBind   *aegis.VCBinding
	lastReply []byte
}

func newWorld(t *testing.T) *world {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("client", eng, prof)
	k2 := aegis.NewKernel("server", eng, prof)
	w := &world{eng: eng, k1: k1, k2: k2,
		a1: aegis.NewAN2(k1, sw), a2: aegis.NewAN2(k2, sw)}
	w.sys = core.NewSystem(k2)
	w.owner = k2.Spawn("dsm-app", func(p *aegis.Process) {})
	w.node = NewNode(w.sys, w.owner)
	return w
}

// install downloads prog as an ASH on VC vc of the server.
func (w *world) install(t *testing.T, prog *vcode.Program, vc int, unsafe bool) *core.ASH {
	t.Helper()
	ash, err := w.sys.Download(w.owner, prog, core.Options{Unsafe: unsafe})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.a2.BindVC(w.owner, vc, 8, 8192)
	if err != nil {
		t.Fatal(err)
	}
	ash.AttachVC(b)
	return ash
}

// rpc sends msg from an in-kernel client endpoint and returns the reply.
func (w *world) rpc(t *testing.T, vc int, msg []byte) []byte {
	t.Helper()
	var reply []byte
	cb, err := w.a1.BindVC(nil, vc, 8, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cb.InKernel = true
	cb.InKernelRx = func(mc *aegis.MsgCtx) {
		reply = append([]byte(nil), mc.Data()...)
	}
	w.a1.KernelSend(w.a2.Addr(), vc, msg)
	w.eng.Run()
	return reply
}

func u32(v uint32) []byte { return binary.BigEndian.AppendUint32(nil, v) }

func TestRemoteIncrement(t *testing.T) {
	w := newWorld(t)
	prog := IncrementHandler(w.node.CounterSeg.Base, 0, 5)
	ash := w.install(t, prog, 5, false)

	reply := w.rpc(t, 5, u32(7))
	if len(reply) != 4 || binary.BigEndian.Uint32(reply) != 7 {
		t.Fatalf("reply = %v", reply)
	}
	if v, _ := w.k2.Mem.Load32(w.node.CounterSeg.Base); v != 7 {
		t.Fatalf("counter = %d", v)
	}
	if ash.Invocations != 1 || ash.InvoluntaryFault != nil {
		t.Fatalf("invocations=%d fault=%v", ash.Invocations, ash.InvoluntaryFault)
	}
}

func TestTrustedRemoteWrite(t *testing.T) {
	w := newWorld(t)
	_, seg, err := w.node.AddSegment(4096, "shared")
	if err != nil {
		t.Fatal(err)
	}
	ash := w.install(t, TrustedWriteHandler(), 6, false)

	data := []byte("trusted peers write fast!!!!")
	msg := append(u32(seg.Base+128), u32(uint32(len(data)))...)
	msg = append(msg, data...)
	w.a1.KernelSend(w.a2.Addr(), 6, msg)
	w.eng.Run()
	if ash.InvoluntaryFault != nil {
		t.Fatal(ash.InvoluntaryFault)
	}
	got := w.k2.Bytes(seg.Base+128, len(data))
	if string(got) != string(data) {
		t.Fatalf("wrote %q", got)
	}
}

func TestTrustedWriteInstructionCounts(t *testing.T) {
	// Section V-D: the hand-crafted application-specific write is ~10
	// instructions; sandboxing adds ~28 (2 per memory op + entry/exit).
	w := newWorld(t)
	_, seg, _ := w.node.AddSegment(4096, "shared")

	run := func(unsafe bool, vc int) int64 {
		ash := w.install(t, TrustedWriteHandler(), vc, unsafe)
		data := make([]byte, 40)
		msg := append(u32(seg.Base), u32(uint32(len(data)))...)
		msg = append(msg, data...)
		w.a1.KernelSend(w.a2.Addr(), vc, msg)
		w.eng.Run()
		if ash.InvoluntaryFault != nil {
			t.Fatal(ash.InvoluntaryFault)
		}
		return ash.LastInsns()
	}
	plain := run(true, 6)
	sandboxed := run(false, 7)
	if plain < 7 || plain > 13 {
		t.Fatalf("hand-crafted write = %d instructions, want ~10 (Section V-D)", plain)
	}
	added := sandboxed - plain
	if added < 24 || added > 32 {
		t.Fatalf("sandboxing added %d instructions, want ~28 (Section V-D)", added)
	}
}

func TestGenericVsSpecificInstructionCounts(t *testing.T) {
	// Section V-D: "even the sandboxed version of the specialized remote
	// write uses fewer instructions than the generic hand-crafted one."
	w := newWorld(t)
	segID, seg, _ := w.node.AddSegment(4096, "shared")

	generic := w.install(t, GenericWriteHandler(w.node.TableAddr(), MaxSegments, 0, 8), 8, true)
	data := make([]byte, 40)
	msg := append(u32(0x44534d21), u32(1<<16)...)
	msg = append(msg, u32(99)...)                // request id
	msg = append(msg, u32(uint32(segID))...)     // segment
	msg = append(msg, u32(64)...)                // offset
	msg = append(msg, u32(uint32(len(data)))...) // length
	msg = append(msg, data...)
	reply := w.rpc(t, 8, msg)
	if generic.InvoluntaryFault != nil {
		t.Fatal(generic.InvoluntaryFault)
	}
	if len(reply) != 12 || binary.BigEndian.Uint32(reply[8:]) != 0 {
		t.Fatalf("generic write reply = %v", reply)
	}
	genericInsns := generic.LastInsns()

	// Sandboxed application-specific version.
	w2 := newWorld(t)
	_, seg2, _ := w2.node.AddSegment(4096, "shared")
	spec := w2.install(t, TrustedWriteHandler(), 6, false)
	msg2 := append(u32(seg2.Base), u32(uint32(len(data)))...)
	msg2 = append(msg2, data...)
	w2.a1.KernelSend(w2.a2.Addr(), 6, msg2)
	w2.eng.Run()
	if spec.InvoluntaryFault != nil {
		t.Fatal(spec.InvoluntaryFault)
	}
	specInsns := spec.LastInsns()

	if specInsns >= genericInsns {
		t.Fatalf("sandboxed specific (%d) not below generic hand-crafted (%d)",
			specInsns, genericInsns)
	}
	_ = seg
}

func TestGenericWriteValidation(t *testing.T) {
	w := newWorld(t)
	segID, seg, _ := w.node.AddSegment(4096, "shared")
	w.install(t, GenericWriteHandler(w.node.TableAddr(), MaxSegments, 0, 8), 8, false)

	before := append([]byte(nil), w.k2.Bytes(seg.Base, 64)...)
	cases := []struct {
		name string
		msg  []byte
	}{
		{"bad magic", func() []byte {
			m := append(u32(0xbadbad), u32(1<<16)...)
			m = append(m, u32(1)...)
			m = append(m, u32(uint32(segID))...)
			m = append(m, u32(0)...)
			m = append(m, u32(16)...)
			return append(m, make([]byte, 16)...)
		}()},
		{"bad segment", func() []byte {
			m := append(u32(0x44534d21), u32(1<<16)...)
			m = append(m, u32(2)...)
			m = append(m, u32(250)...)
			m = append(m, u32(0)...)
			m = append(m, u32(16)...)
			return append(m, make([]byte, 16)...)
		}()},
		{"out of bounds", func() []byte {
			m := append(u32(0x44534d21), u32(1<<16)...)
			m = append(m, u32(3)...)
			m = append(m, u32(uint32(segID))...)
			m = append(m, u32(4092)...)
			m = append(m, u32(64)...)
			return append(m, make([]byte, 64)...)
		}()},
		{"unaligned", func() []byte {
			m := append(u32(0x44534d21), u32(1<<16)...)
			m = append(m, u32(4)...)
			m = append(m, u32(uint32(segID))...)
			m = append(m, u32(6)...)
			m = append(m, u32(16)...)
			return append(m, make([]byte, 16)...)
		}()},
	}
	for _, tc := range cases {
		reply := w.rpcOnce(t, 8, tc.msg)
		if len(reply) != 12 || binary.BigEndian.Uint32(reply[8:]) != 1 {
			t.Fatalf("%s: reply = %v, want status 1", tc.name, reply)
		}
	}
	after := w.k2.Bytes(seg.Base, 64)
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("rejected write still modified memory at %d", i)
		}
	}
}

// rpcOnce is rpc for repeated calls on one world (client endpoint reused).
func (w *world) rpcOnce(t *testing.T, vc int, msg []byte) []byte {
	t.Helper()
	if w.cliBind == nil {
		cb, err := w.a1.BindVC(nil, vc, 8, 8192)
		if err != nil {
			t.Fatal(err)
		}
		cb.InKernel = true
		cb.InKernelRx = func(mc *aegis.MsgCtx) {
			w.lastReply = append([]byte(nil), mc.Data()...)
		}
		w.cliBind = cb
	}
	w.lastReply = nil
	w.a1.KernelSend(w.a2.Addr(), vc, msg)
	w.eng.Run()
	return w.lastReply
}

func TestFixedRecordWrite(t *testing.T) {
	// The loop handler copies a whole record and publishes completion,
	// under both the naive and the optimizing sandbox; the optimizer must
	// not change what the handler computes, only what it costs.
	for _, optimize := range []bool{false, true} {
		w := newWorld(t)
		_, seg, err := w.node.AddSegment(4096, "shared")
		if err != nil {
			t.Fatal(err)
		}
		prog := FixedRecordWriteHandler(seg.Base+64, seg.Base)
		ash, err := w.sys.Download(w.owner, prog, core.Options{OptimizeSFI: optimize})
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.a2.BindVC(w.owner, 7, 8, 8192)
		if err != nil {
			t.Fatal(err)
		}
		ash.AttachVC(b)

		record := make([]byte, RecordBytes)
		for i := range record {
			record[i] = byte(0x40 + i)
		}
		w.a1.KernelSend(w.a2.Addr(), 7, record)
		w.eng.Run()
		if ash.InvoluntaryFault != nil {
			t.Fatalf("optimize=%v: %v", optimize, ash.InvoluntaryFault)
		}
		if got := w.k2.Bytes(seg.Base+64, RecordBytes); string(got) != string(record) {
			t.Fatalf("optimize=%v: wrote %q", optimize, got)
		}
		if v, _ := w.k2.Mem.Load32(seg.Base); v != RecordBytes {
			t.Fatalf("optimize=%v: progress word = %d, want %d", optimize, v, RecordBytes)
		}
	}
}

func TestRemoteLock(t *testing.T) {
	w := newWorld(t)
	w.install(t, LockHandler(w.node.LockSeg.Base, 64, 0, 9), 9, false)

	acquire := func(idx, who uint32) []byte {
		m := append(u32(idx), u32(1)...)
		return append(m, u32(who)...)
	}
	release := func(idx, who uint32) []byte {
		m := append(u32(idx), u32(2)...)
		return append(m, u32(who)...)
	}
	if r := w.rpcOnce(t, 9, acquire(3, 111)); binary.BigEndian.Uint32(r) != 0 {
		t.Fatalf("first acquire denied: %v", r)
	}
	if r := w.rpcOnce(t, 9, acquire(3, 222)); binary.BigEndian.Uint32(r) != 1 {
		t.Fatalf("conflicting acquire granted: %v", r)
	}
	if r := w.rpcOnce(t, 9, acquire(3, 111)); binary.BigEndian.Uint32(r) != 0 {
		t.Fatalf("reentrant acquire denied: %v", r)
	}
	if r := w.rpcOnce(t, 9, release(3, 222)); binary.BigEndian.Uint32(r) != 1 {
		t.Fatalf("foreign release allowed: %v", r)
	}
	if r := w.rpcOnce(t, 9, release(3, 111)); binary.BigEndian.Uint32(r) != 0 {
		t.Fatalf("owner release denied: %v", r)
	}
	if r := w.rpcOnce(t, 9, acquire(3, 222)); binary.BigEndian.Uint32(r) != 0 {
		t.Fatalf("acquire after release denied: %v", r)
	}
}

func TestLockHandlerVoluntaryAbortOnMalformed(t *testing.T) {
	w := newWorld(t)
	ash := w.install(t, LockHandler(w.node.LockSeg.Base, 64, 0, 9), 9, false)
	// Lock index out of range: the handler defers to the library.
	m := append(u32(9999), u32(1)...)
	m = append(m, u32(1)...)
	w.a1.KernelSend(w.a2.Addr(), 9, m)
	w.eng.Run()
	if ash.VoluntaryAborts != 1 {
		t.Fatalf("voluntary aborts = %d, want 1", ash.VoluntaryAborts)
	}
}

func TestAllHandlersVerify(t *testing.T) {
	// Every handler in the library must pass the verifier (be downloadable).
	w := newWorld(t)
	progs := []*vcode.Program{
		IncrementHandler(w.node.CounterSeg.Base, 0, 1),
		TrustedWriteHandler(),
		GenericWriteHandler(w.node.TableAddr(), MaxSegments, 0, 1),
		LockHandler(w.node.LockSeg.Base, 16, 0, 1),
		FixedRecordWriteHandler(0x2000, 0x3000),
	}
	for _, prog := range progs {
		if _, err := w.sys.Download(w.owner, prog, core.Options{}); err != nil {
			t.Errorf("%s does not verify: %v", prog.Name, err)
		}
	}
}
