package pipe

import (
	"fmt"

	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// Options configures DILP compilation (the paper's compile_pl second
// argument: PIPE_WRITE produces a copying engine).
type Options struct {
	// Output controls whether the engine writes transformed words to the
	// destination (a copying engine) or only traverses the source (a pure
	// manipulation pass such as checksum verification).
	Output bool
	// StripedSrc selects the Ethernet DMA engine's back end: the source is
	// laid out as alternating 16-byte data and padding lines (Section
	// III-C: "our Ethernet DMA engine stripes an N-byte contiguous packet
	// into a 2N-byte buffer... Different loops may be generated for
	// different network interfaces"). The generated loop unrolls by one
	// data line and skips the pad; lengths must be multiples of 16.
	StripedSrc bool
}

// Engine is a compiled integrated transfer engine: the specialized data
// copying loop the DILP system generates (the paper's ilp handle). Run it
// against a machine to move/manipulate a buffer while charging exactly the
// cycles the generated loop would cost.
type Engine struct {
	Prog    *vcode.Program
	output  bool
	striped bool
	// regmap translates each pipe's own registers into the fused
	// program's register space ("binding the context inside the pipe").
	regmap map[int]map[vcode.Reg]vcode.Reg
}

// asm is a tiny absolute assembler used by the fusion compiler.
type asm struct {
	ins     []vcode.Insn
	nextReg vcode.Reg
}

func newAsm() *asm { return &asm{nextReg: 8} }

func (a *asm) reg() vcode.Reg {
	r := a.nextReg
	for r == vcode.RSbox || r == vcode.RInput {
		r++
	}
	if r >= vcode.NumRegs {
		panic("pipe: fused engine out of registers")
	}
	a.nextReg = r + 1
	return r
}

func (a *asm) emit(in vcode.Insn) int {
	a.ins = append(a.ins, in)
	return len(a.ins) - 1
}

func (a *asm) here() int { return len(a.ins) }

// Compile fuses the pipe list into one integrated engine (dynamic ILP).
// The generated loop streams 32-bit words: load, apply every pipe in
// order (with gauge conversions), optionally store, advance. With
// StripedSrc the loop is unrolled by one 16-byte data line and skips the
// interleaved padding lines.
//
// Calling convention of the generated program: RArg0 = source address,
// RArg1 = destination address, RArg2 = byte count (multiple of 4;
// multiple of 16 for striped sources).
func Compile(l *List, opts Options) (*Engine, error) {
	a := newAsm()
	regmap := map[int]map[vcode.Reg]vcode.Reg{}

	idx := a.reg()
	cur := a.reg()
	var sidx vcode.Reg
	if opts.StripedSrc {
		sidx = a.reg() // source index advances 2x per line (data + pad)
	}

	// Pre-map every pipe's registers so persistent registers are stable
	// regardless of loop structure.
	for _, p := range l.pipes {
		pm := map[vcode.Reg]vcode.Reg{}
		for _, r := range collectRegs(p.Body) {
			if r == vcode.RZero || r == p.inReg {
				continue
			}
			pm[r] = a.reg()
		}
		regmap[p.ID] = pm
	}

	// if len == 0 goto end (patched below).
	guard := a.emit(vcode.Insn{Op: vcode.OpBeq, Rs: vcode.RArg2, Rt: vcode.RZero})
	a.emit(vcode.Insn{Op: vcode.OpMovI, Rd: idx, Imm: 0})
	if opts.StripedSrc {
		a.emit(vcode.Insn{Op: vcode.OpMovI, Rd: sidx, Imm: 0})
	}
	loop := a.here()

	unroll := 1
	if opts.StripedSrc {
		unroll = 4 // one 16-byte data line per iteration
	}
	for u := 0; u < unroll; u++ {
		srcIdx := idx
		if opts.StripedSrc {
			srcIdx = sidx
		}
		a.emit(vcode.Insn{Op: vcode.OpLd32X, Rd: cur, Rs: vcode.RArg0, Rt: srcIdx})
		word := cur
		for _, p := range l.pipes {
			var err error
			word, err = inlinePipe(a, p, regmap[p.ID], word)
			if err != nil {
				return nil, err
			}
		}
		if opts.Output {
			a.emit(vcode.Insn{Op: vcode.OpSt32X, Rs: vcode.RArg1, Rt: idx, Rd: word})
		}
		a.emit(vcode.Insn{Op: vcode.OpAddIU, Rd: idx, Rs: idx, Imm: 4})
		if opts.StripedSrc {
			a.emit(vcode.Insn{Op: vcode.OpAddIU, Rd: sidx, Rs: sidx, Imm: 4})
		}
	}
	if opts.StripedSrc {
		// Skip the 16-byte padding line.
		a.emit(vcode.Insn{Op: vcode.OpAddIU, Rd: sidx, Rs: sidx, Imm: 16})
	}
	a.emit(vcode.Insn{Op: vcode.OpBltU, Rs: idx, Rt: vcode.RArg2, Target: loop})
	end := a.here()
	a.emit(vcode.Insn{Op: vcode.OpRet})
	a.ins[guard].Target = end

	// Collect remapped persistent registers.
	var persist []vcode.Reg
	for _, p := range l.pipes {
		for _, r := range p.persist {
			persist = append(persist, regmap[p.ID][r])
		}
	}

	name := "dilp"
	for _, p := range l.pipes {
		name += "+" + p.Name
	}
	if opts.StripedSrc {
		name += ".striped"
	}
	return &Engine{
		Prog: &vcode.Program{
			Name:       name,
			Insns:      a.ins,
			Persistent: persist,
			NextReg:    a.nextReg,
		},
		output:  opts.Output,
		striped: opts.StripedSrc,
		regmap:  regmap,
	}, nil
}

// CompileCopy returns a pure copying engine (no pipes): the baseline
// "single copy" data-transfer loop.
func CompileCopy() *Engine {
	e, err := Compile(NewList(0), Options{Output: true})
	if err != nil {
		panic(err) // empty list cannot fail
	}
	e.Prog.Name = "copy"
	return e
}

// CompilePass compiles a single pipe as a standalone, non-integrated
// traversal (one full pass over memory), for the Table IV "separate"
// strategy. NoMod pipes read without writing back; modifying pipes rewrite
// the buffer in place (run with src == dst) or into a destination.
func CompilePass(p *Pipe) (*Engine, error) {
	l := NewList(1)
	l.pipes = append(l.pipes, p)
	l.nextID = p.ID + 1
	return Compile(l, Options{Output: p.Attrs&NoMod == 0})
}

// CompileSeparate compiles every pipe in the list as its own pass, in
// order: the non-integrated processing strategy.
func CompileSeparate(l *List) ([]*Engine, error) {
	var engines []*Engine
	for _, p := range l.pipes {
		e, err := CompilePass(p)
		if err != nil {
			return nil, err
		}
		engines = append(engines, e)
	}
	return engines, nil
}

// collectRegs returns every register the body names (other than R0).
func collectRegs(prog *vcode.Program) []vcode.Reg {
	seen := map[vcode.Reg]bool{}
	var out []vcode.Reg
	add := func(r vcode.Reg) {
		if r != vcode.RZero && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, in := range prog.Insns {
		add(in.Rd)
		add(in.Rs)
		add(in.Rt)
	}
	return out
}

// inlinePipe emits pipe p's body with its input mapped to register word,
// returning the register holding the pipe's output. Narrow-gauge pipes are
// applied 32/G times with extraction and merge code (gauge conversion).
func inlinePipe(a *asm, p *Pipe, pm map[vcode.Reg]vcode.Reg, word vcode.Reg) (vcode.Reg, error) {
	if p.Gauge == Gauge32 {
		return inlineBodyOnce(a, p, pm, word)
	}

	g := int32(p.Gauge)
	chunks := 32 / int(g)
	mask := int32((int64(1) << g) - 1)
	chunkIn := a.reg()
	var merged vcode.Reg
	modifies := p.Attrs&NoMod == 0
	if modifies {
		merged = a.reg()
		a.emit(vcode.Insn{Op: vcode.OpMovI, Rd: merged, Imm: 0})
	}
	for i := 0; i < chunks; i++ {
		shift := 32 - g*int32(i+1)
		if shift != 0 {
			a.emit(vcode.Insn{Op: vcode.OpSrlI, Rd: chunkIn, Rs: word, Imm: shift})
			a.emit(vcode.Insn{Op: vcode.OpAndI, Rd: chunkIn, Rs: chunkIn, Imm: mask})
		} else {
			a.emit(vcode.Insn{Op: vcode.OpAndI, Rd: chunkIn, Rs: word, Imm: mask})
		}
		out, err := inlineBodyOnce(a, p, pm, chunkIn)
		if err != nil {
			return 0, err
		}
		if modifies {
			if shift != 0 {
				tmp := chunkIn // reuse as shift scratch
				a.emit(vcode.Insn{Op: vcode.OpSllI, Rd: tmp, Rs: out, Imm: shift})
				a.emit(vcode.Insn{Op: vcode.OpOr, Rd: merged, Rs: merged, Rt: tmp})
			} else {
				a.emit(vcode.Insn{Op: vcode.OpOr, Rd: merged, Rs: merged, Rt: out})
			}
		}
	}
	if modifies {
		return merged, nil
	}
	return word, nil
}

// inlineBodyOnce emits the pipe body once with input register in, applying
// the register map and retargeting internal branches.
func inlineBodyOnce(a *asm, p *Pipe, pm map[vcode.Reg]vcode.Reg, in vcode.Reg) (vcode.Reg, error) {
	body := p.Body.Insns
	// Drop Input32 (index 0), Output32 (len-2) and Ret (len-1).
	inner := body[1 : len(body)-2]
	start := a.here()
	mapReg := func(r vcode.Reg) vcode.Reg {
		if r == p.inReg {
			return in
		}
		if r == vcode.RZero {
			return r
		}
		if m, ok := pm[r]; ok {
			return m
		}
		return r
	}
	for _, insn := range inner {
		if writesTo(insn, p.inReg) {
			return 0, fmt.Errorf("pipe %s: body writes its input register; cannot coalesce", p.Name)
		}
		out := insn
		out.Rd = mapReg(insn.Rd)
		out.Rs = mapReg(insn.Rs)
		out.Rt = mapReg(insn.Rt)
		switch insn.Op {
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			// Body targets are in [1, len-2]; re-base onto the fused code.
			out.Target = start + (insn.Target - 1)
		}
		a.emit(out)
	}
	return mapReg(p.outReg), nil
}

func writesTo(in vcode.Insn, r vcode.Reg) bool {
	if r == vcode.RZero {
		return false
	}
	if in.Op.IsStore() {
		return false
	}
	switch in.Op {
	case vcode.OpNop, vcode.OpRet, vcode.OpJmp, vcode.OpJmpR,
		vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpOutput32:
		return false
	}
	return in.Rd == r
}

// RegOf translates a pipe's own register handle (e.g. the checksum
// accumulator returned by Cksum) into the fused program's register.
func (e *Engine) RegOf(p *Pipe, r vcode.Reg) vcode.Reg {
	if m, ok := e.regmap[p.ID]; ok {
		if f, ok := m[r]; ok {
			return f
		}
	}
	return r
}

// Export sets a pipe's persistent register before a run (the paper:
// "Export is used to initialize a register before use").
func (e *Engine) Export(m *vcode.Machine, p *Pipe, r vcode.Reg, v uint32) {
	m.Regs[e.RegOf(p, r)] = v
}

// Import reads a pipe's persistent register after a run ("import to obtain
// a register's value, e.g. to determine if a checksum succeeded").
func (e *Engine) Import(m *vcode.Machine, p *Pipe, r vcode.Reg) uint32 {
	return m.Regs[e.RegOf(p, r)]
}

// Run executes the engine over [src, src+n) -> [dst, dst+n) on machine m
// and returns the cycles charged. n must be a multiple of 4 (the paper's
// pipes assume word-multiple messages); protocols pad odd tails.
func (e *Engine) Run(m *vcode.Machine, src, dst uint32, n int) (sim.Time, *vcode.Fault) {
	if n%4 != 0 {
		return 0, &vcode.Fault{Kind: vcode.FaultUnaligned, Msg: "DILP length not a multiple of 4"}
	}
	if e.striped && n%16 != 0 {
		return 0, &vcode.Fault{Kind: vcode.FaultUnaligned, Msg: "striped DILP length not a multiple of 16"}
	}
	// Persistent registers must survive Run's counter reset but argument
	// registers are ours to set.
	m.Regs[vcode.RArg0] = src
	m.Regs[vcode.RArg1] = dst
	m.Regs[vcode.RArg2] = uint32(n)
	f := m.Run(e.Prog)
	return m.Cycles, f
}

// Fold16 folds a 32-bit ones-complement accumulator into the final 16-bit
// Internet checksum value (the handler is "responsible for ... folding it
// to 16 bits").
func Fold16(v uint32) uint16 {
	for v>>16 != 0 {
		v = v&0xffff + v>>16
	}
	return uint16(v)
}
