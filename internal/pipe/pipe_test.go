package pipe

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ashs/internal/aegis"
	"ashs/internal/mach"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// Conflict-free placement on the direct-mapped 64-KB cache (distinct
// modulo 0x10000), mirroring the paper's best-case link-order methodology.
const (
	srcAddr = uint32(0x10000)
	dstAddr = uint32(0x24000)
)

func newEnv(t *testing.T, n int) (*vcode.Machine, *vcode.FlatMem) {
	t.Helper()
	mem := vcode.NewFlatMem(0, 0x80000)
	p := mach.DS5000_240()
	m := vcode.NewMachine(p, mem)
	m.Cache = mach.NewCache(p)
	return m, mem
}

func fillRandom(mem *vcode.FlatMem, addr uint32, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		mem.Data[addr-mem.Base+uint32(i)] = byte(rng.Intn(256))
	}
}

func bytesAt(mem *vcode.FlatMem, addr uint32, n int) []byte {
	return mem.Data[addr-mem.Base : addr-mem.Base+uint32(n)]
}

// refCksum32 is an independent RFC 1071 accumulator over big-endian words.
func refCksum32(data []byte) uint32 {
	var acc uint32
	for i := 0; i+3 < len(data); i += 4 {
		w := uint32(data[i])<<24 | uint32(data[i+1])<<16 | uint32(data[i+2])<<8 | uint32(data[i+3])
		acc = cksumStep(acc, w)
	}
	return acc
}

func TestCopyEngineCopies(t *testing.T) {
	m, mem := newEnv(t, 4096)
	fillRandom(mem, srcAddr, 4096, 1)
	e := CompileCopy()
	if _, f := e.Run(m, srcAddr, dstAddr, 4096); f != nil {
		t.Fatal(f)
	}
	src := bytesAt(mem, srcAddr, 4096)
	dst := bytesAt(mem, dstAddr, 4096)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("copy mismatch at %d: %#x vs %#x", i, src[i], dst[i])
		}
	}
}

func TestCopyEngineCalibration(t *testing.T) {
	// The uncached single copy anchors Table III: ~8 cycles/word = 20 MB/s.
	m, _ := newEnv(t, 4096)
	e := CompileCopy()
	m.Cache.Flush()
	cycles, f := e.Run(m, srcAddr, dstAddr, 4096)
	if f != nil {
		t.Fatal(f)
	}
	mbps := m.Prof.MBps(4096, cycles)
	if mbps < 19 || mbps > 21 {
		t.Fatalf("single copy = %.2f MB/s, want ~20 (Table III)", mbps)
	}
}

func TestCksumPipeMatchesReference(t *testing.T) {
	m, mem := newEnv(t, 4096)
	fillRandom(mem, srcAddr, 4096, 2)
	l := NewList(1)
	ck, acc, err := Cksum(l)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(l, Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(m, ck, acc, 0)
	if _, f := e.Run(m, srcAddr, dstAddr, 4096); f != nil {
		t.Fatal(f)
	}
	got := e.Import(m, ck, acc)
	want := refCksum32(bytesAt(mem, srcAddr, 4096))
	if got != want {
		t.Fatalf("cksum = %#x, want %#x", got, want)
	}
	// And the copy side must still be intact.
	src, dst := bytesAt(mem, srcAddr, 4096), bytesAt(mem, dstAddr, 4096)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("copy mismatch at %d", i)
		}
	}
}

func TestByteswapPipeSwaps(t *testing.T) {
	m, mem := newEnv(t, 16)
	copy(bytesAt(mem, srcAddr, 8), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	l := NewList(1)
	if _, err := Byteswap(l); err != nil {
		t.Fatal(err)
	}
	e, err := Compile(l, Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, f := e.Run(m, srcAddr, dstAddr, 8); f != nil {
		t.Fatal(f)
	}
	want := []byte{4, 3, 2, 1, 8, 7, 6, 5}
	got := bytesAt(mem, dstAddr, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byteswap output = %v, want %v", got, want)
		}
	}
}

func TestFig1CksumPlusByteswapComposition(t *testing.T) {
	// The paper's Fig. 1: compose checksum and byteswap pipes, compile,
	// run. The checksum must be over the *unswapped* input (cksum is NoMod
	// and first in the list) and the output must be swapped.
	m, mem := newEnv(t, 4096)
	fillRandom(mem, srcAddr, 4096, 3)

	pl := NewList(2)
	ck, ckReg, err := Cksum(pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Byteswap(pl); err != nil {
		t.Fatal(err)
	}
	ilp, err := Compile(pl, Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}

	ilp.Export(m, ck, ckReg, 0)
	if _, f := ilp.Run(m, srcAddr, dstAddr, 4096); f != nil {
		t.Fatal(f)
	}
	if got, want := ilp.Import(m, ck, ckReg), refCksum32(bytesAt(mem, srcAddr, 4096)); got != want {
		t.Fatalf("cksum = %#x, want %#x", got, want)
	}
	src, dst := bytesAt(mem, srcAddr, 4096), bytesAt(mem, dstAddr, 4096)
	for i := 0; i < 4096; i += 4 {
		for k := 0; k < 4; k++ {
			if dst[i+k] != src[i+3-k] {
				t.Fatalf("word at %d not byteswapped", i)
			}
		}
	}
}

func TestXorPipeRoundTrips(t *testing.T) {
	m, mem := newEnv(t, 64)
	fillRandom(mem, srcAddr, 64, 4)
	orig := append([]byte(nil), bytesAt(mem, srcAddr, 64)...)

	l := NewList(1)
	if _, err := Xor(l, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	e, err := Compile(l, Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, f := e.Run(m, srcAddr, dstAddr, 64); f != nil {
		t.Fatal(f)
	}
	// Encrypting twice restores the original.
	if _, f := e.Run(m, dstAddr, dstAddr, 64); f != nil {
		t.Fatal(f)
	}
	got := bytesAt(mem, dstAddr, 64)
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("xor round trip mismatch at %d", i)
		}
	}
}

func TestGaugeConversion16(t *testing.T) {
	// A 16-bit checksum pipe applied through the 32-bit stream must equal
	// summing the 16-bit big-endian halves.
	m, mem := newEnv(t, 256)
	fillRandom(mem, srcAddr, 256, 5)
	l := NewList(1)
	ck, acc, err := Cksum16(l)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(l, Options{Output: false})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(m, ck, acc, 0)
	if _, f := e.Run(m, srcAddr, 0, 256); f != nil {
		t.Fatal(f)
	}
	got := Fold16(e.Import(m, ck, acc))

	data := bytesAt(mem, srcAddr, 256)
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum = cksumStep(sum, uint32(data[i])<<8|uint32(data[i+1]))
	}
	want := Fold16(sum)
	if got != want {
		t.Fatalf("gauge-16 cksum = %#x, want %#x", got, want)
	}
}

func TestCompositionEqualsFunctionComposition(t *testing.T) {
	// Property: running the fused engine equals applying each pipe's
	// mathematical function word-by-word in order.
	err := quick.Check(func(words []uint32, key uint32) bool {
		if len(words) == 0 {
			words = []uint32{0}
		}
		if len(words) > 256 {
			words = words[:256]
		}
		n := len(words) * 4
		m, mem := newEnvQ()
		for i, w := range words {
			_ = mem.Store32(srcAddr+uint32(i*4), w)
		}
		l := NewList(3)
		ck, acc, err := Cksum(l)
		if err != nil {
			return false
		}
		if _, err := Xor(l, key); err != nil {
			return false
		}
		if _, err := Byteswap(l); err != nil {
			return false
		}
		e, err := Compile(l, Options{Output: true})
		if err != nil {
			return false
		}
		e.Export(m, ck, acc, 0)
		if _, f := e.Run(m, srcAddr, dstAddr, n); f != nil {
			return false
		}
		var wantAcc uint32
		for i, w := range words {
			wantAcc = cksumStep(wantAcc, w)
			x := w ^ key
			s := x<<24 | (x&0xff00)<<8 | (x>>8)&0xff00 | x>>24
			got, err := mem.Load32(dstAddr + uint32(i*4))
			if err != nil || got != s {
				return false
			}
		}
		return e.Import(m, ck, acc) == wantAcc
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func newEnvQ() (*vcode.Machine, *vcode.FlatMem) {
	mem := vcode.NewFlatMem(0, 0x80000)
	p := mach.DS5000_240()
	m := vcode.NewMachine(p, mem)
	m.Cache = mach.NewCache(p)
	return m, mem
}

func TestSeparateVsIntegratedThroughput(t *testing.T) {
	// Table IV shape: integrated processing beats separate passes by
	// ~1.4-1.6x for copy+cksum(+byteswap) on uncached 4096-byte buffers.
	const n = 4096
	runDILP := func(withBswap bool) float64 {
		m, mem := newEnv(t, n)
		fillRandom(mem, srcAddr, n, 7)
		l := NewList(2)
		ck, acc, _ := Cksum(l)
		if withBswap {
			if _, err := Byteswap(l); err != nil {
				t.Fatal(err)
			}
		}
		e, err := Compile(l, Options{Output: true})
		if err != nil {
			t.Fatal(err)
		}
		m.Cache.Flush()
		e.Export(m, ck, acc, 0)
		cycles, f := e.Run(m, srcAddr, dstAddr, n)
		if f != nil {
			t.Fatal(f)
		}
		return m.Prof.MBps(n, cycles)
	}
	runSeparate := func(withBswap bool) float64 {
		m, mem := newEnv(t, n)
		fillRandom(mem, srcAddr, n, 7)
		l := NewList(2)
		ck, acc, _ := Cksum(l)
		if withBswap {
			if _, err := Byteswap(l); err != nil {
				t.Fatal(err)
			}
		}
		copyEng := CompileCopy()
		passes, err := CompileSeparate(l)
		if err != nil {
			t.Fatal(err)
		}
		m.Cache.Flush()
		var total int64
		cycles, f := copyEng.Run(m, srcAddr, dstAddr, n)
		if f != nil {
			t.Fatal(f)
		}
		total += int64(cycles)
		for i, pe := range passes {
			if i == 0 {
				pe.Export(m, ck, acc, 0)
			}
			cycles, f := pe.Run(m, dstAddr, dstAddr, n)
			if f != nil {
				t.Fatal(f)
			}
			total += int64(cycles)
		}
		return m.Prof.MBps(n, sim.Time(total))
	}

	dilp := runDILP(false)
	sep := runSeparate(false)
	if dilp <= sep {
		t.Fatalf("copy+cksum: DILP %.1f MB/s not faster than separate %.1f MB/s", dilp, sep)
	}
	ratio := dilp / sep
	if ratio < 1.2 || ratio > 1.9 {
		t.Fatalf("copy+cksum integration benefit = %.2fx, want ~1.4x (Table IV)", ratio)
	}

	dilp2 := runDILP(true)
	sep2 := runSeparate(true)
	if dilp2 <= sep2 {
		t.Fatalf("copy+cksum+bswap: DILP %.1f not faster than separate %.1f", dilp2, sep2)
	}
}

func TestHandIntegratedMatchesDILP(t *testing.T) {
	// Table IV shape: "our emitted copying routines are very close in
	// efficiency to carefully hand-optimized integrated loops."
	const n = 4096
	m1, mem1 := newEnv(t, n)
	fillRandom(mem1, srcAddr, n, 9)
	m1.Cache.Flush()
	accHand, handCycles, err := HandIntegrated(m1, srcAddr, dstAddr, n, false)
	if err != nil {
		t.Fatal(err)
	}

	m2, mem2 := newEnv(t, n)
	fillRandom(mem2, srcAddr, n, 9)
	l := NewList(1)
	ck, acc, _ := Cksum(l)
	e, err := Compile(l, Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}
	m2.Cache.Flush()
	e.Export(m2, ck, acc, 0)
	dilpCycles, f := e.Run(m2, srcAddr, dstAddr, n)
	if f != nil {
		t.Fatal(f)
	}
	if got := e.Import(m2, ck, acc); got != accHand {
		t.Fatalf("hand and DILP checksums differ: %#x vs %#x", accHand, got)
	}
	r := float64(dilpCycles) / float64(handCycles)
	if r < 0.9 || r > 1.15 {
		t.Fatalf("DILP/hand cycle ratio = %.3f, want ~1.0 (Table IV)", r)
	}
}

func TestEngineRejectsOddLength(t *testing.T) {
	m, _ := newEnv(t, 16)
	e := CompileCopy()
	if _, f := e.Run(m, srcAddr, dstAddr, 6); f == nil {
		t.Fatal("engine accepted non-word-multiple length")
	}
}

func TestEngineZeroLength(t *testing.T) {
	m, _ := newEnv(t, 16)
	e := CompileCopy()
	cycles, f := e.Run(m, srcAddr, dstAddr, 0)
	if f != nil {
		t.Fatal(f)
	}
	if cycles > 10 {
		t.Fatalf("zero-length run cost %d cycles", cycles)
	}
}

func TestEngineFaultsOutsideMemory(t *testing.T) {
	m, _ := newEnv(t, 16)
	e := CompileCopy()
	if _, f := e.Run(m, 0xf0000000, dstAddr, 16); f == nil {
		t.Fatal("engine ran over unmapped source")
	}
}

func TestPipeValidationRejectsBadShapes(t *testing.T) {
	l := NewList(4)
	if _, err := l.Lambda("no-input", Gauge32, 0, func(b *vcode.Builder) {
		r := b.Temp()
		b.MovI(r, 1)
		b.Output32(r)
	}); err == nil {
		t.Fatal("pipe without leading input32 accepted")
	}
	if _, err := l.Lambda("no-output", Gauge32, 0, func(b *vcode.Builder) {
		b.Input32(vcode.RInput)
		b.Nop()
	}); err == nil {
		t.Fatal("pipe without trailing output32 accepted")
	}
	if _, err := l.Lambda("memory", Gauge32, 0, func(b *vcode.Builder) {
		r := b.Temp()
		b.Input32(vcode.RInput)
		b.Ld32(r, vcode.RInput, 0)
		b.Output32(r)
	}); err == nil {
		t.Fatal("pipe with direct memory access accepted")
	}
	if _, err := l.Lambda("badgauge", Gauge(12), 0, func(b *vcode.Builder) {
		b.Input32(vcode.RInput)
		b.Output32(vcode.RInput)
	}); err == nil {
		t.Fatal("unsupported gauge accepted")
	}
	if _, err := l.Lambda("nomod-lie", Gauge32, NoMod, func(b *vcode.Builder) {
		r := b.Temp()
		b.Input32(vcode.RInput)
		b.Bswap(r, vcode.RInput)
		b.Output32(r)
	}); err == nil {
		t.Fatal("NoMod pipe that outputs a different register accepted")
	}
}

func TestPipeWithInternalBranch(t *testing.T) {
	// A pipe that clamps each word to 0xff via a branch, to exercise
	// branch retargeting during inlining.
	l := NewList(1)
	p, err := l.Lambda("clamp", Gauge32, 0, func(b *vcode.Builder) {
		lim, out := b.Temp(), b.Temp()
		b.Input32(vcode.RInput)
		b.MovI(lim, 0x100)
		b.Mov(out, vcode.RInput)
		skip := b.NewLabel()
		b.BltU(vcode.RInput, lim, skip)
		b.MovI(out, 0xff)
		b.Bind(skip)
		b.Output32(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	e, err := Compile(l, Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}
	m, mem := newEnv(t, 32)
	_ = mem.Store32(srcAddr, 0x42)
	_ = mem.Store32(srcAddr+4, 0x12345)
	if _, f := e.Run(m, srcAddr, dstAddr, 8); f != nil {
		t.Fatal(f)
	}
	v0, _ := mem.Load32(dstAddr)
	v1, _ := mem.Load32(dstAddr + 4)
	if v0 != 0x42 || v1 != 0xff {
		t.Fatalf("clamp pipe produced %#x, %#x; want 0x42, 0xff", v0, v1)
	}
}

func TestFold16(t *testing.T) {
	cases := []struct {
		in   uint32
		want uint16
	}{
		{0, 0}, {0xffff, 0xffff}, {0x10000, 1}, {0x1fffe, 0xffff}, {0xffffffff, 0xffff},
	}
	for _, tc := range cases {
		if got := Fold16(tc.in); got != tc.want {
			t.Errorf("Fold16(%#x) = %#x, want %#x", tc.in, got, tc.want)
		}
	}
}

func TestCommutativeAttrRecorded(t *testing.T) {
	l := NewList(1)
	ck, _, err := Cksum(l)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Attrs&Commutative == 0 || ck.Attrs&NoMod == 0 {
		t.Fatal("cksum pipe missing Commutative|NoMod attributes")
	}
}

func TestStripedEngineMatchesContiguous(t *testing.T) {
	// The Ethernet back end: the same pipes compiled against the striped
	// DMA layout must produce identical bytes and checksums, at slightly
	// higher cost (the line-skip index update).
	const n = 1024
	m, mem := newEnv(t, 4*n)
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	// Contiguous copy at srcAddr; striped layout at srcAddr+0x8000.
	copy(bytesAt(mem, srcAddr, n), payload)
	stripedAddr := srcAddr + 0x8000
	stripeBuf := bytesAt(mem, stripedAddr, 2*n)
	aegis.Stripe(stripeBuf, payload)

	mk := func(striped bool) (*Engine, *Pipe, vcode.Reg) {
		l := NewList(1)
		ck, acc, err := Cksum(l)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Compile(l, Options{Output: true, StripedSrc: striped})
		if err != nil {
			t.Fatal(err)
		}
		return e, ck, acc
	}
	contEng, ck1, acc1 := mk(false)
	strEng, ck2, acc2 := mk(true)

	m.Cache.Flush()
	contEng.Export(m, ck1, acc1, 0)
	cCycles, f := contEng.Run(m, srcAddr, dstAddr, n)
	if f != nil {
		t.Fatal(f)
	}
	contSum := contEng.Import(m, ck1, acc1)

	m.Cache.Flush()
	strEng.Export(m, ck2, acc2, 0)
	sCycles, f := strEng.Run(m, stripedAddr, dstAddr+0x4000, n)
	if f != nil {
		t.Fatal(f)
	}
	strSum := strEng.Import(m, ck2, acc2)

	if Fold16(contSum) != Fold16(strSum) {
		t.Fatalf("checksums differ: %#x vs %#x", contSum, strSum)
	}
	a := bytesAt(mem, dstAddr, n)
	b := bytesAt(mem, dstAddr+0x4000, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output differs at %d", i)
		}
	}
	// Striped costs a little more, but within ~15%.
	r := float64(sCycles) / float64(cCycles)
	if r < 1.0 || r > 1.15 {
		t.Fatalf("striped/contiguous cycle ratio = %.3f, want (1.0, 1.15]", r)
	}
}

func TestStripedEngineRejectsNon16Multiple(t *testing.T) {
	l := NewList(0)
	e, err := Compile(l, Options{Output: true, StripedSrc: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := newEnv(t, 64)
	if _, f := e.Run(m, srcAddr, dstAddr, 24); f == nil {
		t.Fatal("striped engine accepted a non-16-multiple length")
	}
}
