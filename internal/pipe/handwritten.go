package pipe

import (
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// HandIntegrated is the "C integrated" strategy of Table IV: a
// hand-written loop that copies a buffer while folding in the Internet
// checksum and (optionally) a byteswap, integrated by the programmer rather
// than by the DILP compiler. It performs the same work and charges the same
// primitive costs as carefully hand-optimized C would: one load, one store,
// one loop update and the ALU ops per word.
//
// It returns the 32-bit checksum accumulator (caller folds with Fold16).
func HandIntegrated(m *vcode.Machine, src, dst uint32, n int, withBswap bool) (uint32, sim.Time, error) {
	prof := m.Prof
	var cycles sim.Time
	load := func(addr uint32) (uint32, error) {
		if m.Cache != nil {
			cycles += m.Cache.Load(addr)
		} else {
			cycles += sim.Time(prof.LoadHit)
		}
		return m.Mem.Load32(addr)
	}
	store := func(addr uint32, v uint32) error {
		if m.Cache != nil {
			cycles += m.Cache.Store(addr)
		} else {
			cycles += sim.Time(prof.StoreCycles)
		}
		return m.Mem.Store32(addr, v)
	}
	var acc uint32
	for off := 0; off < n; off += 4 {
		v, err := load(src + uint32(off))
		if err != nil {
			return 0, cycles, err
		}
		acc = cksumStep(acc, v)
		cycles += sim.Time(prof.CksumOp)
		if withBswap {
			v = v<<24 | (v&0xff00)<<8 | (v>>8)&0xff00 | v>>24
			cycles += sim.Time(prof.BswapOp)
		}
		if err := store(dst+uint32(off), v); err != nil {
			return 0, cycles, err
		}
		cycles += sim.Time(prof.LoopOverhead)
	}
	m.Charge(cycles)
	return acc, cycles, nil
}

// cksumStep is one 32-bit ones-complement accumulate with end-around carry.
func cksumStep(acc, v uint32) uint32 {
	s := uint64(acc) + uint64(v)
	return uint32(s) + uint32(s>>32)
}

// LibCksumPass is the classic standalone Internet-checksum routine a 1996
// protocol library links: a halfword (16-bit) loop in the style of BSD's
// in_cksum. It is what the *separate* (non-integrated) strategy of
// Table IV pays for the checksum traversal — the 32-bit
// add-with-carry trick belongs to the VCODE extensions and hence to the
// integrated paths. Charges per halfword: one (cache-modeled) 16-bit
// load, two ALU ops (add + carry fold), and half the loop overhead.
func LibCksumPass(m *vcode.Machine, addr uint32, n int) (uint32, sim.Time, error) {
	prof := m.Prof
	var cycles sim.Time
	var acc uint32
	for off := 0; off < n; off += 2 {
		a := addr + uint32(off)
		if m.Cache != nil {
			cycles += m.Cache.Load(a)
		} else {
			cycles += sim.Time(prof.LoadHit)
		}
		v, err := m.Mem.Load16(a)
		if err != nil {
			return 0, cycles, err
		}
		acc = cksumStep(acc, uint32(v))
		cycles += 2 + sim.Time(prof.LoopOverhead)/2
	}
	m.Charge(cycles)
	return acc, cycles, nil
}
