// Package pipe implements pipes and dynamic integrated layer processing
// (DILP), Sections II-B and III-C of the paper.
//
// A pipe is a small computation on streaming data (a checksum accumulate, a
// byteswap, an XOR cipher step) written in vcode against the pipe
// pseudo-instructions p_input32/p_output32. Pipes are gathered into a pipe
// list and handed to the DILP compiler, which fuses them into a single
// integrated data-transfer engine: one loop, one memory traversal, all
// manipulations applied per word. The paper's Fig. 1/Fig. 2 example —
// composing a checksum pipe with a byteswap pipe — is reproduced verbatim
// by Cksum + Byteswap + Compile.
//
// For the Table IV comparison the package can also compile the same pipe
// list in *separate* (non-integrated) form — one full memory traversal per
// pipe — and in hand-integrated form (HandIntegrated), the "C integrated"
// row of the paper.
//
// Gauges: each pipe declares the width of data it consumes and produces
// (8, 16 or 32 bits). The fused loop always moves 32-bit words; the
// compiler inserts extraction/merge code to apply narrower pipes to each
// sub-word chunk, performing the gauge conversions the paper describes
// ("the ASH system performs conversions between the required sizes").
package pipe

import (
	"fmt"

	"ashs/internal/vcode"
)

// Gauge is the bit width a pipe consumes and produces.
type Gauge int

// Supported gauges. The fused loop streams 32-bit words, so every gauge
// must divide 32.
const (
	Gauge8  Gauge = 8
	Gauge16 Gauge = 16
	Gauge32 Gauge = 32
)

// Attr is a pipe attribute bitmask (the paper's P_COMMUTATIVE | P_NO_MOD).
type Attr uint

const (
	// Commutative pipes may be applied to message data out of order.
	Commutative Attr = 1 << iota
	// NoMod pipes do not alter their input (e.g. a checksum); in separate
	// compilation they need no store pass.
	NoMod
)

// Pipe is one data-manipulation stage.
type Pipe struct {
	ID      int
	Name    string
	Gauge   Gauge
	Attrs   Attr
	Body    *vcode.Program
	inReg   vcode.Reg // register the body's p_input32 names
	outReg  vcode.Reg // register the body's p_output32 names
	persist []vcode.Reg
}

// List is a pipe list (the paper's pipel): an ordered collection of pipes
// awaiting composition.
type List struct {
	pipes  []*Pipe
	nextID int
}

// NewList initializes a pipe list (the paper's pipel(n); capacity is
// advisory only here).
func NewList(capacity int) *List {
	return &List{pipes: make([]*Pipe, 0, capacity)}
}

// Pipes returns the pipes in composition order.
func (l *List) Pipes() []*Pipe { return append([]*Pipe(nil), l.pipes...) }

// Lambda defines a new pipe (the paper's pipe_lambda). The body callback
// receives a fresh builder; it must begin by reading its input with
// b.Input32 into a register of its choosing and end by emitting exactly one
// b.Output32. Registers allocated with b.Persistent survive across pipe
// applications and can be imported/exported through the compiled engine.
func (l *List) Lambda(name string, g Gauge, attrs Attr, body func(b *vcode.Builder)) (*Pipe, error) {
	if g != Gauge8 && g != Gauge16 && g != Gauge32 {
		return nil, fmt.Errorf("pipe %s: unsupported gauge %d", name, g)
	}
	b := vcode.NewBuilder(name)
	body(b)
	prog, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	p := &Pipe{ID: l.nextID, Name: name, Gauge: g, Attrs: attrs, Body: prog,
		persist: prog.Persistent}
	if err := p.validate(); err != nil {
		return nil, err
	}
	l.nextID++
	l.pipes = append(l.pipes, p)
	return p, nil
}

// MustLambda is Lambda that panics on error (for the standard pipes).
func (l *List) MustLambda(name string, g Gauge, attrs Attr, body func(b *vcode.Builder)) *Pipe {
	p, err := l.Lambda(name, g, attrs, body)
	if err != nil {
		panic(err)
	}
	return p
}

// validate enforces the pipe shape the compiler can fuse: the first
// instruction is the only Input32, the last instruction before Ret is the
// only Output32, and intra-body branches stay inside the body.
func (p *Pipe) validate() error {
	ins := p.Body.Insns
	if len(ins) < 3 {
		return fmt.Errorf("pipe %s: body too short (need input, work, output)", p.Name)
	}
	if ins[0].Op != vcode.OpInput32 {
		return fmt.Errorf("pipe %s: body must begin with p_input32", p.Name)
	}
	if ins[len(ins)-1].Op != vcode.OpRet {
		return fmt.Errorf("pipe %s: body must end with ret", p.Name)
	}
	if ins[len(ins)-2].Op != vcode.OpOutput32 {
		return fmt.Errorf("pipe %s: body must end with p_output32", p.Name)
	}
	p.inReg = ins[0].Rd
	p.outReg = ins[len(ins)-2].Rs
	for i, in := range ins[1 : len(ins)-2] {
		switch in.Op {
		case vcode.OpInput32, vcode.OpOutput32:
			return fmt.Errorf("pipe %s: stray pipe pseudo-op mid-body at %d", p.Name, i+1)
		case vcode.OpCall, vcode.OpJmpR, vcode.OpRet:
			return fmt.Errorf("pipe %s: %v not allowed inside a pipe body", p.Name, in.Op)
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			if in.Target < 1 || in.Target > len(ins)-2 {
				return fmt.Errorf("pipe %s: branch escapes pipe body", p.Name)
			}
		}
		if in.Op.IsLoad() || in.Op.IsStore() {
			return fmt.Errorf("pipe %s: pipes may not access memory directly", p.Name)
		}
	}
	// The body must not overwrite its own input register if it is NoMod:
	// the engine forwards the unchanged word downstream.
	if p.Attrs&NoMod != 0 && p.outReg != p.inReg {
		return fmt.Errorf("pipe %s: NoMod pipe must output its input register", p.Name)
	}
	return nil
}

// PersistentRegs returns the pipe's persistent registers in allocation
// order (e.g. a checksum accumulator).
func (p *Pipe) PersistentRegs() []vcode.Reg { return append([]vcode.Reg(nil), p.persist...) }

// Cksum declares the Internet-checksum pipe of the paper's Fig. 2: a
// 32-bit, commutative, non-modifying pipe that folds each input word into a
// persistent accumulator with end-around carry. It returns the pipe and the
// accumulator register handle (the paper's cksum_reg) for import/export
// through the compiled engine.
func Cksum(l *List) (*Pipe, vcode.Reg, error) {
	var acc vcode.Reg
	p, err := l.Lambda("cksum", Gauge32, Commutative|NoMod, func(b *vcode.Builder) {
		acc = b.Persistent()         // accumulate register, preserved across applications
		b.Input32(vcode.RInput)      // get 32 bits of input from the pipe
		b.Cksum32(acc, vcode.RInput) // add input value to checksum accumulator
		b.Output32(vcode.RInput)     // pass 32 bits of output to next pipe
	})
	if err != nil {
		return nil, 0, err
	}
	return p, acc, nil
}

// Byteswap declares a pipe swapping each word between big and little
// endian (the second pipe of the paper's Fig. 1).
func Byteswap(l *List) (*Pipe, error) {
	return l.Lambda("byteswap", Gauge32, 0, func(b *vcode.Builder) {
		out := b.Temp()
		b.Input32(vcode.RInput)
		b.Bswap(out, vcode.RInput)
		b.Output32(out)
	})
}

// Xor declares a toy stream-cipher pipe (models the "encryption" layer the
// paper discusses for ILP): XOR each word with a key.
func Xor(l *List, key uint32) (*Pipe, error) {
	return l.Lambda("xor", Gauge32, 0, func(b *vcode.Builder) {
		k := b.Temp()
		out := b.Temp()
		b.Input32(vcode.RInput)
		b.MovI(k, int32(key))
		b.Xor(out, vcode.RInput, k)
		b.Output32(out)
	})
}

// Cksum16 declares a 16-bit-gauge checksum pipe, used to exercise the
// compiler's gauge conversion (a 16-b pipe applied twice per 32-b word).
func Cksum16(l *List) (*Pipe, vcode.Reg, error) {
	var acc vcode.Reg
	p, err := l.Lambda("cksum16", Gauge16, Commutative|NoMod, func(b *vcode.Builder) {
		acc = b.Persistent()
		b.Input32(vcode.RInput)
		b.Cksum32(acc, vcode.RInput) // inputs are 16-bit chunks: plain accumulate
		b.Output32(vcode.RInput)
	})
	if err != nil {
		return nil, 0, err
	}
	return p, acc, nil
}
