package obs

import (
	"testing"

	"ashs/internal/sim"
)

// TestNilPlaneZeroAlloc pins the zero-cost-disabled contract that
// ashlint/obsguard enforces statically: every emission shape the packet
// fast path uses — constant metric names, span names built from field
// reads, virtual-clock timestamps — must not allocate when the plane is
// nil. A single allocation here would be paid per packet in every
// un-instrumented run.
func TestNilPlaneZeroAlloc(t *testing.T) {
	var p *Plane // disabled: exactly what production passes when -trace is off
	host := "h0"
	var t0, dur sim.Time = 100, 7

	shapes := map[string]func(){
		"Span":    func() { p.Span(host, "device", "device", "eth rx demux", t0, dur) },
		"Instant": func() { p.Instant(host, "device", "kernel", "ring deliver", t0) },
		"Inc":     func() { p.Inc("net/frames_delivered") },
		"Add":     func() { p.Add("net/bytes_delivered", 1500) },
		"Observe": func() { p.Observe("net/rx_latency", dur) },
		"guarded concat": func() {
			if o := p; o.Enabled() {
				o.Inc("aegis/" + host + "/interrupts")
			}
		},
	}
	for name, fn := range shapes {
		if avg := testing.AllocsPerRun(1000, fn); avg != 0 {
			t.Errorf("%s on a nil plane allocates %.1f times per call, want 0", name, avg)
		}
	}
}
