package obs

import (
	"bytes"
	"strings"
	"testing"

	"ashs/internal/sim"
)

// A nil plane must accept every emission without doing anything.
func TestNilPlaneIsDisabledNoOp(t *testing.T) {
	var p *Plane
	if p.Enabled() {
		t.Fatal("nil plane reports enabled")
	}
	p.Span("h", "t", "kernel", "x", 0, 10)
	p.Instant("h", "t", "kernel", "y", 5)
	p.Inc("c")
	p.Add("c", 3)
	p.Observe("h", 7)
	if p.Events() != 0 {
		t.Fatal("nil plane recorded events")
	}
	if got := p.PhaseCycles(0, 100); len(got) != 0 {
		t.Fatalf("nil plane returned phases: %v", got)
	}
}

func TestPhaseCyclesClipsToWindow(t *testing.T) {
	p := New(40)
	p.Span("h", "t", "wire", "a", 0, 100)    // 50 inside [50, 200)
	p.Span("h", "t", "wire", "b", 150, 100)  // 50 inside
	p.Span("h", "t", "kernel", "c", 60, 40)  // fully inside
	p.Span("h", "t", "kernel", "d", 300, 50) // fully outside
	p.Instant("h", "t", "wire", "i", 70)     // instants contribute nothing
	got := p.PhaseCycles(50, 200)
	if got["wire"] != 100 {
		t.Errorf("wire = %d, want 100", got["wire"])
	}
	if got["kernel"] != 40 {
		t.Errorf("kernel = %d, want 40", got["kernel"])
	}
	if _, ok := got["sched"]; ok {
		t.Error("unexpected phase key")
	}
}

func TestTrackInterningIsFirstUseOrder(t *testing.T) {
	p := New(40)
	p.Span("h1", "dev", "device", "a", 0, 1)
	p.Span("h2", "dev", "device", "b", 1, 1)
	p.Span("h1", "dev", "device", "c", 2, 1)
	if len(p.tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(p.tracks))
	}
	if p.events[0].track != 0 || p.events[1].track != 1 || p.events[2].track != 0 {
		t.Fatalf("track ids = %d,%d,%d", p.events[0].track, p.events[1].track, p.events[2].track)
	}
}

func TestWriteTraceDeterministicAndWellFormed(t *testing.T) {
	build := func() *Plane {
		p := New(40)
		p.Span("h1", "device", "device", "rx \"quoted\"", 40, 80)
		p.Instant("h1", "sched", "sched", "dispatch\tapp", 120)
		return p
	}
	a, b := WriteTrace(build()), WriteTrace(build())
	if !bytes.Equal(a, b) {
		t.Fatal("identical planes produced different trace bytes")
	}
	s := string(a)
	// 40 cycles at 40 cycles/us = 1.000 us; fixed 3-decimal formatting;
	// control characters \u-escape so the file stays single-line-safe.
	for _, want := range []string{
		`"ts":1.000`, `"dur":2.000`, `"cycles":40`, `"dur_cycles":80`,
		`"s":"t"`, `\"quoted\"`, `dispatch\u0009app`,
		`"process_name"`, `"thread_name"`, `"displayTimeUnit":"ns"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// nil planes are skipped, and plane order fixes pid numbering.
	merged := WriteTrace(nil, build())
	if !strings.Contains(string(merged), `"pid":2`) {
		t.Error("second plane should get pid 2 even after a nil plane")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 bound = %d, want in [2,4]", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Errorf("p100 bound = %d, want >= 1000", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-7)
	r.Histogram("h").Observe(10)
	c, g, h := r.Names()
	if len(c) != 2 || c[0] != "a" || c[1] != "b" {
		t.Fatalf("counters = %v", c)
	}
	if len(g) != 1 || len(h) != 1 {
		t.Fatalf("gauges = %v histograms = %v", g, h)
	}
	if r.Counter("a").Value() != 2 || r.Gauge("g").Value() != -7 {
		t.Fatal("values not retained")
	}
	// Accessors are get-or-create: same pointer on reuse.
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity not stable")
	}
}

// Spans observe their duration into the span/<cat> histogram.
func TestSpanFeedsCategoryHistogram(t *testing.T) {
	p := New(40)
	p.Span("h", "t", "wire", "a", 0, 100)
	p.Span("h", "t", "wire", "b", 200, 300)
	h := p.Metrics.Histogram("span/wire")
	if h.Count() != 2 || h.Sum() != 400 {
		t.Fatalf("span/wire count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestProfileRecordingReplacesByName(t *testing.T) {
	var nilp *Plane
	nilp.RecordProfile("h", 1, []uint64{1}) // nil plane: no-op
	if _, ok := nilp.Profile("h"); ok {
		t.Fatal("nil plane returned a profile")
	}
	if nilp.ProfileNames() != nil {
		t.Fatal("nil plane returned profile names")
	}

	p := New(25)
	src := []uint64{3, 0, 9}
	p.RecordProfile("alpha", 2, src)
	p.RecordProfile("beta", 1, []uint64{7})
	src[0] = 99 // the plane must have copied, not aliased
	got, ok := p.Profile("alpha")
	if !ok || got.Invocations != 2 || got.Counts[0] != 3 {
		t.Fatalf("alpha = %+v, %v", got, ok)
	}

	// Re-recording a name replaces in place and keeps insertion order.
	p.RecordProfile("alpha", 5, []uint64{4, 4})
	names := p.ProfileNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("names = %v", names)
	}
	got, _ = p.Profile("alpha")
	if got.Invocations != 5 || len(got.Counts) != 2 {
		t.Fatalf("replaced alpha = %+v", got)
	}
	if _, ok := p.Profile("missing"); ok {
		t.Fatal("missing profile reported present")
	}
}
