// Package obs is the simulator's observability plane: tracing and metrics
// keyed to the virtual clock.
//
// The paper's whole evaluation is a cost-accounting argument — Tables I–VI
// decompose round-trip latency into kernel crossings, demultiplexing,
// handler execution, DMA, and wire time. This package makes the same
// decomposition available for any run: every layer of the stack (wire,
// device driver, kernel, ASH system, protocol library) emits spans and
// instants against one Plane, and the result exports as Chrome
// trace_event JSON so a run opens directly in Perfetto or
// chrome://tracing.
//
// Two properties are load-bearing:
//
//   - Zero cost when disabled. A nil *Plane is valid; every emission
//     method is a nil-receiver no-op, so an uninstrumented run pays one
//     pointer test per site and allocates nothing. Tracing never charges
//     simulated cycles, so enabling it cannot perturb a measurement.
//
//   - Determinism. Timestamps come from the virtual clock, names are
//     fixed strings or deterministically formatted values, and events are
//     recorded in engine order, so two runs of the same (workload, seed)
//     export byte-identical traces. The breakdown experiment's CI gate
//     asserts exactly that.
package obs

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"ashs/internal/sim"
)

// Plane is one testbed's observability plane: a tracer and a metrics
// registry sharing the virtual clock. A nil *Plane is valid and disabled.
type Plane struct {
	// CyclesPerUs converts virtual cycles to microseconds at export time
	// (40 for the DECstation profile).
	CyclesPerUs float64

	// Metrics is the plane's counter/gauge/histogram registry.
	Metrics *Registry

	tracks   []trackInfo
	trackIDs map[trackInfo]int
	events   []event

	// Handler execution profiles exported by the DCG loop, in first-export
	// order (deterministic under the single-threaded engine). Re-exporting
	// a name replaces its vector: the latest profile is the one a
	// re-optimization would consume.
	profiles   []ProfileVec
	profileIdx map[string]int
}

// ProfileVec is one handler's execution profile as exported through the
// plane: per-original-instruction execution counts plus the invocation
// count they accumulate over. The obs plane stores it as plain data —
// the reopt package defines what the counts mean.
type ProfileVec struct {
	Name        string
	Invocations uint64
	Counts      []uint64
}

type trackInfo struct{ proc, thread string }

type event struct {
	track int
	ph    byte // 'X' complete span, 'i' instant
	cat   string
	name  string
	at    sim.Time
	dur   sim.Time
}

// New builds an enabled plane. cyclesPerUs is the virtual-clock rate
// (profile MHz).
func New(cyclesPerUs float64) *Plane {
	return &Plane{
		CyclesPerUs: cyclesPerUs,
		Metrics:     NewRegistry(),
		trackIDs:    map[trackInfo]int{},
	}
}

// Enabled reports whether emissions are recorded. All emission methods
// are nil-safe; Enabled exists so call sites can skip building dynamic
// event names when the plane is off.
func (p *Plane) Enabled() bool { return p != nil }

// track interns a (process, thread) timeline, assigning ids in first-use
// order (deterministic: the engine is single-threaded lock-step).
func (p *Plane) track(proc, thread string) int {
	ti := trackInfo{proc, thread}
	if id, ok := p.trackIDs[ti]; ok {
		return id
	}
	id := len(p.tracks)
	p.tracks = append(p.tracks, ti)
	p.trackIDs[ti] = id
	return id
}

// Span records a complete event of dur cycles starting at start on the
// (proc, thread) timeline. cat is the phase key the latency-breakdown
// experiment aggregates by (see PhaseCycles). The span's duration is also
// observed into the cycle-bucketed histogram "span/<cat>".
func (p *Plane) Span(proc, thread, cat, name string, start, dur sim.Time) {
	if p == nil {
		return
	}
	p.events = append(p.events, event{
		track: p.track(proc, thread), ph: 'X', cat: cat, name: name,
		at: start, dur: dur,
	})
	p.Metrics.Histogram("span/" + cat).Observe(dur)
}

// Instant records a point event at virtual time at.
func (p *Plane) Instant(proc, thread, cat, name string, at sim.Time) {
	if p == nil {
		return
	}
	p.events = append(p.events, event{
		track: p.track(proc, thread), ph: 'i', cat: cat, name: name, at: at,
	})
}

// RecordProfile stores (or replaces) the named handler's execution
// profile. The counts slice is copied: the caller's live counter array
// keeps accumulating without mutating the exported snapshot.
func (p *Plane) RecordProfile(name string, invocations uint64, counts []uint64) {
	if p == nil {
		return
	}
	pv := ProfileVec{Name: name, Invocations: invocations,
		Counts: append([]uint64(nil), counts...)}
	if p.profileIdx == nil {
		p.profileIdx = map[string]int{}
	}
	if i, ok := p.profileIdx[name]; ok {
		p.profiles[i] = pv
		return
	}
	p.profileIdx[name] = len(p.profiles)
	p.profiles = append(p.profiles, pv)
}

// Profile returns the last exported profile for name.
func (p *Plane) Profile(name string) (ProfileVec, bool) {
	if p == nil {
		return ProfileVec{}, false
	}
	i, ok := p.profileIdx[name]
	if !ok {
		return ProfileVec{}, false
	}
	return p.profiles[i], true
}

// ProfileNames lists exported profile names in first-export order.
func (p *Plane) ProfileNames() []string {
	if p == nil {
		return nil
	}
	names := make([]string, len(p.profiles))
	for i := range p.profiles {
		names[i] = p.profiles[i].Name
	}
	return names
}

// Inc bumps the named counter by one (nil-safe).
func (p *Plane) Inc(name string) {
	if p == nil {
		return
	}
	p.Metrics.Counter(name).Inc()
}

// Add bumps the named counter by n (nil-safe).
func (p *Plane) Add(name string, n uint64) {
	if p == nil {
		return
	}
	p.Metrics.Counter(name).Add(n)
}

// SetGauge sets the named gauge to v (nil-safe). Gauges record
// level-style quantities — the flyweight fleet publishes its resident
// bytes-per-endpoint here so memory footprint shows up beside the
// latency metrics when a plane is attached.
func (p *Plane) SetGauge(name string, v int64) {
	if p == nil {
		return
	}
	p.Metrics.Gauge(name).Set(v)
}

// Observe records v into the named histogram (nil-safe).
func (p *Plane) Observe(name string, v sim.Time) {
	if p == nil {
		return
	}
	p.Metrics.Histogram(name).Observe(v)
}

// Events reports how many trace events have been recorded.
func (p *Plane) Events() int {
	if p == nil {
		return 0
	}
	return len(p.events)
}

// PhaseCycles sums span durations by category, clipped to the window
// [from, to). Instants contribute nothing. The latency-breakdown
// experiment uses this to attribute a measurement window to phases.
func (p *Plane) PhaseCycles(from, to sim.Time) map[string]sim.Time {
	out := map[string]sim.Time{}
	if p == nil {
		return out
	}
	for _, ev := range p.events {
		if ev.ph != 'X' {
			continue
		}
		lo, hi := ev.at, ev.at+ev.dur
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			out[ev.cat] += hi - lo
		}
	}
	return out
}

// --------------------------------------------------------------------
// Chrome trace_event export
// --------------------------------------------------------------------

// us renders a cycle count as microseconds with fixed (deterministic)
// formatting. The DECstation's 40 cycles/us divides exactly into
// thousandths, so three decimals lose nothing.
func (p *Plane) us(c sim.Time) string {
	return strconv.FormatFloat(float64(c)/p.CyclesPerUs, 'f', 3, 64)
}

func jsonEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			b.WriteString("\\u00")
			const hex = "0123456789abcdef"
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WriteTrace renders the planes as one Chrome trace_event JSON document.
// Each plane becomes one process-id namespace; each (proc, thread) track
// becomes one thread, labeled by metadata events. The output is built
// with fixed field order and fixed number formatting so identical runs
// produce byte-identical files.
func WriteTrace(planes ...*Plane) []byte {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(s)
	}
	for pi, p := range planes {
		if p == nil {
			continue
		}
		pid := strconv.Itoa(pi + 1)
		for ti, tr := range p.tracks {
			tid := strconv.Itoa(ti + 1)
			emit("{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":" + tid +
				",\"name\":\"process_name\",\"args\":{\"name\":\"" +
				jsonEscape(tr.proc) + "\"}}")
			emit("{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":" + tid +
				",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
				jsonEscape(tr.thread) + "\"}}")
		}
		for _, ev := range p.events {
			tid := strconv.Itoa(ev.track + 1)
			var s strings.Builder
			s.WriteString("{\"ph\":\"")
			s.WriteByte(ev.ph)
			s.WriteString("\",\"pid\":" + pid + ",\"tid\":" + tid)
			s.WriteString(",\"cat\":\"" + jsonEscape(ev.cat) + "\"")
			s.WriteString(",\"name\":\"" + jsonEscape(ev.name) + "\"")
			s.WriteString(",\"ts\":" + p.us(ev.at))
			if ev.ph == 'X' {
				s.WriteString(",\"dur\":" + p.us(ev.dur))
			} else {
				s.WriteString(",\"s\":\"t\"")
			}
			s.WriteString(",\"args\":{\"cycles\":" +
				strconv.FormatInt(int64(ev.at), 10))
			if ev.ph == 'X' {
				s.WriteString(",\"dur_cycles\":" +
					strconv.FormatInt(int64(ev.dur), 10))
			}
			s.WriteString("}}")
			emit(s.String())
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return []byte(b.String())
}

// --------------------------------------------------------------------
// Metrics registry
// --------------------------------------------------------------------

// Counter is a monotonically increasing count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n += n }

// Value reads the count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a point-in-time value.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v = v }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v }

// histBuckets is the number of power-of-two cycle buckets: bucket i
// counts observations v with 2^(i-1) < v <= 2^i (bucket 0: v <= 1), so
// 1<<i is a true upper bound on everything in bucket i.
const histBuckets = 40

// Histogram is a cycle-bucketed latency histogram with power-of-two
// bucket bounds — wide enough for one cycle to whole-second spans.
type Histogram struct {
	buckets  [histBuckets]uint64
	count    uint64
	sum      sim.Time
	min, max sim.Time
}

// Observe records one value.
func (h *Histogram) Observe(v sim.Time) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1)) // smallest i with v <= 1<<i
		if i > histBuckets-1 {
			i = histBuckets - 1
		}
	}
	h.buckets[i]++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the total of all observations, in cycles.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Min reports the smallest observation (0 if empty).
func (h *Histogram) Min() sim.Time { return h.min }

// Max reports the largest observation (0 if empty).
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from the
// bucket counts: the bound of the bucket in which the q-th observation
// falls. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			return sim.Time(1) << uint(i)
		}
	}
	return h.max
}

// Registry holds named metrics. Names are created on first use; Render
// iterates them sorted, so dumps are deterministic.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Names returns the sorted names of every metric of each kind.
func (r *Registry) Names() (counters, gauges, histograms []string) {
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return
}
