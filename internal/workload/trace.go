// Package workload defines the deterministic, seedable workload-trace
// format and its adversarial generators. A Trace is an open-loop arrival
// schedule: each event says *when* a client injects a message of *what
// size* into *which conversation*, independent of how the system is
// coping — the ATLAHS argument (PAPERS.md) is that exactly these
// application-centric schedules (heavy tails, flash crowds, incast) are
// where simulators diverge from reality, because a closed-loop workload
// politely slows down when the system saturates.
//
// Traces are replayed through the bench scale topology (see
// internal/bench/overload.go) and serialized through a versioned binary
// codec whose decoder is a fuzz target (FuzzTraceParse): traces may be
// generated off-line, stored, and replayed, so the parser must be hostile
// to malformed input.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Event is one open-loop arrival.
type Event struct {
	// AtUs is the scheduled injection time, microseconds from trace
	// start. Events are ordered by AtUs (ties broken by Client).
	AtUs float64
	// Client is the injecting endpoint's index in the fleet.
	Client int
	// Size is the message payload size in bytes.
	Size int
	// Conv is the conversation (relay queue) the message belongs to.
	Conv uint32
}

// Trace is a named, replayable arrival schedule.
type Trace struct {
	Name   string
	Events []Event
}

// Codec limits: a decoder accepting untrusted bytes must bound every
// dimension before allocating.
const (
	traceMagic   = "ASHW"
	traceVersion = 1

	// MaxName bounds the trace-name length.
	MaxName = 255
	// MaxEvents bounds the event count one trace may carry.
	MaxEvents = 1 << 20
	// MaxClient bounds client indices.
	MaxClient = 1 << 20
	// MaxSize bounds one event's payload size.
	MaxSize = 64 << 10
	// MaxAtUs bounds event times (about 11.5 simulated days).
	MaxAtUs = 1e12
)

const eventBytes = 8 + 4 + 4 + 4 // AtUs bits, client, size, conv

// Duration reports the last event's time (0 for an empty trace).
func (t *Trace) Duration() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].AtUs
}

// PerClient splits the schedule by client index, preserving order.
func (t *Trace) PerClient(clients int) [][]Event {
	out := make([][]Event, clients)
	for _, e := range t.Events {
		if e.Client < clients {
			out[e.Client] = append(out[e.Client], e)
		}
	}
	return out
}

// Encode serializes the trace:
//
//	"ASHW" | version u8 | nameLen u8 | name | count u32 |
//	count * (atUs f64-bits u64 | client u32 | size u32 | conv u32)
//
// all big-endian. Encode panics on traces that violate the codec limits
// (they are generator bugs, not data errors).
func (t *Trace) Encode() []byte {
	if err := t.validate(); err != nil {
		panic(fmt.Sprintf("workload: encoding invalid trace: %v", err))
	}
	b := make([]byte, 0, 4+1+1+len(t.Name)+4+len(t.Events)*eventBytes)
	b = append(b, traceMagic...)
	b = append(b, traceVersion, byte(len(t.Name)))
	b = append(b, t.Name...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.Events)))
	for _, e := range t.Events {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(e.AtUs))
		b = binary.BigEndian.AppendUint32(b, uint32(e.Client))
		b = binary.BigEndian.AppendUint32(b, uint32(e.Size))
		b = binary.BigEndian.AppendUint32(b, e.Conv)
	}
	return b
}

// Parse decodes an encoded trace, rejecting anything malformed: bad
// magic or version, oversized dimensions, non-finite or decreasing
// times, trailing garbage. Parse(Encode(t)) == t for every valid t.
func Parse(b []byte) (*Trace, error) {
	if len(b) < 4+1+1 {
		return nil, fmt.Errorf("workload: trace too short (%d bytes)", len(b))
	}
	if string(b[:4]) != traceMagic {
		return nil, fmt.Errorf("workload: bad magic %q", b[:4])
	}
	if b[4] != traceVersion {
		return nil, fmt.Errorf("workload: unsupported version %d", b[4])
	}
	nameLen := int(b[5])
	b = b[6:]
	if len(b) < nameLen+4 {
		return nil, fmt.Errorf("workload: truncated name/count")
	}
	name := string(b[:nameLen])
	count := binary.BigEndian.Uint32(b[nameLen : nameLen+4])
	b = b[nameLen+4:]
	if count > MaxEvents {
		return nil, fmt.Errorf("workload: %d events exceeds limit %d", count, MaxEvents)
	}
	if len(b) != int(count)*eventBytes {
		return nil, fmt.Errorf("workload: body is %d bytes, want %d", len(b), int(count)*eventBytes)
	}
	t := &Trace{Name: name}
	if count > 0 {
		t.Events = make([]Event, 0, count)
	}
	prev := -1.0
	for i := uint32(0); i < count; i++ {
		off := int(i) * eventBytes
		at := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		client := binary.BigEndian.Uint32(b[off+8:])
		size := binary.BigEndian.Uint32(b[off+12:])
		conv := binary.BigEndian.Uint32(b[off+16:])
		if math.IsNaN(at) || at < 0 || at > MaxAtUs {
			return nil, fmt.Errorf("workload: event %d: bad time %v", i, at)
		}
		if at < prev {
			return nil, fmt.Errorf("workload: event %d: time %v before %v", i, at, prev)
		}
		if client >= MaxClient {
			return nil, fmt.Errorf("workload: event %d: client %d out of range", i, client)
		}
		if size == 0 || size > MaxSize {
			return nil, fmt.Errorf("workload: event %d: size %d out of range", i, size)
		}
		prev = at
		t.Events = append(t.Events, Event{AtUs: at, Client: int(client), Size: int(size), Conv: conv})
	}
	return t, nil
}

// validate applies the codec limits to an in-memory trace.
func (t *Trace) validate() error {
	if len(t.Name) > MaxName {
		return fmt.Errorf("name of %d bytes", len(t.Name))
	}
	if len(t.Events) > MaxEvents {
		return fmt.Errorf("%d events", len(t.Events))
	}
	prev := -1.0
	for i, e := range t.Events {
		switch {
		case math.IsNaN(e.AtUs) || e.AtUs < 0 || e.AtUs > MaxAtUs:
			return fmt.Errorf("event %d: bad time %v", i, e.AtUs)
		case e.AtUs < prev:
			return fmt.Errorf("event %d: time goes backwards", i)
		case e.Client < 0 || e.Client >= MaxClient:
			return fmt.Errorf("event %d: client %d", i, e.Client)
		case e.Size <= 0 || e.Size > MaxSize:
			return fmt.Errorf("event %d: size %d", i, e.Size)
		}
		prev = e.AtUs
	}
	return nil
}
