package workload

import "testing"

// FuzzTraceParse hammers the trace decoder with arbitrary bytes. Parse
// must never panic, and anything it accepts must satisfy the codec
// invariants and round-trip bit-exactly through Encode — the property
// that makes stored traces a safe interchange format.
func FuzzTraceParse(f *testing.F) {
	// Seed corpus: every generator's output plus the empty and minimal
	// traces (the committed files under testdata/fuzz add mutations).
	spec := Spec{Clients: 4, Events: 32, MeanGapUs: 50, Size: 128, MaxSize: 2048}
	for _, g := range Generators() {
		f.Add(g.Gen(1, spec).Encode())
	}
	f.Add((&Trace{}).Encode())
	f.Add((&Trace{Name: "x", Events: []Event{{AtUs: 0, Client: 0, Size: 1}}}).Encode())
	f.Add([]byte("ASHW"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(data)
		if err != nil {
			return
		}
		if err := tr.validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		enc := tr.Encode()
		tr2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse of re-encoding failed: %v", err)
		}
		if tr2.Name != tr.Name || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed shape")
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
