package workload

import (
	"math"
	"testing"
)

var testSpec = Spec{Clients: 8, Events: 500, MeanGapUs: 40, Size: 256, MaxSize: 4096}

// TestGeneratorsDeterministic: equal (seed, spec) pairs yield equal
// traces; distinct seeds yield distinct schedules.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Generators() {
		a := g.Gen(7, testSpec)
		b := g.Gen(7, testSpec)
		if len(a.Events) != len(b.Events) {
			t.Fatalf("%s: reruns differ in length: %d vs %d", g.Name, len(a.Events), len(b.Events))
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("%s: event %d differs across reruns", g.Name, i)
			}
		}
		c := g.Gen(8, testSpec)
		same := len(a.Events) == len(c.Events)
		if same {
			for i := range a.Events {
				if a.Events[i] != c.Events[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical traces", g.Name)
		}
	}
}

// TestGeneratorsWellFormed: every generator's output passes the codec
// validation (ordered times, bounded sizes and clients) and keeps
// clients inside the fleet.
func TestGeneratorsWellFormed(t *testing.T) {
	for _, g := range Generators() {
		tr := g.Gen(3, testSpec)
		if len(tr.Events) == 0 {
			t.Fatalf("%s: empty trace", g.Name)
		}
		if err := tr.validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", g.Name, err)
		}
		for i, e := range tr.Events {
			if e.Client < 0 || e.Client >= testSpec.Clients {
				t.Fatalf("%s: event %d: client %d outside fleet", g.Name, i, e.Client)
			}
			if e.Conv != uint32(e.Client) {
				t.Fatalf("%s: event %d: conv %d != client %d", g.Name, i, e.Conv, e.Client)
			}
		}
	}
}

// TestGeneratorShapes spot-checks each generator's defining property.
func TestGeneratorShapes(t *testing.T) {
	// Incast: exactly Clients events share each wave instant.
	in := Incast(1, testSpec)
	waves := map[float64]int{}
	for _, e := range in.Events {
		waves[e.AtUs]++
	}
	for at, n := range waves {
		if n != testSpec.Clients {
			t.Fatalf("incast: wave at %v has %d arrivals, want %d", at, n, testSpec.Clients)
		}
	}

	// HeavyTail: sizes spread beyond the mean; at least one big outlier.
	ht := HeavyTail(1, testSpec)
	maxSize := 0
	for _, e := range ht.Events {
		if e.Size > maxSize {
			maxSize = e.Size
		}
		if e.Size < testSpec.Size || e.Size > testSpec.MaxSize {
			t.Fatalf("heavytail: size %d outside [%d, %d]", e.Size, testSpec.Size, testSpec.MaxSize)
		}
	}
	if maxSize < 4*testSpec.Size {
		t.Fatalf("heavytail: max size %d shows no tail", maxSize)
	}

	// FlashCrowd: the crowd window (same formula as the generator) holds
	// far more than its share of arrivals.
	fc := FlashCrowd(1, testSpec)
	span := float64(testSpec.Events) * testSpec.MeanGapUs / 2
	var inWin int
	for _, e := range fc.Events {
		if e.AtUs >= span/3 && e.AtUs < span/2 {
			inWin++
		}
	}
	winFrac := float64(inWin) / float64(len(fc.Events))
	if winFrac < 0.3 {
		t.Fatalf("flashcrowd: only %.0f%% of arrivals in the crowd window", 100*winFrac)
	}
}

// TestEncodeParseRoundTrip: Parse(Encode(t)) == t, including float bits.
func TestEncodeParseRoundTrip(t *testing.T) {
	for _, g := range Generators() {
		tr := g.Gen(5, testSpec)
		got, err := Parse(tr.Encode())
		if err != nil {
			t.Fatalf("%s: parse: %v", g.Name, err)
		}
		if got.Name != tr.Name || len(got.Events) != len(tr.Events) {
			t.Fatalf("%s: round trip changed shape", g.Name)
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				t.Fatalf("%s: event %d changed in round trip", g.Name, i)
			}
		}
	}
}

// TestParseRejects enumerates malformed encodings the decoder must turn
// away: each one is a real hazard for a parser fed stored trace files.
func TestParseRejects(t *testing.T) {
	// Unnamed single-event trace: header 6 bytes, count at [6:10], the
	// event's time/client/size fields at 10/18/22.
	valid := (&Trace{Events: []Event{{AtUs: 1, Client: 0, Size: 8}}}).Encode()
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mutate(func(b []byte) []byte { b[4] = 9; return b }),
		"truncated":   valid[:len(valid)-3],
		"trailing":    append(append([]byte(nil), valid...), 0),
		"nan time": mutate(func(b []byte) []byte {
			putU64(b[10:], math.Float64bits(math.NaN()))
			return b
		}),
		"negative time": mutate(func(b []byte) []byte {
			putU64(b[10:], math.Float64bits(-1))
			return b
		}),
		"zero size": mutate(func(b []byte) []byte {
			b[22], b[23], b[24], b[25] = 0, 0, 0, 0
			return b
		}),
	}
	for name, enc := range cases {
		if _, err := Parse(enc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Decreasing times.
	enc := (&Trace{Events: []Event{{AtUs: 5, Size: 8}, {AtUs: 5, Size: 8}}}).Encode()
	putU64(enc[10+eventBytes:], math.Float64bits(4))
	if _, err := Parse(enc); err == nil {
		t.Errorf("decreasing times accepted")
	}
}

// TestPerClient: the split preserves per-client order and drops nothing
// inside the fleet.
func TestPerClient(t *testing.T) {
	tr := Poisson(2, testSpec)
	per := tr.PerClient(testSpec.Clients)
	total := 0
	for c, evs := range per {
		prev := -1.0
		for _, e := range evs {
			if e.Client != c {
				t.Fatalf("client %d got event for %d", c, e.Client)
			}
			if e.AtUs < prev {
				t.Fatalf("client %d: order broken", c)
			}
			prev = e.AtUs
		}
		total += len(evs)
	}
	if total != len(tr.Events) {
		t.Fatalf("split lost events: %d of %d", total, len(tr.Events))
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
