package workload

import (
	"math"
	"sort"

	"ashs/internal/sim"
)

// Spec parameterizes a generator. All generators are open-loop: arrival
// times come from the spec's rate, never from the system under test.
type Spec struct {
	// Clients is the fleet size; events carry client indices [0, Clients).
	Clients int
	// Events is the total number of arrivals to generate.
	Events int
	// MeanGapUs is the mean inter-arrival gap across the whole fleet, in
	// microseconds: the offered load is 1/MeanGapUs msgs/us. Halving it
	// doubles the load, which is how the overload matrix drives the
	// system past saturation.
	MeanGapUs float64
	// Size is the payload size (the mean, for heavy-tailed sizes).
	Size int
	// MaxSize bounds heavy-tailed payloads (0 = 16*Size).
	MaxSize int
}

// Generator names one arrival-schedule shape.
type Generator struct {
	Name string
	// Gen builds a trace from a seed; equal (seed, spec) pairs yield
	// equal traces.
	Gen func(seed int64, s Spec) *Trace
}

// Generators returns the adversarial shapes in presentation order.
func Generators() []Generator {
	return []Generator{
		{"poisson", Poisson},
		{"mmpp", MMPP},
		{"heavytail", HeavyTail},
		{"flashcrowd", FlashCrowd},
		{"incast", Incast},
	}
}

// expGap draws an exponential inter-arrival gap with the given mean.
func expGap(rng *sim.Rand, meanUs float64) float64 {
	// -mean * ln(1-u); u in [0,1) keeps the argument in (0,1].
	return -meanUs * math.Log(1-rng.Float64())
}

// finish orders events by (time, client) and stamps each one's
// conversation with its client index — one conversation per client, the
// relay workload's natural keying.
func finish(name string, evs []Event) *Trace {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].AtUs != evs[j].AtUs {
			return evs[i].AtUs < evs[j].AtUs
		}
		return evs[i].Client < evs[j].Client
	})
	for i := range evs {
		evs[i].Conv = uint32(evs[i].Client)
	}
	return &Trace{Name: name, Events: evs}
}

// Poisson is the memoryless open-loop baseline: exponential fleet-wide
// gaps, arrivals assigned to uniformly random clients, fixed sizes.
func Poisson(seed int64, s Spec) *Trace {
	rng := sim.NewRand(seed)
	evs := make([]Event, 0, s.Events)
	at := 0.0
	for i := 0; i < s.Events; i++ {
		at += expGap(rng, s.MeanGapUs)
		evs = append(evs, Event{AtUs: at, Client: rng.Intn(s.Clients), Size: s.Size})
	}
	return finish("poisson", evs)
}

// MMPP is a two-state Markov-modulated Poisson process: a quiet state at
// the spec rate and a burst state at 8x, with exponential dwell times.
// The long-run load exceeds the spec's, concentrated into bursts — the
// bursty request/response shape that defeats average-rate provisioning.
func MMPP(seed int64, s Spec) *Trace {
	const burstFactor = 8
	rng := sim.NewRand(seed)
	evs := make([]Event, 0, s.Events)
	at := 0.0
	burst := false
	// Dwell long enough for each state to admit several arrivals.
	dwellEnd := expGap(rng, 20*s.MeanGapUs)
	for i := 0; i < s.Events; i++ {
		gap := s.MeanGapUs
		if burst {
			gap /= burstFactor
		}
		at += expGap(rng, gap)
		for at > dwellEnd {
			burst = !burst
			dwellEnd += expGap(rng, 20*s.MeanGapUs)
		}
		evs = append(evs, Event{AtUs: at, Client: rng.Intn(s.Clients), Size: s.Size})
	}
	return finish("mmpp", evs)
}

// HeavyTail keeps Poisson arrivals but draws sizes from a bounded Pareto
// (alpha 1.2) between Size and MaxSize: most messages are small, a few
// are enormous, and the big ones monopolize handler cycles — the
// heavy-tailed service-time distribution behind most tail-latency pain.
func HeavyTail(seed int64, s Spec) *Trace {
	const alpha = 1.2
	rng := sim.NewRand(seed)
	lo, hi := float64(s.Size), float64(s.MaxSize)
	if hi <= lo {
		hi = 16 * lo
	}
	evs := make([]Event, 0, s.Events)
	at := 0.0
	for i := 0; i < s.Events; i++ {
		at += expGap(rng, s.MeanGapUs)
		// Inverse-CDF bounded Pareto.
		u := rng.Float64()
		la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
		size := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
		if size > hi {
			size = hi
		}
		evs = append(evs, Event{AtUs: at, Client: rng.Intn(s.Clients), Size: int(size)})
	}
	return finish("heavytail", evs)
}

// FlashCrowd runs at the spec rate, except for a window in the middle
// third of the schedule where the rate jumps 10x — the thundering-herd
// arrival of a link going viral, hitting a system provisioned for the
// shoulder load.
func FlashCrowd(seed int64, s Spec) *Trace {
	const crowd = 10
	rng := sim.NewRand(seed)
	// Total quiet+crowd schedule spans roughly Events*MeanGapUs/2.
	span := float64(s.Events) * s.MeanGapUs / 2
	crowdStart, crowdEnd := span/3, span/2
	evs := make([]Event, 0, s.Events)
	at := 0.0
	for i := 0; i < s.Events; i++ {
		gap := s.MeanGapUs
		if at >= crowdStart && at < crowdEnd {
			gap /= crowd
		}
		at += expGap(rng, gap)
		evs = append(evs, Event{AtUs: at, Client: rng.Intn(s.Clients), Size: s.Size})
	}
	return finish("flashcrowd", evs)
}

// Incast fires the whole fleet at once: waves in which every client
// injects one message at the same instant (the storage/partition-
// aggregate fan-in), spaced by the recovery gap the spec's rate implies.
// Without jittered backoff, the retries of a clipped wave re-collide.
func Incast(seed int64, s Spec) *Trace {
	rng := sim.NewRand(seed)
	waves := s.Events / s.Clients
	if waves == 0 {
		waves = 1
	}
	waveGap := s.MeanGapUs * float64(s.Clients)
	evs := make([]Event, 0, waves*s.Clients)
	at := 0.0
	for w := 0; w < waves; w++ {
		at += expGap(rng, waveGap)
		for c := 0; c < s.Clients; c++ {
			evs = append(evs, Event{AtUs: at, Client: c, Size: s.Size})
		}
	}
	return finish("incast", evs)
}
