package mach

import "ashs/internal/sim"

// Cache simulates the DECstation's direct-mapped write-through data cache.
// It tracks only tags (the simulated memory's contents live elsewhere); its
// job is to charge the right number of cycles for each access pattern.
//
// Addresses are virtual addresses in the simulated machine's address space.
// Write-through with no write-allocate: stores cost StoreCycles and never
// fill lines, but they update a line that already holds the address.
type Cache struct {
	p     *Profile
	tags  []uint32 // tag per line index; tagInvalid when empty
	lines int
	// Statistics.
	Hits, Misses, Stores uint64
}

const tagInvalid = ^uint32(0)

// NewCache returns an empty cache for profile p.
func NewCache(p *Profile) *Cache {
	lines := p.CacheBytes / p.LineBytes
	c := &Cache{p: p, lines: lines, tags: make([]uint32, lines)}
	c.Flush()
	return c
}

// Flush invalidates the entire cache (the paper flushes between benchmark
// iterations to model a message that arrives uncached).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
}

// FlushRange invalidates all lines covering [addr, addr+n) — e.g. the
// software cache flush the AN2 driver performs after a DMA.
func (c *Cache) FlushRange(addr uint32, n int) {
	if n <= 0 {
		return
	}
	lb := uint32(c.p.LineBytes)
	first := addr / lb
	last := (addr + uint32(n) - 1) / lb
	for ln := first; ln <= last; ln++ {
		idx := int(ln) % c.lines
		if c.tags[idx] == ln {
			c.tags[idx] = tagInvalid
		}
	}
}

// lineOf returns the line number (address / line size).
func (c *Cache) lineOf(addr uint32) uint32 { return addr / uint32(c.p.LineBytes) }

// Load charges one 32-bit load at addr and returns its cost in cycles.
func (c *Cache) Load(addr uint32) sim.Time {
	ln := c.lineOf(addr)
	idx := int(ln) % c.lines
	if c.tags[idx] == ln {
		c.Hits++
		return sim.Time(c.p.LoadHit)
	}
	c.Misses++
	c.tags[idx] = ln
	return sim.Time(c.p.LoadHit + c.p.MissPenalty)
}

// Store charges one 32-bit store at addr. The model is write-through with
// write-validate: the store goes to the write buffer at a fixed cost and
// the line is marked valid without a fetch, so freshly written buffers
// read back as cached — the behaviour Table III's "data in the cache for
// the second copy" case depends on.
func (c *Cache) Store(addr uint32) sim.Time {
	c.Stores++
	ln := c.lineOf(addr)
	c.tags[int(ln)%c.lines] = ln
	return sim.Time(c.p.StoreCycles)
}

// LoadRange charges a streaming word-by-word read of [addr, addr+n).
func (c *Cache) LoadRange(addr uint32, n int) sim.Time {
	var t sim.Time
	for off := 0; off < n; off += 4 {
		t += c.Load(addr + uint32(off))
	}
	return t
}

// StoreRange charges a streaming word-by-word write of [addr, addr+n).
func (c *Cache) StoreRange(addr uint32, n int) sim.Time {
	var t sim.Time
	for off := 0; off < n; off += 4 {
		t += c.Store(addr + uint32(off))
	}
	return t
}

// Warm marks [addr, addr+n) resident without charging cycles (for setting
// up "cached" experimental conditions).
func (c *Cache) Warm(addr uint32, n int) {
	if n <= 0 {
		return
	}
	first := c.lineOf(addr)
	last := c.lineOf(addr + uint32(n) - 1)
	for ln := first; ln <= last; ln++ {
		c.tags[int(ln)%c.lines] = ln
	}
}

// Resident reports whether the line containing addr is cached.
func (c *Cache) Resident(addr uint32) bool {
	ln := c.lineOf(addr)
	return c.tags[int(ln)%c.lines] == ln
}
