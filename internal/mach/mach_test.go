package mach

import (
	"testing"
	"testing/quick"

	"ashs/internal/sim"
)

func TestCyclesUsRoundTrip(t *testing.T) {
	p := DS5000_240()
	if got := p.Cycles(1); got != 40 {
		t.Fatalf("Cycles(1us) = %d, want 40", got)
	}
	if got := p.Us(40); got != 1 {
		t.Fatalf("Us(40) = %v, want 1", got)
	}
	if got := p.Us(p.Cycles(96)); got != 96 {
		t.Fatalf("round trip 96us = %v", got)
	}
}

func TestMBps(t *testing.T) {
	p := DS5000_240()
	// 4096 bytes in 8192 cycles (204.8us) = 20 MB/s: the calibration anchor
	// for Table III's single-copy row.
	got := p.MBps(4096, 8192)
	if got < 19.99 || got > 20.01 {
		t.Fatalf("MBps = %v, want 20", got)
	}
}

func TestLoadMissAvg(t *testing.T) {
	p := DS5000_240()
	if got := p.LoadMissAvg(); got != 4 {
		t.Fatalf("LoadMissAvg = %d, want 4 (1 issue + 12/4 amortized miss)", got)
	}
}

func TestCacheColdLoadsMissOncePerLine(t *testing.T) {
	p := DS5000_240()
	c := NewCache(p)
	cost := c.LoadRange(0x1000, 4096)
	// 256 lines: each misses once (1+12) then 3 hits (1 each) = 16/line.
	want := int64(256 * 16)
	if int64(cost) != want {
		t.Fatalf("cold LoadRange cost = %d, want %d", cost, want)
	}
	if c.Misses != 256 || c.Hits != 768 {
		t.Fatalf("misses=%d hits=%d, want 256/768", c.Misses, c.Hits)
	}
}

func TestCacheWarmLoadsAllHit(t *testing.T) {
	p := DS5000_240()
	c := NewCache(p)
	c.LoadRange(0x1000, 4096)
	c.Misses, c.Hits = 0, 0
	cost := c.LoadRange(0x1000, 4096)
	if int64(cost) != 1024 {
		t.Fatalf("warm LoadRange cost = %d, want 1024", cost)
	}
	if c.Misses != 0 {
		t.Fatalf("warm loads missed %d times", c.Misses)
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	p := DS5000_240()
	c := NewCache(p)
	// Two addresses 64KB apart map to the same line in a 64KB cache.
	c.Load(0x0000)
	if !c.Resident(0x0000) {
		t.Fatal("line not resident after load")
	}
	c.Load(0x10000)
	if c.Resident(0x0000) {
		t.Fatal("conflicting line did not evict")
	}
	if !c.Resident(0x10000) {
		t.Fatal("new line not resident")
	}
}

func TestCacheStoresWriteValidate(t *testing.T) {
	p := DS5000_240()
	c := NewCache(p)
	cost := c.Store(0x2000)
	if int(cost) != p.StoreCycles {
		t.Fatalf("store cost = %d, want %d", cost, p.StoreCycles)
	}
	// Write-validate: the stored line reads back as cached.
	if !c.Resident(0x2000) {
		t.Fatal("store did not validate the line")
	}
	// A store does not evict an unrelated resident line.
	c.Load(0x3000)
	c.Store(0x3000)
	if !c.Resident(0x3000) {
		t.Fatal("store evicted a resident line")
	}
}

func TestFlushRange(t *testing.T) {
	p := DS5000_240()
	c := NewCache(p)
	c.Warm(0x1000, 256)
	c.FlushRange(0x1000, 256)
	for off := uint32(0); off < 256; off += 16 {
		if c.Resident(0x1000 + off) {
			t.Fatalf("line at +%d still resident after FlushRange", off)
		}
	}
}

func TestFlushRangePartialDoesNotTouchNeighbors(t *testing.T) {
	p := DS5000_240()
	c := NewCache(p)
	c.Warm(0x1000, 64)
	c.FlushRange(0x1010, 16) // exactly one line
	if c.Resident(0x1010) {
		t.Fatal("flushed line resident")
	}
	if !c.Resident(0x1000) || !c.Resident(0x1020) {
		t.Fatal("neighbor lines were flushed")
	}
}

func TestWarmMatchesLoadResidency(t *testing.T) {
	p := DS5000_240()
	err := quick.Check(func(addr uint32, n uint16) bool {
		addr &= 0x00fffffc // word aligned
		size := (int(n%4096) + 4) &^ 3
		a := NewCache(p)
		b := NewCache(p)
		a.Warm(addr, size)
		b.LoadRange(addr, size)
		for off := 0; off < size; off += 4 {
			if a.Resident(addr+uint32(off)) != b.Resident(addr+uint32(off)) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationSingleCopy(t *testing.T) {
	// The DESIGN.md §4 anchor: an uncached word-copy loop of 4096 bytes
	// should cost 8 cycles/word -> 20 MB/s.
	p := DS5000_240()
	c := NewCache(p)
	var cost int64
	// Conflict-free placement (distinct modulo the 64-KB cache).
	src, dst := uint32(0x10000), uint32(0x24000)
	for off := 0; off < 4096; off += 4 {
		cost += int64(c.Load(src + uint32(off)))
		cost += int64(c.Store(dst + uint32(off)))
		cost += int64(p.LoopOverhead)
	}
	mbps := p.MBps(4096, sim.Time(cost))
	if mbps < 19 || mbps > 21 {
		t.Fatalf("single copy = %.2f MB/s, want ~20", mbps)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := DS5000_240()
	q := p.Clone()
	q.MHz = 66
	if p.MHz != 40 {
		t.Fatal("Clone shares storage with original")
	}
}
