// Package mach models the machine on which the paper's measurements were
// taken: a 40-MHz MIPS DECstation 5000/240 with separate direct-mapped
// write-through 64-kbyte instruction and data caches.
//
// Everything in this repository that claims to take time does so by charging
// cycles derived from a Profile. The Profile's memory-cost constants are
// calibrated against the paper's *base* measurements (Table I raw latency
// and Table III single-copy throughput); the result tables are then
// regenerated, not transcribed (see DESIGN.md §4).
package mach

import "ashs/internal/sim"

// Profile describes the simulated machine: its clock rate, its memory
// system costs, and the costs of the operating-system primitives measured
// in the paper.
type Profile struct {
	Name string
	MHz  int // CPU clock in megahertz

	// Data-cache geometry (direct-mapped, write-through, no write-allocate).
	CacheBytes int // total data cache size
	LineBytes  int // cache line size

	// Memory access costs, in cycles.
	LoadHit     int // load hitting the cache, per word
	MissPenalty int // additional cycles to fill one line from memory
	StoreCycles int // write-through store, per word (write buffer)

	// ALU / loop costs, in cycles per 32-bit word.
	LoopOverhead int // index update + branch in a data loop
	ALUOp        int // plain register-register operation
	CksumOp      int // Internet checksum accumulate (add + carry fixup)
	BswapOp      int // byte swap (byte extract/insert on MIPS)

	// Operating-system primitive costs, in cycles. Aegis kernel crossings
	// are very fast (the paper: 5x better than the best in the literature);
	// Ultrix-class systems pay roughly an order of magnitude more. The
	// values are calibrated so that composed paths reproduce the paper's
	// *base* measurements (Table I), and the result tables then emerge.
	SyscallCycles       int // full system call interface: protected entry, argument marshalling, exit
	CrossingCycles      int // one kernel<->user protection boundary crossing
	CtxSwitchCycles     int // full context switch to an unscheduled application
	AddrSpaceSwitch     int // address-space switch only (Liedtke-style upcall)
	InterruptCycles     int // take a device interrupt, save state
	SchedDecision       int // pick next process to run
	TimerArmCycles      int // set up or clear the ASH watchdog timer (~1us each, Section III-B3)
	ASHDispatch         int // install ctx id + page-table pointer, enter handler on user stack
	UpcallDispatch      int // post + enter an asynchronous (batched) upcall at user level
	RingPollCycles      int // inspect the shared notification ring once
	RingUpdateCycles    int // kernel writes a notification ring entry
	BufferMgmtCycles    int // replace a receive buffer from user space (incl. its syscall)
	DeviceTxSetup       int // program the NIC for a transmit (per packet)
	DeviceRxService     int // driver work per received packet (incl. software cache flush)
	KernelPollCycles    int // in-kernel descriptor poll-detect (hardwired kernel path)
	DemuxPFCycles       int // packet-filter demultiplex decision (DPF, compiled)
	DemuxVCCycles       int // ATM virtual-circuit demultiplex decision
	QuantumCycles       int // scheduler time slice
	ClockTickCycles     int // period of the system clock interrupt ("one tick")
	UltrixExtraCrossing int // extra wake-path cost of an Ultrix-class kernel over Aegis
}

// DS5000_240 returns the calibrated DECstation 5000/240 profile used by all
// experiments. Do not mutate the returned value; call Clone for variants.
func DS5000_240() *Profile {
	p := &Profile{
		Name:       "DECstation 5000/240 (40 MHz R3400)",
		MHz:        40,
		CacheBytes: 64 * 1024,
		LineBytes:  16,

		LoadHit:     1,
		MissPenalty: 12, // per 16-byte line: avg 4 cycles/word uncached
		StoreCycles: 2,

		LoopOverhead: 2,
		ALUOp:        1,
		CksumOp:      3, // addu + sltu + addu
		BswapOp:      8, // srl/sll/andi/or chains

		SyscallCycles:    720,        // 18 us: full system call interface (calibrated, Table I)
		CrossingCycles:   40,         // 1 us: Aegis protected crossing
		CtxSwitchCycles:  2400,       // 60 us: full context switch to an application (Section V-C)
		AddrSpaceSwitch:  80,         // 2 us
		InterruptCycles:  40,         // 1 us: Aegis interrupt entry (5x faster than the literature)
		SchedDecision:    80,         // 2 us
		TimerArmCycles:   40,         // ~1 us each (paper, Section III-B3)
		ASHDispatch:      16,         // 0.4 us: install ctx id + page-table pointer
		UpcallDispatch:   1010,       // 25.25 us: batched, unoptimized upcall machinery (Section V-B)
		RingPollCycles:   60,         // 1.5 us
		RingUpdateCycles: 80,         // 2 us
		BufferMgmtCycles: 600,        // 15 us: replace DMA buffer, incl. its system call
		DeviceTxSetup:    100,        // 2.5 us: write descriptors to the board
		DeviceRxService:  100,        // 2.5 us: driver + software cache flush
		KernelPollCycles: 120,        // 3 us: hardwired kernel poll loop detect
		DemuxPFCycles:    60,         // 1.5 us: compiled DPF filter
		DemuxVCCycles:    20,         // 0.5 us: VC index lookup
		QuantumCycles:    40 * 15625, // 15.625 ms (64 Hz round-robin slice)
		ClockTickCycles:  40 * 15625, // one clock tick (64 Hz)

		UltrixExtraCrossing: 1200, // 30 us: exception + syscall re-entry on the wake path
	}
	return p
}

// Clone returns a copy of the profile for experiment-specific variation.
func (p *Profile) Clone() *Profile {
	q := *p
	return &q
}

// Cycles converts a duration in microseconds to cycles.
func (p *Profile) Cycles(us float64) sim.Time {
	return sim.Time(us*float64(p.MHz) + 0.5)
}

// Us converts cycles to microseconds.
func (p *Profile) Us(c sim.Time) float64 {
	return float64(c) / float64(p.MHz)
}

// MBps converts (bytes moved, cycles taken) into megabytes per second.
func (p *Profile) MBps(bytes int, c sim.Time) float64 {
	if c == 0 {
		return 0
	}
	us := p.Us(c)
	return float64(bytes) / us // bytes/us == MB/s
}

// WordsPerLine reports 32-bit words per cache line.
func (p *Profile) WordsPerLine() int { return p.LineBytes / 4 }

// LoadMissAvg reports the average per-word cost of streaming uncached loads
// (issue cost plus the line miss amortized over the line's words).
func (p *Profile) LoadMissAvg() int {
	return p.LoadHit + p.MissPenalty/p.WordsPerLine()
}
