package sim

import (
	"testing"
)

// splitmix64 gives the tests a deterministic stream without touching any
// global PRNG (the determinism analyzer forbids those in this tree).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4490885eb327
	return z ^ (z >> 31)
}

// TestCalendarMatchesHeap drives the calendar queue and the reference
// heap through an identical randomized schedule — bursty inserts, far
// deadlines, cancellations — and requires identical pop sequences. The
// calendar's resizing and year-window scanning must never reorder
// (at, seq) ties.
func TestCalendarMatchesHeap(t *testing.T) {
	rng := splitmix64(12345)
	cal := NewCalendarQueue()
	ref := NewHeapQueue()
	var calLive, refLive []*Event
	seq := uint64(0)
	floor := Time(0)

	newPair := func(at Time) {
		a := &Event{at: at, seq: seq}
		b := &Event{at: at, seq: seq}
		seq++
		cal.Insert(a)
		ref.Insert(b)
		calLive = append(calLive, a)
		refLive = append(refLive, b)
	}
	popBoth := func() {
		a, b := cal.PopMin(), ref.PopMin()
		if (a == nil) != (b == nil) {
			t.Fatalf("pop mismatch: calendar %v, heap %v", a, b)
		}
		if a == nil {
			return
		}
		if a.at != b.at || a.seq != b.seq {
			t.Fatalf("pop order diverged: calendar (%d,%d) vs heap (%d,%d)", a.at, a.seq, b.at, b.seq)
		}
		if a.at < floor {
			t.Fatalf("calendar popped %d below floor %d", a.at, floor)
		}
		floor = a.at
		for i, ev := range calLive {
			if ev == a {
				calLive = append(calLive[:i], calLive[i+1:]...)
				refLive = append(refLive[:i], refLive[i+1:]...)
				break
			}
		}
	}

	for op := 0; op < 20000; op++ {
		switch r := rng.next(); {
		case r%100 < 55: // insert, biased near the floor
			at := floor + Time(rng.next()%512)
			if r%1000 < 30 {
				at = floor + Time(rng.next()%1_000_000) // far deadline
			}
			newPair(at)
			// Equal-time burst half the time.
			if r%2 == 0 {
				newPair(at)
			}
		case r%100 < 85:
			popBoth()
		default: // cancel a random live event from both queues
			if len(calLive) == 0 {
				continue
			}
			i := int(rng.next() % uint64(len(calLive)))
			cal.Remove(calLive[i])
			ref.Remove(refLive[i])
			calLive = append(calLive[:i], calLive[i+1:]...)
			refLive = append(refLive[:i], refLive[i+1:]...)
		}
		if cal.Len() != ref.Len() {
			t.Fatalf("length diverged: calendar %d vs heap %d", cal.Len(), ref.Len())
		}
	}
	for cal.Len() > 0 {
		popBoth()
	}
}

// TestEngineOnHeapQueueEquivalent runs the same simulation on both queue
// implementations and checks the traces match.
func TestEngineOnHeapQueueEquivalent(t *testing.T) {
	run := func(e *Engine) []Time {
		var trace []Time
		rng := splitmix64(7)
		var tick func()
		n := 0
		tick = func() {
			trace = append(trace, e.Now())
			n++
			if n < 500 {
				e.Schedule(Time(rng.next()%97), tick)
				if n%3 == 0 {
					tm := e.Schedule(Time(rng.next()%29), func() { trace = append(trace, -e.Now()) })
					if n%6 == 0 {
						e.Cancel(tm)
					}
				}
			}
		}
		e.Schedule(0, tick)
		e.Run()
		return trace
	}
	a := run(NewEngine())
	b := run(NewEngineWithQueue(NewHeapQueue()))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestCancelStaleTimer pins the generation check: once an event fires,
// its recycled Event may carry an unrelated callback, and cancelling the
// old Timer must not touch it.
func TestCancelStaleTimer(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1, func() {})
	e.Run()
	fired := false
	fresh := e.Schedule(1, func() { fired = true })
	if stale.ev != fresh.ev {
		t.Fatalf("freelist did not recycle the fired event")
	}
	e.Cancel(stale) // refers to the previous life; must be a no-op
	e.Run()
	if !fired {
		t.Fatal("cancelling a stale Timer killed a recycled event")
	}
	e.Cancel(Timer{}) // zero Timer is inert
}

// TestScheduleSteadyStateZeroAlloc pins the tentpole claim: a
// self-rescheduling event at steady queue depth costs zero heap
// allocations per cycle.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		e.Schedule(3, tick)
	}
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), tick)
	}
	e.RunFor(1000) // warm the freelist and settle calendar size
	allocs := testing.AllocsPerRun(100, func() {
		e.RunFor(30)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f/op, want 0", allocs)
	}
}

// TestScheduleArgAvoidsClosure checks the argument-carrying variant
// delivers its argument and interleaves with plain events in seq order.
func TestScheduleArgAvoidsClosure(t *testing.T) {
	e := NewEngine()
	var got []int
	push := func(a any) { got = append(got, a.(int)) }
	e.ScheduleArg(5, push, 1)
	e.Schedule(5, func() { got = append(got, 2) })
	e.ScheduleArgAt(5, push, 3)
	tm := e.ScheduleArg(5, push, 99)
	e.Cancel(tm)
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestCalendarSparseFallback exercises the out-of-year scan: a handful
// of events spread across an enormous time range.
func TestCalendarSparseFallback(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{1 << 40, 3, 1 << 20, 70, 1 << 30} {
		at := at
		e.ScheduleAt(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{3, 70, 1 << 20, 1 << 30, 1 << 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sparse order = %v, want %v", got, want)
		}
	}
}
