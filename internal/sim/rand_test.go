package sim

import (
	"math"
	"testing"
)

// Equal seeds must yield equal streams — the whole fault plane's replay
// story rests on this.
func TestRandStreamEquality(t *testing.T) {
	a, b := NewRand(12345), NewRand(12345)
	for i := 0; i < 10000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %#x != %#x", i, av, bv)
		}
	}
	c := NewRand(12346)
	same := 0
	a = NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide on %d/1000 draws", same)
	}
}

// Intn must be uniform. With the old modulo construction this passes for
// power-of-two n but the chi-squared check below would catch gross bias;
// the targeted regression is TestIntnNoModuloBias.
func TestIntnDistribution(t *testing.T) {
	r := NewRand(7)
	const n, draws = 13, 130000
	var counts [n]int
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	exp := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// 12 degrees of freedom; 99.9th percentile is ~32.9.
	if chi2 > 40 {
		t.Fatalf("Intn(%d) chi-squared %.1f, expected < 40", n, chi2)
	}
}

// Regression for the modulo-bias bug: with rejection sampling the map
// from accepted 64-bit draws to [0, n) is exactly balanced. Simulate the
// generator on a crafted n where the bias of `Uint64() % n` is extreme
// and check the top of the range is still reachable and roughly uniform
// at the halves.
func TestIntnNoModuloBias(t *testing.T) {
	// n = 3*2^61. Under the old `Uint64() % n` scheme, residues below
	// 2^62 are hit by 3 of the 2^64 inputs each and residues above by
	// only 2, which puts just 43.75% of the mass in the top half of the
	// range. Rejection sampling restores exactly 50%.
	n := 3 << 61
	r := NewRand(99)
	const draws = 100000
	top := 0
	for i := 0; i < draws; i++ {
		if r.Intn(n) >= n/2 {
			top++
		}
	}
	frac := float64(top) / draws
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("Intn(3*2^61): top-half fraction %.4f, want ~0.5 "+
			"(modulo bias would give ~0.4375)", frac)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestProbFrequency(t *testing.T) {
	r := NewRand(11)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Prob(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Prob(0.25) fired %.4f of the time", frac)
	}
	if r.Prob(1.1) != true {
		t.Fatal("Prob(>1) should always fire")
	}
}

// The documented contract: Prob(p <= 0) never fires AND consumes no
// state, so a schedule with a fault class disabled draws identically to
// one that omits the class entirely.
func TestProbZeroConsumesNoState(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Prob(0) {
			t.Fatal("Prob(0) fired")
		}
		if a.Prob(-1) {
			t.Fatal("Prob(-1) fired")
		}
	}
	for i := 0; i < 50; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged after Prob(<=0) calls: %#x != %#x",
				i, av, bv)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}
