package sim

// CalendarQueue is the engine's default event queue: Brown's calendar
// queue (CACM '88), the classic O(1)-amortized priority queue for
// discrete-event simulation. Events hash by time into an array of
// "days" (buckets), each a short sorted list; dequeue scans forward
// from the last-popped day and only considers events falling within the
// current "year", wrapping bucket windows give later years.
//
// The structure self-tunes: when the population outgrows the bucket
// array it doubles (halves when it shrinks), recomputing the bucket
// width from the observed event-time spread. All resize decisions are
// pure functions of queue contents, so two runs with identical schedules
// resize identically — determinism does not depend on the queue staying
// out of the way, but wall-clock reproducibility of the hotpath bench
// does.
//
// Steady state inserts, peeks and pops touch only existing buckets and
// links: zero allocations.
type CalendarQueue struct {
	buckets []calBucket
	mask    uint64 // len(buckets)-1; bucket count is a power of two
	width   Time   // virtual-time width of one day
	count   int

	// floor is the last dequeued timestamp: the scan origin. The engine
	// never schedules into the past, so every queued event is >= floor.
	floor Time

	// peeked caches the current minimum between PeekMin and PopMin (and
	// across Inserts, which can only lower it).
	peeked *Event
}

const calMinBuckets = 16

// NewCalendarQueue returns an empty calendar queue.
func NewCalendarQueue() EventQueue {
	return &CalendarQueue{
		buckets: make([]calBucket, calMinBuckets),
		mask:    calMinBuckets - 1,
		width:   1,
	}
}

type calBucket struct {
	head, tail *Event
}

func (q *CalendarQueue) Len() int { return q.count }

func (q *CalendarQueue) bucketOf(at Time) *calBucket {
	return &q.buckets[uint64(at/q.width)&q.mask]
}

func (q *CalendarQueue) Insert(ev *Event) {
	if q.count+1 > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
	q.link(ev)
	q.count++
	if q.peeked != nil && ev.before(q.peeked) {
		q.peeked = ev
	}
}

// link places ev into its bucket's sorted list. The walk starts at the
// tail: simulation inserts are overwhelmingly at or past the bucket's
// latest entry (timers fire in roughly increasing order), making the
// common case a constant-time append.
func (q *CalendarQueue) link(ev *Event) {
	b := q.bucketOf(ev.at)
	p := b.tail
	for p != nil && ev.before(p) {
		p = p.prev
	}
	if p == nil {
		ev.prev = nil
		ev.next = b.head
		if b.head != nil {
			b.head.prev = ev
		} else {
			b.tail = ev
		}
		b.head = ev
	} else {
		ev.prev = p
		ev.next = p.next
		if p.next != nil {
			p.next.prev = ev
		} else {
			b.tail = ev
		}
		p.next = ev
	}
	ev.queued = true
}

func (q *CalendarQueue) Remove(ev *Event) {
	q.unlink(ev)
	q.count--
	if q.peeked == ev {
		q.peeked = nil
	}
	q.maybeShrink()
}

func (q *CalendarQueue) unlink(ev *Event) {
	b := q.bucketOf(ev.at)
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
	ev.queued = false
}

func (q *CalendarQueue) maybeShrink() {
	if len(q.buckets) > calMinBuckets && q.count < len(q.buckets)/4 {
		q.resize(len(q.buckets) / 2)
	}
}

func (q *CalendarQueue) PeekMin() *Event {
	if q.peeked != nil {
		return q.peeked
	}
	if q.count == 0 {
		return nil
	}
	n := len(q.buckets)
	epoch := q.floor / q.width
	// One pass over the calendar starting at today: a bucket's head
	// counts only if it falls within that bucket's window of the current
	// year. Buckets are scanned in increasing window order and each list
	// is sorted, so the first in-window head is the global minimum.
	for i := 0; i < n; i++ {
		b := &q.buckets[(uint64(epoch)+uint64(i))&q.mask]
		if h := b.head; h != nil && h.at/q.width == epoch+Time(i) {
			q.peeked = h
			return h
		}
	}
	// Nothing due this year: the queue is sparse relative to its span.
	// Fall back to a direct minimum over the bucket heads.
	var min *Event
	for i := range q.buckets {
		if h := q.buckets[i].head; h != nil && (min == nil || h.before(min)) {
			min = h
		}
	}
	q.peeked = min
	return min
}

func (q *CalendarQueue) PopMin() *Event {
	ev := q.PeekMin()
	if ev == nil {
		return nil
	}
	// If the successor in ev's bucket shares ev's window, it is the next
	// minimum (later windows and later years are all strictly greater):
	// keep the cache warm so bursts at one timestamp pop in O(1).
	q.peeked = nil
	if nx := ev.next; nx != nil && nx.at/q.width == ev.at/q.width {
		q.peeked = nx
	}
	q.unlink(ev)
	q.count--
	q.floor = ev.at
	q.maybeShrink()
	return ev
}

// resize rebuilds the calendar with n buckets, recomputing the day width
// from the live events' spread so that the population averages about one
// event per bucket. Called only on threshold crossings; steady-state
// traffic never resizes (and so never allocates).
func (q *CalendarQueue) resize(n int) {
	evs := make([]*Event, 0, q.count)
	var minAt, maxAt Time
	for i := range q.buckets {
		for ev := q.buckets[i].head; ev != nil; {
			nx := ev.next
			ev.next, ev.prev = nil, nil
			if len(evs) == 0 || ev.at < minAt {
				minAt = ev.at
			}
			if len(evs) == 0 || ev.at > maxAt {
				maxAt = ev.at
			}
			evs = append(evs, ev)
			ev = nx
		}
		q.buckets[i] = calBucket{}
	}
	width := Time(1)
	if len(evs) > 0 {
		width = (maxAt-minAt)/Time(len(evs)) + 1
	}
	if cap(q.buckets) >= n {
		q.buckets = q.buckets[:n]
	} else {
		q.buckets = make([]calBucket, n)
	}
	q.mask = uint64(n - 1)
	q.width = width
	q.peeked = nil
	for _, ev := range evs {
		q.link(ev)
	}
}
