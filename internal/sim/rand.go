package sim

import "math/bits"

// Rand is the simulation's deterministic pseudo-random source. Everything
// in the simulator that needs randomness (most prominently the fault
// plane) draws from a Rand seeded explicitly, so a failing run replays
// byte-for-byte from its seed: the event order is deterministic, and so is
// every draw.
//
// The generator is splitmix64 — tiny state, full 64-bit period per seed,
// and statistically far better than needed for fault scheduling.
type Rand struct {
	s uint64
}

// NewRand returns a generator seeded with seed. Equal seeds yield equal
// streams.
func NewRand(seed int64) *Rand {
	return &Rand{s: uint64(seed)}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
//
// Draws use Lemire's bounded multiply-shift with rejection, so every
// value in [0, n) is exactly equally likely — the naive Uint64() % n
// maps 2^64 inputs onto n outputs and over-represents the low residues
// whenever n does not divide 2^64. Rejection happens for at most n out
// of 2^64 draws, so the common case is still a single multiply.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - un) mod un: first unbiased fraction
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Prob returns true with probability p. p <= 0 never fires and consumes no
// state, so a schedule with a fault class disabled draws identically to
// one that omits it.
func (r *Rand) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	return r.Float64() < p
}
