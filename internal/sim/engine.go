// Package sim provides a deterministic discrete-event simulation engine
// with virtual time measured in CPU cycles.
//
// The engine is the substrate under every experiment in this repository:
// the paper's measurements were taken on real DECstation 5000/240s, while
// ours are taken on a simulated pair of hosts whose clocks are driven by
// this engine (see DESIGN.md for the substitution argument).
//
// Two styles of simulated activity are supported:
//
//   - event callbacks, scheduled with Schedule/ScheduleAt, which run to
//     completion at a virtual instant; and
//   - processes (Proc), goroutines that interleave with the engine in strict
//     lock-step: at most one process or event callback executes at any real
//     moment, so simulations are fully deterministic.
//
// Determinism: events at equal virtual times fire in scheduling order
// (FIFO by sequence number). Processes only advance when the engine resumes
// them, and the engine only advances when the running process parks.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp or duration, measured in CPU cycles of the
// simulated machine. The zero Time is the beginning of the simulation.
type Time int64

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// At reports the virtual time at which the event is (or was) scheduled.
func (ev *Event) At() Time { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. It is not safe for concurrent use
// by multiple goroutines except through the Proc lock-step protocol.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   int // live (started, not yet finished) processes
	parked  int // processes currently parked with no wakeup scheduled
	current *Proc
	panicV  any // propagated panic from a process
	stopped bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ScheduleAt registers fn to run at virtual time t, which must not be in
// the past. It returns the event so the caller may cancel it.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%d < %d)", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Schedule registers fn to run after virtual duration d (d >= 0).
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleAt(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes the innermost Run/RunUntil return after the currently
// executing event completes. Called outside any run, the stop is
// *pending*: the next Run or RunUntil consumes it and returns before
// firing a single event (a stop requested between runs must not be
// silently lost — a driver loop that stops its engine and then calls
// RunFor again expects the stop to win).
func (e *Engine) Stop() { e.stopped = true }

// step fires the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	ev.fn()
	if e.panicV != nil {
		v := e.panicV
		e.panicV = nil
		panic(v)
	}
	return true
}

// Run fires events until the queue is empty or Stop is called. If a process
// panicked, Run re-panics with the same value. A Stop pending from before
// the call makes Run return immediately, firing nothing; either way the
// stop is consumed, so a subsequent Run proceeds normally.
func (e *Engine) Run() {
	for !e.stopped && e.step() {
	}
	e.stopped = false
}

// RunUntil fires events with timestamps <= t. If the run completes without
// being stopped, the clock is then advanced to t (if the simulation had not
// already passed it). When Stop fires mid-run — or was pending from before
// the call — the clock stays at the last fired event: advancing it to t
// would strand still-pending events in the past, making the next Run panic
// with "time went backwards". The stop is consumed either way.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	stopped := e.stopped
	e.stopped = false
	if stopped {
		return
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d cycles of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
