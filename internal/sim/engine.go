// Package sim provides a deterministic discrete-event simulation engine
// with virtual time measured in CPU cycles.
//
// The engine is the substrate under every experiment in this repository:
// the paper's measurements were taken on real DECstation 5000/240s, while
// ours are taken on a simulated pair of hosts whose clocks are driven by
// this engine (see DESIGN.md for the substitution argument).
//
// Two styles of simulated activity are supported:
//
//   - event callbacks, scheduled with Schedule/ScheduleAt, which run to
//     completion at a virtual instant; and
//   - processes (Proc), goroutines that interleave with the engine in strict
//     lock-step: at most one process or event callback executes at any real
//     moment, so simulations are fully deterministic.
//
// Determinism: events at equal virtual times fire in scheduling order
// (FIFO by sequence number). Processes only advance when the engine resumes
// them, and the engine only advances when the running process parks.
//
// The engine runs against a pluggable EventQueue (a calendar queue by
// default; see CalendarQueue) and recycles Events through a freelist, so
// steady-state scheduling performs zero heap allocations. Because fired
// events are reused, Schedule/ScheduleAt hand back a Timer — a
// generation-checked handle — rather than the *Event itself; cancelling a
// Timer whose event already fired (and possibly now carries an unrelated
// callback) is a safe no-op.
package sim

import (
	"fmt"
)

// Time is a virtual timestamp or duration, measured in CPU cycles of the
// simulated machine. The zero Time is the beginning of the simulation.
type Time int64

// Timer is a cancellable handle on a scheduled event. The zero Timer is
// inert: cancelling it does nothing. Timers are plain values — copy them
// freely, compare against Timer{} to test for "never armed".
type Timer struct {
	ev  *Event
	gen uint64
}

// Engine is a discrete-event simulator. It is not safe for concurrent use
// by multiple goroutines except through the Proc lock-step protocol.
type Engine struct {
	now     Time
	seq     uint64
	q       EventQueue
	free    *Event // recycled events, chained through next
	procs   int    // live (started, not yet finished) processes
	parked  int    // processes currently parked with no wakeup scheduled
	current *Proc
	panicV  any // propagated panic from a process
	stopped bool
}

// NewEngine returns an empty engine at virtual time zero, scheduling
// against a calendar queue.
func NewEngine() *Engine {
	return &Engine{q: NewCalendarQueue()}
}

// NewEngineWithQueue returns an empty engine scheduling against q. Tests
// use it to run the same workload over different queue implementations;
// everything else wants NewEngine.
func NewEngineWithQueue(q EventQueue) *Engine {
	return &Engine{q: q}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes an event from the freelist (or mints one) and stamps it.
func (e *Engine) alloc(t Time) *Event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	return ev
}

// recycle retires a fired or cancelled event to the freelist. The
// generation bump invalidates every Timer still pointing at it.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.next = e.free
	e.free = ev
}

func (e *Engine) checkAt(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%d < %d)", t, e.now))
	}
}

// ScheduleAt registers fn to run at virtual time t, which must not be in
// the past. It returns a Timer so the caller may cancel it.
func (e *Engine) ScheduleAt(t Time, fn func()) Timer {
	e.checkAt(t)
	ev := e.alloc(t)
	ev.fn = fn
	e.q.Insert(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleArgAt is ScheduleAt for a callback taking one argument. Hot
// paths use it with a long-lived bound function so that scheduling a
// per-packet continuation does not build a per-packet closure.
func (e *Engine) ScheduleArgAt(t Time, fn func(any), arg any) Timer {
	e.checkAt(t)
	ev := e.alloc(t)
	ev.afn = fn
	ev.arg = arg
	e.q.Insert(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Schedule registers fn to run after virtual duration d (d >= 0).
func (e *Engine) Schedule(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleArg is Schedule for an argument-carrying callback.
func (e *Engine) ScheduleArg(d Time, fn func(any), arg any) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleArgAt(e.now+d, fn, arg)
}

// Cancel removes a pending event. Cancelling the zero Timer, or a Timer
// whose event already fired or was already cancelled, is a no-op — even
// if the underlying Event has since been recycled for another callback.
func (e *Engine) Cancel(t Timer) {
	ev := t.ev
	if ev == nil || ev.gen != t.gen {
		return
	}
	e.q.Remove(ev)
	e.recycle(ev)
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return e.q.Len() }

// Stop makes the innermost Run/RunUntil return after the currently
// executing event completes. Called outside any run, the stop is
// *pending*: the next Run or RunUntil consumes it and returns before
// firing a single event (a stop requested between runs must not be
// silently lost — a driver loop that stops its engine and then calls
// RunFor again expects the stop to win).
func (e *Engine) Stop() { e.stopped = true }

// step fires the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	ev := e.q.PopMin()
	if ev == nil {
		return false
	}
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	// Recycle before firing: a self-rescheduling callback immediately
	// reuses this Event, keeping the steady-state freelist depth at the
	// schedule's natural concurrency.
	e.recycle(ev)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	if e.panicV != nil {
		v := e.panicV
		e.panicV = nil
		panic(v)
	}
	return true
}

// Run fires events until the queue is empty or Stop is called. If a process
// panicked, Run re-panics with the same value. A Stop pending from before
// the call makes Run return immediately, firing nothing; either way the
// stop is consumed, so a subsequent Run proceeds normally.
func (e *Engine) Run() {
	for !e.stopped && e.step() {
	}
	e.stopped = false
}

// RunUntil fires events with timestamps <= t. If the run completes without
// being stopped, the clock is then advanced to t (if the simulation had not
// already passed it). When Stop fires mid-run — or was pending from before
// the call — the clock stays at the last fired event: advancing it to t
// would strand still-pending events in the past, making the next Run panic
// with "time went backwards". The stop is consumed either way.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		ev := e.q.PeekMin()
		if ev == nil || ev.at > t {
			break
		}
		e.step()
	}
	stopped := e.stopped
	e.stopped = false
	if stopped {
		return
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d cycles of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
