package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at equal time fired out of order: got[%d]=%d", i, got[i])
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %d after cancelled event", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Schedule(10, func() {
		at = append(at, e.Now())
		e.Schedule(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("nested times = %v, want [10 15]", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 15, 25} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(15)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %d, want 15", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after Run, want 3 events", fired)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunFor(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt Run)", count)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after second Run, want 2", count)
	}
}

func TestStopDuringRunUntilThenRun(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Stop()
	})
	e.Schedule(20, func() { fired = append(fired, e.Now()) })
	e.RunUntil(100)
	if e.Now() != 10 {
		t.Fatalf("Now = %d after stopped RunUntil, want 10 (clock must not jump past pending events)", e.Now())
	}
	// Regression: this used to panic "time went backwards" because the
	// stopped RunUntil had advanced the clock to 100 past the event at 20.
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
}

func TestStopBeforeRunHonored(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(5, func() { count++ })
	e.Stop()
	e.Run()
	if count != 0 {
		t.Fatalf("count = %d, want 0 (pre-run Stop must be honored)", count)
	}
	e.Run() // the stop was consumed; this run proceeds
	if count != 1 {
		t.Fatalf("count = %d after second Run, want 1", count)
	}

	e.Schedule(5, func() { count++ }) // fires at 10
	e.Stop()
	e.RunUntil(50)
	if count != 1 || e.Now() != 5 {
		t.Fatalf("count=%d Now=%d, want count=1 Now=5 (pre-run Stop must halt RunUntil without advancing the clock)", count, e.Now())
	}
	e.RunUntil(50)
	if count != 2 || e.Now() != 50 {
		t.Fatalf("count=%d Now=%d after second RunUntil, want count=2 Now=50", count, e.Now())
	}
}

func TestRunUntilEmptyQueueClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(40)
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40 (RunUntil on an empty queue advances the idle clock)", e.Now())
	}
	e.RunUntil(10)
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40 (RunUntil never moves the clock backwards)", e.Now())
	}
	e.Stop()
	e.RunUntil(90)
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40 (a pending Stop suppresses even the idle-clock advance)", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Go("sleeper", func(p *Proc) {
		trace = append(trace, p.Now())
		p.Sleep(100)
		trace = append(trace, p.Now())
		p.Sleep(50)
		trace = append(trace, p.Now())
	})
	e.Run()
	want := []Time{0, 100, 150}
	if len(trace) != 3 {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcParkUnpark(t *testing.T) {
	e := NewEngine()
	var wokeAt Time = -1
	p := e.Go("waiter", func(p *Proc) {
		p.Park()
		wokeAt = p.Now()
	})
	e.Schedule(500, func() { p.Unpark() })
	e.Run()
	if wokeAt != 500 {
		t.Fatalf("woke at %d, want 500", wokeAt)
	}
}

func TestProcParkTimeout(t *testing.T) {
	e := NewEngine()
	var woken, timedOut bool
	e.Go("a", func(p *Proc) {
		woken = p.ParkTimeout(100)
	})
	var q *Proc
	q = e.Go("b", func(p *Proc) {
		timedOut = !p.ParkTimeout(100)
	})
	_ = q
	p2 := e.Go("waker", func(p *Proc) { p.Sleep(200) })
	_ = p2
	e.Run()
	if woken {
		t.Fatal("ParkTimeout reported wakeup without Unpark")
	}
	if !timedOut {
		t.Fatal("ParkTimeout did not time out")
	}
}

func TestProcParkTimeoutWoken(t *testing.T) {
	e := NewEngine()
	var ok bool
	var at Time
	p := e.Go("w", func(p *Proc) {
		ok = p.ParkTimeout(1000)
		at = p.Now()
	})
	e.Schedule(10, func() { p.Unpark() })
	e.Run()
	if !ok || at != 10 {
		t.Fatalf("ok=%v at=%d, want true at 10", ok, at)
	}
	if e.Pending() != 0 {
		t.Fatalf("timeout event not cancelled: %d pending", e.Pending())
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		e.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "a")
				p.Sleep(10)
			}
		})
		e.Go("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "b")
				p.Sleep(10)
			}
		})
		e.Run()
		return trace
	}
	first := run()
	for i := 0; i < 20; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic trace length")
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("nondeterministic trace: run %d pos %d: %q vs %q", i, j, again[j], first[j])
			}
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Go("bad", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestChanSendRecv(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	var got []int
	e.Go("rx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p))
		}
	})
	e.Go("tx", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			c.Send(i * 11)
		}
	})
	e.Run()
	want := []int{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	e := NewEngine()
	c := NewChan[string](e)
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan reported ok")
	}
	c.Send("x")
	v, ok := c.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q,%v", v, ok)
	}
}

func TestChanBuffersBeforeReceiver(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	c.Send(1)
	c.Send(2)
	var got []int
	e.Go("rx", func(p *Proc) {
		got = append(got, c.Recv(p), c.Recv(p))
	})
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Run()
	}
}
