package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated thread of control: a goroutine that runs in strict
// lock-step with the engine. Exactly one of {engine, some process} executes
// at any real moment; control transfers are explicit (resume/park), so
// simulations involving many processes remain deterministic.
//
// A Proc's body may call Sleep, Park, and the blocking helpers; it must not
// touch the engine from any other goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	dead   bool
	parked bool // parked with no scheduled wakeup
}

// Go creates a process executing fn and schedules it to start now.
// fn runs on its own goroutine but only while the engine is paused.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	go func() {
		<-p.resume
		defer func() {
			p.dead = true
			e.procs--
			if r := recover(); r != nil {
				e.panicV = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(0, func() { p.run() })
	return p
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// run transfers control from the engine to the process until it parks or
// finishes. Must be called from engine (event) context.
func (p *Proc) run() {
	if p.dead {
		return
	}
	prev := p.eng.current
	p.eng.current = p
	p.resume <- struct{}{}
	<-p.yield
	p.eng.current = prev
}

// park transfers control from the process back to the engine.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d cycles of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	p.eng.Schedule(d, func() { p.run() })
	p.park()
}

// Park blocks the process until another event or process calls Unpark.
func (p *Proc) Park() {
	p.parked = true
	p.park()
}

// Parked reports whether the process is blocked in Park or ParkTimeout
// (not in a plain Sleep).
func (p *Proc) Parked() bool { return p.parked }

// Unpark makes a parked process runnable again at the current virtual time.
// It may be called from event context or from another process. Unparking a
// process that is not parked panics: it would indicate a lost-wakeup race in
// the caller, which the lock-step protocol is designed to make impossible.
func (p *Proc) Unpark() {
	if p.dead {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked process %q", p.name))
	}
	p.parked = false
	p.eng.Schedule(0, func() { p.run() })
}

// ParkTimeout parks the process for at most d cycles. It reports true if the
// process was explicitly unparked and false if the timeout expired.
func (p *Proc) ParkTimeout(d Time) bool {
	timedOut := false
	ev := p.eng.Schedule(d, func() {
		if p.parked {
			timedOut = true
			p.parked = false
			p.run()
		}
	})
	p.parked = true
	p.park()
	p.eng.Cancel(ev)
	return !timedOut
}

// Chan is a deterministic, unbounded message queue between simulated
// activities. Receivers park when empty; senders never block.
type Chan[T any] struct {
	eng    *Engine
	queue  []T
	waiter *Proc
}

// NewChan returns an empty queue bound to engine e.
func NewChan[T any](e *Engine) *Chan[T] {
	return &Chan[T]{eng: e}
}

// Len reports the number of queued items.
func (c *Chan[T]) Len() int { return len(c.queue) }

// Send enqueues v and wakes the receiver, if one is parked. It may be
// called from event or process context.
func (c *Chan[T]) Send(v T) {
	c.queue = append(c.queue, v)
	if c.waiter != nil {
		w := c.waiter
		c.waiter = nil
		w.Unpark()
	}
}

// Recv dequeues the next item, parking p until one is available.
// At most one process may wait on a Chan at a time.
func (c *Chan[T]) Recv(p *Proc) T {
	for len(c.queue) == 0 {
		if c.waiter != nil && c.waiter != p {
			panic("sim: multiple receivers on Chan")
		}
		c.waiter = p
		p.Park()
	}
	v := c.queue[0]
	c.queue = c.queue[1:]
	return v
}

// TryRecv dequeues the next item without blocking. ok is false when empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.queue) == 0 {
		return v, false
	}
	v = c.queue[0]
	c.queue = c.queue[1:]
	return v, true
}
