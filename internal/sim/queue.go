package sim

// Event is one scheduled callback. Events are intrusive — the links below
// thread them into whichever EventQueue the engine runs on — and are
// recycled through the engine's freelist once fired or cancelled, so
// steady-state scheduling allocates nothing. Because a recycled Event may
// be reused for an unrelated callback, callers never hold *Event directly:
// Schedule/ScheduleAt return a generation-checked Timer handle instead.
type Event struct {
	at  Time
	seq uint64

	// gen is bumped every time the event is recycled; a Timer whose
	// generation no longer matches refers to a previous life of this
	// Event and cancels nothing.
	gen uint64

	// Exactly one of fn / afn is set. afn carries an explicit argument so
	// hot paths can schedule a long-lived bound function without building
	// a fresh closure per packet.
	fn  func()
	afn func(any)
	arg any

	// Queue linkage: doubly linked within a calendar bucket (and the
	// freelist reuses next). heapIdx is the position when the event sits
	// in a heapQueue instead.
	next, prev *Event
	heapIdx    int
	queued     bool
}

// At reports the virtual time at which the event is scheduled.
func (ev *Event) At() Time { return ev.at }

// before is the engine's total order: time, then scheduling sequence, so
// events at equal times fire FIFO.
func (ev *Event) before(o *Event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// EventQueue is the ordered queue the engine schedules against. The
// engine owns event allocation and recycling; a queue only links and
// unlinks. PopMin/PeekMin follow the (at, seq) order exactly — the
// engine's determinism contract (equal-time FIFO) is the queue's to keep.
type EventQueue interface {
	// Insert links a not-currently-queued event.
	Insert(ev *Event)
	// Remove unlinks a queued event (cancellation).
	Remove(ev *Event)
	// PeekMin returns the next event without unlinking it, or nil.
	PeekMin() *Event
	// PopMin unlinks and returns the next event, or nil.
	PopMin() *Event
	// Len reports the number of queued events.
	Len() int
}

// heapQueue is a plain binary heap over the intrusive events. It is the
// reference implementation: O(log n) everywhere, no tuning knobs. The
// engine's default is the calendar queue; the heap stays as the oracle
// for differential tests and as a fallback for pathological schedules.
type heapQueue struct {
	evs []*Event
}

// NewHeapQueue returns an empty binary-heap event queue.
func NewHeapQueue() EventQueue { return &heapQueue{} }

func (h *heapQueue) Len() int { return len(h.evs) }

func (h *heapQueue) Insert(ev *Event) {
	ev.heapIdx = len(h.evs)
	ev.queued = true
	h.evs = append(h.evs, ev)
	h.siftUp(ev.heapIdx)
}

func (h *heapQueue) Remove(ev *Event) {
	i := ev.heapIdx
	last := len(h.evs) - 1
	if i != last {
		h.evs[i] = h.evs[last]
		h.evs[i].heapIdx = i
	}
	h.evs[last] = nil
	h.evs = h.evs[:last]
	if i != last {
		if !h.siftUp(i) {
			h.siftDown(i)
		}
	}
	ev.queued = false
}

func (h *heapQueue) PeekMin() *Event {
	if len(h.evs) == 0 {
		return nil
	}
	return h.evs[0]
}

func (h *heapQueue) PopMin() *Event {
	if len(h.evs) == 0 {
		return nil
	}
	ev := h.evs[0]
	h.Remove(ev)
	return ev
}

func (h *heapQueue) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.evs[i].before(h.evs[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *heapQueue) siftDown(i int) {
	n := len(h.evs)
	for {
		min := i
		if l := 2*i + 1; l < n && h.evs[l].before(h.evs[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && h.evs[r].before(h.evs[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}

func (h *heapQueue) swap(i, j int) {
	h.evs[i], h.evs[j] = h.evs[j], h.evs[i]
	h.evs[i].heapIdx = i
	h.evs[j].heapIdx = j
}
