package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsGuard enforces the zero-cost-disabled contract of the observability
// plane (internal/obs): a nil *obs.Plane must cost one pointer test and
// zero allocations per site.
//
// The emission methods (Span, Instant, Inc, Add, Observe) are nil-safe,
// so a call with constant arguments is free when disabled. What breaks
// the contract is building a dynamic argument — a string concatenation
// or a formatting call — *before* the nil test inside the method runs:
// the allocation happens whether or not the plane exists. The analyzer
// therefore requires every emission call with an allocating argument to
// sit behind the established guard idiom:
//
//	if o := k.Obs; o.Enabled() { o.Span(..., "x "+name, ...) }
//
// (or an equivalent `!= nil` test / `== nil` early return on the same
// receiver). Direct access to the Metrics field is flagged the same way
// regardless of arguments: unlike the emission methods it is not
// nil-safe, so an unguarded p.Metrics dereference panics on a disabled
// plane.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc: "require the Enabled()/nil-check guard idiom around obs-plane " +
		"emissions that allocate their arguments (and around Metrics access), " +
		"preserving the nil-plane-is-zero-cost contract",
	Scope: func(p string) bool {
		return pathIn(p, "ashs") && !pathIn(p, "ashs/internal/obs")
	},
	Run: runObsGuard,
}

const obsPkgPath = "ashs/internal/obs"

var obsEmitMethods = map[string]bool{
	"Span": true, "Instant": true, "Inc": true, "Add": true, "Observe": true,
}

func runObsGuard(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				name, recv, ok := methodOn(pass.Info, n, obsPkgPath, "Plane")
				if !ok || !obsEmitMethods[name] {
					return true
				}
				var alloc ast.Expr
				for _, arg := range n.Args {
					if allocatingStringArg(pass.Info, arg) {
						alloc = arg
						break
					}
				}
				if alloc == nil {
					return true
				}
				if !planeGuarded(pass, recv, n, stack) {
					pass.Reportf(n.Pos(),
						"obs %s with allocating argument %s outside an Enabled()/nil guard on %s; "+
							"a disabled (nil) plane still pays the allocation — wrap in `if o := %s; o.Enabled() { ... }`",
						name, types.ExprString(alloc), types.ExprString(recv), types.ExprString(recv))
				}
			case *ast.SelectorExpr:
				// p.Metrics on a possibly-nil plane: not nil-safe.
				if n.Sel.Name != "Metrics" {
					return true
				}
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil || named.Obj().Name() != "Plane" ||
					named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPkgPath {
					return true
				}
				if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
					return true
				}
				if !planeGuarded(pass, n.X, n, stack) {
					pass.Reportf(n.Pos(),
						"unguarded Metrics access on possibly-nil *obs.Plane %s; "+
							"test %s.Enabled() (or != nil) first", types.ExprString(n.X), types.ExprString(n.X))
				}
			}
			return true
		})
	}
	return nil
}

// allocatingStringArg reports whether arg is a non-constant string
// expression whose evaluation allocates: a concatenation or any function
// call (fmt.Sprintf, strconv.Itoa, ...). A bare variable or field read
// (k.Name) is not allocating; a constant concatenation folds at compile
// time.
func allocatingStringArg(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	allocating := false
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				allocating = true
			}
		case *ast.CallExpr:
			allocating = true
		}
		return !allocating
	})
	return allocating
}

// planeGuarded reports whether node sits behind a guard on the plane
// expression recv: an enclosing `if <recv>.Enabled()` / `if <recv> !=
// nil` (then-branch), or a preceding `if <recv> == nil { return }` in an
// enclosing block. Matching is textual on the receiver chain, which is
// exactly how the idiom is written throughout the tree.
func planeGuarded(pass *Pass, recv ast.Expr, node ast.Node, stack []ast.Node) bool {
	want := types.ExprString(ast.Unparen(recv))
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			// Only the then-branch is protected.
			if within(node, s.Body) && guardCond(s.Cond, want) {
				return true
			}
		case *ast.BlockStmt:
			// `if recv == nil { return }` earlier in this block.
			for _, st := range s.List {
				if st.End() >= node.Pos() {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if !ok || ifs.Init != nil {
					continue
				}
				if nilEq(ifs.Cond, want) && endsInReturn(ifs.Body) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Guards don't cross function boundaries.
			return false
		}
	}
	return false
}

func within(n ast.Node, outer ast.Node) bool {
	return outer != nil && outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// guardCond matches `want.Enabled()`, `want != nil` or `nil != want`,
// possibly as a conjunct of &&.
func guardCond(cond ast.Expr, want string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return guardCond(c.X, want) || guardCond(c.Y, want)
		}
		if c.Op == token.NEQ {
			return (isNilIdent(c.X) && types.ExprString(ast.Unparen(c.Y)) == want) ||
				(isNilIdent(c.Y) && types.ExprString(ast.Unparen(c.X)) == want)
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok &&
			sel.Sel.Name == "Enabled" && types.ExprString(ast.Unparen(sel.X)) == want {
			return true
		}
	}
	return false
}

// nilEq matches `want == nil` / `nil == want`.
func nilEq(cond ast.Expr, want string) bool {
	c, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || c.Op != token.EQL {
		return false
	}
	return (isNilIdent(c.X) && types.ExprString(ast.Unparen(c.Y)) == want) ||
		(isNilIdent(c.Y) && types.ExprString(ast.Unparen(c.X)) == want)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// endsInReturn reports whether a block's last statement is a return or a
// panic call (an early exit that makes the code after it nil-free).
func endsInReturn(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
