// Package ignores exercises the suppression machinery end to end: a
// reasoned directive silences its finding; a reasonless one is itself a
// finding and silences nothing.
package ignores

import "time"

func suppressedWithReason() time.Time {
	//lint:ignore ashlint/determinism pinned by TestIgnoreDirectives: wall clock deliberately used
	return time.Now()
}

func missingReason() time.Time {
	//lint:ignore ashlint/determinism
	return time.Now()
}
