// Package determinism is ashlint/determinism's golden file: every
// seeded violation carries a `// want` expectation; every idiomatic fix
// must stay silent.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// --- wall-clock time sources -----------------------------------------

func wallClock() time.Duration {
	t0 := time.Now()      // want "wall-clock time.Now"
	time.Sleep(1)         // want "wall-clock time.Sleep"
	return time.Since(t0) // want "wall-clock time.Since"
}

// --- the global math/rand source -------------------------------------

func globalRand() int {
	return rand.Intn(10) // want "global math/rand source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand source"
}

// seededRand is the fix: an explicit, seeded generator.
func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// --- map iteration ---------------------------------------------------

func renderUnsorted(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "order-dependent effect"
	}
}

func sendUnsorted(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send"
	}
}

func lastWriterWins(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want "write to variable declared outside the loop"
	}
	return last
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "write to variable declared outside the loop"
	}
	return keys
}

// collectThenSort is the blessed idiom: gather, then order.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// accumulate commutes, so iteration order cannot show.
func accumulate(m map[string]int) int {
	sum, n := 0, 0
	for _, v := range m {
		sum += v
		n++
	}
	return sum + n
}

// keyedRewrite writes through the key: order-insensitive.
func keyedRewrite(m, out map[string]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// membership returns only constants: any iteration order agrees.
func membership(m map[string]int) bool {
	for _, v := range m {
		if v > 10 {
			return true
		}
	}
	return false
}

// perEntryWrite stores through the loop value's pointer: each iteration
// touches a distinct entry, so order cannot show.
type slot struct {
	inUse bool
	buf   []byte
}

func perEntryWrite(m map[int]*slot) {
	for _, sl := range m {
		sl.inUse = false
		sl.buf = nil
	}
}

// prune deletes during iteration — explicitly allowed by Go and keyed.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// suppressed demonstrates a justified ignore directive: the driver
// accepts it because the reason is non-empty.
func suppressed(m map[string]int) {
	for k := range m {
		//lint:ignore ashlint/determinism golden-file demo of a reasoned suppression
		fmt.Println(k)
	}
}
