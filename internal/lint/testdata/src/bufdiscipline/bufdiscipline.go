// Package bufdiscipline is ashlint/bufdiscipline's golden file: a
// miniature of internal/netdev's buffer-lease API with each contract
// violation seeded alongside its idiomatic fix.
package bufdiscipline

import "errors"

type PacketBuf struct {
	Src, Dst, VC int
	refs         int
	n            int
}

func (b *PacketBuf) Release()         { b.refs-- }
func (b *PacketBuf) Retain()          { b.refs++ }
func (b *PacketBuf) Len() int         { return b.n }
func (b *PacketBuf) Bytes() []byte    { return nil }
func (b *PacketBuf) SetData(d []byte) { b.n = len(d) }

type BufPool struct{ free []*PacketBuf }

func (p *BufPool) Lease() *PacketBuf { return &PacketBuf{refs: 1} }

type Switch struct{ Pool *BufPool }

func (s *Switch) Lease() *PacketBuf { return s.Pool.Lease() }

func (s *Switch) LeaseData(data []byte) *PacketBuf {
	b := s.Pool.Lease()
	b.SetData(data)
	return b
}

func (s *Switch) Redeliver(pkt *PacketBuf) { pkt.Release() }

type Port struct{ sw *Switch }

func (p *Port) Transmit(pkt *PacketBuf) error {
	pkt.Release()
	return nil
}

// An endpoint whose Release takes the frame as an argument — the
// unrelated-method shape the analyzer must not confuse with
// PacketBuf.Release.
type Endpoint struct{}
type Frame struct{}

func (e *Endpoint) Release(f *Frame) {}
func (e *Endpoint) Recv() *Frame     { return &Frame{} }

// --- no use after Release --------------------------------------------

func useAfterRelease(s *Switch, d []byte) int {
	pkt := s.LeaseData(d)
	pkt.Release()
	return pkt.Len() // want "pkt used after Release"
}

func retainAfterRelease(s *Switch, d []byte) {
	pkt := s.LeaseData(d)
	pkt.Release()
	pkt.Retain() // want "pkt used after Release"
}

func doubleRelease(s *Switch, d []byte) {
	pkt := s.LeaseData(d)
	pkt.Release()
	pkt.Release() // want "pkt used after Release"
}

// earlyErrorRelease is the sanctioned idiom: a Release inside a branch
// that returns leaves the fall-through path's reference intact.
func earlyErrorRelease(p *Port, s *Switch, d []byte) error {
	pkt := s.LeaseData(d)
	if pkt.Len() > 1500 {
		pkt.Release()
		return errors.New("too big")
	}
	pkt.Dst = 1
	return p.Transmit(pkt)
}

func maybeReleased(s *Switch, d []byte, drop bool) {
	pkt := s.LeaseData(d)
	if drop {
		pkt.Release()
	}
	pkt.Dst = 1 // want "pkt used after Release"
	pkt.Release()
}

// releaseThenRelease reuses the name for a fresh lease; the second
// Release is of the new buffer, not the old one.
func releaseThenRelease(s *Switch, d []byte) {
	pkt := s.LeaseData(d)
	pkt.Release()
	pkt = s.Lease()
	pkt.Release()
}

// endpointRelease exercises the unrelated Release(frame) shape: the
// frame stays usable after the endpoint-style call.
func endpointRelease(e *Endpoint) *Frame {
	f := e.Recv()
	e.Release(f)
	return f
}

// --- no leaked lease -------------------------------------------------

func leakedLease(s *Switch, d []byte) int {
	pkt := s.LeaseData(d) // want "lease bound to pkt never reaches Release"
	pkt.Dst = 3
	return pkt.Len()
}

func droppedLease(s *Switch, d []byte) {
	s.LeaseData(d) // want "lease result dropped"
}

func blankLease(s *Switch, d []byte) {
	_ = s.LeaseData(d) // want "lease result dropped"
}

func dischargedByTransmit(p *Port, s *Switch, d []byte) error {
	pkt := s.LeaseData(d)
	pkt.Dst = 1
	return p.Transmit(pkt)
}

func dischargedByRelease(s *Switch, d []byte) int {
	pkt := s.LeaseData(d)
	n := pkt.Len()
	pkt.Release()
	return n
}

func dischargedByReturn(s *Switch, d []byte) *PacketBuf {
	pkt := s.LeaseData(d)
	pkt.VC = 7
	return pkt
}

type queuedSend struct {
	pkt *PacketBuf
	dst int
}

func dischargedByStore(s *Switch, d []byte, q []queuedSend) []queuedSend {
	pkt := s.LeaseData(d)
	return append(q, queuedSend{pkt: pkt, dst: pkt.Dst})
}

// escapesInPlace consumes the lease where it is minted — nothing to
// track.
func escapesInPlace(p *Port, s *Switch, d []byte) error {
	return p.Transmit(s.LeaseData(d))
}
