// Package allocdiscipline is ashlint/allocdiscipline's golden file: a
// miniature of the aegis allocation API with Must* misuse and unchecked
// allocator errors seeded next to their fixes.
package allocdiscipline

import "ashs/internal/vcode"

type Segment struct{ Base, Len uint32 }

type AddrSpace struct{ brk uint32 }

func (as *AddrSpace) Alloc(n int, name string) (Segment, error) {
	as.brk += uint32(n)
	return Segment{Base: as.brk, Len: uint32(n)}, nil
}

func (as *AddrSpace) MustAlloc(n int, name string) Segment {
	seg, err := as.Alloc(n, name)
	if err != nil {
		panic(err)
	}
	return seg
}

var globalAS = &AddrSpace{}

// Package-level initialization is build time by definition.
var bootSeg = globalAS.MustAlloc(64, "boot")

// --- Must* on runtime paths ------------------------------------------

func runtimePath(as *AddrSpace) Segment {
	return as.MustAlloc(64, "rx") // want "MustAlloc on a runtime path"
}

func handleMessage(as *AddrSpace, n int) uint32 {
	seg := as.MustAlloc(n, "scratch") // want "MustAlloc on a runtime path"
	return seg.Base
}

// --- build-time setup contexts ---------------------------------------

func NewThing(as *AddrSpace) Segment    { return as.MustAlloc(64, "setup") }
func BuildRing(as *AddrSpace) Segment   { return as.MustAlloc(64, "ring") }
func SetupWorld(as *AddrSpace) Segment  { return as.MustAlloc(64, "world") }
func installPath(as *AddrSpace) Segment { return as.MustAlloc(64, "fast") }

// CounterHandler returns a compiled handler program: code generation is
// a download-time path by construction.
func CounterHandler(as *AddrSpace) *vcode.Program {
	_ = as.MustAlloc(64, "scratch")
	return nil
}

// --- unchecked allocator errors --------------------------------------

func discardAll(as *AddrSpace) {
	as.Alloc(64, "leak") // want "result and error of as.Alloc discarded"
}

func discardErr(as *AddrSpace) Segment {
	seg, _ := as.Alloc(64, "blind") // want "error from as.Alloc assigned to _"
	return seg
}

func checked(as *AddrSpace) (Segment, error) {
	seg, err := as.Alloc(64, "good")
	if err != nil {
		return Segment{}, err
	}
	return seg, nil
}
