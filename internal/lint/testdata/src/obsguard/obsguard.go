// Package obsguard is ashlint/obsguard's golden file: emission calls
// whose arguments allocate must sit behind the Enabled()/nil guard
// idiom; Metrics access must always be guarded.
package obsguard

import (
	"fmt"

	"ashs/internal/obs"
)

// --- allocating arguments without a guard ----------------------------

func emitConcatUnguarded(p *obs.Plane, name string) {
	p.Inc("x/" + name) // want "outside an Enabled"
}

func emitSprintfUnguarded(p *obs.Plane, n int) {
	p.Span("h", "t", "cat", fmt.Sprintf("n=%d", n), 0, 0) // want "outside an Enabled"
}

func emitInElseBranch(p *obs.Plane, name string) {
	if p.Enabled() {
		_ = name
	} else {
		p.Inc("x/" + name) // want "outside an Enabled"
	}
}

// --- the guard idioms ------------------------------------------------

func emitGuardedInit(p *obs.Plane, name string) {
	if o := p; o.Enabled() {
		o.Inc("x/" + name)
		o.Span("h", "t", "c", "send "+name, 0, 0)
	}
}

func emitGuardedNil(p *obs.Plane, name string) {
	if p != nil {
		p.Inc("y/" + name)
	}
	if p.Enabled() && name != "" {
		p.Add("z/"+name, 1)
	}
}

func emitEarlyReturn(p *obs.Plane, name string) {
	if p == nil {
		return
	}
	p.Inc("x/" + name)
}

// --- zero-cost calls need no guard -----------------------------------

func emitConstant(p *obs.Plane) {
	p.Inc("net/frames_delivered")
	p.Span("h", "t", "c", "fixed", 0, 0)
}

func emitBareVariable(p *obs.Plane, host string) {
	// A field/variable read does not allocate; the nil-safe method is
	// free when disabled.
	p.Span(host, "device", "kernel", "ring deliver", 0, 0)
}

// --- Metrics is not nil-safe -----------------------------------------

func metricsUnguarded(p *obs.Plane) {
	p.Metrics.Counter("c").Inc() // want "unguarded Metrics access"
}

func metricsGuarded(p *obs.Plane) {
	if p.Enabled() {
		p.Metrics.Counter("c").Inc()
	}
	if p != nil {
		p.Metrics.Gauge("g").Set(1)
	}
}
