// Package lockdiscipline is ashlint/lockdiscipline's golden file: a
// miniature of internal/proto/tcp's ConnTable with each contract
// violation seeded alongside its idiomatic fix.
package lockdiscipline

import "sync"

type Tuple struct{ A, B uint16 }

type Conn struct {
	state int
	port  uint16
}

func (c *Conn) Close()     {}
func (c *Conn) Flush() int { return c.state }

type connBucket struct {
	mu sync.RWMutex
	m  map[Tuple]*Conn
}

type ConnTable struct {
	buckets []connBucket
}

func NewConnTable(n int) *ConnTable {
	t := &ConnTable{buckets: make([]connBucket, n)}
	for i := range t.buckets {
		t.buckets[i].m = map[Tuple]*Conn{}
	}
	return t
}

func (t *ConnTable) bucket(k Tuple) *connBucket { return &t.buckets[0] }

// Bind is the one sanctioned publish point: inside a ConnTable method,
// under the bucket lock.
func (t *ConnTable) Bind(k Tuple, c *Conn) {
	b := t.bucket(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = c
}

// --- publish-fully-constructed ---------------------------------------

func publishThenMutate(t *ConnTable, k Tuple, c *Conn) {
	c.state = 1
	t.Bind(k, c)
	c.port = 9 // want "after ConnTable.Bind published"
}

func publishFully(t *ConnTable, k Tuple, c *Conn) {
	c.state = 1
	c.port = 9
	t.Bind(k, c)
}

func directPublish(m map[Tuple]*Conn, k Tuple, c *Conn) {
	m[k] = c // want "direct store into a conn map"
}

// --- no bucket lock across Conn calls --------------------------------

func lockAcrossConnCall(b *connBucket, c *Conn) {
	b.mu.Lock()
	c.Close() // want "while bucket lock b.mu is held"
	b.mu.Unlock()
	c.Close()
}

func deferredLockAcrossConnCall(b *connBucket, c *Conn) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return c.Flush() // want "while bucket lock b.mu is held"
}

func lockReleasedFirst(b *connBucket, k Tuple) *Conn {
	b.mu.RLock()
	c := b.m[k]
	b.mu.RUnlock()
	if c != nil {
		c.Close()
	}
	return c
}

// --- no copies of lock-bearing structs -------------------------------

func rangeCopiesBucket(t *ConnTable) int {
	n := 0
	for _, b := range t.buckets { // want "range copies lock-bearing"
		n += len(b.m)
	}
	return n
}

func rangeByIndex(t *ConnTable) int {
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].m)
	}
	return n
}

func assignCopiesBucket(t *ConnTable) {
	cp := t.buckets[0] // want "assignment copies lock-bearing"
	_ = cp.m
}

func useBucket(b connBucket) {}

func passesBucketByValue(t *ConnTable) {
	useBucket(t.buckets[0]) // want "argument copies lock-bearing"
}

func passesBucketPointer(t *ConnTable) {
	usePtr(&t.buckets[0])
}

func usePtr(b *connBucket) {}
