package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufDiscipline enforces the buffer-lease ownership contract around
// netdev.PacketBuf (the zero-alloc hot path's currency):
//
//  1. no use after Release — once a function calls pkt.Release(), the
//     reference is gone; touching pkt afterwards (a field, a method, a
//     second Release) races the pool's recycling of the buffer. The
//     check is branch-aware: a Release inside an early-return branch
//     does not poison the fall-through path, but a Release in a branch
//     that falls through makes every later use a maybe-released use.
//  2. no leaked lease — a Lease/LeaseData result bound to a local must
//     be discharged somewhere in the same function: Released, handed to
//     a call that consumes it (Transmit, Redeliver, any helper taking
//     the buffer), stored into a longer-lived structure, or returned.
//     A lease whose result is never discharged — or discarded outright —
//     pins a pool buffer forever. (This is the conservative
//     function-local property; the pool-accounting tests catch dynamic
//     leaks the analyzer cannot see.)
//
// Types are matched by name (PacketBuf, BufPool, Switch), so the golden
// testdata's miniatures exercise the same code paths as the real
// netdev package; ep.Release(frame)-style methods on other types take
// an argument and do not match.
var BufDiscipline = &Analyzer{
	Name: "bufdiscipline",
	Doc: "PacketBuf lease contract: never touch a buffer after Release, " +
		"and every Lease/LeaseData result must reach a Release, an " +
		"ownership-transferring call, a store, or a return",
	Scope: scopeAny(
		"ashs/internal/netdev",
		"ashs/internal/aegis",
		"ashs/internal/flyweight",
		"ashs/internal/fault",
		"ashs/internal/proto",
		"ashs/internal/bench",
	),
	Run: runBufDiscipline,
}

func runBufDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterRelease(pass, fd)
			checkLeakedLease(pass, fd)
		}
	}
	return nil
}

// isBufRelease reports whether call is pkt.Release() on a *PacketBuf,
// returning the receiver identifier's object when the receiver is a
// plain local. The zero-argument requirement keeps endpoint-style
// Release(frame) methods on other types from matching even before the
// receiver type is consulted.
func isBufRelease(pass *Pass, call *ast.CallExpr) (types.Object, bool) {
	if len(call.Args) != 0 {
		return nil, false
	}
	name, recv, ok := methodOn(pass.Info, call, "", "PacketBuf")
	if !ok || name != "Release" {
		return nil, false
	}
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return nil, true // released through a field/index path; tracked as a release event, no object
	}
	return pass.Info.Uses[id], true
}

// isLeaseCall reports whether call mints a fresh PacketBuf reference:
// BufPool.Lease, Switch.Lease, or Switch.LeaseData.
func isLeaseCall(pass *Pass, call *ast.CallExpr) bool {
	if name, _, ok := methodOn(pass.Info, call, "", "BufPool"); ok {
		return name == "Lease"
	}
	if name, _, ok := methodOn(pass.Info, call, "", "Switch"); ok {
		return name == "Lease" || name == "LeaseData"
	}
	return false
}

// checkUseAfterRelease walks fd's body in source order tracking which
// PacketBuf locals have been Released, branch by branch. A branch that
// terminates (return/panic/branch statement) keeps its releases to
// itself — the early-error idiom `if bad { pkt.Release(); return err }`
// leaves the fall-through path clean. A branch that falls through
// merges its releases into the outer set, so a conditionally released
// buffer is flagged at any later use.
func checkUseAfterRelease(pass *Pass, fd *ast.FuncDecl) {
	released := map[types.Object]bool{}

	// flagUses reports identifiers in n that resolve to a released
	// buffer.
	var flagUses func(n ast.Node)
	flagUses = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj != nil && released[obj] {
				pass.Reportf(id.Pos(),
					"%s used after Release; the pool may already have recycled the buffer — "+
						"Retain before Release to keep a reference", id.Name)
				delete(released, obj) // one report per release, not per use
			}
			return true
		})
	}

	// handleAssign clears released state for plain-ident targets (a
	// re-lease like pkt = sw.Lease() makes the name valid again) after
	// flagging uses on the RHS and in any non-ident LHS (pkt.Dst = 1 is
	// a use of pkt).
	handleAssign := func(as *ast.AssignStmt) {
		for _, rhs := range as.Rhs {
			flagUses(rhs)
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					delete(released, obj)
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					delete(released, obj)
				}
				continue
			}
			flagUses(lhs)
		}
	}

	// terminates reports whether a statement list cannot fall through:
	// its last statement returns, branches, or panics.
	terminates := func(list []ast.Stmt) bool {
		if len(list) == 0 {
			return false
		}
		switch s := list[len(list)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
		return false
	}

	snapshot := func() map[types.Object]bool {
		cp := make(map[types.Object]bool, len(released))
		for k, v := range released {
			cp[k] = v
		}
		return cp
	}

	var walkStmts func(list []ast.Stmt)
	var walkStmt func(s ast.Stmt)

	// walkBranch runs a nested statement list against a copy of the
	// current released set, merging new releases back only when the
	// branch can fall through to the code after it.
	walkBranch := func(list []ast.Stmt) {
		outer := released
		released = snapshot()
		walkStmts(list)
		if !terminates(list) {
			for k, v := range released {
				outer[k] = outer[k] || v
			}
		}
		released = outer
	}

	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if obj, isRel := isBufRelease(pass, call); isRel {
					// A second Release of the same buffer is a use of a
					// released buffer; flag it before recording.
					flagUses(s)
					if obj != nil {
						released[obj] = true
					}
					return
				}
			}
			flagUses(s)
		case *ast.AssignStmt:
			handleAssign(s)
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			flagUses(s.Cond)
			walkBranch(s.Body.List)
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkBranch(e.List)
				default:
					walkStmt(e)
				}
			}
		case *ast.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			flagUses(s.Cond)
			walkBranch(s.Body.List)
		case *ast.RangeStmt:
			flagUses(s.X)
			walkBranch(s.Body.List)
		case *ast.SwitchStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			flagUses(s.Tag)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBranch(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBranch(cc.Body)
				}
			}
		default:
			flagUses(s)
		}
	}
	walkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			walkStmt(s)
		}
	}
	walkStmts(fd.Body.List)
}

// checkLeakedLease finds Lease/LeaseData results that never leave the
// function: not Released, not passed to any call, not stored, not
// returned. Results consumed in place (return sw.Lease(), f(sw.Lease()))
// escape by construction and are skipped; a bare lease statement whose
// result is dropped is reported outright.
func checkLeakedLease(pass *Pass, fd *ast.FuncDecl) {
	type lease struct {
		obj  types.Object
		call *ast.CallExpr
		name string
	}
	var leases []lease

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isLeaseCall(pass, call) {
			return true
		}
		// Find the nearest enclosing non-paren node to classify how the
		// result is consumed.
		var parent ast.Node
		for i := len(stack) - 1; i >= 0; i-- {
			if _, isParen := stack[i].(*ast.ParenExpr); !isParen {
				parent = stack[i]
				break
			}
		}
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"lease result dropped; the pool buffer can never be Released — bind it or don't lease")
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Unparen(rhs) != call || i >= len(p.Lhs) {
					continue
				}
				id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident)
				if !ok {
					continue // stored through a field/index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"lease result dropped; the pool buffer can never be Released — bind it or don't lease")
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					leases = append(leases, lease{obj: obj, call: call, name: id.Name})
				}
			}
		default:
			// return sw.Lease(), f(sw.LeaseData(d)), T{pkt: sw.Lease()}:
			// the reference escapes where it is minted.
		}
		return true
	})
	if len(leases) == 0 {
		return
	}

	// discharged records objects that, after their lease, reach a
	// Release, appear as a call argument (ownership transfer), appear in
	// a composite literal or on the right of an assignment (store), or
	// appear in a return statement.
	discharged := map[types.Object]bool{}
	tracked := map[types.Object]token.Pos{}
	for _, l := range leases {
		tracked[l.obj] = l.call.Pos()
	}
	// markDirect discharges e only when it IS the tracked identifier
	// (optionally &-addressed or parenthesized) — pkt handed somewhere
	// whole. A mere read through it (pkt.Len(), pkt.Dst) is not a
	// handoff and must not satisfy the leak check.
	markDirect := func(e ast.Expr) {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return
		}
		if pos, isTracked := tracked[obj]; isTracked && id.Pos() > pos {
			discharged[obj] = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj, isRel := isBufRelease(pass, n); isRel && obj != nil {
				if pos, isTracked := tracked[obj]; isTracked && n.Pos() > pos {
					discharged[obj] = true
				}
			}
			if !isLeaseCall(pass, n) { // the lease's own arguments (data slice) are not a handoff
				for _, arg := range n.Args {
					markDirect(arg)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markDirect(r)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markDirect(kv.Value)
					continue
				}
				markDirect(el)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				markDirect(rhs)
			}
		case *ast.DeferStmt:
			if obj, isRel := isBufRelease(pass, n.Call); isRel && obj != nil {
				discharged[obj] = true
			}
		}
		return true
	})

	for _, l := range leases {
		if !discharged[l.obj] {
			pass.Reportf(l.call.Pos(),
				"lease bound to %s never reaches Release, an ownership-transferring call, "+
					"a store, or a return; the pool buffer leaks", l.name)
		}
	}
}
