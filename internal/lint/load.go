package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("ashs/internal/sim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library: module-local imports resolve by directory under the
// module root, and standard-library imports type-check from GOROOT
// source via go/importer's "source" compiler (the repo is intentionally
// dependency-free, so no third-party resolution is needed — or possible).
type Loader struct {
	ModRoot string // directory containing go.mod
	ModPath string // module path from go.mod ("ashs")

	fset  *token.FileSet
	std   types.ImporterFrom
	pkgs  map[string]*Package       // loaded-for-analysis, by import path
	types map[string]*types.Package // type-only dependency cache
}

// NewLoader builds a loader for the module rooted at modRoot, reading
// the module path from its go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("ashlint: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("ashlint: no module line in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		types:   map[string]*types.Package{},
	}, nil
}

// FindModRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("ashlint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// goFiles lists a directory's non-test .go files, sorted.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// parseDir parses a directory's non-test files with comments.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir type-checks the package in dir under importPath, with full
// syntax and type info retained for analysis.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("ashlint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("ashlint: type-checking %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	l.types[importPath] = tpkg
	return p, nil
}

// Import implements types.Importer: module-local paths load from the
// module tree; everything else falls back to GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.types[path]; ok {
		return p, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		// Module-local dependencies get the same full LoadDir treatment as
		// analysis roots so every importer sees one *types.Package identity
		// per path, however the package was first reached.
		dir := filepath.Join(l.ModRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/"))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	tpkg, err := l.std.ImportFrom(path, l.ModRoot, 0)
	if err == nil {
		l.types[path] = tpkg
	}
	return tpkg, err
}

// LoadAll loads every package in the module whose directory matches one
// of the patterns ("./..." loads everything; "dir/..." a subtree; a
// plain relative dir exactly itself). Directories named testdata, hidden
// directories, and directories without non-test Go files are skipped.
func (l *Loader) LoadAll(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	type pat struct {
		rel  string // cleaned, relative to modroot
		tree bool
	}
	var pats []pat
	for _, p := range patterns {
		tree := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			tree = true
			p = rest
			if p == "." || p == "" {
				pats = append(pats, pat{"", true})
				continue
			}
		}
		rel := filepath.Clean(p)
		if rel == "." {
			rel = ""
		}
		pats = append(pats, pat{rel, tree})
	}
	match := func(rel string) bool {
		for _, p := range pats {
			if p.tree && (p.rel == "" || rel == p.rel || strings.HasPrefix(rel, p.rel+"/")) {
				return true
			}
			if !p.tree && rel == p.rel {
				return true
			}
		}
		return false
	}

	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		names, err := goFiles(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(l.ModRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		if len(names) > 0 && match(rel) {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var out []*Package
	for _, rel := range dirs {
		importPath := l.ModPath
		if rel != "" {
			importPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(filepath.Join(l.ModRoot, rel), importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
