package lint_test

import (
	"strings"
	"testing"

	"ashs/internal/lint"
	"ashs/internal/lint/linttest"
)

func TestDeterminism(t *testing.T)     { linttest.Run(t, lint.Determinism, "determinism") }
func TestObsGuard(t *testing.T)        { linttest.Run(t, lint.ObsGuard, "obsguard") }
func TestLockDiscipline(t *testing.T)  { linttest.Run(t, lint.LockDiscipline, "lockdiscipline") }
func TestAllocDiscipline(t *testing.T) { linttest.Run(t, lint.AllocDiscipline, "allocdiscipline") }
func TestBufDiscipline(t *testing.T)   { linttest.Run(t, lint.BufDiscipline, "bufdiscipline") }

// TestIgnoreDirectives pins the suppression contract: a reasoned
// //lint:ignore directive silences its finding, while a reasonless one
// both fails to suppress and is reported itself.
func TestIgnoreDirectives(t *testing.T) {
	p := linttest.LoadPackage(t, "ignores")
	diags, err := lint.Run(p, []*lint.Analyzer{lint.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("ashlint/%s: %s: %s", d.Analyzer, p.Fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Analyzer != "ignore" || !strings.Contains(diags[0].Message, "reason") {
		t.Errorf("first diagnostic = ashlint/%s %q, want ashlint/ignore complaining about a missing reason",
			diags[0].Analyzer, diags[0].Message)
	}
	if diags[1].Analyzer != "determinism" {
		t.Errorf("second diagnostic = ashlint/%s %q, want the unsuppressed determinism finding",
			diags[1].Analyzer, diags[1].Message)
	}
}

// TestScopes pins which import paths each analyzer covers, including the
// path-boundary rule (ashs/internal/sim must not match ashs/internal/simx).
func TestScopes(t *testing.T) {
	cases := []struct {
		a    *lint.Analyzer
		path string
		want bool
	}{
		{lint.Determinism, "ashs/internal/sim", true},
		{lint.Determinism, "ashs/internal/bench", true},
		{lint.Determinism, "ashs/internal/netdev", true},
		{lint.Determinism, "ashs/internal/aegis", true},
		{lint.Determinism, "ashs/internal/proto/tcp", true},
		{lint.Determinism, "ashs/internal/proto/http", true},
		{lint.Determinism, "ashs/internal/simx", false},
		{lint.Determinism, "ashs/cmd/ashbench", false},
		{lint.Determinism, "ashs/internal/obs", false},
		{lint.ObsGuard, "ashs/internal/aegis", true},
		{lint.ObsGuard, "ashs/internal/netdev", true},
		{lint.ObsGuard, "ashs/internal/obs", false},
		{lint.LockDiscipline, "ashs/internal/proto/tcp", true},
		{lint.LockDiscipline, "ashs/internal/proto/ip", false},
		{lint.AllocDiscipline, "ashs/internal/aegis", true},
		{lint.AllocDiscipline, "ashs/internal/crl", true},
		{lint.AllocDiscipline, "ashs/cmd/ashbench", true},
		{lint.AllocDiscipline, "ashs/internal/bench", false},
		{lint.AllocDiscipline, "ashs/examples/remoteincrement", false},
		{lint.BufDiscipline, "ashs/internal/netdev", true},
		{lint.BufDiscipline, "ashs/internal/aegis", true},
		{lint.BufDiscipline, "ashs/internal/flyweight", true},
		{lint.BufDiscipline, "ashs/internal/fault", true},
		{lint.BufDiscipline, "ashs/internal/proto/tcp", true},
		{lint.BufDiscipline, "ashs/internal/bench", true},
		{lint.BufDiscipline, "ashs/internal/sim", false},
		{lint.BufDiscipline, "ashs/cmd/ashbench", false},
	}
	for _, c := range cases {
		if got := c.a.Scope(c.path); got != c.want {
			t.Errorf("%s.Scope(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}
