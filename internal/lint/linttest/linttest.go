// Package linttest is ashlint's analysistest: it runs one analyzer over
// a golden testdata package and checks the diagnostics against `// want`
// comments in the source.
//
// A want comment holds one or more double-quoted regular expressions:
//
//	x := time.Now() // want "wall-clock"
//	y := f()        // want "first finding" "second finding"
//
// Every want pattern must be matched by a diagnostic on its line, and
// every diagnostic must be matched by a want pattern — the test fails in
// both directions, so the golden files pin the analyzer's exact
// behavior: each seeded violation fails, each idiomatic fix passes.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"ashs/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader builds one Loader for the whole test binary: the
// standard-library source importer type-checks each stdlib dependency
// once, however many analyzer tests run.
func sharedLoader() (*lint.Loader, error) {
	loaderOnce.Do(func() {
		_, file, _, ok := runtime.Caller(0)
		if !ok {
			loaderErr = fmt.Errorf("linttest: cannot locate source file")
			return
		}
		root, err := lint.FindModRoot(filepath.Dir(file))
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	return loader, loaderErr
}

// LoadPackage loads internal/lint/testdata/src/<pkg> with the shared
// loader, under the synthetic import path <pkg>.
func LoadPackage(t *testing.T, pkg string) *lint.Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(l.ModRoot, "internal", "lint", "testdata", "src", pkg)
	p, err := l.LoadDir(dir, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Run loads internal/lint/testdata/src/<pkg> and applies a (through the
// same lint.Run path the driver uses, so ignore directives are honored),
// then checks diagnostics against the package's want comments.
func Run(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	p := LoadPackage(t, pkg)
	diags, err := lint.Run(p, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, p)
	var surplus []string
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			surplus = append(surplus, fmt.Sprintf("%s:%d: unexpected diagnostic: ashlint/%s: %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message))
		}
	}
	sort.Strings(surplus)
	for _, s := range surplus {
		t.Error(s)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q",
				filepath.Base(w.file), w.line, w.re.String())
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var (
	wantRE = regexp.MustCompile(`// want (.*)$`)
	quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// collectWants scans each file's comments for want expectations.
func collectWants(t *testing.T, p *lint.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
					pat := strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(q[1])
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}
