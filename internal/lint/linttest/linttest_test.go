package linttest

import (
	"testing"

	"ashs/internal/lint"
)

// TestRunGoldenPackage drives the harness end to end over a real golden
// package: every want must match, every diagnostic must be wanted.
func TestRunGoldenPackage(t *testing.T) {
	Run(t, lint.Determinism, "determinism")
}

// TestLoadPackageSharesLoader loads two packages and checks the shared
// loader caches across calls (the same *Package pointer comes back).
func TestLoadPackageSharesLoader(t *testing.T) {
	a := LoadPackage(t, "ignores")
	b := LoadPackage(t, "ignores")
	if a != b {
		t.Error("LoadPackage reloaded a cached package")
	}
	if a.Path != "ignores" {
		t.Errorf("package path = %q, want %q", a.Path, "ignores")
	}
	if len(a.Files) == 0 || a.Types == nil || a.Info == nil {
		t.Error("loaded package is missing syntax or type information")
	}
}

// TestCollectWants parses the want comments of a golden file directly.
func TestCollectWants(t *testing.T) {
	p := LoadPackage(t, "obsguard")
	wants := collectWants(t, p)
	if len(wants) == 0 {
		t.Fatal("no want comments found in obsguard golden file")
	}
	for _, w := range wants {
		if w.re == nil || w.line == 0 || w.file == "" {
			t.Errorf("malformed want: %+v", w)
		}
	}
}
