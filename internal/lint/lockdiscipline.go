package lint

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces the hashed ConnTable's concurrency contract in
// internal/proto/tcp (the structure that makes the scale experiment safe
// under the parallel runner):
//
//  1. publish-fully-constructed — a *Conn handed to ConnTable.Bind must
//     not be mutated afterwards in the same function: a field write after
//     Bind means a concurrent Lookup can observe a half-built
//     connection. Publishing into a conn bucket map directly (bypassing
//     Bind) is flagged outside ConnTable's own methods.
//  2. no bucket lock across Conn calls — Conn methods run the protocol
//     state machine (which can block on the event loop or re-enter the
//     table); holding a bucket mutex across one is a deadlock seed.
//  3. no copies of lock-bearing structs — a bucket copied by value
//     (range, assignment, call argument) forks its mutex, silently
//     splitting the critical section. This is go vet's copylocks
//     narrowed to the package where it guards a stated invariant.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "ConnTable contract: publish fully constructed conns via Bind, " +
		"never hold a bucket lock across Conn method calls, never copy " +
		"lock-bearing structs",
	Scope: scopeAny("ashs/internal/proto/tcp"),
	Run:   runLockDiscipline,
}

func runLockDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBindThenMutate(pass, fd)
			checkDirectPublish(pass, fd)
			checkLockHeldAcrossConnCalls(pass, fd)
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			checkLockCopy(pass, n)
			return true
		})
	}
	return nil
}

// checkBindThenMutate reports field writes to a *Conn after the same
// function passed it to ConnTable.Bind.
func checkBindThenMutate(pass *Pass, fd *ast.FuncDecl) {
	// Collect (object, Bind-call-end) for conns published in this func.
	published := map[types.Object]ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _, ok := methodOn(pass.Info, call, "", "ConnTable")
		if !ok || name != "Bind" || len(call.Args) < 2 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, exists := published[obj]; !exists {
					published[obj] = call
				}
			}
		}
		return true
	})
	if len(published) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			bind, wasPublished := published[obj]
			if wasPublished && as.Pos() > bind.End() {
				pass.Reportf(as.Pos(),
					"write to %s.%s after ConnTable.Bind published it; "+
						"a concurrent Lookup can observe the half-constructed conn — fully construct before Bind",
					id.Name, sel.Sel.Name)
			}
		}
		return true
	})
}

// checkDirectPublish flags stores into a map[...]​*Conn outside
// ConnTable's own methods: every publish must flow through Bind, which
// holds the bucket lock and rejects duplicate tuples.
func checkDirectPublish(pass *Pass, fd *ast.FuncDecl) {
	if recvType(pass, fd) == "ConnTable" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			tv, ok := pass.Info.Types[ix.X]
			if !ok {
				continue
			}
			m, ok := tv.Type.Underlying().(*types.Map)
			if !ok {
				continue
			}
			elem := namedOf(m.Elem())
			if elem != nil && elem.Obj().Name() == "Conn" && elem.Obj().Pkg() == pass.Pkg {
				pass.Reportf(as.Pos(),
					"direct store into a conn map outside ConnTable methods; publish through Bind (lock + duplicate check)")
			}
		}
		return true
	})
}

// recvType names the receiver's (pointer-stripped) type of a method, or
// "" for plain functions.
func recvType(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	if n := namedOf(tv.Type); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// checkLockHeldAcrossConnCalls walks a function body in source order
// tracking which mutex expressions are locked, and flags Conn method
// calls made while any is held. A deferred Unlock keeps the mutex held
// to the end of the function (that is the idiom's point), so everything
// after the defer is a critical section.
func checkLockHeldAcrossConnCalls(pass *Pass, fd *ast.FuncDecl) {
	held := map[string]bool{}
	var walkStmts func(list []ast.Stmt)

	lockOp := func(call *ast.CallExpr) (op string, key string, ok bool) {
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel {
			return "", "", false
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return "", "", false
		}
		tv, okT := pass.Info.Types[sel.X]
		if !okT {
			return "", "", false
		}
		n := namedOf(tv.Type)
		if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
			return "", "", false
		}
		if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
			return "", "", false
		}
		return sel.Sel.Name, types.ExprString(ast.Unparen(sel.X)), true
	}

	// flagConnCalls reports Conn method calls within n while a lock is
	// held (lock operations themselves excluded).
	flagConnCalls := func(n ast.Node) {
		if len(held) == 0 {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, _, isLockOp := lockOp(call); isLockOp {
				return true
			}
			name, _, ok := methodOn(pass.Info, call, "", "Conn")
			if ok {
				for k := range held {
					pass.Reportf(call.Pos(),
						"call to (*Conn).%s while bucket lock %s is held; "+
							"Conn methods can block or re-enter the table — release the lock first", name, k)
					break
				}
			}
			return true
		})
	}

	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if op, key, ok := lockOp(call); ok {
					switch op {
					case "Lock", "RLock":
						held[key] = true
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					return
				}
			}
			flagConnCalls(s)
		case *ast.DeferStmt:
			if op, _, ok := lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// Critical section extends to function end; leave held.
				return
			}
			flagConnCalls(s)
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			flagConnCalls(s.Cond)
			walkStmts(s.Body.List)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.ForStmt:
			walkStmts(s.Body.List)
		case *ast.RangeStmt:
			walkStmts(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		default:
			flagConnCalls(s)
		}
	}
	walkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			walkStmt(s)
		}
	}
	walkStmts(fd.Body.List)
}

// checkLockCopy flags by-value copies of lock-bearing structs: range
// values, plain assignments/declarations from non-composite sources, and
// call arguments.
func checkLockCopy(pass *Pass, n ast.Node) {
	lockCopyExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			return false // construction / returned value, not a copy of a live lock
		}
		tv, ok := pass.Info.Types[e]
		if !ok {
			return false
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return false
		}
		return containsLock(tv.Type)
	}

	switch n := n.(type) {
	case *ast.RangeStmt:
		if n.Value == nil {
			return
		}
		// With := the value ident is a definition (Info.Defs); with = it
		// is an ordinary expression (Info.Types).
		var vt types.Type
		if id, ok := n.Value.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				vt = obj.Type()
			}
		}
		if vt == nil {
			if tv, ok := pass.Info.Types[n.Value]; ok {
				vt = tv.Type
			}
		}
		if vt != nil && containsLock(vt) {
			pass.Reportf(n.Value.Pos(),
				"range copies lock-bearing %s by value; iterate by index (for i := range ...)",
				vt.String())
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			if lockCopyExpr(rhs) {
				pass.Reportf(rhs.Pos(),
					"assignment copies lock-bearing %s by value; use a pointer",
					pass.Info.Types[ast.Unparen(rhs)].Type.String())
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		for _, arg := range n.Args {
			if lockCopyExpr(arg) {
				pass.Reportf(arg.Pos(),
					"argument copies lock-bearing %s by value; pass a pointer",
					pass.Info.Types[ast.Unparen(arg)].Type.String())
			}
		}
	}
}
