package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the serial-vs-parallel byte-identity contract: in
// the simulator's deterministic core (internal/sim, internal/bench,
// internal/netdev, internal/aegis, internal/proto/...), forbid wall-clock
// time sources, the global math/rand source, and map iteration with
// order-dependent effects. These are exactly the bug classes that would
// silently break the `cmp` gates in ci.sh: wall-clock and the global
// PRNG vary run to run, and Go randomizes map iteration order per run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, the global math/rand source, and " +
		"order-dependent map iteration in the deterministic simulator core",
	Scope: scopeAny(
		"ashs/internal/sim",
		"ashs/internal/bench",
		"ashs/internal/netdev",
		"ashs/internal/aegis",
		"ashs/internal/proto",
		"ashs/internal/workload",
		"ashs/internal/relay",
		"ashs/internal/fault",
		"ashs/internal/flyweight",
	),
	Run: runDeterminism,
}

// wall-clock time sources; the simulator's only clock is sim.Engine.Now.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// math/rand package-level constructors that do NOT draw from the global
// source (and so are deterministic when seeded explicitly).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, name := pkgFunc(pass.Info, n)
				switch {
				case pkg == "time" && wallClockFuncs[name]:
					pass.Reportf(n.Pos(),
						"wall-clock time.%s in deterministic code; use the virtual clock (sim.Engine.Now)", name)
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
					pass.Reportf(n.Pos(),
						"global math/rand source (rand.%s) in deterministic code; use a seeded sim.Rand", name)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `range m` over a map whose loop body has
// order-dependent effects. Go randomizes map iteration order, so any
// effect that differs under permutation — rendered output, channel
// sends, event-queue insertion, order-sensitive writes — makes two
// identical runs diverge. The loop is accepted only when every write it
// performs is order-insensitive:
//
//   - writes to variables declared inside the loop body,
//   - map-index writes (m2[k] = v: keyed, last-writer-irrelevant),
//   - commutative accumulation (x++, x--, x += e, x |= e, x &= e, x ^= e),
//   - appends into a slice that the same function later passes to a
//     sort.* / slices.Sort* call (collect-then-sort idiom),
//   - delete on a map,
//   - returns of constant-only values (membership probes).
//
// Everything else — calls, sends, go/defer, plain assignment to outer
// variables — is reported.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Objects declared within the loop body (including the key/value
	// vars) — writes to these are order-local.
	local := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, isDef := pass.Info.Defs[id]; isDef && obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	// Slices sorted after the loop in the same function: appends to
	// them inside the loop are the blessed collect-then-sort idiom.
	sortedAfter := sortedSlices(pass, rng, stack)

	objOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return pass.Info.Uses[id]
		}
		return nil
	}

	var report func(pos token.Pos, what string)
	reported := false
	report = func(pos token.Pos, what string) {
		if reported {
			return // one finding per loop is enough signal
		}
		reported = true
		pass.Reportf(pos, "map iteration with order-dependent effect (%s); "+
			"iteration order is randomized — sort the keys first or justify with //lint:ignore ashlint/determinism", what)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "goroutine launch")
			return false
		case *ast.DeferStmt:
			report(n.Pos(), "defer")
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if !isConst(pass.Info, r) {
					report(n.Pos(), "return of iteration-dependent value")
					return false
				}
			}
		case *ast.IncDecStmt:
			return true // commutative
		case *ast.ExprStmt:
			// Standalone calls: only order-insensitive builtins pass.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
						return true
					}
				}
				report(n.Pos(), "call with potentially order-dependent effects")
				return false
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN, token.DEFINE:
				return true // commutative accumulation / local declaration
			}
			for i, lhs := range n.Lhs {
				lhs := ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok {
					obj := pass.Info.Uses[id]
					if obj == nil || local[obj] || id.Name == "_" {
						continue
					}
					// s = append(s, ...) into a later-sorted slice.
					if i < len(n.Rhs) {
						if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
							if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
								if _, isBuiltin := pass.Info.Uses[fid].(*types.Builtin); isBuiltin &&
									len(call.Args) > 0 && objOf(call.Args[0]) == obj && sortedAfter[obj] {
									continue
								}
							}
						}
					}
					report(n.Pos(), "write to variable declared outside the loop")
					return false
				}
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := pass.Info.Types[ix.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							continue // keyed write, order-insensitive
						}
					}
				}
				// sl.field = v where sl is the loop value (or another
				// loop-local): a per-entry store through a distinct
				// pointer each iteration, order-insensitive as long as
				// entries don't alias.
				if obj := rootObj(pass.Info, lhs); obj != nil && local[obj] {
					continue
				}
				report(n.Pos(), "order-sensitive write")
				return false
			}
		}
		return true
	})
}

// rootObj strips selectors, indexes, derefs, and parens from an
// assignable expression and resolves its base identifier.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}

// sortedSlices collects the objects of slice variables that, after the
// range statement and within the same enclosing function, appear as an
// argument to a sort.* or slices.* call.
func sortedSlices(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = fn.Body
		case *ast.FuncLit:
			fnBody = fn.Body
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return out
	}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkg, _ := pkgFunc(pass.Info, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}
