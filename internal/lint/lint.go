// Package lint is ashlint's analysis framework: a self-contained,
// dependency-free reimplementation of the go/analysis surface the repo's
// custom analyzers need.
//
// The paper's thesis is that untrusted code is checked *before* it runs —
// the DPF/ASH verifier rejects a handler statically instead of trusting
// it dynamically. internal/vcode/analysis applies that to downloaded
// VCODE; this package applies it to the Go codebase itself. The repo's
// headline guarantees (byte-identical output at any -parallel level,
// publish-fully-constructed ConnTable entries, nil-obs-plane = zero
// cost, no alloc panics on the data path) are otherwise enforced only by
// golden tests that catch violations after the fact; each analyzer here
// turns one of them into a compile-time-style gate.
//
// Why not golang.org/x/tools/go/analysis: the module is intentionally
// dependency-free (go.mod has no requires), so the framework is built on
// go/ast + go/types alone. The shapes mirror go/analysis deliberately —
// an Analyzer with a Run(*Pass), positioned Diagnostics — so migrating
// onto the real framework later is mechanical.
//
// Suppressions: a finding can be silenced with
//
//	//lint:ignore ashlint/<name> <reason>
//
// on the offending line or the line above it. The reason is mandatory;
// an ignore directive without one is itself reported (as
// ashlint/ignore), so every suppression in the tree carries its
// justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// All is the ashlint suite, in stable reporting order.
var All = []*Analyzer{Determinism, ObsGuard, LockDiscipline, AllocDiscipline, BufDiscipline}

// An Analyzer describes one statically checked invariant.
type Analyzer struct {
	// Name is the short identifier; diagnostics are tagged
	// "ashlint/<Name>" and that tag is what ignore directives reference.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// proves, shown by `ashlint -list`.
	Doc string

	// Scope reports whether the analyzer applies to the package with the
	// given import path. The driver consults Scope; test harnesses call
	// Run directly and bypass it. A nil Scope means every package.
	Scope func(pkgPath string) bool

	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // parsed non-test files, with comments
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // short analyzer name, without the ashlint/ prefix
	Message  string
}

// ignoreName is the pseudo-analyzer under which malformed ignore
// directives are reported. It cannot itself be ignored.
const ignoreName = "ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	analyzer string // bare name, "ashlint/" prefix stripped
	reason   string
}

const ignorePrefix = "//lint:ignore "

// parseIgnores extracts lint:ignore directives from a file, keyed by the
// line they apply to: the line the comment sits on covers both that line
// (trailing comment) and the next (comment on its own line).
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			name = strings.TrimPrefix(name, "ashlint/")
			out = append(out, ignoreDirective{
				pos:      c.Pos(),
				analyzer: name,
				reason:   strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// Run applies analyzers to pkg (Scope is NOT consulted; the caller
// filters), collects diagnostics, applies ignore directives, and reports
// malformed directives. Diagnostics come back sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("ashlint/%s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	// Index ignore directives by (file, line).
	type key struct {
		file string
		line int
	}
	suppress := map[key]map[string]bool{} // line -> analyzer set
	for _, f := range pkg.Files {
		for _, d := range parseIgnores(pkg.Fset, f) {
			p := pkg.Fset.Position(d.pos)
			if d.reason == "" || d.analyzer == "" || d.analyzer == ignoreName {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: ignoreName,
					Message:  "lint:ignore directive requires a non-empty reason: //lint:ignore ashlint/<name> <reason>",
				})
				continue
			}
			for _, line := range []int{p.Line, p.Line + 1} {
				k := key{p.Filename, line}
				if suppress[k] == nil {
					suppress[k] = map[string]bool{}
				}
				suppress[k][d.analyzer] = true
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if d.Analyzer != ignoreName && suppress[key{p.Filename, p.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// --------------------------------------------------------------------
// Shared AST/type helpers used by the analyzers.
// --------------------------------------------------------------------

// walkStack traverses root in source order, calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("", "" if the callee is not one).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

// methodOn reports the called method's name when call is a method call
// whose receiver's (pointer-stripped) named type is typeName declared in
// a package whose path matches pkgPath ("" matches any package).
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName string) (name string, recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", nil, false
	}
	named := namedOf(selection.Recv())
	if named == nil || named.Obj().Name() != typeName {
		return "", nil, false
	}
	if pkgPath != "" && (named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pkgPath) {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// namedOf strips pointers and returns the named type beneath t, if any.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if ptr, ok := t.(*types.Pointer); ok {
			n, _ = ptr.Elem().(*types.Named)
		}
	}
	return n
}

// isConst reports whether expr has a compile-time constant value.
func isConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// enclosingFuncDecl returns the innermost *ast.FuncDecl on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// containsLock reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value (through struct fields and arrays, not through
// pointers, slices, maps, or channels).
func containsLock(t types.Type) bool {
	return containsLock1(t, map[types.Type]bool{})
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once") {
			return true
		}
		return containsLock1(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}

// pathIn reports whether pkgPath is path or lies beneath it.
func pathIn(pkgPath, path string) bool {
	return pkgPath == path || strings.HasPrefix(pkgPath, path+"/")
}

// scopeAny builds a Scope func matching any of the given roots.
func scopeAny(roots ...string) func(string) bool {
	return func(p string) bool {
		for _, r := range roots {
			if pathIn(p, r) {
				return true
			}
		}
		return false
	}
}
