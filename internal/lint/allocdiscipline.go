package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllocDiscipline enforces the no-panic-on-the-data-path allocation
// contract (the PR 3 bug class: AllocPhys exhaustion panicking a live
// kernel mid-experiment).
//
// Must* helpers (MustAlloc, MustAssemble, ...) panic on failure. That is
// the right contract at build time — a world that cannot allocate its
// fixed rings is a configuration error — but on a runtime path it turns
// a recoverable out-of-memory into a crashed simulation. The analyzer
// flags Must* calls outside build-time setup contexts:
//
//   - functions named New*/Boot*/Build*/Setup*/Install*/install*/init/
//     main, or themselves Must* wrappers,
//   - handler-constructor functions returning *vcode.Program (code
//     generation runs at download time by construction),
//   - package-level variable initializers.
//
// It also flags calls to the error-returning allocators (Alloc,
// AllocPhys) whose error result is discarded — the half-way failure
// mode where the error exists but nobody looks.
var AllocDiscipline = &Analyzer{
	Name: "allocdiscipline",
	Doc: "Must* allocation helpers only on build-time setup paths; " +
		"Alloc/AllocPhys errors must be checked",
	// The simulated system is in scope; internal/bench and examples/ are
	// harness code where Must* is the intended API — an experiment world
	// that fails to build should panic, like a test.
	Scope: func(p string) bool {
		return pathIn(p, "ashs") &&
			!pathIn(p, "ashs/internal/bench") &&
			!pathIn(p, "ashs/examples")
	},
	Run: runAllocDiscipline,
}

var setupFuncPrefixes = []string{"New", "Boot", "Build", "Setup", "Install", "install", "Must", "must"}

func isSetupFuncName(name string) bool {
	if name == "init" || name == "main" {
		return true
	}
	for _, p := range setupFuncPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// returnsVCodeProgram reports whether the function's results include
// *vcode.Program — the signature of a handler constructor.
func returnsVCodeProgram(pass *Pass, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, r := range ft.Results.List {
		tv, ok := pass.Info.Types[r.Type]
		if !ok {
			continue
		}
		n := namedOf(tv.Type)
		if n != nil && n.Obj().Name() == "Program" &&
			n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "ashs/internal/vcode" {
			return true
		}
	}
	return false
}

func runAllocDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkMustCall(pass, call, stack)
			return true
		})
		// Unchecked allocator errors: inspect statements, not bare calls,
		// so we can see how the results are bound.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := allocatorCall(pass, call); ok {
						pass.Reportf(call.Pos(),
							"result and error of %s discarded; check the error (the PR 3 panic class began as an unchecked allocation)", name)
					}
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := allocatorCall(pass, call)
				if !ok {
					return true
				}
				// The error is the last result; `_` there is a discard.
				if len(n.Lhs) >= 2 {
					if id, ok := ast.Unparen(n.Lhs[len(n.Lhs)-1]).(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(n.Pos(),
							"error from %s assigned to _; propagate it instead of allocating blind", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkMustCall flags calls to Must*-named functions/methods outside
// setup contexts.
func checkMustCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	var callee string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	default:
		return
	}
	if !strings.HasPrefix(callee, "Must") {
		return
	}
	// Resolve to a function or method (not a type conversion or field).
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if _, isFunc := pass.Info.Uses[id].(*types.Func); !isFunc {
		return
	}

	// Find the enclosing function; package-level initializers (no
	// enclosing FuncDecl) are build-time by definition.
	fd := enclosingFuncDecl(stack)
	if fd == nil {
		return
	}
	if isSetupFuncName(fd.Name.Name) || returnsVCodeProgram(pass, fd.Type) {
		return
	}
	// A function literal inside a setup function inherits its context.
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok && returnsVCodeProgram(pass, fl.Type) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"%s on a runtime path (in %s); Must* helpers panic on failure — "+
			"use the error-returning form and propagate", callee, fd.Name.Name)
}

// allocatorCall matches calls to the error-returning allocators: methods
// named Alloc or AllocPhys whose last result is an error.
func allocatorCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Alloc" && sel.Sel.Name != "AllocPhys" {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() < 2 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" {
		return "", false
	}
	return types.ExprString(sel), true
}
