package tcp

import (
	"encoding/binary"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/pipe"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
)

// fastPath is the downloaded common-case receive handler of Section V-B:
// "Our TCP implementation lowers the cost of data transfer by placing the
// common-case fast path in a handler which can be run either as an ASH or
// an upcall. This handler employs dynamic ILP to combine the checksum and
// copy of message data."
//
// The handler runs when three constraints hold: the packet is expected
// (header prediction), the user-level library is not using the TCB, and
// the library is not behind in processing. Otherwise it aborts and the
// message is handled by the user-level library.
type fastPath struct {
	c     *Conn
	sys   *core.System
	fa    *core.FuncASH
	up    *aegis.Upcall
	engID int // DILP engine: integrated copy(+checksum)

	remote link.Addr // pre-resolved reply destination
}

// installFastPath compiles the handler's DILP engine, downloads the
// handler in the configured placement, and attaches it upstream of the
// connection's ring.
func installFastPath(c *Conn) *fastPath {
	sys := c.Cfg.Sys
	if sys == nil {
		panic("tcp: handler mode requires Config.Sys (the host's ASH system)")
	}
	f := &fastPath{c: c, sys: sys}

	// Dynamic ILP: compose the transfer engine at runtime from the pipes
	// this connection needs — exactly the Fig. 1 flow.
	pl := pipe.NewList(1)
	if c.Cfg.Checksum {
		if _, _, err := pipe.Cksum(pl); err != nil {
			panic(err)
		}
	}
	eng, err := pipe.Compile(pl, pipe.Options{Output: true})
	if err != nil {
		panic(err)
	}
	f.engID = sys.RegisterEngine(eng)

	la, err := c.St.Res.Resolve(c.owner(), c.remoteIP)
	if err != nil {
		panic(err)
	}
	f.remote = la

	switch c.Cfg.Mode {
	case ModeASH:
		f.fa = sys.NewFuncASH(c.owner(), "tcp-fastpath", true, f.handle)
		c.St.Ep.InstallHandler(f.fa)
		f.fa.OnTrip(func() { c.St.Ep.InstallHandler(nil) })
	case ModeASHUnsafe:
		f.fa = sys.NewFuncASH(c.owner(), "tcp-fastpath", false, f.handle)
		c.St.Ep.InstallHandler(f.fa)
		f.fa.OnTrip(func() { c.St.Ep.InstallHandler(nil) })
	case ModeUpcall:
		f.up = aegis.NewUpcall(c.owner(), func(mc *aegis.MsgCtx) aegis.Disposition {
			return f.handle(sys.UpcallCtx(c.owner(), mc))
		})
		c.St.Ep.InstallUpcall(f.up)
	}
	return f
}

// abort returns the message to the kernel for normal (user-level)
// handling, counting a data segment the library must process in order.
func (f *fastPath) abort(isData bool) aegis.Disposition {
	f.c.HandlerAborts++
	if isData {
		f.c.slowQueued++
	}
	return aegis.DispToUser
}

// fastHdrMax bounds the header region the handler gathers out of a
// striped buffer: link header + maximum IP header + maximum TCP header.
const fastHdrMax = 160

// fastStripedMax is the largest striped payload the handler moves itself
// (with checked byte accesses through the stripe); larger segments defer
// to the stripe-aware library. Small enough that the bytewise move stays
// cheaper than the library path, large enough for small-message ping-pong
// traffic — the workload this placement exists for.
const fastStripedMax = 2 * aegis.StripeChunk

// handle is the handler body. It models its straight-line protocol code
// with explicit instruction counts (the paper's remote-increment handler
// measures a 90-instruction base; header prediction is of that order) and
// uses kernel services — DILP, message send — for the heavy lifting.
func (f *fastPath) handle(ctx *core.Ctx) aegis.Disposition {
	c := f.c
	e := ctx.Entry()

	// Parse IP + TCP headers and run the prediction checks: ~90
	// instructions, mostly loads from the (uncached) message.
	ctx.Straightline(90, 14)

	ipOff := c.St.LinkHdrLen
	n := e.Len
	if n < ipOff+ip.HeaderLen+HeaderLen {
		return f.abort(false)
	}
	// Over the AN2 the DMA layout is contiguous and the message is
	// addressed in place. The Ethernet's DMA leaves the frame *striped*
	// (16 data bytes, 16 pad, repeating): the handler gathers the header
	// region into a scratch with word reads through the stripe and only
	// handles small payloads itself (see fastStripedMax).
	striped := ctx.Striped()
	var data, raw []byte
	if striped {
		raw = ctx.RawData()
		hdrN := n
		if hdrN > fastHdrMax {
			hdrN = fastHdrMax
		}
		hdr := make([]byte, hdrN)
		for i := range hdr {
			hdr[i] = raw[aegis.StripedIndex(i)]
		}
		ctx.Straightline(hdrN/2, hdrN/4)
		data = hdr
	} else {
		data = ctx.Data()
	}
	if data[ipOff]>>4 != 4 || data[ipOff+9] != ip.ProtoTCP {
		return f.abort(false)
	}
	totalLen := int(binary.BigEndian.Uint16(data[ipOff+2:]))
	ihl := int(data[ipOff]&0xf) * 4
	tcpOff := ipOff + ihl
	// The handler runs on raw board-accepted bytes, so a corrupted IHL or
	// total length that slipped past the link CRC must not drive its
	// indexing: anything out of range defers to the library, whose full
	// input path validates the header checksums.
	if ihl < ip.HeaderLen || tcpOff+HeaderLen > len(data) {
		return f.abort(false)
	}
	h, dataOff, err := Parse(data[tcpOff:])
	if err != nil || h.DstPort != c.localPort || h.SrcPort != c.remotePort {
		return f.abort(false)
	}
	plen := totalLen - ihl - dataOff
	if plen < 0 || tcpOff+dataOff+plen > n {
		return f.abort(false)
	}
	isData := plen > 0

	// Constraint: the packet is "expected".
	if h.Flags&^(ACK|PSH) != 0 || h.Flags&ACK == 0 {
		return f.abort(isData)
	}
	if c.state != Established {
		return f.abort(isData)
	}
	if isData && h.Seq != c.rcvNxt {
		return f.abort(isData)
	}
	if !seqLE(h.Ack, c.sndNxt) {
		return f.abort(isData)
	}
	// Constraint: the user-level library is not using the TCB.
	if c.tcbLocked {
		return f.abort(isData)
	}
	// Constraint: the library is not behind (messages must stay in order).
	if c.slowQueued > 0 {
		return f.abort(isData)
	}

	if isData {
		if c.hrTail-c.hrHead+plen > c.Cfg.Window {
			return f.abort(isData) // no ring space: library path decides
		}
		var acc uint32
		w := c.Cfg.Window
		aligned := plen &^ 3
		if striped {
			// Striped small-message path: every payload byte moves with a
			// checked access through the stripe. DILP's word loop would
			// fault on the pad lines, so the handler caps what it moves.
			if plen > fastStripedMax {
				return f.abort(isData)
			}
			aligned = 0
		} else {
			// Integrated checksum-and-copy straight into the application's
			// receive ring via dynamic ILP.
			srcAddr := e.Addr + uint32(tcpOff+dataOff)
			pos := c.hrTail % w
			first := min(aligned, w-pos)
			first &^= 3
			a1, errD := ctx.DILP(f.engID, srcAddr, c.hring.Base+uint32(pos), first)
			if errD != nil {
				return f.abort(isData)
			}
			acc = a1
			if aligned > first {
				a2, errD := ctx.DILP(f.engID, srcAddr+uint32(first), c.hring.Base, aligned-first)
				if errD != nil {
					return f.abort(isData)
				}
				acc = cksum32Add(acc, a2)
			}
		}
		// Remaining bytes (the < 4-byte tail, or the whole striped
		// payload): moved with checked single-byte accesses.
		for i := aligned; i < plen; i++ {
			ctx.Straightline(3, 2)
			var b byte
			if striped {
				b = raw[aegis.StripedIndex(tcpOff+dataOff+i)]
			} else {
				b = data[tcpOff+dataOff+i]
			}
			dstPos := (c.hrTail + i) % w
			f.ringBytes()[dstPos] = b
			if i%2 == 0 {
				acc = cksum32Add(acc, uint32(b)<<8)
			} else {
				acc = cksum32Add(acc, uint32(b))
			}
		}

		if c.Cfg.Checksum {
			// Fold in pseudo-header and TCP header; verify.
			ctx.Straightline(24, 2)
			want := ip.PseudoCksum(d(srcIP(data, ipOff)), d(dstIP(data, ipOff)), ip.ProtoTCP, totalLen-ihl)
			want += h.headerAccum() + uint32(h.Checksum)
			if link.FoldCksum(cksum32Add(want, acc)) != 0xffff {
				c.BadChecksum++
				// Drop silently: state untouched (hrTail uncommitted), the
				// peer retransmits.
				return aegis.DispConsumed
			}
		}
		// Commit.
		c.hrTail += plen
		c.rcvNxt += uint32(plen)
		c.unacked += plen
	} else if c.Cfg.Checksum {
		ctx.Straightline(30, 4) // verify header-only checksum
	}

	// Protocol bookkeeping beyond the parse: TCB update, receive-ring
	// accounting, timer maintenance, delivery state. The paper's TCP fast
	// path is a substantial compiled-C handler (the remote-increment
	// handler alone is 90 instructions); its bookkeeping grows with the
	// amount of data delivered (ring arithmetic, buffer descriptors).
	if isData {
		ctx.Straightline(250+plen/16, 90+plen/32)
	} else {
		ctx.Straightline(150, 50)
	}

	// ACK processing (send side advance).
	if seqLT(c.sndUna, h.Ack) && seqLE(h.Ack, c.sndNxt) {
		c.sndUna = h.Ack
	}
	c.updateWindow(h.Seq, h.Ack, int(h.Window))

	// Acknowledgment policy: force an ACK from the handler once 2 MSS of
	// data is unacknowledged (keeps the sender's window moving even when
	// the application is not scheduled); otherwise leave it to piggyback
	// on the application's next write or the library's delayed-ACK timer.
	if c.unacked >= 2*c.Cfg.MSS {
		f.sendAckFromHandler(ctx)
	} else if c.unacked > 0 && !c.ackDue {
		c.ackDue = true
		c.ackDeadline = c.now() + c.kern().Prof.Cycles(c.Cfg.AckDelayUs)
	}

	c.HandlerConsumed++
	ctx.Doorbell()
	return aegis.DispConsumed
}

// ringBytes is the raw handler-ring view.
func (f *fastPath) ringBytes() []byte {
	return f.c.kern().Bytes(f.c.hring.Base, f.c.Cfg.Window)
}

// sendAckFromHandler builds and initiates a bare ACK from handler context
// — message initiation without a system call (for ASHs).
func (f *fastPath) sendAckFromHandler(ctx *core.Ctx) {
	c := f.c
	ctx.Straightline(60, 8) // header construction
	h := Header{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: ACK,
		Window: uint16(c.advertisedWindow()),
	}
	if c.Cfg.Checksum {
		acc := ip.PseudoCksum(c.St.Local, c.remoteIP, ip.ProtoTCP, HeaderLen)
		acc += h.headerAccum()
		h.Checksum = ^link.FoldCksum(acc)
	}
	iph := ip.Header{TotalLen: uint16(ip.HeaderLen + HeaderLen), TTL: 64,
		Proto: ip.ProtoTCP, Src: c.St.Local, Dst: c.remoteIP}
	var buf []byte
	if c.St.PrependLink != nil {
		buf = c.St.PrependLink(f.remote, buf)
	}
	buf = iph.Marshal(buf)
	buf = h.Marshal(buf)
	ctx.Send(f.remote.Port, f.remote.VC, buf)
	c.unacked = 0
	c.ackDue = false
}

// cksum32Add combines two ones-complement accumulators.
func cksum32Add(a, b uint32) uint32 {
	s := uint64(a) + uint64(b)
	return uint32(s) + uint32(s>>32)
}

// srcIP / dstIP extract addresses from a raw IP header.
func srcIP(data []byte, off int) [4]byte {
	var a [4]byte
	copy(a[:], data[off+12:off+16])
	return a
}
func dstIP(data []byte, off int) [4]byte {
	var a [4]byte
	copy(a[:], data[off+16:off+20])
	return a
}
func d(a [4]byte) ip.Addr { return ip.Addr(a) }
