package tcp

import (
	"fmt"
	"sync"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/dpf"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// lookupInspect runs inspect(c) while still holding the bucket's read
// lock, so tests can examine a connection's fields with a happens-before
// edge against any writer that later removes and tears it down.
func (t *ConnTable) lookupInspect(k FourTuple, inspect func(c *Conn)) bool {
	b := t.bucket(k)
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.m[k]
	if ok {
		inspect(c)
	}
	return ok
}

func tupleFor(i int) FourTuple {
	return FourTuple{
		LocalIP:    ip.V4(10, 0, 0, 1),
		LocalPort:  80,
		RemoteIP:   ip.V4(10, 0, byte(i>>8), byte(i)),
		RemotePort: uint16(1000 + i),
	}
}

func TestConnTableBasics(t *testing.T) {
	tbl := NewConnTable(33) // rounds up to 64
	if got := len(tbl.buckets); got != 64 {
		t.Fatalf("bucket count = %d, want 64", got)
	}
	k := tupleFor(0)
	c := &Conn{localPort: k.LocalPort, remoteIP: k.RemoteIP, remotePort: k.RemotePort, state: Established}
	if err := tbl.Bind(k, c); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := tbl.Bind(k, &Conn{}); err == nil {
		t.Fatalf("duplicate Bind succeeded")
	}
	got, ok := tbl.Lookup(k)
	if !ok || got != c {
		t.Fatalf("Lookup = %v, %v; want original conn", got, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	if !tbl.Remove(k) {
		t.Fatalf("Remove reported absent")
	}
	if tbl.Remove(k) {
		t.Fatalf("second Remove reported present")
	}
	if _, ok := tbl.Lookup(k); ok {
		t.Fatalf("Lookup found removed conn")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tbl.Len())
	}
}

// TestConnTableHashSpread binds several hundred distinct tuples and checks
// the FNV hash spreads them across buckets rather than piling into a few:
// the sub-linear demux claim of the scale experiment depends on bucket
// chains staying O(1).
func TestConnTableHashSpread(t *testing.T) {
	tbl := NewConnTable(64)
	const n = 512
	for i := 0; i < n; i++ {
		if err := tbl.Bind(tupleFor(i), &Conn{state: Established}); err != nil {
			t.Fatalf("Bind %d: %v", i, err)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	max := 0
	for i := range tbl.buckets {
		if l := len(tbl.buckets[i].m); l > max {
			max = l
		}
	}
	// Perfect spread is 8 per bucket; allow generous slack but reject a
	// degenerate hash that funnels everything into a handful of chains.
	if max > 4*n/len(tbl.buckets) {
		t.Fatalf("worst bucket holds %d of %d conns (degenerate hash?)", max, n)
	}
}

// TestConnTableChurn opens and closes hundreds of connections from several
// writer goroutines while reader goroutines continuously look tuples up —
// the shape of segment delivery racing connection teardown in the parallel
// experiment runner. Run under -race; the invariant is that a successful
// lookup never observes a torn or closed Conn: every published connection
// is fully constructed (identity fields set, state Established) and is
// removed from the table before teardown flips its state.
func TestConnTableChurn(t *testing.T) {
	tbl := NewConnTable(0)
	const (
		writers       = 4
		connsPerShard = 64
		rounds        = 25
	)
	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})

	// Readers: model the demux path, delivering "segments" to whatever
	// connection currently owns the tuple.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := tupleFor(i % (writers * connsPerShard))
				tbl.lookupInspect(k, func(c *Conn) {
					if c == nil {
						t.Errorf("lookup %s returned nil conn", k)
						return
					}
					if c.state != Established {
						t.Errorf("lookup %s observed state %v (torn or closed conn published)", k, c.state)
					}
					if c.remotePort != k.RemotePort || c.remoteIP != k.RemoteIP {
						t.Errorf("lookup %s observed mismatched identity %s:%d", k, c.remoteIP, c.remotePort)
					}
				})
			}
		}()
	}

	// Writers: each churns its own shard of tuples through
	// bind → (deliveries happen) → remove → close.
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			lo := w * connsPerShard
			for round := 0; round < rounds; round++ {
				conns := make([]*Conn, connsPerShard)
				for i := 0; i < connsPerShard; i++ {
					k := tupleFor(lo + i)
					c := &Conn{
						localPort:  k.LocalPort,
						remoteIP:   k.RemoteIP,
						remotePort: k.RemotePort,
						state:      Established,
					}
					conns[i] = c
					if err := tbl.Bind(k, c); err != nil {
						t.Errorf("round %d Bind %s: %v", round, k, err)
					}
				}
				for i := 0; i < connsPerShard; i++ {
					k := tupleFor(lo + i)
					if !tbl.Remove(k) {
						t.Errorf("round %d Remove %s: absent", round, k)
					}
					// Teardown happens strictly after removal; a racing
					// reader must never see this write.
					conns[i].state = Closed
				}
			}
		}(w)
	}

	writersWG.Wait()
	close(stop)
	readers.Wait()
	if tbl.Len() != 0 {
		t.Fatalf("table not empty after churn: %d", tbl.Len())
	}
}

// --------------------------------------------------------------------
// Fan-in accept over Ethernet: wildcard listener + per-connection filters
// --------------------------------------------------------------------

// ethWorld is a two-host Ethernet testbed (no ARP; static resolution).
type ethWorld struct {
	eng        *sim.Engine
	k1, k2     *aegis.Kernel
	e1, e2     *aegis.EthernetIf
	sys1, sys2 *core.System
	ip1, ip2   ip.Addr
}

func newEthWorld() *ethWorld {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	k1 := aegis.NewKernel("h1", eng, prof)
	k2 := aegis.NewKernel("h2", eng, prof)
	w := &ethWorld{eng: eng, k1: k1, k2: k2,
		e1: aegis.NewEthernet(k1, sw), e2: aegis.NewEthernet(k2, sw)}
	w.sys1, w.sys2 = core.NewSystem(k1), core.NewSystem(k2)
	w.ip1 = ip.HostAddr(w.e1.Addr())
	w.ip2 = ip.HostAddr(w.e2.Addr())
	return w
}

func ipU32(a ip.Addr) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// listenFilter matches every TCP segment addressed to (local, port): the
// wildcard listen endpoint.
func listenFilter(local ip.Addr, port uint16) *dpf.Filter {
	return dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq32(ether.HeaderLen+16, ipU32(local)).
		Eq8(ether.HeaderLen+9, ip.ProtoTCP).
		Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
}

// connFilter matches exactly one connection's four-tuple. It extends the
// listen filter with the remote address and port, so the DPF trie's
// deepest-terminal rule routes established traffic here and only unclaimed
// SYNs to the listener.
func connFilter(local ip.Addr, port uint16, remote ip.Addr, rport uint16) *dpf.Filter {
	return dpf.NewFilter().
		Eq16(12, ether.TypeIPv4).
		Eq32(ether.HeaderLen+12, ipU32(remote)).
		Eq32(ether.HeaderLen+16, ipU32(local)).
		Eq8(ether.HeaderLen+9, ip.ProtoTCP).
		Eq16(ether.HeaderLen+ip.HeaderLen+0, rport).
		Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
}

// ethStack wraps a bound filter endpoint as an IP stack with an Ethernet
// link header.
func (w *ethWorld) ethStack(p *aegis.Process, iface *aegis.EthernetIf, local ip.Addr, f *dpf.Filter) *ip.Stack {
	ep, err := link.BindEthernet(iface, p, f)
	if err != nil {
		panic(err)
	}
	res := ip.StaticResolver{
		w.ip1: {Port: w.e1.Addr()},
		w.ip2: {Port: w.e2.Addr()},
	}
	st := ip.NewStack(ep, local, res)
	st.LinkHdrLen = ether.HeaderLen
	myMAC := ether.PortMAC(iface.Addr())
	st.PrependLink = func(dst link.Addr, b []byte) []byte {
		h := ether.Header{Dst: ether.PortMAC(dst.Port), Src: myMAC, Type: ether.TypeIPv4}
		return h.Marshal(b)
	}
	return st
}

func (w *ethWorld) ethCfg(host int) Config {
	c := DefaultConfig()
	c.Mode = ModeASH
	c.Checksum = false
	c.MSS = 1460
	if host == 1 {
		c.Sys = w.sys1
	} else {
		c.Sys = w.sys2
	}
	return c
}

// TestAcceptHandoffChurn drives the full fan-in accept path end to end:
// a wildcard listener consumes SYNs, installs a per-connection filter
// before answering, completes the handshake with AcceptHandoff, echoes a
// payload, and tears down — dozens of times in sequence, with ConnTable
// lookups interleaved with live segment delivery. The per-connection
// filter must win demux over the wildcard (deepest-terminal rule) or the
// handshake ACK lands on the listener and the accept deadlocks.
func TestAcceptHandoffChurn(t *testing.T) {
	const nConns = 48
	w := newEthWorld()
	tbl := NewConnTable(16)
	serverReady := make(chan struct{})
	srvDone := make(chan error, 1)
	cliDone := make(chan error, 1)

	w.k2.Spawn("server", func(p *aegis.Process) {
		lst := w.ethStack(p, w.e2, w.ip2, listenFilter(w.ip2, 80))
		close(serverReady)
		for i := 0; i < nConns; i++ {
			d, ok, err := lst.RecvUntil(false, 0)
			if err != nil || !ok {
				srvDone <- fmt.Errorf("conn %d: listener recv: ok=%v err=%v", i, ok, err)
				return
			}
			syn, isSyn := ParseSyn(d)
			lst.Release(d)
			if !isSyn {
				srvDone <- fmt.Errorf("conn %d: listener got non-SYN segment", i)
				return
			}
			// Claim the rest of the flow *before* the SYN|ACK goes out, so
			// the handshake ACK demuxes to the new endpoint.
			st := w.ethStack(p, w.e2, w.ip2,
				connFilter(w.ip2, 80, syn.RemoteIP, syn.RemotePort))
			c, err := AcceptHandoff(st, w.ethCfg(2), 80, syn)
			if err != nil {
				srvDone <- fmt.Errorf("conn %d: handoff: %v", i, err)
				return
			}
			if err := tbl.Bind(c.Tuple(), c); err != nil {
				srvDone <- fmt.Errorf("conn %d: %v", i, err)
				return
			}
			// Echo 64 bytes back, interleaving table lookups with the
			// segment delivery the reads trigger.
			buf := p.AS.MustAlloc(64, "echo")
			for got := 0; got < 64; got += 16 {
				if err := c.ReadFull(buf.Base+uint32(got), 16); err != nil {
					srvDone <- fmt.Errorf("conn %d: read: %v", i, err)
					return
				}
				if lc, ok := tbl.Lookup(c.Tuple()); !ok || lc != c {
					srvDone <- fmt.Errorf("conn %d: live lookup failed mid-delivery", i)
					return
				}
			}
			if err := c.WriteBytes(w.k2.Bytes(buf.Base, 64)); err != nil {
				srvDone <- fmt.Errorf("conn %d: write: %v", i, err)
				return
			}
			// Remove before close: a late segment must never find a conn
			// that is being torn down.
			if !tbl.Remove(c.Tuple()) {
				srvDone <- fmt.Errorf("conn %d: remove: absent", i)
				return
			}
			_ = c.Close()
		}
		srvDone <- nil
	})

	w.k1.Spawn("client", func(p *aegis.Process) {
		<-serverReady
		for i := 0; i < nConns; i++ {
			lport := uint16(1000 + i)
			st := w.ethStack(p, w.e1, w.ip1, listenFilter(w.ip1, lport))
			c, err := Connect(st, w.ethCfg(1), lport, w.ip2, 80)
			if err != nil {
				cliDone <- fmt.Errorf("conn %d: connect: %v", i, err)
				return
			}
			payload := make([]byte, 64)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := c.WriteBytes(payload); err != nil {
				cliDone <- fmt.Errorf("conn %d: write: %v", i, err)
				return
			}
			buf := p.AS.MustAlloc(64, "echo")
			if err := c.ReadFull(buf.Base, 64); err != nil {
				cliDone <- fmt.Errorf("conn %d: read: %v", i, err)
				return
			}
			got := w.k1.Bytes(buf.Base, 64)
			for j := range payload {
				if got[j] != payload[j] {
					cliDone <- fmt.Errorf("conn %d: echo corrupted at %d", i, j)
					return
				}
			}
			_ = c.Close()
		}
		cliDone <- nil
	})

	w.eng.Run()
	if err := <-srvDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := <-cliDone; err != nil {
		t.Fatalf("client: %v", err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("table not empty after churn: %d", tbl.Len())
	}
}
