package tcp

import (
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/retry"
	"ashs/internal/sim"
)

// State is the RFC 793 connection state.
type State int

// Connection states.
const (
	Closed State = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	Closing
	LastAck
	TimeWait
)

var stateNames = [...]string{"CLOSED", "LISTEN", "SYN-SENT", "SYN-RCVD",
	"ESTABLISHED", "FIN-WAIT-1", "FIN-WAIT-2", "CLOSE-WAIT", "CLOSING",
	"LAST-ACK", "TIME-WAIT"}

func (s State) String() string { return stateNames[s] }

// Mode selects where the common-case receive fast path runs (Table VI).
type Mode int

// Fast-path placements.
const (
	// ModeUser: all processing in the user-level library.
	ModeUser Mode = iota
	// ModeASH: sandboxed ASH fast path downloaded into the kernel.
	ModeASH
	// ModeASHUnsafe: the same handler without sandboxing costs.
	ModeASHUnsafe
	// ModeUpcall: the same handler run as a fast asynchronous upcall.
	ModeUpcall
)

// Config parameterizes a connection.
type Config struct {
	Mode     Mode
	Sys      *core.System // the host's ASH system (required for non-user modes)
	Polling  bool         // app busy-waits (vs blocking/interrupt-driven)
	Checksum bool         // end-to-end Internet checksums
	InPlace  bool         // app consumes data in the receive buffers (no read copy)
	MSS      int          // maximum segment size (payload bytes)
	Window   int          // fixed send/receive window
	// AckDelayUs is the delayed-acknowledgment timer (piggybacking
	// window); AckEveryBytes forces an immediate ACK once this much data
	// is unacknowledged.
	AckDelayUs float64
	// RTOUs is the initial retransmission timeout, used until the first
	// round-trip sample. The timer then adapts (srtt + 4*rttvar, RFC 6298
	// style) within [MinRTOUs, MaxRTOUs], doubling per retransmission;
	// Karn's rule keeps retransmitted segments out of the estimator.
	RTOUs         float64
	MinRTOUs      float64
	MaxRTOUs      float64
	MaxRetransmit int
	// JitterSeed, when nonzero, turns on deterministic jittered backoff:
	// each backed-off retransmission timeout is scaled into [1/2, 1) of
	// its doubled value by a per-connection stream seeded from
	// (JitterSeed, JitterClient). Distinctly numbered clients sharing a
	// seed desynchronize their first retries by construction (see
	// retry.Jitter), so a synchronized loss event does not produce a
	// synchronized retry storm. Zero keeps classic doubling bit-for-bit.
	JitterSeed   int64
	JitterClient int
	// RetryBudget, when positive, bounds total retransmissions over the
	// connection's lifetime; once spent, the next due retransmission
	// tears the connection down instead of sending. This is the
	// client-side half of overload control: a saturated server sheds,
	// and budgeted clients stop amplifying the load. Zero means only
	// the per-segment MaxRetransmit bound applies.
	RetryBudget int
}

// DefaultConfig is the paper's AN2 configuration: MSS 3072, window 8 KB.
func DefaultConfig() Config {
	return Config{
		Mode: ModeUser, Polling: true, Checksum: true,
		MSS: 3072, Window: 8192,
		AckDelayUs: 500, RTOUs: 200_000, MinRTOUs: 2_000, MaxRTOUs: 1_600_000,
		MaxRetransmit: 8,
	}
}

// Costs are the library's per-operation processing charges (cycles).
type Costs struct {
	Output     sim.Time // segment construction, PCB update, timer work
	Input      sim.Time // full input processing (validation + state machine)
	Predict    sim.Time // header-prediction hit
	CksumFixed sim.Time // fixed checksum-path setup
	Boundary   sim.Time // read/write call boundary (enter/exit library)
}

// DefaultCosts is the calibrated cost set (see DESIGN.md and Table II).
func DefaultCosts() Costs {
	return Costs{Output: 1200, Input: 1100, Predict: 380, CksumFixed: 500, Boundary: 520}
}

// rseg is an in-order received segment awaiting Read (library modes).
type rseg struct {
	d    ip.Dgram
	off  int // payload offset within the datagram payload
	n    int
	read int // bytes already consumed
}

// rtxSeg is an unacknowledged segment held for retransmission.
type rtxSeg struct {
	seq       uint32
	flags     Flags
	data      []byte
	deadline  sim.Time
	rto       sim.Time
	sentAt    sim.Time
	rexmitted bool // Karn's rule: never sample RTT off a retransmitted segment
	tries     int
}

// Conn is a TCP connection endpoint.
type Conn struct {
	St    *ip.Stack
	Cfg   Config
	Costs Costs

	state      State
	localPort  uint16
	remotePort uint16
	remoteIP   ip.Addr

	iss, irs       uint32
	sndUna, sndNxt uint32
	sndWnd         int
	sndWl1, sndWl2 uint32 // seq/ack of the last segment that updated sndWnd
	rcvNxt         uint32
	finSeq         uint32 // our FIN's sequence number
	peerClosed     bool

	// Library-mode receive queue (data stays in receive buffers until
	// Read copies it to the application: the "additional copy between the
	// network and application data structures" of Section IV-D).
	rxq      []rseg
	rxqBytes int

	// Handler-mode receive ring: the fast path places data here with one
	// integrated DILP traversal; Read consumes in place.
	hring      aegis.Segment
	hrHead     int // absolute byte counts; ring offset = count % Window
	hrTail     int
	tcbLocked  bool
	slowQueued int // slow-path segments pending, handler must keep order

	// Timers (absolute deadlines; 0 = unarmed).
	rtxq            []rtxSeg
	ackDue          bool
	ackDeadline     sim.Time
	unacked         int
	persistDeadline sim.Time // zero-window probe timer
	persistRTO      sim.Time

	// Round-trip estimation (RFC 6298 shape): rto == 0 means "no sample
	// yet, use Cfg.RTOUs".
	srtt, rttvar, rto sim.Time

	fast *fastPath // installed handler, if any

	jit *retry.Jitter // backoff jitter stream; nil = classic doubling

	// scratchSeg backs WriteBytes staging; zero Len means unallocated.
	scratchSeg aegis.Segment

	// Statistics.
	PredictHits, PredictMisses     uint64
	HandlerConsumed, HandlerAborts uint64
	Retransmits, BadChecksum       uint64
	SegsIn, SegsOut                uint64

	err error
}

// State reports the connection state.
func (c *Conn) State() State { return c.state }

// DebugString summarizes the PCB for fault-injection diagnostics.
func (c *Conn) DebugString() string {
	return fmt.Sprintf("state=%v sndUna=%d sndNxt=%d rcvNxt=%d sndWnd=%d rtxq=%d "+
		"ackDue=%v unacked=%d slowQueued=%d hr=[%d,%d) segsIn=%d segsOut=%d rexmt=%d err=%v",
		c.state, c.sndUna-c.iss, c.sndNxt-c.iss, c.rcvNxt-c.irs, c.sndWnd, len(c.rtxq),
		c.ackDue, c.unacked, c.slowQueued, c.hrHead, c.hrTail, c.SegsIn, c.SegsOut,
		c.Retransmits, c.err)
}

// newConn builds the PCB. Allocating the handler ring can fail if the
// guest's host is out of physical memory; the error propagates out of
// Connect/Accept instead of crashing the simulation.
func newConn(st *ip.Stack, cfg Config, localPort uint16) (*Conn, error) {
	if cfg.MSS <= 0 || cfg.Window <= 0 {
		panic("tcp: bad config")
	}
	c := &Conn{St: st, Cfg: cfg, Costs: DefaultCosts(), localPort: localPort}
	if cfg.JitterSeed != 0 {
		c.jit = retry.NewJitter(cfg.JitterSeed, cfg.JitterClient)
	}
	if cfg.Mode != ModeUser {
		seg, err := st.Ep.Owner().AS.Alloc(cfg.Window, fmt.Sprintf("tcp-%d-hring", localPort))
		if err != nil {
			return nil, err
		}
		c.hring = seg
	}
	return c, nil
}

func (c *Conn) owner() *aegis.Process { return c.St.Ep.Owner() }
func (c *Conn) kern() *aegis.Kernel   { return c.St.Ep.Kernel() }
func (c *Conn) now() sim.Time         { return c.kern().Now() }

// traceSpan emits a protocol-library span covering [t0, now) on the
// connection's host. Nil-plane safe; tracing charges nothing.
func (c *Conn) traceSpan(name string, t0 sim.Time) {
	if o := c.kern().Obs; o.Enabled() {
		o.Span(c.kern().Name, "tcp "+c.owner().Name, "proto", name,
			t0, c.now()-t0)
	}
}

// Connect performs an active open and blocks until established.
func Connect(st *ip.Stack, cfg Config, localPort uint16, remote ip.Addr, remotePort uint16) (*Conn, error) {
	c, err := newConn(st, cfg, localPort)
	if err != nil {
		return nil, err
	}
	c.remoteIP = remote
	c.remotePort = remotePort
	c.iss = 1000*uint32(localPort) + 7
	c.sndUna, c.sndNxt = c.iss, c.iss
	c.state = SynSent
	c.sendSegment(SYN, c.iss, nil, 0, true)
	c.sndNxt = c.iss + 1
	for c.state != Established && c.err == nil {
		c.waitEvent(0)
	}
	if c.err != nil {
		return nil, c.err
	}
	c.installFastPath()
	return c, nil
}

// Accept performs a passive open on localPort and blocks until established.
func Accept(st *ip.Stack, cfg Config, localPort uint16) (*Conn, error) {
	c, err := newConn(st, cfg, localPort)
	if err != nil {
		return nil, err
	}
	c.state = Listen
	c.iss = 2000*uint32(localPort) + 13
	for c.state != Established && c.err == nil {
		c.waitEvent(0)
	}
	if c.err != nil {
		return nil, c.err
	}
	c.installFastPath()
	return c, nil
}

// installFastPath downloads the handler for non-user modes.
func (c *Conn) installFastPath() {
	if c.Cfg.Mode == ModeUser {
		return
	}
	c.fast = installFastPath(c)
}

// errClosed reports operations on a dead connection.
var errClosed = fmt.Errorf("tcp: connection closed")

// -------------------------------------------------------------------
// Output
// -------------------------------------------------------------------

// segPayload reads payload bytes for transmission.
func (c *Conn) segPayload(addr uint32, n int) []byte {
	if n == 0 {
		return nil
	}
	b, err := c.owner().AS.Bytes(addr, n)
	if err != nil {
		panic(fmt.Sprintf("tcp: payload outside address space: %v", err))
	}
	return b
}

// sendSegment builds and transmits one segment. payloadAddr/n name data in
// the application's address space (checksum traversal is charged against
// its real cache state). Control segments pass n == 0.
func (c *Conn) sendSegment(flags Flags, seq uint32, payloadAddr *uint32, n int, addToRtx bool) {
	p := c.owner()
	t0 := c.now()
	p.Compute(c.Costs.Output)

	var data []byte
	if n > 0 {
		data = c.segPayload(*payloadAddr, n)
	}
	h := Header{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: seq, Flags: flags, Window: uint16(c.advertisedWindow()),
	}
	if flags&ACK != 0 {
		h.Ack = c.rcvNxt
	}
	if c.Cfg.Checksum {
		p.Compute(c.Costs.CksumFixed)
		acc := ip.PseudoCksum(c.St.Local, c.remoteIP, ip.ProtoTCP, HeaderLen+n)
		acc += h.headerAccum()
		if n > 0 {
			acc += link.CksumRange(p, c.kern(), *payloadAddr, n)
		}
		ck := ^link.FoldCksum(acc)
		h.Checksum = ck
	}
	buf := h.Marshal(nil)
	buf = append(buf, data...)
	c.SegsOut++
	c.traceSpan("tcp output", t0)
	c.ackDue = false
	c.ackDeadline = 0
	c.unacked = 0
	if addToRtx {
		rto := c.currentRTO()
		c.rtxq = append(c.rtxq, rtxSeg{
			seq: seq, flags: flags, data: append([]byte(nil), data...),
			deadline: c.now() + rto, rto: rto, sentAt: c.now(),
		})
	}
	if err := c.St.Send(ip.ProtoTCP, c.remoteIP, buf); err != nil {
		c.err = err
	}
}

// sendAck emits a bare acknowledgment.
func (c *Conn) sendAck() { c.sendSegment(ACK, c.sndNxt, nil, 0, false) }

// advertisedWindow is the receive window we offer.
func (c *Conn) advertisedWindow() int {
	used := c.rxqBytes
	if c.Cfg.Mode != ModeUser {
		used += c.hrTail - c.hrHead
	}
	w := c.Cfg.Window - used
	if w < 0 {
		w = 0
	}
	return w
}

// Write sends n bytes at addr and blocks until every byte is acknowledged
// (the paper: "the write call is synchronous; write waits for an
// acknowledgment before returning").
func (c *Conn) Write(addr uint32, n int) error {
	if c.state != Established && c.state != CloseWait {
		return errClosed
	}
	p := c.owner()
	t0b := c.now()
	p.Compute(c.Costs.Boundary)
	c.traceSpan("tcp boundary", t0b)
	sent := 0
	for sent < n && c.err == nil {
		// Respect the peer's window against unacknowledged data.
		inFlight := int(c.sndNxt - c.sndUna)
		window := c.sndWnd
		if window > c.Cfg.Window {
			window = c.Cfg.Window
		}
		avail := window - inFlight
		if avail <= 0 {
			if c.sndWnd == 0 && c.sndUna == c.sndNxt && c.persistDeadline == 0 {
				// Zero window and nothing in flight: no retransmission will
				// ever fire, so only a persist probe can reopen the window.
				c.persistRTO = c.currentRTO()
				c.persistDeadline = c.now() + c.persistRTO
			}
			c.waitEvent(0)
			continue
		}
		seg := c.Cfg.MSS
		if seg > n-sent {
			seg = n - sent
		}
		if seg > avail {
			seg = avail
		}
		a := addr + uint32(sent)
		c.lockTCB()
		c.sendSegment(ACK|PSH, c.sndNxt, &a, seg, true)
		c.sndNxt += uint32(seg)
		c.unlockTCB()
		sent += seg
	}
	// Synchronous: wait until all data is acknowledged.
	for c.sndUna != c.sndNxt && c.err == nil {
		c.waitEvent(0)
	}
	return c.err
}

// WriteBytes stages data into a scratch segment and writes it.
func (c *Conn) WriteBytes(data []byte) error {
	seg, err := c.scratch(len(data))
	if err != nil {
		return err
	}
	copy(c.kern().Bytes(seg, len(data)), data)
	return c.Write(seg, len(data))
}

// scratch returns the base of a scratch segment of at least n bytes,
// growing it on demand. Allocation failure is a runtime condition (guest
// memory exhaustion), so it surfaces as an error instead of panicking.
func (c *Conn) scratch(n int) (uint32, error) {
	if c.scratchSeg.Len == 0 || int(c.scratchSeg.Len) < n {
		seg, err := c.owner().AS.Alloc(max(n, 16384), "tcp-scratch")
		if err != nil {
			return 0, err
		}
		c.scratchSeg = seg
	}
	return c.scratchSeg.Base, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// -------------------------------------------------------------------
// Input / event loop
// -------------------------------------------------------------------

// nextDeadline folds the connection's timers.
func (c *Conn) nextDeadline(user sim.Time) sim.Time {
	d := user
	merge := func(t sim.Time) {
		if t != 0 && (d == 0 || t < d) {
			d = t
		}
	}
	for i := range c.rtxq {
		merge(c.rtxq[i].deadline)
	}
	if c.ackDue {
		merge(c.ackDeadline)
	}
	merge(c.persistDeadline)
	return d
}

// waitEvent advances the connection: it waits for the next datagram,
// doorbell, or timer and processes it.
func (c *Conn) waitEvent(userDeadline sim.Time) {
	d, got, err := c.St.RecvUntil(c.Cfg.Polling, c.nextDeadline(userDeadline))
	if err != nil {
		c.err = err
		return
	}
	if got && !d.Doorbell {
		c.input(d)
	}
	// Doorbells carry no payload: the handler updated shared state; the
	// checks below and the caller's loop condition re-examine it.
	c.checkTimers()
}

// checkTimers fires due retransmissions and delayed ACKs.
func (c *Conn) checkTimers() {
	now := c.now()
	if c.ackDue && c.ackDeadline != 0 && now >= c.ackDeadline {
		c.sendAck()
	}
	if c.persistDeadline != 0 && now >= c.persistDeadline {
		if c.sndWnd == 0 && c.sndUna == c.sndNxt &&
			(c.state == Established || c.state == CloseWait) {
			if o := c.kern().Obs; o.Enabled() {
				o.Instant(c.kern().Name, "tcp "+c.owner().Name, "proto",
					"tcp persist probe", now)
				o.Inc("tcp/persist_probes")
			}
			c.sendWindowProbe()
			c.persistRTO *= 2
			if m := c.maxRTO(); c.persistRTO > m {
				c.persistRTO = m
			}
			c.persistDeadline = now + c.persistRTO
		} else {
			c.persistDeadline, c.persistRTO = 0, 0
		}
	}
	for i := 0; i < len(c.rtxq); i++ {
		r := &c.rtxq[i]
		if seqLE(r.seq+uint32(len(r.data)), c.sndUna) && r.flags&(SYN|FIN) == 0 ||
			r.flags&(SYN|FIN) != 0 && seqLT(r.seq, c.sndUna) {
			// Acknowledged (possibly by the fast path); drop.
			c.rtxq = append(c.rtxq[:i], c.rtxq[i+1:]...)
			i--
			continue
		}
		if now >= r.deadline {
			if r.tries >= c.Cfg.MaxRetransmit {
				c.teardown(fmt.Errorf("tcp: too many retransmissions of seq %d", r.seq))
				return
			}
			if b := c.Cfg.RetryBudget; b > 0 && c.Retransmits >= uint64(b) {
				c.teardown(fmt.Errorf("tcp: retry budget (%d) exhausted at seq %d", b, r.seq))
				return
			}
			r.tries++
			c.Retransmits++
			if o := c.kern().Obs; o.Enabled() {
				o.Instant(c.kern().Name, "tcp "+c.owner().Name, "proto",
					"tcp retransmit", now)
				o.Inc("tcp/retransmits")
			}
			r.rexmitted = true
			r.rto *= 2
			if maxRTO := c.maxRTO(); r.rto > maxRTO {
				r.rto = maxRTO
			}
			if c.jit != nil {
				// Equal jitter: land in [rto/2, rto), floored at the
				// minimum RTO, so concurrent losers spread their retries
				// across half the backoff window instead of colliding.
				j := r.rto/2 + sim.Time(float64(r.rto/2)*c.jit.Frac())
				if minv := c.minRTO(); j < minv {
					j = minv
				}
				r.rto = j
			}
			// Karn: the backed-off timeout also governs segments sent until
			// a fresh sample from an unretransmitted segment arrives.
			c.rto = r.rto
			r.deadline = now + r.rto
			c.retransmit(r)
		}
	}
}

// currentRTO is the timeout for a freshly sent segment.
func (c *Conn) currentRTO() sim.Time {
	if c.rto != 0 {
		return c.rto
	}
	return c.kern().Prof.Cycles(c.Cfg.RTOUs)
}

func (c *Conn) minRTO() sim.Time {
	us := c.Cfg.MinRTOUs
	if us <= 0 {
		us = 2_000
	}
	return c.kern().Prof.Cycles(us)
}

func (c *Conn) maxRTO() sim.Time {
	us := c.Cfg.MaxRTOUs
	if us <= 0 {
		us = 8 * c.Cfg.RTOUs
	}
	return c.kern().Prof.Cycles(us)
}

// sampleRTT feeds the estimator from segments this ACK newly covers,
// skipping retransmitted ones (Karn's rule: an ACK for a retransmitted
// segment is ambiguous about which transmission it acknowledges).
func (c *Conn) sampleRTT(ack uint32) {
	sample := sim.Time(-1)
	for i := range c.rtxq {
		r := &c.rtxq[i]
		if r.rexmitted {
			continue
		}
		end := r.seq + uint32(len(r.data))
		if r.flags&(SYN|FIN) != 0 {
			end++
		}
		if !seqLE(end, ack) {
			continue
		}
		if rtt := c.now() - r.sentAt; rtt > sample {
			sample = rtt
		}
	}
	if sample < 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if minv := c.minRTO(); rto < minv {
		rto = minv
	}
	if maxv := c.maxRTO(); rto > maxv {
		rto = maxv
	}
	c.rto = rto
}

// teardown closes the connection after an unrecoverable failure: the error
// surfaces to every blocked caller, all timers are cleared, and the fast
// path (which predicts only in ESTABLISHED) stops accepting segments.
func (c *Conn) teardown(err error) {
	c.err = err
	c.state = Closed
	c.rtxq = nil
	c.ackDue = false
	c.ackDeadline = 0
	c.scratchSeg = aegis.Segment{}
}

// retransmit re-emits one segment from the queue.
func (c *Conn) retransmit(r *rtxSeg) {
	p := c.owner()
	t0 := c.now()
	p.Compute(c.Costs.Output)
	h := Header{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: r.seq, Flags: r.flags, Window: uint16(c.advertisedWindow()),
	}
	if h.Flags&ACK != 0 || c.state >= Established {
		h.Flags |= ACK
		h.Ack = c.rcvNxt
	}
	if c.Cfg.Checksum {
		p.Compute(c.Costs.CksumFixed)
		acc := ip.PseudoCksum(c.St.Local, c.remoteIP, ip.ProtoTCP, HeaderLen+len(r.data))
		acc += h.headerAccum()
		acc = link.CksumData(acc, r.data)
		h.Checksum = ^link.FoldCksum(acc)
	}
	buf := h.Marshal(nil)
	buf = append(buf, r.data...)
	c.SegsOut++
	c.traceSpan("tcp rexmit output", t0)
	if err := c.St.Send(ip.ProtoTCP, c.remoteIP, buf); err != nil {
		c.err = err
	}
}

// lockTCB marks the TCB busy so the downloaded handler aborts rather than
// racing the library (Section V-B's second constraint).
func (c *Conn) lockTCB()   { c.tcbLocked = true }
func (c *Conn) unlockTCB() { c.tcbLocked = false }

// input processes one received IP datagram through the full state machine.
func (c *Conn) input(d ip.Dgram) {
	p := c.owner()
	c.lockTCB()
	defer c.unlockTCB()
	c.SegsIn++

	raw := make([]byte, min(d.PayloadLen(), HeaderLen))
	d.Frame.Bytes(raw, d.Off, len(raw))
	h, dataOff, err := Parse(raw)
	if err != nil || d.Hdr.Proto != ip.ProtoTCP || h.DstPort != c.localPort {
		c.St.Release(d)
		return
	}
	plen := d.PayloadLen() - dataOff

	// Header prediction (the paper: "except during connection set up and
	// tear down, all segments were processed by the TCP header-prediction
	// code"): in ESTABLISHED, an expected segment with only ACK|PSH set
	// takes the fast path.
	predicted := c.state == Established &&
		h.Flags&^(ACK|PSH) == 0 && h.Flags&ACK != 0 &&
		h.Seq == c.rcvNxt && seqLE(h.Ack, c.sndNxt)
	t0 := c.now()
	if predicted {
		c.PredictHits++
		p.Compute(c.Costs.Predict)
	} else {
		c.PredictMisses++
		p.Compute(c.Costs.Input)
	}
	c.traceSpan("tcp input", t0)

	if c.Cfg.Checksum && !c.verifyChecksum(d, &h, dataOff, plen) {
		c.BadChecksum++
		c.St.Release(d)
		return
	}
	if c.slowQueued > 0 {
		c.slowQueued--
	}

	if h.Flags&RST != 0 {
		c.err = fmt.Errorf("tcp: connection reset")
		c.state = Closed
		c.St.Release(d)
		return
	}

	switch c.state {
	case SynSent:
		if h.Flags&(SYN|ACK) == SYN|ACK && h.Ack == c.iss+1 {
			c.irs = h.Seq
			c.rcvNxt = h.Seq + 1
			c.sndUna = h.Ack
			c.sndWnd = int(h.Window)
			c.sndWl1, c.sndWl2 = h.Seq, h.Ack
			c.state = Established
			c.dropAcked()
			c.sendAck()
		}
		c.St.Release(d)
		return
	case Listen:
		if h.Flags&SYN != 0 {
			c.remoteIP = d.Hdr.Src
			c.remotePort = h.SrcPort
			c.irs = h.Seq
			c.rcvNxt = h.Seq + 1
			c.sndUna, c.sndNxt = c.iss, c.iss
			c.sndWnd = int(h.Window)
			c.sndWl1, c.sndWl2 = h.Seq, h.Ack
			c.state = SynRcvd
			c.sendSegment(SYN|ACK, c.iss, nil, 0, true)
			c.sndNxt = c.iss + 1
		}
		c.St.Release(d)
		return
	case SynRcvd:
		if h.Flags&ACK != 0 && h.Ack == c.iss+1 {
			c.sndUna = h.Ack
			c.sndWnd = int(h.Window)
			c.sndWl1, c.sndWl2 = h.Seq, h.Ack
			c.state = Established
			c.dropAcked()
			// The handshake ACK may carry data; fall through.
		} else {
			c.St.Release(d)
			return
		}
	}

	// ESTABLISHED and later: ACK processing.
	if h.Flags&ACK != 0 {
		c.processAck(h.Seq, h.Ack, int(h.Window))
	}

	// Data acceptance: in-order only (the paper's library keeps messages
	// in order; anything else is dropped and retransmitted).
	if plen > 0 {
		switch {
		case h.Seq == c.rcvNxt && c.rxqBytes+plen <= c.Cfg.Window:
			c.acceptData(d, dataOff, plen)
			d = ip.Dgram{} // retained in rxq/hring; do not release below
		default:
			// Out of order or over window: dup-ACK immediately.
			c.sendAck()
		}
	}

	// FIN processing.
	if h.Flags&FIN != 0 && seqLE(h.Seq+uint32(plen), c.rcvNxt) {
		c.rcvNxt = h.Seq + uint32(plen) + 1
		c.peerClosed = true
		switch c.state {
		case Established:
			c.state = CloseWait
		case FinWait1:
			if c.sndUna == c.sndNxt {
				c.state = TimeWait
			} else {
				c.state = Closing
			}
		case FinWait2:
			c.state = TimeWait
		}
		c.sendAck()
	}

	if d.Frame.Len() > 0 {
		c.St.Release(d)
	}
}

// verifyChecksum validates the segment's end-to-end checksum, charging the
// traversal over header+payload in the receive buffer.
func (c *Conn) verifyChecksum(d ip.Dgram, h *Header, dataOff, plen int) bool {
	p := c.owner()
	t0 := c.now()
	p.Compute(c.Costs.CksumFixed)
	seglen := dataOff + plen
	acc := ip.PseudoCksum(d.Hdr.Src, d.Hdr.Dst, ip.ProtoTCP, seglen)
	// Traversal over the segment where it lies (uncached after DMA).
	acc += link.CksumFromFrame(p, d.Frame, d.Off, seglen)
	c.traceSpan("tcp cksum verify", t0)
	return link.FoldCksum(acc) == 0xffff
}

// acceptData queues in-order payload for Read.
func (c *Conn) acceptData(d ip.Dgram, dataOff, plen int) {
	c.rcvNxt += uint32(plen)
	if c.Cfg.Mode != ModeUser {
		// Handler mode: the library's slow path places data in the same
		// ring the handler uses, keeping one ordered stream.
		if c.hrTail-c.hrHead+plen <= c.Cfg.Window {
			c.copyIntoHring(d, dataOff, plen)
		}
		c.St.Release(d)
	} else {
		c.rxq = append(c.rxq, rseg{d: d, off: dataOff, n: plen})
		c.rxqBytes += plen
	}
	c.unacked += plen
	c.maybeAck()
}

// copyIntoHring copies payload into the handler ring (library slow path in
// handler mode), charging a copy pass.
func (c *Conn) copyIntoHring(d ip.Dgram, dataOff, plen int) {
	p := c.owner()
	w := c.Cfg.Window
	pos := c.hrTail % w
	first := min(plen, w-pos)
	link.CopyFromFrame(p, d.Frame, d.Off+dataOff, c.hring.Base+uint32(pos), first, false)
	if plen > first {
		link.CopyFromFrame(p, d.Frame, d.Off+dataOff+first, c.hring.Base, plen-first, false)
	}
	c.hrTail += plen
}

// maybeAck applies the delayed-ACK policy: piggyback if the application
// writes soon, force an ACK after enough data, otherwise arm the timer.
func (c *Conn) maybeAck() {
	if c.unacked >= 2*c.Cfg.MSS {
		c.sendAck()
		return
	}
	if c.unacked > 0 && !c.ackDue {
		c.ackDue = true
		c.ackDeadline = c.now() + c.kern().Prof.Cycles(c.Cfg.AckDelayUs)
	}
}

// processAck advances the send side.
func (c *Conn) processAck(seq, ack uint32, wnd int) {
	if seqLT(c.sndUna, ack) && seqLE(ack, c.sndNxt) {
		c.sampleRTT(ack)
		c.sndUna = ack
		c.dropAcked()
		if c.state == FinWait1 && c.sndUna == c.finSeq+1 {
			c.state = FinWait2
		}
		if c.state == Closing && c.sndUna == c.finSeq+1 {
			c.state = TimeWait
		}
		if c.state == LastAck && c.sndUna == c.finSeq+1 {
			c.state = Closed
		}
	}
	c.updateWindow(seq, ack, wnd)
}

// updateWindow applies the RFC 793 window-update guard (SND.WL1/WL2):
// only a segment at least as recent as the last one that changed the
// window may change it again. Without the guard a reordered stale ACK
// can regress sndWnd — in the worst case to zero with an empty
// retransmission queue, which deadlocks the sender because a pure
// window-opening ACK is never retransmitted.
func (c *Conn) updateWindow(seq, ack uint32, wnd int) {
	if seqLT(c.sndWl1, seq) || (c.sndWl1 == seq && seqLE(c.sndWl2, ack)) {
		c.sndWnd = wnd
		c.sndWl1, c.sndWl2 = seq, ack
		if wnd > 0 {
			c.persistDeadline, c.persistRTO = 0, 0
		}
	}
}

// sendWindowProbe emits one byte of already-acknowledged data (seq
// SND.UNA-1). The peer rejects it as out of order and answers with a
// duplicate ACK carrying its current window, breaking a zero-window
// deadlock whose window-opening ACK was lost or discarded as stale.
func (c *Conn) sendWindowProbe() {
	a, err := c.scratch(1)
	if err != nil {
		c.err = err
		return
	}
	c.sendSegment(ACK, c.sndUna-1, &a, 1, false)
}

// dropAcked removes fully acknowledged segments from the rtx queue.
func (c *Conn) dropAcked() {
	out := c.rtxq[:0]
	for _, r := range c.rtxq {
		end := r.seq + uint32(len(r.data))
		if r.flags&(SYN|FIN) != 0 {
			end++
		}
		if !seqLE(end, c.sndUna) {
			out = append(out, r)
		}
	}
	c.rtxq = out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// -------------------------------------------------------------------
// Read
// -------------------------------------------------------------------

// Available reports buffered readable bytes.
func (c *Conn) Available() int {
	if c.Cfg.Mode != ModeUser {
		return c.hrTail - c.hrHead
	}
	return c.rxqBytes
}

// Read copies up to max bytes of stream data into the application buffer
// at dst, blocking until at least one byte (or EOF) is available. This is
// the "traditional read interface" copy of Section IV-D; handler modes
// consume from the handler ring without a further copy.
func (c *Conn) Read(dst uint32, maxBytes int) (int, error) {
	if maxBytes <= 0 {
		return 0, fmt.Errorf("tcp: Read with non-positive max %d", maxBytes)
	}
	p := c.owner()
	t0b := c.now()
	p.Compute(c.Costs.Boundary)
	c.traceSpan("tcp boundary", t0b)
	for c.Available() == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.peerClosed || c.state == Closed {
			return 0, fmt.Errorf("tcp: EOF")
		}
		c.waitEvent(0)
	}
	if c.Cfg.Mode != ModeUser {
		return c.readHring(dst, maxBytes)
	}

	read := 0
	for read < maxBytes && len(c.rxq) > 0 {
		s := &c.rxq[0]
		n := min(maxBytes-read, s.n-s.read)
		c.lockTCB()
		if c.Cfg.InPlace {
			// The application uses the data where it landed; surface it
			// at dst for API uniformity (bookkeeping cost only).
			buf := make([]byte, n)
			s.d.Frame.Bytes(buf, s.d.Off+s.off+s.read, n)
			copy(c.kern().Bytes(dst+uint32(read), n), buf)
			p.Compute(40)
		} else {
			// The "traditional read interface" copy into application
			// data structures.
			link.CopyFromFrame(p, s.d.Frame, s.d.Off+s.off+s.read, dst+uint32(read), n, false)
		}
		s.read += n
		read += n
		c.rxqBytes -= n
		if s.read == s.n {
			c.St.Release(s.d)
			c.rxq = c.rxq[1:]
		}
		c.unlockTCB()
	}
	return read, nil
}

// readHring consumes from the handler-filled ring: bookkeeping only (the
// integrated DILP traversal already placed the bytes).
func (c *Conn) readHring(dst uint32, maxBytes int) (int, error) {
	p := c.owner()
	c.lockTCB()
	defer c.unlockTCB()
	avail := c.hrTail - c.hrHead
	n := min(avail, maxBytes)
	w := c.Cfg.Window
	pos := c.hrHead % w
	first := min(n, w-pos)
	// The application uses the data in place; we surface it at dst for
	// API uniformity with an uncharged view copy (bookkeeping only).
	copy(c.kern().Bytes(dst, first), c.kern().Bytes(c.hring.Base+uint32(pos), first))
	if n > first {
		copy(c.kern().Bytes(dst+uint32(first), n-first), c.kern().Bytes(c.hring.Base, n-first))
	}
	p.Compute(60) // consume-pointer update
	c.hrHead += n
	return n, nil
}

// ReadFull reads exactly n bytes into dst.
func (c *Conn) ReadFull(dst uint32, n int) error {
	got := 0
	for got < n {
		m, err := c.Read(dst+uint32(got), n-got)
		if err != nil {
			return err
		}
		got += m
	}
	return nil
}

// -------------------------------------------------------------------
// Close
// -------------------------------------------------------------------

// Close sends FIN and completes the shutdown handshake.
func (c *Conn) Close() error {
	p := c.owner()
	t0b := c.now()
	p.Compute(c.Costs.Boundary)
	c.traceSpan("tcp boundary", t0b)
	switch c.state {
	case Established:
		c.state = FinWait1
	case CloseWait:
		c.state = LastAck
	default:
		c.state = Closed
		return nil
	}
	c.finSeq = c.sndNxt
	c.sendSegment(FIN|ACK, c.sndNxt, nil, 0, true)
	c.sndNxt++
	deadline := c.now() + c.kern().Prof.Cycles(4*c.Cfg.RTOUs)
	for c.state != Closed && c.state != TimeWait && c.err == nil {
		if c.now() >= deadline {
			break
		}
		c.waitEvent(deadline)
	}
	if c.state == TimeWait {
		c.state = Closed
	}
	c.state = Closed
	c.scratchSeg = aegis.Segment{}
	return c.err
}
