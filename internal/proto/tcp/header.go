// Package tcp is a library-based user-level implementation of RFC 793
// (Section IV-D). Like the paper's, it is deliberately not fully
// TCP-compliant — no fast retransmit/recovery or adaptive buffering — but
// it establishes connections with a three-way handshake, delivers ordered
// reliable byte streams under loss and reordering via timeout
// retransmission, runs all established-state segments through
// header-prediction code, uses a fixed window, supports synchronous
// writes (write waits for the acknowledgment), and piggybacks data on
// acknowledgments.
//
// The common-case fast path can additionally be placed in a downloaded
// handler — an ASH (sandboxed or unsafe) or an upcall — which performs
// header prediction, integrated checksum-and-copy via dynamic ILP, and
// acknowledgment generation directly at message arrival (Section V-B).
package tcp

import (
	"encoding/binary"
	"fmt"
)

// Flags are the TCP control bits.
type Flags uint8

// Control bits.
const (
	FIN Flags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
)

// String renders the flag set.
func (f Flags) String() string {
	s := ""
	for _, fl := range []struct {
		f Flags
		n string
	}{{FIN, "F"}, {SYN, "S"}, {RST, "R"}, {PSH, "P"}, {ACK, "A"}, {URG, "U"}} {
		if f&fl.f != 0 {
			s += fl.n
		}
	}
	if s == "" {
		return "-"
	}
	return s
}

// HeaderLen is the TCP header size without options (none are emitted).
const HeaderLen = 20

// Header is a TCP header.
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// Marshal appends the wire header to b with the checksum field as given.
func (h *Header) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, byte(HeaderLen/4)<<4, byte(h.Flags))
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	return binary.BigEndian.AppendUint16(b, h.Urgent)
}

// Parse reads a header from b, returning it and the data offset.
func Parse(b []byte) (Header, int, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, 0, fmt.Errorf("tcp: truncated header (%d bytes)", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b)
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Ack = binary.BigEndian.Uint32(b[8:])
	off := int(b[12]>>4) * 4
	if off < HeaderLen || off > len(b) {
		return h, 0, fmt.Errorf("tcp: bad data offset %d", off)
	}
	h.Flags = Flags(b[13] & 0x3f)
	h.Window = binary.BigEndian.Uint16(b[14:])
	h.Checksum = binary.BigEndian.Uint16(b[16:])
	h.Urgent = binary.BigEndian.Uint16(b[18:])
	return h, off, nil
}

// headerAccum folds the header fields (checksum taken as zero) into a
// ones-complement accumulator, for checksum computation.
func (h *Header) headerAccum() uint32 {
	var acc uint32
	acc += uint32(h.SrcPort) + uint32(h.DstPort)
	acc += h.Seq>>16 + h.Seq&0xffff
	acc += h.Ack>>16 + h.Ack&0xffff
	acc += uint32(HeaderLen/4)<<12 + uint32(h.Flags)
	acc += uint32(h.Window) + uint32(h.Urgent)
	return acc
}

// seqLT is the circular sequence-space comparison a < b.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE is the circular comparison a <= b.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }
