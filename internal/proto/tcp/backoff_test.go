package tcp

import (
	"strings"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/sim"
)

// connectVoid dials a host with nothing bound on the circuit, so every
// SYN is lost and the client walks its full backoff schedule. Returns
// the connect error and the virtual time at which the attempt gave up.
func connectVoid(jitterSeed int64, jitterClient, budget int) (error, sim.Time) {
	w := newWorld()
	var err error
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		cfg := w.cfg(ModeUser, 1)
		cfg.JitterSeed, cfg.JitterClient = jitterSeed, jitterClient
		cfg.RetryBudget = budget
		_, err = Connect(st, cfg, 1234, w.ip2, 80)
	})
	w.eng.Run()
	return err, w.eng.Now()
}

// TestRetryBudgetTearsDown: a connection whose lifetime retry budget is
// spent gives up with a budget error instead of walking the full
// MaxRetransmit schedule — the client-side half of overload control.
func TestRetryBudgetTearsDown(t *testing.T) {
	err, tBudget := connectVoid(42, 3, 3)
	if err == nil {
		t.Fatal("connect into the void succeeded")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("teardown reason = %v, want retry budget", err)
	}
	errFull, tFull := connectVoid(42, 3, 0)
	if errFull == nil {
		t.Fatal("unbudgeted connect succeeded")
	}
	if tBudget >= tFull {
		t.Fatalf("budgeted attempt (%d) gave up no earlier than MaxRetransmit (%d)",
			tBudget, tFull)
	}
}

// TestJitterDeterministicAndSpreads: identical (seed, client) pairs replay
// the exact backoff schedule; distinct clients sharing a seed walk
// different schedules, so synchronized losers desynchronize.
func TestJitterDeterministicAndSpreads(t *testing.T) {
	_, t1 := connectVoid(7, 5, 4)
	_, t2 := connectVoid(7, 5, 4)
	if t1 != t2 {
		t.Fatalf("same seed/client diverged: %d vs %d", t1, t2)
	}
	_, t3 := connectVoid(7, 6, 4)
	if t3 == t1 {
		t.Fatalf("clients 5 and 6 walked identical jittered schedules (%d)", t1)
	}
	_, plain := connectVoid(0, 0, 4)
	if plain == t1 {
		t.Fatal("jittered schedule identical to classic doubling")
	}
}
