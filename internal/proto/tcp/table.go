package tcp

import (
	"fmt"
	"sync"

	"ashs/internal/proto/ip"
)

// FourTuple identifies one connection: (local addr, local port, remote
// addr, remote port).
type FourTuple struct {
	LocalIP    ip.Addr
	LocalPort  uint16
	RemoteIP   ip.Addr
	RemotePort uint16
}

func (t FourTuple) String() string {
	return fmt.Sprintf("%s:%d<-%s:%d", t.LocalIP, t.LocalPort, t.RemoteIP, t.RemotePort)
}

// hash is FNV-1a over the tuple's 12 wire bytes.
func (t FourTuple) hash() uint32 {
	h := uint32(2166136261)
	step := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for _, b := range t.LocalIP {
		step(b)
	}
	step(byte(t.LocalPort >> 8))
	step(byte(t.LocalPort))
	for _, b := range t.RemoteIP {
		step(b)
	}
	step(byte(t.RemotePort >> 8))
	step(byte(t.RemotePort))
	// The table indexes by the low bits, and FNV's final multiply mixes
	// entropy upward only; fold the high half back down.
	return h ^ h>>16
}

// ConnTable maps connection four-tuples to established connections with a
// hashed, bucketed table: lookup cost is O(1) in the number of
// connections, so a server accepting hundreds of concurrent clients pays
// the same per-segment routing cost as one serving a single client. A
// connection is published only after it is fully constructed and removed
// before it is torn down, so a successful lookup never observes a
// half-built or closed Conn; each bucket carries its own RWMutex so the
// table is safe under the parallel experiment runner.
type ConnTable struct {
	buckets []connBucket
}

type connBucket struct {
	mu sync.RWMutex
	m  map[FourTuple]*Conn
}

// NewConnTable builds a table with nbuckets hash buckets (rounded up to a
// power of two; <= 0 selects a default suitable for hundreds of
// connections).
func NewConnTable(nbuckets int) *ConnTable {
	if nbuckets <= 0 {
		nbuckets = 64
	}
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	t := &ConnTable{buckets: make([]connBucket, n)}
	for i := range t.buckets {
		t.buckets[i].m = map[FourTuple]*Conn{}
	}
	return t
}

func (t *ConnTable) bucket(k FourTuple) *connBucket {
	return &t.buckets[k.hash()&uint32(len(t.buckets)-1)]
}

// Bind publishes an established connection under its tuple. The caller
// must pass a fully constructed Conn; a duplicate tuple is an error (the
// listener rejects the SYN rather than shadowing a live connection).
func (t *ConnTable) Bind(k FourTuple, c *Conn) error {
	if c == nil {
		panic("tcp: ConnTable.Bind of nil Conn")
	}
	b := t.bucket(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.m[k]; dup {
		return fmt.Errorf("tcp: connection %s already bound", k)
	}
	b.m[k] = c
	return nil
}

// Lookup returns the connection bound under k, if any.
func (t *ConnTable) Lookup(k FourTuple) (*Conn, bool) {
	b := t.bucket(k)
	b.mu.RLock()
	c, ok := b.m[k]
	b.mu.RUnlock()
	return c, ok
}

// Remove unpublishes k. It reports whether the tuple was present; callers
// remove a connection from the table *before* closing it.
func (t *ConnTable) Remove(k FourTuple) bool {
	b := t.bucket(k)
	b.mu.Lock()
	_, ok := b.m[k]
	delete(b.m, k)
	b.mu.Unlock()
	return ok
}

// Loads reports the number of bound connections per bucket, in bucket
// order. The megascale experiment uses it to show the FNV fold spreads a
// large fan-in across buckets (max/mean near 1) instead of piling the
// whole fleet into a few chains.
func (t *ConnTable) Loads() []int {
	out := make([]int, len(t.buckets))
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.RLock()
		out[i] = len(b.m)
		b.mu.RUnlock()
	}
	return out
}

// Len counts bound connections.
func (t *ConnTable) Len() int {
	n := 0
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.RLock()
		n += len(b.m)
		b.mu.RUnlock()
	}
	return n
}

// SynInfo captures the handoff-relevant fields of a SYN segment a
// listening endpoint consumed.
type SynInfo struct {
	RemoteIP   ip.Addr
	RemotePort uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	Window     int
}

// ParseSyn extracts handoff fields from a datagram received on a listen
// endpoint; ok is false if the datagram is not a well-formed initial SYN.
// The caller still owns (and must Release) the datagram.
func ParseSyn(d ip.Dgram) (SynInfo, bool) {
	if d.Hdr.Proto != ip.ProtoTCP || d.PayloadLen() < HeaderLen {
		return SynInfo{}, false
	}
	raw := make([]byte, HeaderLen)
	d.Frame.Bytes(raw, d.Off, HeaderLen)
	h, _, err := Parse(raw)
	if err != nil || h.Flags&SYN == 0 || h.Flags&ACK != 0 {
		return SynInfo{}, false
	}
	return SynInfo{
		RemoteIP:   d.Hdr.Src,
		RemotePort: h.SrcPort,
		DstPort:    h.DstPort,
		Seq:        h.Seq,
		Ack:        h.Ack,
		Window:     int(h.Window),
	}, true
}

// AcceptHandoff completes a passive open whose initial SYN was consumed by
// a separate listening endpoint — the fan-in accept path. The listener
// demultiplexes SYNs on a wildcard filter, installs a per-connection
// endpoint (whose more specific packet filter claims the rest of the
// flow), and hands the parsed SYN here; AcceptHandoff replays the
// LISTEN→SYN-RCVD transition on the new endpoint's stack, answers with
// SYN|ACK, and blocks until established. The handshake ACK — and every
// later segment — arrives on st, not on the listener.
func AcceptHandoff(st *ip.Stack, cfg Config, localPort uint16, syn SynInfo) (*Conn, error) {
	c, err := newConn(st, cfg, localPort)
	if err != nil {
		return nil, err
	}
	c.iss = 2000*uint32(localPort) + 13
	c.remoteIP = syn.RemoteIP
	c.remotePort = syn.RemotePort
	c.irs = syn.Seq
	c.rcvNxt = syn.Seq + 1
	c.sndUna, c.sndNxt = c.iss, c.iss
	c.sndWnd = syn.Window
	c.sndWl1, c.sndWl2 = syn.Seq, syn.Ack
	c.state = SynRcvd
	c.sendSegment(SYN|ACK, c.iss, nil, 0, true)
	c.sndNxt = c.iss + 1
	for c.state != Established && c.err == nil {
		c.waitEvent(0)
	}
	if c.err != nil {
		return nil, c.err
	}
	c.installFastPath()
	return c, nil
}

// Tuple is the connection's four-tuple (valid once the remote end is
// known, i.e. from SYN-RCVD / SYN-SENT onward).
func (c *Conn) Tuple() FourTuple {
	return FourTuple{
		LocalIP:    c.St.Local,
		LocalPort:  c.localPort,
		RemoteIP:   c.remoteIP,
		RemotePort: c.remotePort,
	}
}
