package tcp

import (
	"encoding/binary"
	"fmt"

	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
)

// FlyConn is the kernel-free client half of a TCP connection: a pure state
// machine over raw segment bytes for flyweight endpoints. It owns no
// aegis kernel, address space, or process — the caller moves the bytes
// (and the virtual time). The segments it emits are wire-compatible with
// the full Conn on the measured side: real header marshaling, real
// end-to-end Internet checksums, real sequence arithmetic, so the server
// half cannot tell a flyweight peer from a full client host.
//
// The machine is deliberately minimal, shaped for the request/response
// workloads of the megascale experiment: in-order delivery only (anything
// else is dropped for the peer to retransmit), immediate ACKs (no delayed
// ACK — the server's synchronous Write must unblock on our ACK), and no
// internal timers. Retransmission is the caller's job: resend the exact
// bytes a send method returned if progress stalls (the server treats a
// duplicate as out-of-order data and answers with a dup-ACK).
type FlyConn struct {
	LocalIP, RemoteIP     ip.Addr
	LocalPort, RemotePort uint16
	// Checksum enables end-to-end Internet checksums, matching the peer's
	// Config.Checksum.
	Checksum bool
	// Window is the receive window advertised on every segment. The
	// flyweight side consumes payload immediately, so it never shrinks.
	Window uint16

	state          State
	iss            uint32
	sndNxt, sndUna uint32
	rcvNxt         uint32
	finSent        bool
	peerClosed     bool
}

// NewFlyConn builds a closed flyweight connection with initial send
// sequence iss. Call Syn to start the handshake.
func NewFlyConn(local, remote ip.Addr, lport, rport uint16, iss uint32, window uint16, checksum bool) *FlyConn {
	return &FlyConn{
		LocalIP: local, RemoteIP: remote,
		LocalPort: lport, RemotePort: rport,
		Checksum: checksum, Window: window,
		iss: iss,
	}
}

// State reports the connection state (Closed, SynSent, or Established).
func (c *FlyConn) State() State { return c.state }

// Established reports whether the three-way handshake has completed.
func (c *FlyConn) Established() bool { return c.state == Established }

// PeerClosed reports whether the peer's FIN has been accepted.
func (c *FlyConn) PeerClosed() bool { return c.peerClosed }

// AllAcked reports whether everything sent has been acknowledged.
func (c *FlyConn) AllAcked() bool { return c.sndUna == c.sndNxt }

// Done reports a fully shut-down connection: our FIN sent and
// acknowledged, the peer's FIN accepted.
func (c *FlyConn) Done() bool { return c.finSent && c.peerClosed && c.AllAcked() }

// Syn opens the connection: it returns the SYN segment to transmit and
// moves to SYN-SENT.
func (c *FlyConn) Syn() []byte {
	if c.state != Closed || c.sndNxt != 0 {
		panic("tcp: FlyConn.Syn on a non-fresh connection")
	}
	c.state = SynSent
	seg := c.seg(SYN, c.iss, nil)
	c.sndNxt = c.iss + 1
	c.sndUna = c.iss
	return seg
}

// Data returns a PSH|ACK segment carrying payload and advances the send
// sequence. The caller retains the returned bytes for retransmission
// until AllAcked reports true.
func (c *FlyConn) Data(payload []byte) []byte {
	if c.state != Established {
		panic("tcp: FlyConn.Data before establishment")
	}
	seg := c.seg(ACK|PSH, c.sndNxt, payload)
	c.sndNxt += uint32(len(payload))
	return seg
}

// Fin returns our FIN|ACK segment and advances the send sequence over it.
func (c *FlyConn) Fin() []byte {
	if c.finSent {
		panic("tcp: FlyConn.Fin twice")
	}
	seg := c.seg(FIN|ACK, c.sndNxt, nil)
	c.sndNxt++
	c.finSent = true
	return seg
}

// OnSegment consumes one raw TCP segment addressed to this connection and
// returns the segment to transmit in response (nil when none is due) plus
// any in-order payload delivered to the application. Segments for other
// ports, bad checksums, and out-of-order data are handled the way the
// full library handles them (drop; dup-ACK for data), never fatally — the
// only error is a peer RST.
func (c *FlyConn) OnSegment(seg []byte) (reply []byte, payload []byte, err error) {
	h, dataOff, perr := Parse(seg)
	if perr != nil || h.DstPort != c.LocalPort || h.SrcPort != c.RemotePort {
		return nil, nil, nil
	}
	if c.Checksum {
		acc := ip.PseudoCksum(c.RemoteIP, c.LocalIP, ip.ProtoTCP, len(seg))
		acc = link.CksumData(acc, seg)
		if link.FoldCksum(acc) != 0xffff {
			return nil, nil, nil // damaged in flight; peer retransmits
		}
	}
	plen := len(seg) - dataOff
	if h.Flags&RST != 0 {
		c.state = Closed
		return nil, nil, fmt.Errorf("tcp: connection reset by peer")
	}

	switch c.state {
	case SynSent:
		if h.Flags&(SYN|ACK) == SYN|ACK && h.Ack == c.iss+1 {
			c.rcvNxt = h.Seq + 1
			c.sndUna = h.Ack
			c.state = Established
			return c.seg(ACK, c.sndNxt, nil), nil, nil
		}
		return nil, nil, nil
	case Closed:
		return nil, nil, nil
	}

	if h.Flags&ACK != 0 && seqLT(c.sndUna, h.Ack) && seqLE(h.Ack, c.sndNxt) {
		c.sndUna = h.Ack
	}
	ackDue := false
	if plen > 0 {
		if h.Seq == c.rcvNxt {
			payload = append([]byte(nil), seg[dataOff:]...)
			c.rcvNxt += uint32(plen)
		}
		// In-order data is acknowledged immediately; anything else draws
		// the same bare ACK as a dup-ACK carrying rcvNxt.
		ackDue = true
	}
	if h.Flags&FIN != 0 && seqLE(h.Seq+uint32(plen), c.rcvNxt) {
		if !c.peerClosed {
			c.rcvNxt = h.Seq + uint32(plen) + 1
			c.peerClosed = true
		}
		ackDue = true
	}
	if ackDue {
		reply = c.seg(ACK, c.sndNxt, nil)
	}
	return reply, payload, nil
}

// seg builds one raw segment with the current acknowledgment state and,
// when enabled, the end-to-end checksum patched in.
func (c *FlyConn) seg(flags Flags, seq uint32, payload []byte) []byte {
	h := Header{
		SrcPort: c.LocalPort, DstPort: c.RemotePort,
		Seq: seq, Flags: flags, Window: c.Window,
	}
	if flags&ACK != 0 {
		h.Ack = c.rcvNxt
	}
	buf := h.Marshal(nil)
	buf = append(buf, payload...)
	if c.Checksum {
		acc := ip.PseudoCksum(c.LocalIP, c.RemoteIP, ip.ProtoTCP, len(buf))
		acc += h.headerAccum()
		acc = link.CksumData(acc, payload)
		binary.BigEndian.PutUint16(buf[16:18], ^link.FoldCksum(acc))
	}
	return buf
}
