package tcp

import (
	"bytes"
	"testing"
)

// FuzzTCPHeader exercises the wire-header parser: Parse must reject
// anything shorter than 20 bytes or with a data offset outside
// [HeaderLen, len(b)], and for every header it does accept, the parsed
// fields must re-marshal to the original 20 header bytes whenever the
// segment carries no options (the only form Marshal emits).
func FuzzTCPHeader(f *testing.F) {
	good := (&Header{SrcPort: 1234, DstPort: 80, Seq: 1007, Ack: 160013,
		Flags: ACK | PSH, Window: 8192, Checksum: 0xbeef}).Marshal(nil)
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:19])
	opts := append([]byte(nil), good...)
	opts[12] = 6 << 4 // claims 24-byte header
	f.Add(append(opts, 0x01, 0x01, 0x01, 0x00))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, off, err := Parse(b)
		if err != nil {
			if len(b) >= HeaderLen && b[12]>>4 >= 5 && int(b[12]>>4)*4 <= len(b) {
				t.Fatalf("rejected well-formed header: %v", err)
			}
			return
		}
		if len(b) < HeaderLen {
			t.Fatalf("accepted %d-byte header", len(b))
		}
		if off < HeaderLen || off > len(b) {
			t.Fatalf("accepted data offset %d for %d bytes", off, len(b))
		}
		if h.Flags&^(FIN|SYN|RST|PSH|ACK|URG) != 0 {
			t.Fatalf("parsed flags %#x outside the 6 control bits", uint8(h.Flags))
		}
		if off == HeaderLen {
			// Option-free headers round-trip bit-exactly, modulo the
			// reserved bits Parse masks off and Marshal emits as zero.
			want := append([]byte(nil), b[:HeaderLen]...)
			want[12] &= 0xf0
			want[13] &= 0x3f
			if got := h.Marshal(nil); !bytes.Equal(got, want) {
				t.Fatalf("round trip % x != % x", got, want)
			}
		}
	})
}
