package tcp

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
)

// flySeg hand-crafts a peer segment the way the full library would emit
// it (real marshal, real end-to-end checksum).
func flySeg(src, dst ip.Addr, sport, dport uint16, seq, ack uint32, flags Flags, payload []byte) []byte {
	h := Header{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Window: 8192}
	b := h.Marshal(nil)
	b = append(b, payload...)
	acc := ip.PseudoCksum(src, dst, ip.ProtoTCP, len(b))
	acc += h.headerAccum()
	acc = link.CksumData(acc, payload)
	binary.BigEndian.PutUint16(b[16:18], ^link.FoldCksum(acc))
	return b
}

// flyVerify checks a FlyConn-emitted segment's checksum the way the full
// library's receive path does.
func flyVerify(t *testing.T, src, dst ip.Addr, seg []byte) Header {
	t.Helper()
	h, _, err := Parse(seg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	acc := ip.PseudoCksum(src, dst, ip.ProtoTCP, len(seg))
	acc = link.CksumData(acc, seg)
	if link.FoldCksum(acc) != 0xffff {
		t.Fatalf("segment %v fails end-to-end checksum", h.Flags)
	}
	return h
}

func TestFlyConnHandshakeEchoClose(t *testing.T) {
	cli, srv := ip.V4(10, 0, 0, 2), ip.V4(10, 0, 0, 1)
	c := NewFlyConn(cli, srv, 1234, 80, 100, 8192, true)

	syn := c.Syn()
	h := flyVerify(t, cli, srv, syn)
	if h.Flags != SYN || h.Seq != 100 {
		t.Fatalf("SYN = %v seq=%d, want S seq=100", h.Flags, h.Seq)
	}

	reply, payload, err := c.OnSegment(flySeg(srv, cli, 80, 1234, 5000, 101, SYN|ACK, nil))
	if err != nil || payload != nil {
		t.Fatalf("SYN|ACK: err=%v payload=%v", err, payload)
	}
	h = flyVerify(t, cli, srv, reply)
	if h.Flags != ACK || h.Seq != 101 || h.Ack != 5001 {
		t.Fatalf("handshake ACK = %v seq=%d ack=%d", h.Flags, h.Seq, h.Ack)
	}
	if !c.Established() {
		t.Fatal("not established after SYN|ACK")
	}

	data := c.Data([]byte("ping"))
	h = flyVerify(t, cli, srv, data)
	if h.Flags != ACK|PSH || h.Seq != 101 || !bytes.Equal(data[HeaderLen:], []byte("ping")) {
		t.Fatalf("data segment = %v seq=%d", h.Flags, h.Seq)
	}
	if c.AllAcked() {
		t.Fatal("AllAcked before the echo acknowledged the data")
	}

	// Server echo piggybacks the ACK of our 4 bytes.
	reply, payload, err = c.OnSegment(flySeg(srv, cli, 80, 1234, 5001, 105, ACK|PSH, []byte("pong")))
	if err != nil || !bytes.Equal(payload, []byte("pong")) {
		t.Fatalf("echo: err=%v payload=%q", err, payload)
	}
	if !c.AllAcked() {
		t.Fatal("piggybacked ACK not applied")
	}
	h = flyVerify(t, cli, srv, reply)
	if h.Flags != ACK || h.Ack != 5005 {
		t.Fatalf("echo ACK = %v ack=%d, want bare ACK 5005", h.Flags, h.Ack)
	}

	// Duplicate (retransmitted) echo draws a dup-ACK, no payload.
	reply, payload, err = c.OnSegment(flySeg(srv, cli, 80, 1234, 5001, 105, ACK|PSH, []byte("pong")))
	if err != nil || payload != nil {
		t.Fatalf("dup echo: err=%v payload=%q", err, payload)
	}
	if h := flyVerify(t, cli, srv, reply); h.Ack != 5005 {
		t.Fatalf("dup-ACK ack=%d, want 5005", h.Ack)
	}

	fin := c.Fin()
	if h := flyVerify(t, cli, srv, fin); h.Flags != FIN|ACK || h.Seq != 105 {
		t.Fatalf("FIN = %v seq=%d", h.Flags, h.Seq)
	}
	// Peer ACKs our FIN and sends its own.
	if _, _, err := c.OnSegment(flySeg(srv, cli, 80, 1234, 5005, 106, ACK, nil)); err != nil {
		t.Fatalf("FIN ack: %v", err)
	}
	reply, _, err = c.OnSegment(flySeg(srv, cli, 80, 1234, 5005, 106, FIN|ACK, nil))
	if err != nil {
		t.Fatalf("peer FIN: %v", err)
	}
	if h := flyVerify(t, cli, srv, reply); h.Flags != ACK || h.Ack != 5006 {
		t.Fatalf("FIN ACK = %v ack=%d", h.Flags, h.Ack)
	}
	if !c.Done() {
		t.Fatal("not Done after full shutdown")
	}
}

func TestFlyConnDropsDamageAndStrangers(t *testing.T) {
	cli, srv := ip.V4(10, 0, 0, 2), ip.V4(10, 0, 0, 1)
	c := NewFlyConn(cli, srv, 1234, 80, 100, 8192, true)
	c.Syn()

	// Wrong ports: silently ignored.
	if reply, _, err := c.OnSegment(flySeg(srv, cli, 81, 1234, 5000, 101, SYN|ACK, nil)); reply != nil || err != nil {
		t.Fatalf("stranger segment: reply=%v err=%v", reply, err)
	}
	// Damaged checksum: silently dropped.
	bad := flySeg(srv, cli, 80, 1234, 5000, 101, SYN|ACK, nil)
	bad[HeaderLen-1] ^= 0xff
	if reply, _, err := c.OnSegment(bad); reply != nil || err != nil {
		t.Fatalf("damaged segment: reply=%v err=%v", reply, err)
	}
	if c.Established() {
		t.Fatal("established off a dropped segment")
	}

	if _, _, err := c.OnSegment(flySeg(srv, cli, 80, 1234, 5000, 101, SYN|ACK, nil)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order data: dup-ACK, no delivery.
	reply, payload, err := c.OnSegment(flySeg(srv, cli, 80, 1234, 6000, 101, ACK|PSH, []byte("late")))
	if err != nil || payload != nil {
		t.Fatalf("ooo data: err=%v payload=%q", err, payload)
	}
	if h := flyVerify(t, cli, srv, reply); h.Ack != 5001 {
		t.Fatalf("ooo dup-ACK ack=%d, want 5001", h.Ack)
	}

	// RST is fatal.
	if _, _, err := c.OnSegment(flySeg(srv, cli, 80, 1234, 5001, 101, RST, nil)); err == nil {
		t.Fatal("RST did not error")
	}
	if c.State() != Closed {
		t.Fatal("RST did not close")
	}
}
