package tcp

import (
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/netdev"
)

// TestMaxRetransmitTearsDownConnection is the regression test for the
// retransmission-exhaustion path: when a segment is retransmitted
// MaxRetransmit times without an acknowledgment, the connection must be
// torn down — the error surfaces to blocked callers, the state moves to
// Closed, the timer queue drains, and later operations fail fast.
func TestMaxRetransmitTearsDownConnection(t *testing.T) {
	w := newWorld()
	// Black-hole every data segment after the handshake: small control
	// segments (SYN, ACK, FIN; ~60 bytes with headers) still pass, so the
	// connection establishes and then the client's data drowns.
	dropped := 0
	w.sw.Inject = func(pkt *netdev.PacketBuf) bool {
		if pkt.Len() > 200 {
			dropped++
			return false
		}
		return true
	}

	var cli *Conn
	var writeErr, retryWriteErr, retryReadErr error
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 7, w.ip2)
		if _, err := Accept(st, w.cfg(ModeUser, 2), 80); err != nil {
			t.Errorf("accept: %v", err)
		}
		// The server never reads; the client's data never arrives anyway.
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		cfg := w.cfg(ModeUser, 1)
		cfg.RTOUs = 5_000
		cfg.MaxRetransmit = 3
		conn, err := Connect(st, cfg, 1234, w.ip2, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		cli = conn
		writeErr = conn.WriteBytes(make([]byte, 1000))
		// Operations after teardown must fail fast, not hang.
		retryWriteErr = conn.Write(0, 0)
		_, retryReadErr = conn.Read(0, 1)
	})
	w.eng.Run()

	if dropped == 0 {
		t.Fatal("injector never dropped a data segment")
	}
	if cli == nil {
		t.Fatal("connection never established")
	}
	if writeErr == nil {
		t.Fatal("write on a black-holed connection returned nil")
	}
	if cli.State() != Closed {
		t.Fatalf("state = %v after retransmission exhaustion, want CLOSED", cli.State())
	}
	if len(cli.rtxq) != 0 {
		t.Fatalf("%d segments still queued for retransmission after teardown", len(cli.rtxq))
	}
	if cli.Retransmits < 3 {
		t.Fatalf("Retransmits = %d, want >= MaxRetransmit (3)", cli.Retransmits)
	}
	if retryWriteErr == nil {
		t.Fatal("Write after teardown succeeded")
	}
	if retryReadErr == nil {
		t.Fatal("Read after teardown succeeded")
	}
}
