package tcp

import (
	"math/rand"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// world is a two-host AN2 testbed with ASH systems.
type world struct {
	eng        *sim.Engine
	k1, k2     *aegis.Kernel
	a1, a2     *aegis.AN2If
	sys1, sys2 *core.System
	ip1, ip2   ip.Addr
	sw         *netdev.Switch
}

func newWorld() *world {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("h1", eng, prof)
	k2 := aegis.NewKernel("h2", eng, prof)
	w := &world{eng: eng, k1: k1, k2: k2, sw: sw,
		a1: aegis.NewAN2(k1, sw), a2: aegis.NewAN2(k2, sw)}
	w.sys1, w.sys2 = core.NewSystem(k1), core.NewSystem(k2)
	w.ip1 = ip.HostAddr(w.a1.Addr())
	w.ip2 = ip.HostAddr(w.a2.Addr())
	return w
}

func (w *world) stackFor(p *aegis.Process, iface *aegis.AN2If, vc int, local ip.Addr) *ip.Stack {
	ep, err := link.BindAN2(iface, p, vc, 16, iface.MaxFrame())
	if err != nil {
		panic(err)
	}
	res := ip.StaticResolver{
		w.ip1: {Port: w.a1.Addr(), VC: vc},
		w.ip2: {Port: w.a2.Addr(), VC: vc},
	}
	return ip.NewStack(ep, local, res)
}

func (w *world) cfg(mode Mode, host int) Config {
	c := DefaultConfig()
	c.Mode = mode
	if host == 1 {
		c.Sys = w.sys1
	} else {
		c.Sys = w.sys2
	}
	return c
}

// transferTest moves payload from client to server (which echoes a digest
// back), in the given mode, and verifies stream integrity.
func transferTest(t *testing.T, mode Mode, payloadLen int, seed int64, mutate func(w *world)) (cliConn, srvConn *Conn) {
	t.Helper()
	w := newWorld()
	if mutate != nil {
		mutate(w)
	}
	payload := make([]byte, payloadLen)
	rand.New(rand.NewSource(seed)).Read(payload)

	srvDone := make(chan *Conn, 1)
	cliDone := make(chan *Conn, 1)

	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 7, w.ip2)
		conn, err := Accept(st, w.cfg(mode, 2), 80)
		if err != nil {
			t.Errorf("accept: %v", err)
			srvDone <- nil
			return
		}
		buf := p.AS.MustAlloc(payloadLen+16, "rxdata")
		if err := conn.ReadFull(buf.Base, payloadLen); err != nil {
			t.Errorf("server read: %v", err)
			srvDone <- nil
			return
		}
		got := w.k2.Bytes(buf.Base, payloadLen)
		for i := range payload {
			if got[i] != payload[i] {
				t.Errorf("stream corrupted at byte %d: %#x != %#x", i, got[i], payload[i])
				break
			}
		}
		// Echo a 4-byte completion marker.
		if err := conn.WriteBytes([]byte{0xd, 0xe, 0xa, 0xd}); err != nil {
			t.Errorf("server write: %v", err)
		}
		_ = conn.Close()
		srvDone <- conn
	})

	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		conn, err := Connect(st, w.cfg(mode, 1), 1234, w.ip2, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			cliDone <- nil
			return
		}
		if err := conn.WriteBytes(payload); err != nil {
			t.Errorf("client write: %v", err)
			cliDone <- nil
			return
		}
		buf := p.AS.MustAlloc(16, "marker")
		if err := conn.ReadFull(buf.Base, 4); err != nil {
			t.Errorf("client read: %v", err)
			cliDone <- nil
			return
		}
		m := w.k1.Bytes(buf.Base, 4)
		if m[0] != 0xd || m[3] != 0xd {
			t.Errorf("bad completion marker % x", m)
		}
		_ = conn.Close()
		cliDone <- conn
	})

	w.eng.Run()
	select {
	case srvConn = <-srvDone:
	default:
		t.Fatal("server never finished")
	}
	select {
	case cliConn = <-cliDone:
	default:
		t.Fatal("client never finished")
	}
	return cliConn, srvConn
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	cli, srv := transferTest(t, ModeUser, 100, 1, nil)
	if cli == nil || srv == nil {
		t.Fatal("missing conns")
	}
	if cli.State() != Closed || srv.State() != Closed {
		t.Fatalf("states after close: %v / %v", cli.State(), srv.State())
	}
}

func TestBulkTransferUserMode(t *testing.T) {
	cli, srv := transferTest(t, ModeUser, 100_000, 2, nil)
	if srv.PredictHits == 0 {
		t.Fatal("no header-prediction hits during bulk transfer")
	}
	// "Except during connection set up and tear down, all segments were
	// processed by the TCP header-prediction code."
	frac := float64(srv.PredictHits) / float64(srv.PredictHits+srv.PredictMisses)
	if frac < 0.85 {
		t.Fatalf("prediction rate = %.2f, want ~1", frac)
	}
	if cli.Retransmits != 0 || srv.Retransmits != 0 {
		t.Fatalf("lossless transfer retransmitted (%d/%d)", cli.Retransmits, srv.Retransmits)
	}
}

func TestBulkTransferASH(t *testing.T) {
	cli, srv := transferTest(t, ModeASH, 100_000, 3, nil)
	if srv.HandlerConsumed == 0 {
		t.Fatal("ASH fast path never consumed a segment")
	}
	// Data flows client->server: the server's handler should eat nearly
	// every data segment; the client's handler eats the ACKs.
	if cli.HandlerConsumed == 0 {
		t.Fatal("client-side ASH never consumed an ACK")
	}
	abortFrac := float64(srv.HandlerAborts) / float64(srv.HandlerConsumed+srv.HandlerAborts)
	if abortFrac > 0.1 {
		t.Fatalf("handler abort fraction = %.3f, want tiny (paper: <0.2%%)", abortFrac)
	}
}

func TestBulkTransferASHUnsafe(t *testing.T) {
	_, srv := transferTest(t, ModeASHUnsafe, 50_000, 4, nil)
	if srv.HandlerConsumed == 0 {
		t.Fatal("unsafe ASH fast path never ran")
	}
}

func TestBulkTransferUpcall(t *testing.T) {
	_, srv := transferTest(t, ModeUpcall, 50_000, 5, nil)
	if srv.HandlerConsumed == 0 {
		t.Fatal("upcall fast path never ran")
	}
}

func TestLossRecovery(t *testing.T) {
	var dropped int
	cli, srv := transferTest(t, ModeUser, 60_000, 6, func(w *world) {
		rng := rand.New(rand.NewSource(99))
		w.sw.Inject = func(pkt *netdev.PacketBuf) bool {
			// Drop 3% of packets (but never the first few, so the
			// handshake converges quickly).
			if w.sw.Delivered > 4 && rng.Float64() < 0.03 {
				dropped++
				return false
			}
			return true
		}
	})
	if dropped == 0 {
		t.Skip("injector dropped nothing")
	}
	if cli.Retransmits == 0 && srv.Retransmits == 0 {
		t.Fatalf("%d drops but no retransmissions", dropped)
	}
}

func TestCorruptionDetectedByChecksum(t *testing.T) {
	corrupted := 0
	cli, srv := transferTest(t, ModeUser, 30_000, 7, func(w *world) {
		w.sw.Inject = func(pkt *netdev.PacketBuf) bool {
			// Flip a payload byte in one large data segment, refreshing
			// the FCS so the damage sneaks past the board's frame check
			// and only the end-to-end checksum can catch it.
			if corrupted == 0 && pkt.Len() > 2000 {
				data := pkt.Bytes()
				data[1500] ^= 0xff
				pkt.FCS = netdev.FrameCheck(data)
				corrupted++
			}
			return true
		}
	})
	if corrupted == 0 {
		t.Fatal("injector never corrupted")
	}
	if srv.BadChecksum == 0 {
		t.Fatal("corruption not detected by checksum")
	}
	if cli.Retransmits == 0 {
		t.Fatal("corrupted segment never retransmitted")
	}
}

func TestCorruptionDetectedByASHFastPath(t *testing.T) {
	corrupted := 0
	_, srv := transferTest(t, ModeASH, 30_000, 8, func(w *world) {
		w.sw.Inject = func(pkt *netdev.PacketBuf) bool {
			if corrupted == 0 && pkt.Len() > 2000 {
				data := pkt.Bytes()
				data[1500] ^= 0xff
				pkt.FCS = netdev.FrameCheck(data) // sneak past the board CRC
				corrupted++
			}
			return true
		}
	})
	if srv.BadChecksum == 0 {
		t.Fatal("handler did not detect corruption")
	}
}

func TestRandomSegmentationProperty(t *testing.T) {
	// Property: for random MSS and payload sizes, the stream arrives
	// intact in every mode.
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		mss := 64 + rng.Intn(3072)
		size := 1 + rng.Intn(20000)
		mode := []Mode{ModeUser, ModeASH, ModeUpcall}[trial%3]
		func() {
			w := newWorld()
			payload := make([]byte, size)
			rng.Read(payload)
			ok := false
			w.k2.Spawn("server", func(p *aegis.Process) {
				st := w.stackFor(p, w.a2, 7, w.ip2)
				cfg := w.cfg(mode, 2)
				cfg.MSS = mss
				conn, err := Accept(st, cfg, 80)
				if err != nil {
					t.Error(err)
					return
				}
				buf := p.AS.MustAlloc(size+16, "rx")
				if err := conn.ReadFull(buf.Base, size); err != nil {
					t.Error(err)
					return
				}
				got := w.k2.Bytes(buf.Base, size)
				for i := range payload {
					if got[i] != payload[i] {
						t.Errorf("trial %d (mss=%d size=%d mode=%v): corrupt at %d",
							trial, mss, size, mode, i)
						return
					}
				}
				ok = true
				_ = conn.Close()
			})
			w.k1.Spawn("client", func(p *aegis.Process) {
				st := w.stackFor(p, w.a1, 7, w.ip1)
				cfg := w.cfg(mode, 1)
				cfg.MSS = mss
				conn, err := Connect(st, cfg, 1234, w.ip2, 80)
				if err != nil {
					t.Error(err)
					return
				}
				if err := conn.WriteBytes(payload); err != nil {
					t.Error(err)
				}
				_ = conn.Close()
			})
			w.eng.Run()
			if !ok {
				t.Fatalf("trial %d (mss=%d size=%d mode=%v) failed", trial, mss, size, mode)
			}
		}()
	}
}

func TestSynchronousWriteSemantics(t *testing.T) {
	// Write must not return before the data is acknowledged: after Write
	// returns, sndUna == sndNxt.
	w := newWorld()
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 7, w.ip2)
		conn, err := Accept(st, w.cfg(ModeUser, 2), 80)
		if err != nil {
			t.Error(err)
			return
		}
		buf := p.AS.MustAlloc(8192, "rx")
		_ = conn.ReadFull(buf.Base, 8000)
		_ = conn.Close()
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		conn, err := Connect(st, w.cfg(ModeUser, 1), 1234, w.ip2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, 8000)
		if err := conn.WriteBytes(data); err != nil {
			t.Error(err)
			return
		}
		if conn.sndUna != conn.sndNxt {
			t.Errorf("write returned with %d unacknowledged bytes",
				conn.sndNxt-conn.sndUna)
		}
		_ = conn.Close()
	})
	w.eng.Run()
}

func TestWindowLimitsInFlightData(t *testing.T) {
	// With an 8-KB window, the sender never has more than 8 KB in flight.
	w := newWorld()
	maxInFlight := 0
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 7, w.ip2)
		conn, err := Accept(st, w.cfg(ModeUser, 2), 80)
		if err != nil {
			t.Error(err)
			return
		}
		buf := p.AS.MustAlloc(65536, "rx")
		_ = conn.ReadFull(buf.Base, 50000)
		_ = conn.Close()
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		conn, err := Connect(st, w.cfg(ModeUser, 1), 1234, w.ip2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, 50000)
		seg, err := conn.scratch(len(data))
		if err != nil {
			t.Error(err)
			return
		}
		copy(w.k1.Bytes(seg, len(data)), data)
		go func() {}() // no-op: keep structure clear
		// Interleave writes with in-flight checks.
		sent := 0
		for sent < len(data) {
			n := min(8192, len(data)-sent)
			if err := conn.Write(seg+uint32(sent), n); err != nil {
				t.Error(err)
				return
			}
			if fl := int(conn.sndNxt - conn.sndUna); fl > maxInFlight {
				maxInFlight = fl
			}
			sent += n
		}
		_ = conn.Close()
	})
	w.eng.Run()
	if maxInFlight > 8192 {
		t.Fatalf("in-flight data reached %d bytes, window is 8192", maxInFlight)
	}
}

func TestASHLatencyBeatsUserWhenSuspended(t *testing.T) {
	// The Table VI headline: with the application not scheduled at
	// message arrival, the ASH fast path saves tens of microseconds per
	// round trip over the user-level library.
	measure := func(mode Mode, polling bool) float64 {
		w := newWorld()
		const iters = 8
		// "Suspended (interrupts)": the app is not polling; message
		// arrival reschedules it promptly (the paper simulates taking an
		// interrupt), at the cost of the full context-switch path. A
		// competitor makes the switch real.
		if !polling {
			w.k1.Sched = aegis.NewPriorityBoost(w.k1)
			w.k2.Sched = aegis.NewPriorityBoost(w.k2)
			w.k1.Spawn("spin1", func(p *aegis.Process) { p.SpinForever() })
			w.k2.Spawn("spin2", func(p *aegis.Process) { p.SpinForever() })
		}
		var rt sim.Time
		w.k2.Spawn("server", func(p *aegis.Process) {
			st := w.stackFor(p, w.a2, 7, w.ip2)
			cfg := w.cfg(mode, 2)
			cfg.Polling = polling
			conn, err := Accept(st, cfg, 80)
			if err != nil {
				t.Error(err)
				return
			}
			buf := p.AS.MustAlloc(64, "rx")
			for i := 0; i < iters; i++ {
				if err := conn.ReadFull(buf.Base, 4); err != nil {
					t.Error(err)
					return
				}
				if err := conn.Write(buf.Base, 4); err != nil {
					t.Error(err)
					return
				}
			}
			_ = conn.Close()
		})
		w.k1.Spawn("client", func(p *aegis.Process) {
			st := w.stackFor(p, w.a1, 7, w.ip1)
			cfg := w.cfg(mode, 1)
			cfg.Polling = polling
			conn, err := Connect(st, cfg, 1234, w.ip2, 80)
			if err != nil {
				t.Error(err)
				return
			}
			buf := p.AS.MustAlloc(64, "tx")
			start := p.K.Now()
			for i := 0; i < iters; i++ {
				if err := conn.Write(buf.Base, 4); err != nil {
					t.Error(err)
					return
				}
				if err := conn.ReadFull(buf.Base, 4); err != nil {
					t.Error(err)
					return
				}
			}
			rt = p.K.Now() - start
			_ = conn.Close()
		})
		// Spinners never exit; run long enough for the measurement.
		w.eng.RunUntil(w.k1.Prof.Cycles(3_000_000_000)) // 3 simulated seconds
		if rt == 0 {
			t.Fatalf("mode %v polling=%v: ping-pong did not complete", mode, polling)
		}
		return w.k1.Prof.Us(rt) / iters
	}

	userSusp := measure(ModeUser, false)
	ashSusp := measure(ModeASH, false)
	if ashSusp >= userSusp {
		t.Fatalf("suspended: ASH %.1f us not better than user %.1f us", ashSusp, userSusp)
	}
	saving := userSusp - ashSusp
	if saving < 20 {
		t.Fatalf("suspended saving = %.1f us, want tens of us (Table VI: ~65)", saving)
	}
}

func TestWindowStallAndRecovery(t *testing.T) {
	// The receiver stops reading: the 8-KB window fills and the sender
	// stalls; when the receiver drains, transfer completes intact.
	w := newWorld()
	payload := make([]byte, 40000)
	rand.New(rand.NewSource(11)).Read(payload)
	ok := false
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 7, w.ip2)
		conn, err := Accept(st, w.cfg(ModeUser, 2), 80)
		if err != nil {
			t.Error(err)
			return
		}
		// Stall: compute for 50 ms before reading anything.
		p.Compute(w.k2.Prof.Cycles(50_000))
		buf := p.AS.MustAlloc(len(payload)+16, "rx")
		if err := conn.ReadFull(buf.Base, len(payload)); err != nil {
			t.Error(err)
			return
		}
		got := w.k2.Bytes(buf.Base, len(payload))
		for i := range payload {
			if got[i] != payload[i] {
				t.Errorf("corrupt at %d", i)
				return
			}
		}
		ok = true
		_ = conn.Close()
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		conn, err := Connect(st, w.cfg(ModeUser, 1), 1234, w.ip2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.WriteBytes(payload); err != nil {
			t.Error(err)
		}
		_ = conn.Close()
	})
	w.eng.Run()
	if !ok {
		t.Fatal("transfer did not complete after the stall")
	}
}

func TestSimultaneousClose(t *testing.T) {
	// Both ends close at once; both reach CLOSED without retransmission
	// storms.
	w := newWorld()
	var c1, c2 *Conn
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 7, w.ip2)
		conn, err := Accept(st, w.cfg(ModeUser, 2), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c2 = conn
		_ = conn.Close()
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 7, w.ip1)
		conn, err := Connect(st, w.cfg(ModeUser, 1), 1234, w.ip2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c1 = conn
		_ = conn.Close()
	})
	w.eng.Run()
	if c1 == nil || c2 == nil {
		t.Fatal("connections missing")
	}
	if c1.State() != Closed || c2.State() != Closed {
		t.Fatalf("states: %v / %v", c1.State(), c2.State())
	}
	if c1.Retransmits+c2.Retransmits > 2 {
		t.Fatalf("simultaneous close retransmitted %d times", c1.Retransmits+c2.Retransmits)
	}
}

func TestHandlerRingWrapAround(t *testing.T) {
	// Handler-mode transfers larger than the window exercise the receive
	// ring's wrap path (two DILP calls per wrapping segment).
	for trial := 0; trial < 3; trial++ {
		size := 30000 + trial*1111
		cli, srv := transferTest(t, ModeASH, size, int64(200+trial), nil)
		if cli == nil || srv == nil {
			t.Fatal("transfer failed")
		}
		if srv.HandlerConsumed < 5 {
			t.Fatalf("handler consumed only %d segments", srv.HandlerConsumed)
		}
	}
}
