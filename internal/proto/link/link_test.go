package link

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ashs/internal/aegis"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/sim"
)

func newHostPair(t *testing.T) (*sim.Engine, *aegis.Kernel, *aegis.Kernel, *aegis.AN2If, *aegis.AN2If) {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("h1", eng, prof)
	k2 := aegis.NewKernel("h2", eng, prof)
	return eng, k1, k2, aegis.NewAN2(k1, sw), aegis.NewAN2(k2, sw)
}

func TestCksumDataMatchesReference(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		got := FoldCksum(CksumData(0, data))
		// Reference: textbook 16-bit accumulation.
		var sum uint32
		for i := 0; i < len(data); i += 2 {
			w := uint32(data[i]) << 8
			if i+1 < len(data) {
				w |= uint32(data[i+1])
			}
			sum += w
			if sum > 0xffff {
				sum = sum&0xffff + sum>>16
			}
		}
		return got == uint16(sum)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCksumIncremental(t *testing.T) {
	// Property: checksumming in chunks at even boundaries equals one pass.
	err := quick.Check(func(a, b []byte) bool {
		if len(a)%2 == 1 {
			a = a[:len(a)-1]
		}
		whole := CksumData(0, append(append([]byte(nil), a...), b...))
		split := CksumData(CksumData(0, a), b)
		return FoldCksum(whole) == FoldCksum(split)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCopyRangeMovesBytesAndCharges(t *testing.T) {
	eng, k1, _, _, _ := newHostPair(t)
	var cost sim.Time
	k1.Spawn("app", func(p *aegis.Process) {
		src := p.AS.MustAlloc(4096, "src")
		dst := p.AS.MustAlloc(4096, "dst")
		rng := rand.New(rand.NewSource(1))
		s := k1.Bytes(src.Base, 4096)
		rng.Read(s)
		start := p.K.Now()
		acc := CopyRange(p, k1, src.Base, dst.Base, 4096, true)
		cost = p.K.Now() - start
		d := k1.Bytes(dst.Base, 4096)
		for i := range s {
			if s[i] != d[i] {
				t.Errorf("copy mismatch at %d", i)
				return
			}
		}
		if FoldCksum(acc) != FoldCksum(CksumData(0, s)) {
			t.Error("integrated checksum wrong")
		}
	})
	eng.Run()
	// Uncached integrated copy+cksum: ~11 cycles/word = ~2.75 us/words...
	us := k1.Prof.Us(cost)
	if us < 200 || us > 350 {
		t.Fatalf("integrated copy+cksum of 4096B cost %.1f us, want ~280", us)
	}
}

func TestCopyFromStripedFrameMatchesContiguous(t *testing.T) {
	eng, k1, _, _, _ := newHostPair(t)
	k1.Spawn("app", func(p *aegis.Process) {
		// Build a striped buffer and a contiguous frame with identical
		// payloads; copies from both must agree.
		payload := make([]byte, 1000)
		rand.New(rand.NewSource(2)).Read(payload)

		stripedSeg := p.AS.MustAlloc(2048+32, "striped")
		aegis.Stripe(k1.Bytes(stripedSeg.Base, 2048+32), payload)
		fs := Frame{Entry: aegis.RingEntry{Addr: stripedSeg.Base, Len: len(payload)}, Striped: true}
		setFrameKernel(&fs, k1)

		contSeg := p.AS.MustAlloc(1024, "cont")
		copy(k1.Bytes(contSeg.Base, 1000), payload)
		fc := FabricateFrame(k1, contSeg.Base, 1000)

		d1 := p.AS.MustAlloc(1024, "d1")
		d2 := p.AS.MustAlloc(1024, "d2")
		a1 := CopyFromFrame(p, fs, 16, d1.Base, 900, true)
		a2 := CopyFromFrame(p, fc, 16, d2.Base, 900, true)
		b1 := k1.Bytes(d1.Base, 900)
		b2 := k1.Bytes(d2.Base, 900)
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Errorf("striped/contiguous copy mismatch at %d", i)
				return
			}
		}
		if FoldCksum(a1) != FoldCksum(a2) {
			t.Error("striped/contiguous checksum mismatch")
		}
	})
	eng.Run()
}

// setFrameKernel lets tests fabricate striped frames.
func setFrameKernel(f *Frame, k *aegis.Kernel) { f.k = k }

func TestFrameFieldAccessors(t *testing.T) {
	eng, k1, _, _, _ := newHostPair(t)
	k1.Spawn("app", func(p *aegis.Process) {
		seg := p.AS.MustAlloc(64, "buf")
		b := k1.Bytes(seg.Base, 64)
		for i := range b {
			b[i] = byte(i)
		}
		f := FabricateFrame(k1, seg.Base, 64)
		if f.Byte(5) != 5 {
			t.Errorf("Byte(5) = %d", f.Byte(5))
		}
		if f.U16(2) != 0x0203 {
			t.Errorf("U16(2) = %#x", f.U16(2))
		}
		if f.U32(4) != 0x04050607 {
			t.Errorf("U32(4) = %#x", f.U32(4))
		}
		out := make([]byte, 8)
		f.Bytes(out, 10, 8)
		if out[0] != 10 || out[7] != 17 {
			t.Errorf("Bytes = %v", out)
		}
	})
	eng.Run()
}

func TestEndpointSendRecvAN2(t *testing.T) {
	eng, k1, k2, a1, a2 := newHostPair(t)
	var got []byte
	k2.Spawn("rx", func(p *aegis.Process) {
		ep, err := BindAN2(a2, p, 4, 8, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		f := ep.Recv(true)
		got = make([]byte, f.Len())
		f.Bytes(got, 0, f.Len())
		ep.Release(f)
	})
	k1.Spawn("tx", func(p *aegis.Process) {
		ep, err := BindAN2(a1, p, 4, 8, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		ep.Send(Addr{Port: a2.Addr(), VC: 4}, []byte("hello an2"))
	})
	eng.Run()
	if string(got) != "hello an2" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvUntilTimesOut(t *testing.T) {
	eng, k1, _, a1, _ := newHostPair(t)
	var timedOut bool
	var at sim.Time
	k1.Spawn("rx", func(p *aegis.Process) {
		ep, err := BindAN2(a1, p, 4, 8, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		_, ok := ep.RecvUntil(false, 50000)
		timedOut = !ok
		at = p.K.Now()
	})
	eng.Run()
	if !timedOut {
		t.Fatal("RecvUntil did not time out")
	}
	if at < 50000 || at > 52000 {
		t.Fatalf("timed out at %d, want ~50000", at)
	}
}

func TestRecvUntilPollingTimesOut(t *testing.T) {
	eng, k1, _, a1, _ := newHostPair(t)
	var timedOut bool
	k1.Spawn("rx", func(p *aegis.Process) {
		ep, err := BindAN2(a1, p, 4, 8, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		_, ok := ep.RecvUntil(true, 50000)
		timedOut = !ok
	})
	eng.Run()
	if !timedOut {
		t.Fatal("polling RecvUntil did not time out")
	}
}
