package link

import (
	"ashs/internal/aegis"
	"ashs/internal/sim"
)

// Costed data-movement helpers for the user-level protocol libraries.
// Each pass moves real bytes and charges the calling process the cycles
// the DECstation memory model assigns: per 32-bit word, a (cache-modeled)
// load, a store for copies, the loop overhead, and the checksum accumulate
// when integrated. These are the same primitive costs the DILP engines
// charge, so library passes and generated engines are directly comparable
// (Table IV).

// CksumData folds data into a 32-bit ones-complement accumulator
// (RFC 1071): big-endian 16-bit words, odd tail zero-padded. Pure
// computation — no cycles charged.
func CksumData(acc uint32, data []byte) uint32 {
	i := 0
	for ; i+1 < len(data); i += 2 {
		acc = cksumStep(acc, uint32(data[i])<<8|uint32(data[i+1]))
	}
	if i < len(data) {
		acc = cksumStep(acc, uint32(data[i])<<8)
	}
	return acc
}

func cksumStep(acc, v uint32) uint32 {
	s := uint64(acc) + uint64(v)
	return uint32(s) + uint32(s>>32)
}

// FoldCksum reduces an accumulator to the 16-bit Internet checksum value
// (not yet complemented).
func FoldCksum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return uint16(acc)
}

// passCost charges one streaming pass over n bytes: loads at src
// addresses (stride-aware), optional stores at dst, loop overhead, and
// opCycles of ALU work per word.
func passCost(k *aegis.Kernel, srcAddr func(off int) uint32, dstAddr uint32, n int, store bool, opCycles int) sim.Time {
	var cycles sim.Time
	prof := k.Prof
	for off := 0; off < n; off += 4 {
		cycles += k.Cache.Load(srcAddr(off))
		if store {
			cycles += k.Cache.Store(dstAddr + uint32(off))
		}
		cycles += sim.Time(prof.LoopOverhead + opCycles)
	}
	return cycles
}

// CopyRange copies [src, src+n) to [dst, dst+n) in host memory, charging
// process p. With cksum, the Internet checksum is integrated into the same
// pass (one traversal); the accumulator over the copied bytes is returned.
func CopyRange(p *aegis.Process, k *aegis.Kernel, src, dst uint32, n int, cksum bool) uint32 {
	op := 0
	if cksum {
		op = k.Prof.CksumOp
	}
	cycles := passCost(k, func(off int) uint32 { return src + uint32(off) }, dst, n, true, op)
	b := k.Bytes(src, n)
	copy(k.Bytes(dst, n), b)
	var acc uint32
	if cksum {
		acc = CksumData(0, b)
	}
	p.Compute(cycles)
	return acc
}

// CksumRange traverses [addr, addr+n) computing the checksum (no copy).
func CksumRange(p *aegis.Process, k *aegis.Kernel, addr uint32, n int) uint32 {
	cycles := passCost(k, func(off int) uint32 { return addr + uint32(off) }, 0, n, false, k.Prof.CksumOp)
	p.Compute(cycles)
	return CksumData(0, k.Bytes(addr, n))
}

// frameSrc returns the (stripe-aware) address function for frame payload
// starting at off.
func frameSrc(f Frame, off int) func(int) uint32 {
	if !f.Striped {
		base := f.Entry.Addr + uint32(off)
		return func(o int) uint32 { return base + uint32(o) }
	}
	return func(o int) uint32 {
		return f.Entry.Addr + uint32(aegis.StripedIndex(off+o))
	}
}

// CopyFromFrame copies n bytes of frame payload (from offset off) to dst,
// charging p; with cksum the checksum is integrated. Striped (Ethernet)
// frames cost slightly more per line, as the generated strided loops do.
func CopyFromFrame(p *aegis.Process, f Frame, off int, dst uint32, n int, cksum bool) uint32 {
	op := 0
	if cksum {
		op = f.k.Prof.CksumOp
	}
	cycles := passCost(f.k, frameSrc(f, off), dst, n, true, op)
	if f.Striped {
		cycles += sim.Time(n / aegis.StripeChunk) // line-skip index update
	}
	buf := make([]byte, n)
	f.Bytes(buf, off, n)
	copy(f.k.Bytes(dst, n), buf)
	p.Compute(cycles)
	if cksum {
		return CksumData(0, buf)
	}
	return 0
}

// CksumFromFrame traverses n bytes of frame payload computing the
// checksum in place (the "in place, with checksum" receive variant).
func CksumFromFrame(p *aegis.Process, f Frame, off int, n int) uint32 {
	cycles := passCost(f.k, frameSrc(f, off), 0, n, false, f.k.Prof.CksumOp)
	if f.Striped {
		cycles += sim.Time(n / aegis.StripeChunk)
	}
	buf := make([]byte, n)
	f.Bytes(buf, off, n)
	p.Compute(cycles)
	return CksumData(0, buf)
}
