// Package link abstracts the two network attachments the protocol
// libraries run over: an AN2 virtual-circuit binding and an Ethernet DPF
// filter binding. The user-level protocols of Section IV-D (ARP, IP, UDP,
// TCP, HTTP) are libraries linked into applications; this package is the
// seam between those libraries and the simulated kernel's devices.
//
// An Endpoint is one process's demultiplexing point: frames the kernel
// accepts for it appear on its notification ring; sends go through the
// system-call path. Downloaded handlers (ASHs) and upcalls attach at the
// same point, upstream of the ring.
package link

import (
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/dpf"
	"ashs/internal/sim"
)

// Addr is a link-level destination.
type Addr struct {
	Port int // switch port of the destination host
	VC   int // AN2 virtual circuit (0 on Ethernet)
}

// Frame is a received link payload, still in its receive buffer.
type Frame struct {
	Entry   aegis.RingEntry
	Striped bool // Ethernet striping DMA layout
	k       *aegis.Kernel
}

// Len is the payload length in bytes.
func (f *Frame) Len() int { return f.Entry.Len }

// Addr is the simulated physical address of the payload (striped frames:
// of the striped buffer).
func (f *Frame) Addr() uint32 { return f.Entry.Addr }

// Byte reads payload byte i (stripe-aware, uncosted: callers charge
// header-parse costs explicitly).
func (f *Frame) Byte(i int) byte {
	return f.raw()[f.index(i)]
}

// U16 reads a big-endian 16-bit field at offset i.
func (f *Frame) U16(i int) uint16 {
	return uint16(f.Byte(i))<<8 | uint16(f.Byte(i+1))
}

// U32 reads a big-endian 32-bit field at offset i.
func (f *Frame) U32(i int) uint32 {
	return uint32(f.U16(i))<<16 | uint32(f.U16(i+2))
}

func (f *Frame) raw() []byte {
	n := f.Entry.Len
	if f.Striped {
		n = 2 * n
	}
	return f.k.Bytes(f.Entry.Addr, n)
}

func (f *Frame) index(i int) int {
	if f.Striped {
		return aegis.StripedIndex(i)
	}
	return i
}

// Bytes copies the payload range [off, off+n) into dst (uncosted; use
// CopyOut for a costed copy).
func (f *Frame) Bytes(dst []byte, off, n int) {
	raw := f.raw()
	if f.Striped {
		for i := 0; i < n; i++ {
			dst[i] = raw[aegis.StripedIndex(off+i)]
		}
	} else {
		copy(dst, raw[off:off+n])
	}
}

// FabricateFrame builds a Frame view over an arbitrary contiguous memory
// range (e.g. an IP reassembly buffer), so transports can treat assembled
// datagrams and in-buffer datagrams uniformly.
func FabricateFrame(k *aegis.Kernel, addr uint32, n int) Frame {
	return Frame{Entry: aegis.RingEntry{Addr: addr, Len: n}, k: k}
}

// Endpoint is a process's attachment to a network.
type Endpoint interface {
	// Kernel returns the host kernel.
	Kernel() *aegis.Kernel
	// Owner returns the owning process.
	Owner() *aegis.Process
	// LocalAddr returns this endpoint's link address.
	LocalAddr() Addr
	// MTU is the largest payload a frame can carry.
	MTU() int
	// Send transmits payload to dst through the user-level path (system
	// call + device setup), charging the calling process.
	Send(dst Addr, payload []byte)
	// Recv returns the next frame; polling selects busy-wait vs blocking.
	Recv(polling bool) Frame
	// RecvUntil is Recv with an absolute virtual-time deadline (0 = none);
	// ok is false on timeout.
	RecvUntil(polling bool, deadline sim.Time) (Frame, bool)
	// TryRecv returns the next frame without blocking.
	TryRecv() (Frame, bool)
	// Release returns the frame's buffer to the receive pool, charging the
	// buffer-management path.
	Release(f Frame)
	// InstallHandler attaches a downloaded handler upstream of the ring.
	InstallHandler(h aegis.MsgHandler)
	// InstallUpcall attaches an upcall upstream of the ring.
	InstallUpcall(u *aegis.Upcall)
}

// AN2Link is an Endpoint over an AN2 virtual circuit.
type AN2Link struct {
	iface *aegis.AN2If
	bind  *aegis.VCBinding
	owner *aegis.Process
	vc    int
}

// BindAN2 binds process owner to virtual circuit vc with nbufs receive
// buffers of bufSize bytes.
func BindAN2(iface *aegis.AN2If, owner *aegis.Process, vc, nbufs, bufSize int) (*AN2Link, error) {
	b, err := iface.BindVC(owner, vc, nbufs, bufSize)
	if err != nil {
		return nil, err
	}
	return &AN2Link{iface: iface, bind: b, owner: owner, vc: vc}, nil
}

// Kernel implements Endpoint.
func (l *AN2Link) Kernel() *aegis.Kernel { return l.iface.K }

// Owner implements Endpoint.
func (l *AN2Link) Owner() *aegis.Process { return l.owner }

// LocalAddr implements Endpoint.
func (l *AN2Link) LocalAddr() Addr { return Addr{Port: l.iface.Addr(), VC: l.vc} }

// MTU implements Endpoint.
func (l *AN2Link) MTU() int { return l.iface.MaxFrame() }

// Send implements Endpoint.
func (l *AN2Link) Send(dst Addr, payload []byte) {
	l.iface.Send(l.owner, dst.Port, dst.VC, payload)
}

// Recv implements Endpoint.
func (l *AN2Link) Recv(polling bool) Frame {
	f, _ := l.RecvUntil(polling, 0)
	return f
}

// RecvUntil implements Endpoint.
func (l *AN2Link) RecvUntil(polling bool, deadline sim.Time) (Frame, bool) {
	var e aegis.RingEntry
	var ok bool
	if polling {
		e, ok = l.bind.Ring.PollRecvUntil(l.owner, deadline)
	} else {
		e, ok = l.bind.Ring.WaitRecvUntil(l.owner, deadline)
	}
	return Frame{Entry: e, k: l.iface.K}, ok
}

// TryRecv implements Endpoint.
func (l *AN2Link) TryRecv() (Frame, bool) {
	e, ok := l.bind.Ring.TryRecv()
	if !ok {
		return Frame{}, false
	}
	return Frame{Entry: e, k: l.iface.K}, true
}

// Release implements Endpoint.
func (l *AN2Link) Release(f Frame) {
	l.owner.Compute(sim.Time(l.iface.K.Prof.BufferMgmtCycles))
	l.bind.FreeBuf(f.Entry.BufIndex)
}

// InstallHandler implements Endpoint.
func (l *AN2Link) InstallHandler(h aegis.MsgHandler) { l.bind.Handler = h }

// InstallUpcall implements Endpoint.
func (l *AN2Link) InstallUpcall(u *aegis.Upcall) { l.bind.Upcall = u }

// Binding exposes the underlying VC binding (for drop statistics).
func (l *AN2Link) Binding() *aegis.VCBinding { return l.bind }

// EthLink is an Endpoint over an Ethernet DPF filter.
type EthLink struct {
	iface *aegis.EthernetIf
	bind  *aegis.EthBinding
	owner *aegis.Process
}

// BindEthernet installs filter f for owner and returns the endpoint.
func BindEthernet(iface *aegis.EthernetIf, owner *aegis.Process, f *dpf.Filter) (*EthLink, error) {
	b, err := iface.BindFilter(owner, f)
	if err != nil {
		return nil, err
	}
	return &EthLink{iface: iface, bind: b, owner: owner}, nil
}

// Kernel implements Endpoint.
func (l *EthLink) Kernel() *aegis.Kernel { return l.iface.K }

// Owner implements Endpoint.
func (l *EthLink) Owner() *aegis.Process { return l.owner }

// LocalAddr implements Endpoint.
func (l *EthLink) LocalAddr() Addr { return Addr{Port: l.iface.Addr()} }

// MTU implements Endpoint.
func (l *EthLink) MTU() int { return l.iface.MaxFrame() }

// Send implements Endpoint.
func (l *EthLink) Send(dst Addr, payload []byte) {
	l.iface.Send(l.owner, dst.Port, payload)
}

// Recv implements Endpoint.
func (l *EthLink) Recv(polling bool) Frame {
	f, _ := l.RecvUntil(polling, 0)
	return f
}

// RecvUntil implements Endpoint.
func (l *EthLink) RecvUntil(polling bool, deadline sim.Time) (Frame, bool) {
	var e aegis.RingEntry
	var ok bool
	if polling {
		e, ok = l.bind.Ring.PollRecvUntil(l.owner, deadline)
	} else {
		e, ok = l.bind.Ring.WaitRecvUntil(l.owner, deadline)
	}
	return Frame{Entry: e, Striped: true, k: l.iface.K}, ok
}

// TryRecv implements Endpoint.
func (l *EthLink) TryRecv() (Frame, bool) {
	e, ok := l.bind.Ring.TryRecv()
	if !ok {
		return Frame{}, false
	}
	return Frame{Entry: e, Striped: true, k: l.iface.K}, true
}

// Release implements Endpoint.
func (l *EthLink) Release(f Frame) {
	l.owner.Compute(sim.Time(l.iface.K.Prof.BufferMgmtCycles))
	l.iface.FreeBuf(f.Entry.BufIndex)
}

// InstallHandler implements Endpoint.
func (l *EthLink) InstallHandler(h aegis.MsgHandler) { l.bind.Handler = h }

// InstallUpcall implements Endpoint.
func (l *EthLink) InstallUpcall(u *aegis.Upcall) { l.bind.Upcall = u }

// Binding exposes the underlying filter binding (for admission control
// and drop statistics).
func (l *EthLink) Binding() *aegis.EthBinding { return l.bind }

var _ Endpoint = (*AN2Link)(nil)
var _ Endpoint = (*EthLink)(nil)

// ErrNoEndpoint reports a send to an unresolvable destination.
var ErrNoEndpoint = fmt.Errorf("link: no route to destination")
