// Package ether implements Ethernet II framing for the user-level
// protocol library (Section IV-D). Hardware addresses are synthesized from
// switch port numbers, which is what the simulated segment delivers on.
package ether

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit hardware address.
type MAC [6]byte

// EtherTypes used by the stack.
const (
	TypeIPv4 = 0x0800
	TypeARP  = 0x0806
)

// HeaderLen is the Ethernet II header size.
const HeaderLen = 14

// BroadcastMAC is the all-ones hardware broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// PortMAC synthesizes the locally-administered MAC of a switch port. The
// port number occupies the low three octets (24 bits), which keeps the
// historical two-octet form for ports below 65536 and stays unique up to
// million-endpoint fan-in worlds.
func PortMAC(port int) MAC {
	return MAC{0x02, 0x00, 0x00, byte(port >> 16), byte(port >> 8), byte(port)}
}

// PortOfMAC recovers the switch port from a synthesized MAC.
func PortOfMAC(m MAC) (int, bool) {
	if m[0] != 0x02 || m[1] != 0 || m[2] != 0 {
		return 0, false
	}
	return int(m[3])<<16 | int(m[4])<<8 | int(m[5]), true
}

// String formats the address conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// Header is an Ethernet II header.
type Header struct {
	Dst  MAC
	Src  MAC
	Type uint16
}

// Marshal appends the wire form of the header to b.
func (h *Header) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, h.Type)
}

// Unmarshal parses a header from the front of b.
func Unmarshal(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("ether: truncated header (%d bytes)", len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}
