package ether

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Dst: PortMAC(3), Src: PortMAC(7), Type: TypeIPv4}
	b := h.Marshal(nil)
	if len(b) != HeaderLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, err := Unmarshal(b)
	if err != nil || got != h {
		t.Fatalf("Unmarshal = %+v, %v", got, err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 13)); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestPortMACRoundTrip(t *testing.T) {
	err := quick.Check(func(port uint16) bool {
		m := PortMAC(int(port))
		got, ok := PortOfMAC(m)
		return ok && got == int(port)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPortOfMACRejectsForeign(t *testing.T) {
	if _, ok := PortOfMAC(MAC{0xde, 0xad, 0xbe, 0xef, 0, 1}); ok {
		t.Fatal("foreign MAC resolved to a port")
	}
	if _, ok := PortOfMAC(BroadcastMAC); ok {
		t.Fatal("broadcast MAC resolved to a port")
	}
}

func TestBroadcast(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() {
		t.Fatal("broadcast not broadcast")
	}
	if PortMAC(1).IsBroadcast() {
		t.Fatal("unicast claims broadcast")
	}
	if PortMAC(1).String() != "02:00:00:00:00:01" {
		t.Fatalf("String = %s", PortMAC(1))
	}
}
