package nfs

import (
	"math/rand"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
)

// world builds a client/server pair; body runs in the client process.
func world(t *testing.T, srv *Server, requests int, body func(p *aegis.Process, c *Client)) *netdev.Switch {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("client", eng, prof)
	k2 := aegis.NewKernel("server", eng, prof)
	a1, a2 := aegis.NewAN2(k1, sw), aegis.NewAN2(k2, sw)
	ip1, ip2 := ip.HostAddr(a1.Addr()), ip.HostAddr(a2.Addr())

	stack := func(p *aegis.Process, iface *aegis.AN2If, local ip.Addr) *ip.Stack {
		ep, err := link.BindAN2(iface, p, 5, 16, iface.MaxFrame())
		if err != nil {
			t.Error(err)
			return nil
		}
		return ip.NewStack(ep, local, ip.StaticResolver{
			ip1: {Port: a1.Addr(), VC: 5},
			ip2: {Port: a2.Addr(), VC: 5},
		})
	}

	k2.Spawn("nfsd", func(p *aegis.Process) {
		st := stack(p, a2, ip2)
		if st == nil {
			return
		}
		sock := udp.NewSocket(st, 2049, udp.Options{Checksum: true})
		srv.Serve(p, sock, requests)
	})
	k1.Spawn("mount", func(p *aegis.Process) {
		st := stack(p, a1, ip1)
		if st == nil {
			return
		}
		sock := udp.NewSocket(st, 900, udp.Options{Checksum: true})
		body(p, NewClient(sock, ip2, 2049))
	})
	eng.Run()
	return sw
}

func TestLookupGetAttrRead(t *testing.T) {
	srv := NewServer()
	content := []byte("exokernels let applications manage their own resources")
	srv.AddFile("motd", content)

	world(t, srv, 3, func(p *aegis.Process, c *Client) {
		attr, err := c.Lookup(p, RootHandle, "motd")
		if err != nil {
			t.Error(err)
			return
		}
		if attr.IsDir || attr.Size != uint32(len(content)) {
			t.Errorf("attr = %+v", attr)
		}
		a2, err := c.GetAttr(p, attr.Handle)
		if err != nil || a2 != attr {
			t.Errorf("getattr = %+v, %v", a2, err)
		}
		data, err := c.Read(p, attr.Handle, 11, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if string(data) != string(content[11:21]) {
			t.Errorf("read = %q", data)
		}
	})
}

func TestCreateWriteReadBack(t *testing.T) {
	srv := NewServer()
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(8)).Read(payload)

	world(t, srv, 4, func(p *aegis.Process, c *Client) {
		attr, err := c.Create(p, RootHandle, "data.bin")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(p, attr.Handle, 0, payload[:4096]); err != nil {
			t.Error(err)
			return
		}
		if a, err := c.Write(p, attr.Handle, 4096, payload[4096:]); err != nil || a.Size != 5000 {
			t.Errorf("write 2: %+v, %v", a, err)
			return
		}
		got, err := c.Read(p, attr.Handle, 0, 5000)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Errorf("read-back mismatch at %d", i)
				return
			}
		}
	})
}

func TestLookupMissingFails(t *testing.T) {
	srv := NewServer()
	world(t, srv, 1, func(p *aegis.Process, c *Client) {
		if _, err := c.Lookup(p, RootHandle, "nope"); err == nil {
			t.Error("lookup of missing file succeeded")
		}
	})
}

func TestWriteIdempotent(t *testing.T) {
	// Applying the same absolute write twice leaves the same state (the
	// property that makes NFS retransmission safe).
	srv := NewServer()
	fh := srv.AddFile("f", []byte("0123456789"))
	world(t, srv, 3, func(p *aegis.Process, c *Client) {
		if _, err := c.Write(p, fh, 4, []byte("XY")); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(p, fh, 4, []byte("XY")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.Read(p, fh, 0, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if string(got) != "0123XY6789" {
			t.Errorf("after duplicate writes: %q", got)
		}
	})
}

func TestRetransmissionWithLoss(t *testing.T) {
	srv := NewServer()
	fh := srv.AddFile("f", []byte("0123456789"))
	// The switch drops the first server reply.
	// world() runs the engine, so inject before by wrapping: rebuild
	// manually with an injector.
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("client", eng, prof)
	k2 := aegis.NewKernel("server", eng, prof)
	a1, a2 := aegis.NewAN2(k1, sw), aegis.NewAN2(k2, sw)
	ip1, ip2 := ip.HostAddr(a1.Addr()), ip.HostAddr(a2.Addr())
	drops := 0
	sw.Inject = func(pkt *netdev.PacketBuf) bool {
		// Reply packets travel from server (port 1) to client (port 0).
		if pkt.Src == a2.Addr() && drops == 0 {
			drops++
			return false
		}
		return true
	}
	stack := func(p *aegis.Process, iface *aegis.AN2If, local ip.Addr) *ip.Stack {
		ep, err := link.BindAN2(iface, p, 5, 16, iface.MaxFrame())
		if err != nil {
			t.Fatal(err)
		}
		return ip.NewStack(ep, local, ip.StaticResolver{
			ip1: {Port: a1.Addr(), VC: 5},
			ip2: {Port: a2.Addr(), VC: 5},
		})
	}
	k2.Spawn("nfsd", func(p *aegis.Process) {
		sock := udp.NewSocket(stack(p, a2, ip2), 2049, udp.Options{Checksum: true})
		srv.Serve(p, sock, 3)
	})
	ok := false
	k1.Spawn("mount", func(p *aegis.Process) {
		sock := udp.NewSocket(stack(p, a1, ip1), 900, udp.Options{Checksum: true})
		c := NewClient(sock, ip2, 2049)
		c.RetryUs = 20_000
		if _, err := c.Write(p, fh, 0, []byte("AB")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.Read(p, fh, 0, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if string(got) != "AB23456789" {
			t.Errorf("got %q", got)
			return
		}
		if c.Resent == 0 {
			t.Error("loss did not trigger retransmission")
		}
		ok = true
	})
	eng.Run()
	if !ok {
		t.Fatal("client did not complete")
	}
	if drops != 1 {
		t.Fatalf("injector dropped %d", drops)
	}
}

func TestCreateIdempotent(t *testing.T) {
	srv := NewServer()
	world(t, srv, 2, func(p *aegis.Process, c *Client) {
		a1, err := c.Create(p, RootHandle, "same")
		if err != nil {
			t.Error(err)
			return
		}
		a2, err := c.Create(p, RootHandle, "same")
		if err != nil {
			t.Error(err)
			return
		}
		if a1.Handle != a2.Handle {
			t.Errorf("retransmitted CREATE made a second file: %v vs %v", a1.Handle, a2.Handle)
		}
	})
}
