package nfs

import (
	"strings"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/proto/retry"
)

// TestBackoffBudgetExhausts: with the jittered-backoff policy installed,
// an RPC into a dead port stops after the retry budget is spent (not the
// classic Retries count) and reports the budget error.
func TestBackoffBudgetExhausts(t *testing.T) {
	srv := NewServer()
	world(t, srv, 1, func(p *aegis.Process, c *Client) {
		c.Port = 2051 // nobody home
		c.Backoff = retry.New(retry.Policy{BaseUs: 2000, CapUs: 16000, Budget: 3}, 7, 0)
		_, err := c.Lookup(p, RootHandle, "x")
		if err == nil {
			t.Error("lookup against a dead port succeeded")
			return
		}
		if !strings.Contains(err.Error(), "retry budget") {
			t.Errorf("error = %v, want retry budget exhausted", err)
		}
		if c.Resent != 2 {
			t.Errorf("resent = %d, want 2 (budget 3 = 1 try + 2 retries)", c.Resent)
		}
	})
}

// TestBackoffBudgetRefillsPerRPC: the budget is per RPC — after a failed
// call, the next call against a live server proceeds normally.
func TestBackoffBudgetRefillsPerRPC(t *testing.T) {
	srv := NewServer()
	srv.AddFile("f", []byte("x"))
	world(t, srv, 1, func(p *aegis.Process, c *Client) {
		c.Backoff = retry.New(retry.Policy{BaseUs: 2000, CapUs: 16000, Budget: 2}, 7, 0)
		good := c.Port
		c.Port = 2051
		if _, err := c.Lookup(p, RootHandle, "f"); err == nil {
			t.Error("dead-port lookup succeeded")
			return
		}
		c.Port = good
		if _, err := c.Lookup(p, RootHandle, "f"); err != nil {
			t.Errorf("post-failure lookup: %v", err)
		}
	})
}
