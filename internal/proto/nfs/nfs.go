// Package nfs is a miniature NFSv2-flavoured file service over Sun-RPC-
// style UDP messages, rounding out the paper's user-level protocol suite
// ("ARP/RARP, IP, UDP, TCP, HTTP, and NFS"). It implements the core
// stateless operations — LOOKUP, GETATTR, READ, WRITE, CREATE — against an
// in-memory file store, with the classic NFS idempotency property: every
// request names absolute state (file handle + offset), so retransmitted
// requests are harmless.
package nfs

import (
	"encoding/binary"
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/retry"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
)

// Procedure numbers (NFSv2 flavour).
const (
	ProcNull    = 0
	ProcGetAttr = 1
	ProcLookup  = 4
	ProcRead    = 6
	ProcWrite   = 8
	ProcCreate  = 9
)

// Status codes.
const (
	OK         = 0
	ErrNoEnt   = 2
	ErrIO      = 5
	ErrExist   = 17
	ErrNotDir  = 20
	ErrFBig    = 27
	ErrBadProc = 10004
	ErrBadXdr  = 10005
)

// Handle names a file on the server.
type Handle uint32

// RootHandle is the exported root directory.
const RootHandle Handle = 1

// MaxIO bounds one READ/WRITE transfer (NFSv2 used 8 KB).
const MaxIO = 8192

// Attr is a file's attributes.
type Attr struct {
	Handle Handle
	IsDir  bool
	Size   uint32
}

// file is the server-side object.
type file struct {
	attr     Attr
	data     []byte
	children map[string]Handle // for directories
}

// Server is the in-memory file store plus its UDP service loop.
type Server struct {
	files  map[Handle]*file
	nextFH Handle

	// ProcCost is the per-request processing charge (XDR decode, fs
	// lookup, reply build), in cycles.
	ProcCost sim.Time

	// Served counts completed requests by procedure.
	Served map[uint32]uint64
}

// NewServer builds a store containing only the root directory.
func NewServer() *Server {
	s := &Server{files: map[Handle]*file{}, nextFH: RootHandle, ProcCost: 900,
		Served: map[uint32]uint64{}}
	s.files[RootHandle] = &file{
		attr:     Attr{Handle: RootHandle, IsDir: true},
		children: map[string]Handle{},
	}
	s.nextFH++
	return s
}

// AddFile seeds the store (test/boot convenience).
func (s *Server) AddFile(name string, data []byte) Handle {
	fh := s.nextFH
	s.nextFH++
	s.files[fh] = &file{attr: Attr{Handle: fh, Size: uint32(len(data))},
		data: append([]byte(nil), data...)}
	s.files[RootHandle].children[name] = fh
	return fh
}

// Serve answers count requests on sock (0 = forever).
func (s *Server) Serve(p *aegis.Process, sock *udp.Socket, count int) {
	for i := 0; count == 0 || i < count; i++ {
		m, err := sock.Recv(false)
		if err != nil {
			return
		}
		req := append([]byte(nil), m.Bytes(sock.St.Ep.Kernel())...)
		sock.Release(m)
		p.Compute(s.ProcCost)
		reply := s.dispatch(req)
		_ = sock.SendBytes(m.From, m.FromPort, reply)
	}
}

// Request layout (all big-endian u32 unless noted):
//
//	[0]  xid
//	[4]  procedure
//	[8]  file handle
//	[12] argument u32 a (offset, or name length for LOOKUP/CREATE)
//	[16] argument u32 b (count)
//	[20] payload (name bytes or write data)
//
// Reply: [0] xid  [4] status  [8...] result.
func (s *Server) dispatch(req []byte) []byte {
	if len(req) < 20 {
		return rpcReply(0, ErrBadXdr, nil)
	}
	xid := be32(req[0:])
	proc := be32(req[4:])
	fh := Handle(be32(req[8:]))
	argA := be32(req[12:])
	argB := be32(req[16:])
	payload := req[20:]

	fail := func(code uint32) []byte { return rpcReply(xid, code, nil) }
	f, ok := s.files[fh]
	if proc != ProcNull && !ok {
		return fail(ErrNoEnt)
	}

	switch proc {
	case ProcNull:
		s.Served[ProcNull]++
		return rpcReply(xid, OK, nil)

	case ProcGetAttr:
		s.Served[ProcGetAttr]++
		return rpcReply(xid, OK, marshalAttr(f.attr))

	case ProcLookup:
		if !f.attr.IsDir {
			return fail(ErrNotDir)
		}
		if int(argA) > len(payload) {
			return fail(ErrBadXdr)
		}
		name := string(payload[:argA])
		child, ok := f.children[name]
		if !ok {
			return fail(ErrNoEnt)
		}
		s.Served[ProcLookup]++
		return rpcReply(xid, OK, marshalAttr(s.files[child].attr))

	case ProcRead:
		if f.attr.IsDir {
			return fail(ErrIO)
		}
		off, n := argA, argB
		if n > MaxIO {
			return fail(ErrFBig)
		}
		if off > uint32(len(f.data)) {
			off = uint32(len(f.data))
		}
		end := off + n
		if end > uint32(len(f.data)) {
			end = uint32(len(f.data))
		}
		s.Served[ProcRead]++
		out := marshalAttr(f.attr)
		out = binary.BigEndian.AppendUint32(out, end-off)
		return rpcReply(xid, OK, append(out, f.data[off:end]...))

	case ProcWrite:
		if f.attr.IsDir {
			return fail(ErrIO)
		}
		off := argA
		data := payload
		if len(data) > MaxIO {
			return fail(ErrFBig)
		}
		end := int(off) + len(data)
		if end > len(f.data) {
			grown := make([]byte, end)
			copy(grown, f.data)
			f.data = grown
			f.attr.Size = uint32(end)
		}
		copy(f.data[off:], data)
		s.Served[ProcWrite]++
		return rpcReply(xid, OK, marshalAttr(f.attr))

	case ProcCreate:
		if !f.attr.IsDir {
			return fail(ErrNotDir)
		}
		if int(argA) > len(payload) {
			return fail(ErrBadXdr)
		}
		name := string(payload[:argA])
		if _, exists := f.children[name]; exists {
			// Idempotent retransmission of CREATE: return the existing file.
			s.Served[ProcCreate]++
			return rpcReply(xid, OK, marshalAttr(s.files[f.children[name]].attr))
		}
		fh := s.nextFH
		s.nextFH++
		s.files[fh] = &file{attr: Attr{Handle: fh}}
		f.children[name] = fh
		s.Served[ProcCreate]++
		return rpcReply(xid, OK, marshalAttr(s.files[fh].attr))
	}
	return fail(ErrBadProc)
}

func be32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

func rpcReply(xid, status uint32, body []byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, xid)
	out = binary.BigEndian.AppendUint32(out, status)
	return append(out, body...)
}

func marshalAttr(a Attr) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(a.Handle))
	d := uint32(0)
	if a.IsDir {
		d = 1
	}
	out = binary.BigEndian.AppendUint32(out, d)
	return binary.BigEndian.AppendUint32(out, a.Size)
}

func unmarshalAttr(b []byte) (Attr, error) {
	if len(b) < 12 {
		return Attr{}, fmt.Errorf("nfs: short attr")
	}
	return Attr{Handle: Handle(be32(b)), IsDir: be32(b[4:]) == 1, Size: be32(b[8:])}, nil
}

// Client issues requests over a UDP socket with retransmission (the
// stateless-protocol property makes retries safe).
type Client struct {
	Sock   *udp.Socket
	Server ip.Addr
	Port   uint16
	// RetryUs is the initial retransmission interval; each timeout doubles
	// it up to MaxRetryUs (capped exponential backoff — idempotent ops
	// make the retries safe, the cap keeps recovery prompt under sustained
	// loss). Retries bounds attempts.
	RetryUs    float64
	MaxRetryUs float64
	Retries    int

	// Backoff, when set, replaces the fixed doubling schedule: each
	// attempt's receive window comes from the policy's deterministic
	// jittered exponential backoff, and the policy's retry budget bounds
	// attempts (Retries/RetryUs/MaxRetryUs are then ignored). The budget
	// refills per RPC; the jitter stream continues across them, so a
	// fleet of clients seeded distinctly never synchronizes its retries.
	// Nil keeps the classic schedule bit-for-bit.
	Backoff *retry.State

	xid uint32
	// Resent counts retransmitted requests.
	Resent uint64
}

// NewClient builds a client for server addr:port over sock.
func NewClient(sock *udp.Socket, server ip.Addr, port uint16) *Client {
	return &Client{Sock: sock, Server: server, Port: port,
		RetryUs: 100_000, MaxRetryUs: 800_000, Retries: 5}
}

// call performs one RPC.
func (c *Client) call(p *aegis.Process, proc uint32, fh Handle, a, b uint32, payload []byte) (uint32, []byte, error) {
	c.xid++
	xid := c.xid
	req := binary.BigEndian.AppendUint32(nil, xid)
	req = binary.BigEndian.AppendUint32(req, proc)
	req = binary.BigEndian.AppendUint32(req, uint32(fh))
	req = binary.BigEndian.AppendUint32(req, a)
	req = binary.BigEndian.AppendUint32(req, b)
	req = append(req, payload...)

	k := c.Sock.St.Ep.Kernel()
	if c.Backoff != nil {
		c.Backoff.Reset() // the budget is per RPC; the jitter stream persists
	}
	interval := c.RetryUs
	for attempt := 0; ; attempt++ {
		var waitUs float64
		if c.Backoff != nil {
			us, ok := c.Backoff.Next()
			if !ok {
				return 0, nil, fmt.Errorf("nfs: retry budget exhausted after %d attempts", attempt)
			}
			waitUs = us
		} else {
			if attempt > c.Retries {
				return 0, nil, fmt.Errorf("nfs: no reply after %d attempts", c.Retries+1)
			}
			waitUs = interval
			interval *= 2
			if c.MaxRetryUs > 0 && interval > c.MaxRetryUs {
				interval = c.MaxRetryUs
			}
		}
		if attempt > 0 {
			c.Resent++
			if o := k.Obs; o.Enabled() {
				o.Instant(k.Name, "nfs "+p.Name, "proto", "nfs retry", k.Now())
				o.Inc("nfs/retries")
			}
		}
		if err := c.Sock.SendBytes(c.Server, c.Port, req); err != nil {
			return 0, nil, err
		}
		deadline := k.Now() + k.Prof.Cycles(waitUs)
		for {
			m, ok, err := c.Sock.RecvUntil(false, deadline)
			if err != nil {
				return 0, nil, err
			}
			if !ok {
				break // timeout: retransmit
			}
			reply := append([]byte(nil), m.Bytes(k)...)
			c.Sock.Release(m)
			if len(reply) < 8 || be32(reply) != xid {
				continue // stale reply to an earlier xid
			}
			return be32(reply[4:]), reply[8:], nil
		}
	}
}

// Lookup resolves name in directory dir.
func (c *Client) Lookup(p *aegis.Process, dir Handle, name string) (Attr, error) {
	status, body, err := c.call(p, ProcLookup, dir, uint32(len(name)), 0, []byte(name))
	if err != nil {
		return Attr{}, err
	}
	if status != OK {
		return Attr{}, fmt.Errorf("nfs: lookup %q: status %d", name, status)
	}
	return unmarshalAttr(body)
}

// GetAttr fetches attributes.
func (c *Client) GetAttr(p *aegis.Process, fh Handle) (Attr, error) {
	status, body, err := c.call(p, ProcGetAttr, fh, 0, 0, nil)
	if err != nil {
		return Attr{}, err
	}
	if status != OK {
		return Attr{}, fmt.Errorf("nfs: getattr: status %d", status)
	}
	return unmarshalAttr(body)
}

// Read fetches up to n bytes at offset off.
func (c *Client) Read(p *aegis.Process, fh Handle, off, n uint32) ([]byte, error) {
	status, body, err := c.call(p, ProcRead, fh, off, n, nil)
	if err != nil {
		return nil, err
	}
	if status != OK {
		return nil, fmt.Errorf("nfs: read: status %d", status)
	}
	if len(body) < 16 {
		return nil, fmt.Errorf("nfs: short read reply")
	}
	cnt := be32(body[12:])
	if int(cnt) > len(body)-16 {
		return nil, fmt.Errorf("nfs: read reply count overruns body")
	}
	return body[16 : 16+cnt], nil
}

// Write stores data at offset off.
func (c *Client) Write(p *aegis.Process, fh Handle, off uint32, data []byte) (Attr, error) {
	status, body, err := c.call(p, ProcWrite, fh, off, 0, data)
	if err != nil {
		return Attr{}, err
	}
	if status != OK {
		return Attr{}, fmt.Errorf("nfs: write: status %d", status)
	}
	return unmarshalAttr(body)
}

// Create makes an empty file named name in dir.
func (c *Client) Create(p *aegis.Process, dir Handle, name string) (Attr, error) {
	status, body, err := c.call(p, ProcCreate, dir, uint32(len(name)), 0, []byte(name))
	if err != nil {
		return Attr{}, err
	}
	if status != OK {
		return Attr{}, fmt.Errorf("nfs: create %q: status %d", name, status)
	}
	return unmarshalAttr(body)
}
