// Package http is a minimal HTTP/1.0 implementation over the tcp library
// (the paper's protocol suite includes HTTP among its user-level
// protocols). One request per connection: GET and HEAD, a static route
// table, Content-Length framing.
package http

import (
	"fmt"
	"strconv"
	"strings"

	"ashs/internal/aegis"
	"ashs/internal/proto/tcp"
)

// Response is a parsed HTTP response.
type Response struct {
	Status int
	Reason string
	Header map[string]string
	Body   []byte
}

// Server serves a static route table.
type Server struct {
	Routes map[string][]byte
}

// ioBuf allocates a scratch segment for wire I/O on conn's host.
// Exhaustion surfaces as an error: HTTP I/O is a runtime path.
func ioBuf(conn *tcp.Conn, n int) (aegis.Segment, error) {
	return conn.St.Ep.Owner().AS.Alloc(n, "http-io")
}

// readUntilBlankLine reads header bytes up to and including CRLFCRLF.
func readUntilBlankLine(conn *tcp.Conn, seg aegis.Segment) (string, error) {
	k := conn.St.Ep.Kernel()
	got := 0
	for {
		n, err := conn.Read(seg.Base+uint32(got), int(seg.Len)-got)
		if err != nil {
			return "", err
		}
		got += n
		s := string(k.Bytes(seg.Base, got))
		if i := strings.Index(s, "\r\n\r\n"); i >= 0 {
			return s, nil
		}
		if got >= int(seg.Len) {
			return "", fmt.Errorf("http: header too large")
		}
	}
}

// Serve handles one request on an established connection and closes it.
func (s *Server) Serve(conn *tcp.Conn) error {
	seg, err := ioBuf(conn, 8192)
	if err != nil {
		return err
	}
	raw, err := readUntilBlankLine(conn, seg)
	if err != nil {
		return err
	}
	lines := strings.Split(raw, "\r\n")
	fields := strings.Fields(lines[0])
	if len(fields) < 3 {
		return s.respond(conn, 400, "Bad Request", []byte("malformed request line\n"))
	}
	method, path := fields[0], fields[1]
	if method != "GET" && method != "HEAD" {
		return s.respond(conn, 501, "Not Implemented", []byte("method not implemented\n"))
	}
	body, ok := s.Routes[path]
	if !ok {
		return s.respond(conn, 404, "Not Found", []byte("no such document\n"))
	}
	if method == "HEAD" {
		body = nil
	}
	return s.respond(conn, 200, "OK", body)
}

func (s *Server) respond(conn *tcp.Conn, status int, reason string, body []byte) error {
	hdr := fmt.Sprintf("HTTP/1.0 %d %s\r\nContent-Length: %d\r\nServer: ashs-exo\r\n\r\n",
		status, reason, len(body))
	msg := append([]byte(hdr), body...)
	if err := conn.WriteBytes(msg); err != nil {
		return err
	}
	return conn.Close()
}

// Get performs one GET request over an established connection. The
// connection is consumed (HTTP/1.0 semantics).
func Get(conn *tcp.Conn, path string) (*Response, error) {
	req := fmt.Sprintf("GET %s HTTP/1.0\r\nUser-Agent: ashs-exo\r\n\r\n", path)
	if err := conn.WriteBytes([]byte(req)); err != nil {
		return nil, err
	}
	seg, err := ioBuf(conn, 96*1024)
	if err != nil {
		return nil, err
	}
	raw, err := readUntilBlankLine(conn, seg)
	if err != nil {
		return nil, err
	}
	k := conn.St.Ep.Kernel()

	headerEnd := strings.Index(raw, "\r\n\r\n") + 4
	lines := strings.Split(raw[:headerEnd-4], "\r\n")
	fields := strings.SplitN(lines[0], " ", 3)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/1.") {
		return nil, fmt.Errorf("http: malformed status line %q", lines[0])
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("http: bad status %q", fields[1])
	}
	resp := &Response{Status: status, Header: map[string]string{}}
	if len(fields) == 3 {
		resp.Reason = fields[2]
	}
	for _, l := range lines[1:] {
		if i := strings.Index(l, ":"); i > 0 {
			resp.Header[strings.ToLower(strings.TrimSpace(l[:i]))] = strings.TrimSpace(l[i+1:])
		}
	}
	clen, err := strconv.Atoi(resp.Header["content-length"])
	if err != nil {
		return nil, fmt.Errorf("http: missing Content-Length")
	}

	if headerEnd+clen > int(seg.Len) {
		return nil, fmt.Errorf("http: response of %d bytes exceeds the %d-byte buffer", headerEnd+clen, seg.Len)
	}
	total := len(raw) // bytes of the response already in seg
	for total < headerEnd+clen {
		n, err := conn.Read(seg.Base+uint32(total), int(seg.Len)-total)
		if err != nil {
			return nil, err
		}
		total += n
	}
	all := k.Bytes(seg.Base, headerEnd+clen)
	resp.Body = append([]byte(nil), all[headerEnd:]...)
	_ = conn.Close()
	return resp, nil
}
