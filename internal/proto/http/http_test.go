package http

import (
	"math/rand"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/core"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/tcp"
	"ashs/internal/sim"
)

// serveOnce spins up a one-request HTTP server and client in the given
// TCP mode and returns the client's response.
func serveOnce(t *testing.T, mode tcp.Mode, path string, routes map[string][]byte) *Response {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("client", eng, prof)
	k2 := aegis.NewKernel("server", eng, prof)
	a1, a2 := aegis.NewAN2(k1, sw), aegis.NewAN2(k2, sw)
	sys1, sys2 := core.NewSystem(k1), core.NewSystem(k2)
	ip1, ip2 := ip.HostAddr(a1.Addr()), ip.HostAddr(a2.Addr())

	stackFor := func(p *aegis.Process, iface *aegis.AN2If, local ip.Addr) *ip.Stack {
		ep, err := link.BindAN2(iface, p, 3, 16, iface.MaxFrame())
		if err != nil {
			t.Error(err)
			return nil
		}
		return ip.NewStack(ep, local, ip.StaticResolver{
			ip1: {Port: a1.Addr(), VC: 3},
			ip2: {Port: a2.Addr(), VC: 3},
		})
	}

	var resp *Response
	k2.Spawn("httpd", func(p *aegis.Process) {
		st := stackFor(p, a2, ip2)
		if st == nil {
			return
		}
		cfg := tcp.DefaultConfig()
		cfg.Mode = mode
		cfg.Sys = sys2
		conn, err := tcp.Accept(st, cfg, 80)
		if err != nil {
			t.Error(err)
			return
		}
		srv := &Server{Routes: routes}
		if err := srv.Serve(conn); err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	k1.Spawn("browser", func(p *aegis.Process) {
		st := stackFor(p, a1, ip1)
		if st == nil {
			return
		}
		cfg := tcp.DefaultConfig()
		cfg.Mode = mode
		cfg.Sys = sys1
		conn, err := tcp.Connect(st, cfg, 1234, ip2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		r, err := Get(conn, path)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		resp = r
	})
	eng.Run()
	return resp
}

func TestGetSmallDocument(t *testing.T) {
	routes := map[string][]byte{"/index.html": []byte("<html>exokernel ash demo</html>\n")}
	r := serveOnce(t, tcp.ModeUser, "/index.html", routes)
	if r == nil {
		t.Fatal("no response")
	}
	if r.Status != 200 {
		t.Fatalf("status = %d", r.Status)
	}
	if string(r.Body) != string(routes["/index.html"]) {
		t.Fatalf("body = %q", r.Body)
	}
}

func TestGet404(t *testing.T) {
	r := serveOnce(t, tcp.ModeUser, "/nope", map[string][]byte{"/x": []byte("y")})
	if r == nil || r.Status != 404 {
		t.Fatalf("response = %+v", r)
	}
}

func TestGetLargeDocumentOverASHFastPath(t *testing.T) {
	body := make([]byte, 40000)
	rand.New(rand.NewSource(7)).Read(body)
	// Keep it text-ish to avoid accidental CRLFCRLF in headers parsing:
	// body bytes are irrelevant to framing (Content-Length), so any bytes
	// work; verify integrity end to end.
	routes := map[string][]byte{"/big": body}
	r := serveOnce(t, tcp.ModeASH, "/big", routes)
	if r == nil {
		t.Fatal("no response")
	}
	if r.Status != 200 || len(r.Body) != len(body) {
		t.Fatalf("status=%d len=%d", r.Status, len(r.Body))
	}
	for i := range body {
		if r.Body[i] != body[i] {
			t.Fatalf("body corrupt at %d", i)
		}
	}
}
