// Package retry implements deterministic jittered exponential backoff
// with hard retry budgets — the client side of the overload-control
// plane. Under incast, a synchronized loss synchronizes the retries too:
// every client times out together, retransmits together, and collides
// again, amplifying the very burst that caused the loss. The classic
// fixes are (a) jitter, so retry instants spread over the backoff window,
// and (b) a retry budget, so a client that keeps losing stops adding
// offered load instead of doubling it forever.
//
// Both must stay deterministic here: the simulator's byte-identity
// contract forbids wall-clock or global-PRNG jitter. Jitter therefore
// draws from a seeded splitmix64 stream (sim.Rand), and the *first* retry
// uses the client's van der Corput radical inverse instead of a random
// draw: bit-reversing the client index spreads clients 0..N-1 across the
// backoff window in low-discrepancy order, so any two distinct clients
// among the first N are at least 1/N of the window apart — collision-free
// de-synchronization by construction, not by luck. Subsequent retries are
// already de-synchronized by history and use the seeded stream.
package retry

import (
	"errors"
	"math/bits"

	"ashs/internal/sim"
)

// ErrBadSlotWidth is returned by FirstRetrySlot when the slot width is not
// positive: dividing by zero (or a negative width) would yield a ±Inf-cast
// garbage slot index rather than a quantization.
var ErrBadSlotWidth = errors.New("retry: slot width must be > 0")

// Policy describes one backoff schedule: the pre-jitter delay before the
// k-th retry is BaseUs*2^(k-1), capped at CapUs, and at most Budget
// retries are allowed before the caller must give up.
type Policy struct {
	// BaseUs is the pre-jitter delay before the first retry.
	BaseUs float64
	// CapUs bounds the pre-jitter delay (0 = 8*BaseUs).
	CapUs float64
	// Budget is the number of retries allowed per operation. Zero means
	// no retries at all: the first timeout is final.
	Budget int
}

// Jitter is a deterministic jitter-fraction stream for one client. The
// first fraction is the client's van der Corput slot (see the package
// comment); later fractions come from the seeded splitmix64 stream.
type Jitter struct {
	client uint32
	rng    *sim.Rand
	drawn  bool
}

// NewJitter builds the stream for client index `client` of a fleet,
// derived from the run seed. Equal (seed, client) pairs yield equal
// streams; distinct clients get well-separated first fractions.
func NewJitter(seed int64, client int) *Jitter {
	mix := (uint64(uint32(client)) + 1) * 0x9e3779b97f4a7c15
	return &Jitter{
		client: uint32(client),
		rng:    sim.NewRand(seed ^ int64(mix)),
	}
}

// Frac returns the next jitter fraction in [0, 1).
func (j *Jitter) Frac() float64 {
	if !j.drawn {
		j.drawn = true
		// Radical-inverse base 2 of the client index, perturbed by less
		// than 2^-32 so distinct seeds still differ, never enough to move
		// a client out of its 1/N stratum for any fleet of N <= 2^31.
		vdc := float64(bits.Reverse32(j.client)) / (1 << 32)
		return vdc + j.rng.Float64()/(1<<32)
	}
	return j.rng.Float64()
}

// State tracks one client's backoff schedule and retry budget. The jitter
// stream persists across operations (Reset), so repeated operations keep
// drawing fresh fractions; the budget is per operation.
type State struct {
	Pol Policy
	// Used counts retries consumed since the last Reset.
	Used int

	j *Jitter
}

// New builds the backoff state for client `client` under pol, seeded by
// the run seed.
func New(pol Policy, seed int64, client int) *State {
	return &State{Pol: pol, j: NewJitter(seed, client)}
}

// Next returns the jittered delay in microseconds to wait before the next
// retry, or ok=false when the retry budget is exhausted. The delay uses
// equal jitter: half the backed-off interval held firm, half spread by
// the jitter fraction, so the retry lands in [d/2, d).
func (s *State) Next() (us float64, ok bool) {
	if s.Used >= s.Pol.Budget {
		return 0, false
	}
	d := s.Pol.BaseUs
	for i := 0; i < s.Used; i++ {
		d *= 2
	}
	cap := s.Pol.CapUs
	if cap <= 0 {
		cap = 8 * s.Pol.BaseUs
	}
	if d > cap {
		d = cap
	}
	s.Used++
	return d/2 + d/2*s.j.Frac(), true
}

// Reset starts a new operation: the retry budget refills, the jitter
// stream continues where it left off.
func (s *State) Reset() { s.Used = 0 }

// FirstRetrySlot quantizes a first-retry delay into slots of widthUs.
// Two clients in the same slot would collide on the wire; the van der
// Corput construction guarantees distinct slots for clients 0..N-1
// whenever the jitter span BaseUs/2 exceeds N*widthUs. A non-positive
// widthUs is a caller bug and yields ErrBadSlotWidth.
func FirstRetrySlot(delayUs, widthUs float64) (int, error) {
	if widthUs <= 0 {
		return 0, ErrBadSlotWidth
	}
	return int(delayUs / widthUs), nil
}
