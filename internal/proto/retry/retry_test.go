package retry

import "testing"

// TestSeedDeterminism pins the contract the overload experiment's
// byte-identity depends on: identical (policy, seed, client) triples
// produce identical backoff sequences, retry by retry, across ops.
func TestSeedDeterminism(t *testing.T) {
	pol := Policy{BaseUs: 1000, CapUs: 16_000, Budget: 6}
	a := New(pol, 42, 7)
	b := New(pol, 42, 7)
	for op := 0; op < 3; op++ {
		for {
			ua, oka := a.Next()
			ub, okb := b.Next()
			if oka != okb || ua != ub {
				t.Fatalf("op %d: sequences diverged: (%v,%v) vs (%v,%v)",
					op, ua, oka, ub, okb)
			}
			if !oka {
				break
			}
		}
		a.Reset()
		b.Reset()
	}

	c := New(pol, 43, 7)
	ua, _ := a.Next()
	uc, _ := c.Next()
	if ua == uc {
		t.Fatalf("distinct seeds produced identical first delays (%v)", ua)
	}
}

// TestBudgetExhausts checks the retry budget is a hard stop and that the
// pre-jitter schedule doubles up to the cap: every delay sits in
// [d/2, d) for its backed-off interval d.
func TestBudgetExhausts(t *testing.T) {
	pol := Policy{BaseUs: 1000, CapUs: 4000, Budget: 5}
	s := New(pol, 1, 0)
	want := []float64{1000, 2000, 4000, 4000, 4000} // capped doubling
	for i, d := range want {
		us, ok := s.Next()
		if !ok {
			t.Fatalf("retry %d refused inside budget", i)
		}
		if us < d/2 || us >= d {
			t.Fatalf("retry %d delay %v outside [%v, %v)", i, us, d/2, d)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("retry allowed beyond budget")
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Fatal("Reset did not refill the budget")
	}
}

// TestFirstRetrySlotGuard pins the widthUs <= 0 guard: a zero or negative
// slot width is a defined error, not a ±Inf-cast garbage slot.
func TestFirstRetrySlotGuard(t *testing.T) {
	cases := []struct {
		name      string
		delayUs   float64
		widthUs   float64
		wantSlot  int
		wantError bool
	}{
		{"zero width", 500, 0, 0, true},
		{"negative width", 500, -1, 0, true},
		{"zero delay", 0, 10, 0, false},
		{"exact multiple", 500, 10, 50, false},
		{"truncates", 509.9, 10, 50, false},
		{"sub-slot", 3, 10, 0, false},
	}
	for _, tc := range cases {
		slot, err := FirstRetrySlot(tc.delayUs, tc.widthUs)
		if tc.wantError {
			if err != ErrBadSlotWidth {
				t.Errorf("%s: err = %v, want ErrBadSlotWidth", tc.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if slot != tc.wantSlot {
			t.Errorf("%s: slot = %d, want %d", tc.name, slot, tc.wantSlot)
		}
	}
}

// TestFirstRetryDesync is the incast de-synchronization property: at
// N=64 clients sharing one seed, no two clients land in the same
// first-retry slot. The van der Corput construction makes this hold by
// construction (clients 0..63 are >= span/64 apart; the slot width is
// span/128), not probabilistically — so the test is exact, and any
// change to the jitter derivation that breaks it fails loudly.
func TestFirstRetryDesync(t *testing.T) {
	const n = 64
	pol := Policy{BaseUs: 1000, CapUs: 8000, Budget: 3}
	span := pol.BaseUs / 2  // jittered part of the first delay
	width := span / (2 * n) // slot width: half a stratum
	for _, seed := range []int64{1, 2, 99} {
		seen := map[int]int{}
		for c := 0; c < n; c++ {
			s := New(pol, seed, c)
			us, ok := s.Next()
			if !ok {
				t.Fatalf("client %d: no first retry", c)
			}
			slot, err := FirstRetrySlot(us, width)
			if err != nil {
				t.Fatalf("client %d: FirstRetrySlot: %v", c, err)
			}
			if prev, dup := seen[slot]; dup {
				t.Fatalf("seed %d: clients %d and %d share first-retry slot %d",
					seed, prev, c, slot)
			}
			seen[slot] = c
		}
	}
}
