package ip

import (
	"math/rand"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// fragWorld builds one host with a stack whose frames we feed directly.
type fragWorld struct {
	eng *sim.Engine
	k   *aegis.Kernel
	st  *Stack
	p   *aegis.Process
}

// runFragWorld spawns a process owning a stack and runs body inside it
// (stack operations must run in the owning process's context).
func runFragWorld(t *testing.T, body func(w *fragWorld)) {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k := aegis.NewKernel("h", eng, prof)
	iface := aegis.NewAN2(k, sw)
	w := &fragWorld{eng: eng, k: k}
	k.Spawn("feeder", func(p *aegis.Process) {
		w.p = p
		ep, err := link.BindAN2(iface, p, 3, 16, 16384)
		if err != nil {
			t.Error(err)
			return
		}
		w.st = NewStack(ep, V4(10, 0, 0, 9), StaticResolver{})
		body(w)
	})
	eng.Run()
}

// mkFragment builds a raw IP fragment datagram in a fresh segment and
// returns a fabricated frame over it.
func (w *fragWorld) mkFragment(id uint16, off int, mf bool, payload []byte) link.Frame {
	h := Header{
		TotalLen: uint16(HeaderLen + len(payload)), ID: id, TTL: 64,
		Proto: ProtoUDP, Src: V4(10, 0, 0, 1), Dst: V4(10, 0, 0, 9),
		MF: mf, FragOff: off,
	}
	buf := h.Marshal(nil)
	buf = append(buf, payload...)
	seg := w.p.AS.MustAlloc(len(buf)+16, "frag")
	copy(w.k.Bytes(seg.Base, len(buf)), buf)
	return link.FabricateFrame(w.k, seg.Base, len(buf))
}

func TestReassemblyOutOfOrder(t *testing.T) {
	payload := make([]byte, 6000)
	rand.New(rand.NewSource(3)).Read(payload)

	var got []byte
	runFragWorld(t, func(w *fragWorld) {
		// Three fragments delivered in scrambled order.
		frags := [][3]int{ // {off, end, mf}
			{4000, 6000, 0},
			{0, 2000, 1},
			{2000, 4000, 1},
		}
		for _, f := range frags {
			mf := f[2] == 1
			frame := w.mkFragment(77, f[0], mf, payload[f[0]:f[1]])
			d, ok, err := w.st.Input(frame)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				buf := make([]byte, d.PayloadLen())
				d.Frame.Bytes(buf, d.Off, d.PayloadLen())
				got = buf
				w.st.Release(d)
			}
		}
	})
	if len(got) != len(payload) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("reassembly mismatch at %d", i)
		}
	}
}

func TestReassemblyDuplicateFragments(t *testing.T) {
	payload := make([]byte, 4000)
	rand.New(rand.NewSource(4)).Read(payload)
	var got []byte
	runFragWorld(t, func(w *fragWorld) {
		feed := func(off, end int, mf bool) bool {
			frame := w.mkFragment(5, off, mf, payload[off:end])
			d, ok, err := w.st.Input(frame)
			if err != nil {
				t.Error(err)
				return false
			}
			if ok {
				buf := make([]byte, d.PayloadLen())
				d.Frame.Bytes(buf, d.Off, d.PayloadLen())
				got = buf
				w.st.Release(d)
			}
			return ok
		}
		feed(0, 2000, true)
		feed(0, 2000, true) // duplicate of the first fragment
		feed(2000, 4000, false)
	})
	if len(got) != len(payload) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestReassemblySlotExhaustionDropsNotCorrupts(t *testing.T) {
	runFragWorld(t, func(w *fragWorld) {
		// Open more concurrent reassemblies than there are slots; none
		// complete. The extra ones are dropped, nothing crashes.
		for id := 0; id < ReasmSlots+3; id++ {
			frame := w.mkFragment(uint16(100+id), 0, true, make([]byte, 512))
			if _, ok, err := w.st.Input(frame); ok || err != nil {
				t.Errorf("incomplete fragment returned ok=%v err=%v", ok, err)
			}
		}
	})
}

func TestReassemblyTimeoutReclaimsSlots(t *testing.T) {
	completed := false
	var timeouts uint64
	runFragWorld(t, func(w *fragWorld) {
		// Fill every slot with half-done reassemblies.
		for id := 0; id < ReasmSlots; id++ {
			frame := w.mkFragment(uint16(200+id), 0, true, make([]byte, 512))
			_, _, _ = w.st.Input(frame)
		}
		// Let them expire (2 simulated seconds).
		w.p.Compute(w.k.Prof.Cycles(3_000_000))
		// A fresh reassembly must find a slot and complete.
		payload := make([]byte, 2000)
		frame := w.mkFragment(999, 0, true, payload[:1000])
		_, _, _ = w.st.Input(frame)
		frame = w.mkFragment(999, 1000, false, payload[1000:])
		_, ok, err := w.st.Input(frame)
		if err != nil {
			t.Error(err)
			return
		}
		completed = ok
		timeouts = w.st.ReasmTimeouts
	})
	if !completed {
		t.Fatal("post-timeout reassembly did not complete")
	}
	if timeouts == 0 {
		t.Fatal("no timeouts recorded")
	}
}
