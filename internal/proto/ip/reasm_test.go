package ip

import (
	"testing"
)

// TestReassemblyNoLeakUnderSustainedLoss drives 1k two-fragment datagrams
// through the stack with every third one losing its tail fragment. The
// incomplete reassemblies must be evicted on timeout, their slots must be
// reused, every intact datagram must still complete, and at the end no
// reassembly state may linger.
func TestReassemblyNoLeakUnderSustainedLoss(t *testing.T) {
	const (
		datagrams = 1000
		fragLen   = 512
	)
	completed := 0
	var timeouts uint64
	leakedSlots, leakedKeys := 0, 0
	runFragWorld(t, func(w *fragWorld) {
		payload := make([]byte, 2*fragLen)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		feed := func(id uint16, off int, mf bool, data []byte) bool {
			d, ok, err := w.st.Input(w.mkFragment(id, off, mf, data))
			if err != nil {
				t.Error(err)
				return false
			}
			if ok {
				w.st.Release(d)
			}
			return ok
		}
		for i := 0; i < datagrams; i++ {
			if i > 0 && i%10 == 0 {
				// Idle long enough for the stragglers to expire; the next
				// fragment's sweep reclaims their slots.
				w.p.Compute(w.k.Prof.Cycles(2_500_000))
			}
			feed(uint16(i), 0, true, payload[:fragLen])
			if i%3 == 0 {
				continue // tail fragment lost
			}
			if !feed(uint16(i), fragLen, false, payload[fragLen:]) {
				t.Errorf("intact datagram %d did not complete", i)
				return
			}
			completed++
		}
		// Let the final stragglers expire, then confirm a fresh datagram
		// still assembles and nothing is left behind.
		w.p.Compute(w.k.Prof.Cycles(2_500_000))
		feed(9999, 0, true, payload[:fragLen])
		if !feed(9999, fragLen, false, payload[fragLen:]) {
			t.Error("post-loss reassembly did not complete")
		}
		timeouts = w.st.ReasmTimeouts
		leakedKeys = len(w.st.reasm)
		for _, sl := range w.st.slots {
			if sl.inUse {
				leakedSlots++
			}
		}
	})
	wantComplete := datagrams - (datagrams+2)/3
	if completed != wantComplete {
		t.Fatalf("completed %d intact datagrams, want %d", completed, wantComplete)
	}
	if timeouts < uint64((datagrams+2)/3) {
		t.Fatalf("ReasmTimeouts = %d, want >= %d (every lossy datagram evicted)",
			timeouts, (datagrams+2)/3)
	}
	if leakedKeys != 0 || leakedSlots != 0 {
		t.Fatalf("leaked %d reassembly keys, %d slots", leakedKeys, leakedSlots)
	}
}
