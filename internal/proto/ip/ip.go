// Package ip implements IPv4 (RFC 791) as a user-level library: header
// marshal/parse with header checksum, identification, and send-side
// fragmentation with receive-side reassembly. Routing is direct delivery
// (all hosts share a link), with pluggable address resolution — a static
// table over the AN2 and ARP over the Ethernet.
package ip

import (
	"encoding/binary"
	"fmt"
)

// Addr is an IPv4 address.
type Addr [4]byte

// V4 builds an address from its octets.
func V4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// HostAddr is the conventional address of switch port n in this testbed.
// The host number spreads across the low three octets so fan-in worlds
// with up to ~16M ports get distinct addresses (port 0 → 10.0.0.1,
// port 254 → 10.0.0.255, port 255 → 10.0.1.0, port 65535 → 10.1.0.0, ...).
// For ports below 65535 the mapping is identical to the historical
// two-octet spread, so all committed outputs are unchanged.
func HostAddr(port int) Addr {
	n := port + 1
	return V4(10, byte(n>>16), byte(n>>8), byte(n))
}

// String formats dotted quad.
func (a Addr) String() string { return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3]) }

// Protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// HeaderLen is the size of a header without options (the library never
// emits options).
const HeaderLen = 20

// Fragmentation flag bits (in the flags/fragment-offset word).
const (
	flagDF = 0x4000
	flagMF = 0x2000
)

// Header is a parsed IPv4 header.
type Header struct {
	TOS      byte
	TotalLen uint16
	ID       uint16
	DF, MF   bool
	FragOff  int // byte offset of this fragment
	TTL      byte
	Proto    byte
	Checksum uint16
	Src, Dst Addr
}

// Marshal appends the 20-byte wire header to b, computing the header
// checksum.
func (h *Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, 0x45, h.TOS)
	b = binary.BigEndian.AppendUint16(b, h.TotalLen)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	ff := uint16(h.FragOff / 8)
	if h.DF {
		ff |= flagDF
	}
	if h.MF {
		ff |= flagMF
	}
	b = binary.BigEndian.AppendUint16(b, ff)
	b = append(b, h.TTL, h.Proto, 0, 0) // checksum filled below
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	ck := headerChecksum(b[start : start+HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:], ck)
	return b
}

// headerChecksum computes the ones-complement header checksum.
func headerChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Parse reads and validates a header from the front of b.
func Parse(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("ip: truncated header (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return h, fmt.Errorf("ip: version %d", b[0]>>4)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < HeaderLen || ihl > len(b) {
		// Out-of-range IHL: malformed, or a bit flip that survived the
		// link CRC. Rejecting it here (rather than slicing past the
		// buffer) keeps corrupted headers on the error path.
		return h, fmt.Errorf("ip: bad IHL %d", ihl)
	}
	if headerChecksum(b[:ihl]) != 0 {
		// Checksum over a valid header (including its checksum field)
		// sums to 0xffff; complemented: 0.
		return h, fmt.Errorf("ip: header checksum failure")
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	h.DF = ff&flagDF != 0
	h.MF = ff&flagMF != 0
	h.FragOff = int(ff&0x1fff) * 8
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl {
		return h, fmt.Errorf("ip: total length %d below header", h.TotalLen)
	}
	return h, nil
}

// PseudoCksum computes the TCP/UDP pseudo-header checksum contribution.
func PseudoCksum(src, dst Addr, proto byte, length int) uint32 {
	var sum uint32
	add16 := func(v uint32) {
		sum += v
	}
	add16(uint32(src[0])<<8 | uint32(src[1]))
	add16(uint32(src[2])<<8 | uint32(src[3]))
	add16(uint32(dst[0])<<8 | uint32(dst[1]))
	add16(uint32(dst[2])<<8 | uint32(dst[3]))
	add16(uint32(proto))
	add16(uint32(length))
	return sum
}
