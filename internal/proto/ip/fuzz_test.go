package ip

import (
	"testing"
)

// FuzzIPParse throws arbitrary bytes at the header parser. Parse sits on
// the kernel receive path (every frame crosses it before any transport
// code runs), so the contract is strict: it must never panic or slice out
// of bounds, any header it accepts must carry self-consistent version, IHL
// and total-length fields plus a valid header checksum, and accepted
// headers must survive a Marshal→Parse round trip.
func FuzzIPParse(f *testing.F) {
	// A well-formed header, to seed the "accept" side of the corpus.
	good := (&Header{TotalLen: 28, ID: 7, TTL: 64, Proto: ProtoUDP,
		Src: HostAddr(0), Dst: HostAddr(1)}).Marshal(nil)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(append([]byte{0x46}, good[1:]...))        // IHL claims options
	f.Add(append([]byte{0x65}, good[1:]...))        // version 6
	f.Add(append([]byte(nil), make([]byte, 20)...)) // all zero
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := Parse(b)
		if err != nil {
			return
		}
		// Accepted: the validated invariants must actually hold.
		if len(b) < HeaderLen {
			t.Fatalf("accepted %d-byte header", len(b))
		}
		if b[0]>>4 != 4 {
			t.Fatalf("accepted version %d", b[0]>>4)
		}
		ihl := int(b[0]&0xf) * 4
		if ihl < HeaderLen || ihl > len(b) {
			t.Fatalf("accepted IHL %d for %d bytes", ihl, len(b))
		}
		if int(h.TotalLen) < ihl {
			t.Fatalf("accepted TotalLen %d below IHL %d", h.TotalLen, ihl)
		}
		if h.FragOff < 0 || h.FragOff > 0x1fff*8 {
			t.Fatalf("fragment offset %d out of range", h.FragOff)
		}
		// Round trip: re-marshal the parsed fields and parse again. The
		// library never emits options, so only compare option-free headers.
		if ihl == HeaderLen {
			h2, err := Parse(h.Marshal(nil))
			if err != nil {
				t.Fatalf("re-parse of marshaled header failed: %v", err)
			}
			// The ones-complement checksum has two encodings when the rest
			// of the header sums to 0xffff (0x0000 and 0xffff both verify),
			// so the wire checksum itself is excluded from the comparison.
			h2.Checksum = h.Checksum
			if h2 != h {
				t.Fatalf("round trip changed header: %+v -> %+v", h, h2)
			}
		}
	})
}
