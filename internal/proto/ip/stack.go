package ip

import (
	"bytes"
	"fmt"
	"sort"

	"ashs/internal/aegis"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Resolver maps an IP destination to a link address. Over the AN2 this is
// a static table (circuits are provisioned); over the Ethernet it is ARP.
type Resolver interface {
	Resolve(p *aegis.Process, dst Addr) (link.Addr, error)
}

// StaticResolver is a fixed routing table.
type StaticResolver map[Addr]link.Addr

// Resolve implements Resolver.
func (m StaticResolver) Resolve(_ *aegis.Process, dst Addr) (link.Addr, error) {
	la, ok := m[dst]
	if !ok {
		return link.Addr{}, fmt.Errorf("ip: no route to %s", dst)
	}
	return la, nil
}

// Costs are the per-operation protocol-processing charges of the IP
// library (calibrated against Table II as described in DESIGN.md).
type Costs struct {
	Build sim.Time // header construction + output buffer handling
	Parse sim.Time // header validation + demux fields
}

// DefaultCosts is the calibrated IP cost set.
func DefaultCosts() Costs { return Costs{Build: 120, Parse: 120} }

// Stack is a per-process IPv4 instance over one link endpoint.
type Stack struct {
	Ep    link.Endpoint
	Local Addr
	Res   Resolver
	Costs Costs

	// LinkHdrLen is the bytes of link header preceding the IP header in
	// received frames (0 on AN2, 14 on Ethernet).
	LinkHdrLen int
	// PrependLink builds the link header for a resolved destination.
	PrependLink func(dst link.Addr, b []byte) []byte

	nextID uint16
	reasm  map[reasmKey]*reasmBuf
	slots  []*reasmBuf

	// Statistics.
	BadHeader, NotMine, ReasmTimeouts uint64
}

type reasmKey struct {
	src   Addr
	id    uint16
	proto byte
}

type reasmBuf struct {
	seg      aegis.Segment
	have     map[int]int // fragment offset -> length
	totalLen int         // set when the MF=0 fragment arrives (-1 until then)
	inUse    bool
	deadline sim.Time
}

// ReasmBufSize bounds a reassembled datagram.
const ReasmBufSize = 64 * 1024

// ReasmSlots is the number of concurrent reassemblies a stack supports.
const ReasmSlots = 4

// ReasmTimeout is how long fragments are held (RFC 791 suggests 15s+).
const reasmTimeoutUs = 2_000_000 // 2 simulated seconds

// NewStack builds an IP instance for the endpoint's owner. Reassembly
// buffers are allocated lazily on first fragment arrival (see allocSlot):
// unfragmented workloads never pay the ReasmSlots×64-KB footprint, which
// is what lets a many-hundred-client fan-in world run hundreds of stacks
// inside small kernels.
func NewStack(ep link.Endpoint, local Addr, res Resolver) *Stack {
	return &Stack{
		Ep: ep, Local: local, Res: res, Costs: DefaultCosts(),
		reasm: map[reasmKey]*reasmBuf{},
	}
}

// MTU is the largest IP datagram the link carries unfragmented.
func (s *Stack) MTU() int { return s.Ep.MTU() - s.LinkHdrLen }

// MaxPayload is the largest transport payload per fragment.
func (s *Stack) maxFragPayload() int {
	return (s.MTU() - HeaderLen) &^ 7 // fragment data is 8-byte aligned
}

// Send transmits payload as an IP datagram to dst, fragmenting if needed.
// The caller has already charged transport-level costs; Send charges IP
// header construction per fragment.
func (s *Stack) Send(proto byte, dst Addr, payload []byte) error {
	la, err := s.Res.Resolve(s.Ep.Owner(), dst)
	if err != nil {
		return err
	}
	id := s.nextID
	s.nextID++
	mtu := s.MTU()
	p := s.Ep.Owner()

	if HeaderLen+len(payload) <= mtu {
		p.Compute(s.Costs.Build)
		h := Header{TotalLen: uint16(HeaderLen + len(payload)), ID: id, TTL: 64,
			Proto: proto, Src: s.Local, Dst: dst}
		buf := s.prepend(la, nil)
		buf = h.Marshal(buf)
		buf = append(buf, payload...)
		s.Ep.Send(la, buf)
		return nil
	}

	// Fragmentation path.
	step := s.maxFragPayload()
	if step <= 0 {
		return fmt.Errorf("ip: MTU %d too small to fragment", mtu)
	}
	for off := 0; off < len(payload); off += step {
		end := off + step
		mf := true
		if end >= len(payload) {
			end = len(payload)
			mf = false
		}
		p.Compute(s.Costs.Build)
		h := Header{TotalLen: uint16(HeaderLen + end - off), ID: id, TTL: 64,
			Proto: proto, Src: s.Local, Dst: dst, MF: mf, FragOff: off}
		buf := s.prepend(la, nil)
		buf = h.Marshal(buf)
		buf = append(buf, payload[off:end]...)
		s.Ep.Send(la, buf)
	}
	return nil
}

func (s *Stack) prepend(la link.Addr, b []byte) []byte {
	if s.PrependLink != nil {
		return s.PrependLink(la, b)
	}
	return b
}

// Dgram is a received, complete IP datagram. Unfragmented datagrams stay
// in their receive buffer (zero copy until the transport decides);
// reassembled ones live in a stack-owned buffer.
type Dgram struct {
	Hdr Header
	// Frame backs the payload: either the receive buffer (Off is the
	// transport payload's offset) or a fabricated view of the reassembly
	// buffer.
	Frame link.Frame
	Off   int
	// Doorbell marks a zero-length kernel notification (a downloaded
	// handler consumed a message and is waking the library to re-examine
	// shared state). Doorbells carry no data and need no Release.
	Doorbell bool
	slot     *reasmBuf
}

// PayloadLen is the transport payload length.
func (d *Dgram) PayloadLen() int { return int(d.Hdr.TotalLen) - HeaderLen }

// Recv returns the next complete datagram addressed to this stack,
// processing fragments as they arrive. It charges IP parse costs per
// frame examined.
func (s *Stack) Recv(polling bool) (Dgram, error) {
	d, _, err := s.RecvUntil(polling, 0)
	return d, err
}

// RecvUntil is Recv with an absolute deadline (0 = none); ok is false on
// timeout. Doorbell notifications are returned to the caller.
func (s *Stack) RecvUntil(polling bool, deadline sim.Time) (Dgram, bool, error) {
	for {
		f, got := s.Ep.RecvUntil(polling, deadline)
		if !got {
			return Dgram{}, false, nil
		}
		if f.Entry.Len == 0 && f.Entry.BufIndex < 0 {
			return Dgram{Doorbell: true}, true, nil
		}
		d, ok, err := s.Input(f)
		if err != nil {
			return Dgram{}, false, err
		}
		if ok {
			return d, true, nil
		}
	}
}

// TryRecv is Recv without blocking; ok is false when nothing is pending.
func (s *Stack) TryRecv() (Dgram, bool, error) {
	for {
		f, any := s.Ep.TryRecv()
		if !any {
			return Dgram{}, false, nil
		}
		d, ok, err := s.Input(f)
		if err != nil {
			return Dgram{}, false, err
		}
		if ok {
			return d, true, nil
		}
	}
}

// Input processes one received frame: ok reports whether a complete
// datagram is ready. Frames that do not produce a datagram (bad, not ours,
// mid-reassembly) are released internally.
func (s *Stack) Input(f link.Frame) (Dgram, bool, error) {
	p := s.Ep.Owner()
	p.Compute(s.Costs.Parse)

	hdrBytes := make([]byte, HeaderLen)
	if f.Len() < s.LinkHdrLen+HeaderLen {
		s.BadHeader++
		s.Ep.Release(f)
		return Dgram{}, false, nil
	}
	f.Bytes(hdrBytes, s.LinkHdrLen, HeaderLen)
	h, err := Parse(hdrBytes)
	if err != nil {
		s.BadHeader++
		s.Ep.Release(f)
		return Dgram{}, false, nil
	}
	if h.Dst != s.Local {
		s.NotMine++
		s.Ep.Release(f)
		return Dgram{}, false, nil
	}
	if s.LinkHdrLen+int(h.TotalLen) > f.Len() {
		// Truncated datagram (frame shorter than the header claims).
		s.BadHeader++
		s.Ep.Release(f)
		return Dgram{}, false, nil
	}
	if !h.MF && h.FragOff == 0 {
		return Dgram{Hdr: h, Frame: f, Off: s.LinkHdrLen + HeaderLen}, true, nil
	}
	return s.inputFragment(h, f)
}

// inputFragment folds one fragment into its reassembly buffer.
func (s *Stack) inputFragment(h Header, f link.Frame) (Dgram, bool, error) {
	p := s.Ep.Owner()
	now := s.Ep.Kernel().Now()
	s.sweepReasm(now)
	key := reasmKey{src: h.Src, id: h.ID, proto: h.Proto}
	buf := s.reasm[key]
	if buf == nil {
		buf = s.allocSlot(now)
		if buf == nil {
			// All slots busy: drop the fragment.
			s.Ep.Release(f)
			return Dgram{}, false, nil
		}
		buf.have = map[int]int{}
		buf.totalLen = -1
		s.reasm[key] = buf
	}
	buf.deadline = now + s.Ep.Kernel().Prof.Cycles(reasmTimeoutUs)

	n := int(h.TotalLen) - HeaderLen
	if h.FragOff+n > ReasmBufSize {
		s.Ep.Release(f)
		return Dgram{}, false, nil
	}
	// Copy the fragment payload into place (a real, charged copy: this is
	// the cost fragmentation imposes).
	link.CopyFromFrame(p, f, s.LinkHdrLen+HeaderLen, buf.seg.Base+uint32(h.FragOff), n, false)
	buf.have[h.FragOff] = n
	if !h.MF {
		buf.totalLen = h.FragOff + n
	}
	s.Ep.Release(f)

	if buf.totalLen >= 0 && s.complete(buf) {
		delete(s.reasm, key)
		h.TotalLen = uint16(HeaderLen + buf.totalLen)
		h.MF = false
		h.FragOff = 0
		d := Dgram{
			Hdr: h,
			Frame: link.FabricateFrame(s.Ep.Kernel(),
				buf.seg.Base, buf.totalLen),
			Off:  0,
			slot: buf,
		}
		return d, true, nil
	}
	return Dgram{}, false, nil
}

// sweepReasm evicts reassemblies whose timers expired, freeing their
// slots. Under sustained fragment loss incomplete datagrams never finish,
// and without proactive eviction they pin every slot until a new arrival
// happens to need one — with eviction the slots cycle and fresh datagrams
// keep completing.
func (s *Stack) sweepReasm(now sim.Time) {
	for k, sl := range s.reasm {
		if now > sl.deadline {
			delete(s.reasm, k)
			s.ReasmTimeouts++
			sl.have = nil
			sl.inUse = false
		}
	}
}

func (s *Stack) allocSlot(now sim.Time) *reasmBuf {
	for _, sl := range s.slots {
		if !sl.inUse {
			sl.inUse = true
			return sl
		}
	}
	if len(s.slots) < ReasmSlots {
		// First fragments to need a slot grow the pool, up to ReasmSlots.
		// An allocation failure just drops this fragment — reassembly is
		// best-effort and the sender retransmits.
		seg, err := s.Ep.Owner().AS.Alloc(ReasmBufSize, fmt.Sprintf("ip-reasm-%d", len(s.slots)))
		if err == nil {
			sl := &reasmBuf{seg: seg, inUse: true}
			s.slots = append(s.slots, sl)
			return sl
		}
	}
	// Reclaim an expired reassembly (backstop; sweepReasm normally already
	// freed them). The victim is chosen by earliest deadline with the key
	// as tie-break, so the choice is independent of map iteration order.
	var expired []reasmKey
	for k, sl := range s.reasm {
		if now > sl.deadline {
			expired = append(expired, k)
		}
	}
	if len(expired) == 0 {
		return nil
	}
	sort.Slice(expired, func(i, j int) bool {
		a, b := expired[i], expired[j]
		if da, db := s.reasm[a].deadline, s.reasm[b].deadline; da != db {
			return da < db
		}
		if c := bytes.Compare(a.src[:], b.src[:]); c != 0 {
			return c < 0
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.proto < b.proto
	})
	k := expired[0]
	sl := s.reasm[k]
	delete(s.reasm, k)
	s.ReasmTimeouts++
	sl.have = map[int]int{}
	return sl
}

func (s *Stack) complete(buf *reasmBuf) bool {
	off := 0
	for off < buf.totalLen {
		n, ok := buf.have[off]
		if !ok {
			return false
		}
		off += n
	}
	return true
}

// Release returns a datagram's underlying storage.
func (s *Stack) Release(d Dgram) {
	if d.slot != nil {
		d.slot.inUse = false
		d.slot.have = nil
		return
	}
	s.Ep.Release(d.Frame)
}
