package ip

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{TOS: 0, TotalLen: 1500, ID: 42, TTL: 64, Proto: ProtoUDP,
		Src: V4(10, 0, 0, 1), Dst: V4(10, 0, 0, 2)}
	b := h.Marshal(nil)
	if len(b) != HeaderLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalLen != 1500 || got.ID != 42 || got.Proto != ProtoUDP ||
		got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 {
		t.Fatalf("Parse = %+v", got)
	}
	if got.Checksum == 0 {
		t.Fatal("checksum not computed")
	}
}

func TestFragmentFieldsRoundTrip(t *testing.T) {
	err := quick.Check(func(off uint16, mf, df bool) bool {
		h := Header{TotalLen: 100, TTL: 1, Proto: 6,
			FragOff: int(off&0x1fff) * 8, MF: mf, DF: df}
		got, err := Parse(h.Marshal(nil))
		return err == nil && got.FragOff == h.FragOff && got.MF == mf && got.DF == df
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsCorruptHeader(t *testing.T) {
	h := Header{TotalLen: 100, TTL: 64, Proto: 6, Src: V4(1, 2, 3, 4), Dst: V4(5, 6, 7, 8)}
	b := h.Marshal(nil)
	for i := 0; i < HeaderLen; i++ {
		c := append([]byte(nil), b...)
		c[i] ^= 0x55
		if got, err := Parse(c); err == nil {
			// Only acceptable if the flip happens to keep a valid v4
			// header with correct checksum (impossible for a single flip).
			t.Fatalf("corrupt byte %d accepted: %+v", i, got)
		}
	}
}

func TestParseRejectsV6AndShort(t *testing.T) {
	if _, err := Parse([]byte{0x60, 0, 0, 0}); err == nil {
		t.Fatal("short/v6 header accepted")
	}
	b := make([]byte, HeaderLen)
	b[0] = 0x60
	if _, err := Parse(b); err == nil {
		t.Fatal("v6 header accepted")
	}
}

func TestPseudoCksumSymmetric(t *testing.T) {
	a := PseudoCksum(V4(1, 2, 3, 4), V4(5, 6, 7, 8), ProtoTCP, 100)
	b := PseudoCksum(V4(5, 6, 7, 8), V4(1, 2, 3, 4), ProtoTCP, 100)
	if a != b {
		t.Fatal("pseudo-header checksum not symmetric in addresses")
	}
}

func TestHostAddr(t *testing.T) {
	if HostAddr(0) != V4(10, 0, 0, 1) || HostAddr(5) != V4(10, 0, 0, 6) {
		t.Fatal("HostAddr mapping wrong")
	}
	if V4(10, 0, 0, 1).String() != "10.0.0.1" {
		t.Fatalf("String = %s", V4(10, 0, 0, 1))
	}
}
