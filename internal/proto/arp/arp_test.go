package arp

import (
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/dpf"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Op: OpRequest, SenderMAC: ether.PortMAC(1), SenderIP: ip.V4(10, 0, 0, 2),
		TargetMAC: ether.MAC{}, TargetIP: ip.V4(10, 0, 0, 3)}
	b := p.Marshal(nil)
	if len(b) != PacketLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, err := Parse(b)
	if err != nil || got != p {
		t.Fatalf("Parse = %+v, %v", got, err)
	}
	if _, err := Parse(b[:20]); err == nil {
		t.Fatal("short packet accepted")
	}
}

type ethWorld struct {
	eng    *sim.Engine
	k1, k2 *aegis.Kernel
	e1, e2 *aegis.EthernetIf
	s1, s2 *Service
}

func newEthWorld(t *testing.T) *ethWorld {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	k1 := aegis.NewKernel("h1", eng, prof)
	k2 := aegis.NewKernel("h2", eng, prof)
	w := &ethWorld{eng: eng, k1: k1, k2: k2,
		e1: aegis.NewEthernet(k1, sw), e2: aegis.NewEthernet(k2, sw)}
	var err error
	w.s1, err = Start(k1, w.e1, ip.HostAddr(w.e1.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	w.s2, err = Start(k2, w.e2, ip.HostAddr(w.e2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestResolveAcrossHosts(t *testing.T) {
	w := newEthWorld(t)
	target := ip.HostAddr(w.e2.Addr())
	var got link.Addr
	var err error
	w.k1.Spawn("resolver", func(p *aegis.Process) {
		got, err = w.s1.Resolve(p, target)
	})
	w.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Port != w.e2.Addr() {
		t.Fatalf("resolved port %d, want %d", got.Port, w.e2.Addr())
	}
	if w.s2.RequestsServed != 1 {
		t.Fatalf("server answered %d requests, want 1", w.s2.RequestsServed)
	}
	// The responder learned the requester's binding opportunistically.
	if _, ok := w.s2.Lookup(ip.HostAddr(w.e1.Addr())); !ok {
		t.Fatal("responder did not learn requester's binding")
	}
}

func TestResolveCachesSecondLookup(t *testing.T) {
	w := newEthWorld(t)
	target := ip.HostAddr(w.e2.Addr())
	w.k1.Spawn("resolver", func(p *aegis.Process) {
		if _, err := w.s1.Resolve(p, target); err != nil {
			t.Error(err)
		}
		if _, err := w.s1.Resolve(p, target); err != nil {
			t.Error(err)
		}
	})
	w.eng.Run()
	if w.s2.RequestsServed != 1 {
		t.Fatalf("cache miss: %d requests served", w.s2.RequestsServed)
	}
}

func TestResolveUnknownTimesOut(t *testing.T) {
	w := newEthWorld(t)
	var err error
	w.k1.Spawn("resolver", func(p *aegis.Process) {
		_, err = w.s1.Resolve(p, ip.V4(10, 9, 9, 9))
	})
	w.eng.Run()
	if err == nil {
		t.Fatal("resolution of unknown address succeeded")
	}
}

func TestResolveSelf(t *testing.T) {
	w := newEthWorld(t)
	self := ip.HostAddr(w.e1.Addr())
	var got link.Addr
	w.k1.Spawn("resolver", func(p *aegis.Process) {
		got, _ = w.s1.Resolve(p, self)
	})
	w.eng.Run()
	if got.Port != w.e1.Addr() {
		t.Fatal("self resolution wrong")
	}
}

// TestUDPOverEthernetWithARP is the full Ethernet-side stack: DPF demux,
// ARP resolution, striped receive buffers, IP, UDP.
func TestUDPOverEthernetWithARP(t *testing.T) {
	w := newEthWorld(t)
	ip1, ip2 := ip.HostAddr(w.e1.Addr()), ip.HostAddr(w.e2.Addr())

	mkStack := func(p *aegis.Process, eth *aegis.EthernetIf, svc *Service, local ip.Addr, port uint16) *ip.Stack {
		// Demux: IP ethertype + our address + UDP + our port.
		f := dpf.NewFilter().
			Eq16(12, ether.TypeIPv4).
			Eq32(ether.HeaderLen+16, ipToU32(local)).
			Eq8(ether.HeaderLen+9, ip.ProtoUDP).
			Eq16(ether.HeaderLen+ip.HeaderLen+2, port)
		ep, err := link.BindEthernet(eth, p, f)
		if err != nil {
			t.Error(err)
			return nil
		}
		st := ip.NewStack(ep, local, svc)
		st.LinkHdrLen = ether.HeaderLen
		myMAC := ether.PortMAC(eth.Addr())
		st.PrependLink = func(dst link.Addr, b []byte) []byte {
			h := ether.Header{Dst: ether.PortMAC(dst.Port), Src: myMAC, Type: ether.TypeIPv4}
			return h.Marshal(b)
		}
		return st
	}

	payload := []byte("over the ethernet, through the stripes, to the socket we go!!!!")
	var got []byte
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := mkStack(p, w.e2, w.s2, ip2, 53)
		if st == nil {
			return
		}
		sock := udp.NewSocket(st, 53, udp.Options{Checksum: true})
		m, err := sock.Recv(false)
		if err != nil {
			t.Error(err)
			return
		}
		data := append([]byte(nil), m.Bytes(w.k2)...)
		sock.Release(m)
		if err := sock.SendBytes(m.From, m.FromPort, data); err != nil {
			t.Error(err)
		}
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := mkStack(p, w.e1, w.s1, ip1, 1234)
		if st == nil {
			return
		}
		sock := udp.NewSocket(st, 1234, udp.Options{Checksum: true})
		if err := sock.SendBytes(ip2, 53, payload); err != nil {
			t.Error(err)
			return
		}
		m, err := sock.Recv(false)
		if err != nil {
			t.Error(err)
			return
		}
		got = append([]byte(nil), m.Bytes(w.k1)...)
		sock.Release(m)
	})
	w.eng.Run()
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q vs %q", got, payload)
	}
}

func ipToU32(a ip.Addr) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

func TestReverseLookupRARP(t *testing.T) {
	w := newEthWorld(t)
	targetMAC := ether.PortMAC(w.e2.Addr())
	wantIP := ip.HostAddr(w.e2.Addr())
	var got ip.Addr
	var err error
	w.k1.Spawn("rarp-client", func(p *aegis.Process) {
		got, err = w.s1.ReverseLookup(p, targetMAC)
	})
	w.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != wantIP {
		t.Fatalf("RARP resolved %s, want %s", got, wantIP)
	}
}

func TestReverseLookupUnknownMACFails(t *testing.T) {
	w := newEthWorld(t)
	var err error
	w.k1.Spawn("rarp-client", func(p *aegis.Process) {
		_, err = w.s1.ReverseLookup(p, ether.MAC{0xde, 0xad, 0, 0, 0, 1})
	})
	w.eng.Run()
	if err == nil {
		t.Fatal("reverse lookup of unknown MAC succeeded")
	}
}
