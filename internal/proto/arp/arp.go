// Package arp implements the Address Resolution Protocol (RFC 826) and
// its inverse lookup (RARP-style reverse queries) for the Ethernet side of
// the testbed. Each host runs one resolver daemon that answers requests
// for the host's address and completes outstanding resolutions; protocol
// stacks plug the daemon in as their ip.Resolver.
package arp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"ashs/internal/aegis"
	"ashs/internal/dpf"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// Opcodes.
const (
	OpRequest = 1
	OpReply   = 2
	// OpRevRequest/OpRevReply are the RARP opcodes (RFC 903).
	OpRevRequest = 3
	OpRevReply   = 4
)

// PacketLen is the ARP payload size for Ethernet/IPv4.
const PacketLen = 28

// Packet is an Ethernet/IPv4 ARP packet.
type Packet struct {
	Op        uint16
	SenderMAC ether.MAC
	SenderIP  ip.Addr
	TargetMAC ether.MAC
	TargetIP  ip.Addr
}

// Marshal appends the wire form to b.
func (p *Packet) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1) // hardware: Ethernet
	b = binary.BigEndian.AppendUint16(b, ether.TypeIPv4)
	b = append(b, 6, 4)
	b = binary.BigEndian.AppendUint16(b, p.Op)
	b = append(b, p.SenderMAC[:]...)
	b = append(b, p.SenderIP[:]...)
	b = append(b, p.TargetMAC[:]...)
	b = append(b, p.TargetIP[:]...)
	return b
}

// Parse reads a packet from b.
func Parse(b []byte) (Packet, error) {
	var p Packet
	if len(b) < PacketLen {
		return p, fmt.Errorf("arp: truncated packet (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint16(b) != 1 || binary.BigEndian.Uint16(b[2:]) != ether.TypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		return p, fmt.Errorf("arp: unsupported hardware/protocol space")
	}
	p.Op = binary.BigEndian.Uint16(b[6:])
	copy(p.SenderMAC[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// Service is a host's ARP daemon plus cache.
type Service struct {
	MyIP  ip.Addr
	MyMAC ether.MAC

	eth   *aegis.EthernetIf
	ep    *link.EthLink
	proc  *aegis.Process
	cache map[ip.Addr]ether.MAC
	cond  aegis.Cond

	// parse/build cost per packet, in cycles.
	procCost sim.Time

	// Statistics.
	RequestsServed, RepliesLearned uint64
}

// resolveTimeout is how long one resolution attempt waits for a reply.
const resolveTimeoutUs = 100_000

// resolveAttempts bounds retransmissions of a request.
const resolveAttempts = 3

// Start spawns the ARP daemon on host k over the Ethernet interface.
func Start(k *aegis.Kernel, eth *aegis.EthernetIf, myIP ip.Addr) (*Service, error) {
	s := &Service{
		MyIP: myIP, MyMAC: ether.PortMAC(eth.Addr()),
		eth: eth, cache: map[ip.Addr]ether.MAC{}, procCost: 100,
	}
	// Own address is always known.
	s.cache[myIP] = s.MyMAC
	s.proc = k.Spawn("arpd", func(p *aegis.Process) { s.serve(p) })
	filter := dpf.NewFilter().Eq16(12, ether.TypeARP)
	ep, err := link.BindEthernet(eth, s.proc, filter)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	return s, nil
}

// serve is the daemon loop: answer requests, learn replies.
func (s *Service) serve(p *aegis.Process) {
	for {
		f := s.ep.Recv(false)
		p.Compute(s.procCost)
		raw := make([]byte, PacketLen)
		if f.Len() < ether.HeaderLen+PacketLen {
			s.ep.Release(f)
			continue
		}
		f.Bytes(raw, ether.HeaderLen, PacketLen)
		pkt, err := Parse(raw)
		s.ep.Release(f)
		if err != nil {
			continue
		}
		// Learn the sender binding opportunistically (classic ARP).
		s.cache[pkt.SenderIP] = pkt.SenderMAC
		switch pkt.Op {
		case OpRequest:
			if pkt.TargetIP != s.MyIP {
				continue
			}
			s.RequestsServed++
			reply := Packet{Op: OpReply, SenderMAC: s.MyMAC, SenderIP: s.MyIP,
				TargetMAC: pkt.SenderMAC, TargetIP: pkt.SenderIP}
			s.transmit(p, pkt.SenderMAC, &reply)
		case OpRevRequest:
			// RARP: answer "what IP belongs to this MAC" for our own MAC.
			if pkt.TargetMAC != s.MyMAC {
				continue
			}
			s.RequestsServed++
			reply := Packet{Op: OpRevReply, SenderMAC: s.MyMAC, SenderIP: s.MyIP,
				TargetMAC: pkt.SenderMAC, TargetIP: pkt.SenderIP}
			s.transmit(p, pkt.SenderMAC, &reply)
		case OpReply, OpRevReply:
			s.RepliesLearned++
			s.cond.Broadcast(0)
		}
	}
}

func (s *Service) transmit(p *aegis.Process, dst ether.MAC, pkt *Packet) {
	p.Compute(s.procCost)
	h := ether.Header{Dst: dst, Src: s.MyMAC, Type: ether.TypeARP}
	frame := h.Marshal(nil)
	frame = pkt.Marshal(frame)
	if port, ok := ether.PortOfMAC(dst); ok && !dst.IsBroadcast() {
		s.eth.Send(p, port, frame)
	} else {
		s.eth.Broadcast(p, frame)
	}
}

// Lookup returns a cached binding without resolving.
func (s *Service) Lookup(a ip.Addr) (ether.MAC, bool) {
	m, ok := s.cache[a]
	return m, ok
}

// ReverseLookup performs the RARP query (RFC 903 flavour): which protocol
// address belongs to hardware address m? Diskless DECstations booted this
// way; here it completes the ARP/RARP pair the paper lists.
func (s *Service) ReverseLookup(p *aegis.Process, m ether.MAC) (ip.Addr, error) {
	find := func() (ip.Addr, bool) {
		// Several protocol addresses may bind to one MAC; the lowest wins
		// so the answer is independent of map iteration order.
		var matches []ip.Addr
		for addr, mac := range s.cache {
			if mac == m {
				matches = append(matches, addr)
			}
		}
		if len(matches) == 0 {
			return ip.Addr{}, false
		}
		sort.Slice(matches, func(i, j int) bool {
			return bytes.Compare(matches[i][:], matches[j][:]) < 0
		})
		return matches[0], true
	}
	for attempt := 0; attempt < resolveAttempts; attempt++ {
		if a, ok := find(); ok {
			return a, nil
		}
		req := Packet{Op: OpRevRequest, SenderMAC: s.MyMAC, SenderIP: s.MyIP, TargetMAC: m}
		s.transmit(p, ether.BroadcastMAC, &req)
		s.cond.WaitTimeout(p, p.K.Prof.Cycles(resolveTimeoutUs))
	}
	if a, ok := find(); ok {
		return a, nil
	}
	return ip.Addr{}, fmt.Errorf("arp: no reverse binding for %s", m)
}

// Resolve implements ip.Resolver: it answers from the cache or broadcasts
// a request and blocks the caller until the daemon learns the reply.
func (s *Service) Resolve(p *aegis.Process, dst ip.Addr) (link.Addr, error) {
	for attempt := 0; attempt < resolveAttempts; attempt++ {
		if mac, ok := s.cache[dst]; ok {
			port, ok := ether.PortOfMAC(mac)
			if !ok {
				return link.Addr{}, fmt.Errorf("arp: unroutable MAC %s", mac)
			}
			return link.Addr{Port: port}, nil
		}
		req := Packet{Op: OpRequest, SenderMAC: s.MyMAC, SenderIP: s.MyIP, TargetIP: dst}
		s.transmit(p, ether.BroadcastMAC, &req)
		s.cond.WaitTimeout(p, p.K.Prof.Cycles(resolveTimeoutUs))
	}
	if mac, ok := s.cache[dst]; ok {
		port, _ := ether.PortOfMAC(mac)
		return link.Addr{Port: port}, nil
	}
	return link.Addr{}, fmt.Errorf("arp: no reply for %s", dst)
}
