// Package udp is a straightforward user-level implementation of the UDP
// protocol as specified in RFC 768 (Section IV-D of the paper), layered on
// the ip library. It supports the four receive disciplines Table II
// compares: in-place vs copying delivery, each with or without end-to-end
// Internet checksums. Per the paper, the library's copy and checksum are
// *not* integrated (separate passes); integration is what the ASH/DILP
// path adds.
package udp

import (
	"encoding/binary"
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Header is a UDP header.
type Header struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Marshal appends the wire header to b (checksum field as given).
func (h *Header) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	return binary.BigEndian.AppendUint16(b, h.Checksum)
}

// Parse reads a header from b.
func Parse(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("udp: truncated header")
	}
	return Header{
		SrcPort:  binary.BigEndian.Uint16(b),
		DstPort:  binary.BigEndian.Uint16(b[2:]),
		Length:   binary.BigEndian.Uint16(b[4:]),
		Checksum: binary.BigEndian.Uint16(b[6:]),
	}, nil
}

// Options selects the receive discipline.
type Options struct {
	// Checksum enables end-to-end Internet checksums (compute on send,
	// verify on receive).
	Checksum bool
	// InPlace delivers payloads in the receive buffer ("an application
	// can be informed where its data has landed, and may use the data
	// directly out of that buffer"); otherwise payloads are copied into
	// the application's buffer through a read/write-style interface.
	InPlace bool
}

// Costs are the per-operation protocol-processing charges, calibrated
// against Table II (see DESIGN.md).
type Costs struct {
	Build      sim.Time // allocate send buffer, initialize IP and UDP fields
	Parse      sim.Time // header parse + port demux + length validation
	CksumFixed sim.Time // fixed checksum-path setup (pseudo-header etc.)
}

// DefaultCosts is the calibrated cost set.
func DefaultCosts() Costs { return Costs{Build: 380, Parse: 240, CksumFixed: 190} }

// Socket is a bound UDP endpoint.
type Socket struct {
	St        *ip.Stack
	LocalPort uint16
	Opts      Options
	Costs     Costs

	rxApp aegis.Segment // application buffer for copying delivery
	txApp aegis.Segment // staging for SendBytes

	// Statistics.
	BadChecksum, BadPort, Delivered uint64
}

// MaxPayload bounds a datagram this library will send.
const MaxPayload = 56 * 1024

// NewSocket binds local port lp over stack st.
func NewSocket(st *ip.Stack, lp uint16, opts Options) *Socket {
	s := &Socket{St: st, LocalPort: lp, Opts: opts, Costs: DefaultCosts()}
	owner := st.Ep.Owner()
	s.rxApp = owner.AS.MustAlloc(MaxPayload, fmt.Sprintf("udp-%d-rx", lp))
	s.txApp = owner.AS.MustAlloc(MaxPayload, fmt.Sprintf("udp-%d-tx", lp))
	return s
}

// TxAddr exposes the staging buffer so applications can place data
// directly (in-place sends).
func (s *Socket) TxAddr() uint32 { return s.txApp.Base }

// SendTo transmits n bytes at addr (in the owner's address space) to
// dst:port. The checksum traversal, when enabled, is charged against the
// data's real cache state.
func (s *Socket) SendTo(dst ip.Addr, dstPort uint16, addr uint32, n int) error {
	if n > MaxPayload {
		return fmt.Errorf("udp: payload %d exceeds max %d", n, MaxPayload)
	}
	p := s.St.Ep.Owner()
	k := s.St.Ep.Kernel()
	p.Compute(s.Costs.Build)

	data, err := p.AS.Bytes(addr, n)
	if err != nil {
		return err
	}
	h := Header{SrcPort: s.LocalPort, DstPort: dstPort, Length: uint16(HeaderLen + n)}
	if s.Opts.Checksum {
		p.Compute(s.Costs.CksumFixed)
		acc := ip.PseudoCksum(s.St.Local, dst, ip.ProtoUDP, HeaderLen+n)
		hdr := h.Marshal(nil)
		acc = link.CksumData(acc, hdr)
		acc += link.CksumRange(p, k, addr, n) // charged traversal
		ck := ^link.FoldCksum(acc)
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted as all ones
		}
		h.Checksum = ck
	}
	buf := h.Marshal(nil)
	buf = append(buf, data...)
	return s.St.Send(ip.ProtoUDP, dst, buf)
}

// SendBytes stages data into the socket's transmit buffer and sends it.
func (s *Socket) SendBytes(dst ip.Addr, dstPort uint16, data []byte) error {
	p := s.St.Ep.Owner()
	buf, err := p.AS.Bytes(s.txApp.Base, len(data))
	if err != nil {
		return err
	}
	copy(buf, data)
	return s.SendTo(dst, dstPort, s.txApp.Base, len(data))
}

// Msg is a received datagram.
type Msg struct {
	From     ip.Addr
	FromPort uint16
	Addr     uint32 // where the payload lives (app buffer or receive buffer)
	N        int

	dgram ip.Dgram
	held  bool // in-place: underlying buffer still held
}

// Bytes returns the payload view.
func (m *Msg) Bytes(k *aegis.Kernel) []byte { return k.Bytes(m.Addr, m.N) }

// Recv returns the next datagram for this socket's port. Datagrams failing
// checksum or port match are dropped and the wait continues.
func (s *Socket) Recv(polling bool) (Msg, error) {
	for {
		d, err := s.St.Recv(polling)
		if err != nil {
			return Msg{}, err
		}
		if m, ok := s.input(d); ok {
			return m, nil
		}
	}
}

// RecvUntil is Recv with an absolute virtual-time deadline (0 = none);
// ok is false on timeout.
func (s *Socket) RecvUntil(polling bool, deadline sim.Time) (Msg, bool, error) {
	for {
		d, ok, err := s.St.RecvUntil(polling, deadline)
		if err != nil || !ok {
			return Msg{}, false, err
		}
		if d.Doorbell {
			continue
		}
		if m, delivered := s.input(d); delivered {
			return m, true, nil
		}
	}
}

// TryRecv is Recv without blocking.
func (s *Socket) TryRecv() (Msg, bool, error) {
	for {
		d, ok, err := s.St.TryRecv()
		if err != nil {
			return Msg{}, false, err
		}
		if !ok {
			return Msg{}, false, nil
		}
		if m, ok := s.input(d); ok {
			return m, true, nil
		}
	}
}

// input processes one IP datagram; ok=false means it was consumed/dropped.
func (s *Socket) input(d ip.Dgram) (Msg, bool) {
	p := s.St.Ep.Owner()
	k := s.St.Ep.Kernel()
	p.Compute(s.Costs.Parse)

	if d.Hdr.Proto != ip.ProtoUDP || d.PayloadLen() < HeaderLen {
		s.St.Release(d)
		return Msg{}, false
	}
	raw := make([]byte, HeaderLen)
	d.Frame.Bytes(raw, d.Off, HeaderLen)
	h, err := Parse(raw)
	if err != nil || h.DstPort != s.LocalPort || int(h.Length) > d.PayloadLen() {
		s.BadPort++
		s.St.Release(d)
		return Msg{}, false
	}
	n := int(h.Length) - HeaderLen

	var payloadAcc uint32
	haveAcc := false
	var m Msg
	if s.Opts.InPlace {
		// Use the data wherever it landed.
		m = Msg{From: d.Hdr.Src, FromPort: h.SrcPort, N: n, dgram: d, held: true}
		if d.Frame.Striped {
			// Striped layouts cannot be used in place; charge the copy out.
			payloadAcc = link.CopyFromFrame(p, d.Frame, d.Off+HeaderLen, s.rxApp.Base, n, false)
			haveAcc = false
			m.Addr = s.rxApp.Base
		} else {
			m.Addr = d.Frame.Addr() + uint32(d.Off+HeaderLen)
		}
	} else {
		// Copy into the application's data structures.
		link.CopyFromFrame(p, d.Frame, d.Off+HeaderLen, s.rxApp.Base, n, false)
		m = Msg{From: d.Hdr.Src, FromPort: h.SrcPort, Addr: s.rxApp.Base, N: n, dgram: d, held: true}
	}

	if s.Opts.Checksum && h.Checksum != 0 {
		p.Compute(s.Costs.CksumFixed)
		// Separate checksum pass (the library does not integrate; the
		// data is in cache if it was just copied).
		if !haveAcc {
			payloadAcc = link.CksumRange(p, k, m.Addr, n)
		}
		acc := ip.PseudoCksum(d.Hdr.Src, d.Hdr.Dst, ip.ProtoUDP, int(h.Length))
		hb := Header{SrcPort: h.SrcPort, DstPort: h.DstPort, Length: h.Length}.headerAccum()
		acc += hb + uint32(h.Checksum) + payloadAcc
		if link.FoldCksum(acc) != 0xffff {
			s.BadChecksum++
			s.St.Release(d)
			return Msg{}, false
		}
	}
	s.Delivered++
	if !s.Opts.InPlace || d.Frame.Striped {
		// The copy is done; the receive buffer can go back immediately.
		s.St.Release(d)
		m.held = false
	}
	return m, true
}

// headerAccum folds the header (with zero checksum field) into a sum.
func (h Header) headerAccum() uint32 {
	return uint32(h.SrcPort) + uint32(h.DstPort) + uint32(h.Length)
}

// Release returns an in-place message's receive buffer.
func (s *Socket) Release(m Msg) {
	if m.held {
		s.St.Release(m.dgram)
	}
}
