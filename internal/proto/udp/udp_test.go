package udp

import (
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/link"
	"ashs/internal/sim"
)

// world is a two-host AN2 testbed with IP stacks.
type world struct {
	eng    *sim.Engine
	k1, k2 *aegis.Kernel
	a1, a2 *aegis.AN2If
	ip1    ip.Addr
	ip2    ip.Addr
}

func newWorld() *world {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("h1", eng, prof)
	k2 := aegis.NewKernel("h2", eng, prof)
	w := &world{eng: eng, k1: k1, k2: k2,
		a1: aegis.NewAN2(k1, sw), a2: aegis.NewAN2(k2, sw)}
	w.ip1 = ip.HostAddr(w.a1.Addr())
	w.ip2 = ip.HostAddr(w.a2.Addr())
	return w
}

// stackFor builds an IP stack over a VC for process p.
func (w *world) stackFor(p *aegis.Process, iface *aegis.AN2If, vc int, local ip.Addr) *ip.Stack {
	ep, err := link.BindAN2(iface, p, vc, 16, iface.MaxFrame())
	if err != nil {
		panic(err)
	}
	res := ip.StaticResolver{
		w.ip1: {Port: w.a1.Addr(), VC: vc},
		w.ip2: {Port: w.a2.Addr(), VC: vc},
	}
	return ip.NewStack(ep, local, res)
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{SrcPort: 1234, DstPort: 53, Length: 100, Checksum: 0xbeef}
	b := h.Marshal(nil)
	if len(b) != HeaderLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, err := Parse(b)
	if err != nil || got != h {
		t.Fatalf("Parse = %+v, %v", got, err)
	}
	if _, err := Parse(b[:6]); err == nil {
		t.Fatal("short parse accepted")
	}
}

// runPingPong exercises one UDP round trip with the given options and
// payload, returning the payload the client got back.
func runPingPong(t *testing.T, opts Options, payload []byte) []byte {
	t.Helper()
	w := newWorld()
	var got []byte

	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 5, w.ip2)
		sock := NewSocket(st, 53, opts)
		m, err := sock.Recv(true)
		if err != nil {
			t.Error(err)
			return
		}
		data := append([]byte(nil), m.Bytes(w.k2)...)
		sock.Release(m)
		if err := sock.SendBytes(m.From, m.FromPort, data); err != nil {
			t.Error(err)
		}
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 5, w.ip1)
		sock := NewSocket(st, 1234, opts)
		if err := sock.SendBytes(w.ip2, 53, payload); err != nil {
			t.Error(err)
			return
		}
		m, err := sock.Recv(true)
		if err != nil {
			t.Error(err)
			return
		}
		got = append([]byte(nil), m.Bytes(w.k1)...)
		sock.Release(m)
	})
	w.eng.Run()
	return got
}

func variants() []Options {
	return []Options{
		{},
		{Checksum: true},
		{InPlace: true},
		{InPlace: true, Checksum: true},
	}
}

func TestPingPongAllVariants(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	for _, opts := range variants() {
		got := runPingPong(t, opts, payload)
		if len(got) != len(payload) {
			t.Fatalf("opts %+v: got %d bytes, want %d", opts, len(got), len(payload))
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("opts %+v: payload mismatch at %d", opts, i)
			}
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	w := newWorld()
	// Corrupt one payload byte in flight.
	flipped := false
	swInject := func(pkt *netdev.PacketBuf) bool {
		if !flipped && pkt.Len() > 30 {
			data := pkt.Bytes()
			data[len(data)-1] ^= 0xff
			pkt.FCS = netdev.FrameCheck(data) // sneak past the board CRC
			flipped = true
		}
		return true
	}
	w.a1.Sw.Inject = swInject

	var sock2 *Socket
	received := 0
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 5, w.ip2)
		sock2 = NewSocket(st, 53, Options{Checksum: true})
		m, err := sock2.Recv(true)
		if err == nil {
			received++
			sock2.Release(m)
		}
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 5, w.ip1)
		sock := NewSocket(st, 99, Options{Checksum: true})
		_ = sock.SendBytes(w.ip2, 53, []byte("corrupt me corrupt me corrupt me"))
		p.Compute(40 * 1000000) // give time, then send a clean one
		_ = sock.SendBytes(w.ip2, 53, []byte("clean message arriving after!!!!"))
	})
	w.eng.Run()
	if sock2.BadChecksum != 1 {
		t.Fatalf("BadChecksum = %d, want 1", sock2.BadChecksum)
	}
	if received != 1 {
		t.Fatalf("received = %d, want 1 (only the clean datagram)", received)
	}
}

func TestWrongPortIgnored(t *testing.T) {
	w := newWorld()
	var sock2 *Socket
	done := false
	w.k2.Spawn("server", func(p *aegis.Process) {
		st := w.stackFor(p, w.a2, 5, w.ip2)
		sock2 = NewSocket(st, 53, Options{})
		m, _ := sock2.Recv(true)
		sock2.Release(m)
		done = true
	})
	w.k1.Spawn("client", func(p *aegis.Process) {
		st := w.stackFor(p, w.a1, 5, w.ip1)
		sock := NewSocket(st, 99, Options{})
		_ = sock.SendBytes(w.ip2, 54, []byte("wrong port"))
		_ = sock.SendBytes(w.ip2, 53, []byte("right port"))
	})
	w.eng.Run()
	if !done {
		t.Fatal("right-port datagram not delivered")
	}
	if sock2.BadPort != 1 {
		t.Fatalf("BadPort = %d, want 1", sock2.BadPort)
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	// A 20-KB datagram over the AN2's 16-KB frames must fragment and
	// reassemble transparently.
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i ^ (i >> 8))
	}
	got := runPingPong(t, Options{Checksum: true}, payload)
	if len(got) != len(payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestTable2UDPLatencyShape(t *testing.T) {
	// Table II: UDP/AN2 4-byte ping-pong latency ~225 us without checksum,
	// ~244 us with; in-place and copy are equal at this size.
	measure := func(opts Options) float64 {
		w := newWorld()
		const iters = 8
		w.k2.Spawn("server", func(p *aegis.Process) {
			st := w.stackFor(p, w.a2, 5, w.ip2)
			sock := NewSocket(st, 53, opts)
			for i := 0; i < iters; i++ {
				m, err := sock.Recv(true)
				if err != nil {
					t.Error(err)
					return
				}
				data := append([]byte(nil), m.Bytes(w.k2)...)
				sock.Release(m)
				_ = sock.SendBytes(m.From, m.FromPort, data)
			}
		})
		var total sim.Time
		w.k1.Spawn("client", func(p *aegis.Process) {
			st := w.stackFor(p, w.a1, 5, w.ip1)
			sock := NewSocket(st, 1234, opts)
			start := p.K.Now()
			for i := 0; i < iters; i++ {
				_ = sock.SendBytes(w.ip2, 53, []byte{1, 2, 3, 4})
				m, err := sock.Recv(true)
				if err != nil {
					t.Error(err)
					return
				}
				sock.Release(m)
			}
			total = p.K.Now() - start
		})
		w.eng.Run()
		return w.k1.Prof.Us(total) / iters
	}

	noCk := measure(Options{InPlace: true})
	withCk := measure(Options{InPlace: true, Checksum: true})
	if noCk < 210 || noCk > 245 {
		t.Fatalf("UDP no-checksum latency = %.1f us, want ~225 (Table II)", noCk)
	}
	if withCk < noCk+8 || withCk > noCk+35 {
		t.Fatalf("checksum adds %.1f us, want ~19 (Table II: 225->244)", withCk-noCk)
	}
}
