package netdev

import "fmt"

// PacketBuf is a frame in flight, leased from a switch's BufPool. The
// lease discipline is explicit, exokernel-style resource ownership:
//
//   - Lease hands out a buffer with one reference, owned by the caller.
//   - Transmit and Redeliver consume the caller's reference; after either
//     call the caller must not touch the buffer again.
//   - A receiver that wants the frame past the rx callback's return calls
//     Retain (the switch releases its own reference when the callback
//     returns).
//   - Release returns the reference; the last Release recycles the buffer
//     into the pool. Releasing a buffer that is already free panics.
//
// VC carries the ATM virtual-circuit identifier on AN2 links (ignored on
// Ethernet).
type PacketBuf struct {
	Src, Dst int // port addresses
	VC       int

	// FCS is the frame check sequence computed by the transmitting board
	// over the payload. Transmit fills it in; receiving boards verify it
	// and discard frames whose payload was damaged in flight. An injector
	// that mutates the payload without refreshing FCS models wire
	// corruption the board catches; refreshing it models corruption that
	// sneaks past the CRC and must be caught by the end-to-end checksums.
	FCS uint32

	pool *BufPool
	refs int32
	buf  []byte // backing store, cap fixed at the pool's frame size
	n    int
	next *PacketBuf // pool freelist
}

// Bytes is the frame payload. The slice aliases pooled storage: it is
// valid only while the caller holds a reference.
func (b *PacketBuf) Bytes() []byte { return b.buf[:b.n] }

// Len reports the payload length.
func (b *PacketBuf) Len() int { return b.n }

// SetData copies d into the buffer, replacing the payload. Payloads
// beyond the pool's frame size grow this buffer's backing store (the
// switch still rejects them at Transmit; growing keeps that error path
// reachable instead of turning it into a pool panic).
func (b *PacketBuf) SetData(d []byte) {
	copy(b.Grow(len(d)), d)
}

// Grow sets the payload length to n — enlarging the backing store on the
// rare oversize request — and returns the writable payload slice, so
// protocol layers can marshal frames in place instead of building a
// scratch slice and copying it in.
func (b *PacketBuf) Grow(n int) []byte {
	if n > cap(b.buf) {
		b.buf = make([]byte, n)
	}
	b.n = n
	return b.buf[:n]
}

// Truncate shortens the payload to n bytes.
func (b *PacketBuf) Truncate(n int) {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("netdev: truncate %d outside payload of %d", n, b.n))
	}
	b.n = n
}

// Retain adds a reference: the holder promises a matching Release.
func (b *PacketBuf) Retain() {
	if b.refs <= 0 {
		panic("netdev: Retain of a released PacketBuf")
	}
	b.refs++
}

// Release drops a reference; the last one recycles the buffer into its
// pool. Releasing an already-free buffer panics — a double release means
// two owners both believed the frame was theirs, which the lease API
// exists to make impossible.
func (b *PacketBuf) Release() {
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.refs < 0 {
		panic("netdev: double Release of PacketBuf")
	}
	p := b.pool
	p.inUse--
	p.Releases++
	b.n = 0
	b.Src, b.Dst, b.VC, b.FCS = 0, 0, 0, 0
	b.next = p.free
	p.free = b
}

// Refs reports the current reference count (diagnostics and tests).
func (b *PacketBuf) Refs() int { return int(b.refs) }

// BufPool recycles PacketBufs of one frame size. Pools are per-switch and
// single-threaded like everything else under one engine; the accounting
// fields make leaks observable — a drained simulation must end with
// InUse() == 0.
type BufPool struct {
	frameCap int
	free     *PacketBuf
	inUse    int

	// Leases and Releases count lifecycle events since the pool was
	// created; Grown counts buffers ever minted. In steady state Grown
	// stops moving: every lease is served from the freelist.
	Leases, Releases uint64
	Grown            uint64
}

// NewBufPool creates a pool whose buffers hold frames up to frameCap bytes.
func NewBufPool(frameCap int) *BufPool {
	return &BufPool{frameCap: frameCap}
}

// Lease takes a zero-length buffer with one reference from the pool.
func (p *BufPool) Lease() *PacketBuf {
	b := p.free
	if b != nil {
		p.free = b.next
		b.next = nil
	} else {
		b = &PacketBuf{pool: p, buf: make([]byte, p.frameCap)}
		p.Grown++
	}
	b.refs = 1
	p.inUse++
	p.Leases++
	return b
}

// InUse reports the number of leased buffers not yet fully released.
func (p *BufPool) InUse() int { return p.inUse }

// FrameCap reports the largest payload a leased buffer can hold.
func (p *BufPool) FrameCap() int { return p.frameCap }
