// Package netdev models the two network devices of the paper's testbed
// (Section IV-A): a 155-Mb/s AN2 ATM network (Digital's AN2 switch) and a
// 10-Mb/s Ethernet.
//
// The model is a link/switch with three parameters per network: payload
// bandwidth, a fixed per-message hardware latency (board + switch + DMA),
// and the frame overhead. Calibration anchors come straight from the paper:
// the AN2's hardware round-trip overhead is ~96 us and its maximum
// achievable per-link payload bandwidth ~16.8 MB/s; the Ethernet's raw
// round trip is backed out of Table I.
//
// Frames travel as leased PacketBufs drawn from the switch's BufPool (see
// buf.go for the ownership rules); the steady-state wire path allocates
// nothing.
//
// Device idiosyncrasies that the paper's DILP back-ends must cope with —
// the AN2's DMA-anywhere receive with per-VC notification rings, the
// Ethernet's bounded receive pools and its striping DMA engine (N bytes
// scattered into 2N as alternating 16-byte data/pad lines) — are modeled in
// the kernel drivers (package aegis); this package is the wire.
package netdev

import (
	"fmt"
	"hash/crc32"
	"strconv"

	"ashs/internal/mach"
	"ashs/internal/obs"
	"ashs/internal/sim"
)

// FrameCheck computes the frame check sequence the boards use.
func FrameCheck(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// LinkConfig describes a network technology.
type LinkConfig struct {
	Name string
	// BytesPerUs is the payload serialization rate.
	BytesPerUs float64
	// FixedOneWayUs is per-message fixed hardware latency in microseconds
	// (board processing, switch transit, DMA setup at both ends). It is
	// pipelined: it delays delivery but does not pace back-to-back sends.
	FixedOneWayUs float64
	// PerPacketUs is per-packet transmit-path occupancy beyond
	// serialization (segmentation-and-reassembly, descriptor handling).
	// It paces trains: effective bandwidth at size n is
	// n / (n/BytesPerUs + PerPacketUs).
	PerPacketUs float64
	// MaxFrame is the largest payload one Transmit may carry.
	MaxFrame int
	// MinWireBytes is the minimum on-wire size (Ethernet's 64-byte frame).
	MinWireBytes int
	// FrameOverhead is header/trailer bytes added on the wire.
	FrameOverhead int
}

// AN2Config is the calibrated AN2 model: 155 Mb/s line rate with ~16.8 MB/s
// achievable payload bandwidth and 48 us fixed one-way hardware cost
// (96 us round trip, Section IV-C).
func AN2Config() LinkConfig {
	return LinkConfig{
		Name:          "AN2",
		BytesPerUs:    16.8,
		FixedOneWayUs: 37.6,
		PerPacketUs:   10.4, // calibrated: 16.11 MB/s at 4-KB packets (Fig. 3)
		MaxFrame:      16 * 1024,
		FrameOverhead: 8, // cell header amortization, modeled coarsely
	}
}

// EthernetConfig is the calibrated 10-Mb/s Ethernet model. The fixed cost
// is backed out of Table I's 309-us user-level round trip less the same
// software overhead measured on AN2.
func EthernetConfig() LinkConfig {
	return LinkConfig{
		Name:          "Ethernet",
		BytesPerUs:    1.25,
		FixedOneWayUs: 60,
		PerPacketUs:   1, // inter-frame gap + descriptor handling
		MaxFrame:      1514,
		MinWireBytes:  64,
		FrameOverhead: 18, // 14 header + 4 FCS
	}
}

// Switch is a link shared by a set of ports. Sends serialize per sender
// (each port owns its transmit path) and arrive after serialization plus
// the fixed hardware latency. There is no loss unless an injector drops.
type Switch struct {
	Eng  *sim.Engine
	Prof *mach.Profile
	Cfg  LinkConfig

	// Pool recycles the PacketBufs frames travel in. Every buffer leased
	// from it must come back: a drained simulation ends with
	// Pool.InUse() == 0 (the buffer-lease leak invariant).
	Pool *BufPool

	ports []*Port

	// Fault injection for tests: called per packet before delivery.
	// Return false to drop. May mutate the packet in place (corruption
	// tests); the injector does not own the reference.
	Inject func(p *PacketBuf) bool

	// Obs is the wire's observability plane. nil (the default) disables
	// tracing and metrics at zero cost; see internal/obs.
	Obs *obs.Plane

	// Statistics. Redelivered counts frames an injector re-introduced
	// (duplicates, held-back reorders) via Redeliver.
	Sent, Delivered, Dropped, Redelivered uint64

	// deliverFn is the one bound delivery callback every in-flight frame
	// is scheduled through (ScheduleArgAt), so transmit builds no
	// per-packet closure.
	deliverFn func(any)
}

// NewSwitch builds a switch over engine eng with profile prof.
func NewSwitch(eng *sim.Engine, prof *mach.Profile, cfg LinkConfig) *Switch {
	s := &Switch{Eng: eng, Prof: prof, Cfg: cfg, Pool: NewBufPool(cfg.MaxFrame)}
	s.deliverFn = s.deliverEvent
	return s
}

// Lease takes an empty frame buffer from the switch's pool. The caller
// owns it until it hands it to Transmit/Redeliver or Releases it.
func (s *Switch) Lease() *PacketBuf { return s.Pool.Lease() }

// LeaseData leases a buffer holding a copy of data.
func (s *Switch) LeaseData(data []byte) *PacketBuf {
	b := s.Pool.Lease()
	b.SetData(data)
	return b
}

// Port is one NIC attachment.
type Port struct {
	sw          *Switch
	addr        int
	rx          func(pkt *PacketBuf)
	txBusyUntil sim.Time
}

// NewPort attaches a new NIC to the switch and returns it.
func (s *Switch) NewPort() *Port {
	p := &Port{sw: s, addr: len(s.ports)}
	s.ports = append(s.ports, p)
	return p
}

// Addr reports this port's address on the switch.
func (p *Port) Addr() int { return p.addr }

// SetReceiver installs the function invoked (in event context) when a
// packet's DMA into this port completes. The receiver borrows the buffer
// for the duration of the call; it must Retain it to keep it longer.
func (p *Port) SetReceiver(fn func(pkt *PacketBuf)) { p.rx = fn }

// wireBytes is the on-the-wire size of a payload.
func (s *Switch) wireBytes(n int) int {
	w := n + s.Cfg.FrameOverhead
	if w < s.Cfg.MinWireBytes {
		w = s.Cfg.MinWireBytes
	}
	return w
}

// SerializeCycles is the transmit-path occupancy for a payload of n bytes:
// serialization plus the fixed per-packet overhead.
func (s *Switch) SerializeCycles(n int) sim.Time {
	us := float64(s.wireBytes(n))/s.Cfg.BytesPerUs + s.Cfg.PerPacketUs
	return s.Prof.Cycles(us)
}

// FixedCycles is the fixed one-way hardware latency.
func (s *Switch) FixedCycles() sim.Time {
	return s.Prof.Cycles(s.Cfg.FixedOneWayUs)
}

// Broadcast is the destination address that delivers to every port except
// the sender (shared-medium Ethernet semantics).
const Broadcast = -1

// Ports returns the addresses of all attached ports.
func (s *Switch) Ports() []int {
	out := make([]int, len(s.ports))
	for i := range s.ports {
		out[i] = i
	}
	return out
}

// Transmit queues pkt for transmission from this port, consuming the
// caller's reference — on success and on error alike, the caller must
// not touch pkt afterwards. Delivery happens FixedOneWay after
// serialization completes; back-to-back sends from one port pipeline
// behind each other, so bulk trains run at link bandwidth.
// Dst == Broadcast delivers to every other port.
func (p *Port) Transmit(pkt *PacketBuf) error {
	s := p.sw
	if pkt.Len() > s.Cfg.MaxFrame {
		n := pkt.Len()
		pkt.Release()
		return fmt.Errorf("%s: frame of %d bytes exceeds max %d", s.Cfg.Name, n, s.Cfg.MaxFrame)
	}
	if pkt.Dst != Broadcast && (pkt.Dst < 0 || pkt.Dst >= len(s.ports)) {
		dst := pkt.Dst
		pkt.Release()
		return fmt.Errorf("%s: no port %d", s.Cfg.Name, dst)
	}
	pkt.Src = p.addr
	pkt.FCS = FrameCheck(pkt.Bytes())
	s.Sent++

	start := s.Eng.Now()
	if p.txBusyUntil > start {
		start = p.txBusyUntil
	}
	doneSerializing := start + s.SerializeCycles(pkt.Len())
	p.txBusyUntil = doneSerializing
	deliverAt := doneSerializing + s.FixedCycles()

	if o := s.Obs; o.Enabled() {
		lane := "port " + strconv.Itoa(p.addr)
		n := strconv.Itoa(pkt.Len())
		o.Span(s.Cfg.Name, lane, "wire", "serialize n="+n, start,
			doneSerializing-start)
		o.Span(s.Cfg.Name, lane, "wire", "flight n="+n, doneSerializing,
			deliverAt-doneSerializing)
		o.Inc("net/frames_sent")
		o.Observe("net/serialize_cycles", doneSerializing-start)
	}

	s.Eng.ScheduleArgAt(deliverAt, s.deliverFn, pkt)
	return nil
}

// deliverEvent is the wire's arrival callback: it runs the injector,
// fans the frame out, and returns the in-flight reference to the pool.
func (s *Switch) deliverEvent(a any) {
	pkt := a.(*PacketBuf)
	if s.Inject != nil && !s.Inject(pkt) {
		s.Dropped++
		if o := s.Obs; o.Enabled() {
			o.Instant(s.Cfg.Name, "port "+strconv.Itoa(pkt.Src), "fault",
				"injected drop", s.Eng.Now())
			o.Inc("net/frames_dropped_injected")
		}
		pkt.Release()
		return
	}
	s.deliver(pkt)
	pkt.Release()
}

// deliver fans a packet out to its destination port(s) right now.
// Unicast is O(1) in the port count: a million-endpoint switch must not
// walk a million ports per packet. Receivers borrow the buffer for the
// callback; the caller still owns its reference afterwards.
func (s *Switch) deliver(pkt *PacketBuf) {
	s.Delivered++
	s.Obs.Inc("net/frames_delivered")
	if pkt.Dst != Broadcast {
		if pkt.Dst >= 0 && pkt.Dst < len(s.ports) {
			if dst := s.ports[pkt.Dst]; dst.rx != nil {
				dst.rx(pkt)
			}
		}
		return
	}
	for i, dst := range s.ports {
		if i == pkt.Src {
			continue
		}
		if dst.rx != nil {
			dst.rx(pkt)
		}
	}
}

// Redeliver hands pkt to its destination port(s) immediately, bypassing
// the injector, consuming the caller's reference. Fault injectors use it
// to re-introduce frames they held back (reordering, delay jitter) or
// cloned (duplication) without the injector seeing its own output again.
func (s *Switch) Redeliver(pkt *PacketBuf) {
	s.Redelivered++
	if o := s.Obs; o.Enabled() {
		o.Instant(s.Cfg.Name, "port "+strconv.Itoa(pkt.Src), "fault",
			"redeliver", s.Eng.Now())
		o.Inc("net/frames_redelivered")
	}
	s.deliver(pkt)
	pkt.Release()
}
