package netdev

import (
	"testing"

	"ashs/internal/mach"
	"ashs/internal/sim"
)

func newAN2(t *testing.T) (*sim.Engine, *Switch) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewSwitch(eng, mach.DS5000_240(), AN2Config())
}

// lease builds an owned frame ready for Transmit.
func lease(s *Switch, dst, vc int, data []byte) *PacketBuf {
	b := s.LeaseData(data)
	b.Dst, b.VC = dst, vc
	return b
}

func TestAN2HardwareRoundTrip(t *testing.T) {
	// The calibration anchor: a 4-byte hardware ping-pong costs ~96 us.
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()

	var done sim.Time
	b.SetReceiver(func(pkt *PacketBuf) {
		if err := b.Transmit(lease(sw, a.Addr(), 0, pkt.Bytes())); err != nil {
			t.Error(err)
		}
	})
	a.SetReceiver(func(pkt *PacketBuf) { done = eng.Now() })
	if err := a.Transmit(lease(sw, b.Addr(), 0, make([]byte, 4))); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	us := sw.Prof.Us(done)
	if us < 90 || us > 102 {
		t.Fatalf("AN2 hw round trip = %.1f us, want ~96 (paper Section IV-C)", us)
	}
	if sw.Pool.InUse() != 0 {
		t.Fatalf("pool leak: %d buffers in use after drain", sw.Pool.InUse())
	}
}

func TestAN2TrainApproachesLinkBandwidth(t *testing.T) {
	// Pipelining: a long train of 4-KB packets should arrive at close to
	// the 16.8 MB/s payload bandwidth despite the 48 us fixed latency.
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()
	const pkts, size = 64, 4096
	var lastArrival sim.Time
	got := 0
	b.SetReceiver(func(pkt *PacketBuf) { got++; lastArrival = eng.Now() })
	var firstDeparture sim.Time = -1
	for i := 0; i < pkts; i++ {
		if firstDeparture < 0 {
			firstDeparture = eng.Now()
		}
		if err := a.Transmit(lease(sw, b.Addr(), 0, make([]byte, size))); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got != pkts {
		t.Fatalf("delivered %d/%d", got, pkts)
	}
	mbps := sw.Prof.MBps(pkts*size, lastArrival-firstDeparture)
	if mbps < 14.5 || mbps > 16.9 {
		t.Fatalf("train throughput = %.2f MB/s, want near 16.8 (Fig. 3 ceiling)", mbps)
	}
}

func TestEthernetSlowerAndMinFrame(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, mach.DS5000_240(), EthernetConfig())
	a, b := sw.NewPort(), sw.NewPort()
	var at sim.Time
	b.SetReceiver(func(pkt *PacketBuf) { at = eng.Now() })
	if err := a.Transmit(lease(sw, b.Addr(), 0, make([]byte, 4))); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	us := sw.Prof.Us(at)
	// 64-byte min frame at 1.25 B/us = 51.2 us + 1 per-packet + 60 fixed
	// = ~112 us one way.
	if us < 105 || us > 120 {
		t.Fatalf("Ethernet one-way 4B = %.1f us, want ~112", us)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, mach.DS5000_240(), EthernetConfig())
	a, b := sw.NewPort(), sw.NewPort()
	if err := a.Transmit(lease(sw, b.Addr(), 0, make([]byte, 4000))); err == nil {
		t.Fatal("oversize Ethernet frame accepted")
	}
	if sw.Pool.InUse() != 0 {
		t.Fatal("Transmit error path leaked the lease")
	}
	_ = eng
}

func TestBadDestinationRejected(t *testing.T) {
	eng, sw := newAN2(t)
	a := sw.NewPort()
	_ = eng
	if err := a.Transmit(lease(sw, 7, 0, []byte{1})); err == nil {
		t.Fatal("transmit to nonexistent port accepted")
	}
	if sw.Pool.InUse() != 0 {
		t.Fatal("Transmit error path leaked the lease")
	}
}

func TestInjectDrop(t *testing.T) {
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()
	drops := 0
	sw.Inject = func(p *PacketBuf) bool {
		drops++
		return drops > 1 // drop the first packet only
	}
	var got []byte
	b.SetReceiver(func(pkt *PacketBuf) { got = append(got, pkt.Bytes()[0]) })
	_ = a.Transmit(lease(sw, b.Addr(), 0, []byte{1}))
	_ = a.Transmit(lease(sw, b.Addr(), 0, []byte{2}))
	eng.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("delivered %v, want only packet 2", got)
	}
	if sw.Dropped != 1 || sw.Delivered != 1 {
		t.Fatalf("stats: dropped=%d delivered=%d", sw.Dropped, sw.Delivered)
	}
	if sw.Pool.InUse() != 0 {
		t.Fatalf("pool leak after injected drop: %d in use", sw.Pool.InUse())
	}
}

func TestVCCarried(t *testing.T) {
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()
	var vc int
	b.SetReceiver(func(pkt *PacketBuf) { vc = pkt.VC })
	_ = a.Transmit(lease(sw, b.Addr(), 42, []byte{0}))
	eng.Run()
	if vc != 42 {
		t.Fatalf("VC = %d, want 42", vc)
	}
}

func TestSrcFilledIn(t *testing.T) {
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()
	src := -1
	b.SetReceiver(func(pkt *PacketBuf) { src = pkt.Src })
	_ = a.Transmit(lease(sw, b.Addr(), 0, []byte{0}))
	eng.Run()
	if src != a.Addr() {
		t.Fatalf("Src = %d, want %d", src, a.Addr())
	}
}

func TestOrderingPreserved(t *testing.T) {
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()
	var order []byte
	b.SetReceiver(func(pkt *PacketBuf) { order = append(order, pkt.Bytes()[0]) })
	for i := 0; i < 10; i++ {
		_ = a.Transmit(lease(sw, b.Addr(), 0, []byte{byte(i)}))
	}
	eng.Run()
	for i := range order {
		if order[i] != byte(i) {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestSteadyStateWireZeroAlloc(t *testing.T) {
	// The tentpole claim at the wire layer: a warmed-up ping-pong loop
	// allocates nothing per round trip.
	eng, sw := newAN2(t)
	a, b := sw.NewPort(), sw.NewPort()
	payload := []byte{1, 2, 3, 4}
	b.SetReceiver(func(pkt *PacketBuf) {
		rep := sw.LeaseData(pkt.Bytes())
		rep.Dst = a.Addr()
		_ = b.Transmit(rep)
	})
	rounds := 0
	a.SetReceiver(func(pkt *PacketBuf) {
		rounds++
		req := sw.LeaseData(pkt.Bytes())
		req.Dst = b.Addr()
		_ = a.Transmit(req)
	})
	first := sw.LeaseData(payload)
	first.Dst = b.Addr()
	_ = a.Transmit(first)
	eng.RunFor(sw.Prof.Cycles(10_000)) // warm pools and calendar
	allocs := testing.AllocsPerRun(50, func() {
		eng.RunFor(sw.Prof.Cycles(1000))
	})
	if allocs != 0 {
		t.Fatalf("steady-state wire path allocates %.1f/op, want 0", allocs)
	}
	if rounds < 10 {
		t.Fatalf("ping-pong made no progress: %d rounds", rounds)
	}
}
