package netdev

import (
	"sync"
	"testing"

	"ashs/internal/mach"
	"ashs/internal/sim"
)

func TestBufPoolLeaseReleaseRecycles(t *testing.T) {
	p := NewBufPool(64)
	a := p.Lease()
	if p.InUse() != 1 || a.Refs() != 1 {
		t.Fatalf("after lease: inUse=%d refs=%d", p.InUse(), a.Refs())
	}
	a.SetData([]byte{1, 2, 3})
	a.Src, a.Dst, a.VC, a.FCS = 4, 5, 6, 7
	a.Release()
	if p.InUse() != 0 {
		t.Fatalf("after release: inUse=%d", p.InUse())
	}
	b := p.Lease()
	if b != a {
		t.Fatal("pool did not recycle the released buffer")
	}
	if b.Len() != 0 || b.Src != 0 || b.Dst != 0 || b.VC != 0 || b.FCS != 0 {
		t.Fatalf("recycled buffer not scrubbed: len=%d src=%d dst=%d vc=%d fcs=%d",
			b.Len(), b.Src, b.Dst, b.VC, b.FCS)
	}
	if p.Grown != 1 || p.Leases != 2 || p.Releases != 1 {
		t.Fatalf("accounting: grown=%d leases=%d releases=%d", p.Grown, p.Leases, p.Releases)
	}
}

func TestBufDoubleReleasePanics(t *testing.T) {
	p := NewBufPool(16)
	b := p.Lease()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestBufRetainAfterReleasePanics(t *testing.T) {
	p := NewBufPool(16)
	b := p.Lease()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain of a free buffer did not panic")
		}
	}()
	b.Retain()
}

func TestBufRefcountHandoff(t *testing.T) {
	p := NewBufPool(16)
	b := p.Lease()
	b.Retain() // second owner
	b.Release()
	if p.InUse() != 1 {
		t.Fatal("buffer freed while a reference remained")
	}
	b.Release()
	if p.InUse() != 0 {
		t.Fatalf("inUse=%d after final release", p.InUse())
	}
}

func TestBufGrowOversize(t *testing.T) {
	p := NewBufPool(8)
	b := p.Lease()
	big := make([]byte, 32)
	big[31] = 9
	b.SetData(big)
	if b.Len() != 32 || b.Bytes()[31] != 9 {
		t.Fatalf("oversize SetData: len=%d", b.Len())
	}
	b.Release()
}

// TestReceiverRetainsAcrossDelivery pins the handoff rule: a receiver
// that Retains the frame owns it after the switch's own reference is
// released, and the pool does not recycle it until the receiver lets go.
func TestReceiverRetainsAcrossDelivery(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, mach.DS5000_240(), AN2Config())
	a, b := sw.NewPort(), sw.NewPort()
	var held *PacketBuf
	b.SetReceiver(func(pkt *PacketBuf) {
		pkt.Retain()
		held = pkt
	})
	pkt := sw.LeaseData([]byte{42})
	pkt.Dst = b.Addr()
	if err := a.Transmit(pkt); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if held == nil || sw.Pool.InUse() != 1 {
		t.Fatalf("retained buffer not held: inUse=%d", sw.Pool.InUse())
	}
	if held.Bytes()[0] != 42 {
		t.Fatal("retained payload scrubbed while held")
	}
	// A concurrent lease must not hand out the held buffer.
	other := sw.Lease()
	if other == held {
		t.Fatal("pool recycled a buffer that was still retained")
	}
	other.Release()
	held.Release()
	if sw.Pool.InUse() != 0 {
		t.Fatalf("leak after final release: inUse=%d", sw.Pool.InUse())
	}
}

// TestRefcountHandoffRace runs independent worlds on parallel goroutines,
// each doing retain/release handoffs, so `go test -race` can prove the
// lease discipline never shares a pool across engines.
func TestRefcountHandoffRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := sim.NewEngine()
			sw := NewSwitch(eng, mach.DS5000_240(), AN2Config())
			a, b := sw.NewPort(), sw.NewPort()
			var held []*PacketBuf
			b.SetReceiver(func(pkt *PacketBuf) {
				pkt.Retain()
				held = append(held, pkt)
			})
			for i := 0; i < 100; i++ {
				pkt := sw.LeaseData([]byte{byte(i)})
				pkt.Dst = b.Addr()
				_ = a.Transmit(pkt)
			}
			eng.Run()
			for _, pkt := range held {
				pkt.Release()
			}
			if sw.Pool.InUse() != 0 {
				panic("pool leak in race worker")
			}
		}()
	}
	wg.Wait()
}
