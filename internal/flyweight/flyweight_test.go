package flyweight

import (
	"encoding/binary"
	"strings"
	"testing"

	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/obs"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/nfs"
	"ashs/internal/proto/retry"
	"ashs/internal/proto/tcp"
	"ashs/internal/sim"
	"ashs/internal/workload"
)

// testWorld is a switch plus one hand-rolled server port: the flyweight
// package's contract is to be wire-exact toward *any* correct peer, so
// these tests talk to tiny scripted servers rather than a full aegis
// kernel (the bench package exercises that pairing end to end).
type testWorld struct {
	eng  *sim.Engine
	prof *mach.Profile
	sw   *netdev.Switch
	srv  *netdev.Port
}

func newTestWorld() *testWorld {
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.EthernetConfig())
	return &testWorld{eng: eng, prof: prof, sw: sw, srv: sw.NewPort()}
}

func (w *testWorld) cfg(kind Kind, n int) Config {
	return Config{
		Eng: w.eng, Prof: w.prof, Sw: w.sw,
		Kind: kind, N: n,
		ServerIP: ip.HostAddr(w.srv.Addr()), ServerLink: w.srv.Addr(),
		ServerPort: 7, ClientPort: 1234,
		Payload:   16,
		ReadBytes: 512, FileBytes: 2048, Handle: 9,
		Window: 8192,
		Retry:  retry.Policy{BaseUs: 10_000, Budget: 3},
		Seed:   42,
	}
}

// transmit leases a pooled buffer for data and sends it from the server
// port.
func (w *testWorld) transmit(dst int, data []byte) error {
	pkt := w.sw.LeaseData(data)
	pkt.Dst = dst
	return w.srv.Transmit(pkt)
}

// reply wraps a UDP payload in server→client framing that must satisfy
// the endpoint's dgram validation.
func (w *testWorld) reply(dstLink int, dstIP ip.Addr, payload []byte) {
	eh := ether.Header{Dst: ether.PortMAC(dstLink), Src: ether.PortMAC(w.srv.Addr()),
		Type: ether.TypeIPv4}
	b := eh.Marshal(nil)
	ih := ip.Header{TotalLen: uint16(ip.HeaderLen + 8 + len(payload)),
		TTL: 64, Proto: ip.ProtoUDP, DF: true, Src: ip.HostAddr(w.srv.Addr()), Dst: dstIP}
	b = ih.Marshal(b)
	b = binary.BigEndian.AppendUint16(b, 7)    // src: server port
	b = binary.BigEndian.AppendUint16(b, 1234) // dst: client port
	b = binary.BigEndian.AppendUint16(b, uint16(8+len(payload)))
	b = binary.BigEndian.AppendUint16(b, 0)
	b = append(b, payload...)
	if err := w.transmit(dstLink, b); err != nil {
		panic(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{UDPEcho: "udp-echo", TCPPingPong: "tcp-pp", NFSRead: "nfs-read"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestNewFleetValidation(t *testing.T) {
	w := newTestWorld()
	mustPanic := func(name string, mutate func(*Config)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewFleet did not panic", name)
			}
		}()
		c := w.cfg(UDPEcho, 2)
		mutate(&c)
		NewFleet(c)
	}
	mustPanic("zero fleet", func(c *Config) { c.N = 0 })
	mustPanic("zero budget", func(c *Config) { c.Retry.Budget = 0 })
	mustPanic("tiny payload", func(c *Config) { c.Payload = 4 })
	mustPanic("nfs without sizes", func(c *Config) { c.Kind = NFSRead; c.ReadBytes = 0 })
}

func TestFleetAccessors(t *testing.T) {
	w := newTestWorld()
	plane := obs.New(25)
	c := w.cfg(UDPEcho, 3)
	c.Obs = plane
	f := NewFleet(c)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Addr(0) == f.Addr(1) || f.Link(0) == f.Link(1) {
		t.Fatalf("endpoints share an address: %v %v", f.Addr(0), f.Addr(1))
	}
	if per := f.StaticBytesPerEndpoint(); per <= 0 || per > 1024 {
		t.Fatalf("implausible per-endpoint footprint %d", per)
	}
	tf := NewFleet(w.cfg(TCPPingPong, 1))
	if tf.StaticBytesPerEndpoint() <= f.StaticBytesPerEndpoint() {
		t.Fatalf("TCP endpoint should be larger: %d vs %d",
			tf.StaticBytesPerEndpoint(), f.StaticBytesPerEndpoint())
	}
}

// TestUDPEchoCompletes runs trace + incast waves against an echo server
// and checks exact open-loop accounting.
func TestUDPEchoCompletes(t *testing.T) {
	w := newTestWorld()
	f := NewFleet(w.cfg(UDPEcho, 4))
	w.srv.SetReceiver(func(pkt *netdev.PacketBuf) {
		data := pkt.Bytes()
		if pkt.FCS != netdev.FrameCheck(data) {
			t.Fatal("server saw a damaged frame")
		}
		payload := data[ether.HeaderLen+ip.HeaderLen+8:]
		w.reply(pkt.Src, ip.HostAddr(pkt.Src), append([]byte(nil), payload...))
	})

	tr := workload.Poisson(7, workload.Spec{Clients: 4, Events: 32, MeanGapUs: 200, Size: 16})
	f.Run(tr, 2, 4, 1000, 5000)
	w.eng.Run()

	want := uint64(32 + 2*4)
	if f.Completed() != want || f.Failures != 0 || f.Retries != 0 {
		t.Fatalf("completed=%d (want %d) failures=%d retries=%d",
			f.Completed(), want, f.Failures, f.Retries)
	}
	if f.IncastHist.Count() != 2*4 {
		t.Fatalf("incast ops landed in the wrong histogram: %d", f.IncastHist.Count())
	}
}

// TestUDPEchoRetryThenFail runs against a deaf server: every operation
// must burn its full reply-wait budget and be recorded as a failure.
func TestUDPEchoRetryThenFail(t *testing.T) {
	w := newTestWorld()
	f := NewFleet(w.cfg(UDPEcho, 2)) // Budget: 3 windows
	tr := workload.Poisson(7, workload.Spec{Clients: 2, Events: 6, MeanGapUs: 100, Size: 16})
	f.Run(tr, 0, 0, 0, 0)
	w.eng.Run()
	if f.Completed() != 0 || f.Failures != 6 || f.Retries != 2*6 {
		t.Fatalf("completed=%d failures=%d retries=%d (want 0/6/12)",
			f.Completed(), f.Failures, f.Retries)
	}
}

// TestUDPEchoIgnoresForeignFrames feeds the endpoint frames that must be
// dropped without matching any operation: wrong ether type, wrong
// destination port, short payload, and an echo for a seq never sent.
func TestUDPEchoIgnoresForeignFrames(t *testing.T) {
	w := newTestWorld()
	f := NewFleet(w.cfg(UDPEcho, 1))
	link := f.Link(0)
	w.eng.Schedule(1, func() {
		w.reply(link, f.Addr(0), binary.BigEndian.AppendUint32(nil, 77)) // short (4 < 8)
		garbage := make([]byte, 60)                                      // not IPv4 at all
		_ = w.transmit(link, garbage)
		stale := make([]byte, 16) // well-formed but unknown seq
		binary.BigEndian.PutUint32(stale, 4242)
		w.reply(link, f.Addr(0), stale)
	})
	w.eng.Run()
	if f.Completed() != 0 || f.Failures != 0 {
		t.Fatalf("foreign frames changed accounting: %d/%d", f.Completed(), f.Failures)
	}
	if f.BadFrames == 0 {
		t.Fatalf("malformed frame was not counted")
	}
}

// nfsReply builds xid|status|attr(12)|count|data — the READ reply shape
// the endpoint parses.
func nfsReply(xid, status uint32, n int) []byte {
	b := binary.BigEndian.AppendUint32(nil, xid)
	b = binary.BigEndian.AppendUint32(b, status)
	b = append(b, make([]byte, 12)...)
	b = binary.BigEndian.AppendUint32(b, uint32(n))
	return append(b, make([]byte, n)...)
}

// TestNFSReadStatuses checks both reply paths: an OK read completes, an
// error status settles the operation as a failure.
func TestNFSReadStatuses(t *testing.T) {
	w := newTestWorld()
	c := w.cfg(NFSRead, 1)
	f := NewFleet(c)
	w.srv.SetReceiver(func(pkt *netdev.PacketBuf) {
		call := pkt.Bytes()[ether.HeaderLen+ip.HeaderLen+8:]
		xid := binary.BigEndian.Uint32(call)
		if proc := binary.BigEndian.Uint32(call[4:]); proc != nfs.ProcRead {
			t.Fatalf("unexpected proc %d", proc)
		}
		if fh := binary.BigEndian.Uint32(call[8:]); fh != 9 {
			t.Fatalf("unexpected handle %d", fh)
		}
		status := uint32(nfs.OK)
		if xid%2 == 1 { // fail every odd request
			status = nfs.OK + 1
		}
		w.reply(pkt.Src, ip.HostAddr(pkt.Src), nfsReply(xid, status, int(c.ReadBytes)))
	})
	tr := workload.Poisson(7, workload.Spec{Clients: 1, Events: 8, MeanGapUs: 500, Size: 16})
	f.Run(tr, 0, 0, 0, 0)
	w.eng.Run()
	if f.Completed() != 4 || f.Failures != 4 {
		t.Fatalf("completed=%d failures=%d (want 4/4)", f.Completed(), f.Failures)
	}
}

// flyTCPServer is a minimal scripted TCP responder: SYN-ACK the
// handshake, echo data, FIN-ACK the close. Checksums are off (the bench
// experiment runs them on; FlyConn's own tests cover validation).
type flyTCPServer struct {
	w     *testWorld
	iss   uint32
	conns map[int]*flySrvConn
	rsts  bool // answer every SYN with RST instead
}

type flySrvConn struct {
	sndNxt, rcvNxt uint32
}

func newFlyTCPServer(w *testWorld) *flyTCPServer {
	s := &flyTCPServer{w: w, iss: 500, conns: map[int]*flySrvConn{}}
	w.srv.SetReceiver(s.rx)
	return s
}

func (s *flyTCPServer) send(dst int, h tcp.Header) {
	eh := ether.Header{Dst: ether.PortMAC(dst), Src: ether.PortMAC(s.w.srv.Addr()),
		Type: ether.TypeIPv4}
	b := eh.Marshal(nil)
	seg := h.Marshal(nil)
	ih := ip.Header{TotalLen: uint16(ip.HeaderLen + len(seg)), TTL: 64,
		Proto: ip.ProtoTCP, Src: ip.HostAddr(s.w.srv.Addr()), Dst: ip.HostAddr(dst)}
	b = ih.Marshal(b)
	b = append(b, seg...)
	if err := s.w.transmit(dst, b); err != nil {
		panic(err)
	}
}

func (s *flyTCPServer) rx(pkt *netdev.PacketBuf) {
	seg := pkt.Bytes()[ether.HeaderLen+ip.HeaderLen:]
	h, dataOff, err := tcp.Parse(seg)
	if err != nil {
		return
	}
	base := tcp.Header{SrcPort: h.DstPort, DstPort: h.SrcPort, Window: 8192}
	plen := len(seg) - dataOff
	c := s.conns[pkt.Src]
	switch {
	case h.Flags&tcp.SYN != 0:
		if s.rsts {
			base.Flags, base.Seq = tcp.RST, 0
			s.send(pkt.Src, base)
			return
		}
		if c == nil { // a retransmitted SYN reuses the first SYN-ACK state
			c = &flySrvConn{sndNxt: s.iss + 1, rcvNxt: h.Seq + 1}
			s.conns[pkt.Src] = c
		}
		base.Flags, base.Seq, base.Ack = tcp.SYN|tcp.ACK, s.iss, c.rcvNxt
		s.send(pkt.Src, base)
	case c == nil:
		return
	case h.Flags&tcp.FIN != 0:
		c.rcvNxt = h.Seq + uint32(plen) + 1
		base.Flags, base.Seq, base.Ack = tcp.FIN|tcp.ACK, c.sndNxt, c.rcvNxt
		c.sndNxt++
		s.send(pkt.Src, base)
	case plen > 0 && h.Seq == c.rcvNxt:
		c.rcvNxt += uint32(plen)
		base.Flags, base.Seq, base.Ack = tcp.ACK|tcp.PSH, c.sndNxt, c.rcvNxt
		c.sndNxt += uint32(plen)
		echoed := append([]byte(nil), seg[dataOff:]...)
		eh := ether.Header{Dst: ether.PortMAC(pkt.Src), Src: ether.PortMAC(s.w.srv.Addr()),
			Type: ether.TypeIPv4}
		b := eh.Marshal(nil)
		hdr := base.Marshal(nil)
		ih := ip.Header{TotalLen: uint16(ip.HeaderLen + len(hdr) + len(echoed)), TTL: 64,
			Proto: ip.ProtoTCP, Src: ip.HostAddr(s.w.srv.Addr()), Dst: ip.HostAddr(pkt.Src)}
		b = ih.Marshal(b)
		b = append(b, hdr...)
		b = append(b, echoed...)
		if err := s.w.transmit(pkt.Src, b); err != nil {
			panic(err)
		}
	}
}

// TestTCPPingPongLifecycle drives two endpoints through handshake, pings
// (steady and incast), and close against the scripted server.
func TestTCPPingPongLifecycle(t *testing.T) {
	w := newTestWorld()
	c := w.cfg(TCPPingPong, 2)
	c.Checksum = false
	f := NewFleet(c)
	newFlyTCPServer(w)

	tr := workload.Poisson(7, workload.Spec{Clients: 2, Events: 10, MeanGapUs: 500, Size: 16})
	f.Run(tr, 1, 2, 2000, 0)
	w.eng.Run()

	want := uint64(10 + 1*2)
	if f.Completed() != want || f.Failures != 0 {
		t.Fatalf("completed=%d (want %d) failures=%d retries=%d",
			f.Completed(), want, f.Failures, f.Retries)
	}
	if f.IncastHist.Count() != 2 {
		t.Fatalf("incast pings: %d (want 2)", f.IncastHist.Count())
	}
}

// TestTCPReset checks the RST path: the endpoint records a failure and
// goes dead, dropping the rest of its schedule.
func TestTCPReset(t *testing.T) {
	w := newTestWorld()
	c := w.cfg(TCPPingPong, 1)
	c.Checksum = false
	f := NewFleet(c)
	newFlyTCPServer(w).rsts = true

	tr := workload.Poisson(7, workload.Spec{Clients: 1, Events: 4, MeanGapUs: 500, Size: 16})
	f.Run(tr, 0, 0, 0, 0)
	w.eng.Run()
	if f.Completed() != 0 || f.Failures != 1 {
		t.Fatalf("completed=%d failures=%d (want 0/1)", f.Completed(), f.Failures)
	}
}

// TestTCPDeafServer exhausts the SYN budget: the endpoint dies without
// ever completing and the retransmit counter shows the extra windows.
func TestTCPDeafServer(t *testing.T) {
	w := newTestWorld()
	c := w.cfg(TCPPingPong, 1)
	c.Checksum = false
	f := NewFleet(c) // Budget: 3
	tr := workload.Poisson(7, workload.Spec{Clients: 1, Events: 2, MeanGapUs: 100, Size: 16})
	f.Run(tr, 0, 0, 0, 0)
	w.eng.Run()
	if f.Completed() != 0 || f.Failures != 1 || f.Retries != 2 {
		t.Fatalf("completed=%d failures=%d retries=%d (want 0/1/2)",
			f.Completed(), f.Failures, f.Retries)
	}
}
