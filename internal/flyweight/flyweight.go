// Package flyweight implements the client side of the megascale fan-in
// experiment: traffic endpoints that attach directly to a netdev.Switch
// port with no aegis kernel, no address space, and no scheduled process
// behind them. A full simulated host costs hundreds of kilobytes (kernel
// arena, receive pool, page tables); a flyweight endpoint is a few
// hundred bytes of protocol state machine plus its switch port, which is
// what lets one simulation drive 10^6 clients at a single server.
//
// The asymmetry is deliberate and one-sided: the *measured* side of the
// experiment — the server — remains a full aegis kernel with its real
// interrupt path, DPF demultiplexer, striping DMA and ASH dispatch,
// byte-for-byte the same code the small-N scale experiment exercises.
// Only the load generators are flyweights, and the frames they emit are
// wire-exact: real Ethernet/IP/UDP headers, real TCP segments with
// end-to-end checksums (tcp.FlyConn), real NFS RPCs. The server cannot
// tell a flyweight peer from a host, which is the property that makes
// the megascale numbers comparable to the scale experiment's.
//
// Endpoints are open-loop: arrival instants come from an
// internal/workload trace, never from the system under test, and every
// request carries a retry budget from internal/proto/retry — jittered
// exponential backoff with van der Corput first-retry spread — so the
// fleet composes with the server's admission control (ring
// high-watermark sheds) instead of synchronously hammering it.
//
// Everything here runs inside simulator event callbacks and is fully
// deterministic: no wall clock, no global PRNG, no map iteration.
package flyweight

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/obs"
	"ashs/internal/proto/ether"
	"ashs/internal/proto/ip"
	"ashs/internal/proto/nfs"
	"ashs/internal/proto/retry"
	"ashs/internal/proto/tcp"
	"ashs/internal/proto/udp"
	"ashs/internal/sim"
	"ashs/internal/workload"
)

// Kind selects an endpoint's protocol state machine.
type Kind int

const (
	// UDPEcho endpoints fire tagged echo request datagrams and match
	// replies by tag; many requests may be outstanding at once.
	UDPEcho Kind = iota
	// TCPPingPong endpoints open one connection (tcp.FlyConn), ping-pong
	// one fixed-size message per arrival, and close — client FIN first —
	// when the schedule is exhausted.
	TCPPingPong
	// NFSRead endpoints issue NFS READ RPCs over UDP and match replies
	// by xid; like UDPEcho, requests may overlap.
	NFSRead
)

func (k Kind) String() string {
	switch k {
	case UDPEcho:
		return "udp-echo"
	case TCPPingPong:
		return "tcp-pp"
	case NFSRead:
		return "nfs-read"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config parameterizes a fleet. Server* fields describe the one full
// host everything fans in to.
type Config struct {
	Eng  *sim.Engine
	Prof *mach.Profile
	Sw   *netdev.Switch

	Kind Kind
	// N is the fleet size. Each endpoint gets its own switch port and IP.
	N int

	ServerIP ip.Addr
	// ServerLink is the server's switch port (its link-layer address).
	ServerLink int
	// ServerPort is the destination UDP/TCP port.
	ServerPort uint16
	// ClientPort is every endpoint's local port (endpoints are told apart
	// by IP, exactly like the scale experiment's client hosts).
	ClientPort uint16

	// Payload is the request payload size (UDPEcho and TCPPingPong;
	// minimum 8 — the first 8 bytes tag the operation).
	Payload int

	// ReadBytes/FileBytes/Handle describe the NFSRead workload: each
	// request reads ReadBytes at a rotating offset within a FileBytes
	// file under the given handle.
	ReadBytes uint32
	FileBytes uint32
	Handle    uint32

	// Window and Checksum configure tcp.FlyConn.
	Window   uint16
	Checksum bool

	// Retry is the per-operation backoff schedule. Budget counts
	// reply-wait windows, Next-style: an operation is transmitted once
	// per window and declared failed when the last window expires, so
	// Budget must be >= 1 and an operation is sent at most Budget times.
	Retry retry.Policy
	// Seed feeds the jitter streams (the van der Corput first slot is
	// per-client regardless of seed).
	Seed int64

	// Obs, when non-nil, receives the fleet's footprint gauge.
	Obs *obs.Plane
}

// Fleet is a set of flyweight endpoints plus their shared accounting.
type Fleet struct {
	cfg Config
	eps []*Endpoint

	// Hist collects completed-operation round-trip times from the
	// open-loop trace; IncastHist collects those of incast-wave
	// operations, kept apart so the synchronized burst does not smear
	// the steady-state tail.
	Hist       *obs.Histogram
	IncastHist *obs.Histogram

	// Retries counts retransmissions, Failures operations abandoned with
	// an exhausted budget (plus NFS error statuses), BadFrames arrivals
	// dropped at the endpoint (frame-check mismatch or unparseable).
	Retries   uint64
	Failures  uint64
	BadFrames uint64
}

// Endpoint is one flyweight client: a switch port, an address, and a
// minimal per-kind state machine. Dynamic state (outstanding operations,
// the TCP connection) is allocated only once the endpoint first sends,
// so an idle endpoint in a 10^6 fleet stays at its static footprint.
type Endpoint struct {
	f    *Fleet
	id   int
	port *netdev.Port
	addr ip.Addr

	nextSeq uint32
	out     []*op // outstanding datagram operations (UDPEcho, NFSRead)

	// TCPPingPong state: pend queues arrival incast-flags behind the
	// serial connection, cur is the in-flight step, total the lifetime
	// ping count (known up front from the trace).
	conn    *tcp.FlyConn
	pend    []bool
	cur     *op
	issued  int
	total   int
	closing bool
	dead    bool
}

// op is one in-flight operation: the exact frame on the wire (kept for
// verbatim retransmission), its backoff state, and its reply-wait timer.
type op struct {
	step   int // stepDgram, or the TCP step in flight
	seq    uint32
	frame  []byte
	sentAt sim.Time
	timer  sim.Timer
	bo     *retry.State
	incast bool
}

const (
	stepDgram = iota
	stepSyn
	stepPing
	stepFin
)

// NewFleet builds n endpoints on cfg.Sw, one switch port each. The
// server's kernel must already own its port so filters keyed on client
// addresses (ip.HostAddr of each new port) resolve consistently.
func NewFleet(cfg Config) *Fleet {
	if cfg.N <= 0 {
		panic("flyweight: fleet size must be positive")
	}
	if cfg.Retry.Budget < 1 {
		panic("flyweight: retry budget must be >= 1 (it counts reply-wait windows)")
	}
	if (cfg.Kind == UDPEcho || cfg.Kind == TCPPingPong) && cfg.Payload < 8 {
		panic("flyweight: payload must be >= 8 (operation tag)")
	}
	if cfg.Kind == NFSRead && (cfg.ReadBytes == 0 || cfg.FileBytes == 0) {
		panic("flyweight: NFSRead needs ReadBytes and FileBytes")
	}
	f := &Fleet{cfg: cfg, Hist: &obs.Histogram{}, IncastHist: &obs.Histogram{}}
	f.eps = make([]*Endpoint, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ep := &Endpoint{f: f, id: i, port: cfg.Sw.NewPort()}
		ep.addr = ip.HostAddr(ep.port.Addr())
		ep.port.SetReceiver(ep.rx)
		f.eps[i] = ep
	}
	f.cfg.Obs.SetGauge("flyweight/bytes_per_endpoint", int64(f.StaticBytesPerEndpoint()))
	return f
}

// Len is the fleet size.
func (f *Fleet) Len() int { return len(f.eps) }

// Addr is endpoint i's IP address (for building server-side filters).
func (f *Fleet) Addr(i int) ip.Addr { return f.eps[i].addr }

// Link is endpoint i's switch port.
func (f *Fleet) Link(i int) int { return f.eps[i].port.Addr() }

// Completed counts finished operations across both phases.
func (f *Fleet) Completed() uint64 { return f.Hist.Count() + f.IncastHist.Count() }

// StaticBytesPerEndpoint is the resident footprint of one idle endpoint:
// the endpoint record, its switch port, and (TCP) its connection state
// machine. Per-operation buffers are transient and excluded; compare
// with the hundreds of kilobytes a full scale-experiment client host
// pins (kernel arena plus receive pool).
func (f *Fleet) StaticBytesPerEndpoint() int {
	per := int(unsafe.Sizeof(Endpoint{})) + int(unsafe.Sizeof(netdev.Port{}))
	if f.cfg.Kind == TCPPingPong {
		per += int(unsafe.Sizeof(tcp.FlyConn{}))
	}
	return per
}

// Run schedules the fleet's whole lifetime: the trace's open-loop
// arrivals first, then `waves` synchronized incast waves over endpoints
// [0, waveClients), the first wave quietUs after the trace ends and
// subsequent waves waveGapUs apart. Trace events are pumped one engine
// event at a time (a cursor, not a million pre-scheduled closures), so
// the event heap stays O(outstanding), not O(trace).
func (f *Fleet) Run(tr *workload.Trace, waves, waveClients int, quietUs, waveGapUs float64) {
	if waveClients > len(f.eps) {
		waveClients = len(f.eps)
	}
	if f.cfg.Kind == TCPPingPong {
		for _, ev := range tr.Events {
			if ev.Client < len(f.eps) {
				f.eps[ev.Client].total++
			}
		}
		for w := 0; w < waves; w++ {
			for c := 0; c < waveClients; c++ {
				f.eps[c].total++
			}
		}
	}
	if len(tr.Events) > 0 {
		f.pumpFrom(tr.Events, 0)
	}
	base := tr.Duration() + quietUs
	for w := 0; w < waves; w++ {
		at := f.cfg.Prof.Cycles(base + float64(w)*waveGapUs)
		for c := 0; c < waveClients; c++ {
			ep := f.eps[c]
			f.cfg.Eng.ScheduleAt(at, func() { ep.arrive(true) })
		}
	}
}

// pumpFrom schedules trace event i and, from inside its callback, the
// next one — the lazy cursor that keeps 10^6-client traces cheap.
func (f *Fleet) pumpFrom(evs []workload.Event, i int) {
	f.cfg.Eng.ScheduleAt(f.cfg.Prof.Cycles(evs[i].AtUs), func() {
		if c := evs[i].Client; c < len(f.eps) {
			f.eps[c].arrive(false)
		}
		if i+1 < len(evs) {
			f.pumpFrom(evs, i+1)
		}
	})
}

// arrive is one open-loop arrival: a datagram kind launches the
// operation immediately (overlap allowed), TCP queues it behind the
// serial connection.
func (ep *Endpoint) arrive(incast bool) {
	if ep.dead {
		return
	}
	if ep.f.cfg.Kind == TCPPingPong {
		ep.pend = append(ep.pend, incast)
		ep.pump()
		return
	}
	ep.startDgram(incast)
}

// launch transmits o's frame, charges the first reply-wait window to the
// budget, and arms the timer. It reports false when the budget cannot
// cover even one window.
func (ep *Endpoint) launch(o *op) bool {
	wait, ok := o.bo.Next()
	if !ok {
		ep.f.Failures++
		return false
	}
	o.sentAt = ep.f.cfg.Eng.Now()
	ep.transmit(o.frame)
	o.timer = ep.f.cfg.Eng.Schedule(ep.f.cfg.Prof.Cycles(wait), func() { ep.expire(o) })
	return true
}

// expire handles a reply-wait window running out: retransmit the exact
// bytes and back off, or — budget exhausted — abandon the operation.
func (ep *Endpoint) expire(o *op) {
	o.timer = sim.Timer{}
	wait, ok := o.bo.Next()
	if !ok {
		ep.f.Failures++
		ep.abandon(o)
		return
	}
	ep.f.Retries++
	ep.transmit(o.frame)
	o.timer = ep.f.cfg.Eng.Schedule(ep.f.cfg.Prof.Cycles(wait), func() { ep.expire(o) })
}

// abandon removes a failed operation. A TCP endpoint cannot make
// progress past a lost step (the connection is serial), so it dies.
func (ep *Endpoint) abandon(o *op) {
	if ep.f.cfg.Kind == TCPPingPong {
		ep.cur = nil
		ep.dead = true
		return
	}
	for i, q := range ep.out {
		if q == o {
			ep.out = append(ep.out[:i], ep.out[i+1:]...)
			return
		}
	}
}

// settle completes an operation: timer off, round trip observed (TCP
// handshake and close steps are bookkeeping, not operations).
func (ep *Endpoint) settle(o *op, observe bool) {
	ep.f.cfg.Eng.Cancel(o.timer) // zero or stale timers cancel as no-ops
	o.timer = sim.Timer{}
	if observe {
		h := ep.f.Hist
		if o.incast {
			h = ep.f.IncastHist
		}
		h.Observe(ep.f.cfg.Eng.Now() - o.sentAt)
	}
}

// transmit leases a pooled buffer and copies the frame in (LeaseData
// copies, so op.frame stays pristine for verbatim retransmission).
func (ep *Endpoint) transmit(frame []byte) {
	pkt := ep.f.cfg.Sw.LeaseData(frame)
	pkt.Dst = ep.f.cfg.ServerLink
	if err := ep.port.Transmit(pkt); err != nil {
		panic(err)
	}
}

// rx is the endpoint's receive path. The frame buffer is borrowed for
// the duration of the call; the frame check mirrors the full driver's:
// a corrupted frame is dropped for the retry machinery to recover,
// never parsed.
func (ep *Endpoint) rx(pkt *netdev.PacketBuf) {
	data := pkt.Bytes()
	if pkt.FCS != netdev.FrameCheck(data) {
		ep.f.BadFrames++
		return
	}
	switch ep.f.cfg.Kind {
	case UDPEcho:
		ep.rxEcho(data)
	case TCPPingPong:
		ep.rxTCP(data)
	case NFSRead:
		ep.rxNFS(data)
	}
}

// ---- datagram kinds (UDPEcho, NFSRead) ----

const (
	udpPayloadOff = ether.HeaderLen + ip.HeaderLen + udp.HeaderLen
)

// startDgram launches one tagged request datagram.
func (ep *Endpoint) startDgram(incast bool) {
	seq := ep.nextSeq
	ep.nextSeq++
	var frame []byte
	switch ep.f.cfg.Kind {
	case UDPEcho:
		frame = ep.udpFrame(ep.echoPayload(seq))
	case NFSRead:
		frame = ep.udpFrame(ep.readCall(seq))
	}
	o := &op{step: stepDgram, seq: seq, frame: frame, incast: incast,
		bo: retry.New(ep.f.cfg.Retry, ep.f.cfg.Seed, ep.id)}
	if ep.launch(o) {
		ep.out = append(ep.out, o)
	}
}

// take removes and returns the outstanding operation tagged seq.
func (ep *Endpoint) take(seq uint32) *op {
	for i, o := range ep.out {
		if o.seq == seq {
			ep.out = append(ep.out[:i], ep.out[i+1:]...)
			return o
		}
	}
	return nil
}

// dgram validates the UDP framing of an arriving reply and returns its
// payload (nil if the frame is not ours).
func (ep *Endpoint) dgram(data []byte) []byte {
	if len(data) < udpPayloadOff ||
		binary.BigEndian.Uint16(data[12:14]) != ether.TypeIPv4 ||
		data[ether.HeaderLen+9] != ip.ProtoUDP ||
		binary.BigEndian.Uint16(data[ether.HeaderLen+ip.HeaderLen+2:]) != ep.f.cfg.ClientPort {
		ep.f.BadFrames++
		return nil
	}
	return data[udpPayloadOff:]
}

func (ep *Endpoint) rxEcho(data []byte) {
	p := ep.dgram(data)
	if p == nil || len(p) < 8 {
		return
	}
	// A late echo of a retransmitted (already settled) request matches
	// nothing and is dropped silently.
	if o := ep.take(binary.BigEndian.Uint32(p)); o != nil {
		ep.settle(o, true)
	}
}

func (ep *Endpoint) rxNFS(data []byte) {
	p := ep.dgram(data)
	if p == nil || len(p) < 8 {
		return
	}
	o := ep.take(binary.BigEndian.Uint32(p)) // xid
	if o == nil {
		return
	}
	if status := binary.BigEndian.Uint32(p[4:8]); status != nfs.OK || len(p) < 24 {
		ep.settle(o, false)
		ep.f.Failures++
		return
	}
	ep.settle(o, true)
}

// echoPayload tags an echo request: seq, then the client id, then
// deterministic filler.
func (ep *Endpoint) echoPayload(seq uint32) []byte {
	p := make([]byte, ep.f.cfg.Payload)
	binary.BigEndian.PutUint32(p, seq)
	binary.BigEndian.PutUint32(p[4:], uint32(ep.id))
	for i := 8; i < len(p); i++ {
		p[i] = byte(ep.id + i)
	}
	return p
}

// readCall marshals one NFS READ RPC, xid = seq, reading ReadBytes at a
// rotating offset.
func (ep *Endpoint) readCall(seq uint32) []byte {
	cfg := &ep.f.cfg
	off := (seq * cfg.ReadBytes) % cfg.FileBytes
	b := make([]byte, 0, 20)
	b = binary.BigEndian.AppendUint32(b, seq)
	b = binary.BigEndian.AppendUint32(b, nfs.ProcRead)
	b = binary.BigEndian.AppendUint32(b, cfg.Handle)
	b = binary.BigEndian.AppendUint32(b, off)
	return binary.BigEndian.AppendUint32(b, cfg.ReadBytes)
}

// udpFrame wraps payload in Ethernet+IP+UDP headers from this endpoint
// to the server. The UDP checksum is zero (unused), matching the full
// library's default and the receive path's checksum-zero skip.
func (ep *Endpoint) udpFrame(payload []byte) []byte {
	cfg := &ep.f.cfg
	eh := ether.Header{Dst: ether.PortMAC(cfg.ServerLink), Src: ether.PortMAC(ep.port.Addr()),
		Type: ether.TypeIPv4}
	b := eh.Marshal(nil)
	ih := ip.Header{TotalLen: uint16(ip.HeaderLen + udp.HeaderLen + len(payload)),
		TTL: 64, Proto: ip.ProtoUDP, DF: true, Src: ep.addr, Dst: cfg.ServerIP}
	b = ih.Marshal(b)
	b = binary.BigEndian.AppendUint16(b, cfg.ClientPort)
	b = binary.BigEndian.AppendUint16(b, cfg.ServerPort)
	b = binary.BigEndian.AppendUint16(b, uint16(udp.HeaderLen+len(payload)))
	b = binary.BigEndian.AppendUint16(b, 0)
	return append(b, payload...)
}

// ---- TCPPingPong ----

// pump advances the serial connection: open on the first arrival, one
// ping per queued arrival once established, FIN after the last.
func (ep *Endpoint) pump() {
	if ep.dead || ep.closing || ep.cur != nil {
		return
	}
	cfg := &ep.f.cfg
	switch {
	case ep.conn == nil:
		if len(ep.pend) == 0 {
			return
		}
		ep.conn = tcp.NewFlyConn(ep.addr, cfg.ServerIP, cfg.ClientPort, cfg.ServerPort,
			1000*uint32(ep.id)+1, cfg.Window, cfg.Checksum)
		ep.startStep(stepSyn, ep.conn.Syn(), false)
	case len(ep.pend) > 0:
		incast := ep.pend[0]
		ep.pend = ep.pend[1:]
		ep.issued++
		seq := ep.nextSeq
		ep.nextSeq++
		ep.startStep(stepPing, ep.conn.Data(ep.echoPayload(seq)), incast)
	case ep.issued == ep.total:
		ep.closing = true
		ep.startStep(stepFin, ep.conn.Fin(), false)
	}
}

// startStep launches one serial connection step (SYN, ping, or FIN) with
// the usual retransmission machinery around the raw segment.
func (ep *Endpoint) startStep(step int, seg []byte, incast bool) {
	o := &op{step: step, frame: ep.tcpFrame(seg), incast: incast,
		bo: retry.New(ep.f.cfg.Retry, ep.f.cfg.Seed, ep.id)}
	if ep.launch(o) {
		ep.cur = o
	} else {
		ep.dead = true
	}
}

func (ep *Endpoint) rxTCP(data []byte) {
	if len(data) < ether.HeaderLen+ip.HeaderLen+tcp.HeaderLen ||
		binary.BigEndian.Uint16(data[12:14]) != ether.TypeIPv4 ||
		data[ether.HeaderLen+9] != ip.ProtoTCP {
		ep.f.BadFrames++
		return
	}
	if ep.conn == nil {
		return
	}
	reply, payload, err := ep.conn.OnSegment(data[ether.HeaderLen+ip.HeaderLen:])
	if err != nil {
		// Peer reset: the connection is gone; fail the in-flight step.
		if ep.cur != nil {
			ep.settle(ep.cur, false)
			ep.cur = nil
		}
		ep.f.Failures++
		ep.dead = true
		return
	}
	if reply != nil {
		ep.transmit(ep.tcpFrame(reply))
	}
	if o := ep.cur; o != nil {
		switch {
		case o.step == stepSyn && ep.conn.Established():
			ep.settle(o, false)
			ep.cur = nil
		case o.step == stepPing && len(payload) > 0:
			ep.settle(o, true)
			ep.cur = nil
		case o.step == stepFin && ep.conn.Done():
			ep.settle(o, false)
			ep.cur = nil
			ep.dead = true // fully closed; nothing more to do
			return
		}
	}
	ep.pump()
}

// tcpFrame wraps a raw segment in Ethernet+IP headers to the server.
func (ep *Endpoint) tcpFrame(seg []byte) []byte {
	cfg := &ep.f.cfg
	eh := ether.Header{Dst: ether.PortMAC(cfg.ServerLink), Src: ether.PortMAC(ep.port.Addr()),
		Type: ether.TypeIPv4}
	b := eh.Marshal(nil)
	ih := ip.Header{TotalLen: uint16(ip.HeaderLen + len(seg)),
		TTL: 64, Proto: ip.ProtoTCP, DF: true, Src: ep.addr, Dst: cfg.ServerIP}
	b = ih.Marshal(b)
	return append(b, seg...)
}
