package core

// Profile-guided re-optimization: the DCG loop closed. A handler
// downloaded with Options.Profile accumulates a per-instruction execution
// counter; ExportProfile maps those counts back through the jump table to
// original instruction indices (the coordinate system the optimizer plans
// in) and Reoptimize re-runs the SFI optimizer with the observed-hot
// information attached to the policy, hot-swapping the handler's
// installed code in place. Bindings, persistent registers, statistics,
// and the undo journal all survive the swap — only the instrumented code
// (and its jump table) changes.

import (
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/sandbox"
	"ashs/internal/vcode/reopt"
)

// ExportProfile snapshots the handler's accumulated execution profile in
// original-program coordinates: Counts[i] is how many times original
// instruction i executed across Invocations handler runs. Returns nil if
// the handler was not downloaded with Options.Profile. The live counters
// keep accumulating; the snapshot is independent.
func (a *ASH) ExportProfile() *reopt.Profile {
	m := a.machine
	if m.PCCounts == nil {
		return nil
	}
	var counts []uint64
	if a.sandbox == nil {
		// Unsafe handlers run the original code directly: identity map.
		counts = append([]uint64(nil), m.PCCounts...)
	} else {
		counts = make([]uint64, len(a.sandbox.Orig.Insns))
		for old, inst := range a.sandbox.JmpTable {
			if old < len(counts) && inst >= 0 && inst < len(m.PCCounts) {
				counts[old] = m.PCCounts[inst]
			}
		}
	}
	prof := &reopt.Profile{
		Handler:     a.Name,
		Invocations: a.Invocations,
		Counts:      counts,
	}
	if o := a.sys.K.Obs; o.Enabled() {
		o.RecordProfile(a.Name, prof.Invocations, prof.Counts)
	}
	return prof
}

// Reoptimize re-instruments the handler's original program with its
// accumulated execution profile attached and installs the result in
// place. The handler must be safe (sandboxed) and downloaded with
// Options.Profile. The swap preserves the handler's identity: bindings,
// persistent register values, journal, budget, and statistics carry
// over; profiling counters restart against the new code layout.
//
// Soundness is the optimizer's, not the profile's: the profile only
// nominates instructions among candidates the static analysis has already
// proven transformable, so a stale, empty, or adversarial profile can
// change cost but never semantics (the three-way differential harness
// holds this over every registry handler and fuzzed profiles).
func (s *System) Reoptimize(a *ASH) (*reopt.Profile, error) {
	if a.Unsafe {
		return nil, fmt.Errorf("core: cannot reoptimize unsafe handler %s (no sandbox to re-instrument)", a.Name)
	}
	prof := a.ExportProfile()
	if prof == nil {
		return nil, fmt.Errorf("core: handler %s was not downloaded with profiling", a.Name)
	}
	pol := *a.sandbox.Policy
	pol.Optimize = true
	pol.Profile = prof
	sp, err := sandbox.Sandbox(a.sandbox.Orig, &pol)
	if err != nil {
		return nil, err
	}
	a.sandbox = sp
	a.code = sp.Code
	sp.Attach(a.machine, 0, ^uint32(0), a.budget)
	a.machine.PCCounts = make([]uint64, len(a.code.Insns))
	if o := s.K.Obs; o.Enabled() {
		o.Instant(s.K.Name, "ash system", "ash", "reoptimize "+a.Name,
			s.K.Now())
		o.Inc("ash/reoptimizations")
	}
	return prof, nil
}

// Chain runs several installed handlers in sequence over one message —
// the interpreted baseline the fused (reopt.FuseChain) download is
// measured against. Semantics match the fusion seams: a member that
// consumes the message (RRet = 0) passes control to the next; the first
// member that does not consume it (voluntary abort, throttle, or
// involuntary abort) ends the chain with that disposition. All members
// consuming yields DispConsumed.
type Chain struct {
	Members []*ASH
}

// HandleMsg implements aegis.MsgHandler over the whole chain.
func (c *Chain) HandleMsg(mc *aegis.MsgCtx) aegis.Disposition {
	for _, a := range c.Members {
		if d := a.HandleMsg(mc); d != aegis.DispConsumed {
			return d
		}
	}
	return aegis.DispConsumed
}
