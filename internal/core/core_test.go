package core

import (
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/mach"
	"ashs/internal/netdev"
	"ashs/internal/pipe"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// testbed is a two-host AN2 world with an ASH system on the server.
type testbed struct {
	eng      *sim.Engine
	k1, k2   *aegis.Kernel
	a1, a2   *aegis.AN2If
	sys      *System
	clientRx *aegis.VCBinding
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	eng := sim.NewEngine()
	prof := mach.DS5000_240()
	sw := netdev.NewSwitch(eng, prof, netdev.AN2Config())
	k1 := aegis.NewKernel("client", eng, prof)
	k2 := aegis.NewKernel("server", eng, prof)
	tb := &testbed{
		eng: eng, k1: k1, k2: k2,
		a1: aegis.NewAN2(k1, sw), a2: aegis.NewAN2(k2, sw),
	}
	tb.sys = NewSystem(k2)
	return tb
}

// incrementASH builds the remote-increment handler: read the counter word
// at a fixed offset in the application's data segment, add the increment
// carried in the message, store it back, and reply with the new value.
func incrementASH(counterAddr uint32, replyTo func() (int, int)) *vcode.Program {
	b := vcode.NewBuilder("remote-increment")
	msg, cnt, val, inc := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Mov(msg, vcode.RArg0) // message base (RArg0 is clobbered for the call)
	b.MovI(cnt, int32(counterAddr))
	b.Ld32(inc, msg, 0) // increment amount from the message
	b.Ld32(val, cnt, 0) // current counter
	b.AddU(val, val, inc)
	b.St32(cnt, 0, val) // store updated counter
	// Build the reply in the message buffer (vectoring: reuse in place).
	b.St32(msg, 0, val)
	dst, vc := replyTo()
	b.MovI(vcode.RArg0, int32(dst))
	b.MovI(vcode.RArg1, int32(vc))
	b.Mov(vcode.RArg2, msg)
	b.MovI(vcode.RArg3, 4)
	b.Call("ash_send")
	b.MovI(vcode.RRet, 0) // consumed
	b.Ret()
	return b.MustAssemble()
}

func TestDownloadRejectsUnsafeCode(t *testing.T) {
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	b := vcode.NewBuilder("bad")
	b.Float(vcode.OpFAdd, vcode.RRet, vcode.RZero, vcode.RZero)
	b.Ret()
	if _, err := tb.sys.Download(owner, b.MustAssemble(), Options{}); err == nil {
		t.Fatal("floating-point handler downloaded")
	}
	tb.eng.Run()
}

func TestDownloadRequiresOwner(t *testing.T) {
	tb := newTestbed(t)
	b := vcode.NewBuilder("ok")
	b.Ret()
	if _, err := tb.sys.Download(nil, b.MustAssemble(), Options{}); err == nil {
		t.Fatal("ownerless handler downloaded")
	}
}

// runIncrement wires the increment ASH on the server and ping-pongs from
// an in-kernel client endpoint, returning mean RT in us and the ASH.
func runIncrement(t *testing.T, unsafe bool, iters int) (float64, *ASH, *testbed) {
	t.Helper()
	tb := newTestbed(t)

	var counterSeg aegis.Segment
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {
		// The application pins a data page for the handler and then goes
		// about its business (here: nothing).
	})
	counterSeg = owner.AS.MustAlloc(4096, "counters")

	ash := tb.sys.MustDownload(owner,
		incrementASH(counterSeg.Base, func() (int, int) { return 0, 9 }),
		Options{Unsafe: unsafe})
	sb, err := tb.a2.BindVC(owner, 9, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ash.AttachVC(sb)

	// Client: in-kernel endpoint to isolate the server-side path.
	cb, err := tb.a1.BindVC(nil, 9, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cb.InKernel = true
	count := 0
	var done sim.Time
	cb.InKernelRx = func(mc *aegis.MsgCtx) {
		count++
		if count < iters {
			mc.Send(mc.Src, mc.VC, []byte{0, 0, 0, 1})
		} else {
			done = mc.When()
		}
	}
	tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{0, 0, 0, 1})
	tb.eng.Run()
	if count != iters {
		t.Fatalf("completed %d/%d round trips (last fault: %v)", count, iters, ash.InvoluntaryFault)
	}
	// Verify the counter really incremented (control initiation worked).
	got, err := owner.AS.Load32(counterSeg.Base)
	if err != nil || got != uint32(iters) {
		t.Fatalf("counter = %d, %v; want %d", got, err, iters)
	}
	return tb.k1.Us(done) / float64(iters), ash, tb
}

func TestIncrementASHUnsafe(t *testing.T) {
	rt, ash, _ := runIncrement(t, true, 10)
	if ash.Invocations != 10 {
		t.Fatalf("invocations = %d", ash.Invocations)
	}
	// In-kernel client side ~8 us + ASH side; full user-level client adds
	// more. The interesting property here is the ASH side: the server leg
	// must be within a few us of the in-kernel handler's.
	if rt < 100 || rt > 125 {
		t.Fatalf("unsafe ASH RT (in-kernel client) = %.1f us", rt)
	}
}

func TestSandboxingAddsSmallConstant(t *testing.T) {
	rtU, ashU, _ := runIncrement(t, true, 10)
	rtS, ashS, _ := runIncrement(t, false, 10)
	delta := rtS - rtU
	// Table V: sandboxing costs ~5 us per round trip (timer arms + added
	// instructions).
	if delta < 2 || delta > 10 {
		t.Fatalf("sandbox delta = %.2f us, want ~5 (Table V)", delta)
	}
	if ashS.LastInsns() <= ashU.LastInsns() {
		t.Fatalf("sandboxed insns %d not above unsafe %d", ashS.LastInsns(), ashU.LastInsns())
	}
	added := ashS.LastInsns() - ashU.LastInsns()
	// The paper reports 76 added instructions on a base of 90 for this
	// handler; ours should be the same order.
	if added < 15 || added > 120 {
		t.Fatalf("added dynamic instructions = %d, want tens", added)
	}
}

func TestVoluntaryAbortFallsBackToUser(t *testing.T) {
	tb := newTestbed(t)
	ringLen := -1
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})

	// A handler that rejects odd first bytes (voluntary abort).
	b := vcode.NewBuilder("picky")
	v, one := b.Temp(), b.Temp()
	b.Ld8(v, vcode.RArg0, 0)
	b.MovI(one, 1)
	b.And(v, v, one)
	b.Mov(vcode.RRet, v) // odd -> voluntary abort
	b.Ret()
	ash := tb.sys.MustDownload(owner, b.MustAssemble(), Options{})

	sb, err := tb.a2.BindVC(owner, 4, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ash.AttachVC(sb)

	tb.a1.KernelSend(tb.a2.Addr(), 4, []byte{2, 0, 0, 0}) // even: consumed
	tb.a1.KernelSend(tb.a2.Addr(), 4, []byte{3, 0, 0, 0}) // odd: to user
	tb.eng.Run()
	ringLen = sb.Ring.Len()
	if ringLen != 1 {
		t.Fatalf("ring length = %d, want 1 (one voluntary abort)", ringLen)
	}
	if ash.VoluntaryAborts != 1 {
		t.Fatalf("voluntary aborts = %d, want 1", ash.VoluntaryAborts)
	}
}

func TestInvoluntaryAbortOnWildWrite(t *testing.T) {
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	b := vcode.NewBuilder("wild")
	r := b.Temp()
	b.MovI(r, 0x7fffff0)
	b.St32(r, 0, r)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	ash := tb.sys.MustDownload(owner, b.MustAssemble(), Options{})
	sb, _ := tb.a2.BindVC(owner, 4, 8, 4096)
	ash.AttachVC(sb)

	tb.a1.KernelSend(tb.a2.Addr(), 4, []byte{1, 2, 3, 4})
	tb.eng.Run()
	if tb.sys.InvoluntaryAborts != 1 {
		t.Fatalf("involuntary aborts = %d, want 1", tb.sys.InvoluntaryAborts)
	}
	if ash.InvoluntaryFault == nil || ash.InvoluntaryFault.Kind != vcode.FaultBadAddr {
		t.Fatalf("fault = %v", ash.InvoluntaryFault)
	}
	// The message fell back to the user path.
	if sb.Ring.Len() != 1 {
		t.Fatalf("ring length = %d, want 1", sb.Ring.Len())
	}
}

func TestInvoluntaryAbortOnNonResidentPage(t *testing.T) {
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	seg := owner.AS.MustAlloc(4096, "data")
	owner.AS.Unpin(seg.Base)

	b := vcode.NewBuilder("touch-absent")
	r := b.Temp()
	b.MovI(r, int32(seg.Base))
	b.Ld32(vcode.RRet, r, 0)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	ash := tb.sys.MustDownload(owner, b.MustAssemble(), Options{})
	sb, _ := tb.a2.BindVC(owner, 4, 8, 4096)
	ash.AttachVC(sb)

	tb.a1.KernelSend(tb.a2.Addr(), 4, []byte{1})
	tb.eng.Run()
	if ash.InvoluntaryFault == nil || ash.InvoluntaryFault.Kind != vcode.FaultBadAddr {
		t.Fatalf("fault = %v, want bad address (absent page)", ash.InvoluntaryFault)
	}
}

func TestRunawayASHAbortedByWatchdog(t *testing.T) {
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	b := vcode.NewBuilder("spin")
	// Spin via a conditional branch that always retakes the loop, so the
	// assembler's appended ret stays reachable (the hardened verifier
	// rejects unreachable code).
	r := b.Temp()
	b.MovI(r, 1)
	top := b.NewLabel()
	b.Bind(top)
	b.Bne(r, vcode.RZero, top)
	ash := tb.sys.MustDownload(owner, b.MustAssemble(), Options{})
	sb, _ := tb.a2.BindVC(owner, 4, 8, 4096)
	ash.AttachVC(sb)

	tb.a1.KernelSend(tb.a2.Addr(), 4, []byte{1})
	tb.eng.Run()
	if ash.InvoluntaryFault == nil || ash.InvoluntaryFault.Kind != vcode.FaultBudget {
		t.Fatalf("fault = %v, want budget (two-tick watchdog)", ash.InvoluntaryFault)
	}
	// The watchdog bound: two clock ticks.
	maxCycles := 2 * sim.Time(tb.k2.Prof.ClockTickCycles)
	if ash.machine.Cycles > maxCycles+100 {
		t.Fatalf("ASH ran %d cycles past the watchdog", ash.machine.Cycles-maxCycles)
	}
}

func TestMessageVectoringViaTrustedCopy(t *testing.T) {
	// "An ASH can dynamically control where messages are copied in
	// memory": the handler reads a slot index from the message and copies
	// the payload into that slot of an application matrix.
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	matrix := owner.AS.MustAlloc(16*256, "matrix")

	b := vcode.NewBuilder("vectoring")
	slot, dst := b.Temp(), b.Temp()
	b.Ld32(slot, vcode.RArg0, 0) // slot index in first word
	b.MovI(dst, int32(matrix.Base))
	sh := b.Temp()
	b.SllI(sh, slot, 8) // slot * 256
	b.AddU(dst, dst, sh)
	// ash_copy(src = msg+4, dst, len = 256)
	b.AddIU(vcode.RArg1, vcode.RArg0, 0) // save msg base? (RArg0 still msg)
	b.AddIU(vcode.RArg0, vcode.RArg0, 4)
	b.Mov(vcode.RArg1, dst)
	b.MovI(vcode.RArg2, 256)
	b.Call("ash_copy")
	b.MovI(vcode.RRet, 0)
	b.Ret()
	ash := tb.sys.MustDownload(owner, b.MustAssemble(), Options{})
	sb, _ := tb.a2.BindVC(owner, 4, 8, 4096)
	ash.AttachVC(sb)

	payload := make([]byte, 260)
	payload[3] = 7 // slot 7
	for i := 0; i < 256; i++ {
		payload[4+i] = byte(i)
	}
	tb.a1.KernelSend(tb.a2.Addr(), 4, payload)
	tb.eng.Run()
	if ash.InvoluntaryFault != nil {
		t.Fatal(ash.InvoluntaryFault)
	}
	got := owner.AS.MustBytes(matrix.Base+7*256, 256)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("matrix slot byte %d = %d", i, got[i])
		}
	}
}

func TestASHDILPChecksumsWhileCopying(t *testing.T) {
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	dst := owner.AS.MustAlloc(4096, "appbuf")

	pl := pipe.NewList(1)
	_, _, err := pipe.Cksum(pl)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pipe.Compile(pl, pipe.Options{Output: true})
	if err != nil {
		t.Fatal(err)
	}
	engID := tb.sys.RegisterEngine(eng)

	b := vcode.NewBuilder("dilp-recv")
	b.MovI(vcode.RArg2, int32(dst.Base)) // careful with arg order below
	src := b.Temp()
	b.Mov(src, vcode.RArg0)
	n := b.Temp()
	b.Mov(n, vcode.RArg1)
	b.MovI(vcode.RArg0, int32(engID))
	b.Mov(vcode.RArg1, src)
	b.MovI(vcode.RArg2, int32(dst.Base))
	b.Mov(vcode.RArg3, n)
	b.Call("ash_dilp")
	// Stash the accumulator into the destination's last word via a store
	// so the test can see it... keep it simply: consume.
	b.MovI(vcode.RRet, 0)
	b.Ret()
	ash := tb.sys.MustDownload(owner, b.MustAssemble(), Options{})
	sb, _ := tb.a2.BindVC(owner, 4, 8, 4096)
	ash.AttachVC(sb)

	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	tb.a1.KernelSend(tb.a2.Addr(), 4, payload)
	tb.eng.Run()
	if ash.InvoluntaryFault != nil {
		t.Fatal(ash.InvoluntaryFault)
	}
	got := owner.AS.MustBytes(dst.Base, 64)
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("DILP copy mismatch at %d", i)
		}
	}
}

func TestFuncASHSandboxChargesMore(t *testing.T) {
	run := func(sandboxed bool) sim.Time {
		tb := newTestbed(t)
		owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
		f := tb.sys.NewFuncASH(owner, "fh", sandboxed, func(c *Ctx) aegis.Disposition {
			c.Straightline(50, 10)
			return aegis.DispConsumed
		})
		sb, _ := tb.a2.BindVC(owner, 4, 8, 4096)
		f.AttachVC(sb)
		tb.a1.KernelSend(tb.a2.Addr(), 4, []byte{1, 2, 3, 4})
		tb.eng.Run()
		return f.LastPathCost
	}
	unsafe := run(false)
	sandboxed := run(true)
	if sandboxed <= unsafe {
		t.Fatal("sandboxed FuncASH not charged more")
	}
	delta := sandboxed - unsafe
	// 2 timer arms (80) + prologue/epilogue (24) + 2*10 memops (20) = 124.
	if delta != 124 {
		t.Fatalf("sandbox delta = %d cycles, want 124", delta)
	}
}

func TestASHRunsWhenOwnerSuspended(t *testing.T) {
	// The headline property: the ASH handles the message at interrupt
	// time even though its application is not scheduled.
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {
		p.Compute(sim.Time(tb.k2.Prof.QuantumCycles) * 50)
	})
	// A competitor so the owner is genuinely descheduled sometimes.
	tb.k2.Spawn("other", func(p *aegis.Process) {
		p.Compute(sim.Time(tb.k2.Prof.QuantumCycles) * 50)
	})
	counter := owner.AS.MustAlloc(4096, "counter")
	ash := tb.sys.MustDownload(owner,
		incrementASH(counter.Base, func() (int, int) { return 0, 9 }), Options{})
	sb, _ := tb.a2.BindVC(owner, 9, 8, 4096)
	ash.AttachVC(sb)

	cb, _ := tb.a1.BindVC(nil, 9, 8, 4096)
	cb.InKernel = true
	var rtt sim.Time
	var sent sim.Time
	cb.InKernelRx = func(mc *aegis.MsgCtx) { rtt = mc.When() - sent }
	// Fire mid-simulation while both processes compute.
	tb.eng.Schedule(100000, func() {
		sent = tb.eng.Now()
		tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{0, 0, 0, 1})
	})
	tb.eng.RunUntil(100000 + 100*sim.Time(tb.k2.Prof.QuantumCycles))
	if rtt == 0 {
		t.Fatal("no reply")
	}
	us := tb.k1.Us(rtt)
	if us > 130 {
		t.Fatalf("RT with suspended owner = %.1f us — ASH waited for scheduling?", us)
	}
}

func TestLivelockDefenseThrottlesFlood(t *testing.T) {
	// Section VI-4: under a flood, the system refuses eager handler
	// execution beyond the process's share; excess messages take the
	// (lazy, fair) user-level path instead of starving everything else.
	tb := newTestbed(t)
	tb.sys.RatePerTick = 4
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	counter := owner.AS.MustAlloc(4096, "counter")
	ash := tb.sys.MustDownload(owner,
		incrementASH(counter.Base, func() (int, int) { return 0, 9 }), Options{})
	sb, _ := tb.a2.BindVC(owner, 9, 64, 4096)
	ash.AttachVC(sb)

	// Flood: 20 messages within one clock tick.
	for i := 0; i < 20; i++ {
		tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{0, 0, 0, 1})
	}
	tb.eng.RunUntil(sim.Time(tb.k2.Prof.ClockTickCycles) / 2)
	if ash.Invocations != 4 {
		t.Fatalf("handler ran %d times in one tick, limit 4", ash.Invocations)
	}
	if ash.Throttled != 16 {
		t.Fatalf("throttled %d, want 16", ash.Throttled)
	}
	if sb.Ring.Len() != 16 {
		t.Fatalf("ring has %d fallback messages, want 16", sb.Ring.Len())
	}

	// Next tick: the budget refreshes.
	tb.eng.RunUntil(sim.Time(tb.k2.Prof.ClockTickCycles) + 1000)
	tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{0, 0, 0, 1})
	tb.eng.Run()
	if ash.Invocations != 5 {
		t.Fatalf("budget did not refresh: %d invocations", ash.Invocations)
	}
}
