package core

import (
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/sandbox"
	"ashs/internal/sim"
)

// TestQuotaThrottlesTenantASH: a tenant over its windowed cycle budget has
// eager execution refused — its messages degrade to the user-level path
// (ring delivery), nothing is aborted, and the budget refreshes when the
// window rolls.
func TestQuotaThrottlesTenantASH(t *testing.T) {
	tb := newTestbed(t)
	window := sim.Time(tb.k2.Prof.ClockTickCycles)
	// Budget of 1 cycle: the first run is admitted (nothing spent yet),
	// its real cost exhausts the window, every later arrival is refused.
	tb.sys.Quota = sandbox.NewQuotaLedger(window, 1)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	counter := owner.AS.MustAlloc(4096, "counter")
	ash := tb.sys.MustDownload(owner,
		incrementASH(counter.Base, func() (int, int) { return 0, 9 }), Options{})
	ash.Tenant = "t0"
	sb, _ := tb.a2.BindVC(owner, 9, 64, 4096)
	ash.AttachVC(sb)

	for i := 0; i < 6; i++ {
		tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{0, 0, 0, 1})
	}
	tb.eng.RunUntil(window / 2)
	if ash.Invocations != 1 {
		t.Fatalf("tenant ran %d handlers on a 1-cycle budget, want 1", ash.Invocations)
	}
	if ash.QuotaThrottled != 5 || tb.sys.QuotaThrottled != 5 {
		t.Fatalf("quota throttled %d/%d, want 5/5", ash.QuotaThrottled, tb.sys.QuotaThrottled)
	}
	if sb.Ring.Len() != 5 {
		t.Fatalf("ring has %d fallback messages, want 5 (throttled, not lost)", sb.Ring.Len())
	}

	// Next window: the allowance refreshes.
	tb.eng.RunUntil(window + 1000)
	tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{0, 0, 0, 1})
	tb.eng.Run()
	if ash.Invocations != 2 {
		t.Fatalf("budget did not refresh: %d invocations", ash.Invocations)
	}
}

// TestQuotaIsolatesTenants: one tenant exhausting its budget does not
// throttle another on the same host, and unlabeled handlers bypass the
// ledger entirely.
func TestQuotaIsolatesTenants(t *testing.T) {
	tb := newTestbed(t)
	tb.sys.Quota = sandbox.NewQuotaLedger(sim.Time(tb.k2.Prof.ClockTickCycles), 200)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})

	mk := func(tenant string, vc int) *FuncASH {
		f := tb.sys.NewFuncASH(owner, "fh-"+tenant, false, func(c *Ctx) aegis.Disposition {
			c.Straightline(150, 0)
			return aegis.DispConsumed
		})
		f.Tenant = tenant
		b, err := tb.a2.BindVC(owner, vc, 16, 4096)
		if err != nil {
			t.Fatal(err)
		}
		f.AttachVC(b)
		return f
	}
	greedy := mk("greedy", 9)
	quiet := mk("quiet", 10)
	plain := mk("", 11) // unlabeled: not metered

	for i := 0; i < 4; i++ {
		tb.a1.KernelSend(tb.a2.Addr(), 9, []byte{1})
	}
	tb.a1.KernelSend(tb.a2.Addr(), 10, []byte{1})
	for i := 0; i < 4; i++ {
		tb.a1.KernelSend(tb.a2.Addr(), 11, []byte{1})
	}
	tb.eng.RunUntil(sim.Time(tb.k2.Prof.ClockTickCycles) / 2)

	// 150 cycles/run against a 200-cycle window: run 1 admitted (0 spent),
	// run 2 admitted (150 < 200), run 3+ refused.
	if greedy.Invocations != 2 || greedy.QuotaThrottled != 2 {
		t.Fatalf("greedy ran %d / throttled %d, want 2/2",
			greedy.Invocations, greedy.QuotaThrottled)
	}
	if quiet.Invocations != 1 || quiet.QuotaThrottled != 0 {
		t.Fatalf("quiet tenant affected by greedy's spend (%d/%d)",
			quiet.Invocations, quiet.QuotaThrottled)
	}
	if plain.Invocations != 4 || plain.QuotaThrottled != 0 {
		t.Fatalf("unlabeled handler metered (%d/%d)",
			plain.Invocations, plain.QuotaThrottled)
	}
}
