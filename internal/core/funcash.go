package core

import (
	"ashs/internal/aegis"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// FuncASH is a handler whose logic is expressed as a Go function with
// explicit cost accounting, rather than as vcode object code. The paper's
// handlers are C compiled to machine code; our vcode ASHs model that
// pipeline end-to-end for the instruction-counting experiments, while
// FuncASH is the pragmatic form used for rich protocol fast paths (the TCP
// receive handler of Section V-B), where writing hundreds of lines of IR
// would obscure the protocol logic without changing the measured costs.
//
// The cost model is identical: a sandboxed FuncASH pays the watchdog-timer
// arms, the sandbox entry/exit sequence, and two extra instructions per
// declared memory operation — exactly what the instrumentation pass adds
// to vcode handlers.
type FuncASH struct {
	Name      string
	Owner     *aegis.Process
	Sandboxed bool
	Fn        func(c *Ctx) aegis.Disposition

	// Tenant labels this handler for quota accounting (see System.Quota).
	// Empty opts out: the handler is never admitted against the ledger.
	Tenant string

	sys    *System
	detach []func() // de-installs this handler from its bindings

	// Statistics.
	Invocations    uint64
	ForcedAborts   uint64   // involuntary aborts injected by the fault plane
	QuotaThrottled uint64   // executions refused by the tenant quota
	Tripped        bool     // de-installed by the abort trip threshold
	LastPathCost   sim.Time // receive-path cycles accumulated when the last invocation finished
}

// NewFuncASH installs a Go-native handler. sandboxed selects whether the
// handler is charged sandboxing costs (Table V/VI compare both).
func (s *System) NewFuncASH(owner *aegis.Process, name string, sandboxed bool, fn func(c *Ctx) aegis.Disposition) *FuncASH {
	return &FuncASH{Name: name, Owner: owner, Sandboxed: sandboxed, Fn: fn, sys: s}
}

// AttachVC installs the handler on an AN2 virtual-circuit binding.
func (f *FuncASH) AttachVC(b *aegis.VCBinding) {
	b.Handler = f
	f.OnTrip(func() {
		if b.Handler == aegis.MsgHandler(f) {
			b.Handler = nil
		}
	})
}

// AttachEth installs the handler on an Ethernet filter binding.
func (f *FuncASH) AttachEth(b *aegis.EthBinding) {
	b.Handler = f
	f.OnTrip(func() {
		if b.Handler == aegis.MsgHandler(f) {
			b.Handler = nil
		}
	})
}

// OnTrip registers a de-installation action run if the handler trips the
// abort threshold. Callers that install the handler through an endpoint
// abstraction (the TCP fast path) register their own un-install here.
func (f *FuncASH) OnTrip(fn func()) { f.detach = append(f.detach, fn) }

// HandleMsg implements aegis.MsgHandler.
func (f *FuncASH) HandleMsg(mc *aegis.MsgCtx) aegis.Disposition {
	if q := f.sys.Quota; q != nil && f.Tenant != "" {
		if !q.Admit(f.Tenant, f.sys.K.Now()) {
			// Tenant over its cycle budget this window: refuse eager
			// execution, let the message take the lazy user-level path.
			f.QuotaThrottled++
			f.sys.QuotaThrottled++
			mc.Charge(2) // the refusal check itself
			if o := f.sys.K.Obs; o.Enabled() {
				o.Instant(f.sys.K.Name, "ash system", "ash",
					"quota throttled "+f.Name, mc.When())
				o.Inc("ash/quota_throttled")
			}
			f.LastPathCost = mc.Cost()
			return aegis.DispToUser
		}
	}
	f.Invocations++
	prof := f.sys.K.Prof
	if inject := f.sys.InjectAbort; inject != nil {
		if mode, after := inject(f.Name); mode != AbortNone {
			// The watchdog (or budget check) fires mid-handler. Fn never
			// ran its commit, so there is nothing to roll back beyond the
			// partial cycles already burned; the message re-vectors to the
			// default user-level path, delivered exactly once.
			if f.Sandboxed {
				mc.Charge(sim.Time(prof.TimerArmCycles + f.sys.Policy.PrologueLen))
			}
			mc.Charge(sim.Time(after))
			f.ForcedAborts++
			f.sys.InvoluntaryAborts++
			f.sys.AbortFallbacks++
			if th := f.sys.AbortTripThreshold; th > 0 && !f.Tripped && f.ForcedAborts >= uint64(th) {
				f.Tripped = true
				f.sys.TrippedHandlers++
				for _, d := range f.detach {
					d()
				}
			}
			f.LastPathCost = mc.Cost()
			return aegis.DispToUser
		}
	}
	c0 := mc.Cost()
	if f.Sandboxed {
		// Watchdog arm + sandbox entry sequence.
		mc.Charge(sim.Time(prof.TimerArmCycles + f.sys.Policy.PrologueLen))
	}
	c := &Ctx{mc: mc, sys: f.sys, owner: f.Owner, sandboxed: f.Sandboxed}
	d := f.Fn(c)
	if f.Sandboxed {
		// Exit sequence + watchdog clear.
		mc.Charge(sim.Time(f.sys.Policy.EpilogueLen + prof.TimerArmCycles))
	}
	if q := f.sys.Quota; q != nil && f.Tenant != "" {
		// Debit the handler's declared costs (everything charged to the
		// receive path by this invocation).
		q.Charge(f.Tenant, mc.Cost()-c0)
	}
	f.LastPathCost = mc.Cost()
	return d
}

// Ctx is the execution environment of a Go-native handler (or upcall): it
// charges modeled costs to the message's receive path and exposes the
// kernel services an ASH may use.
type Ctx struct {
	mc        *aegis.MsgCtx
	sys       *System
	owner     *aegis.Process
	sandboxed bool
	userLevel bool
}

// UpcallCtx wraps a message context for an upcall handler body, so the
// same protocol fast path can run as either an ASH or an upcall (user
// level: no sandboxing multiplier, sends pay the system call).
func (s *System) UpcallCtx(owner *aegis.Process, mc *aegis.MsgCtx) *Ctx {
	return &Ctx{mc: mc, sys: s, owner: owner, userLevel: true}
}

// Entry returns the ring entry describing where the message landed.
func (c *Ctx) Entry() aegis.RingEntry { return c.mc.Entry }

// Data returns the raw message bytes. Reading through Data is "free";
// handlers declare their modeled access costs via Straightline/Load/Store.
func (c *Ctx) Data() []byte { return c.mc.Data() }

// Striped reports whether the message sits in an Ethernet buffer in the
// striping DMA's alternating data/pad layout (see RawData).
func (c *Ctx) Striped() bool { return c.mc.Striped }

// RawData returns the message buffer as the device laid it out; for
// striped arrivals index it through aegis.StripedIndex.
func (c *Ctx) RawData() []byte { return c.mc.RawData() }

// Charge adds raw cycles.
func (c *Ctx) Charge(cycles sim.Time) { c.mc.Charge(cycles) }

// Straightline models a run of handler code: insns instructions of which
// memops reference memory. Sandboxed handlers pay 2 extra instructions per
// memory operation (the SFI staging + check).
func (c *Ctx) Straightline(insns, memops int) {
	if c.sandboxed {
		insns += 2 * memops
	}
	c.mc.Charge(sim.Time(insns))
}

// Load32 reads a word from the owner's address space with cache costing.
func (c *Ctx) Load32(addr uint32) (uint32, error) {
	c.chargeMemOp()
	c.mc.Charge(c.sys.K.Cache.Load(addr))
	return c.owner.AS.Load32(addr)
}

// Store32 writes a word to the owner's address space with cache costing.
func (c *Ctx) Store32(addr uint32, v uint32) error {
	c.chargeMemOp()
	c.mc.Charge(c.sys.K.Cache.Store(addr))
	return c.owner.AS.Store32(addr, v)
}

func (c *Ctx) chargeMemOp() {
	if c.sandboxed {
		c.mc.Charge(2)
	}
}

// Send transmits a message from the handler (kernel level for ASHs, via
// the system call interface for upcalls — the context knows which).
func (c *Ctx) Send(dst, vc int, data []byte) { c.mc.Send(dst, vc, data) }

// TrustedCopy is the aggregated-check bulk copy.
func (c *Ctx) TrustedCopy(src, dst uint32, n int) error {
	c.mc.Charge(12)
	m := vcode.NewMachine(c.sys.K.Prof, c.sys.K.Mem)
	m.Cache = c.sys.K.Cache
	a := &ASH{Owner: c.owner, sys: c.sys}
	if err := c.sys.trustedCopy(m, a, src, dst, n); err != nil {
		return err
	}
	c.mc.Charge(m.Cycles)
	return nil
}

// DILP runs a registered transfer engine over [src, src+n) -> dst,
// returning the engine's first persistent register (e.g. the checksum
// accumulator). Checks are aggregated; per-word costs come from the
// engine's generated loop.
func (c *Ctx) DILP(engineID int, src, dst uint32, n int) (uint32, error) {
	if engineID < 0 || engineID >= len(c.sys.engines) {
		return 0, &vcode.Fault{Kind: vcode.FaultBadCall, Msg: "no such engine"}
	}
	re := c.sys.engines[engineID]
	c.mc.Charge(12)
	for _, r := range re.eng.Prog.Persistent {
		re.machine.Regs[r] = 0
	}
	cycles, f := re.eng.Run(re.machine, src, dst, n)
	c.mc.Charge(cycles)
	if f != nil {
		return 0, f
	}
	var acc uint32
	if pr := re.eng.Prog.Persistent; len(pr) > 0 {
		acc = re.machine.Regs[pr[0]]
	}
	return acc, nil
}

// When reports the virtual time at which this handler's work completes.
func (c *Ctx) When() sim.Time { return c.mc.When() }

// Doorbell posts a zero-length ring notification so the user-level
// library re-examines the shared state this handler updated.
func (c *Ctx) Doorbell() { c.mc.Doorbell() }
