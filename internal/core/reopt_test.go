package core

import (
	"encoding/binary"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/obs"
	"ashs/internal/vcode"
)

// shardASH mirrors the crl shard-counter shape (core cannot import crl):
// a counted loop whose divide takes its modulus from the message. The
// static optimizer must keep the per-iteration zero check — the divisor's
// range is unknown until run time — so this is exactly the handler the
// profile-guided pass exists for.
func shardASH(bucketBase uint32) *vcode.Program {
	b := vcode.NewBuilder("shard-counter")
	msg, bkt := b.Temp(), b.Temp()
	mod, i, n, v, off, c := b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Mov(msg, vcode.RArg0)
	b.MovI(bkt, int32(bucketBase))
	b.Ld32(mod, msg, 0) // modulus from the message: statically opaque
	b.MovI(i, 4)
	b.MovI(n, 36)
	top := b.NewLabel()
	b.Bind(top)
	b.Ld32X(v, msg, i)
	b.RemU(v, v, mod)
	b.SllI(off, v, 2)
	b.Ld32X(c, bkt, off)
	b.AddIU(c, c, 1)
	b.St32X(bkt, off, c)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// shardMsg is one message for shardASH: modulus 5 then eight values.
// Network byte order — vcode memory is big-endian.
func shardMsg() []byte {
	msg := make([]byte, 36)
	binary.BigEndian.PutUint32(msg, 5)
	for w := 0; w < 8; w++ {
		binary.BigEndian.PutUint32(msg[4+w*4:], uint32(w*3+1))
	}
	return msg
}

// TestReoptimizeEndToEnd closes the DCG loop through the full system:
// download with profiling, run real traffic, export the measured profile,
// hot-swap via Reoptimize, and verify the reinstalled handler is strictly
// cheaper on the same message with identical semantics.
func TestReoptimizeEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	tb.k2.Obs = obs.New(float64(tb.k2.Prof.MHz))
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	seg := owner.AS.MustAlloc(4096, "buckets")

	ash := tb.sys.MustDownload(owner, shardASH(seg.Base),
		Options{OptimizeSFI: true, Profile: true})
	sb, err := tb.a2.BindVC(owner, 9, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ash.AttachVC(sb)

	send := func(k int) {
		for j := 0; j < k; j++ {
			tb.a1.KernelSend(tb.a2.Addr(), 9, shardMsg())
			tb.eng.Run()
		}
	}

	const warmup = 6
	send(warmup)
	if ash.InvoluntaryFault != nil {
		t.Fatal(ash.InvoluntaryFault)
	}
	pre := ash.LastInsns()

	prof := ash.ExportProfile()
	if prof == nil || prof.Invocations != warmup {
		t.Fatalf("profile = %+v, want %d invocations", prof, warmup)
	}
	var hot bool
	for pc := range prof.Counts {
		if prof.Hot(pc) {
			hot = true
		}
	}
	if !hot {
		t.Fatal("no instruction measured hot after warmup")
	}
	if _, ok := tb.k2.Obs.Profile("shard-counter"); !ok {
		t.Fatal("ExportProfile did not record on the obs plane")
	}

	if h := ash.sandbox.DivChecksHoisted; h != 0 {
		t.Fatalf("static build hoisted %d divide checks without a profile", h)
	}
	if _, err := tb.sys.Reoptimize(ash); err != nil {
		t.Fatal(err)
	}
	if ash.sandbox.Policy.Profile == nil {
		t.Fatal("reoptimized build lost its profile")
	}
	if ash.sandbox.DivChecksHoisted == 0 {
		t.Fatal("measured-hot divide check was not hoisted")
	}

	send(1)
	if ash.InvoluntaryFault != nil {
		t.Fatal(ash.InvoluntaryFault)
	}
	post := ash.LastInsns()
	if post >= pre {
		t.Fatalf("reoptimized run = %d insns, static-opt run = %d", post, pre)
	}

	// Semantics preserved across the swap: every message increments the
	// five buckets by the same histogram (8 increments per message).
	var total uint32
	for k := uint32(0); k < 5; k++ {
		v, err := owner.AS.Load32(seg.Base + 4*k)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if want := uint32((warmup + 1) * 8); total != want {
		t.Fatalf("bucket total = %d, want %d", total, want)
	}
}

func TestReoptimizeRefusals(t *testing.T) {
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	seg := owner.AS.MustAlloc(4096, "buckets")

	unsafe := tb.sys.MustDownload(owner, shardASH(seg.Base),
		Options{Unsafe: true, Profile: true})
	if _, err := tb.sys.Reoptimize(unsafe); err == nil {
		t.Fatal("reoptimized an unsafe handler")
	}

	unprofiled := tb.sys.MustDownload(owner, shardASH(seg.Base),
		Options{OptimizeSFI: true})
	if _, err := tb.sys.Reoptimize(unprofiled); err == nil {
		t.Fatal("reoptimized a handler downloaded without profiling")
	}
	if unprofiled.ExportProfile() != nil {
		t.Fatal("unprofiled handler exported a profile")
	}
	tb.eng.Run()
}

// chainValidateASH consumes messages whose first word matches magic and
// voluntarily aborts the rest — the head of the sequential chain the
// fused download is measured against.
func chainValidateASH(magic uint32) *vcode.Program {
	b := vcode.NewBuilder("chain-validate")
	v, want := b.Temp(), b.Temp()
	b.Ld32(v, vcode.RArg0, 0)
	b.MovI(want, int32(magic))
	bad := b.NewLabel()
	b.Bne(v, want, bad)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	b.Bind(bad)
	b.MovI(vcode.RRet, 1)
	b.Ret()
	return b.MustAssemble()
}

func chainBumpASH(addr uint32) *vcode.Program {
	b := vcode.NewBuilder("chain-bump")
	c, v := b.Temp(), b.Temp()
	b.MovI(c, int32(addr))
	b.Ld32(v, c, 0)
	b.AddIU(v, v, 1)
	b.St32(c, 0, v)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// TestChainDisposition: the interpreted chain matches the fusion seam
// semantics — a member that consumes passes control on, the first member
// that does not ends the chain with its disposition (here: to-user).
func TestChainDisposition(t *testing.T) {
	const magic = 0x41534821
	tb := newTestbed(t)
	owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
	seg := owner.AS.MustAlloc(4096, "counter")

	head := tb.sys.MustDownload(owner, chainValidateASH(magic), Options{})
	tail := tb.sys.MustDownload(owner, chainBumpASH(seg.Base), Options{})
	sb, err := tb.a2.BindVC(owner, 7, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sb.Handler = &Chain{Members: []*ASH{head, tail}}

	good := binary.BigEndian.AppendUint32(nil, magic)
	good = append(good, 0, 0, 0, 9)
	tb.a1.KernelSend(tb.a2.Addr(), 7, good)
	tb.eng.Run()
	if v, _ := owner.AS.Load32(seg.Base); v != 1 {
		t.Fatalf("counter = %d after accepted message, want 1", v)
	}
	if n := sb.Ring.Len(); n != 0 {
		t.Fatalf("ring length = %d after consumed chain, want 0", n)
	}

	bad := binary.BigEndian.AppendUint32(nil, 0x0badf00d)
	bad = append(bad, 0, 0, 0, 9)
	tb.a1.KernelSend(tb.a2.Addr(), 7, bad)
	tb.eng.Run()
	if v, _ := owner.AS.Load32(seg.Base); v != 1 {
		t.Fatalf("counter = %d after rejected message, want 1 (follower must not run)", v)
	}
	if n := sb.Ring.Len(); n != 1 {
		t.Fatalf("ring length = %d after rejected message, want 1 (to user)", n)
	}

	if got := head.Invocations; got != 2 {
		t.Fatalf("head ran %d times, want 2", got)
	}
	if got := tail.Invocations; got != 1 {
		t.Fatalf("tail ran %d times, want 1", got)
	}
}
