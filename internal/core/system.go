// Package core implements the paper's contribution: application-specific
// safe message handlers (ASHs).
//
// An ASH is user-written code, downloaded into the kernel, that runs in
// the addressing context of its application when a message for that
// application arrives. The ASH system (one System per host):
//
//   - accepts handler object code (vcode programs), verifies and sandboxes
//     it (package sandbox), and installs it, handing back an identifier
//     (Section II: "downloads it into the operating system, handing back
//     an identifier to the user for later reference");
//   - associates installed handlers with demultiplexing points (AN2
//     virtual circuits or DPF filters on the Ethernet);
//   - invokes handlers after demultiplexing, with direct dynamic message
//     vectoring (handlers place message bytes anywhere in their
//     application's address space), message initiation (handlers send
//     replies from the kernel), and control initiation (general
//     computation);
//   - integrates data manipulations through dynamic ILP (package pipe):
//     compiled transfer engines are registered with the system and run via
//     the trusted ash_dilp entry point with checks aggregated at initiation;
//   - aborts handlers involuntarily on wild references, divide-by-zero, or
//     exhausted time budgets, and supports voluntary aborts (the handler
//     returns the message to the kernel to be handled normally).
package core

import (
	"fmt"

	"ashs/internal/aegis"
	"ashs/internal/pipe"
	"ashs/internal/sandbox"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// ID names an installed ASH.
type ID int

// System is the per-host ASH system.
type System struct {
	K      *aegis.Kernel
	Policy *sandbox.Policy

	ashes   map[ID]*ASH
	engines []*registeredEngine
	nextID  ID

	// RatePerTick bounds how many handler executions each ASH gets per
	// clock tick; beyond it, messages fall back to the (lazy, fair)
	// user-level path. This is the receive-livelock defense of
	// Section VI-4: "the operating system must track the number of ASHs
	// recently executed for each process and refuse to execute any more
	// for processes receiving more than their share of messages" —
	// handlers are "fundamentally an eager technique", disabled under
	// high load. Zero means unlimited.
	RatePerTick int

	// Quota, when set, meters eager handler execution against per-tenant
	// windowed cycle budgets (see sandbox.QuotaLedger). Handlers carrying
	// a Tenant label are admitted against the ledger before running and
	// debited their exact SFI-accounted cycles after; over-budget tenants
	// are throttled, not aborted — their messages degrade to the lazy
	// user-level path, where processing is paid from the tenant's own
	// scheduler quantum. Nil disables metering entirely.
	Quota *sandbox.QuotaLedger

	// QuotaThrottled counts handler executions refused by the quota
	// ledger (across all tenants and handlers on this host).
	QuotaThrottled uint64

	// InjectAbort, when set, is consulted before each handler run so a
	// fault plane can force involuntary aborts. For AbortBudget the value
	// is an instruction allowance; for AbortTimer a premature cycle limit
	// standing in for the two-tick watchdog firing mid-handler. The abort
	// then takes the genuine involuntary-abort path: rollback, fallback
	// delivery, trip accounting.
	InjectAbort func(handler string) (AbortMode, int64)

	// AbortTripThreshold de-installs a handler from all its bindings once
	// its involuntary aborts reach the threshold — a repeatedly faulting
	// handler degrades permanently to the default user-level path rather
	// than burning kernel time aborting forever. Zero disables tripping.
	AbortTripThreshold int

	// InvoluntaryAborts counts handler executions terminated by the
	// system. AbortFallbacks counts the messages those aborted executions
	// re-vectored onto the default user-delivery path (the recovery half
	// of the abort discipline); TrippedHandlers counts de-installations.
	InvoluntaryAborts uint64
	AbortFallbacks    uint64
	TrippedHandlers   uint64
}

// AbortMode selects how an injected involuntary abort manifests.
type AbortMode int

const (
	// AbortNone injects nothing.
	AbortNone AbortMode = iota
	// AbortBudget forces instruction-budget exhaustion mid-handler.
	AbortBudget
	// AbortTimer forces the two-tick watchdog to expire mid-handler.
	AbortTimer
)

type registeredEngine struct {
	eng     *pipe.Engine
	machine *vcode.Machine // holds the engine's persistent registers
}

// NewSystem creates the ASH system for host k.
func NewSystem(k *aegis.Kernel) *System {
	return &System{K: k, Policy: sandbox.DefaultPolicy(), ashes: map[ID]*ASH{}}
}

// Options configures a download.
type Options struct {
	// Unsafe skips sandboxing (kernel-trusted code, used only to measure
	// sandboxing overhead as the paper does in Table V).
	Unsafe bool
	// Budget bounds execution in software-check mode; ignored in timer
	// mode, where the two-clock-tick watchdog governs.
	Budget int64
	// OptimizeSFI turns on the static-analysis check optimizer for this
	// download (check elision, loop hoisting, budget coarsening); the
	// system policy's other knobs are kept.
	OptimizeSFI bool
	// Profile attaches a per-instruction execution counter to the handler
	// so its runs accumulate the profile the DCG loop feeds back into
	// re-optimization (System.Reoptimize). Costs one counter bump per
	// executed instruction, so it stays off on measurement hot paths.
	Profile bool
}

// ASH is an installed handler.
type ASH struct {
	ID     ID
	Name   string
	Owner  *aegis.Process
	Unsafe bool

	// Tenant labels this handler for quota accounting (see System.Quota).
	// Empty opts out: the handler is never admitted against the ledger.
	Tenant string

	sys     *System
	sandbox *sandbox.Program // nil when Unsafe
	code    *vcode.Program
	machine *vcode.Machine
	journal *vcode.Journal // undo log for involuntary-abort rollback
	budget  int64
	curMC   *aegis.MsgCtx // live only during HandleMsg
	detach  []func()      // de-installs this handler from its bindings

	// Handler ABI: on entry RArg0 = message address, RArg1 = message
	// length, RArg2 = VC, RArg3 = source address. On exit RRet = 0 to
	// consume the message, nonzero to return it to the kernel (voluntary
	// abort to the user-level path).

	// Rate limiting (Section VI-4).
	tickSeen  sim.Time
	tickCount int

	// Statistics.
	Invocations      uint64
	VoluntaryAborts  uint64
	InvolAborts      uint64       // involuntary aborts of this handler
	Throttled        uint64       // executions refused by the livelock defense
	QuotaThrottled   uint64       // executions refused by the tenant quota
	InvoluntaryFault *vcode.Fault // last involuntary abort, for diagnosis
	Tripped          bool         // de-installed by the abort trip threshold

	// DynamicInsns accumulates executed instructions (for the paper's
	// instruction-count comparisons).
	DynamicInsns int64
}

// Download verifies, sandboxes, and installs prog for owner, returning the
// handler. Unsafe handlers are still verified (they must be *wrong* only
// in cost, never in kind) but receive no instrumentation.
func (s *System) Download(owner *aegis.Process, prog *vcode.Program, opts Options) (*ASH, error) {
	if owner == nil {
		return nil, fmt.Errorf("core: ASH needs an owning process (addressing context)")
	}
	a := &ASH{
		ID: s.nextID, Name: prog.Name, Owner: owner, Unsafe: opts.Unsafe,
		sys: s, budget: opts.Budget,
	}
	if opts.Unsafe {
		if err := sandbox.Verify(prog, s.Policy); err != nil {
			return nil, err
		}
		a.code = prog.Clone()
	} else {
		pol := s.Policy
		if opts.OptimizeSFI && !pol.Optimize {
			opt := *pol
			opt.Optimize = true
			pol = &opt
		}
		sp, err := sandbox.Sandbox(prog, pol)
		if err != nil {
			return nil, err
		}
		a.sandbox = sp
		a.code = sp.Code
	}
	// Every store the handler performs goes through an undo journal so an
	// involuntary abort can roll the owner's memory back bit-for-bit.
	a.journal = vcode.NewJournal(owner.AS)
	a.journal.Raw = func(addr uint32, n int) ([]byte, error) {
		return owner.AS.Bytes(addr, n)
	}
	a.machine = vcode.NewMachine(s.K.Prof, a.journal)
	a.machine.Cache = s.K.Cache
	a.machine.Syms = s.syscalls(a)
	if a.sandbox != nil {
		a.sandbox.Attach(a.machine, 0, ^uint32(0), opts.Budget)
		// Real addressing enforcement is the owner's address space (the
		// machine's Memory); the SFI instructions charge the check costs.
	}
	if opts.Profile {
		a.machine.PCCounts = make([]uint64, len(a.code.Insns))
	}
	s.nextID++
	s.ashes[a.ID] = a
	if o := s.K.Obs; o.Enabled() {
		o.Instant(s.K.Name, "ash system", "ash", "download+verify "+a.Name,
			s.K.Now())
		o.Inc("ash/downloads")
	}
	return a, nil
}

// MustDownload is Download that panics on error.
func (s *System) MustDownload(owner *aegis.Process, prog *vcode.Program, opts Options) *ASH {
	a, err := s.Download(owner, prog, opts)
	if err != nil {
		panic(err)
	}
	return a
}

// RegisterEngine installs a compiled DILP transfer engine and returns the
// id handlers pass to ash_dilp. The engine's persistent registers (e.g.
// checksum accumulators) live with the registration.
func (s *System) RegisterEngine(e *pipe.Engine) int {
	m := vcode.NewMachine(s.K.Prof, s.K.Mem)
	m.Cache = s.K.Cache
	s.engines = append(s.engines, &registeredEngine{eng: e, machine: m})
	return len(s.engines) - 1
}

// AttachVC installs the handler on an AN2 virtual-circuit binding.
func (a *ASH) AttachVC(b *aegis.VCBinding) {
	b.Handler = a
	a.detach = append(a.detach, func() {
		if b.Handler == aegis.MsgHandler(a) {
			b.Handler = nil
		}
	})
}

// AttachEth installs the handler on an Ethernet filter binding.
func (a *ASH) AttachEth(b *aegis.EthBinding) {
	b.Handler = a
	a.detach = append(a.detach, func() {
		if b.Handler == aegis.MsgHandler(a) {
			b.Handler = nil
		}
	})
}

// noteInvoluntaryAbort does the shared abort bookkeeping: counters, the
// fallback-delivery count, and the trip threshold that de-installs a
// repeatedly faulting handler.
func (a *ASH) noteInvoluntaryAbort() {
	a.InvolAborts++
	a.sys.InvoluntaryAborts++
	a.sys.AbortFallbacks++
	if th := a.sys.AbortTripThreshold; th > 0 && !a.Tripped && a.InvolAborts >= uint64(th) {
		a.Tripped = true
		a.sys.TrippedHandlers++
		for _, d := range a.detach {
			d()
		}
	}
}

// HandleMsg implements aegis.MsgHandler: the kernel invokes the ASH after
// demultiplexing.
func (a *ASH) HandleMsg(mc *aegis.MsgCtx) aegis.Disposition {
	prof := a.sys.K.Prof
	if limit := a.sys.RatePerTick; limit > 0 {
		tick := a.sys.K.Now() / sim.Time(prof.ClockTickCycles)
		if tick != a.tickSeen {
			a.tickSeen = tick
			a.tickCount = 0
		}
		if a.tickCount >= limit {
			// Over its share this tick: refuse eager execution, let the
			// message take the lazy user-level path.
			a.Throttled++
			mc.Charge(2) // the refusal check itself
			if o := a.sys.K.Obs; o.Enabled() {
				o.Instant(a.sys.K.Name, "ash system", "ash",
					"throttled "+a.Name, mc.When())
				o.Inc("ash/throttled")
			}
			return aegis.DispToUser
		}
		a.tickCount++
	}
	if q := a.sys.Quota; q != nil && a.Tenant != "" {
		if !q.Admit(a.Tenant, a.sys.K.Now()) {
			// Tenant over its cycle budget this window: refuse eager
			// execution, let the message take the lazy user-level path.
			a.QuotaThrottled++
			a.sys.QuotaThrottled++
			mc.Charge(2) // the refusal check itself
			if o := a.sys.K.Obs; o.Enabled() {
				o.Instant(a.sys.K.Name, "ash system", "ash",
					"quota throttled "+a.Name, mc.When())
				o.Inc("ash/quota_throttled")
			}
			return aegis.DispToUser
		}
	}
	a.Invocations++
	invokeStart := mc.When()
	a.sys.K.Obs.Inc("ash/invocations")
	m := a.machine
	a.curMC = mc

	// Time bounding (Section III-B3) is orthogonal to memory protection:
	// the watchdog timer is armed for every safe handler except under the
	// software-budget strategy, whose inserted checks replace it
	// ("systems with timers can be exploited to remove all software
	// checks" — and vice versa).
	useTimer := !a.Unsafe && (a.sandbox == nil || a.sandbox.Policy.Budget != sandbox.BudgetSoftware)
	if useTimer {
		mc.Charge(sim.Time(prof.TimerArmCycles))
		m.CycleLimit = 2 * sim.Time(prof.ClockTickCycles)
	} else {
		m.CycleLimit = 0
	}

	// Snapshot for rollback: persistent registers by value (taken before
	// the argument registers are loaded, so an aborted invocation leaves
	// the register file exactly as the previous one did), memory via the
	// undo journal.
	regs := m.Regs
	a.journal.Reset()

	m.Regs[vcode.RArg0] = mc.Entry.Addr
	m.Regs[vcode.RArg1] = uint32(mc.Entry.Len)
	m.Regs[vcode.RArg2] = uint32(mc.Entry.VC)
	m.Regs[vcode.RArg3] = uint32(mc.Entry.Src)
	savedInsnBudget, savedCycleLimit := m.InsnBudget, m.CycleLimit
	if inject := a.sys.InjectAbort; inject != nil {
		switch mode, after := inject(a.Name); mode {
		case AbortBudget:
			m.InsnBudget = after
		case AbortTimer:
			m.CycleLimit = sim.Time(after)
		}
	}

	fault := m.Run(a.code)
	m.InsnBudget, m.CycleLimit = savedInsnBudget, savedCycleLimit
	mc.Charge(m.Cycles)
	if q := a.sys.Quota; q != nil && a.Tenant != "" {
		// Debit the exact executed cycles — aborted runs burned them too.
		q.Charge(a.Tenant, m.Cycles)
	}
	a.DynamicInsns += m.Insns
	if useTimer {
		mc.Charge(sim.Time(prof.TimerArmCycles)) // clear the watchdog
	}
	a.curMC = nil

	if fault != nil {
		// Involuntary abort: the system protects itself; the application
		// "may no longer operate correctly". Its memory and the handler's
		// persistent registers roll back to the pre-invocation state, and
		// the message falls back to the normal user-level path so the
		// application still observes it — delivered exactly once, by the
		// demultiplexor's default action.
		a.journal.Undo()
		m.Regs = regs
		a.InvoluntaryFault = fault
		a.noteInvoluntaryAbort()
		if o := a.sys.K.Obs; o.Enabled() {
			o.Span(a.sys.K.Name, "ash system", "ash", "ash "+a.Name,
				invokeStart, mc.When()-invokeStart)
			o.Instant(a.sys.K.Name, "ash system", "ash",
				"involuntary abort "+a.Name, mc.When())
			o.Inc("ash/aborts_involuntary")
		}
		return aegis.DispToUser
	}
	if o := a.sys.K.Obs; o.Enabled() {
		o.Span(a.sys.K.Name, "ash system", "ash", "ash "+a.Name,
			invokeStart, mc.When()-invokeStart)
	}
	if m.Regs[vcode.RRet] != 0 {
		// Voluntary abort: the handler examined the message and returned
		// it to the kernel to be handled normally.
		a.VoluntaryAborts++
		if o := a.sys.K.Obs; o.Enabled() {
			o.Instant(a.sys.K.Name, "ash system", "ash",
				"voluntary abort "+a.Name, mc.When())
			o.Inc("ash/aborts_voluntary")
		}
		return aegis.DispToUser
	}
	return aegis.DispConsumed
}

// AsUpcall wraps the same handler code as a fast asynchronous upcall: it
// runs at user level (no sandboxing needed, but upcall dispatch costs and
// system-call sends apply), so the paper's ASH-vs-upcall comparisons run
// identical handler code in both placements.
func (a *ASH) AsUpcall() *aegis.Upcall {
	return aegis.NewUpcall(a.Owner, a.HandleMsg)
}

// LastInsns reports the dynamic instruction count of the most recent run.
func (a *ASH) LastInsns() int64 { return a.machine.Insns }

// AddedStatic reports how many instructions sandboxing added (0 if unsafe).
func (a *ASH) AddedStatic() int {
	if a.sandbox == nil {
		return 0
	}
	return a.sandbox.AddedStatic
}
