package core

import (
	"fmt"

	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// The kernel entry points an ASH may call (Section III-B2: indirect jumps
// "to operating system calls explicitly allowed by the system (such as the
// network send system call)" proceed; everything else aborts). These are
// the trusted, aggregated-check services that keep per-reference
// sandboxing off the bulk-data path.

// syscalls builds the entry-point table for handler a.
func (s *System) syscalls(a *ASH) map[string]vcode.SyscallFn {
	return map[string]vcode.SyscallFn{
		// ash_send(dst, vc, addr, len): transmit len bytes at addr as a
		// message — message initiation from inside the kernel, no system
		// call boundary.
		"ash_send": func(m *vcode.Machine) error {
			dst := int(m.Regs[vcode.RArg0])
			vc := int(m.Regs[vcode.RArg1])
			addr := m.Regs[vcode.RArg2]
			n := int(m.Regs[vcode.RArg3])
			data, err := a.Owner.AS.Bytes(addr, n)
			if err != nil {
				return err
			}
			m.Charge(4) // argument staging
			a.curMC.Send(dst, vc, data)
			return nil
		},

		// ash_copy(src, dst, len): trusted data copy with access checks
		// aggregated at initiation time (Section III-B2: "these calls
		// allow access checks to be aggregated at initiation time").
		"ash_copy": func(m *vcode.Machine) error {
			src := m.Regs[vcode.RArg0]
			dst := m.Regs[vcode.RArg1]
			n := int(m.Regs[vcode.RArg2])
			m.Charge(12) // aggregated access check
			return s.trustedCopy(m, a, src, dst, n)
		},

		// ash_dilp(engine, src, dst, len): run a registered integrated
		// transfer engine over the data; RRet receives the engine's first
		// persistent register (e.g. the checksum accumulator), folded.
		"ash_dilp": func(m *vcode.Machine) error {
			id := int(m.Regs[vcode.RArg0])
			src := m.Regs[vcode.RArg1]
			dst := m.Regs[vcode.RArg2]
			n := int(m.Regs[vcode.RArg3])
			if id < 0 || id >= len(s.engines) {
				return fmt.Errorf("ash_dilp: no engine %d", id)
			}
			re := s.engines[id]
			m.Charge(12) // aggregated access check
			if err := s.checkRange(a, src, n); err != nil {
				return err
			}
			if err := s.checkRange(a, dst, n); err != nil {
				return err
			}
			if a.journal != nil {
				// The engine writes dst through the kernel's raw view, so
				// pre-image the range for involuntary-abort rollback.
				a.journal.PreImageRange(dst, n)
			}
			// Reset persistent registers for a fresh application.
			for _, r := range re.eng.Prog.Persistent {
				re.machine.Regs[r] = 0
			}
			cycles, f := re.eng.Run(re.machine, src, dst, n)
			m.Charge(cycles)
			if f != nil {
				return f
			}
			if pr := re.eng.Prog.Persistent; len(pr) > 0 {
				m.Regs[vcode.RRet] = re.machine.Regs[pr[0]]
			}
			return nil
		},

		// ash_msg_load(offset): trusted message-word access; the bounds
		// check against the message was aggregated at handler entry.
		"ash_msg_load": func(m *vcode.Machine) error {
			off := m.Regs[vcode.RArg0]
			if int(off)+4 > a.curMC.Entry.Len {
				return &vcode.Fault{Kind: vcode.FaultBadAddr, Addr: off, Msg: "beyond message"}
			}
			addr := a.curMC.Entry.Addr + off
			if m.Cache != nil {
				m.Charge(m.Cache.Load(addr))
			}
			v, err := s.K.Mem.Load32(addr)
			if err != nil {
				return err
			}
			m.Regs[vcode.RRet] = v
			m.Charge(2)
			return nil
		},
	}
}

// checkRange validates [addr, addr+n) against the owner's address space.
func (s *System) checkRange(a *ASH, addr uint32, n int) error {
	if n == 0 {
		return nil
	}
	if _, err := a.Owner.AS.Bytes(addr, n); err != nil {
		return err
	}
	return nil
}

// trustedCopy moves n bytes with per-word cache-costed accesses but no
// per-reference sandboxing (the checks were aggregated).
func (s *System) trustedCopy(m *vcode.Machine, a *ASH, src, dst uint32, n int) error {
	if err := s.checkRange(a, src, n); err != nil {
		return err
	}
	if err := s.checkRange(a, dst, n); err != nil {
		return err
	}
	if a.journal != nil {
		// The copy below bypasses the journaled Memory, so pre-image the
		// destination for involuntary-abort rollback.
		a.journal.PreImageRange(dst, n)
	}
	prof := s.K.Prof
	var cycles sim.Time
	b := s.K.Bytes(src, n)
	d := s.K.Bytes(dst, n)
	copy(d, b)
	for off := 0; off < n; off += 4 {
		cycles += m.Cache.Load(src+uint32(off)) + m.Cache.Store(dst+uint32(off)) +
			sim.Time(prof.LoopOverhead)
	}
	m.Charge(cycles)
	return nil
}
