package core

import (
	"bytes"
	"testing"

	"ashs/internal/aegis"
	"ashs/internal/sim"
	"ashs/internal/vcode"
)

// scribbleASH builds a handler that mutates application memory: it stores
// a run of words into the data segment, copies a piece of the message in,
// and consumes the message. A forced abort partway through must undo all
// of it.
func scribbleASH(segBase uint32) *vcode.Program {
	b := vcode.NewBuilder("scribble")
	msg, base, val := b.Temp(), b.Temp(), b.Temp()
	b.Mov(msg, vcode.RArg0)
	b.MovI(base, int32(segBase))
	for i := 0; i < 8; i++ {
		b.MovI(val, int32(0x1111*(i+1)))
		b.St32(base, int32(4*i), val)
	}
	// Trusted bulk copy from the message into the segment (exercises the
	// pre-imaged fast path in the journal).
	b.Mov(vcode.RArg0, msg)
	b.MovI(vcode.RArg1, int32(segBase+64))
	b.MovI(vcode.RArg2, 16)
	b.Call("ash_copy")
	b.MovI(vcode.RRet, 0) // consumed
	b.Ret()
	return b.MustAssemble()
}

// abortWorld wires a scribble handler on the server and returns the
// pieces the abort tests poke at.
type abortWorld struct {
	tb      *testbed
	owner   *aegis.Process
	seg     aegis.Segment
	ash     *ASH
	sb      *aegis.VCBinding
	payload []byte
}

func newAbortWorld(t *testing.T) *abortWorld {
	t.Helper()
	tb := newTestbed(t)
	w := &abortWorld{tb: tb}
	w.owner = tb.k2.Spawn("app", func(p *aegis.Process) {})
	w.seg = w.owner.AS.MustAlloc(4096, "data")
	// Pre-existing application state the abort must preserve.
	segBytes := w.owner.AS.MustBytes(w.seg.Base, int(w.seg.Len))
	for i := range segBytes {
		segBytes[i] = byte(i*13 + 5)
	}
	w.ash = tb.sys.MustDownload(w.owner, scribbleASH(w.seg.Base), Options{})
	sb, err := tb.a2.BindVC(w.owner, 9, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	w.sb = sb
	w.ash.AttachVC(sb)
	w.payload = make([]byte, 64)
	for i := range w.payload {
		w.payload[i] = byte(0xa0 + i)
	}
	return w
}

// snapshot captures the state that an involuntary abort must restore.
func (w *abortWorld) snapshot() ([]byte, [vcode.NumRegs]uint32) {
	seg := append([]byte(nil), w.owner.AS.MustBytes(w.seg.Base, int(w.seg.Len))...)
	return seg, w.ash.machine.Regs
}

// checkRollback asserts memory and registers are bit-identical to the
// snapshot and that the message fell back to the ring exactly once.
func (w *abortWorld) checkRollback(t *testing.T, seg []byte, regs [vcode.NumRegs]uint32) {
	t.Helper()
	if got := w.owner.AS.MustBytes(w.seg.Base, int(w.seg.Len)); !bytes.Equal(got, seg) {
		for i := range got {
			if got[i] != seg[i] {
				t.Fatalf("application memory differs after abort: first at +%d (%#x != %#x)",
					i, got[i], seg[i])
			}
		}
	}
	if w.ash.machine.Regs != regs {
		t.Fatalf("persistent registers differ after abort:\n got %v\nwant %v",
			w.ash.machine.Regs, regs)
	}
	if n := w.sb.Ring.Len(); n != 1 {
		t.Fatalf("ring holds %d entries after abort, want exactly 1 (fallback delivery)", n)
	}
	e, _ := w.sb.Ring.TryRecv()
	got := w.owner.AS.MustBytes(e.Addr, e.Len)
	if !bytes.Equal(got, w.payload) {
		t.Fatalf("fallback-delivered message corrupted: %x != %x", got, w.payload)
	}
}

// TestBudgetAbortRollsBackAndFallsBack forces an instruction-budget abort
// mid-handler and checks the full recovery contract: memory and registers
// roll back bit-identically, and the message is re-vectored onto the
// default delivery path exactly once.
func TestBudgetAbortRollsBackAndFallsBack(t *testing.T) {
	w := newAbortWorld(t)
	// Scribble some persistent-register state the rollback must keep.
	w.ash.machine.Regs[16] = 0xdeadbeef
	w.ash.machine.Regs[17] = 0x12345678
	seg, regs := w.snapshot()

	w.tb.sys.InjectAbort = func(string) (AbortMode, int64) { return AbortBudget, 12 }
	w.tb.a1.KernelSend(w.tb.a2.Addr(), 9, w.payload)
	w.tb.eng.Run()

	if w.ash.InvolAborts != 1 {
		t.Fatalf("InvolAborts = %d, want 1", w.ash.InvolAborts)
	}
	if w.ash.InvoluntaryFault == nil || w.ash.InvoluntaryFault.Kind != vcode.FaultBudget {
		t.Fatalf("fault = %v, want budget fault", w.ash.InvoluntaryFault)
	}
	if w.tb.sys.InvoluntaryAborts != 1 || w.tb.sys.AbortFallbacks != 1 {
		t.Fatalf("system counters: aborts=%d fallbacks=%d, want 1/1",
			w.tb.sys.InvoluntaryAborts, w.tb.sys.AbortFallbacks)
	}
	w.checkRollback(t, seg, regs)
}

// TestTimerAbortRollsBackAndFallsBack is the same contract under the
// two-tick watchdog firing mid-handler (modelled as a tiny cycle limit).
func TestTimerAbortRollsBackAndFallsBack(t *testing.T) {
	w := newAbortWorld(t)
	w.ash.machine.Regs[20] = 0xfeedface
	seg, regs := w.snapshot()

	w.tb.sys.InjectAbort = func(string) (AbortMode, int64) { return AbortTimer, 30 }
	w.tb.a1.KernelSend(w.tb.a2.Addr(), 9, w.payload)
	w.tb.eng.Run()

	if w.ash.InvolAborts != 1 {
		t.Fatalf("InvolAborts = %d, want 1", w.ash.InvolAborts)
	}
	w.checkRollback(t, seg, regs)
}

// TestAbortTripThresholdDeinstallsHandler verifies the trip circuit: a
// handler that keeps aborting involuntarily is de-installed after the
// threshold, and later messages go straight to the default path — every
// message is still delivered exactly once.
func TestAbortTripThresholdDeinstallsHandler(t *testing.T) {
	w := newAbortWorld(t)
	w.tb.sys.AbortTripThreshold = 3
	w.tb.sys.InjectAbort = func(string) (AbortMode, int64) { return AbortBudget, 12 }
	const msgs = 6
	for i := 0; i < msgs; i++ {
		w.tb.a1.KernelSend(w.tb.a2.Addr(), 9, w.payload)
	}
	w.tb.eng.Run()

	if !w.ash.Tripped {
		t.Fatal("handler did not trip")
	}
	if w.tb.sys.TrippedHandlers != 1 {
		t.Fatalf("TrippedHandlers = %d, want 1", w.tb.sys.TrippedHandlers)
	}
	if w.sb.Handler != nil {
		t.Fatal("tripped handler still installed on the binding")
	}
	if w.ash.InvolAborts != 3 {
		t.Fatalf("InvolAborts = %d, want exactly the trip threshold (3)", w.ash.InvolAborts)
	}
	if w.ash.Invocations != 3 {
		t.Fatalf("Invocations = %d after trip, want 3 (de-installed handler must not run)",
			w.ash.Invocations)
	}
	if n := w.sb.Ring.Len(); n != msgs {
		t.Fatalf("ring holds %d entries, want %d (every message delivered exactly once)", n, msgs)
	}
}

// randomHandler builds a random straight-line program of loads, stores,
// and ALU ops against the data segment, ending by consuming the message.
// Every store's effect must be undone by a forced abort.
func randomHandler(r *sim.Rand, segBase uint32) *vcode.Program {
	b := vcode.NewBuilder("random")
	msg, base := b.Temp(), b.Temp()
	t1, t2 := b.Temp(), b.Temp()
	b.Mov(msg, vcode.RArg0)
	b.MovI(base, int32(segBase))
	b.MovI(t1, int32(r.Uint32()&0x7fffffff))
	n := 20 + r.Intn(20)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			b.St32(base, int32(4*r.Intn(64)), t1)
		case 1:
			b.St8(base, int32(r.Intn(256)), t1)
		case 2:
			b.St16(base, int32(2*r.Intn(128)), t1)
		case 3:
			b.Ld32(t2, base, int32(4*r.Intn(64)))
		case 4:
			b.AddU(t1, t1, t2)
		case 5:
			b.XorI(t1, t1, int32(r.Uint32()&0xffff))
		}
	}
	// A trusted bulk copy in some programs, so the property also covers
	// the pre-imaged journal path.
	if r.Prob(0.5) {
		b.Mov(vcode.RArg0, msg)
		b.MovI(vcode.RArg1, int32(segBase+1024+uint32(4*r.Intn(64))))
		b.MovI(vcode.RArg2, int32(8+4*r.Intn(8)))
		b.Call("ash_copy")
	}
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

// TestAbortRollbackProperty runs the rollback contract over a population
// of random handlers and random abort points: whatever the handler was
// doing when the system pulled the plug, application memory, persistent
// registers, and the message must come back bit-identical, with the
// message delivered once via the ring.
func TestAbortRollbackProperty(t *testing.T) {
	r := sim.NewRand(0x5eed)
	for trial := 0; trial < 24; trial++ {
		tb := newTestbed(t)
		owner := tb.k2.Spawn("app", func(p *aegis.Process) {})
		seg := owner.AS.MustAlloc(4096, "data")
		segBytes := owner.AS.MustBytes(seg.Base, int(seg.Len))
		for i := range segBytes {
			segBytes[i] = byte(r.Uint32())
		}
		ash := tb.sys.MustDownload(owner, randomHandler(r, seg.Base), Options{})
		sb, err := tb.a2.BindVC(owner, 9, 8, 4096)
		if err != nil {
			t.Fatal(err)
		}
		ash.AttachVC(sb)
		for i := range ash.machine.Regs[8:] {
			ash.machine.Regs[8+i] = r.Uint32()
		}
		payload := make([]byte, 48)
		for i := range payload {
			payload[i] = byte(r.Uint32())
		}
		segWant := append([]byte(nil), segBytes...)
		regsWant := ash.machine.Regs

		// The random program has at least 23 static instructions, so a
		// budget in [2, 21] always aborts it partway.
		budget := int64(2 + r.Intn(20))
		tb.sys.InjectAbort = func(string) (AbortMode, int64) { return AbortBudget, budget }
		tb.a1.KernelSend(tb.a2.Addr(), 9, payload)
		tb.eng.Run()

		if ash.InvolAborts != 1 {
			t.Fatalf("trial %d (budget %d): InvolAborts = %d, want 1",
				trial, budget, ash.InvolAborts)
		}
		if got := owner.AS.MustBytes(seg.Base, int(seg.Len)); !bytes.Equal(got, segWant) {
			t.Fatalf("trial %d (budget %d): memory not rolled back", trial, budget)
		}
		if ash.machine.Regs != regsWant {
			t.Fatalf("trial %d (budget %d): registers not rolled back", trial, budget)
		}
		if n := sb.Ring.Len(); n != 1 {
			t.Fatalf("trial %d: ring holds %d entries, want 1", trial, n)
		}
		e, _ := sb.Ring.TryRecv()
		if got := owner.AS.MustBytes(e.Addr, e.Len); !bytes.Equal(got, payload) {
			t.Fatalf("trial %d: fallback message corrupted", trial)
		}
	}
}
