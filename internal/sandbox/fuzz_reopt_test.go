package sandbox

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"ashs/internal/vcode"
	"ashs/internal/vcode/reopt"
)

// FuzzReoptProfile attacks the DCG loop from the profile side: the
// program is a random verifiable one, but the profile is raw fuzzer
// bytes — arbitrary counts, arbitrary invocation totals, lengths that
// disagree with the program. The re-optimizer must treat any such
// profile as (at most) a hint: instrumentation must still verify, and
// the three-way equivalence (and region confinement under starved
// budgets) must hold exactly as it does for measured profiles.

// profileFromBytes decodes raw fuzzer bytes into a profile for p. The
// first byte skews the counts-vector length away from len(p.Insns) (the
// interesting adversarial case: profiles from a different program
// version); the rest becomes counters, cycled, with an empty input
// yielding the all-zero profile.
func profileFromBytes(p *vcode.Program, raw []byte) *reopt.Profile {
	n := len(p.Insns)
	if len(raw) > 0 {
		n += int(raw[0]%15) - 7 // length skew in [-7, +7]
		if n < 0 {
			n = 0
		}
	}
	counts := make([]uint64, n)
	if len(raw) > 1 {
		body := raw[1:]
		var chunk [8]byte
		for i := range counts {
			for j := range chunk {
				chunk[j] = body[(i*8+j)%len(body)]
			}
			counts[i] = binary.LittleEndian.Uint64(chunk[:])
		}
	}
	var invocations uint64
	for i := range counts {
		invocations ^= counts[i]
	}
	return &reopt.Profile{Handler: p.Name, Invocations: invocations, Counts: counts}
}

func reoptProfileSeed(t *testing.T, seed int64, raw []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := genProgram(rng)
	prof := profileFromBytes(p, raw)
	mode := BudgetTimer
	if seed%2 == 0 {
		mode = BudgetSoftware
	}
	if _, err := ThreeWay(p, prof, DiffConfig{Budget: mode}); err != nil {
		t.Fatal(err)
	}
	if mode == BudgetSoftware {
		for _, b := range []int64{5, 60} {
			_, err := ThreeWay(p, prof, DiffConfig{
				Budget: mode, InsnBudget: b, ConfinementOnly: true,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzReoptProfile(f *testing.F) {
	sat := make([]byte, 64)
	for i := range sat {
		sat[i] = 0xff
	}
	// The committed corpus (testdata/fuzz/FuzzReoptProfile) pins the
	// adversarial shapes by name; these keep the in-code seeds in sync.
	f.Add(int64(0), []byte{})                           // all-zero profile
	f.Add(int64(1), sat)                                // saturated counters
	f.Add(int64(2), []byte{14, 1, 0, 0, 0, 0, 0, 0, 0}) // too-long vector, count=1 (sub-Hot)
	f.Add(int64(3), []byte{0, 8, 0, 0, 0, 0, 0, 0, 0})  // too-short vector, count=Hot
	f.Add(int64(42), []byte{7, 0xde, 0xad, 0xbe, 0xef}) // ragged cycle
	f.Add(int64(-9), []byte{3, 0xff, 0, 0xff, 0, 0xff}) // alternating hot/cold
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		reoptProfileSeed(t, seed, raw)
	})
}

// TestReoptProfileSeeds drives the committed corpus shapes under `go
// test` (the fuzz engine only replays them under -fuzz).
func TestReoptProfileSeeds(t *testing.T) {
	sat := make([]byte, 64)
	for i := range sat {
		sat[i] = 0xff
	}
	cases := []struct {
		seed int64
		raw  []byte
	}{
		{0, nil}, {1, sat},
		{2, []byte{14, 1, 0, 0, 0, 0, 0, 0, 0}},
		{3, []byte{0, 8, 0, 0, 0, 0, 0, 0, 0}},
		{42, []byte{7, 0xde, 0xad, 0xbe, 0xef}},
		{-9, []byte{3, 0xff, 0, 0xff, 0, 0xff}},
	}
	for _, c := range cases {
		reoptProfileSeed(t, c.seed, c.raw)
	}
}
