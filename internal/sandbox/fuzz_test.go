package sandbox

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ashs/internal/vcode"
)

// The differential property at the heart of the optimizer's safety story:
// for any verifiable program, optimized instrumentation is architecturally
// equivalent to naive instrumentation — a clean naive run means a clean
// optimized run with identical registers (minus the sandbox scratch) and
// identical region memory in no more dynamic instructions, and a naive
// fault means an optimized fault (possibly at an earlier pc or of a
// different kind: the hull check at a group anchor fires before the
// per-member check it replaces). Neither variant may ever touch memory
// outside the region, even with a budget too small to finish.
//
// Since the DCG loop landed the property is three-way: the profile-
// reoptimized variant (built from a profile gathered by a naive pre-pass
// over the same program) joins the equivalence class, with dynamic
// instructions ordered reopt ≤ optimized ≤ naive. The oracle lives in
// ThreeWay (difftest.go); this file generates the programs and seeds.
// FuzzReoptProfile (fuzz_reopt_test.go) covers profiles no execution
// produced.

const (
	fuzzBase = 0x1000
	fuzzSize = 0x1000
)

// genProgram builds a random verifiable program: straight-line unsigned
// arithmetic, direct and indexed memory ops through a few base registers
// (mostly in-region, sometimes wild), divides with occasionally-zero
// divisors, forward conditional branches, and properly counted loops.
// Nothing writes r0, the reserved registers, or the counter/bound of an
// open loop, and all control flow is forward or counted — so every
// generated program passes Verify.
func genProgram(rng *rand.Rand) *vcode.Program {
	regs := []vcode.Reg{8, 9, 10, 11, 12, 13}
	bases := []vcode.Reg{14, 15}
	reg := func() vcode.Reg { return regs[rng.Intn(len(regs))] }
	base := func() vcode.Reg { return bases[rng.Intn(len(bases))] }

	var insns []vcode.Insn
	add := func(in vcode.Insn) { insns = append(insns, in) }
	regionAddr := func() int32 {
		return fuzzBase + int32(rng.Intn(fuzzSize-0x200))&^3
	}
	for _, b := range bases {
		add(vcode.Insn{Op: vcode.OpMovI, Rd: b, Imm: regionAddr()})
	}
	add(vcode.Insn{Op: vcode.OpMovI, Rd: regs[0], Imm: int32(rng.Uint32() % 1000)})

	var pendingBranches []int // indices whose Target must be clamped at the end
	n := 8 + rng.Intn(25)
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0:
			add(vcode.Insn{Op: vcode.OpMovI, Rd: reg(), Imm: int32(rng.Uint32() % 5000)})
		case 1:
			add(vcode.Insn{Op: vcode.OpAddU, Rd: reg(), Rs: reg(), Rt: reg()})
		case 2:
			add(vcode.Insn{Op: vcode.OpXorI, Rd: reg(), Rs: reg(), Imm: int32(rng.Intn(1 << 12))})
		case 3: // clustered direct accesses through one base
			b := base()
			off := int32(rng.Intn(0x1c0)) &^ 3
			add(vcode.Insn{Op: vcode.OpSt32, Rs: b, Imm: off, Rt: reg()})
			add(vcode.Insn{Op: vcode.OpLd32, Rd: reg(), Rs: b, Imm: off + 4})
		case 4:
			add(vcode.Insn{Op: vcode.OpLd32, Rd: reg(), Rs: base(), Imm: int32(rng.Intn(0x200)) &^ 3})
		case 5:
			add(vcode.Insn{Op: vcode.OpSt8, Rs: base(), Imm: int32(rng.Intn(0x200)), Rt: reg()})
		case 6: // occasionally repoint a base, sometimes out of region
			imm := regionAddr()
			if rng.Intn(4) == 0 {
				imm = int32(rng.Uint32() % 0x20000)
			}
			add(vcode.Insn{Op: vcode.OpMovI, Rd: base(), Imm: imm})
		case 7: // indexed access with a bounded index
			idx := reg()
			add(vcode.Insn{Op: vcode.OpAndI, Rd: idx, Rs: reg(), Imm: 0xfc})
			if rng.Intn(2) == 0 {
				add(vcode.Insn{Op: vcode.OpLd32X, Rd: reg(), Rs: base(), Rt: idx})
			} else {
				add(vcode.Insn{Op: vcode.OpSt32X, Rs: base(), Rt: idx, Rd: reg()})
			}
		case 8: // divide; divisor sometimes certainly zero, sometimes nonzero
			d := reg()
			if rng.Intn(3) == 0 {
				add(vcode.Insn{Op: vcode.OpMovI, Rd: d, Imm: int32(rng.Intn(2))})
			}
			op := vcode.OpDivU
			if rng.Intn(2) == 0 {
				op = vcode.OpRemU
			}
			add(vcode.Insn{Op: op, Rd: reg(), Rs: reg(), Rt: d})
		case 9: // forward conditional branch (target clamped to ret below)
			ops := []vcode.Op{vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU}
			pendingBranches = append(pendingBranches, len(insns))
			add(vcode.Insn{Op: ops[rng.Intn(len(ops))], Rs: reg(), Rt: reg(),
				Target: len(insns) + 2 + rng.Intn(5)})
		case 10: // counted loop with a memory op in the body
			i, bound := regs[4], regs[5] // dedicated; body avoids them
			trips := int32(1+rng.Intn(8)) * 4
			add(vcode.Insn{Op: vcode.OpMovI, Rd: i, Imm: 0})
			add(vcode.Insn{Op: vcode.OpMovI, Rd: bound, Imm: trips})
			top := len(insns)
			switch rng.Intn(3) {
			case 0:
				add(vcode.Insn{Op: vcode.OpSt32X, Rs: bases[0], Rt: i, Rd: regs[0]})
			case 1:
				add(vcode.Insn{Op: vcode.OpLd32, Rd: regs[1], Rs: bases[0], Imm: 8})
			case 2:
				add(vcode.Insn{Op: vcode.OpAddU, Rd: regs[2], Rs: regs[2], Rt: regs[0]})
			}
			add(vcode.Insn{Op: vcode.OpAddIU, Rd: i, Rs: i, Imm: 4})
			add(vcode.Insn{Op: vcode.OpBltU, Rs: i, Rt: bound, Target: top})
		case 11:
			add(vcode.Insn{Op: vcode.OpMulU, Rd: reg(), Rs: reg(), Rt: reg()})
		case 12:
			add(vcode.Insn{Op: vcode.OpBswap, Rd: reg(), Rs: reg()})
		case 13:
			add(vcode.Insn{Op: vcode.OpSrlI, Rd: reg(), Rs: reg(), Imm: int32(rng.Intn(8))})
		}
	}
	add(vcode.Insn{Op: vcode.OpRet})
	for _, b := range pendingBranches {
		if insns[b].Target >= len(insns) {
			insns[b].Target = len(insns) - 1 // the ret
		}
	}
	return &vcode.Program{Name: "fuzz", Insns: insns, NextReg: 16}
}

// checkDifferential runs p through the three-way oracle with a measured
// profile, plus starved-budget confinement runs in software mode.
// Returns false (after t.Error) on any divergence so quick.Check reports
// the failing seed.
func checkDifferential(t *testing.T, p *vcode.Program, budget BudgetMode) bool {
	t.Helper()
	if _, err := ThreeWay(p, nil, DiffConfig{Budget: budget}); err != nil {
		t.Error(err)
		return false
	}
	// Starved-budget runs (software mode): equivalence is not required —
	// the coarse drain faults earlier than per-iteration checks — but
	// confinement is absolute.
	if budget == BudgetSoftware {
		for _, b := range []int64{5, 25, 120} {
			_, err := ThreeWay(p, nil, DiffConfig{
				Budget: budget, InsnBudget: b, ConfinementOnly: true,
			})
			if err != nil {
				t.Error(err)
				return false
			}
		}
	}
	return true
}

func diffSeed(t *testing.T, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	p := genProgram(rng)
	mode := BudgetTimer
	if seed%2 == 0 {
		mode = BudgetSoftware
	}
	return checkDifferential(t, p, mode)
}

func TestDifferentialSFIQuick(t *testing.T) {
	prop := func(seed int64) bool { return diffSeed(t, seed) }
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func FuzzDifferentialSFI(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 3, 42, 1996, -7, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffSeed(t, seed)
	})
}
