// Package sandbox makes downloaded handler code safe to run inside the
// kernel, implementing Section III-B of the paper ("Safe Execution").
//
// Safety has two halves:
//
//   - Verify performs the download-time checks: floating-point use and
//     trapping signed arithmetic are rejected outright (Section III-B1),
//     static branch targets must lie inside the program, only allowlisted
//     kernel entry points may be called, and code may not contain the
//     sandbox's own reserved instructions (so handlers cannot forge checks).
//
//   - Instrument rewrites the instruction stream with the software-based
//     fault isolation of Wahbe et al. [54]: every load and store is staged
//     through a dedicated register and bounds-checked (+2 instructions per
//     memory operation), divides gain zero checks, indirect jumps are
//     translated through a table, and — in software-budget mode — every
//     backward jump decrements an instruction budget (Section III-B3).
//     A general-purpose entry/exit sequence is added around the handler;
//     the paper notes this "overly general exit code" is a large fraction
//     of the added instructions.
//
// On x86 the paper uses segmentation hardware instead of software checks;
// HardwareX86 models that: verification still happens, but no instructions
// are added.
package sandbox

import (
	"fmt"

	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
	"ashs/internal/vcode/reopt"
)

// Hardware selects the protection mechanism of the target machine.
type Hardware int

const (
	// HardwareMIPS uses Wahbe-style software fault isolation.
	HardwareMIPS Hardware = iota
	// HardwareX86 uses segmentation and privilege rings: verification only,
	// no added instructions (footnote 1 of the paper).
	HardwareX86
)

// BudgetMode selects how execution time is bounded (Section III-B3).
type BudgetMode int

const (
	// BudgetTimer relies on the system clock: the runtime arms a watchdog
	// and aborts any ASH that uses two clock ticks or more. No instructions
	// are inserted; arming and clearing cost ~1 us each.
	BudgetTimer BudgetMode = iota
	// BudgetSoftware inserts a counter check at every backward jump.
	BudgetSoftware
)

// Policy configures verification and instrumentation.
type Policy struct {
	Hardware     Hardware
	Budget       BudgetMode
	AllowedCalls map[string]bool // kernel entry points callable via OpCall

	// Optimize enables the static-analysis SFI optimizer: redundant
	// address checks are elided when a dominating check already certifies
	// the address, loop-invariant checks are hoisted to a preheader, and
	// budget checks for statically bounded loops are coarsened into one
	// up-front drain. Programs containing indirect jumps fall back to the
	// naive per-reference instrumentation.
	Optimize bool

	// OptimisticExceptions models the "more sophisticated implementation"
	// of Section III-B1: with operating-system support for handler
	// exceptions, runtime checks (divide-by-zero here) are omitted and the
	// kernel catches the exception and aborts the ASH if one occurs.
	OptimisticExceptions bool

	// Entry/exit sequence lengths (instructions). The defaults reproduce
	// the paper's observation that exit code dominates added instructions.
	PrologueLen int
	EpilogueLen int

	// Profile, when non-nil, feeds the optimizer observed execution counts
	// (the paper's dynamic-code-generation loop). The profile only selects
	// among statically proven transformations — hoisting a loop-invariant
	// divide check, coarsening an exactly counted multi-block loop — so an
	// adversarial profile can change cost, never semantics. The compile
	// cache keys on the profile fingerprint alongside the policy.
	Profile *reopt.Profile
}

// DefaultPolicy returns the policy used by the ASH system: MIPS software
// protection, timer-based budgets, and the standard entry/exit sequences.
func DefaultPolicy() *Policy {
	return &Policy{
		Hardware: HardwareMIPS,
		Budget:   BudgetTimer,
		AllowedCalls: map[string]bool{
			"ash_send":     true, // network send (Section III-B2)
			"ash_copy":     true, // trusted aggregated-check data copy
			"ash_dilp":     true, // run a compiled DILP transfer engine
			"ash_msg_load": true, // trusted message-word access
		},
		PrologueLen: 8,
		EpilogueLen: 16,
	}
}

// VerifyError reports why a program was rejected at download time.
type VerifyError struct {
	PC     int
	Insn   vcode.Insn
	Reason string
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("sandbox: rejected at pc=%d (%s): %s", e.PC, e.Insn, e.Reason)
}

// verifyProgram is the uncached implementation behind Verify.
func verifyProgram(p *vcode.Program, pol *Policy) error {
	n := len(p.Insns)
	for pc, in := range p.Insns {
		switch {
		case in.Op.IsFloat():
			return &VerifyError{pc, in, "floating-point instructions are disallowed at download time"}
		case in.Op.IsSignedArith():
			return &VerifyError{pc, in, "signed (trapping) arithmetic is disallowed; use unsigned forms"}
		case in.Op.IsSandboxOp():
			return &VerifyError{pc, in, "sandbox-reserved instruction in downloaded code"}
		case in.Op == vcode.OpInput32 || in.Op == vcode.OpOutput32:
			return &VerifyError{pc, in, "pipe pseudo-op outside a pipe body"}
		case in.Op == vcode.OpCall:
			if pol.AllowedCalls == nil || !pol.AllowedCalls[in.Sym] {
				return &VerifyError{pc, in, fmt.Sprintf("call to %q is not an allowed system entry point", in.Sym)}
			}
		case in.Op == vcode.OpBeq || in.Op == vcode.OpBne ||
			in.Op == vcode.OpBltU || in.Op == vcode.OpBgeU || in.Op == vcode.OpJmp:
			if in.Target < 0 || in.Target >= n {
				return &VerifyError{pc, in, "static branch target outside program"}
			}
		}
		// Writes to reserved registers would subvert the SFI staging
		// register; reject them.
		if writesReg(in, vcode.RSbox) {
			return &VerifyError{pc, in, "write to reserved sandbox register"}
		}
	}
	if n == 0 || p.Insns[n-1].Op != vcode.OpRet {
		return &VerifyError{n - 1, vcode.Insn{}, "program must end in ret"}
	}
	return verifyCFG(p)
}

// verifyCFG runs the control-flow half of verification: code that cannot
// execute, control that can run past the end of the program, and indirect
// jumps whose target is not statically confined to the program ("jump-table
// discipline"). Straight-line checks have already passed, so branch targets
// are in range and the CFG is well formed.
func verifyCFG(p *vcode.Program) error {
	c := analysis.Build(p)
	for _, b := range c.FallsOff {
		last := c.Blocks[b].Last()
		return &VerifyError{last, p.Insns[last], "control can fall through past the final ret"}
	}
	// Unreachable code has no legitimate purpose in a downloaded handler and
	// is a classic smuggling vector (e.g. gadgets reached only through an
	// unverified jump path) — reject it outright. When the program contains
	// an indirect jump, Reachable over-approximates by treating every block
	// as a potential target, so this check never mis-fires on jmpr targets.
	reach := c.Reachable()
	for b, ok := range reach {
		if !ok {
			pc := c.Blocks[b].Start
			return &VerifyError{pc, p.Insns[pc], "unreachable code"}
		}
	}
	// Indirect jumps must establish jump-table discipline: the target
	// register's value must be provably within the program at the jump, as
	// established by the interval analysis (e.g. a preceding movi, andi
	// mask, or bounded arithmetic). The table translation at run time then
	// maps the verified pre-instrumentation index to instrumented code.
	if c.HasIndirect {
		r := c.Ranges()
		for pc, in := range p.Insns {
			if in.Op != vcode.OpJmpR {
				continue
			}
			iv := r.Before(pc, in.Rs)
			if uint64(iv.Hi) >= uint64(len(p.Insns)) {
				return &VerifyError{pc, in,
					"indirect jump target not provably inside the program (jump-table discipline)"}
			}
		}
	}
	return nil
}

func writesReg(in vcode.Insn, r vcode.Reg) bool {
	if in.Op.IsStore() && !in.Op.IsIndexed() {
		return false // stores read Rt, write memory
	}
	switch in.Op {
	case vcode.OpNop, vcode.OpRet, vcode.OpJmp, vcode.OpJmpR, vcode.OpCall,
		vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU,
		vcode.OpSt32, vcode.OpSt16, vcode.OpSt8, vcode.OpSt32X, vcode.OpSt8X,
		vcode.OpOutput32:
		return false
	}
	return in.Rd == r
}

// Program is a verified, instrumented handler ready for installation.
type Program struct {
	Orig *vcode.Program // pre-sandbox code (for instruction accounting)
	Code *vcode.Program // instrumented code actually executed

	// JmpTable translates pre-sandbox instruction indices (as used by
	// indirect jumps in the original code) to instrumented indices.
	JmpTable []int

	// AddedStatic is the number of instructions instrumentation added.
	AddedStatic int
	Policy      *Policy

	// Optimizer statistics (zero under naive instrumentation): address or
	// divide checks elided because a dominating check already certifies
	// them, check pairs hoisted into loop preheaders, and loops whose
	// per-iteration budget checks were coarsened into one up-front drain.
	ChecksElided    int
	ChecksHoisted   int
	BudgetCoarsened int

	// DivChecksHoisted counts divide sites whose zero check moved to a
	// loop preheader under a profile (zero without Policy.Profile).
	DivChecksHoisted int
}

// compile is the uncached implementation behind Sandbox. It goes through
// the cached Verify so a rejection is remembered alongside builds.
func compile(p *vcode.Program, pol *Policy) (*Program, error) {
	if err := Verify(p, pol); err != nil {
		return nil, err
	}
	if pol.Hardware == HardwareX86 {
		// Segmentation hardware isolates the handler: no software checks.
		return &Program{Orig: p.Clone(), Code: p.Clone(), JmpTable: identity(len(p.Insns)), Policy: pol}, nil
	}

	var (
		out      []vcode.Insn
		oldToNew []int
		st       optStats
	)
	if pol.Optimize {
		var ok bool
		out, oldToNew, st, ok = instrumentOptimized(p, pol)
		if !ok {
			out, oldToNew = instrumentNaive(p, pol)
		}
	} else {
		out, oldToNew = instrumentNaive(p, pol)
	}

	code := &vcode.Program{
		Name:       p.Name + ".sandboxed",
		Insns:      out,
		Persistent: append([]vcode.Reg(nil), p.Persistent...),
		NextReg:    p.NextReg,
	}
	sp := &Program{
		Orig:             p.Clone(),
		Code:             code,
		JmpTable:         oldToNew,
		AddedStatic:      len(out) - len(p.Insns),
		Policy:           pol,
		ChecksElided:     st.elided,
		ChecksHoisted:    st.hoisted,
		BudgetCoarsened:  st.coarsened,
		DivChecksHoisted: st.divHoisted,
	}
	if err := checkEpilogues(sp); err != nil {
		return nil, err
	}
	return sp, nil
}

// checkEpilogues is a self-check on the instrumented output: every ret must
// be preceded by the full exit sequence, and no control transfer may land
// inside it (skipping part of the exit code). A failure indicates an
// instrumenter bug, not a bad input program.
func checkEpilogues(sp *Program) error {
	code := sp.Code.Insns
	epi := sp.Policy.EpilogueLen
	interior := make([]bool, len(code))
	for i, in := range code {
		if in.Op != vcode.OpRet {
			continue
		}
		if i < epi {
			return fmt.Errorf("sandbox: internal error: ret at %d has no room for the exit sequence", i)
		}
		for j := i - epi; j < i; j++ {
			if code[j].Op != vcode.OpNop {
				return fmt.Errorf("sandbox: internal error: ret at %d not preceded by the exit sequence", i)
			}
		}
		for j := i - epi + 1; j <= i; j++ {
			interior[j] = true
		}
	}
	intoInterior := func(t int) bool { return t >= 0 && t < len(interior) && interior[t] }
	for i, in := range code {
		switch in.Op {
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			if intoInterior(in.Target) {
				return fmt.Errorf("sandbox: internal error: branch at %d jumps into an exit sequence", i)
			}
		}
	}
	for old, t := range sp.JmpTable {
		if intoInterior(t) {
			return fmt.Errorf("sandbox: internal error: jump table entry %d lands inside an exit sequence", old)
		}
	}
	return nil
}

// instrumentNaive is the baseline Wahbe-style rewrite: every memory
// operation is staged and checked, every divide gets a zero check, and (in
// software-budget mode) every backward jump drains the budget.
func instrumentNaive(p *vcode.Program, pol *Policy) ([]vcode.Insn, []int) {
	out := make([]vcode.Insn, 0, len(p.Insns)*2+pol.PrologueLen+pol.EpilogueLen)
	oldToNew := make([]int, len(p.Insns))

	// Entry sequence: establish the sandbox context (modeled as generic
	// register save/establish operations; cf. "overly general exit code").
	for i := 0; i < pol.PrologueLen; i++ {
		out = append(out, vcode.Insn{Op: vcode.OpNop})
	}

	epilogue := func() []vcode.Insn {
		seq := make([]vcode.Insn, pol.EpilogueLen)
		for i := range seq {
			seq[i] = vcode.Insn{Op: vcode.OpNop}
		}
		return seq
	}

	for pc, in := range p.Insns {
		oldToNew[pc] = len(out)
		switch {
		case in.Op.IsLoad() || in.Op.IsStore():
			// Stage the effective address through RSbox and bounds-check
			// it: +2 instructions per memory operation (Wahbe et al.).
			if in.Op.IsIndexed() {
				out = append(out,
					vcode.Insn{Op: vcode.OpAddU, Rd: vcode.RSbox, Rs: in.Rs, Rt: in.Rt},
					vcode.Insn{Op: vcode.OpSboxChk, Rd: vcode.RSbox},
				)
				rewritten := in
				rewritten.Rs = vcode.RSbox
				rewritten.Rt = vcode.RZero // address fully staged in RSbox
				out = append(out, rewritten)
			} else {
				out = append(out,
					vcode.Insn{Op: vcode.OpSboxMask, Rd: vcode.RSbox, Rs: in.Rs, Imm: in.Imm},
					vcode.Insn{Op: vcode.OpSboxChk, Rd: vcode.RSbox},
				)
				rewritten := in
				rewritten.Rs = vcode.RSbox
				rewritten.Imm = 0
				out = append(out, rewritten)
			}
		case in.Op == vcode.OpDivU || in.Op == vcode.OpRemU:
			if pol.OptimisticExceptions {
				// The kernel will catch a divide fault and abort the ASH;
				// no check emitted.
				out = append(out, in)
			} else {
				out = append(out,
					vcode.Insn{Op: vcode.OpChkDiv, Rs: in.Rt},
					in,
				)
			}
		case in.Op == vcode.OpRet:
			out = append(out, epilogue()...)
			out = append(out, in)
		default:
			out = append(out, in)
		}
	}

	// Retarget static branches using oldToNew.
	for i := range out {
		switch out[i].Op {
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			out[i].Target = oldToNew[out[i].Target]
		}
	}

	if pol.Budget == BudgetSoftware {
		out, oldToNew = insertBudgetChecks(out, oldToNew)
	}
	return out, oldToNew
}

func identity(n int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = i
	}
	return t
}

// insertBudgetChecks adds an OpChkBudget before every backward branch
// (Section III-B3: "software checks at all backward jump locations").
// The check's Imm approximates the loop body length so the budget drains in
// proportion to work done.
func insertBudgetChecks(code []vcode.Insn, oldToNew []int) ([]vcode.Insn, []int) {
	isBackward := func(i int) bool {
		switch code[i].Op {
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			return code[i].Target <= i
		}
		return false
	}
	// Map from current index to final index after insertions. For a
	// backward branch, the mapped position is the inserted ChkBudget, not
	// the branch itself: any jump landing on the branch (including a
	// self-loop) must pass through the check, or a runaway loop could
	// skip budget accounting entirely.
	shift := make([]int, len(code)+1)
	added := 0
	for i := range code {
		shift[i] = i + added
		if isBackward(i) {
			added++
		}
	}
	shift[len(code)] = len(code) + added

	out := make([]vcode.Insn, 0, len(code)+added)
	for i, in := range code {
		if isBackward(i) {
			body := int32(i - in.Target + 1)
			out = append(out, vcode.Insn{Op: vcode.OpChkBudget, Imm: body})
		}
		out = append(out, in)
	}
	// Retarget branches to shifted positions.
	for i := range out {
		switch out[i].Op {
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			out[i].Target = shift[out[i].Target]
		}
	}
	newOldToNew := make([]int, len(oldToNew))
	for i, v := range oldToNew {
		newOldToNew[i] = shift[v]
	}
	return out, newOldToNew
}

// Attach configures machine m to run the sandboxed program: the SFI region,
// the jump-translation table, and (in timer mode) nothing further — the
// caller arms the watchdog via CycleLimit.
func (sp *Program) Attach(m *vcode.Machine, base, limit uint32, budget int64) {
	m.SboxBase, m.SboxLimit = base, limit
	m.JmpTable = sp.JmpTable
	if sp.Policy.Budget == BudgetSoftware {
		m.SoftBudget = budget
	}
}
