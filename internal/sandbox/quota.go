package sandbox

import (
	"ashs/internal/sim"
)

// QuotaLedger meters per-tenant handler execution against cycle budgets
// accounted over fixed windows of virtual time. It is the multi-tenant
// complement of the per-ASH rate limit (Section VI-4): the SFI
// instrumentation already yields an exact cycle count for every handler
// run, so the kernel can debit each tenant's allowance precisely and
// refuse *eager* execution once the window's budget is spent. A refused
// message is not lost and the handler is not aborted — the message
// degrades to the lazy user-level delivery path, where the tenant pays
// for its own processing out of its scheduler quantum.
//
// The ledger is pure state: no clock reads, no randomness. Callers pass
// the current virtual time into Admit, which keeps replay deterministic.
type QuotaLedger struct {
	// WindowCycles is the accounting window length. Non-positive keeps a
	// single unbounded window (budgets then cap total lifetime spend).
	WindowCycles sim.Time
	// DefaultBudget is the per-window cycle allowance for tenants with no
	// explicit budget. Non-positive means unlimited.
	DefaultBudget sim.Time

	// Admitted and Refused count eager-execution decisions across tenants.
	Admitted uint64
	Refused  uint64

	budgets map[string]sim.Time
	spent   map[string]sim.Time
	window  sim.Time // index of the window spent refers to
}

// NewQuotaLedger creates a ledger with the given window and default
// per-tenant budget (cycles per window).
func NewQuotaLedger(windowCycles, defaultBudget sim.Time) *QuotaLedger {
	return &QuotaLedger{
		WindowCycles:  windowCycles,
		DefaultBudget: defaultBudget,
		budgets:       map[string]sim.Time{},
		spent:         map[string]sim.Time{},
	}
}

// SetBudget overrides one tenant's per-window allowance. Non-positive
// makes that tenant unlimited.
func (q *QuotaLedger) SetBudget(tenant string, budget sim.Time) {
	q.budgets[tenant] = budget
}

func (q *QuotaLedger) budget(tenant string) (sim.Time, bool) {
	if b, ok := q.budgets[tenant]; ok {
		return b, b > 0
	}
	return q.DefaultBudget, q.DefaultBudget > 0
}

// roll resets the spend table when now has moved into a new window.
func (q *QuotaLedger) roll(now sim.Time) {
	if q.WindowCycles <= 0 {
		return
	}
	w := now / q.WindowCycles
	if w == q.window {
		return
	}
	q.window = w
	for k := range q.spent {
		delete(q.spent, k)
	}
}

// Admit decides whether tenant may run a handler eagerly at virtual time
// now. False means the tenant's window budget is exhausted and the
// message should take the lazy user-level path instead.
func (q *QuotaLedger) Admit(tenant string, now sim.Time) bool {
	q.roll(now)
	if b, bounded := q.budget(tenant); bounded && q.spent[tenant] >= b {
		q.Refused++
		return false
	}
	q.Admitted++
	return true
}

// Charge debits cycles from tenant's current window. Call after the
// handler ran, with the cycles it actually consumed; a run admitted near
// the window edge is charged to the window that admitted it.
func (q *QuotaLedger) Charge(tenant string, cycles sim.Time) {
	if cycles > 0 {
		q.spent[tenant] += cycles
	}
}

// Remaining reports tenant's unspent allowance in the window containing
// now. Unlimited tenants report a negative value.
func (q *QuotaLedger) Remaining(tenant string, now sim.Time) sim.Time {
	q.roll(now)
	b, bounded := q.budget(tenant)
	if !bounded {
		return -1
	}
	if left := b - q.spent[tenant]; left > 0 {
		return left
	}
	return 0
}
