package sandbox

import (
	"math/rand"
	"testing"

	"ashs/internal/mach"
	"ashs/internal/vcode"
)

func assemble(t *testing.T, build func(b *vcode.Builder)) *vcode.Program {
	t.Helper()
	b := vcode.NewBuilder("t")
	build(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyRejectsFloat(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		b.Float(vcode.OpFAdd, vcode.RRet, vcode.RZero, vcode.RZero)
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err == nil {
		t.Fatal("float program verified")
	}
}

func TestVerifyRejectsSignedArith(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		b.Signed(vcode.OpAdd, vcode.RRet, vcode.RZero, vcode.RZero)
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err == nil {
		t.Fatal("signed-arithmetic program verified")
	}
}

func TestVerifyRejectsForgedSandboxOps(t *testing.T) {
	for _, op := range []vcode.Op{vcode.OpSboxMask, vcode.OpSboxChk, vcode.OpChkDiv, vcode.OpChkBudget} {
		p := assemble(t, func(b *vcode.Builder) {
			b.RawSandboxOp(op)
			b.Ret()
		})
		if err := Verify(p, DefaultPolicy()); err == nil {
			t.Fatalf("program containing %v verified", op)
		}
	}
}

func TestVerifyRejectsDisallowedCall(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		b.Call("kernel_format_disk")
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err == nil {
		t.Fatal("disallowed call verified")
	}
}

func TestVerifyAllowsListedCall(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		b.Call("ash_send")
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsWriteToSandboxReg(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		b.MovI(vcode.RSbox, 0)
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err == nil {
		t.Fatal("write to RSbox verified")
	}
}

func TestVerifyRejectsPipeOps(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		b.Input32(vcode.RRet)
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err == nil {
		t.Fatal("raw pipe op verified")
	}
}

func TestSandboxAddsTwoInsnsPerMemoryOp(t *testing.T) {
	pol := DefaultPolicy()
	pol.PrologueLen, pol.EpilogueLen = 0, 0
	p := assemble(t, func(b *vcode.Builder) {
		r := b.Temp()
		b.MovI(r, 0x1000)
		b.Ld32(vcode.RRet, r, 0)
		b.St32(r, 4, vcode.RRet)
		b.Ret()
	})
	sp, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	if sp.AddedStatic != 4 {
		t.Fatalf("AddedStatic = %d, want 4 (2 per memory op)", sp.AddedStatic)
	}
}

func TestSandboxEntryExitOverhead(t *testing.T) {
	pol := DefaultPolicy()
	p := assemble(t, func(b *vcode.Builder) {
		b.MovI(vcode.RRet, 1)
		b.Ret()
	})
	sp, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	want := pol.PrologueLen + pol.EpilogueLen
	if sp.AddedStatic != want {
		t.Fatalf("AddedStatic = %d, want %d (entry/exit only)", sp.AddedStatic, want)
	}
}

func TestX86ModeAddsNothing(t *testing.T) {
	pol := DefaultPolicy()
	pol.Hardware = HardwareX86
	p := assemble(t, func(b *vcode.Builder) {
		r := b.Temp()
		b.MovI(r, 0x1000)
		b.Ld32(vcode.RRet, r, 0)
		b.Ret()
	})
	sp, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	if sp.AddedStatic != 0 {
		t.Fatalf("x86 AddedStatic = %d, want 0", sp.AddedStatic)
	}
}

func runSandboxed(t *testing.T, p *vcode.Program, pol *Policy, memBase uint32, memLen int) (*vcode.Machine, *vcode.Fault) {
	t.Helper()
	sp, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	mem := vcode.NewFlatMem(memBase, memLen)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	sp.Attach(m, memBase, memBase+uint32(memLen), 10000)
	return m, m.Run(sp.Code)
}

func TestSandboxedInBoundsAccessWorks(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		r, v := b.Temp(), b.Temp()
		b.MovI(r, 0x1000)
		b.MovI(v, 77)
		b.St32(r, 8, v)
		b.Ld32(vcode.RRet, r, 8)
		b.Ret()
	})
	m, f := runSandboxed(t, p, DefaultPolicy(), 0x1000, 64)
	if f != nil {
		t.Fatal(f)
	}
	if m.Regs[vcode.RRet] != 77 {
		t.Fatalf("RRet = %d, want 77", m.Regs[vcode.RRet])
	}
}

func TestSandboxedOutOfBoundsStoreAborts(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		r := b.Temp()
		b.MovI(r, 0x9000) // outside the region
		b.St32(r, 0, r)
		b.Ret()
	})
	_, f := runSandboxed(t, p, DefaultPolicy(), 0x1000, 64)
	if f == nil || f.Kind != vcode.FaultBadAddr {
		t.Fatalf("fault = %v, want bad address", f)
	}
}

func TestSandboxedIndexedAccessChecked(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		base, idx := b.Temp(), b.Temp()
		b.MovI(base, 0x1000)
		b.MovI(idx, 4096) // pushes the EA out of the region
		b.Ld32X(vcode.RRet, base, idx)
		b.Ret()
	})
	_, f := runSandboxed(t, p, DefaultPolicy(), 0x1000, 64)
	if f == nil || f.Kind != vcode.FaultBadAddr {
		t.Fatalf("fault = %v, want bad address", f)
	}
}

func TestSandboxedDivZeroAborts(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		a := b.Temp()
		b.MovI(a, 5)
		b.DivU(vcode.RRet, a, vcode.RZero)
		b.Ret()
	})
	_, f := runSandboxed(t, p, DefaultPolicy(), 0x1000, 64)
	if f == nil || f.Kind != vcode.FaultDivZero {
		t.Fatalf("fault = %v, want div-zero (from inserted check)", f)
	}
}

func TestSoftwareBudgetAbortsRunawayLoop(t *testing.T) {
	pol := DefaultPolicy()
	pol.Budget = BudgetSoftware
	// A conditional branch that always retakes the loop: the assembler's
	// appended ret stays reachable (the hardened verifier rejects dead
	// code), but the branch never falls through at run time.
	p := assemble(t, func(b *vcode.Builder) {
		r := b.Temp()
		b.MovI(r, 1)
		top := b.NewLabel()
		b.Bind(top)
		b.Bne(r, vcode.RZero, top)
	})
	sp, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	mem := vcode.NewFlatMem(0x1000, 64)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	sp.Attach(m, 0x1000, 0x1040, 500)
	f := m.Run(sp.Code)
	if f == nil || f.Kind != vcode.FaultBudget {
		t.Fatalf("fault = %v, want budget", f)
	}
}

func TestSoftwareBudgetAllowsBoundedLoop(t *testing.T) {
	pol := DefaultPolicy()
	pol.Budget = BudgetSoftware
	p := assemble(t, func(b *vcode.Builder) {
		i, n := b.Temp(), b.Temp()
		b.MovI(i, 0)
		b.MovI(n, 50)
		top := b.NewLabel()
		b.Bind(top)
		b.AddIU(i, i, 1)
		b.BltU(i, n, top)
		b.Mov(vcode.RRet, i)
		b.Ret()
	})
	sp, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	mem := vcode.NewFlatMem(0x1000, 64)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	sp.Attach(m, 0x1000, 0x1040, 10000)
	if f := m.Run(sp.Code); f != nil {
		t.Fatal(f)
	}
	if m.Regs[vcode.RRet] != 50 {
		t.Fatalf("loop result = %d, want 50", m.Regs[vcode.RRet])
	}
}

func TestBranchRetargetingPreservesSemantics(t *testing.T) {
	// A program whose result depends on correct branch targets, with memory
	// ops interleaved so instrumentation shifts every index.
	p := assemble(t, func(b *vcode.Builder) {
		base, i, n, sum, v := b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp()
		b.MovI(base, 0x1000)
		// Fill 8 words with 1..8, then sum them.
		b.MovI(i, 0)
		b.MovI(n, 32)
		fill := b.NewLabel()
		b.Bind(fill)
		b.SrlI(v, i, 2)
		b.AddIU(v, v, 1)
		b.St32X(base, i, v)
		b.AddIU(i, i, 4)
		b.BltU(i, n, fill)
		b.MovI(i, 0)
		b.MovI(sum, 0)
		add := b.NewLabel()
		b.Bind(add)
		b.Ld32X(v, base, i)
		b.AddU(sum, sum, v)
		b.AddIU(i, i, 4)
		b.BltU(i, n, add)
		b.Mov(vcode.RRet, sum)
		b.Ret()
	})

	// Run unsandboxed and sandboxed (both budget modes); results must match.
	run := func(pol *Policy) uint32 {
		if pol == nil {
			mem := vcode.NewFlatMem(0x1000, 64)
			m := vcode.NewMachine(mach.DS5000_240(), mem)
			if f := m.Run(p); f != nil {
				t.Fatal(f)
			}
			return m.Regs[vcode.RRet]
		}
		sp, err := Sandbox(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		mem := vcode.NewFlatMem(0x1000, 64)
		m := vcode.NewMachine(mach.DS5000_240(), mem)
		sp.Attach(m, 0x1000, 0x1040, 100000)
		if f := m.Run(sp.Code); f != nil {
			t.Fatal(f)
		}
		return m.Regs[vcode.RRet]
	}
	want := run(nil)
	if want != 36 {
		t.Fatalf("reference result = %d, want 36", want)
	}
	polT := DefaultPolicy()
	polS := DefaultPolicy()
	polS.Budget = BudgetSoftware
	if got := run(polT); got != want {
		t.Fatalf("timer-mode sandboxed = %d, want %d", got, want)
	}
	if got := run(polS); got != want {
		t.Fatalf("software-budget sandboxed = %d, want %d", got, want)
	}
}

// trustedCopy registers the "ash_copy" kernel entry point: a data copy with
// access checks aggregated at initiation time (Section III-B2), so the
// per-word work escapes per-reference sandboxing. This is the mechanism
// behind the paper's observation that sandbox overhead drops from 1.3-1.4x
// at 40 bytes to 1.01-1.02x at 4096 bytes (Section V-D).
func trustedCopy(mem *vcode.FlatMem) vcode.SyscallFn {
	return func(m *vcode.Machine) error {
		src := m.Regs[vcode.RArg0]
		dst := m.Regs[vcode.RArg1]
		n := m.Regs[vcode.RArg2]
		m.Charge(12) // aggregated access check at initiation
		for off := uint32(0); off < n; off += 4 {
			v, err := mem.Load32(src + off)
			if err != nil {
				return err
			}
			if err := mem.Store32(dst+off, v); err != nil {
				return err
			}
			m.Charge(8) // uncached load + store + loop, per word
		}
		return nil
	}
}

func TestSandboxOverheadRatioShrinksWithDataSize(t *testing.T) {
	// Section V-D shape: the handler parses a small header with sandboxed
	// per-reference code, then moves the payload with the trusted
	// aggregated-check copy. Fixed sandbox overhead amortizes with size.
	writeProg := func(n int32) *vcode.Program {
		return assemble(t, func(b *vcode.Builder) {
			hdr, ptr := b.Temp(), b.Temp()
			b.MovI(hdr, 0x1000)
			b.Ld32(ptr, hdr, 0) // destination pointer carried in the message
			b.Ld32(vcode.RArg2, hdr, 4)
			b.MovI(vcode.RArg0, 0x1010) // payload start
			b.Mov(vcode.RArg1, ptr)
			b.MovI(vcode.RArg2, n)
			b.Call("ash_copy")
			b.Ret()
		})
	}
	ratio := func(n int32) float64 {
		run := func(sandboxed bool) int64 {
			p := writeProg(n)
			mem := vcode.NewFlatMem(0x1000, 0x8000)
			// Message header: destination pointer then length.
			_ = mem.Store32(0x1000, 0x5000)
			_ = mem.Store32(0x1004, uint32(n))
			m := vcode.NewMachine(mach.DS5000_240(), mem)
			m.Syms["ash_copy"] = trustedCopy(mem)
			if !sandboxed {
				if f := m.Run(p); f != nil {
					t.Fatal(f)
				}
				return int64(m.Cycles)
			}
			sp, err := Sandbox(p, DefaultPolicy())
			if err != nil {
				t.Fatal(err)
			}
			sp.Attach(m, 0x1000, 0x9000, 0)
			if f := m.Run(sp.Code); f != nil {
				t.Fatal(f)
			}
			return int64(m.Cycles)
		}
		return float64(run(true)) / float64(run(false))
	}
	small := ratio(40)
	large := ratio(4096)
	if small <= large {
		t.Fatalf("overhead ratio should shrink with size: small=%.3f large=%.3f", small, large)
	}
	if small < 1.05 {
		t.Fatalf("small-transfer ratio = %.3f, want visible overhead (paper: 1.3-1.4)", small)
	}
	if large > 1.1 {
		t.Fatalf("large-transfer overhead ratio = %.3f, want close to 1 (paper: 1.01-1.02)", large)
	}
}

// TestRandomProgramsNeverEscape is the safety property at the heart of the
// ASH design: no sandboxed program, however adversarial, may read or write
// outside its region, divide by zero, or run forever.
func TestRandomProgramsNeverEscape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pol := DefaultPolicy()
	pol.Budget = BudgetSoftware

	for trial := 0; trial < 300; trial++ {
		b := vcode.NewBuilder("fuzz")
		regs := make([]vcode.Reg, 6)
		for i := range regs {
			regs[i] = b.Temp()
		}
		lbl := b.NewLabel()
		bound := false
		count := 5 + rng.Intn(30)
		for i := 0; i < count; i++ {
			rd := regs[rng.Intn(len(regs))]
			rs := regs[rng.Intn(len(regs))]
			rt := regs[rng.Intn(len(regs))]
			switch rng.Intn(10) {
			case 0:
				b.MovI(rd, int32(rng.Uint32()))
			case 1:
				b.AddU(rd, rs, rt)
			case 2:
				b.Ld32(rd, rs, int32(rng.Intn(8192))&^3)
			case 3:
				b.St32(rs, int32(rng.Intn(8192))&^3, rt)
			case 4:
				b.DivU(rd, rs, rt)
			case 5:
				b.Ld8(rd, rs, int32(rng.Intn(8192)))
			case 6:
				b.XorI(rd, rs, int32(rng.Uint32()&0xffff))
			case 7:
				if !bound {
					b.Bind(lbl)
					bound = true
				} else {
					b.Bne(rs, rt, lbl)
				}
			case 8:
				b.MulU(rd, rs, rt)
			case 9:
				b.Bswap(rd, rs)
			}
		}
		if !bound {
			b.Bind(lbl)
		}
		b.Ret()
		p, err := b.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		sp, err := Sandbox(p, pol)
		if err != nil {
			t.Fatal(err) // generated ops are all verifiable
		}

		const base, size = 0x1000, 4096
		guarded := &guardMem{inner: vcode.NewFlatMem(0, 0x10000), lo: base, hi: base + size}
		m := vcode.NewMachine(mach.DS5000_240(), guarded)
		m.CycleLimit = 200000 // backstop so the test terminates even on bugs
		sp.Attach(m, base, base+size, 5000)
		m.Run(sp.Code) // fault or clean return both fine
		if guarded.escaped {
			t.Fatalf("trial %d: sandboxed program touched memory outside its region\n%s", trial, sp.Code)
		}
	}
}

// guardMem wraps a Memory and records accesses outside [lo, hi).
type guardMem struct {
	inner   vcode.Memory
	lo, hi  uint32
	escaped bool
}

func (g *guardMem) check(addr uint32) {
	if addr < g.lo || addr >= g.hi {
		g.escaped = true
	}
}
func (g *guardMem) Load32(a uint32) (uint32, error) { g.check(a); return g.inner.Load32(a) }
func (g *guardMem) Load16(a uint32) (uint16, error) { g.check(a); return g.inner.Load16(a) }
func (g *guardMem) Load8(a uint32) (byte, error)    { g.check(a); return g.inner.Load8(a) }
func (g *guardMem) Store32(a uint32, v uint32) error {
	g.check(a)
	return g.inner.Store32(a, v)
}
func (g *guardMem) Store16(a uint32, v uint16) error {
	g.check(a)
	return g.inner.Store16(a, v)
}
func (g *guardMem) Store8(a uint32, v byte) error {
	g.check(a)
	return g.inner.Store8(a, v)
}

func TestOptimisticExceptionsOmitDivChecks(t *testing.T) {
	// Section III-B1: with OS support for handler exceptions, the divide
	// check is omitted — the program is smaller — yet a divide-by-zero
	// still aborts the handler (the kernel catches the trap).
	prog := assemble(t, func(b *vcode.Builder) {
		a, d := b.Temp(), b.Temp()
		b.MovI(a, 100)
		b.MovI(d, 0)
		b.DivU(vcode.RRet, a, d)
		b.Ret()
	})
	checked := DefaultPolicy()
	optimistic := DefaultPolicy()
	optimistic.OptimisticExceptions = true

	spC, err := Sandbox(prog, checked)
	if err != nil {
		t.Fatal(err)
	}
	spO, err := Sandbox(prog, optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if spO.AddedStatic >= spC.AddedStatic {
		t.Fatalf("optimistic added %d insns, checked %d — no saving", spO.AddedStatic, spC.AddedStatic)
	}
	mem := vcode.NewFlatMem(0x1000, 64)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	spO.Attach(m, 0x1000, 0x1040, 0)
	f := m.Run(spO.Code)
	if f == nil || f.Kind != vcode.FaultDivZero {
		t.Fatalf("fault = %v, want divide-by-zero caught by the kernel", f)
	}
}
