package sandbox

import (
	"testing"

	"ashs/internal/mach"
	"ashs/internal/vcode"
)

func TestVerifyRejectsUnreachableCode(t *testing.T) {
	p := &vcode.Program{Name: "dead", Insns: []vcode.Insn{
		{Op: vcode.OpJmp, Target: 2},
		{Op: vcode.OpMovI, Rd: 8, Imm: 1}, // unreachable
		{Op: vcode.OpRet},
	}}
	err := Verify(p, DefaultPolicy())
	if err == nil {
		t.Fatal("program with unreachable code verified")
	}
	ve, ok := err.(*VerifyError)
	if !ok || ve.PC != 1 {
		t.Fatalf("err = %v, want VerifyError at pc=1", err)
	}
}

func TestVerifyRejectsUndisciplinedJmpR(t *testing.T) {
	// The target register comes straight from an argument: nothing bounds
	// it inside the program, so the jump-table discipline check must fire.
	p := assemble(t, func(b *vcode.Builder) {
		b.JmpR(vcode.RArg0)
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err == nil {
		t.Fatal("undisciplined indirect jump verified")
	}
}

func TestVerifyAcceptsBoundedJmpR(t *testing.T) {
	// A constant target is provably inside the program.
	p := assemble(t, func(b *vcode.Builder) {
		r := b.Temp()
		b.MovI(r, 2)
		b.JmpR(r)
		b.Ret()
	})
	if err := Verify(p, DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	// Masking an arbitrary value into range also satisfies the discipline.
	p2 := assemble(t, func(b *vcode.Builder) {
		r := b.Temp()
		b.AndI(r, vcode.RArg0, 3) // program is 4 insns long
		b.JmpR(r)
		b.Nop()
		b.Ret()
	})
	if err := Verify(p2, DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
}

func TestSandboxClonesOriginal(t *testing.T) {
	for _, hw := range []Hardware{HardwareMIPS, HardwareX86} {
		pol := DefaultPolicy()
		pol.Hardware = hw
		p := assemble(t, func(b *vcode.Builder) {
			b.MovI(vcode.RRet, 1)
			b.Ret()
		})
		sp, err := Sandbox(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		p.Insns[0].Imm = 99 // caller mutates its program after download
		if sp.Orig.Insns[0].Imm != 1 {
			t.Fatalf("hw=%v: Orig aliases the caller's program", hw)
		}
	}
}

func optPolicy() *Policy {
	pol := DefaultPolicy()
	pol.Optimize = true
	return pol
}

// runBoth sandboxes p naively and optimized, runs both on fresh machines,
// and returns the two programs plus the two machines for inspection.
func runBoth(t *testing.T, p *vcode.Program, naivePol, optPol *Policy, base uint32, size int, budget int64) (spN, spO *Program, mN, mO *vcode.Machine) {
	t.Helper()
	run := func(pol *Policy) (*Program, *vcode.Machine) {
		sp, err := Sandbox(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		mem := vcode.NewFlatMem(base, size)
		m := vcode.NewMachine(mach.DS5000_240(), mem)
		sp.Attach(m, base, base+uint32(size), budget)
		if f := m.Run(sp.Code); f != nil {
			t.Fatalf("%s: %v", sp.Code.Name, f)
		}
		return sp, m
	}
	spN, mN = run(naivePol)
	spO, mO = run(optPol)
	return
}

func TestOptimizeElidesClusteredChecks(t *testing.T) {
	// Four accesses through one unchanging base register: naive emits four
	// check pairs, optimized at most two (the hull endpoints).
	p := assemble(t, func(b *vcode.Builder) {
		r, v := b.Temp(), b.Temp()
		b.MovI(r, 0x1000)
		b.MovI(v, 5)
		b.St32(r, 0, v)
		b.St32(r, 4, v)
		b.St32(r, 8, v)
		b.Ld32(vcode.RRet, r, 0)
		b.Ret()
	})
	spN, spO, mN, mO := runBoth(t, p, DefaultPolicy(), optPolicy(), 0x1000, 64, 0)
	if spO.ChecksElided == 0 {
		t.Fatal("no checks elided on a clustered-access program")
	}
	if spO.AddedStatic >= spN.AddedStatic {
		t.Fatalf("optimized added %d static insns, naive %d", spO.AddedStatic, spN.AddedStatic)
	}
	if mO.Insns >= mN.Insns {
		t.Fatalf("optimized ran %d insns, naive %d", mO.Insns, mN.Insns)
	}
	if mO.Regs[vcode.RRet] != mN.Regs[vcode.RRet] {
		t.Fatalf("results differ: opt=%d naive=%d", mO.Regs[vcode.RRet], mN.Regs[vcode.RRet])
	}
}

func TestOptimizedStillCatchesOutOfRegion(t *testing.T) {
	// The clustered accesses straddle the region end: the hull endpoint
	// check must still fault even though per-member checks were elided.
	p := assemble(t, func(b *vcode.Builder) {
		r, v := b.Temp(), b.Temp()
		b.MovI(r, 0x1000)
		b.MovI(v, 5)
		b.St32(r, 0, v)
		b.St32(r, 128, v) // past the 64-byte region
		b.Ret()
	})
	sp, err := Sandbox(p, optPolicy())
	if err != nil {
		t.Fatal(err)
	}
	mem := vcode.NewFlatMem(0x1000, 4096)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	sp.Attach(m, 0x1000, 0x1040, 0)
	f := m.Run(sp.Code)
	if f == nil || f.Kind != vcode.FaultBadAddr {
		t.Fatalf("fault = %v, want bad address", f)
	}
	if v, _ := mem.Load32(0x1080); v != 0 {
		t.Fatal("out-of-region store went through")
	}
}

func TestOptimizeHoistsLoopInvariantChecks(t *testing.T) {
	// A 10-iteration loop storing through a loop-invariant base register:
	// naive checks every iteration, optimized checks once in the preheader.
	loop := func(b *vcode.Builder) {
		base, i, n := b.Temp(), b.Temp(), b.Temp()
		b.MovI(base, 0x1000)
		b.MovI(i, 0)
		b.MovI(n, 10)
		top := b.NewLabel()
		b.Bind(top)
		b.St32(base, 8, i)
		b.AddIU(i, i, 1)
		b.BltU(i, n, top)
		b.Mov(vcode.RRet, i)
		b.Ret()
	}
	p := assemble(t, loop)
	spN, spO, mN, mO := runBoth(t, p, DefaultPolicy(), optPolicy(), 0x1000, 64, 0)
	_ = spN
	if spO.ChecksHoisted == 0 {
		t.Fatal("no checks hoisted out of an invariant-base loop")
	}
	if mO.Insns >= mN.Insns {
		t.Fatalf("optimized ran %d insns, naive %d", mO.Insns, mN.Insns)
	}
	if mO.Regs[vcode.RRet] != 10 || mN.Regs[vcode.RRet] != 10 {
		t.Fatalf("results: opt=%d naive=%d, want 10", mO.Regs[vcode.RRet], mN.Regs[vcode.RRet])
	}
}

func TestOptimizeCoarsensBudgetChecks(t *testing.T) {
	softOpt := optPolicy()
	softOpt.Budget = BudgetSoftware
	softNaive := DefaultPolicy()
	softNaive.Budget = BudgetSoftware

	p := assemble(t, func(b *vcode.Builder) {
		i, n := b.Temp(), b.Temp()
		b.MovI(i, 0)
		b.MovI(n, 50)
		top := b.NewLabel()
		b.Bind(top)
		b.AddIU(i, i, 1)
		b.BltU(i, n, top)
		b.Mov(vcode.RRet, i)
		b.Ret()
	})
	spN, spO, mN, mO := runBoth(t, p, softNaive, softOpt, 0x1000, 64, 100000)
	if spO.BudgetCoarsened != 1 {
		t.Fatalf("BudgetCoarsened = %d, want 1", spO.BudgetCoarsened)
	}
	if mO.Insns >= mN.Insns {
		t.Fatalf("optimized ran %d insns, naive %d", mO.Insns, mN.Insns)
	}
	if mO.Regs[vcode.RRet] != 50 || mN.Regs[vcode.RRet] != 50 {
		t.Fatalf("results: opt=%d naive=%d, want 50", mO.Regs[vcode.RRet], mN.Regs[vcode.RRet])
	}
	_ = spN

	// With a budget too small for the whole loop, the coarse up-front
	// drain still aborts the handler.
	sp, err := Sandbox(p, softOpt)
	if err != nil {
		t.Fatal(err)
	}
	mem := vcode.NewFlatMem(0x1000, 64)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	sp.Attach(m, 0x1000, 0x1040, 20)
	if f := m.Run(sp.Code); f == nil || f.Kind != vcode.FaultBudget {
		t.Fatalf("fault = %v, want budget", f)
	}
}

func TestOptimizeElidesProvablyNonzeroDivide(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		a, d := b.Temp(), b.Temp()
		b.MovI(a, 100)
		b.MovI(d, 7)
		b.DivU(vcode.RRet, a, d)
		b.Ret()
	})
	spN, spO, mN, mO := runBoth(t, p, DefaultPolicy(), optPolicy(), 0x1000, 64, 0)
	if spO.AddedStatic >= spN.AddedStatic {
		t.Fatalf("optimized added %d, naive %d — divide check not elided", spO.AddedStatic, spN.AddedStatic)
	}
	if mO.Regs[vcode.RRet] != 14 || mN.Regs[vcode.RRet] != 14 {
		t.Fatalf("results: opt=%d naive=%d, want 14", mO.Regs[vcode.RRet], mN.Regs[vcode.RRet])
	}
}

func TestOptimizeFallsBackOnIndirectJumps(t *testing.T) {
	p := assemble(t, func(b *vcode.Builder) {
		r, a := b.Temp(), b.Temp()
		b.MovI(r, 2)
		b.JmpR(r)
		b.MovI(a, 0x1000)
		b.Ld32(vcode.RRet, a, 0)
		b.Ret()
	})
	sp, err := Sandbox(p, optPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if sp.ChecksElided != 0 || sp.ChecksHoisted != 0 || sp.BudgetCoarsened != 0 {
		t.Fatal("optimizer ran on a program with an indirect jump")
	}
	mem := vcode.NewFlatMem(0x1000, 64)
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	sp.Attach(m, 0x1000, 0x1040, 0)
	if f := m.Run(sp.Code); f != nil {
		t.Fatal(f)
	}
}
