package sandbox_test

// The registry sweep: every handler the crl package builds, under both
// budget strategies, against the measured profile and a bank of
// adversarial profiles. This is the acceptance gate for the DCG loop —
// profile-guided re-optimization may only ever change cost, never
// semantics, no matter what the profile claims.

import (
	"testing"

	"ashs/internal/crl"
	"ashs/internal/sandbox"
	"ashs/internal/vcode"
	"ashs/internal/vcode/reopt"
)

// adversarialProfiles builds the profile bank for a program: profiles
// the optimizer must survive even though no execution produced them.
func adversarialProfiles(p *vcode.Program) map[string]*reopt.Profile {
	n := len(p.Insns)
	zero := make([]uint64, n)
	sat := make([]uint64, n)
	for i := range sat {
		sat[i] = ^uint64(0)
	}
	// Inconsistent with any run: wrong length, wild counts claiming cold
	// code hot and branches taken more often than their blocks executed.
	incons := make([]uint64, n+7)
	for i := range incons {
		incons[i] = uint64(i*2654435761) % 1e9
	}
	return map[string]*reopt.Profile{
		"all-zero":     {Handler: p.Name, Invocations: 0, Counts: zero},
		"saturated":    {Handler: p.Name, Invocations: 1, Counts: sat},
		"inconsistent": {Handler: p.Name, Invocations: ^uint64(0), Counts: incons},
		"nil-counts":   {Handler: p.Name, Invocations: 3, Counts: nil},
	}
}

func TestThreeWayRegistry(t *testing.T) {
	modes := map[string]sandbox.BudgetMode{
		"timer":    sandbox.BudgetTimer,
		"software": sandbox.BudgetSoftware,
	}
	for _, e := range crl.Library() {
		for mname, mode := range modes {
			cfg := sandbox.DiffConfig{
				Budget: mode, Rounds: 6, Msg: e.Msg, Setup: e.Setup,
			}
			t.Run(e.Name+"/"+mname+"/measured", func(t *testing.T) {
				out, err := sandbox.ThreeWay(e.Prog, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if out.FaultRounds != 0 {
					t.Fatalf("registry handler faulted: %+v", out)
				}
			})
			for pname, prof := range adversarialProfiles(e.Prog) {
				t.Run(e.Name+"/"+mname+"/"+pname, func(t *testing.T) {
					if _, err := sandbox.ThreeWay(e.Prog, prof, cfg); err != nil {
						t.Fatal(err)
					}
				})
			}
			// Starved budgets: equivalence is off the table (the coarse
			// drain faults earlier than per-iteration checks), confinement
			// is not.
			if mode == sandbox.BudgetSoftware {
				t.Run(e.Name+"/starved", func(t *testing.T) {
					scfg := cfg
					scfg.ConfinementOnly = true
					for _, b := range []int64{5, 25, 60, 120} {
						scfg.InsnBudget = b
						if _, err := sandbox.ThreeWay(e.Prog, nil, scfg); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// TestReoptActuallyImproves pins the profitability the reopt experiment
// reports: with a measured profile, the re-optimized variant runs
// strictly fewer dynamic instructions than the statically optimized one
// on the handlers built to expose each transform.
func TestReoptActuallyImproves(t *testing.T) {
	cases := []struct {
		name string
		mode sandbox.BudgetMode
	}{
		// Message-carried modulus: only the profile can hoist the per-word
		// divide check out of the loop.
		{"crl-shard-counter", sandbox.BudgetTimer},
		// Multi-block copy loop: only the profile-guided trip analysis can
		// coarsen the per-iteration budget checks.
		{"crl-write-sparse", sandbox.BudgetSoftware},
	}
	byName := map[string]crl.LibraryEntry{}
	for _, e := range crl.Library() {
		byName[e.Name] = e
	}
	for _, tc := range cases {
		e, ok := byName[tc.name]
		if !ok {
			t.Fatalf("registry lost handler %s", tc.name)
		}
		out, err := sandbox.ThreeWay(e.Prog, nil, sandbox.DiffConfig{
			Budget: tc.mode, Rounds: 4, Msg: e.Msg, Setup: e.Setup,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.ReoptInsns >= out.OptInsns {
			t.Errorf("%s: reopt %d insns, statically optimized %d — no win",
				tc.name, out.ReoptInsns, out.OptInsns)
		}
	}
}
