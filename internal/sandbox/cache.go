package sandbox

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"

	"ashs/internal/vcode"
)

// The compile cache makes Verify and Sandbox content-addressed: both are
// pure functions of (program contents, policy contents), and the bench
// sweeps download the same handful of handler programs thousands of times
// (once per freshly built testbed), so verification and SFI instrumentation
// are memoized under a sha256 key of program fingerprint + policy
// fingerprint. Cached builds are cloned on every hit — callers own their
// Program outright, exactly as if it had been instrumented from scratch —
// so the cache is invisible except in wall time. It is safe under
// concurrent use (the parallel bench runner compiles from many goroutines).

// cacheKey addresses one (program, policy) pair by content.
type cacheKey struct {
	prog [sha256.Size]byte
	pol  [sha256.Size]byte
}

// cacheCap bounds each memo table; when an insert would exceed it the
// table is flushed. Real workloads use a few dozen distinct handlers, so
// a flush means something is generating programs in a loop — starting
// over is cheaper than tracking recency.
const cacheCap = 256

var cache struct {
	sync.Mutex
	verify map[cacheKey]error
	build  map[cacheKey]*Program
	hits   uint64
	misses uint64
}

// policyFingerprint hashes every policy field that can influence
// verification or instrumentation. AllowedCalls entries mapped to false
// are skipped: Verify treats them identically to absent entries.
func policyFingerprint(pol *Policy) [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	putBool := func(b bool) {
		if b {
			putU64(1)
		} else {
			putU64(0)
		}
	}
	putU64(uint64(pol.Hardware))
	putU64(uint64(pol.Budget))
	putBool(pol.Optimize)
	putBool(pol.OptimisticExceptions)
	putU64(uint64(pol.PrologueLen))
	putU64(uint64(pol.EpilogueLen))
	allowed := make([]string, 0, len(pol.AllowedCalls))
	for name, ok := range pol.AllowedCalls {
		if ok {
			allowed = append(allowed, name)
		}
	}
	sort.Strings(allowed)
	putU64(uint64(len(allowed)))
	for _, name := range allowed {
		putU64(uint64(len(name)))
		h.Write([]byte(name))
	}
	// The attached profile changes which transformations fire, so the same
	// program re-instrumented under a different profile must miss.
	if pol.Profile != nil {
		putU64(1)
		fp := pol.Profile.Fingerprint()
		h.Write(fp[:])
	} else {
		putU64(0)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func keyOf(p *vcode.Program, pol *Policy) cacheKey {
	return cacheKey{prog: p.Fingerprint(), pol: policyFingerprint(pol)}
}

// cloneFor deep-copies a cached build for a new caller. The caller's own
// policy pointer is installed so identity comparisons against the policy
// they passed in keep working.
func (sp *Program) cloneFor(pol *Policy) *Program {
	cp := *sp
	cp.Orig = sp.Orig.Clone()
	cp.Code = sp.Code.Clone()
	cp.JmpTable = append([]int(nil), sp.JmpTable...)
	cp.Policy = pol
	return &cp
}

// Verify performs the download-time static checks and returns nil if the
// program may be instrumented and installed. Results (rejections included)
// are memoized by content.
func Verify(p *vcode.Program, pol *Policy) error {
	k := keyOf(p, pol)
	cache.Lock()
	if err, ok := cache.verify[k]; ok {
		cache.hits++
		cache.Unlock()
		return err
	}
	cache.misses++
	cache.Unlock()
	err := verifyProgram(p, pol)
	cache.Lock()
	if cache.verify == nil || len(cache.verify) >= cacheCap {
		cache.verify = make(map[cacheKey]error)
	}
	cache.verify[k] = err
	cache.Unlock()
	return err
}

// Sandbox verifies and instruments a program under pol. The input program
// is not modified; the returned Program keeps its own private copy. Builds
// are memoized by content and cloned on every hit.
func Sandbox(p *vcode.Program, pol *Policy) (*Program, error) {
	k := keyOf(p, pol)
	cache.Lock()
	if sp, ok := cache.build[k]; ok {
		cache.hits++
		cache.Unlock()
		return sp.cloneFor(pol), nil
	}
	cache.misses++
	cache.Unlock()
	sp, err := compile(p, pol)
	if err != nil {
		return nil, err
	}
	cache.Lock()
	if cache.build == nil || len(cache.build) >= cacheCap {
		cache.build = make(map[cacheKey]*Program)
	}
	// Store a private clone: the built Program is handed to the caller,
	// who may attach it to a machine, and must never alias cache state.
	cache.build[k] = sp.cloneFor(pol)
	cache.Unlock()
	return sp, nil
}

// CacheStats reports cumulative compile-cache hits and misses (Verify and
// Sandbox combined).
func CacheStats() (hits, misses uint64) {
	cache.Lock()
	defer cache.Unlock()
	return cache.hits, cache.misses
}

// ResetCache empties the cache and zeroes the stats (test hook).
func ResetCache() {
	cache.Lock()
	defer cache.Unlock()
	cache.verify = nil
	cache.build = nil
	cache.hits, cache.misses = 0, 0
}
