package sandbox

import (
	"testing"

	"ashs/internal/sim"
)

// TestQuotaAdmitChargeRefuse: a tenant runs until its window budget is
// spent, is refused after, and other tenants are unaffected.
func TestQuotaAdmitChargeRefuse(t *testing.T) {
	q := NewQuotaLedger(1000, 300)
	now := sim.Time(10)
	for i := 0; i < 3; i++ {
		if !q.Admit("a", now) {
			t.Fatalf("run %d: tenant a refused under budget", i)
		}
		q.Charge("a", 100)
	}
	if q.Admit("a", now) {
		t.Fatal("tenant a admitted with budget spent")
	}
	if !q.Admit("b", now) {
		t.Fatal("tenant b refused by tenant a's spend")
	}
	if q.Admitted != 4 || q.Refused != 1 {
		t.Fatalf("admitted/refused = %d/%d, want 4/1", q.Admitted, q.Refused)
	}
}

// TestQuotaWindowRoll: spend clears when virtual time crosses into the
// next window, and a run admitted in window N charges window N.
func TestQuotaWindowRoll(t *testing.T) {
	q := NewQuotaLedger(1000, 100)
	if !q.Admit("a", 50) {
		t.Fatal("fresh tenant refused")
	}
	q.Charge("a", 100)
	if q.Admit("a", 900) {
		t.Fatal("admitted inside exhausted window")
	}
	if !q.Admit("a", 1001) {
		t.Fatal("refused after window rolled")
	}
	if got := q.Remaining("a", 1001); got != 100 {
		t.Fatalf("remaining after roll = %d, want 100", got)
	}
}

// TestQuotaPerTenantBudget: SetBudget overrides the default, including
// marking a tenant unlimited.
func TestQuotaPerTenantBudget(t *testing.T) {
	q := NewQuotaLedger(1000, 100)
	q.SetBudget("big", 500)
	q.SetBudget("infra", 0) // unlimited
	q.Charge("big", 400)
	if !q.Admit("big", 1) {
		t.Fatal("big refused under its raised budget")
	}
	q.Charge("big", 200)
	if q.Admit("big", 1) {
		t.Fatal("big admitted over its raised budget")
	}
	for i := 0; i < 50; i++ {
		if !q.Admit("infra", 1) {
			t.Fatal("unlimited tenant refused")
		}
		q.Charge("infra", 1000)
	}
	if got := q.Remaining("infra", 1); got != -1 {
		t.Fatalf("unlimited tenant remaining = %d, want -1", got)
	}
}

// TestQuotaUnlimitedDefault: a ledger with no default budget admits
// everything (the zero-cost configuration).
func TestQuotaUnlimitedDefault(t *testing.T) {
	q := NewQuotaLedger(1000, 0)
	for i := 0; i < 10; i++ {
		if !q.Admit("x", sim.Time(i)) {
			t.Fatal("refused with unlimited default")
		}
		q.Charge("x", 1<<20)
	}
	if q.Refused != 0 {
		t.Fatalf("refused = %d, want 0", q.Refused)
	}
}
