package sandbox

import (
	"reflect"
	"testing"

	"ashs/internal/vcode"
	"ashs/internal/vcode/reopt"
)

// memProgram builds a small handler with loads and stores so the SFI
// instrumenter has real work to memoize.
func memProgram(t *testing.T) *vcode.Program {
	return assemble(t, func(b *vcode.Builder) {
		r, v := b.Temp(), b.Temp()
		b.MovI(r, 64)
		b.MovI(v, 7)
		b.St32(r, 0, v)
		b.St32(r, 4, v)
		b.Ld32(vcode.RRet, r, 0)
		b.Ret()
	})
}

func TestCompileCacheHitMatchesMiss(t *testing.T) {
	ResetCache()
	pol := DefaultPolicy()
	p := memProgram(t)

	sp1, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats after miss+hit: hits=%d misses=%d", hits, misses)
	}
	if sp2.Policy != pol {
		t.Fatal("cached build does not carry the caller's policy pointer")
	}
	if !reflect.DeepEqual(sp1.Code.Insns, sp2.Code.Insns) ||
		!reflect.DeepEqual(sp1.JmpTable, sp2.JmpTable) ||
		sp1.AddedStatic != sp2.AddedStatic {
		t.Fatal("cached build differs from fresh build")
	}
	if sp1.Code == sp2.Code || &sp1.JmpTable[0] == &sp2.JmpTable[0] {
		t.Fatal("cache hit aliases a previously returned build")
	}

	// A caller may do what it likes with its copy; later hits must be
	// unaffected.
	sp2.Code.Insns[0] = vcode.Insn{Op: vcode.OpNop}
	sp2.JmpTable[0] = -1
	sp3, err := Sandbox(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp1.Code.Insns, sp3.Code.Insns) ||
		!reflect.DeepEqual(sp1.JmpTable, sp3.JmpTable) {
		t.Fatal("mutating a returned build poisoned the cache")
	}
}

func TestCacheDistinguishesPolicies(t *testing.T) {
	ResetCache()
	p := memProgram(t)
	naive := DefaultPolicy()
	opt := DefaultPolicy()
	opt.Optimize = true

	spNaive, err := Sandbox(p, naive)
	if err != nil {
		t.Fatal(err)
	}
	spOpt, err := Sandbox(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(spNaive.Code.Insns, spOpt.Code.Insns) {
		t.Fatal("distinct policies produced identical instrumentation — key collision?")
	}
	_, misses := CacheStats()
	if misses < 2 {
		t.Fatalf("expected two compile misses, got %d", misses)
	}

	// x86 policy differs only in the Hardware field.
	x86 := DefaultPolicy()
	x86.Hardware = HardwareX86
	spX86, err := Sandbox(p, x86)
	if err != nil {
		t.Fatal(err)
	}
	if spX86.AddedStatic != 0 || spX86.AddedStatic == spNaive.AddedStatic {
		t.Fatalf("x86 build added %d instructions (MIPS added %d)",
			spX86.AddedStatic, spNaive.AddedStatic)
	}
}

func TestCacheDistinguishesProfiles(t *testing.T) {
	ResetCache()
	// A loop with a message-dependent divide: exactly the shape where an
	// attached profile changes the emitted instrumentation.
	p := crlShardShape(t)
	base := DefaultPolicy()
	base.Optimize = true

	spStatic, err := Sandbox(p, base)
	if err != nil {
		t.Fatal(err)
	}

	hot := make([]uint64, len(p.Insns))
	for i := range hot {
		hot[i] = reopt.HotTrips * 4
	}
	withHot := DefaultPolicy()
	withHot.Optimize = true
	withHot.Profile = &reopt.Profile{Handler: p.Name, Invocations: 4, Counts: hot}

	spHot, err := Sandbox(p, withHot)
	if err != nil {
		t.Fatal(err)
	}
	_, misses := CacheStats()
	if misses < 2 {
		t.Fatalf("same program under a different profile hit the cache (misses=%d)", misses)
	}
	if reflect.DeepEqual(spStatic.Code.Insns, spHot.Code.Insns) {
		t.Fatal("hot profile changed nothing — the keying test has lost its teeth")
	}

	// Same profile contents under a fresh policy pointer: must hit, and
	// the clone must carry the caller's pointer, not the cached one.
	again := DefaultPolicy()
	again.Optimize = true
	again.Profile = &reopt.Profile{Handler: p.Name, Invocations: 4,
		Counts: append([]uint64(nil), hot...)}
	hitsBefore, _ := CacheStats()
	spAgain, err := Sandbox(p, again)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := CacheStats()
	if hitsAfter == hitsBefore {
		t.Fatal("identical profile contents missed the cache")
	}
	if spAgain.Policy != again {
		t.Fatal("cached build does not carry the caller's policy pointer")
	}
	if !reflect.DeepEqual(spAgain.Code.Insns, spHot.Code.Insns) {
		t.Fatal("cache hit returned different code than the original build")
	}

	// Different counts, same length: different fingerprint, fresh build.
	cold := make([]uint64, len(p.Insns))
	withCold := DefaultPolicy()
	withCold.Optimize = true
	withCold.Profile = &reopt.Profile{Handler: p.Name, Invocations: 4, Counts: cold}
	_, missesBefore := CacheStats()
	if _, err := Sandbox(p, withCold); err != nil {
		t.Fatal(err)
	}
	if _, missesNow := CacheStats(); missesNow == missesBefore {
		t.Fatal("cold profile reused the hot profile's build")
	}
}

// crlShardShape mirrors the shard-counter handler's loop: a
// loop-invariant, message-carried divisor the static pass must check
// every iteration but a hot profile lets the re-optimizer hoist.
func crlShardShape(t *testing.T) *vcode.Program {
	return assemble(t, func(b *vcode.Builder) {
		mod, i, n, v := b.Temp(), b.Temp(), b.Temp(), b.Temp()
		b.Ld32(mod, vcode.RArg0, 0)
		b.MovI(i, 0)
		b.MovI(n, 32)
		top := b.NewLabel()
		b.Bind(top)
		b.Ld32X(v, vcode.RArg0, i)
		b.RemU(v, v, mod)
		b.AddIU(i, i, 4)
		b.BltU(i, n, top)
		b.MovI(vcode.RRet, 0)
		b.Ret()
	})
}

func TestVerifyCacheRemembersRejections(t *testing.T) {
	ResetCache()
	bad := assemble(t, func(b *vcode.Builder) {
		b.Call("kernel_format_disk")
		b.Ret()
	})
	pol := DefaultPolicy()
	err1 := Verify(bad, pol)
	err2 := Verify(bad, pol)
	if err1 == nil || err2 == nil {
		t.Fatal("disallowed call verified")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("cached rejection differs: %v vs %v", err1, err2)
	}
	hits, _ := CacheStats()
	if hits == 0 {
		t.Fatal("second Verify did not hit the cache")
	}

	// Allowing the call changes the policy fingerprint: the cached
	// rejection must not shadow the now-valid program.
	allowed := DefaultPolicy()
	allowed.AllowedCalls["kernel_format_disk"] = true
	if err := Verify(bad, allowed); err != nil {
		t.Fatalf("policy change did not miss the cache: %v", err)
	}
}
