// SFI check optimizer: a static-analysis pass over the verified program
// that emits the same protection as instrumentNaive with fewer dynamic
// instructions. Three transformations, all proven against the naive
// instrumentation by the differential fuzz tests:
//
//  1. Check elision. A passed bounds check certifies one point address
//     reg+imm; because the SFI region is a single contiguous range, two
//     certified points at most analysis.MaxCertSpan apart certify every
//     offset between them. Direct memory ops in a basic block that share
//     an unmodified base register therefore form a group needing at most
//     two check pairs (the hull endpoints), and a forward dataflow over
//     CheckSets elides even those when a dominating check on every path
//     already covers them. Divide checks are elided when the interval
//     analysis proves the divisor nonzero.
//
//  2. Check hoisting. A group anchor inside a loop whose base register is
//     never written in the loop, and whose block dominates every latch and
//     every exit-edge source, performs the same check with the same
//     register value on every iteration; its endpoint checks move to a
//     preheader that runs once per loop entry.
//
//  3. Budget coarsening. A single-block counted loop with a provable trip
//     count drains trips x bodyLen from the software budget once in the
//     preheader instead of bodyLen per iteration at the latch.
//
// With a Policy.Profile attached (the DCG loop, DESIGN.md §16), two more
// transformations fire on measured-hot sites, each re-proven statically
// here so the profile can only select them, never weaken them: divide
// checks on loop-invariant divisors hoist to the preheader, and exactly
// counted multi-block loops (reopt.TripBoundMultiBlock) coarsen like the
// single-block case.
//
// Programs containing indirect jumps fall back to naive instrumentation:
// jump-table entry points would invalidate the dataflow's edge set.
package sandbox

import (
	"math"

	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
	"ashs/internal/vcode/reopt"
)

type optStats struct {
	elided     int // check sites present in naive output but not emitted
	hoisted    int // check pairs emitted in loop preheaders
	coarsened  int // loops whose budget checks collapsed into one drain
	divHoisted int // divide sites whose zero check moved to a preheader
}

// memGroup is a cluster of direct memory ops in one basic block sharing a
// base register that is not redefined between them, with an offset hull no
// wider than analysis.MaxCertSpan. Checking the hull endpoints certifies
// every member.
type memGroup struct {
	reg            vcode.Reg
	minImm, maxImm int64
	members        int
}

// preheader is the code block synthesized in front of a loop header.
type preheader struct {
	loop    *analysis.Loop
	hoisted []*memGroup
	coarse  *coarsePlan

	// hoistDivs lists loop-invariant divisor registers whose zero check
	// runs once here instead of at every in-loop divide (profile-guided;
	// see planPreheaders).
	hoistDivs []vcode.Reg
}

type coarsePlan struct {
	trips    int64
	headerPC int // original pc of the loop's first instruction
	latchPC  int // original pc of the backward branch
}

func isDirectMem(op vcode.Op) bool {
	return (op.IsLoad() || op.IsStore()) && !op.IsIndexed()
}

func isIndexedMem(op vcode.Op) bool {
	return (op.IsLoad() || op.IsStore()) && op.IsIndexed()
}

// buildGroups clusters the direct memory ops of every block. A group is
// open per base register and closes when the register is redefined, a call
// clobbers everything, the block ends, or adding an op would stretch the
// hull past MaxCertSpan.
func buildGroups(c *analysis.CFG) map[int]*memGroup {
	anchorOf := map[int]*memGroup{}
	for _, b := range c.Blocks {
		open := map[vcode.Reg]*memGroup{}
		for pc := b.Start; pc < b.End; pc++ {
			in := c.Prog.Insns[pc]
			if in.Op == vcode.OpCall {
				open = map[vcode.Reg]*memGroup{}
			}
			if isDirectMem(in.Op) {
				imm := int64(in.Imm)
				g := open[in.Rs]
				if g != nil {
					lo, hi := g.minImm, g.maxImm
					if imm < lo {
						lo = imm
					}
					if imm > hi {
						hi = imm
					}
					if hi-lo <= analysis.MaxCertSpan {
						g.minImm, g.maxImm, g.members = lo, hi, g.members+1
					} else {
						g = nil
					}
				}
				if g == nil {
					g = &memGroup{reg: in.Rs, minImm: imm, maxImm: imm, members: 1}
					open[in.Rs] = g
					anchorOf[pc] = g
				}
			}
			for _, d := range analysis.Defs(in) {
				delete(open, d)
			}
		}
	}
	return anchorOf
}

// stepCheck is the shared transfer function of the availability dataflow
// and the emission walk: what an instruction does to the set of certified
// addresses. The gen rule at a group anchor certifies the whole hull
// regardless of the incoming facts (the emitted or elided checks together
// always establish it), which keeps the transfer monotone.
func stepCheck(s *analysis.CheckSet, in vcode.Insn, anchor *memGroup) {
	if in.Op == vcode.OpCall {
		s.KillAll() // syscalls may write any register
		return
	}
	if anchor != nil {
		s.AddSpan(anchor.reg, anchor.minImm, anchor.maxImm)
	}
	if isIndexedMem(in.Op) {
		s.AddPair(in.Rs, in.Rt)
	}
	for _, d := range analysis.Defs(in) {
		s.KillReg(d)
	}
}

// planPreheaders selects, per loop, the group anchors whose checks hoist
// and the budget coarsening, returning plans keyed by header start pc plus
// the set of divide pcs whose zero check the preheader absorbs. The
// profile decisions in dec only *nominate* sites; every soundness
// condition is re-derived here from the static analyses, so a corrupt
// profile cannot smuggle in an unsound transform.
func planPreheaders(c *analysis.CFG, pol *Policy, anchorOf map[int]*memGroup,
	dom *analysis.Dom, loops []analysis.Loop, rng *analysis.Ranges,
	dec *reopt.Decisions, st *optStats) (map[int]*preheader, map[int]bool) {

	plans := map[int]*preheader{}
	hoistedDiv := map[int]bool{}
	for li := range loops {
		l := &loops[li]
		header := &c.Blocks[l.Header]

		// A preheader sits physically before the header, so an in-loop
		// block that falls through into the header (a fall-through back
		// edge) would execute it every iteration; skip such loops.
		ok := true
		for _, p := range l.Blocks {
			pb := &c.Blocks[p]
			if pb.End == header.Start && c.Prog.Insns[pb.Last()].Op != vcode.OpJmp {
				ok = false
			}
			for pc := pb.Start; pc < pb.End; pc++ {
				switch c.Prog.Insns[pc].Op {
				case vcode.OpCall, vcode.OpRet, vcode.OpJmpR:
					// Calls clobber registers mid-iteration and rets leave
					// without passing the latch; neither supports the
					// "same check every iteration" argument.
					ok = false
				}
			}
		}
		if !ok {
			continue
		}

		var defsInLoop analysis.RegSet
		for _, p := range l.Blocks {
			pb := &c.Blocks[p]
			for pc := pb.Start; pc < pb.End; pc++ {
				for _, d := range analysis.Defs(c.Prog.Insns[pc]) {
					defsInLoop = defsInLoop.Add(d)
				}
			}
		}

		dominatesLoopTail := func(b int) bool {
			for _, latch := range l.Latches {
				if !dom.Dominates(b, latch) {
					return false
				}
			}
			for _, e := range l.Exits {
				if !dom.Dominates(b, e) {
					return false
				}
			}
			return true
		}

		ph := &preheader{loop: l}
		for _, p := range l.Blocks {
			pb := &c.Blocks[p]
			if !dominatesLoopTail(p) {
				continue
			}
			for pc := pb.Start; pc < pb.End; pc++ {
				g := anchorOf[pc]
				if g != nil && !defsInLoop.Has(g.reg) {
					ph.hoisted = append(ph.hoisted, g)
				}
				// Profile-guided divide-check hoisting: a divide the profile
				// marks hot, with a loop-invariant divisor, in a block that
				// runs on every iteration, performs the same zero check with
				// the same register value every time — one preheader check
				// certifies them all. The same argument as memory-check
				// hoisting: if the loop is entered cleanly under naive
				// instrumentation the divisor was nonzero at the first
				// divide, hence at the preheader too (no in-loop defs).
				in := c.Prog.Insns[pc]
				if (in.Op == vcode.OpDivU || in.Op == vcode.OpRemU) &&
					dec != nil && dec.HotDivs[pc] &&
					!pol.OptimisticExceptions &&
					!defsInLoop.Has(in.Rt) &&
					rng.Before(pc, in.Rt).Lo < 1 { // provably-nonzero sites elide statically
					hoistedDiv[pc] = true
					dup := false
					for _, r := range ph.hoistDivs {
						dup = dup || r == in.Rt
					}
					if !dup {
						ph.hoistDivs = append(ph.hoistDivs, in.Rt)
					}
				}
			}
		}

		if pol.Budget == BudgetSoftware {
			if trips, tok := c.TripBound(l, rng); tok {
				blockLen := int64(header.End - header.Start)
				// The emitted body is at most 3 instructions per original
				// one, so trips*(4*blockLen+8) bounds the final drain.
				if trips*(4*blockLen+8) <= math.MaxInt32 {
					ph.coarse = &coarsePlan{trips: trips, headerPC: header.Start, latchPC: header.Last()}
					st.coarsened++
				}
			} else if dec != nil && dec.HotLoops[header.Start] && len(l.Latches) == 1 {
				// Profile-guided multi-block coarsening: the static pass
				// only handles single-block loops; for measured-hot loops,
				// reopt.TripBoundMultiBlock proves an exact count for the
				// larger counted-loop shape (single backward latch, latch is
				// the only exit, one increment dominating it). Exactness
				// makes the one-shot drain equal the naive per-latch total.
				if trips, tok := reopt.TripBoundMultiBlock(c, dom, l, rng); tok {
					latch := &c.Blocks[l.Latches[0]]
					span := int64(latch.Last() - header.Start + 1)
					if trips*(4*span+8) <= math.MaxInt32 {
						ph.coarse = &coarsePlan{trips: trips, headerPC: header.Start, latchPC: latch.Last()}
						st.coarsened++
					}
				}
			}
		}

		if len(ph.hoisted) > 0 || len(ph.hoistDivs) > 0 || ph.coarse != nil {
			plans[header.Start] = ph
		}
	}
	return plans, hoistedDiv
}

// checkFacts runs the availability dataflow to its greatest fixpoint:
// block INs start optimistic (Top) except the entry, the meet at merges is
// intersection, and hoisted-check facts are injected into their loop
// header's IN (the preheader establishes them on every entry path, and
// nothing in the loop kills them). Verify has already rejected unreachable
// code, so every block's fixpoint IN derives from the concrete entry state.
func checkFacts(c *analysis.CFG, anchorOf map[int]*memGroup, plans map[int]*preheader) []*analysis.CheckSet {
	n := len(c.Blocks)
	ins := make([]*analysis.CheckSet, n)
	outs := make([]*analysis.CheckSet, n)
	for b := 0; b < n; b++ {
		outs[b] = analysis.TopCheckSet()
	}
	order := c.RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			var in *analysis.CheckSet
			if b == 0 {
				in = analysis.NewCheckSet() // entry: nothing certified yet
			} else {
				in = analysis.TopCheckSet()
			}
			for _, p := range c.Blocks[b].Preds {
				in.Meet(outs[p])
			}
			if ph, ok := plans[c.Blocks[b].Start]; ok {
				for _, g := range ph.hoisted {
					in.AddSpan(g.reg, g.minImm, g.maxImm)
				}
			}
			ins[b] = in
			out := in.Clone()
			for pc := c.Blocks[b].Start; pc < c.Blocks[b].End; pc++ {
				stepCheck(out, c.Prog.Insns[pc], anchorOf[pc])
			}
			if !out.Equal(outs[b]) {
				outs[b] = out
				changed = true
			}
		}
	}
	return ins
}

// instrumentOptimized emits optimized SFI instrumentation for p, returning
// ok=false when the program is outside the optimizer's domain (indirect
// jumps) and the caller should fall back to instrumentNaive.
func instrumentOptimized(p *vcode.Program, pol *Policy) ([]vcode.Insn, []int, optStats, bool) {
	var st optStats
	c := analysis.Build(p)
	if c.HasIndirect {
		return nil, nil, st, false
	}
	anchorOf := buildGroups(c)
	dom := c.Dominators()
	loops := c.NaturalLoops(dom)
	rng := c.Ranges()
	var dec *reopt.Decisions
	if pol.Profile != nil {
		dec = reopt.Plan(p, pol.Profile)
	}
	plans, hoistedDiv := planPreheaders(c, pol, anchorOf, dom, loops, rng, dec, &st)
	ins := checkFacts(c, anchorOf, plans)

	out := make([]vcode.Insn, 0, len(p.Insns)*2+pol.PrologueLen+pol.EpilogueLen)
	outSrc := make([]int, 0, cap(out)) // original pc each emitted insn belongs to
	emit := func(src int, in vcode.Insn) {
		out = append(out, in)
		outSrc = append(outSrc, src)
	}
	emitPair := func(src int, reg vcode.Reg, imm int64) {
		emit(src, vcode.Insn{Op: vcode.OpSboxMask, Rd: vcode.RSbox, Rs: reg, Imm: int32(imm)})
		emit(src, vcode.Insn{Op: vcode.OpSboxChk, Rd: vcode.RSbox})
	}

	for i := 0; i < pol.PrologueLen; i++ {
		emit(-1, vcode.Insn{Op: vcode.OpNop})
	}

	oldToNew := make([]int, len(p.Insns))
	preheaderPos := map[int]int{} // header orig pc -> emitted preheader start
	type coarseEmit struct {
		budIdx int // emitted index of the placeholder ChkBudget
		plan   *coarsePlan
	}
	var coarses []coarseEmit
	suppressedLatch := map[int]bool{} // orig pc of latch branches with no inline check

	for bi := range c.Blocks {
		b := &c.Blocks[bi]
		if ph, ok := plans[b.Start]; ok {
			preheaderPos[b.Start] = len(out)
			if ph.coarse != nil {
				coarses = append(coarses, coarseEmit{budIdx: len(out), plan: ph.coarse})
				suppressedLatch[ph.coarse.latchPC] = true
				emit(-1, vcode.Insn{Op: vcode.OpChkBudget}) // Imm patched below
			}
			for _, g := range ph.hoisted {
				emitPair(-1, g.reg, g.minImm)
				st.hoisted++
				if g.maxImm != g.minImm {
					emitPair(-1, g.reg, g.maxImm)
					st.hoisted++
				}
			}
			for _, r := range ph.hoistDivs {
				emit(-1, vcode.Insn{Op: vcode.OpChkDiv, Rs: r})
			}
		}
		state := ins[bi].Clone()
		for pc := b.Start; pc < b.End; pc++ {
			in := p.Insns[pc]
			oldToNew[pc] = len(out)
			switch {
			case isDirectMem(in.Op):
				if g := anchorOf[pc]; g != nil {
					pairs := 0
					if !state.Covers(g.reg, g.minImm) {
						emitPair(pc, g.reg, g.minImm)
						pairs++
					}
					if g.maxImm != g.minImm && !state.Covers(g.reg, g.maxImm) {
						emitPair(pc, g.reg, g.maxImm)
						pairs++
					}
					st.elided += g.members - pairs
				}
				// The access itself runs in original form: its address is
				// inside the certified hull.
				emit(pc, in)
			case isIndexedMem(in.Op):
				if state.CoversPair(in.Rs, in.Rt) {
					st.elided++
					emit(pc, in)
				} else {
					emit(pc, vcode.Insn{Op: vcode.OpAddU, Rd: vcode.RSbox, Rs: in.Rs, Rt: in.Rt})
					emit(pc, vcode.Insn{Op: vcode.OpSboxChk, Rd: vcode.RSbox})
					rewritten := in
					rewritten.Rs = vcode.RSbox
					rewritten.Rt = vcode.RZero
					emit(pc, rewritten)
				}
			case in.Op == vcode.OpDivU || in.Op == vcode.OpRemU:
				switch {
				case pol.OptimisticExceptions:
					emit(pc, in)
				case rng.Before(pc, in.Rt).Lo >= 1:
					st.elided++ // divisor provably nonzero
					emit(pc, in)
				case hoistedDiv[pc]:
					st.divHoisted++ // zero check runs once in the preheader
					emit(pc, in)
				default:
					emit(pc, vcode.Insn{Op: vcode.OpChkDiv, Rs: in.Rt})
					emit(pc, in)
				}
			case in.Op == vcode.OpRet:
				for i := 0; i < pol.EpilogueLen; i++ {
					emit(pc, vcode.Insn{Op: vcode.OpNop})
				}
				emit(pc, in)
			default:
				emit(pc, in)
			}
			stepCheck(state, in, anchorOf[pc])
		}
	}

	// Retarget static branches. A branch into a loop header goes to the
	// preheader when it is an entry edge, and straight to the header when
	// it is a back edge (iterations must not repeat the preheader).
	// Fall-through entry edges pass through the preheader naturally.
	for i := range out {
		switch out[i].Op {
		case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
			t := out[i].Target
			if php, ok := preheaderPos[t]; ok {
				src := outSrc[i]
				if src < 0 || !plans[t].loop.Contains(c.BlockOf[src]) {
					out[i].Target = php
					continue
				}
			}
			out[i].Target = oldToNew[t]
		}
	}

	if pol.Budget == BudgetSoftware {
		isBackward := func(i int) bool {
			switch out[i].Op {
			case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
				return out[i].Target <= i && !suppressedLatch[outSrc[i]]
			}
			return false
		}
		shift := make([]int, len(out)+1)
		added := 0
		for i := range out {
			shift[i] = i + added
			if isBackward(i) {
				added++
			}
		}
		shift[len(out)] = len(out) + added

		shifted := make([]vcode.Insn, 0, len(out)+added)
		for i, in := range out {
			if isBackward(i) {
				body := int32(i - in.Target + 1)
				shifted = append(shifted, vcode.Insn{Op: vcode.OpChkBudget, Imm: body})
			}
			shifted = append(shifted, in)
		}
		for i := range shifted {
			switch shifted[i].Op {
			case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
				shifted[i].Target = shift[shifted[i].Target]
			}
		}
		for i, v := range oldToNew {
			oldToNew[i] = shift[v]
		}
		// Patch the coarse drains now that final positions are known:
		// trips x the emitted body length [header, latch branch].
		for _, ce := range coarses {
			perIter := int64(oldToNew[ce.plan.latchPC]) - int64(oldToNew[ce.plan.headerPC]) + 1
			total := ce.plan.trips * perIter
			// planPreheaders bounded trips*(4*blockLen+8); the emitted body
			// is at most 3 insns per original, so total fits.
			shifted[shift[ce.budIdx]].Imm = int32(total)
		}
		out = shifted
	}

	return out, oldToNew, st, true
}
