package sandbox

import (
	"bytes"
	"fmt"

	"ashs/internal/mach"
	"ashs/internal/vcode"
	"ashs/internal/vcode/reopt"
)

// Three-way differential harness: the safety net under the DCG loop.
// For any verifiable program and ANY profile — measured, stale, or
// adversarial — the three instrumentations
//
//	naive      (per-access checks, no optimizer)
//	optimized  (static check optimizer)
//	reoptimized (static optimizer + profile-guided pass)
//
// must be architecturally equivalent: same fault-or-clean outcome per
// message, same registers (minus the sandbox scratch), same region
// memory, same kernel-call side effects, with dynamic instruction counts
// ordered reopt ≤ optimized ≤ naive on clean runs. Confinement to the
// SFI region is absolute for all three, faulting runs included. The
// harness is package code (not _test) so the registry sweep, the fuzz
// targets, and the bench differential cell all drive one oracle.

// DiffBase and DiffLimit bound the harness's SFI region. The crl
// library's canonical flat-memory addresses live inside it.
const (
	DiffBase  = 0x1000
	DiffLimit = 0x4000
)

// diffMemSize is the full flat memory, much larger than the region, so
// escapes land in real (guarded) memory instead of faulting on load.
const diffMemSize = 0x20000

// DiffConfig parameterizes a ThreeWay run.
type DiffConfig struct {
	// Budget selects the time-bounding strategy for all variants.
	Budget BudgetMode
	// Rounds is how many messages each variant handles (default 1).
	Rounds int
	// Msg builds the i'th message, written at DiffBase with RArg0/RArg1
	// pointing at it. Nil runs the program with zeroed arguments.
	Msg func(i int) []byte
	// Setup seeds region memory after the deterministic fill (segment
	// tables and the like), via store(addr, word).
	Setup func(store func(addr, val uint32))
	// InsnBudget starves the software budget when nonzero (default is
	// generous). Starved runs imply ConfinementOnly: the coarse drain
	// legitimately faults at budget levels per-iteration checks survive.
	InsnBudget int64
	// ConfinementOnly skips the equivalence oracle and checks only that
	// no variant escapes the region.
	ConfinementOnly bool
}

// DiffOutcome summarizes a clean three-way run.
type DiffOutcome struct {
	Rounds      int // rounds executed (stops after a faulting round)
	FaultRounds int // 0 or 1: a faulting round ends the run
	// Cumulative dynamic instructions over clean rounds.
	NaiveInsns, OptInsns, ReoptInsns int64
	// Profile is the profile the reoptimized variant was built with —
	// the caller's, or one gathered by a profiled naive pre-pass.
	Profile *reopt.Profile
}

// sendRec is one recorded ash_send: kernel-visible side effects must
// match across variants.
type sendRec struct {
	dst, vc int
	data    []byte
}

// diffVariant is one instrumentation under test.
type diffVariant struct {
	sp    *Program
	m     *vcode.Machine
	flat  *vcode.FlatMem
	guard *escapeGuard
	sends []sendRec
	// msgAddr/msgLen describe the current round's message for the
	// ash_msg_load stub.
	msgLen int
}

// escapeGuard wraps a Memory and latches any access outside [lo, hi).
type escapeGuard struct {
	inner   vcode.Memory
	lo, hi  uint32
	escaped bool
}

func (g *escapeGuard) check(addr uint32) {
	if addr < g.lo || addr >= g.hi {
		g.escaped = true
	}
}
func (g *escapeGuard) Load32(a uint32) (uint32, error) { g.check(a); return g.inner.Load32(a) }
func (g *escapeGuard) Load16(a uint32) (uint16, error) { g.check(a); return g.inner.Load16(a) }
func (g *escapeGuard) Load8(a uint32) (byte, error)    { g.check(a); return g.inner.Load8(a) }
func (g *escapeGuard) Store32(a uint32, v uint32) error {
	g.check(a)
	return g.inner.Store32(a, v)
}
func (g *escapeGuard) Store16(a uint32, v uint16) error {
	g.check(a)
	return g.inner.Store16(a, v)
}
func (g *escapeGuard) Store8(a uint32, v byte) error {
	g.check(a)
	return g.inner.Store8(a, v)
}

// newDiffVariant compiles p under pol and prepares its private machine,
// seeded memory, escape guard, and kernel-call stubs.
func newDiffVariant(p *vcode.Program, pol *Policy, cfg *DiffConfig) (*diffVariant, error) {
	sp, err := Sandbox(p, pol)
	if err != nil {
		return nil, err
	}
	v := &diffVariant{sp: sp, flat: vcode.NewFlatMem(0, diffMemSize)}
	for a := uint32(DiffBase); a < DiffLimit; a += 4 {
		_ = v.flat.Store32(a, a*2654435761)
	}
	if cfg.Setup != nil {
		cfg.Setup(func(addr, val uint32) { _ = v.flat.Store32(addr, val) })
	}
	v.guard = &escapeGuard{inner: v.flat, lo: DiffBase, hi: DiffLimit}
	v.m = vcode.NewMachine(mach.DS5000_240(), v.guard)
	v.m.CycleLimit = 10_000_000 // backstop only
	budget := cfg.InsnBudget
	if budget == 0 {
		budget = 10_000_000
	}
	sp.Attach(v.m, DiffBase, DiffLimit, budget)
	v.m.Syms = diffSyscalls(v)
	return v, nil
}

// diffSyscalls stubs the kernel entry points with region-confined,
// deterministic equivalents that record side effects for comparison.
func diffSyscalls(v *diffVariant) map[string]vcode.SyscallFn {
	inRegion := func(addr uint32, n int) error {
		if n < 0 || uint64(addr)+uint64(n) > DiffLimit || addr < DiffBase {
			return &vcode.Fault{Kind: vcode.FaultBadAddr, Addr: addr,
				Msg: "syscall range outside region"}
		}
		return nil
	}
	return map[string]vcode.SyscallFn{
		"ash_send": func(m *vcode.Machine) error {
			addr := m.Regs[vcode.RArg2]
			n := int(m.Regs[vcode.RArg3])
			if err := inRegion(addr, n); err != nil {
				return err
			}
			data := make([]byte, n)
			for i := range data {
				data[i], _ = v.flat.Load8(addr + uint32(i))
			}
			m.Charge(4)
			v.sends = append(v.sends, sendRec{
				dst: int(m.Regs[vcode.RArg0]), vc: int(m.Regs[vcode.RArg1]),
				data: data,
			})
			return nil
		},
		"ash_copy": func(m *vcode.Machine) error {
			src, dst := m.Regs[vcode.RArg0], m.Regs[vcode.RArg1]
			n := int(m.Regs[vcode.RArg2])
			if err := inRegion(src, n); err != nil {
				return err
			}
			if err := inRegion(dst, n); err != nil {
				return err
			}
			m.Charge(12)
			for i := 0; i < n; i++ {
				b, _ := v.flat.Load8(src + uint32(i))
				_ = v.flat.Store8(dst+uint32(i), b)
			}
			return nil
		},
		"ash_msg_load": func(m *vcode.Machine) error {
			off := m.Regs[vcode.RArg0]
			if int(off)+4 > v.msgLen {
				return &vcode.Fault{Kind: vcode.FaultBadAddr, Addr: off,
					Msg: "beyond message"}
			}
			w, err := v.flat.Load32(DiffBase + off)
			if err != nil {
				return err
			}
			m.Regs[vcode.RRet] = w
			m.Charge(2)
			return nil
		},
	}
}

// round delivers the i'th message and runs the handler once.
func (v *diffVariant) round(i int, cfg *DiffConfig) *vcode.Fault {
	var msg []byte
	if cfg.Msg != nil {
		msg = cfg.Msg(i)
	}
	for j, b := range msg {
		_ = v.flat.Store8(DiffBase+uint32(j), b)
	}
	v.msgLen = len(msg)
	v.m.Regs[vcode.RArg0] = DiffBase
	v.m.Regs[vcode.RArg1] = uint32(len(msg))
	v.m.Regs[vcode.RArg2] = 0
	v.m.Regs[vcode.RArg3] = uint32(i)
	return v.m.Run(v.sp.Code)
}

// GatherProfile runs p under naive instrumentation with per-instruction
// counters over the configured rounds and returns the measured profile
// in original-program coordinates — the honest input to Reoptimize, and
// the default profile for ThreeWay when the caller passes nil.
func GatherProfile(p *vcode.Program, cfg DiffConfig) (*reopt.Profile, error) {
	naive := DefaultPolicy()
	naive.Budget = cfg.Budget
	v, err := newDiffVariant(p, naive, &cfg)
	if err != nil {
		return nil, err
	}
	v.m.PCCounts = make([]uint64, len(v.sp.Code.Insns))
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		if f := v.round(i, &cfg); f != nil {
			break // partial profiles are fine: any profile must be safe
		}
	}
	counts := make([]uint64, len(p.Insns))
	for old, inst := range v.sp.JmpTable {
		if old < len(counts) && inst >= 0 && inst < len(v.m.PCCounts) {
			counts[old] = v.m.PCCounts[inst]
		}
	}
	return &reopt.Profile{
		Handler: p.Name, Invocations: uint64(rounds), Counts: counts,
	}, nil
}

// ThreeWay runs p under all three instrumentations and enforces the
// equivalence oracle, using prof for the reoptimized variant (nil
// gathers one with a profiled naive pre-pass). A non-nil error is a
// divergence — a genuine optimizer bug, never an artifact of the input
// program or profile.
func ThreeWay(p *vcode.Program, prof *reopt.Profile, cfg DiffConfig) (*DiffOutcome, error) {
	if prof == nil {
		var err error
		if prof, err = GatherProfile(p, cfg); err != nil {
			return nil, err
		}
	}
	naive := DefaultPolicy()
	naive.Budget = cfg.Budget
	opt := DefaultPolicy()
	opt.Budget = cfg.Budget
	opt.Optimize = true
	re := DefaultPolicy()
	re.Budget = cfg.Budget
	re.Optimize = true
	re.Profile = prof

	vs := make([]*diffVariant, 3)
	names := [3]string{"naive", "optimized", "reoptimized"}
	for i, pol := range []*Policy{naive, opt, re} {
		v, err := newDiffVariant(p, pol, &cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", names[i], err)
		}
		vs[i] = v
	}

	out := &DiffOutcome{Profile: prof}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		var faults [3]*vcode.Fault
		for k, v := range vs {
			faults[k] = v.round(i, &cfg)
			if v.guard.escaped {
				return nil, fmt.Errorf("%s escaped the region on round %d\n%s",
					names[k], i, v.sp.Code)
			}
		}
		out.Rounds++
		if cfg.ConfinementOnly {
			continue
		}
		anyFault := faults[0] != nil || faults[1] != nil || faults[2] != nil
		if anyFault {
			for k := 1; k < 3; k++ {
				if (faults[k] != nil) != (faults[0] != nil) {
					return nil, fmt.Errorf(
						"round %d: naive fault=%v but %s fault=%v\n%s",
						i, faults[0], names[k], faults[k], p)
				}
			}
			// A faulting round ends the run: without rollback, partial
			// stores legitimately differ beyond this point.
			out.FaultRounds++
			break
		}
		out.NaiveInsns += vs[0].m.Insns
		out.OptInsns += vs[1].m.Insns
		out.ReoptInsns += vs[2].m.Insns
		if vs[1].m.Insns > vs[0].m.Insns {
			return nil, fmt.Errorf("round %d: optimized ran %d insns, naive %d\n%s",
				i, vs[1].m.Insns, vs[0].m.Insns, p)
		}
		if vs[2].m.Insns > vs[1].m.Insns {
			return nil, fmt.Errorf("round %d: reoptimized ran %d insns, optimized %d\n%s",
				i, vs[2].m.Insns, vs[1].m.Insns, p)
		}
		for r := 0; r < vcode.NumRegs; r++ {
			if vcode.Reg(r) == vcode.RSbox {
				continue // sandbox scratch legitimately differs
			}
			for k := 1; k < 3; k++ {
				if vs[k].m.Regs[r] != vs[0].m.Regs[r] {
					return nil, fmt.Errorf(
						"round %d: r%d naive=%#x %s=%#x\n%s",
						i, r, vs[0].m.Regs[r], names[k], vs[k].m.Regs[r], p)
				}
			}
		}
	}

	if out.FaultRounds == 0 && !cfg.ConfinementOnly {
		for a := uint32(DiffBase); a < DiffLimit; a += 4 {
			v0, _ := vs[0].flat.Load32(a)
			for k := 1; k < 3; k++ {
				vk, _ := vs[k].flat.Load32(a)
				if vk != v0 {
					return nil, fmt.Errorf("mem[%#x]: naive=%#x %s=%#x\n%s",
						a, v0, names[k], vk, p)
				}
			}
		}
		for k := 1; k < 3; k++ {
			if err := sameSends(vs[0].sends, vs[k].sends, names[k]); err != nil {
				return nil, fmt.Errorf("%w\n%s", err, p)
			}
		}
	}
	return out, nil
}

func sameSends(a, b []sendRec, name string) error {
	if len(a) != len(b) {
		return fmt.Errorf("naive sent %d messages, %s sent %d", len(a), name, len(b))
	}
	for i := range a {
		if a[i].dst != b[i].dst || a[i].vc != b[i].vc || !bytes.Equal(a[i].data, b[i].data) {
			return fmt.Errorf("send %d differs: naive=%+v %s=%+v", i, a[i], name, b[i])
		}
	}
	return nil
}
