package reopt

import (
	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
)

// MaxTrips caps every trip count this package proves, mirroring
// analysis.TripBound, so callers can multiply by body spans without
// overflow concerns.
const MaxTrips = 1 << 20

// TripBoundMultiBlock tries to prove an *exact* iteration count for a
// multi-block natural loop — the shape analysis.TripBound deliberately
// refuses (it handles only single-block loops). Exactness is what makes a
// coarse one-shot budget drain equivalent to the naive per-latch drain at
// every budget level, so the conditions are strict:
//
//   - a single latch whose final instruction is `bltu i, n, header` and
//     which sits after the header in program order (so the naive
//     instrumenter inserts exactly one budget check there);
//   - the latch is the loop's only exit: no early-out edges, hence the
//     latch condition alone decides termination and executes exactly
//     ceil((n-a)/step) times;
//   - exactly one def of i in the whole loop, `addiu i, i, c` (c > 0), in
//     a block dominating the latch — together with the no-inner-cycle
//     condition below that makes the increment run exactly once per
//     iteration;
//   - n has no defs in the loop, and both i and n have exact entry values
//     (meet of the interval analysis over the header's non-loop preds);
//   - no OpCall (clobbers everything), no OpRet/OpJmpR, and every branch
//     in the loop other than the latch is strictly forward — this rules
//     out nested loops, so the latch is the only drain site the naive
//     pass instruments inside the body.
//
// The exactness argument: all loop blocks lie in [header.Start, latch]
// (a block past the latch could only rejoin it through a second backward
// branch), the body is acyclic except for the latch edge, and the only
// exit is the latch's fall-through, so every entry runs the latch test
// exactly `trips` times with i advancing by step each time.
func TripBoundMultiBlock(c *analysis.CFG, d *analysis.Dom, l *analysis.Loop, r *analysis.Ranges) (int64, bool) {
	if len(l.Latches) != 1 {
		return 0, false
	}
	latch := l.Latches[0]
	lb := &c.Blocks[latch]
	header := &c.Blocks[l.Header]
	last := c.Prog.Insns[lb.Last()]
	if last.Op != vcode.OpBltU || last.Target != header.Start || lb.Last() <= header.Start {
		return 0, false
	}
	// The latch must be the only exit block.
	for _, e := range l.Exits {
		if e != latch {
			return 0, false
		}
	}
	i, bound := last.Rs, last.Rt

	// Scan every loop block: count defs, locate the increment, and reject
	// calls, rets, indirect jumps, and non-latch backward branches.
	defsOf := map[vcode.Reg]int{}
	incAt, incBlock := -1, -1
	for _, bi := range l.Blocks {
		b := &c.Blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			in := c.Prog.Insns[pc]
			switch in.Op {
			case vcode.OpCall, vcode.OpRet, vcode.OpJmpR:
				return 0, false
			case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
				if pc != lb.Last() && in.Target <= pc {
					return 0, false
				}
			}
			for _, def := range analysis.Defs(in) {
				defsOf[def]++
				if def == i && in.Op == vcode.OpAddIU && in.Rd == in.Rs && in.Imm > 0 {
					incAt, incBlock = pc, bi
				}
			}
		}
	}
	if defsOf[bound] != 0 || defsOf[i] != 1 || incAt < 0 || !d.Dominates(incBlock, latch) {
		return 0, false
	}
	a, okA := loopEntryValue(c, l, r, i)
	n, okN := loopEntryValue(c, l, r, bound)
	if !okA || !okN {
		return 0, false
	}
	step := int64(c.Prog.Insns[incAt].Imm)
	var trips int64
	if int64(n) <= int64(a) {
		trips = 1
	} else {
		trips = (int64(n) - int64(a) + step - 1) / step
	}
	if trips < 1 || trips > MaxTrips || int64(a)+trips*step > int64(^uint32(0)) {
		return 0, false
	}
	return trips, true
}

// loopEntryValue returns the exact value of reg on loop entry: the meet of
// the interval analysis at the header's predecessors outside the loop.
func loopEntryValue(c *analysis.CFG, l *analysis.Loop, r *analysis.Ranges, reg vcode.Reg) (uint32, bool) {
	iv := analysis.Interval{}
	first := true
	for _, p := range c.Blocks[l.Header].Preds {
		if l.Contains(p) {
			continue
		}
		out := r.Out[p][reg]
		if first {
			iv, first = out, false
		} else {
			iv = iv.Union(out)
		}
	}
	if first {
		return 0, false // header is the program entry: registers unknown
	}
	return iv.Exact()
}
