package reopt

import (
	"fmt"

	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
)

// reserved registers that keep their identity across every member of a
// fused chain: the zero register, the handler calling convention
// (RRet, RArg0..3), and the two machine-reserved scratch registers.
func fuseReserved(r vcode.Reg) bool {
	switch r {
	case vcode.RZero, vcode.RRet, vcode.RArg0, vcode.RArg1, vcode.RArg2, vcode.RArg3,
		vcode.RSbox, vcode.RInput:
		return true
	}
	return false
}

// FuseChain splices two or more handler programs into one unit with the
// semantics of core.Chain: run members in order, stop at the first member
// that returns nonzero RRet (voluntary abort → deliver to user), consume
// when every member returns zero. Fusing amortizes the per-invocation
// sandbox entry/exit — one prologue, one epilogue, one timer arm/clear,
// one journal reset — across the whole chain.
//
// Legality (checked here; FuseChain fails rather than emit a wrong
// program):
//
//   - no member contains an indirect jump (segment splicing renumbers
//     instruction indices, which OpJmpR targets would not survive — and
//     the optimizing instrumenter refuses jmpr programs anyway);
//   - RRet is not live-in to any follower (the seam uses RRet to carry
//     the predecessor's verdict, so a follower reading RRet before
//     writing it would observe the predecessor, not its own state);
//   - every non-reserved register of a follower can be renamed above the
//     registers the head uses (members keep disjoint register files, so
//     one member's temporaries can never alias another's).
//
// The one semantic difference from an unfused chain is fault atomicity:
// members share a journal, so a fault in a later member also rolls back
// earlier members' writes. DESIGN.md §16 spells out this contract; the
// differential tests compare clean and voluntary-abort runs, where fused
// and sequential execution agree exactly.
func FuseChain(name string, progs ...*vcode.Program) (*vcode.Program, error) {
	if len(progs) < 2 {
		return nil, fmt.Errorf("reopt: fuse %q: need at least two programs, have %d", name, len(progs))
	}
	for _, p := range progs {
		if p == nil || len(p.Insns) == 0 {
			return nil, fmt.Errorf("reopt: fuse %q: empty member program", name)
		}
	}

	// Per-member register usage (semantic uses and defs only; unused Insn
	// fields hold RZero, which renames to itself).
	used := make([]analysis.RegSet, len(progs))
	for i, p := range progs {
		c := analysis.Build(p)
		if c.HasIndirect {
			return nil, fmt.Errorf("reopt: fuse %q: member %q contains an indirect jump", name, p.Name)
		}
		if i > 0 {
			lv := c.Liveness()
			if len(lv.In) > 0 && lv.In[0].Has(vcode.RRet) {
				return nil, fmt.Errorf("reopt: fuse %q: member %q reads RRet before writing it", name, p.Name)
			}
		}
		var u analysis.RegSet
		for _, in := range p.Insns {
			for _, r := range analysis.Defs(in) {
				u = u.Add(r)
			}
			for _, r := range analysis.Uses(in) {
				u = u.Add(r)
			}
		}
		used[i] = u
	}

	// Fresh registers start above everything the head uses.
	cursor := vcode.Reg(8)
	for r := vcode.Reg(0); r < vcode.NumRegs; r++ {
		if used[0].Has(r) && !fuseReserved(r) && r+1 > cursor {
			cursor = r + 1
		}
	}
	alloc := func() (vcode.Reg, error) {
		for cursor < vcode.NumRegs && (cursor == vcode.RSbox || cursor == vcode.RInput) {
			cursor++
		}
		if cursor >= vcode.NumRegs {
			return 0, fmt.Errorf("reopt: fuse %q: out of registers", name)
		}
		r := cursor
		cursor++
		return r, nil
	}

	// Shadow copies of the four argument registers, saved at entry and
	// restored at every seam so each member sees the original message.
	var shadows [4]vcode.Reg
	for k := range shadows {
		r, err := alloc()
		if err != nil {
			return nil, err
		}
		shadows[k] = r
	}

	// Rename maps for followers: identity for reserved registers, fresh
	// registers for everything else the member touches.
	renames := make([][vcode.NumRegs]vcode.Reg, len(progs))
	for i := range progs {
		for r := vcode.Reg(0); r < vcode.NumRegs; r++ {
			renames[i][r] = r
		}
		if i == 0 {
			continue
		}
		for r := vcode.Reg(0); r < vcode.NumRegs; r++ {
			if used[i].Has(r) && !fuseReserved(r) {
				fresh, err := alloc()
				if err != nil {
					return nil, err
				}
				renames[i][r] = fresh
			}
		}
	}

	// Layout: 4 shadow saves, then members separated by 5-instruction
	// seams (verdict test + 4 argument restores), then the shared exit ret.
	const seamLen = 5
	base := make([]int, len(progs))
	base[0] = len(shadows)
	for i := 1; i < len(progs); i++ {
		base[i] = base[i-1] + len(progs[i-1].Insns) + seamLen
	}
	exitAt := base[len(progs)-1] + len(progs[len(progs)-1].Insns)

	fused := &vcode.Program{Name: name}
	args := [4]vcode.Reg{vcode.RArg0, vcode.RArg1, vcode.RArg2, vcode.RArg3}
	for k, s := range shadows {
		fused.Insns = append(fused.Insns, vcode.Insn{Op: vcode.OpMov, Rd: s, Rs: args[k]})
	}
	for i, p := range progs {
		if i > 0 {
			// Seam: stop the chain on a nonzero verdict, then restore args.
			fused.Insns = append(fused.Insns, vcode.Insn{Op: vcode.OpBne, Rs: vcode.RRet, Rt: vcode.RZero, Target: exitAt})
			for k, s := range shadows {
				fused.Insns = append(fused.Insns, vcode.Insn{Op: vcode.OpMov, Rd: args[k], Rs: s})
			}
		}
		rn := &renames[i]
		for _, in := range p.Insns {
			out := in
			out.Rd, out.Rs, out.Rt = rn[in.Rd], rn[in.Rs], rn[in.Rt]
			switch {
			case in.Op == vcode.OpRet && i < len(progs)-1:
				// Jump to the next member's seam, right after this segment.
				out = vcode.Insn{Op: vcode.OpJmp, Target: base[i] + len(p.Insns)}
			case isFuseBranch(in.Op):
				out.Target = in.Target + base[i]
			}
			fused.Insns = append(fused.Insns, out)
		}
		for _, pr := range p.Persistent {
			fused.Persistent = append(fused.Persistent, rn[pr])
		}
	}
	fused.Insns = append(fused.Insns, vcode.Insn{Op: vcode.OpRet})
	fused.NextReg = cursor
	return fused, nil
}

func isFuseBranch(op vcode.Op) bool {
	switch op {
	case vcode.OpBeq, vcode.OpBne, vcode.OpBltU, vcode.OpBgeU, vcode.OpJmp:
		return true
	}
	return false
}
