package reopt

import (
	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
)

// Decisions is the output of Plan: which statically-legal transformations
// the profile marks as worth applying. The instrumenter treats every
// entry as a *suggestion* — it re-derives the soundness conditions itself
// before acting — so Decisions built from a corrupt or adversarial profile
// can change which sound transforms fire, never introduce an unsound one.
type Decisions struct {
	// HotLoops marks loop headers (by original start pc) whose observed
	// execution count crossed the hotness threshold. The instrumenter
	// consults it before multi-block budget coarsening.
	HotLoops map[int]bool

	// HotDivs marks OpDivU/OpRemU sites (by original pc) observed hot.
	// The instrumenter consults it before hoisting a loop-invariant
	// divide check into the loop preheader.
	HotDivs map[int]bool
}

// Hot reports whether any transformation site survived the hotness filter.
func (d *Decisions) Hot() bool {
	return d != nil && (len(d.HotLoops) > 0 || len(d.HotDivs) > 0)
}

// Plan derives re-optimization decisions for p from an observed profile.
// It rebuilds the CFG and loop nest itself (deterministic for a given
// program), then keeps only sites that are plausible transformation
// candidates *and* hot under prof:
//
//   - a loop header is hot when its first instruction's count reaches
//     HotTrips — a proxy for "the loop actually iterated";
//   - a divide is hot when it executed HotTrips times and sits inside a
//     loop (hoisting a divide that runs once per invocation saves
//     nothing).
//
// Programs with indirect jumps get an empty plan: the optimizing
// instrumenter refuses them, so there is nothing to decide.
func Plan(p *vcode.Program, prof *Profile) *Decisions {
	dec := &Decisions{HotLoops: map[int]bool{}, HotDivs: map[int]bool{}}
	if p == nil || len(p.Insns) == 0 || prof == nil {
		return dec
	}
	c := analysis.Build(p)
	if c.HasIndirect {
		return dec
	}
	dom := c.Dominators()
	loops := c.NaturalLoops(dom)
	for li := range loops {
		l := &loops[li]
		header := c.Blocks[l.Header].Start
		if prof.Hot(header) {
			dec.HotLoops[header] = true
		}
		for _, bi := range l.Blocks {
			b := &c.Blocks[bi]
			for pc := b.Start; pc < b.End; pc++ {
				in := p.Insns[pc]
				if (in.Op == vcode.OpDivU || in.Op == vcode.OpRemU) && prof.Hot(pc) {
					dec.HotDivs[pc] = true
				}
			}
		}
	}
	return dec
}
