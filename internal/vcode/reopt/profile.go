// Package reopt closes the paper's dynamic-code-generation loop: it turns
// measured handler behavior (per-instruction execution counts exported by
// the obs plane) into re-optimization decisions the SFI instrumenter
// consumes on a re-download. The package deliberately contains no unsound
// transformation: a profile only *selects among* statically proven
// candidates (which loop-invariant divide checks to hoist, which exactly
// counted loops to coarsen), so an adversarial or stale profile can change
// cost but never semantics — the three-way differential harness
// (naive ≡ optimized ≡ reoptimized) enforces exactly that.
package reopt

import (
	"crypto/sha256"
	"encoding/binary"
)

// HotTrips is the hotness threshold: a loop header (or divide site) whose
// observed execution count reaches it is worth re-optimizing. The value is
// deliberately small — one coarse drain or hoisted check pays for itself
// after a handful of iterations — and deterministic, so identical profiles
// always produce identical plans.
const HotTrips = 8

// Profile is the execution profile of one handler, keyed by *original*
// (pre-instrumentation) instruction index. It is produced by mapping the
// machine's per-pc counters back through the sandbox jump table, so the
// same profile drives re-optimization regardless of which instrumentation
// the counts were gathered under.
type Profile struct {
	// Handler names the profiled program (diagnostic only; not hashed).
	Handler string

	// Invocations is how many runs the counts accumulate over.
	Invocations uint64

	// Counts[pc] is how many times original instruction pc executed.
	// The vector may be shorter or longer than the program it is applied
	// to (profiles can be stale or adversarial); Count is nil- and
	// bounds-safe, and every consumer goes through it.
	Counts []uint64
}

// Count returns the observed execution count of original instruction pc,
// zero for out-of-range indices or a nil profile.
func (p *Profile) Count(pc int) uint64 {
	if p == nil || pc < 0 || pc >= len(p.Counts) {
		return 0
	}
	return p.Counts[pc]
}

// Hot reports whether original instruction pc crossed the hotness
// threshold.
func (p *Profile) Hot(pc int) bool { return p.Count(pc) >= HotTrips }

// Fingerprint hashes the profile's optimization-relevant content
// (invocation and per-pc counts). The compile cache mixes it into the
// policy fingerprint so the same program re-instrumented under different
// profiles occupies distinct cache entries.
func (p *Profile) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	if p != nil {
		putU64(p.Invocations)
		putU64(uint64(len(p.Counts)))
		for _, c := range p.Counts {
			putU64(c)
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
