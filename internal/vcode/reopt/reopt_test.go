package reopt

import (
	"strings"
	"testing"

	"ashs/internal/mach"
	"ashs/internal/vcode"
	"ashs/internal/vcode/analysis"
)

func TestProfileCountAndHot(t *testing.T) {
	var nilProf *Profile
	if nilProf.Count(0) != 0 || nilProf.Hot(0) {
		t.Fatal("nil profile must read as all-cold")
	}
	p := &Profile{Counts: []uint64{0, HotTrips - 1, HotTrips, 1 << 40}}
	for pc, want := range map[int]bool{-1: false, 0: false, 1: false, 2: true, 3: true, 4: false, 99: false} {
		if p.Hot(pc) != want {
			t.Errorf("Hot(%d) = %v, want %v", pc, p.Hot(pc), want)
		}
	}
}

func TestProfileFingerprint(t *testing.T) {
	a := &Profile{Invocations: 3, Counts: []uint64{1, 2, 3}}
	b := &Profile{Invocations: 3, Counts: []uint64{1, 2, 3}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical profiles fingerprint differently")
	}
	distinct := []*Profile{
		a,
		{Invocations: 4, Counts: []uint64{1, 2, 3}}, // invocations folded
		{Invocations: 3, Counts: []uint64{1, 2, 4}}, // counts folded
		{Invocations: 3, Counts: []uint64{1, 2}},    // length folded
		{Invocations: 3, Counts: nil},
	}
	seen := map[[32]byte]int{}
	for i, p := range distinct {
		fp := p.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Fatalf("profiles %d and %d collide", i, j)
		}
		seen[fp] = i
	}
	// A nil profile's fingerprint is stable (the compile cache hashes it).
	var nilProf *Profile
	if nilProf.Fingerprint() != nilProf.Fingerprint() {
		t.Fatal("nil fingerprint not stable")
	}
}

// loopDivProgram is the plan/trip test fixture: a counted single-block
// loop containing a divide by a loop-invariant, unknown-range register.
func loopDivProgram() *vcode.Program {
	b := vcode.NewBuilder("loopdiv")
	mod, i, n, v := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Ld32(mod, vcode.RArg0, 0)
	b.MovI(i, 0)
	b.MovI(n, 40)
	top := b.NewLabel()
	b.Bind(top)
	b.Ld32X(v, vcode.RArg0, i)
	b.RemU(v, v, mod)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

func TestPlanMarksHotCandidates(t *testing.T) {
	p := loopDivProgram()
	const header = 3 // first insn after the three loads/movs
	hot := make([]uint64, len(p.Insns))
	for i := range hot {
		hot[i] = HotTrips
	}
	dec := Plan(p, &Profile{Handler: p.Name, Invocations: 1, Counts: hot})
	if !dec.Hot() {
		t.Fatal("saturated profile produced no decisions")
	}
	if !dec.HotLoops[header] {
		t.Fatalf("loop header %d not marked hot: %+v", header, dec.HotLoops)
	}
	found := false
	for pc := range dec.HotDivs {
		if p.Insns[pc].Op != vcode.OpRemU && p.Insns[pc].Op != vcode.OpDivU {
			t.Fatalf("HotDivs[%d] marks a %v", pc, p.Insns[pc].Op)
		}
		found = true
	}
	if !found {
		t.Fatal("hot in-loop divide not nominated")
	}

	for name, prof := range map[string]*Profile{
		"nil":      nil,
		"all-zero": {Counts: make([]uint64, len(p.Insns))},
		"sub-hot": {Counts: func() []uint64 {
			c := make([]uint64, len(p.Insns))
			for i := range c {
				c[i] = HotTrips - 1
			}
			return c
		}()},
		"empty": {},
	} {
		if dec := Plan(p, prof); dec.Hot() {
			t.Errorf("%s profile produced decisions: %+v", name, dec)
		}
	}
}

// multiBlockLoop builds the sparse-record shape: header with a skip
// branch, conditional body, single latch that is also the only exit.
func multiBlockLoop() *vcode.Program {
	b := vcode.NewBuilder("sparse")
	dst, i, n, v := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(dst, 0x2000)
	b.MovI(i, 0)
	b.MovI(n, 40)
	top, skip := b.NewLabel(), b.NewLabel()
	b.Bind(top)
	b.Ld32X(v, vcode.RArg0, i)
	b.Beq(v, vcode.RZero, skip)
	b.St32X(dst, i, v)
	b.Bind(skip)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

func tripOf(t *testing.T, p *vcode.Program) (int64, bool) {
	t.Helper()
	c := analysis.Build(p)
	d := c.Dominators()
	rng := c.Ranges()
	loops := c.NaturalLoops(d)
	if len(loops) != 1 {
		t.Fatalf("expected 1 loop, found %d\n%s", len(loops), p)
	}
	return TripBoundMultiBlock(c, d, &loops[0], rng)
}

func TestTripBoundMultiBlockExact(t *testing.T) {
	trips, ok := tripOf(t, multiBlockLoop())
	if !ok || trips != 10 {
		t.Fatalf("trips = %d, %v; want 10, true", trips, ok)
	}
}

func TestTripBoundMultiBlockRejections(t *testing.T) {
	cases := map[string]func(b *vcode.Builder){
		// A second exit (break out of the body): the latch-drain total
		// would overcharge short runs.
		"early-exit": func(b *vcode.Builder) {
			i, n, v := b.Temp(), b.Temp(), b.Temp()
			b.MovI(i, 0)
			b.MovI(n, 40)
			top, out := b.NewLabel(), b.NewLabel()
			b.Bind(top)
			b.Ld32X(v, vcode.RArg0, i)
			b.Beq(v, vcode.RZero, out) // jumps past the latch
			b.AddIU(i, i, 4)
			b.BltU(i, n, top)
			b.Bind(out)
			b.MovI(vcode.RRet, 0)
			b.Ret()
		},
		// Bound loaded from memory: entry value inexact.
		"unknown-bound": func(b *vcode.Builder) {
			i, n := b.Temp(), b.Temp()
			b.MovI(i, 0)
			b.Ld32(n, vcode.RArg0, 0)
			top := b.NewLabel()
			b.Bind(top)
			b.AddIU(i, i, 4)
			b.BltU(i, n, top)
			b.Ret()
		},
		// Two increments of the counter: step is path-dependent.
		"double-step": func(b *vcode.Builder) {
			i, n, v := b.Temp(), b.Temp(), b.Temp()
			b.MovI(i, 0)
			b.MovI(n, 40)
			top, skip := b.NewLabel(), b.NewLabel()
			b.Bind(top)
			b.Ld32X(v, vcode.RArg0, i)
			b.Beq(v, vcode.RZero, skip)
			b.AddIU(i, i, 4)
			b.Bind(skip)
			b.AddIU(i, i, 4)
			b.BltU(i, n, top)
			b.Ret()
		},
		// Bound redefined inside the loop.
		"moving-bound": func(b *vcode.Builder) {
			i, n := b.Temp(), b.Temp()
			b.MovI(i, 0)
			b.MovI(n, 40)
			top := b.NewLabel()
			b.Bind(top)
			b.AddIU(n, n, 0)
			b.AddIU(i, i, 4)
			b.BltU(i, n, top)
			b.Ret()
		},
	}
	for name, build := range cases {
		b := vcode.NewBuilder(name)
		build(b)
		p := b.MustAssemble()
		c := analysis.Build(p)
		d := c.Dominators()
		rng := c.Ranges()
		for _, l := range c.NaturalLoops(d) {
			l := l
			if trips, ok := TripBoundMultiBlock(c, d, &l, rng); ok {
				t.Errorf("%s: accepted with trips=%d\n%s", name, trips, p)
			}
		}
	}
}

// --------------------------------------------------------------------
// Chain fusion
// --------------------------------------------------------------------

func headProgram(magicAddr uint32) *vcode.Program {
	b := vcode.NewBuilder("head")
	v, w := b.Temp(), b.Temp()
	b.Ld32(v, vcode.RArg0, 0)
	b.MovI(w, 99)
	bad := b.NewLabel()
	b.Bne(v, w, bad)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	b.Bind(bad)
	b.MovI(vcode.RRet, 1)
	b.Ret()
	return b.MustAssemble()
}

func followerProgram(counterAddr uint32) *vcode.Program {
	b := vcode.NewBuilder("follower")
	c, v := b.Temp(), b.Temp()
	b.MovI(c, int32(counterAddr))
	b.Ld32(v, c, 0)
	b.AddIU(v, v, 1)
	b.St32(c, 0, v)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	return b.MustAssemble()
}

func runOn(t *testing.T, p *vcode.Program, arg0 uint32, mem *vcode.FlatMem) *vcode.Machine {
	t.Helper()
	m := vcode.NewMachine(mach.DS5000_240(), mem)
	m.CycleLimit = 100000
	m.Regs[vcode.RArg0] = arg0
	if f := m.Run(p); f != nil {
		t.Fatalf("fault running %s: %v", p.Name, f)
	}
	return m
}

func TestFuseChainSemantics(t *testing.T) {
	const counter = 0x200
	fused, err := FuseChain("fused", headProgram(0x100), followerProgram(counter))
	if err != nil {
		t.Fatal(err)
	}

	// Accepted message: head passes, follower bumps the counter, RRet=0.
	mem := vcode.NewFlatMem(0, 0x1000)
	_ = mem.Store32(0x100, 99)
	m := runOn(t, fused, 0x100, mem)
	if m.Regs[vcode.RRet] != 0 {
		t.Fatalf("accepted chain returned %d", m.Regs[vcode.RRet])
	}
	if v, _ := mem.Load32(counter); v != 1 {
		t.Fatalf("counter = %d after accepted chain, want 1", v)
	}

	// Rejected message: seam exits with the head's RRet, follower skipped.
	mem2 := vcode.NewFlatMem(0, 0x1000)
	_ = mem2.Store32(0x100, 7)
	m2 := runOn(t, fused, 0x100, mem2)
	if m2.Regs[vcode.RRet] != 1 {
		t.Fatalf("rejected chain returned %d, want the head's 1", m2.Regs[vcode.RRet])
	}
	if v, _ := mem2.Load32(counter); v != 0 {
		t.Fatalf("follower ran after seam exit: counter = %d", v)
	}
}

func TestFuseChainRestoresArgRegisters(t *testing.T) {
	// A head that clobbers RArg0 must not corrupt the follower's view of
	// the message: the seam restores the shadowed argument registers.
	b := vcode.NewBuilder("clobber-head")
	b.MovI(vcode.RArg0, 0x7777)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	head := b.MustAssemble()

	b2 := vcode.NewBuilder("arg-reader")
	v := b2.Temp()
	b2.Ld32(v, vcode.RArg0, 0)
	b2.St32(vcode.RArg0, 4, v)
	b2.MovI(vcode.RRet, 0)
	b2.Ret()
	follower := b2.MustAssemble()

	fused, err := FuseChain("restore", head, follower)
	if err != nil {
		t.Fatal(err)
	}
	mem := vcode.NewFlatMem(0, 0x10000)
	_ = mem.Store32(0x300, 0xabcd)
	runOn(t, fused, 0x300, mem)
	if v, _ := mem.Load32(0x304); v != 0xabcd {
		t.Fatalf("follower read through clobbered RArg0: stored %#x", v)
	}
}

func TestFuseChainLegality(t *testing.T) {
	head := headProgram(0x100)

	// Follower consuming the incoming RRet: the seam's branch would feed
	// it the head's status, changing semantics. Must refuse.
	b := vcode.NewBuilder("ret-reader")
	b.AddIU(vcode.RRet, vcode.RRet, 1)
	b.Ret()
	retReader := b.MustAssemble()
	if _, err := FuseChain("bad", head, retReader); err == nil ||
		!strings.Contains(err.Error(), "RRet") {
		t.Fatalf("RRet-live-in follower accepted (err=%v)", err)
	}

	// Indirect jumps: renamed targets can't be proven. Must refuse.
	b2 := vcode.NewBuilder("jmpr")
	r := b2.Temp()
	b2.MovI(r, 0)
	b2.JmpR(r)
	jr := b2.MustAssemble()
	if _, err := FuseChain("bad", head, jr); err == nil {
		t.Fatal("indirect-jump member accepted")
	}

	// Fewer than two members is not a chain.
	if _, err := FuseChain("solo", head); err == nil {
		t.Fatal("single-member fusion accepted")
	}

	// Register exhaustion: members whose combined register demand
	// exceeds the file must be refused, not silently corrupted.
	wide := func(name string) *vcode.Program {
		bw := vcode.NewBuilder(name)
		regs := make([]vcode.Reg, 18)
		for i := range regs {
			regs[i] = bw.Temp()
			bw.MovI(regs[i], int32(i))
		}
		acc := regs[0]
		for _, r := range regs[1:] {
			bw.AddU(acc, acc, r)
		}
		bw.Mov(vcode.RRet, vcode.RZero)
		bw.Ret()
		return bw.MustAssemble()
	}
	if _, err := FuseChain("too-wide", wide("w1"), wide("w2"), wide("w3")); err == nil {
		t.Fatal("register-exhausting fusion accepted")
	}
}
