package vcode

// Journal wraps a Memory with an undo log, giving the kernel the rollback
// half of the paper's abort discipline: an involuntarily aborted handler
// must leave no trace, so every store it performed is recorded with the
// value it overwrote and can be replayed backwards. Loads pass straight
// through.
//
// Stores that fail (bad address, absent page) record nothing — they never
// modified memory, and the fault they raise is what triggers the undo.
type Journal struct {
	Mem Memory

	// Raw, when set, gives the journal direct byte access to the
	// underlying memory so trusted bulk paths (ash_copy, ash_dilp) that
	// bypass the Memory interface can pre-image their destination ranges
	// with PreImageRange before writing.
	Raw func(addr uint32, n int) ([]byte, error)

	entries []journalEntry
}

// journalEntry is one overwritten region: old holds the prior bytes and
// its length selects the store width on undo (1, 2, 4, or raw range).
type journalEntry struct {
	addr uint32
	old  []byte
	raw  bool
}

// NewJournal wraps mem.
func NewJournal(mem Memory) *Journal {
	return &Journal{Mem: mem}
}

// Reset discards the log; call it at handler entry so Undo rolls back to
// exactly the pre-invocation state.
func (j *Journal) Reset() { j.entries = j.entries[:0] }

// Undo replays the log backwards, restoring every journaled region to its
// pre-invocation bytes, then clears the log.
func (j *Journal) Undo() {
	for i := len(j.entries) - 1; i >= 0; i-- {
		e := j.entries[i]
		switch {
		case e.raw:
			if j.Raw != nil {
				if dst, err := j.Raw(e.addr, len(e.old)); err == nil {
					copy(dst, e.old)
				}
			}
		case len(e.old) == 4:
			v := uint32(e.old[0]) | uint32(e.old[1])<<8 | uint32(e.old[2])<<16 | uint32(e.old[3])<<24
			_ = j.Mem.Store32(e.addr, v)
		case len(e.old) == 2:
			_ = j.Mem.Store16(e.addr, uint16(e.old[0])|uint16(e.old[1])<<8)
		default:
			_ = j.Mem.Store8(e.addr, e.old[0])
		}
	}
	j.entries = j.entries[:0]
}

// PreImageRange records the current contents of [addr, addr+n) so a later
// Undo restores them. Trusted copy/DILP paths call it once per transfer —
// the journal's analogue of their aggregated access checks.
func (j *Journal) PreImageRange(addr uint32, n int) {
	if n <= 0 || j.Raw == nil {
		return
	}
	src, err := j.Raw(addr, n)
	if err != nil {
		return
	}
	j.entries = append(j.entries, journalEntry{
		addr: addr, old: append([]byte(nil), src...), raw: true,
	})
}

// Load32 implements Memory.
func (j *Journal) Load32(addr uint32) (uint32, error) { return j.Mem.Load32(addr) }

// Load16 implements Memory.
func (j *Journal) Load16(addr uint32) (uint16, error) { return j.Mem.Load16(addr) }

// Load8 implements Memory.
func (j *Journal) Load8(addr uint32) (byte, error) { return j.Mem.Load8(addr) }

// Store32 implements Memory, journaling the overwritten word.
func (j *Journal) Store32(addr uint32, v uint32) error {
	if old, err := j.Mem.Load32(addr); err == nil {
		j.entries = append(j.entries, journalEntry{
			addr: addr,
			old:  []byte{byte(old), byte(old >> 8), byte(old >> 16), byte(old >> 24)},
		})
	}
	return j.Mem.Store32(addr, v)
}

// Store16 implements Memory, journaling the overwritten halfword.
func (j *Journal) Store16(addr uint32, v uint16) error {
	if old, err := j.Mem.Load16(addr); err == nil {
		j.entries = append(j.entries, journalEntry{
			addr: addr, old: []byte{byte(old), byte(old >> 8)},
		})
	}
	return j.Mem.Store16(addr, v)
}

// Store8 implements Memory, journaling the overwritten byte.
func (j *Journal) Store8(addr uint32, v byte) error {
	if old, err := j.Mem.Load8(addr); err == nil {
		j.entries = append(j.entries, journalEntry{addr: addr, old: []byte{old}})
	}
	return j.Mem.Store8(addr, v)
}
