package vcode

import (
	"crypto/sha256"
	"encoding/binary"
)

// Fingerprint returns a content hash of the program: the same bytes come
// back for any two programs with identical name, instruction stream,
// persistent-register set, and register allocation, regardless of how
// they were built. It is the program half of the sandbox compile-cache
// key (the policy contributes the other half), so every field that can
// influence verification, instrumentation, or execution is folded in.
func (p *Program) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	putStr := func(s string) {
		putU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	putStr(p.Name)
	putU64(uint64(p.NextReg))
	putU64(uint64(len(p.Persistent)))
	for _, r := range p.Persistent {
		putU64(uint64(r))
	}
	putU64(uint64(len(p.Insns)))
	for _, in := range p.Insns {
		putU64(uint64(in.Op)<<24 | uint64(in.Rd)<<16 | uint64(in.Rs)<<8 | uint64(in.Rt))
		putU64(uint64(uint32(in.Imm)))
		putU64(uint64(int64(in.Target)))
		putStr(in.Sym)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
