package vcode

import "fmt"

// Label names a forward or backward branch target during construction.
type Label int

// Builder constructs a Program with symbolic labels and register
// allocation. It mirrors the paper's pipe_lambda / p_getreg style: callers
// allocate registers by class (temporary or persistent) and emit
// instructions; Assemble resolves labels.
type Builder struct {
	name       string
	insns      []Insn
	labels     []int // label -> instruction index (-1 = unbound)
	fixups     []fixup
	nextReg    Reg
	persistent []Reg
	err        error
}

type fixup struct {
	insn  int
	label Label
}

// Calling convention for OpCall kernel entry points and handler invocation:
// arguments arrive in RArg0..RArg3, results return in RRet. The builder
// allocates scratch registers starting above these.
const (
	RRet  Reg = 2
	RArg0 Reg = 4
	RArg1 Reg = 5
	RArg2 Reg = 6
	RArg3 Reg = 7
)

// NewBuilder starts a new program named name. Registers R8..R27 are
// allocatable; R0 is zero, R2/R4-R7 are the calling convention, and R28 and
// R30 are reserved for the sandbox and pipe input.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, nextReg: 8}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("vcode %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Temp allocates a temporary register (not preserved across invocations).
func (b *Builder) Temp() Reg {
	r := b.alloc()
	return r
}

// Persistent allocates a persistent register: its value is preserved
// across pipe invocations and can be imported/exported by protocol code
// (e.g. a checksum accumulator).
func (b *Builder) Persistent() Reg {
	r := b.alloc()
	if r != 0 {
		b.persistent = append(b.persistent, r)
	}
	return r
}

func (b *Builder) alloc() Reg {
	r := b.nextReg
	for r == RSbox || r == RInput || r == RZero {
		r++
	}
	if r >= NumRegs-1 { // keep r31 free as link-ish scratch
		b.fail("out of registers")
		return 0
	}
	b.nextReg = r + 1
	return r
}

// NewLabel creates an unbound label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind attaches label l to the next emitted instruction.
func (b *Builder) Bind(l Label) {
	if int(l) >= len(b.labels) {
		b.fail("bind of unknown label %d", l)
		return
	}
	if b.labels[l] != -1 {
		b.fail("label %d bound twice", l)
		return
	}
	b.labels[l] = len(b.insns)
}

func (b *Builder) emit(in Insn) {
	b.insns = append(b.insns, in)
}

func (b *Builder) emitBranch(in Insn, l Label) {
	if int(l) >= len(b.labels) {
		b.fail("branch to unknown label %d", l)
		return
	}
	b.fixups = append(b.fixups, fixup{insn: len(b.insns), label: l})
	b.emit(in)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Insn{Op: OpNop}) }

// MovI emits rd <- imm.
func (b *Builder) MovI(rd Reg, imm int32) { b.emit(Insn{Op: OpMovI, Rd: rd, Imm: imm}) }

// Mov emits rd <- rs.
func (b *Builder) Mov(rd, rs Reg) { b.emit(Insn{Op: OpMov, Rd: rd, Rs: rs}) }

// Op3 emits a three-register ALU operation.
func (b *Builder) Op3(op Op, rd, rs, rt Reg) { b.emit(Insn{Op: op, Rd: rd, Rs: rs, Rt: rt}) }

// AddU emits rd <- rs + rt (unsigned, non-trapping).
func (b *Builder) AddU(rd, rs, rt Reg) { b.Op3(OpAddU, rd, rs, rt) }

// SubU emits rd <- rs - rt.
func (b *Builder) SubU(rd, rs, rt Reg) { b.Op3(OpSubU, rd, rs, rt) }

// And emits rd <- rs & rt.
func (b *Builder) And(rd, rs, rt Reg) { b.Op3(OpAnd, rd, rs, rt) }

// Or emits rd <- rs | rt.
func (b *Builder) Or(rd, rs, rt Reg) { b.Op3(OpOr, rd, rs, rt) }

// Xor emits rd <- rs ^ rt.
func (b *Builder) Xor(rd, rs, rt Reg) { b.Op3(OpXor, rd, rs, rt) }

// SltU emits rd <- (rs < rt), unsigned.
func (b *Builder) SltU(rd, rs, rt Reg) { b.Op3(OpSltU, rd, rs, rt) }

// MulU emits rd <- rs * rt.
func (b *Builder) MulU(rd, rs, rt Reg) { b.Op3(OpMulU, rd, rs, rt) }

// DivU emits rd <- rs / rt (the sandboxer inserts the zero check).
func (b *Builder) DivU(rd, rs, rt Reg) { b.Op3(OpDivU, rd, rs, rt) }

// RemU emits rd <- rs % rt.
func (b *Builder) RemU(rd, rs, rt Reg) { b.Op3(OpRemU, rd, rs, rt) }

// AddIU emits rd <- rs + imm.
func (b *Builder) AddIU(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpAddIU, Rd: rd, Rs: rs, Imm: imm})
}

// AndI emits rd <- rs & imm.
func (b *Builder) AndI(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpAndI, Rd: rd, Rs: rs, Imm: imm})
}

// OrI emits rd <- rs | imm.
func (b *Builder) OrI(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpOrI, Rd: rd, Rs: rs, Imm: imm})
}

// XorI emits rd <- rs ^ imm.
func (b *Builder) XorI(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpXorI, Rd: rd, Rs: rs, Imm: imm})
}

// SllI emits rd <- rs << imm.
func (b *Builder) SllI(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpSllI, Rd: rd, Rs: rs, Imm: imm})
}

// SrlI emits rd <- rs >> imm.
func (b *Builder) SrlI(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpSrlI, Rd: rd, Rs: rs, Imm: imm})
}

// SltIU emits rd <- (rs < imm), unsigned.
func (b *Builder) SltIU(rd, rs Reg, imm int32) {
	b.emit(Insn{Op: OpSltIU, Rd: rd, Rs: rs, Imm: imm})
}

// Ld32 emits rd <- mem32[rs+off].
func (b *Builder) Ld32(rd, rs Reg, off int32) {
	b.emit(Insn{Op: OpLd32, Rd: rd, Rs: rs, Imm: off})
}

// Ld16 emits rd <- zero-extended mem16[rs+off].
func (b *Builder) Ld16(rd, rs Reg, off int32) {
	b.emit(Insn{Op: OpLd16, Rd: rd, Rs: rs, Imm: off})
}

// Ld8 emits rd <- zero-extended mem8[rs+off].
func (b *Builder) Ld8(rd, rs Reg, off int32) {
	b.emit(Insn{Op: OpLd8, Rd: rd, Rs: rs, Imm: off})
}

// St32 emits mem32[rs+off] <- rt.
func (b *Builder) St32(rs Reg, off int32, rt Reg) {
	b.emit(Insn{Op: OpSt32, Rs: rs, Imm: off, Rt: rt})
}

// St16 emits mem16[rs+off] <- rt.
func (b *Builder) St16(rs Reg, off int32, rt Reg) {
	b.emit(Insn{Op: OpSt16, Rs: rs, Imm: off, Rt: rt})
}

// St8 emits mem8[rs+off] <- rt.
func (b *Builder) St8(rs Reg, off int32, rt Reg) {
	b.emit(Insn{Op: OpSt8, Rs: rs, Imm: off, Rt: rt})
}

// Ld32X emits rd <- mem32[rs+rt] (indexed addressing).
func (b *Builder) Ld32X(rd, rs, rt Reg) { b.emit(Insn{Op: OpLd32X, Rd: rd, Rs: rs, Rt: rt}) }

// St32X emits mem32[rs+rt] <- rd (indexed addressing).
func (b *Builder) St32X(rs, rt, rd Reg) { b.emit(Insn{Op: OpSt32X, Rs: rs, Rt: rt, Rd: rd}) }

// Ld8X emits rd <- zero-extended mem8[rs+rt].
func (b *Builder) Ld8X(rd, rs, rt Reg) { b.emit(Insn{Op: OpLd8X, Rd: rd, Rs: rs, Rt: rt}) }

// St8X emits mem8[rs+rt] <- rd.
func (b *Builder) St8X(rs, rt, rd Reg) { b.emit(Insn{Op: OpSt8X, Rs: rs, Rt: rt, Rd: rd}) }

// Beq emits: if rs == rt goto l.
func (b *Builder) Beq(rs, rt Reg, l Label) { b.emitBranch(Insn{Op: OpBeq, Rs: rs, Rt: rt}, l) }

// Bne emits: if rs != rt goto l.
func (b *Builder) Bne(rs, rt Reg, l Label) { b.emitBranch(Insn{Op: OpBne, Rs: rs, Rt: rt}, l) }

// BltU emits: if rs < rt goto l (unsigned).
func (b *Builder) BltU(rs, rt Reg, l Label) { b.emitBranch(Insn{Op: OpBltU, Rs: rs, Rt: rt}, l) }

// BgeU emits: if rs >= rt goto l (unsigned).
func (b *Builder) BgeU(rs, rt Reg, l Label) { b.emitBranch(Insn{Op: OpBgeU, Rs: rs, Rt: rt}, l) }

// Jmp emits an unconditional jump to l.
func (b *Builder) Jmp(l Label) { b.emitBranch(Insn{Op: OpJmp}, l) }

// JmpR emits an indirect jump through rs.
func (b *Builder) JmpR(rs Reg) { b.emit(Insn{Op: OpJmpR, Rs: rs}) }

// Call emits a call to the named kernel entry point.
func (b *Builder) Call(sym string) { b.emit(Insn{Op: OpCall, Sym: sym}) }

// Ret emits a handler return.
func (b *Builder) Ret() { b.emit(Insn{Op: OpRet}) }

// Cksum32 emits the Internet-checksum accumulate extension:
// rd <- rd + rs with end-around carry (p_cksum32 in the paper's Fig. 2).
func (b *Builder) Cksum32(rd, rs Reg) { b.emit(Insn{Op: OpCksum32, Rd: rd, Rs: rs}) }

// Bswap emits the byteswap extension: rd <- byte-reversed rs.
func (b *Builder) Bswap(rd, rs Reg) { b.emit(Insn{Op: OpBswap, Rd: rd, Rs: rs}) }

// Input32 emits the pipe pseudo-op: rd <- next 32 bits of pipe input
// (p_input32). Valid only inside pipe bodies.
func (b *Builder) Input32(rd Reg) { b.emit(Insn{Op: OpInput32, Rd: rd}) }

// Output32 emits the pipe pseudo-op: pass rs to the next pipe (p_output32).
func (b *Builder) Output32(rs Reg) { b.emit(Insn{Op: OpOutput32, Rs: rs}) }

// Signed emits a signed (trapping) arithmetic op, for verifier tests.
func (b *Builder) Signed(op Op, rd, rs, rt Reg) {
	if !op.IsSignedArith() {
		b.fail("Signed() with non-signed op %v", op)
		return
	}
	b.Op3(op, rd, rs, rt)
}

// Float emits a floating-point op, for verifier tests.
func (b *Builder) Float(op Op, rd, rs, rt Reg) {
	if !op.IsFloat() {
		b.fail("Float() with non-float op %v", op)
		return
	}
	b.Op3(op, rd, rs, rt)
}

// RawSandboxOp emits a sandbox-reserved op, for verifier tests (downloaded
// code containing these must be rejected).
func (b *Builder) RawSandboxOp(op Op) { b.emit(Insn{Op: op}) }

// Assemble resolves labels and returns the finished program.
func (b *Builder) Assemble() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		at := b.labels[f.label]
		if at == -1 {
			return nil, fmt.Errorf("vcode %s: label %d never bound", b.name, f.label)
		}
		b.insns[f.insn].Target = at
	}
	// A program must end in Ret so the machine always terminates cleanly.
	if len(b.insns) == 0 || b.insns[len(b.insns)-1].Op != OpRet {
		b.insns = append(b.insns, Insn{Op: OpRet})
	}
	return &Program{
		Name:       b.name,
		Insns:      b.insns,
		Persistent: append([]Reg(nil), b.persistent...),
		NextReg:    b.nextReg,
	}, nil
}

// MustAssemble is Assemble that panics on error (for static handler code).
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}
