package analysis

import (
	"fmt"

	"ashs/internal/vcode"
)

// FindingKind classifies a lint finding.
type FindingKind int

const (
	// LintDeadStore: an instruction computes a register value that no
	// path ever reads before it is overwritten or the handler returns.
	LintDeadStore FindingKind = iota
	// LintDeadLoad: a memory load whose result is never read (the load
	// itself can still fault, so it is reported separately).
	LintDeadLoad
	// LintPersistentNeverRead: a register declared persistent is never
	// read by the program.
	LintPersistentNeverRead
	// LintUnboundedLoop: a loop with no statically provable trip bound;
	// under BudgetTimer the only thing stopping it is the watchdog.
	LintUnboundedLoop
)

var kindNames = map[FindingKind]string{
	LintDeadStore:           "dead store",
	LintDeadLoad:            "dead load",
	LintPersistentNeverRead: "persistent register never read",
	LintUnboundedLoop:       "unbounded loop",
}

// Finding is one lint diagnostic.
type Finding struct {
	Kind FindingKind
	PC   int // instruction index (-1 when not tied to one instruction)
	Reg  vcode.Reg
	Msg  string
}

// String renders the finding for reports.
func (f Finding) String() string {
	loc := "program"
	if f.PC >= 0 {
		loc = fmt.Sprintf("pc=%d", f.PC)
	}
	return fmt.Sprintf("%s: %s: %s", loc, kindNames[f.Kind], f.Msg)
}

// Lint analyzes a handler program and reports likely mistakes: dead
// stores and loads (wasted work on the paper's per-instruction-costed
// fast path), persistent registers that are never read, and loops the
// analysis cannot bound (which rely on the BudgetTimer watchdog or the
// software budget to terminate). It never reports on empty programs.
func Lint(p *vcode.Program) []Finding {
	var out []Finding
	if len(p.Insns) == 0 {
		return out
	}
	c := Build(p)
	lv := c.Liveness()

	// Dead stores/loads: a defined register not live after the def, from
	// an instruction with no other architectural effect worth keeping.
	for pc, in := range p.Insns {
		defs := Defs(in)
		if len(defs) == 0 || in.Op == vcode.OpCall || in.Op == vcode.OpNop {
			continue
		}
		live := lv.LiveOutAt(pc)
		for _, d := range defs {
			if d == vcode.RZero || live.Has(d) {
				continue
			}
			if in.Op.IsLoad() {
				out = append(out, Finding{LintDeadLoad, pc, d,
					fmt.Sprintf("value loaded into r%d is never read (%s)", d, in)})
			} else {
				out = append(out, Finding{LintDeadStore, pc, d,
					fmt.Sprintf("value written to r%d is never read (%s)", d, in)})
			}
		}
	}

	// Persistent registers never read anywhere.
	used := RegSet(0)
	for _, in := range p.Insns {
		for _, u := range Uses(in) {
			used = used.Add(u)
		}
	}
	for _, r := range p.Persistent {
		if !used.Has(r) {
			out = append(out, Finding{LintPersistentNeverRead, -1, r,
				fmt.Sprintf("persistent r%d is declared but never read", r)})
		}
	}

	// Loops without a provable trip bound.
	if !c.HasIndirect {
		dom := c.Dominators()
		rng := c.Ranges()
		for _, l := range c.NaturalLoops(dom) {
			if _, ok := c.TripBound(&l, rng); !ok {
				out = append(out, Finding{LintUnboundedLoop, c.Blocks[l.Header].Start, 0,
					"no statically bounded trip count; termination relies on the watchdog timer or software budget"})
			}
		}
	}
	return out
}
