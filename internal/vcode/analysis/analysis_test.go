package analysis

import (
	"testing"

	"ashs/internal/vcode"
)

// diamond builds:
//
//	0: movi r8, 1
//	1: beq  r8, r0, @4
//	2: movi r9, 2
//	3: jmp  @5
//	4: movi r9, 3
//	5: mov  r2, r9
//	6: ret
func diamond(t *testing.T) *vcode.Program {
	t.Helper()
	b := vcode.NewBuilder("diamond")
	x, y := b.Temp(), b.Temp()
	els, join := b.NewLabel(), b.NewLabel()
	b.MovI(x, 1)
	b.Beq(x, vcode.RZero, els)
	b.MovI(y, 2)
	b.Jmp(join)
	b.Bind(els)
	b.MovI(y, 3)
	b.Bind(join)
	b.Mov(vcode.RRet, y)
	b.Ret()
	return b.MustAssemble()
}

// countedLoop builds the canonical counted copy loop:
//
//	0: movi i, 0
//	1: movi n, 40
//	2: top: ld32x v, [src+i]
//	3: st32x [dst+i], v
//	4: addiu i, i, 4
//	5: bltu i, n, top
//	6: ret
func countedLoop(t *testing.T) *vcode.Program {
	t.Helper()
	b := vcode.NewBuilder("counted")
	i, n, v := b.Temp(), b.Temp(), b.Temp()
	src, dst := vcode.RArg0, vcode.RArg1
	top := b.NewLabel()
	b.MovI(i, 0)
	b.MovI(n, 40)
	b.Bind(top)
	b.Ld32X(v, src, i)
	b.St32X(dst, i, v)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.Ret()
	return b.MustAssemble()
}

func TestCFGDiamond(t *testing.T) {
	p := diamond(t)
	c := Build(p)
	if len(c.Blocks) != 4 {
		t.Fatalf("diamond: %d blocks, want 4\n%s", len(c.Blocks), p)
	}
	// Block boundaries.
	wantStarts := []int{0, 2, 4, 5}
	for i, s := range wantStarts {
		if c.Blocks[i].Start != s {
			t.Errorf("block %d starts at %d, want %d", i, c.Blocks[i].Start, s)
		}
	}
	// Edges: 0 -> {1, 2}; 1 -> 3; 2 -> 3; 3 -> {}.
	wantSuccs := map[int][]int{0: {2, 1}, 1: {3}, 2: {3}, 3: {}}
	for b, want := range wantSuccs {
		got := c.Blocks[b].Succs
		if len(got) != len(want) {
			t.Errorf("block %d succs %v, want %v", b, got, want)
			continue
		}
		seen := map[int]bool{}
		for _, s := range got {
			seen[s] = true
		}
		for _, w := range want {
			if !seen[w] {
				t.Errorf("block %d succs %v missing %d", b, got, w)
			}
		}
	}
	if c.HasIndirect || len(c.FallsOff) != 0 {
		t.Errorf("diamond: HasIndirect=%v FallsOff=%v", c.HasIndirect, c.FallsOff)
	}
	reach := c.Reachable()
	for b, r := range reach {
		if !r {
			t.Errorf("block %d unreachable", b)
		}
	}
}

func TestCFGUnreachableAndFallsOff(t *testing.T) {
	// 0: jmp @2 / 1: movi r8,1 (unreachable) / 2: ret
	p := &vcode.Program{Name: "skip", Insns: []vcode.Insn{
		{Op: vcode.OpJmp, Target: 2},
		{Op: vcode.OpMovI, Rd: 8, Imm: 1},
		{Op: vcode.OpRet},
	}}
	c := Build(p)
	reach := c.Reachable()
	if reach[c.BlockOf[1]] {
		t.Error("dead middle block reported reachable")
	}
	if !reach[c.BlockOf[2]] {
		t.Error("ret block reported unreachable")
	}

	// A program whose last instruction is not a terminator falls off.
	q := &vcode.Program{Name: "falloff", Insns: []vcode.Insn{
		{Op: vcode.OpMovI, Rd: 8, Imm: 1},
	}}
	qc := Build(q)
	if len(qc.FallsOff) != 1 {
		t.Errorf("FallsOff=%v, want one block", qc.FallsOff)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	p := diamond(t)
	c := Build(p)
	d := c.Dominators()
	join := c.BlockOf[5]
	for _, arm := range []int{c.BlockOf[2], c.BlockOf[4]} {
		if !d.Dominates(0, arm) {
			t.Errorf("entry does not dominate block %d", arm)
		}
		if d.Dominates(arm, join) {
			t.Errorf("arm block %d wrongly dominates the join", arm)
		}
	}
	if !d.Dominates(0, join) || !d.Dominates(join, join) {
		t.Error("join dominance wrong")
	}
}

func TestNaturalLoopAndTripBound(t *testing.T) {
	p := countedLoop(t)
	c := Build(p)
	d := c.Dominators()
	loops := c.NaturalLoops(d)
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1\n%s", len(loops), p)
	}
	l := loops[0]
	if c.Blocks[l.Header].Start != 2 {
		t.Errorf("header starts at %d, want 2", c.Blocks[l.Header].Start)
	}
	if len(l.Blocks) != 1 || len(l.Latches) != 1 {
		t.Errorf("loop shape: blocks=%v latches=%v", l.Blocks, l.Latches)
	}
	if len(l.Exits) != 1 || l.Exits[0] != l.Header {
		t.Errorf("exits=%v, want the header", l.Exits)
	}
	trips, ok := c.TripBound(&l, c.Ranges())
	if !ok || trips != 10 {
		t.Errorf("TripBound = %d,%v, want 10,true", trips, ok)
	}
}

func TestTripBoundRejectsUnbounded(t *testing.T) {
	// Bound register loaded from memory: entry value not exact.
	b := vcode.NewBuilder("unbounded")
	i, n, v := b.Temp(), b.Temp(), b.Temp()
	top := b.NewLabel()
	b.MovI(i, 0)
	b.Ld32(n, vcode.RArg0, 0)
	b.Bind(top)
	b.Ld32X(v, vcode.RArg0, i)
	b.AddIU(i, i, 4)
	b.BltU(i, n, top)
	b.Mov(vcode.RRet, v)
	b.Ret()
	p := b.MustAssemble()
	c := Build(p)
	loops := c.NaturalLoops(c.Dominators())
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	if trips, ok := c.TripBound(&loops[0], c.Ranges()); ok {
		t.Errorf("TripBound proved %d trips for a memory-dependent bound", trips)
	}
}

func TestLivenessDiamond(t *testing.T) {
	p := diamond(t)
	c := Build(p)
	lv := c.Liveness()
	// y (r9) is live into the join block, x (r8) is not.
	join := c.BlockOf[5]
	if !lv.In[join].Has(9) {
		t.Error("r9 not live into the join block")
	}
	if lv.In[join].Has(8) {
		t.Error("r8 wrongly live into the join block")
	}
	// RRet is live out of the final block (the runtime reads it).
	if !lv.Out[c.BlockOf[6]].Has(vcode.RRet) {
		t.Error("RRet not live at exit")
	}
	// Before the branch at pc=1, r8 is live (the branch reads it).
	if !lv.LiveOutAt(0).Has(8) {
		t.Error("r8 not live immediately after its definition")
	}
	// After the join-block mov, r9 is dead.
	if lv.LiveOutAt(5).Has(9) {
		t.Error("r9 still live after its last read")
	}
}

func TestLivenessPersistent(t *testing.T) {
	b := vcode.NewBuilder("acc")
	acc := b.Persistent()
	b.AddIU(acc, acc, 1)
	b.MovI(vcode.RRet, 0)
	b.Ret()
	p := b.MustAssemble()
	c := Build(p)
	lv := c.Liveness()
	last := len(c.Blocks) - 1
	if !lv.Out[last].Has(acc) {
		t.Error("persistent register not live at exit")
	}
}

func TestReachingDefsDiamond(t *testing.T) {
	p := diamond(t)
	c := Build(p)
	rd := c.ReachingDefs()
	// At the join-block mov (pc=5) both defs of r9 (pc=2 and pc=4) reach.
	got := rd.ReachingAt(5)
	has := func(pc int) bool {
		for _, g := range got {
			if g == pc {
				return true
			}
		}
		return false
	}
	if !has(2) || !has(4) {
		t.Errorf("ReachingAt(5) = %v, want both r9 defs (2 and 4)", got)
	}
	// At pc=3 (inside the then-arm) only the then-def reaches.
	got = rd.ReachingAt(3)
	has3 := func(pc int) bool {
		for _, g := range got {
			if g == pc {
				return true
			}
		}
		return false
	}
	if !has3(2) || has3(4) {
		t.Errorf("ReachingAt(3) = %v, want only pc=2's def of r9", got)
	}
}

func TestRangesStraightLine(t *testing.T) {
	b := vcode.NewBuilder("ranges")
	x, y, z := b.Temp(), b.Temp(), b.Temp()
	b.MovI(x, 100)
	b.AddIU(y, x, 20)
	b.AndI(z, y, 0xff)
	b.Ld8(z, vcode.RArg0, 0) // replaces z with [0,255]
	b.SllI(z, z, 2)
	b.Ret()
	p := b.MustAssemble()
	c := Build(p)
	r := c.Ranges()

	if iv := r.Before(1, x); iv != (Interval{100, 100}) {
		t.Errorf("x before pc=1 = %v, want [100,100]", iv)
	}
	if iv := r.Before(2, y); iv != (Interval{120, 120}) {
		t.Errorf("y before pc=2 = %v, want [120,120]", iv)
	}
	if iv := r.Before(3, z); iv.Lo != 0 || iv.Hi > 0xff {
		t.Errorf("z before pc=3 = %v, want within [0,255]", iv)
	}
	if iv := r.Before(4, z); iv != (Interval{0, 255}) {
		t.Errorf("z after ld8 = %v, want [0,255]", iv)
	}
	if iv := r.Before(5, z); iv != (Interval{0, 1020}) {
		t.Errorf("z after slli 2 = %v, want [0,1020]", iv)
	}
	// Entry state: everything unknown (registers persist across runs).
	if iv := r.Before(0, x); !iv.IsTop() {
		t.Errorf("entry interval of x = %v, want Top", iv)
	}
}

func TestRangesMergeAndCall(t *testing.T) {
	b := vcode.NewBuilder("merge")
	x := b.Temp()
	els, join := b.NewLabel(), b.NewLabel()
	b.Beq(vcode.RArg0, vcode.RZero, els)
	b.MovI(x, 4)
	b.Jmp(join)
	b.Bind(els)
	b.MovI(x, 12)
	b.Bind(join)
	b.Mov(vcode.RRet, x)
	b.Call("ash_send")
	b.Mov(vcode.RRet, x)
	b.Ret()
	p := b.MustAssemble()
	c := Build(p)
	r := c.Ranges()
	// After the merge x is the hull [4,12].
	joinPC := 5
	if p.Insns[joinPC].Op != vcode.OpMovI {
		// Find the first insn of the join block robustly.
		for pc, in := range p.Insns {
			if in.Op == vcode.OpMov && in.Rd == vcode.RRet {
				joinPC = pc
				break
			}
		}
	}
	if iv := r.Before(joinPC, x); iv != (Interval{4, 12}) {
		t.Errorf("x at merge = %v, want [4,12]", iv)
	}
	// After the call everything is Top (syscalls may write any register).
	callPC := -1
	for pc, in := range p.Insns {
		if in.Op == vcode.OpCall {
			callPC = pc
		}
	}
	if iv := r.Before(callPC+1, x); !iv.IsTop() {
		t.Errorf("x after call = %v, want Top", iv)
	}
}

func TestRangesLoopWidens(t *testing.T) {
	p := countedLoop(t)
	c := Build(p)
	r := c.Ranges()
	// The analysis must terminate and keep the loop-invariant bound exact
	// at the latch.
	latchPC := 5
	if iv := r.Before(latchPC, vcode.Reg(9)); iv != (Interval{40, 40}) {
		t.Errorf("bound at latch = %v, want [40,40]", iv)
	}
}

func TestCheckSetBasics(t *testing.T) {
	s := NewCheckSet()
	s.AddSpan(8, 0, 8)
	if !s.Covers(8, 4) || s.Covers(8, 12) || s.Covers(9, 0) {
		t.Error("span coverage wrong")
	}
	// Two certified points merge into their hull (contiguous region).
	s.AddSpan(8, 20, 24)
	if !s.Covers(8, 16) {
		t.Error("hull between certified spans not covered")
	}
	// Beyond MaxCertSpan: kept separate.
	s.AddSpan(8, MaxCertSpan+100, MaxCertSpan+104)
	if s.Covers(8, MaxCertSpan+50) {
		t.Error("gap beyond MaxCertSpan wrongly covered")
	}
	if !s.Covers(8, MaxCertSpan+102) {
		t.Error("distant span lost")
	}
	s.AddPair(4, 9)
	if !s.CoversPair(4, 9) || s.CoversPair(9, 4) {
		t.Error("pair coverage wrong (pairs are ordered)")
	}
	s.KillReg(8)
	if s.Covers(8, 4) {
		t.Error("kill did not clear reg facts")
	}
	if !s.CoversPair(4, 9) {
		t.Error("kill of unrelated reg cleared a pair")
	}
	s.KillReg(9)
	if s.CoversPair(4, 9) {
		t.Error("kill of pair member did not clear the pair")
	}
}

func TestCheckSetMeet(t *testing.T) {
	a := NewCheckSet()
	a.AddSpan(8, 0, 16)
	a.AddPair(4, 5)
	b := NewCheckSet()
	b.AddSpan(8, 8, 24)
	a.Meet(b)
	if a.Covers(8, 4) || !a.Covers(8, 12) || a.Covers(8, 20) {
		t.Error("span intersection wrong")
	}
	if a.CoversPair(4, 5) {
		t.Error("pair not dropped by meet")
	}
	// Top is the meet identity.
	c := NewCheckSet()
	c.AddSpan(8, 0, 4)
	c.Meet(TopCheckSet())
	if !c.Covers(8, 0) {
		t.Error("meet with top lost facts")
	}
	d := TopCheckSet()
	d.Meet(c)
	if d.IsTop() || !d.Covers(8, 4) || d.Covers(8, 8) {
		t.Error("top meet concrete wrong")
	}
}

func TestLintFindings(t *testing.T) {
	b := vcode.NewBuilder("sloppy")
	dead, used := b.Temp(), b.Temp()
	per := b.Persistent()
	_ = per
	i, n := b.Temp(), b.Temp()
	top := b.NewLabel()
	b.MovI(dead, 42) // dead store: never read
	b.MovI(used, 7)
	b.MovI(i, 0)
	b.Ld32(n, vcode.RArg0, 0) // unbounded: n from memory
	b.Bind(top)
	b.AddIU(i, i, 1)
	b.BltU(i, n, top)
	b.Mov(vcode.RRet, used)
	b.Ret()
	p := b.MustAssemble()

	found := map[FindingKind]int{}
	for _, f := range Lint(p) {
		found[f.Kind]++
	}
	if found[LintDeadStore] == 0 {
		t.Error("dead store not reported")
	}
	if found[LintPersistentNeverRead] != 1 {
		t.Errorf("persistent-never-read reported %d times, want 1", found[LintPersistentNeverRead])
	}
	if found[LintUnboundedLoop] != 1 {
		t.Errorf("unbounded loop reported %d times, want 1", found[LintUnboundedLoop])
	}

	// The counted loop is bounded: no loop finding.
	for _, f := range Lint(countedLoop(t)) {
		if f.Kind == LintUnboundedLoop {
			t.Errorf("counted loop flagged unbounded: %s", f)
		}
	}
}
