package analysis

import (
	"sort"

	"ashs/internal/vcode"
)

// MaxCertSpan bounds how far apart two certified offsets may be for the
// contiguity argument to apply. Two checked addresses reg+a and reg+b
// (a <= b) certify every address between them because the SFI region is a
// single contiguous [base, limit) range — provided the walk from reg+a to
// reg+b does not wrap around 2^32. The system only creates regions that
// start at 0 (whole-address-space attach in core.Download) or end at least
// MaxCertSpan below 2^32 (test regions), so capping the certified span at
// MaxCertSpan keeps the argument airtight for both.
const MaxCertSpan = 4096

// Span is an inclusive range of certified immediate offsets for a base
// register (offsets are sign-extended int32 immediates).
type Span struct {
	Lo, Hi int64
}

// CheckSet tracks, at one program point, which address expressions are
// certified in-region by an already-executed bounds check: per base
// register, spans of certified reg+imm offsets; plus certified rs+rt
// register pairs for indexed addressing. It is the lattice element of the
// SFI optimizer's availability analysis — meet is intersection, a register
// definition kills the facts mentioning it, and OpCall kills everything.
//
// Top (the GFP initializer, "everything certified") is represented
// explicitly so loop-closing edges start optimistic.
type CheckSet struct {
	top    bool
	ranges map[vcode.Reg][]Span
	pairs  map[[2]vcode.Reg]bool
}

// NewCheckSet returns the empty set (nothing certified).
func NewCheckSet() *CheckSet {
	return &CheckSet{ranges: map[vcode.Reg][]Span{}, pairs: map[[2]vcode.Reg]bool{}}
}

// TopCheckSet returns the top element (everything certified); used only as
// the optimistic initializer of the greatest-fixpoint iteration.
func TopCheckSet() *CheckSet {
	s := NewCheckSet()
	s.top = true
	return s
}

// IsTop reports whether the set is the optimistic top element.
func (s *CheckSet) IsTop() bool { return s.top }

// Clone deep-copies the set.
func (s *CheckSet) Clone() *CheckSet {
	n := &CheckSet{top: s.top, ranges: make(map[vcode.Reg][]Span, len(s.ranges)),
		pairs: make(map[[2]vcode.Reg]bool, len(s.pairs))}
	for r, spans := range s.ranges {
		n.ranges[r] = append([]Span(nil), spans...)
	}
	for p := range s.pairs {
		n.pairs[p] = true
	}
	return n
}

// Covers reports whether reg+imm is certified.
func (s *CheckSet) Covers(reg vcode.Reg, imm int64) bool {
	if s.top {
		return true
	}
	for _, sp := range s.ranges[reg] {
		if sp.Lo <= imm && imm <= sp.Hi {
			return true
		}
	}
	return false
}

// CoversPair reports whether the indexed address rs+rt is certified.
func (s *CheckSet) CoversPair(rs, rt vcode.Reg) bool {
	return s.top || s.pairs[[2]vcode.Reg{rs, rt}]
}

// AddSpan certifies reg+[lo,hi]. Spans whose combined hull stays within
// MaxCertSpan merge (any two certified points certify their hull).
func (s *CheckSet) AddSpan(reg vcode.Reg, lo, hi int64) {
	if s.top || hi-lo > MaxCertSpan {
		return
	}
	spans := append(s.ranges[reg], Span{lo, hi})
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	merged := spans[:1]
	for _, sp := range spans[1:] {
		last := &merged[len(merged)-1]
		if sp.Hi-last.Lo <= MaxCertSpan {
			if sp.Hi > last.Hi {
				last.Hi = sp.Hi
			}
		} else {
			merged = append(merged, sp)
		}
	}
	s.ranges[reg] = append([]Span(nil), merged...)
}

// AddPair certifies the indexed address rs+rt.
func (s *CheckSet) AddPair(rs, rt vcode.Reg) {
	if s.top {
		return
	}
	s.pairs[[2]vcode.Reg{rs, rt}] = true
}

// KillReg drops every fact mentioning reg (its value changed).
func (s *CheckSet) KillReg(reg vcode.Reg) {
	if s.top {
		return // callers only kill on concrete sets
	}
	delete(s.ranges, reg)
	for p := range s.pairs {
		if p[0] == reg || p[1] == reg {
			delete(s.pairs, p)
		}
	}
}

// KillAll drops every fact (an OpCall executed: syscalls may write any
// register).
func (s *CheckSet) KillAll() {
	s.top = false
	s.ranges = map[vcode.Reg][]Span{}
	s.pairs = map[[2]vcode.Reg]bool{}
}

// Meet intersects o into s (the dataflow meet at a CFG merge: a fact holds
// only if it holds on every incoming path).
func (s *CheckSet) Meet(o *CheckSet) {
	if o.top {
		return
	}
	if s.top {
		s.top = false
		s.ranges = make(map[vcode.Reg][]Span, len(o.ranges))
		for r, spans := range o.ranges {
			s.ranges[r] = append([]Span(nil), spans...)
		}
		s.pairs = make(map[[2]vcode.Reg]bool, len(o.pairs))
		for p := range o.pairs {
			s.pairs[p] = true
		}
		return
	}
	for r, spans := range s.ranges {
		inter := intersectSpans(spans, o.ranges[r])
		if len(inter) == 0 {
			delete(s.ranges, r)
		} else {
			s.ranges[r] = inter
		}
	}
	for p := range s.pairs {
		if !o.pairs[p] {
			delete(s.pairs, p)
		}
	}
}

func intersectSpans(a, b []Span) []Span {
	var out []Span
	for _, x := range a {
		for _, y := range b {
			lo, hi := x.Lo, x.Hi
			if y.Lo > lo {
				lo = y.Lo
			}
			if y.Hi < hi {
				hi = y.Hi
			}
			if lo <= hi {
				out = append(out, Span{lo, hi})
			}
		}
	}
	return out
}

// Equal reports structural equality (for fixpoint detection).
func (s *CheckSet) Equal(o *CheckSet) bool {
	if s.top != o.top {
		return false
	}
	if len(s.ranges) != len(o.ranges) || len(s.pairs) != len(o.pairs) {
		return false
	}
	for r, spans := range s.ranges {
		ospans, ok := o.ranges[r]
		if !ok || len(spans) != len(ospans) {
			return false
		}
		for i := range spans {
			if spans[i] != ospans[i] {
				return false
			}
		}
	}
	for p := range s.pairs {
		if !o.pairs[p] {
			return false
		}
	}
	return true
}
